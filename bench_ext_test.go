package histapprox

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/quantile"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/stream"
	"repro/internal/wavelet"
)

// --------------------------------------------------- extension benchmarks

// BenchmarkStreamMaintainerAdd measures amortized per-update cost including
// compactions.
func BenchmarkStreamMaintainerAdd(b *testing.B) {
	m, err := stream.NewMaintainer(1<<16, 10, 0, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	points := make([]int, 1<<14)
	for i := range points {
		points[i] = 1 + r.Intn(1<<16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Add(points[i&(1<<14-1)], 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamMerge measures combining two O(k) summaries.
func BenchmarkStreamMerge(b *testing.B) {
	q := datasets.Dow()
	half := len(q) / 2
	left := append(append([]float64{}, q[:half]...), make([]float64, len(q)-half)...)
	right := append(make([]float64, half), q[half:]...)
	hl, err := core.ConstructHistogram(sparse.FromDense(left), 25, core.PaperOptions())
	if err != nil {
		b.Fatal(err)
	}
	hr, err := core.ConstructHistogram(sparse.FromDense(right), 25, core.PaperOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.Merge(hl.Histogram, hr.Histogram, 25, core.PaperOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaveletSynopsis measures the B-term Haar synopsis build on the
// dow data set at the Table 1 storage budget.
func BenchmarkWaveletSynopsis(b *testing.B) {
	q := datasets.Dow()
	for i := 0; i < b.N; i++ {
		if _, err := wavelet.NewSynopsis(q, 2*datasets.DowK); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantileQuery measures quantile queries against a compacted
// summary.
func BenchmarkQuantileQuery(b *testing.B) {
	q := datasets.Dow()
	res, err := core.ConstructHistogram(sparse.FromDense(q), datasets.DowK, core.PaperOptions())
	if err != nil {
		b.Fatal(err)
	}
	c, err := quantile.New(res.Histogram)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := float64(i%999+1) / 1000
		if _, err := c.Quantile(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramAt measures point evaluation on a compacted summary.
func BenchmarkHistogramAt(b *testing.B) {
	q := datasets.Dow()
	res, err := core.ConstructHistogram(sparse.FromDense(q), datasets.DowK, core.PaperOptions())
	if err != nil {
		b.Fatal(err)
	}
	h := res.Histogram
	n := h.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.At(i%n + 1)
	}
}
