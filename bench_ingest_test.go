package histapprox

import (
	"cmp"
	"fmt"
	"slices"
	"testing"

	"repro/internal/sparse"
)

// Ingestion benchmarks: the write side of the maintenance story.
// Sub-benchmark names are benchstat-friendly
// (BenchmarkIngestAdd/mode=serial, BenchmarkIngestAddBatch/shards=8, …) so
// future PRs can diff intake throughput cell by cell. Per-op cost includes
// the amortized compactions; allocs/op is reported and is 0 at steady state
// for the serial engine (the scratch-threaded compaction path).

const (
	benchIngestN   = 100000
	benchIngestCap = 4096
)

func benchIngestStream(count int) (points []int, weights []float64) {
	state := uint64(8209)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	points = make([]int, count)
	weights = make([]float64, count)
	for i := range points {
		points[i] = 1 + int(next())%benchIngestN
		if next()%10 == 0 {
			weights[i] = -1
		} else {
			weights[i] = 1
		}
	}
	return points, weights
}

// BenchmarkIngestAdd measures single-update intake, compactions included.
// The serial cell runs on the inline-compacting Maintainer, the sharded
// cells on the background-compacting engine.
func BenchmarkIngestAdd(b *testing.B) {
	points, weights := benchIngestStream(1 << 16)
	b.Run("mode=serial", func(b *testing.B) {
		m, err := NewStreamingHistogram(benchIngestN, 32, benchIngestCap, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the scratch through real compactions before measuring.
		for i := range points {
			if err := m.Add(points[i], weights[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u := i & (len(points) - 1)
			if err := m.Add(points[u], weights[u]); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := NewShardedMaintainer(benchIngestN, 32, shards, benchIngestCap, nil)
			if err != nil {
				b.Fatal(err)
			}
			for i := range points {
				if err := s.Add(points[i], weights[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := i & (len(points) - 1)
				if err := s.Add(points[u], weights[u]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngestAddBatch measures bulk intake: one lock acquisition per
// touched shard per 1024-update batch.
func BenchmarkIngestAddBatch(b *testing.B) {
	points, weights := benchIngestStream(1 << 16)
	const batch = 1024
	b.Run("mode=serial", func(b *testing.B) {
		m, err := NewStreamingHistogram(benchIngestN, 32, benchIngestCap, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.AddBatch(points, weights); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := (i * batch) & (len(points) - 1)
			if err := m.AddBatch(points[lo:lo+batch], weights[lo:lo+batch]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	})
	for _, shards := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := NewShardedMaintainer(benchIngestN, 32, shards, benchIngestCap, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.AddBatch(points, weights); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := (i * batch) & (len(points) - 1)
				if err := s.AddBatch(points[lo:lo+batch], weights[lo:lo+batch]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
		})
	}
}

// BenchmarkIngestCompaction isolates one full compaction cycle of the
// serial engine: fill the buffer to capacity and fold it into the summary.
// The headline assertion — 0 allocs/op at steady state — is enforced by
// TestMaintainerCompactionSteadyStateAllocs in internal/stream; this cell
// tracks the wall-clock cost per cycle.
func BenchmarkIngestCompaction(b *testing.B) {
	points, weights := benchIngestStream(benchIngestCap)
	opts := DefaultOptions()
	opts.Workers = 1
	m, err := NewStreamingHistogram(benchIngestN, 32, benchIngestCap, &opts)
	if err != nil {
		b.Fatal(err)
	}
	cycle := func() {
		for i := range points {
			if err := m.Add(points[i], weights[i]); err != nil {
				b.Fatal(err)
			}
		}
	}
	for i := 0; i < 4; i++ {
		cycle() // warm the compaction scratch
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

// BenchmarkIngestSortKernel times the compaction inner loop's dedup sort in
// isolation, at the buffer size compactions actually see: the radix/counting
// IndexSorter against the comparison sort it replaced. Each op pays one copy
// of the log into the work buffer (identical on both sides) plus one sort.
func BenchmarkIngestSortKernel(b *testing.B) {
	points, weights := benchIngestStream(benchIngestCap)
	log := make([]sparse.Entry, len(points))
	for i := range points {
		log[i] = sparse.Entry{Index: points[i], Value: weights[i]}
	}
	work := make([]sparse.Entry, len(log))
	b.Run("mode=radix", func(b *testing.B) {
		var sorter sparse.IndexSorter
		copy(work, log)
		sorter.Sort(work, benchIngestN) // warm the scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work, log)
			sorter.Sort(work, benchIngestN)
		}
	})
	b.Run("mode=comparison", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(work, log)
			slices.SortStableFunc(work, func(x, y sparse.Entry) int {
				return cmp.Compare(x.Index, y.Index)
			})
		}
	})
}

// BenchmarkIngestMergeAll measures the k-way global merge at Summary time
// across shard counts: one refinement sweep + one recompaction per tree
// node instead of a pairwise chain.
func BenchmarkIngestMergeAll(b *testing.B) {
	for _, m := range []int{2, 8, 64} {
		hs := make([]*Histogram, m)
		for i := range hs {
			data := make([]float64, 8192)
			for j := range data {
				data[j] = float64((i*31+j*7)%97) / 9.7
			}
			h, _, err := Fit(data, 32, nil)
			if err != nil {
				b.Fatal(err)
			}
			hs[i] = h
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MergeSummaries(hs, 32, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
