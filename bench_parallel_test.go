// Benchmarks for the parallel merging engine: serial vs multi-worker
// Fit/FitFast/Hierarchy/Learn at large n. Run with:
//
//	go test -bench=Parallel -benchmem
//	REPRO_FULL=1 go test -bench=Parallel    # include n = 10⁶ cells
//
// The recorded sweep lives in BENCH_parallel.json (regenerate with
// `histbench -parallel BENCH_parallel.json`); see EXPERIMENTS.md.
package histapprox

import (
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// parallelBenchSizes keeps the default `go test -bench .` run fast; the
// full acceptance sweep at n = 10⁶ is enabled by REPRO_FULL=1 (and is what
// histbench -parallel records).
func parallelBenchSizes() []int {
	if os.Getenv("REPRO_FULL") != "" {
		return []int{100_000, 1_000_000}
	}
	return []int{100_000}
}

var parallelWorkerCounts = []int{1, 2, 4, 0}

func workersName(w int) string {
	if w == 0 {
		return "allcores"
	}
	return itoa(w) + "workers"
}

func BenchmarkParallelFit(b *testing.B) {
	for _, n := range parallelBenchSizes() {
		q := bench.ParallelBenchData(n, 50)
		sf := sparse.FromDense(q)
		for _, w := range parallelWorkerCounts {
			o := core.PaperOptions()
			o.Workers = w
			b.Run(itoa(n)+"/"+workersName(w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.ConstructHistogram(sf, 50, o); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkParallelFitFast(b *testing.B) {
	for _, n := range parallelBenchSizes() {
		q := bench.ParallelBenchData(n, 50)
		sf := sparse.FromDense(q)
		for _, w := range parallelWorkerCounts {
			o := core.PaperOptions()
			o.Workers = w
			b.Run(itoa(n)+"/"+workersName(w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.ConstructHistogramFast(sf, 50, o); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkParallelHierarchy(b *testing.B) {
	for _, n := range parallelBenchSizes() {
		q := bench.ParallelBenchData(n, 50)
		sf := sparse.FromDense(q)
		for _, w := range parallelWorkerCounts {
			b.Run(itoa(n)+"/"+workersName(w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.ConstructHierarchicalHistogramWorkers(sf, w)
				}
			})
		}
	}
}

func BenchmarkParallelLearn(b *testing.B) {
	for _, n := range parallelBenchSizes() {
		q := bench.ParallelBenchData(n, 50)
		p, err := dist.FromWeights(q)
		if err != nil {
			b.Fatal(err)
		}
		samples := dist.DrawWorkers(p, 2*n, rng.New(7), 4) // fixed count: machine-independent input
		for _, w := range parallelWorkerCounts {
			o := core.PaperOptions()
			o.Workers = w
			b.Run(itoa(n)+"/"+workersName(w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := learn.HistogramFromSamples(n, samples, 50, o); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkParallelDraw(b *testing.B) {
	p := dist.Uniform(100_000)
	for _, w := range parallelWorkerCounts {
		b.Run(workersName(w), func(b *testing.B) {
			r := rng.New(3)
			for i := 0; i < b.N; i++ {
				dist.DrawWorkers(p, 1_000_000, r, w)
			}
		})
	}
}

func BenchmarkParallelEmpirical(b *testing.B) {
	p := dist.Uniform(100_000)
	samples := dist.Draw(p, 2_000_000, rng.New(3))
	for _, w := range parallelWorkerCounts {
		b.Run(workersName(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dist.EmpiricalWorkers(100_000, samples, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
