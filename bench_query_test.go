package histapprox

import (
	"fmt"
	"sort"
	"testing"
)

// Query-serving benchmarks: the read side of the build-once/query-forever
// synopsis shape. Sub-benchmark names are benchstat-friendly
// (BenchmarkQueryPoint/k=100, BenchmarkQueryRangeBatch/k=1000/workers=1, …)
// so future PRs can diff serving throughput cell by cell.

const benchQueryN = 200000

func benchHistogram(b *testing.B, k int) *Histogram {
	b.Helper()
	freq := queryColumn(benchQueryN)
	h, _, err := Fit(freq, k, nil)
	if err != nil {
		b.Fatal(err)
	}
	h.At(1) // build the index outside the timed region
	return h
}

func benchQueries(n, count int) (xs, as, bs []int) {
	state := uint64(4099)
	next := func() int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state >> 33)
	}
	xs = make([]int, count)
	as = make([]int, count)
	bs = make([]int, count)
	for i := range xs {
		xs[i] = 1 + next()%n
		a := 1 + next()%n
		as[i] = a
		bs[i] = a + next()%(n-a+1)
	}
	return xs, as, bs
}

func BenchmarkQueryPoint(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		h := benchHistogram(b, k)
		xs, _, _ := benchQueries(benchQueryN, 4096)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var acc float64
			for i := 0; i < b.N; i++ {
				acc += h.At(xs[i%len(xs)])
			}
			_ = acc
		})
	}
}

func BenchmarkQueryRange(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		h := benchHistogram(b, k)
		_, as, bs := benchQueries(benchQueryN, 4096)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var acc float64
			for i := 0; i < b.N; i++ {
				q := i % len(as)
				acc += h.RangeSum(as[q], bs[q])
			}
			_ = acc
		})
	}
}

func BenchmarkQueryPointBatch(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		h := benchHistogram(b, k)
		xs, _, _ := benchQueries(benchQueryN, 4096)
		out := make([]float64, len(xs))
		for _, workers := range []int{1, 0} {
			b.Run(fmt.Sprintf("k=%d/workers=%d", k, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out = h.AtBatch(xs, out, workers)
				}
				// Throughput in queries, not batches.
				b.ReportMetric(float64(len(xs)), "queries/op")
			})
		}
	}
}

func BenchmarkQueryRangeBatch(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		h := benchHistogram(b, k)
		_, as, bs := benchQueries(benchQueryN, 4096)
		out := make([]float64, len(as))
		for _, workers := range []int{1, 0} {
			b.Run(fmt.Sprintf("k=%d/workers=%d", k, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out = h.RangeSumBatch(as, bs, out, workers)
				}
				b.ReportMetric(float64(len(as)), "queries/op")
			})
		}
	}
}

// BenchmarkQueryRangeBatchSorted pins the sorted-locality fast path for range
// batches: with queries ordered by left endpoint, both endpoint locations
// should ride the near-piece pre-filter (the right endpoint starting from the
// left endpoint's piece) and almost never run a cold descent. A regression
// here means a batch kernel change broke the locality chain even if random
// batches got faster.
func BenchmarkQueryRangeBatchSorted(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		h := benchHistogram(b, k)
		_, as, bs := benchQueries(benchQueryN, 4096)
		type qr struct{ a, b int }
		qs := make([]qr, len(as))
		for i := range qs {
			qs[i] = qr{as[i], bs[i]}
		}
		sort.Slice(qs, func(i, j int) bool {
			if qs[i].a != qs[j].a {
				return qs[i].a < qs[j].a
			}
			return qs[i].b < qs[j].b
		})
		for i, q := range qs {
			as[i], bs[i] = q.a, q.b
		}
		out := make([]float64, len(as))
		b.Run(fmt.Sprintf("k=%d/workers=1", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out = h.RangeSumBatch(as, bs, out, 1)
			}
			b.ReportMetric(float64(len(as)), "queries/op")
		})
	}
}
