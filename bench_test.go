// Benchmarks regenerating every table and figure of the paper, plus
// ablations for the design choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem            # everything but the slowest DP
//	REPRO_FULL=1 go test -bench=Table1    # include exactdp on dow (minutes)
//
// Table 1 rows map to BenchmarkTable1_<algorithm>_<dataset>; Figure 2 cells
// map to BenchmarkFigure2_<algorithm>_<dataset>; Figure 1 to
// BenchmarkFigure1Generate. EXPERIMENTS.md records the measured outputs.
package histapprox

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cheby"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/piecewise"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// ---------------------------------------------------------------- Table 1

type table1Case struct {
	name string
	data func() []float64
	k    int
}

var table1Cases = []table1Case{
	{"Hist", datasets.Hist, datasets.HistK},
	{"Poly", datasets.Poly, datasets.PolyK},
	{"Dow", datasets.Dow, datasets.DowK},
}

func benchMerging(b *testing.B, fast bool, halveK bool) {
	for _, c := range table1Cases {
		b.Run(c.name, func(b *testing.B) {
			q := c.data()
			sf := sparse.FromDense(q)
			k := c.k
			if halveK {
				k = max(1, k/2)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if fast {
					_, err = core.ConstructHistogramFast(sf, k, core.PaperOptions())
				} else {
					_, err = core.ConstructHistogram(sf, k, core.PaperOptions())
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1_Merging(b *testing.B)      { benchMerging(b, false, false) }
func BenchmarkTable1_Merging2(b *testing.B)     { benchMerging(b, false, true) }
func BenchmarkTable1_Fastmerging(b *testing.B)  { benchMerging(b, true, false) }
func BenchmarkTable1_Fastmerging2(b *testing.B) { benchMerging(b, true, true) }

func BenchmarkTable1_Dual(b *testing.B) {
	for _, c := range table1Cases {
		b.Run(c.name, func(b *testing.B) {
			q := c.data()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.Dual(q, c.k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1_GKS(b *testing.B) {
	for _, c := range table1Cases {
		if c.name == "Dow" && os.Getenv("REPRO_FULL") == "" {
			continue // several seconds per iteration; REPRO_FULL enables it
		}
		b.Run(c.name, func(b *testing.B) {
			q := c.data()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.GKSApprox(q, c.k, 0.1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1_ExactDP(b *testing.B) {
	for _, c := range table1Cases {
		if c.name != "Hist" && os.Getenv("REPRO_FULL") == "" {
			continue // poly ≈ 0.5 s/op, dow ≈ minutes; REPRO_FULL enables
		}
		b.Run(c.name, func(b *testing.B) {
			q := c.data()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.ExactDP(q, c.k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --------------------------------------------------------------- Figure 1

func BenchmarkFigure1Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = datasets.Hist()
		_ = datasets.Poly()
		_ = datasets.Dow()
	}
}

// --------------------------------------------------------------- Figure 2

type figure2Case struct {
	name string
	p    func() dist.Dist
	k    int
}

var figure2Cases = []figure2Case{
	{"HistPrime", datasets.HistPrime, datasets.HistK},
	{"PolyPrime", datasets.PolyPrime, datasets.PolyK},
	{"DowPrime", datasets.DowPrime, datasets.DowK},
}

// BenchmarkFigure2_Sampling isolates the first stage: drawing m = 10000
// samples.
func BenchmarkFigure2_Sampling(b *testing.B) {
	for _, c := range figure2Cases {
		b.Run(c.name, func(b *testing.B) {
			p := c.p()
			r := rng.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dist.Draw(p, 10000, r)
			}
		})
	}
}

// BenchmarkFigure2_Merging measures one Figure 2 cell end to end: sample
// m = 10000 points and learn the merging hypothesis.
func BenchmarkFigure2_Merging(b *testing.B) {
	for _, c := range figure2Cases {
		b.Run(c.name, func(b *testing.B) {
			p := c.p()
			r := rng.New(1)
			samples := dist.Draw(p, 10000, r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := learn.HistogramFromSamples(p.N(), samples, c.k, core.PaperOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure2_ExactDP is the exactdp learner on the empirical
// distribution — the over-fitting-prone, much slower alternative in Fig. 2.
func BenchmarkFigure2_ExactDP(b *testing.B) {
	for _, c := range figure2Cases {
		if c.name == "DowPrime" && os.Getenv("REPRO_FULL") == "" {
			continue
		}
		b.Run(c.name, func(b *testing.B) {
			p := c.p()
			r := rng.New(1)
			emp, err := dist.Empirical(p.N(), dist.Draw(p, 10000, r))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.ExactDP(emp.P, c.k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------- Theorems 2.2 and 2.3

func BenchmarkMultiscale(b *testing.B) {
	q := datasets.Dow()
	sf := sparse.FromDense(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ConstructHierarchicalHistogram(sf)
	}
}

func BenchmarkFitPoly(b *testing.B) {
	q := datasets.Poly()
	sf := sparse.FromDense(q)
	for _, d := range []int{1, 2, 5} {
		b.Run(string(rune('0'+d))+"degree", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := piecewise.FitPiecewisePoly(sf, datasets.PolyK, d, core.PaperOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLearnScaling shows sample-linear learning: time vs m.
func BenchmarkLearnScaling(b *testing.B) {
	p := datasets.HistPrime()
	r := rng.New(1)
	for _, m := range []int{1000, 10000, 100000} {
		samples := dist.Draw(p, m, r)
		b.Run(itoa(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := learn.HistogramFromSamples(p.N(), samples, datasets.HistK, core.PaperOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// -------------------------------------------------------------- Ablations

// BenchmarkAblationDelta: δ trades pieces for accuracy; the running time
// dependence is mild (Theorem 3.4).
func BenchmarkAblationDelta(b *testing.B) {
	q := datasets.Dow()
	sf := sparse.FromDense(q)
	for _, delta := range []float64{0.1, 1, 10, 1000} {
		b.Run(ftoa(delta), func(b *testing.B) {
			o := core.Options{Delta: delta, Gamma: 1}
			for i := 0; i < b.N; i++ {
				if _, err := core.ConstructHistogram(sf, datasets.DowK, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGamma: γ = c(2+2/δ)k buys the O(s) bound of
// Corollary 3.1; γ = 1 pays an extra log factor on the tail rounds.
func BenchmarkAblationGamma(b *testing.B) {
	q := datasets.Dow()
	sf := sparse.FromDense(q)
	target := (2 + 2/1000.0) * float64(datasets.DowK)
	for _, gamma := range []float64{1, target, 4 * target} {
		b.Run(ftoa(gamma), func(b *testing.B) {
			o := core.Options{Delta: 1000, Gamma: gamma}
			for i := 0; i < b.N; i++ {
				if _, err := core.ConstructHistogram(sf, datasets.DowK, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGramEvaluator: recurrence (production) vs the paper's
// explicit formula (cross-check oracle) for evaluating the Gram basis.
func BenchmarkAblationGramEvaluator(b *testing.B) {
	const n, d = 4096, 5
	b.Run("recurrence", func(b *testing.B) {
		basis, err := cheby.NewBasis(n, d)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]float64, d+1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			basis.Eval(float64(i%n), out)
		}
	})
	b.Run("explicit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cheby.EvaluateGram(i%n, d, n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationInitialPartition isolates stage costs of Fit: sparse
// conversion + initial partition vs the merging rounds.
func BenchmarkAblationInitialPartition(b *testing.B) {
	q := datasets.Dow()
	b.Run("fromDense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.FromDense(q)
		}
	})
	b.Run("initialPartition", func(b *testing.B) {
		sf := sparse.FromDense(q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sf.InitialPartition()
		}
	})
}

// ----------------------------------------------------------------- util

func itoa(x int) string { return strconv.Itoa(x) }

func ftoa(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
