// Command histbench regenerates the paper's Table 1: offline histogram
// approximation error and running time for exactdp, merging, merging2,
// fastmerging, fastmerging2, dual (and our measured gks stand-in for
// AHIST) on the hist (k=10), poly (k=10), and dow (k=50) data sets.
//
// Usage:
//
//	histbench                         # full table (exactdp on dow takes minutes)
//	histbench -skip-exact             # omit the O(n²k) exact DP
//	histbench -trials 20              # more timing repetitions
//	histbench -parallel OUT.json      # run the parallel-engine sweep instead
//	                                  # (serial vs multi-worker Fit/Learn at
//	                                  # n up to 10⁶; records BENCH_parallel.json)
//	histbench -query OUT.json         # run the query-serving sweep instead:
//	                                  # point/range/batched throughput at
//	                                  # k ∈ {10, 100, 1000}; records
//	                                  # BENCH_query.json
//	histbench -query OUT.json -quick  # small smoke grid (CI)
//	histbench -ingest OUT.json        # run the ingestion sweep instead:
//	                                  # serial vs sharded intake, single vs
//	                                  # batch, compaction pause percentiles;
//	                                  # records BENCH_ingest.json
//	histbench -ingest OUT.json -quick # small smoke grid (CI)
//	histbench -wal OUT.json           # run the durable-ingest sweep instead:
//	                                  # write-ahead-logged batched intake vs
//	                                  # the in-memory engine across the
//	                                  # fsync-batching curve (SyncEvery ∈
//	                                  # {1, 8, 64, 256}); records BENCH_wal.json
//	histbench -wal OUT.json -quick    # small smoke grid (CI)
//	histbench -codec OUT.json         # run the codec sweep instead: binary
//	                                  # envelope vs JSON encode/decode
//	                                  # throughput and bytes-per-piece at
//	                                  # k ∈ {10, 100, 1000}, plus maintainer
//	                                  # checkpoint cells; records
//	                                  # BENCH_codec.json
//	histbench -codec OUT.json -quick  # small smoke grid (CI)
//	histbench -serve OUT.json         # run the HTTP serving sweep instead:
//	                                  # p50/p99 request latency and qps for
//	                                  # point/range/batch workloads, JSON vs
//	                                  # binary bodies, 1/8/64 concurrent
//	                                  # clients against a live loopback
//	                                  # server; records BENCH_serve.json
//	histbench -serve OUT.json -quick  # small smoke grid (CI)
//	histbench -replicate OUT.json     # run the replication sweep instead:
//	                                  # steady-state delta bytes and sync
//	                                  # latency vs full-snapshot shipping
//	                                  # while skewed ingest touches 1/8 of
//	                                  # the shards; records
//	                                  # BENCH_replicate.json
//	histbench -replicate OUT.json -quick  # small smoke grid (CI)
//	histbench -window OUT.json        # run the windowed-query sweep instead:
//	                                  # EstimateRangeOver latency across
//	                                  # window spans and decay half-lives on
//	                                  # a wrapped epoch ring; records
//	                                  # BENCH_window.json
//	histbench -window OUT.json -quick # small smoke grid (CI)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("histbench: ")
	skipExact := flag.Bool("skip-exact", false, "omit the O(n²k) exact dynamic program")
	trials := flag.Int("trials", 0, "minimum timing repetitions per cell (0 = the sweep's own default)")
	parallelOut := flag.String("parallel", "", "run the parallel-engine sweep and write its JSON report to this file")
	queryOut := flag.String("query", "", "run the query-serving sweep and write its JSON report to this file")
	ingestOut := flag.String("ingest", "", "run the ingestion sweep and write its JSON report to this file")
	walOut := flag.String("wal", "", "run the durable-ingest sweep and write its JSON report to this file")
	codecOut := flag.String("codec", "", "run the codec sweep and write its JSON report to this file")
	serveOut := flag.String("serve", "", "run the HTTP serving sweep and write its JSON report to this file")
	replicateOut := flag.String("replicate", "", "run the replication sweep and write its JSON report to this file")
	windowOut := flag.String("window", "", "run the windowed-query sweep and write its JSON report to this file")
	quick := flag.Bool("quick", false, "with -query/-ingest/-codec/-serve/-replicate/-window: small smoke grid instead of the full sweep")
	flag.Parse()

	if *windowOut != "" {
		runWindow(*windowOut, *quick)
		return
	}
	if *replicateOut != "" {
		runReplicate(*replicateOut, *quick)
		return
	}
	if *serveOut != "" {
		runServe(*serveOut, *quick)
		return
	}
	if *codecOut != "" {
		runCodec(*codecOut, *trials, *quick)
		return
	}
	if *walOut != "" {
		runWAL(*walOut, *trials, *quick)
		return
	}
	if *ingestOut != "" {
		runIngest(*ingestOut, *trials, *quick)
		return
	}
	if *queryOut != "" {
		runQuery(*queryOut, *trials, *quick)
		return
	}
	if *parallelOut != "" {
		runParallel(*parallelOut, *trials)
		return
	}

	cfg := bench.DefaultTable1Config()
	cfg.SkipExact = *skipExact
	if *trials > 0 {
		cfg.MinTrials = *trials
	}

	fmt.Println("Table 1 — offline histogram approximation")
	fmt.Println("(hist: n=1000 k=10; poly: n=4000 k=10; dow: n=16384 k=50;")
	fmt.Println(" merging/fastmerging: δ=1000 γ=1 → 2k+1 pieces; *2 variants: k/2 → k+1 pieces;")
	fmt.Println(" relative error vs exactdp, relative time vs fastmerging2)")
	fmt.Println()

	start := time.Now()
	rows := bench.RunTable1(cfg)
	if err := bench.WriteTable1(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal harness time: %v\n", time.Since(start).Round(time.Millisecond))
}

// runServe hammers the HTTP serving layer over loopback and writes the
// latency/throughput trajectory.
func runServe(outPath string, quick bool) {
	cfg := bench.DefaultServeConfig()
	if quick {
		cfg = bench.QuickServeConfig()
	}
	fmt.Println("HTTP serving layer — request latency and query throughput")
	fmt.Println("(loopback httptest server; answers verified against in-process calls;")
	fmt.Println(" binary bodies are the HSYN batch frames, JSON is encoding/json)")
	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	rep := bench.RunServeBench(cfg)
	if err := bench.WriteServeJSON(f, rep); err != nil {
		log.Fatal(err)
	}
	for _, pt := range rep.Points {
		fmt.Printf("%-12s %-7s conc=%-3d batch=%-5d  p50 %8.1f µs  p99 %8.1f µs  %9.0f rps  %12.0f qps\n",
			pt.Workload, pt.Codec, pt.Concurrency, pt.Batch, pt.P50Us, pt.P99Us, pt.RPS, pt.QPS)
	}
	if rep.Note != "" {
		fmt.Println("note:", rep.Note)
	}
	fmt.Printf("report written to %s (total %v)\n", outPath, time.Since(start).Round(time.Millisecond))
}

// runWindow sweeps windowed and decayed range queries over a fully wrapped
// epoch ring and writes the latency trajectory.
func runWindow(outPath string, quick bool) {
	cfg := bench.DefaultWindowConfig()
	if quick {
		cfg = bench.QuickWindowConfig()
	}
	fmt.Println("Windowed & decayed queries — epoch-ring combine latency")
	fmt.Printf("(ring of %d sealed epochs plus a live tail; window=0 is the full\n", cfg.Epochs)
	fmt.Println(" retained history; decay scales sealed slots by exp2(-age/halflife))")
	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	rep := bench.RunWindowBench(cfg)
	if err := bench.WriteWindowJSON(f, rep); err != nil {
		log.Fatal(err)
	}
	for _, pt := range rep.Points {
		fmt.Printf("window=%-3d halflife=%-5.4g  %9.1f ns/query  summary %9.0f ns\n",
			pt.Window, pt.Halflife, pt.NsPerQuery, pt.SummaryNs)
	}
	fmt.Printf("%d-epoch window / full-history query = %.3f\n", cfg.MEpochWindow, rep.WindowVsFullQuery)
	if rep.Note != "" {
		fmt.Println("note:", rep.Note)
	}
	fmt.Printf("report written to %s (total %v)\n", outPath, time.Since(start).Round(time.Millisecond))
}

// runReplicate measures steady-state replication (version-vector deltas vs
// full-snapshot shipping) over loopback HTTP and writes the byte/latency
// trajectory.
func runReplicate(outPath string, quick bool) {
	cfg := bench.DefaultReplicateConfig()
	if quick {
		cfg = bench.QuickReplicateConfig()
	}
	fmt.Println("Delta replication — steady-state sync bytes and latency")
	fmt.Printf("(skewed ingest touches %d of %d shards per round; both modes replay\n", cfg.HotShards, cfg.Shards)
	fmt.Println(" the same schedule and end bit-identical to the primary)")
	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	rep := bench.RunReplicateBench(cfg)
	if err := bench.WriteReplicateJSON(f, rep); err != nil {
		log.Fatal(err)
	}
	for _, pt := range rep.Points {
		fmt.Printf("%-6s rounds=%-4d  %9.0f bytes/round  p50 %8.1f µs  p99 %8.1f µs  (total %d bytes)\n",
			pt.Mode, pt.Rounds, pt.BytesPerRound, pt.P50Us, pt.P99Us, pt.BytesTotal)
	}
	fmt.Printf("delta/full bytes = %.3f\n", rep.DeltaVsFullBytes)
	if rep.Note != "" {
		fmt.Println("note:", rep.Note)
	}
	fmt.Printf("report written to %s (total %v)\n", outPath, time.Since(start).Round(time.Millisecond))
}

// runCodec sweeps the snapshot/wire layer (binary envelope vs JSON on
// histogram synopses, maintainer checkpoints) and writes the JSON size +
// throughput trajectory.
func runCodec(outPath string, trials int, quick bool) {
	cfg := bench.DefaultCodecConfig()
	if quick {
		cfg = bench.QuickCodecConfig()
	}
	if trials > 0 {
		cfg.MinTrials = trials
	}
	fmt.Println("Versioned binary codec — snapshot size and throughput")
	fmt.Println("(binary = HSYN envelope: varint/delta boundaries, XOR-packed raw-bits")
	fmt.Println(" values, CRC-32C footer; round-trips are bit-identical on both codecs)")
	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	rep := bench.RunCodecBench(cfg)
	if err := bench.WriteCodecJSON(f, rep); err != nil {
		log.Fatal(err)
	}
	for _, pt := range rep.Points {
		ratio := ""
		if pt.RatioVsJSON > 0 {
			ratio = fmt.Sprintf("  %5.3f of JSON", pt.RatioVsJSON)
		}
		fmt.Printf("%-10s %-6s k=%-5d %7d bytes  enc %8.1f MB/s  dec %8.1f MB/s%s\n",
			pt.Object, pt.Codec, pt.K, pt.Bytes, pt.EncodeMBps, pt.DecodeMBps, ratio)
	}
	if rep.Note != "" {
		fmt.Println("note:", rep.Note)
	}
	fmt.Printf("report written to %s (total %v)\n", outPath, time.Since(start).Round(time.Millisecond))
}

// runQuery sweeps the serving path (point, range, and batched queries at
// k ∈ {10, 100, 1000}) and writes the JSON throughput trajectory.
func runQuery(outPath string, trials int, quick bool) {
	cfg := bench.DefaultQueryConfig()
	if quick {
		cfg = bench.QuickQueryConfig()
	}
	if trials > 0 {
		cfg.MinTrials = trials
	}
	fmt.Println("Indexed query engine — serving throughput")
	fmt.Println("(single vs batched; outputs are bit-identical across paths and worker")
	fmt.Println(" counts; range_scan is the retained legacy O(pieces) baseline)")
	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	rep := bench.RunQueryBench(cfg)
	if err := bench.WriteQueryJSON(f, rep); err != nil {
		log.Fatal(err)
	}
	for _, pt := range rep.Points {
		fmt.Printf("%-12s k=%-5d pieces=%-5d workers=%-2d batch=%-5d  %9.1f ns/query  %12.0f qps\n",
			pt.Workload, pt.K, pt.Pieces, pt.Workers, pt.Batch, pt.NsPerQuery, pt.QPS)
	}
	if rep.Note != "" {
		fmt.Println("note:", rep.Note)
	}
	fmt.Printf("report written to %s (total %v)\n", outPath, time.Since(start).Round(time.Millisecond))
}

// runIngest sweeps the intake engines (serial Maintainer vs Sharded at the
// configured shard counts, single updates vs batches) and writes the JSON
// throughput + pause-percentile trajectory.
func runIngest(outPath string, trials int, quick bool) {
	cfg := bench.DefaultIngestConfig()
	if quick {
		cfg = bench.QuickIngestConfig()
	}
	if trials > 0 {
		cfg.MinTrials = trials
	}
	fmt.Println("Sharded ingestion engine — intake throughput")
	fmt.Println("(serial = inline compactions; sharded = hashed shards, background")
	fmt.Println(" compaction behind a double-buffered log; pauses are ingest stalls)")
	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	rep := bench.RunIngestBench(cfg)
	if err := bench.WriteIngestJSON(f, rep); err != nil {
		log.Fatal(err)
	}
	for _, pt := range rep.Points {
		fmt.Printf("%-8s shards=%-2d %-7s batch=%-5d  %7.1f ns/update  %12.0f upd/s  compacts=%-5d pauses=%d (p99 %.0f µs)\n",
			pt.Mode, pt.Shards, pt.Workload, pt.Batch, pt.NsPerUpdate, pt.UpdatesPerSec,
			pt.Compactions, pt.PauseCount, pt.PauseP99Us)
	}
	for _, sp := range rep.SortKernel {
		fmt.Printf("sort     log=%-8d            radix %9.1f ns/op   comparison %9.1f ns/op   speedup %.2fx\n",
			sp.LogSize, sp.RadixNsPerOp, sp.CmpNsPerOp, sp.Speedup)
	}
	if rep.Note != "" {
		fmt.Println("note:", rep.Note)
	}
	fmt.Printf("report written to %s (total %v)\n", outPath, time.Since(start).Round(time.Millisecond))
}

// runWAL sweeps durable batched ingest (write-ahead-logged engine across
// the fsync-batching curve) against the in-memory baseline and writes the
// JSON throughput + log-traffic trajectory.
func runWAL(outPath string, trials int, quick bool) {
	cfg := bench.DefaultWALConfig()
	if quick {
		cfg = bench.QuickWALConfig()
	}
	if trials > 0 {
		cfg.MinTrials = trials
	}
	fmt.Println("Durable ingestion — write-ahead-logged intake vs in-memory")
	fmt.Println("(each run ingests the full stream, forces the log durable with Sync,")
	fmt.Println(" and ends with Summary; SyncEvery=1 fsyncs before every call returns)")
	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	rep := bench.RunWALBench(cfg)
	if err := bench.WriteWALJSON(f, rep); err != nil {
		log.Fatal(err)
	}
	for _, pt := range rep.Points {
		if pt.Mode == "memory" {
			fmt.Printf("%-7s                 batch=%-5d  %7.1f ns/update  %12.0f upd/s\n",
				pt.Mode, pt.Batch, pt.NsPerUpdate, pt.UpdatesPerSec)
			continue
		}
		fmt.Printf("%-7s sync-every=%-4d batch=%-5d  %7.1f ns/update  %12.0f upd/s  %.2fx memory  fsyncs=%-6d group=%.1f  ckpts=%d\n",
			pt.Mode, pt.SyncEvery, pt.Batch, pt.NsPerUpdate, pt.UpdatesPerSec,
			pt.OverheadVsMemory, pt.Fsyncs, pt.MeanGroup, pt.Checkpoints)
	}
	if rep.Note != "" {
		fmt.Println("note:", rep.Note)
	}
	fmt.Printf("report written to %s (total %v)\n", outPath, time.Since(start).Round(time.Millisecond))
}

// runParallel sweeps the parallel merging engine (serial vs multi-worker
// Fit, FitFast, Hierarchy, Learn) and writes the JSON trajectory.
func runParallel(outPath string, trials int) {
	cfg := bench.DefaultParallelConfig()
	if trials > 0 {
		cfg.MinTrials = trials
	}
	fmt.Println("Parallel merging engine — serial vs multi-worker wall clock")
	fmt.Println("(outputs are bit-identical across worker counts; see EXPERIMENTS.md)")
	// Open the output before the sweep so a bad path fails in milliseconds,
	// not after the full timing run.
	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	rep := bench.RunParallelBench(cfg)
	if err := bench.WriteParallelJSON(f, rep); err != nil {
		log.Fatal(err)
	}
	for _, pt := range rep.Points {
		fmt.Printf("%-10s n=%-8d workers=%-2d  %8.2f ms  speedup %.2fx\n",
			pt.Algorithm, pt.N, pt.Workers, pt.Millis, pt.Speedup)
	}
	if rep.Note != "" {
		fmt.Println("note:", rep.Note)
	}
	fmt.Printf("report written to %s (total %v)\n", outPath, time.Since(start).Round(time.Millisecond))
}
