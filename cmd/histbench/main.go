// Command histbench regenerates the paper's Table 1: offline histogram
// approximation error and running time for exactdp, merging, merging2,
// fastmerging, fastmerging2, dual (and our measured gks stand-in for
// AHIST) on the hist (k=10), poly (k=10), and dow (k=50) data sets.
//
// Usage:
//
//	histbench              # full table (exactdp on dow takes minutes)
//	histbench -skip-exact  # omit the O(n²k) exact DP
//	histbench -trials 20   # more timing repetitions
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("histbench: ")
	skipExact := flag.Bool("skip-exact", false, "omit the O(n²k) exact dynamic program")
	trials := flag.Int("trials", 10, "minimum timing repetitions per algorithm")
	flag.Parse()

	cfg := bench.DefaultTable1Config()
	cfg.SkipExact = *skipExact
	cfg.MinTrials = *trials

	fmt.Println("Table 1 — offline histogram approximation")
	fmt.Println("(hist: n=1000 k=10; poly: n=4000 k=10; dow: n=16384 k=50;")
	fmt.Println(" merging/fastmerging: δ=1000 γ=1 → 2k+1 pieces; *2 variants: k/2 → k+1 pieces;")
	fmt.Println(" relative error vs exactdp, relative time vs fastmerging2)")
	fmt.Println()

	start := time.Now()
	rows := bench.RunTable1(cfg)
	if err := bench.WriteTable1(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal harness time: %v\n", time.Since(start).Round(time.Millisecond))
}
