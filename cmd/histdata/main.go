// Command histdata regenerates the paper's Figure 1 data sets and writes
// them as TSV (index, value) to stdout or per-series files.
//
// Usage:
//
//	histdata               # all three series to stdout, blank-line separated
//	histdata -series dow   # one series
//	histdata -dir out/     # write out/hist.tsv, out/poly.tsv, out/dow.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/bench"
	"repro/internal/datasets"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("histdata: ")
	series := flag.String("series", "", "emit a single series: hist, poly, or dow")
	dir := flag.String("dir", "", "write one TSV file per series into this directory")
	flag.Parse()

	all := bench.Figure1Series()
	names := make([]string, 0, len(all))
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)

	if *series != "" {
		q, ok := all[*series]
		if !ok {
			log.Fatalf("unknown series %q (want hist, poly, or dow)", *series)
		}
		writeSeries(os.Stdout, *series, q)
		return
	}

	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, name := range names {
			f, err := os.Create(filepath.Join(*dir, name+".tsv"))
			if err != nil {
				log.Fatal(err)
			}
			writeSeries(f, name, all[name])
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	for _, name := range names {
		writeSeries(os.Stdout, name, all[name])
		fmt.Println()
	}
}

func writeSeries(f *os.File, name string, q []float64) {
	w := bufio.NewWriter(f)
	defer w.Flush()
	s := datasets.Describe(q)
	fmt.Fprintf(w, "# %s: n=%d min=%.3f max=%.3f mean=%.3f\n", name, s.N, s.Min, s.Max, s.Mean)
	for i, v := range q {
		fmt.Fprintf(w, "%d\t%.6f\n", i+1, v)
	}
}
