// Command histfit fits a histogram (or piecewise polynomial) to a numeric
// series read from a file or stdin (one value per line; blank lines and
// #-comments ignored) and prints the pieces.
//
// Usage:
//
//	histfit -k 10 data.txt            # merging, 2k+1 pieces (paper params)
//	histfit -k 10 -algo exact data.txt
//	histfit -k 10 -algo fast -delta 1 -gamma 1 data.txt
//	histfit -k 5 -degree 2 data.txt   # piecewise quadratic
//	cat data.txt | histfit -k 10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	histapprox "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("histfit: ")
	k := flag.Int("k", 10, "target number of histogram pieces")
	algo := flag.String("algo", "merging", "algorithm: merging, fast, exact, dual, gks")
	degree := flag.Int("degree", 0, "piecewise polynomial degree (0 = plain histogram)")
	delta := flag.Float64("delta", 1000, "merging δ parameter")
	gamma := flag.Float64("gamma", 1, "merging γ parameter")
	gksDelta := flag.Float64("gks-delta", 0.1, "GKS approximation parameter")
	flag.Parse()

	data, err := readValues(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	if len(data) == 0 {
		log.Fatal("no input values")
	}
	opts := histapprox.Options{Delta: *delta, Gamma: *gamma}

	if *degree > 0 {
		f, l2, err := histapprox.FitPolynomial(data, *k, *degree, &opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("piecewise degree-%d polynomial: %d pieces, l2 error %.6g\n",
			*degree, f.NumPieces(), l2)
		for _, pc := range f.Pieces() {
			fmt.Printf("  [%6d, %6d]  endpoints %.6g .. %.6g\n",
				pc.Lo, pc.Hi, pc.Fit.Eval(pc.Lo), pc.Fit.Eval(pc.Hi))
		}
		return
	}

	var (
		h  *histapprox.Histogram
		l2 float64
	)
	switch *algo {
	case "merging":
		h, l2, err = histapprox.Fit(data, *k, &opts)
	case "fast":
		h, l2, err = histapprox.FitFast(data, *k, &opts)
	case "exact":
		h, l2, err = histapprox.FitExact(data, *k)
	case "dual":
		h, l2, err = histapprox.FitDual(data, *k)
	case "gks":
		h, l2, err = histapprox.FitGKS(data, *k, *gksDelta)
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d pieces, l2 error %.6g (n=%d)\n", *algo, h.NumPieces(), l2, len(data))
	for _, pc := range h.Pieces() {
		fmt.Printf("  [%6d, %6d]  %.6g\n", pc.Lo, pc.Hi, pc.Value)
	}
}

func readValues(path string) ([]float64, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var out []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		// Accept "value" or "index<TAB>value" (histdata output).
		fields := strings.Fields(s)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}
