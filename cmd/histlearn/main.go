// Command histlearn regenerates the paper's Figure 2: learning the hist',
// poly', and dow' distributions from m = 1000..10000 samples with the
// exactdp, merging, and merging2 post-processors, reporting mean ± std ℓ2
// error over repeated trials together with the opt_k floor.
//
// Usage:
//
//	histlearn               # the paper's full sweep (20 trials per point)
//	histlearn -trials 5     # quicker
//	histlearn -skip-exact   # merging algorithms only
//	histlearn -max-m 4000   # shorter x-axis
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("histlearn: ")
	trials := flag.Int("trials", 20, "trials per (dataset, m) point")
	skipExact := flag.Bool("skip-exact", false, "omit the exactdp learner")
	maxM := flag.Int("max-m", 10000, "largest sample size")
	stepM := flag.Int("step-m", 1000, "sample size step")
	seed := flag.Uint64("seed", 20150531, "experiment seed")
	flag.Parse()

	cfg := bench.Figure2Config{
		Trials: *trials, Seed: *seed, SkipExact: *skipExact,
		Progress: func(dataset string, m int) {
			log.Printf("done: %s m=%d", dataset, m)
		},
	}
	for m := *stepM; m <= *maxM; m += *stepM {
		cfg.SampleSizes = append(cfg.SampleSizes, m)
	}
	if len(cfg.SampleSizes) == 0 {
		log.Fatal("empty sample-size sweep")
	}

	fmt.Println("Figure 2 — histogram learning from samples")
	fmt.Printf("(%d trials per point; hist' k=10, poly' k=10, dow' k=50)\n\n", *trials)
	start := time.Now()
	series := bench.RunFigure2(cfg)
	if err := bench.WriteFigure2(os.Stdout, series); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total harness time: %v\n", time.Since(start).Round(time.Millisecond))
}
