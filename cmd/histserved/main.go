// Command histserved serves synopses over HTTP: host checkpoint files
// and/or fresh streaming intake engines, then answer point/range queries,
// ingest update batches, and replicate snapshots.
//
// Usage:
//
//	histserved -addr :8157 \
//	    -load latency=latency_v1.bin \         # restore any snapshot file
//	    -load col=estimator_v1.bin \
//	    -sharded events=1000000,64 \           # fresh intake engine: n,k[,shards[,bufcap]]
//	    -windowed recent=1000000,64,24 \       # sliding-window engine: n,k,epochs[,shards[,bufcap]]
//	    -advance-interval 1h \                 # seal every -windowed engine's epoch hourly
//	    -wal /var/lib/histserved \             # make intake engines crash-safe
//	    -replicate events \                    # fan events out to the replicas below
//	    -replica http://replica1:8157 \
//	    -replica http://replica2:8157
//
// With -replicate set, the daemon ships version-vector deltas of the named
// engine to every -replica on the -replicate-interval cadence: only shards
// that changed since a replica's last sync travel, replicas at the same
// coordinates share one memoized encode, and a restarted primary or replica
// self-heals through an automatic full resync. Per-replica lag, sync, and
// byte counters appear on /metrics (histapprox_replica_* families).
//
// With -wal set, every -sharded engine is write-ahead logged under
// <dir>/<name>: acknowledged ingests survive a crash (per the -sync-every
// group-commit policy), periodic checkpoints bound the log, and a restart
// with the same flags recovers each engine — snapshot restored, log tail
// replayed — before the listener accepts traffic (GET /readyz flips to 200
// when recovery is done). SIGINT/SIGTERM drains in-flight requests, flushes
// the logs, cuts a final checkpoint, and exits 0.
//
// Endpoints (see the package documentation of repro's serving layer):
//
//	GET  /v1                        list hosted synopses
//	GET  /v1/{name}/at?x=42         one point query
//	POST /v1/{name}/at              batch point queries (JSON or binary body)
//	GET  /v1/{name}/range?a=1&b=99  one range query
//	     ...&window=6&halflife=12   windowed/decayed answers (-windowed engines)
//	POST /v1/{name}/range           batch range queries
//	POST /v1/{name}/add             ingest updates (streaming engines)
//	GET  /v1/{name}/snapshot        download the binary snapshot
//	PUT  /v1/{name}/snapshot        hot-swap from a pushed snapshot
//	GET  /metrics                   Prometheus scrape (ingest, WAL, checkpoints)
//	GET  /healthz                   liveness (always 200)
//	GET  /readyz                    readiness (503 until recovery finishes)
//
// Snapshots are the library's versioned binary envelopes, so files written
// by one process (or fetched from another histserved) restore directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling handlers, exposed only behind -pprof
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	histapprox "repro"
)

// nameValue parses a repeatable "name=value" flag.
func nameValue(raw, flagName string) (name, value string, err error) {
	name, value, ok := strings.Cut(raw, "=")
	if !ok || name == "" || value == "" {
		return "", "", fmt.Errorf("-%s wants name=value, got %q", flagName, raw)
	}
	return name, value, nil
}

// loopbackHostPort renders a bound listener address as something dialable:
// a wildcard host (":8157" listens on every interface) is rewritten to
// loopback, since the replicator's primary client runs in this process.
func loopbackHostPort(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// onListen, when non-nil, receives the bound listener address before the
// server starts accepting — the e2e test's handle on a :0 port.
var onListen func(net.Addr)

func main() {
	log.SetFlags(0)
	log.SetPrefix("histserved: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("histserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8157", "listen address")
	workers := fs.Int("workers", 1, "per-request batch fan-out (≤ 0 = all cores; 1 is usually best under concurrent load)")
	maxBatch := fs.Int("max-batch", 0, "max queries/updates per request body (0 = default)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	walDir := fs.String("wal", "", "write-ahead log base directory; each -sharded engine persists under <dir>/<name> (empty = in-memory only)")
	syncEvery := fs.Int("sync-every", 0, "fsync the WAL at least every N appended records (1 = before every ingest returns; 0 = default)")
	ckptEvery := fs.Int("checkpoint-every", 0, "checkpoint after N logged ingest calls (0 = default, negative = count-based checkpoints off)")
	ckptInterval := fs.Duration("checkpoint-interval", 0, "also checkpoint on this wall-clock period (0 = off)")

	replName := fs.String("replicate", "", "fan this hosted engine out to every -replica on a cadence (requires ≥ 1 -replica)")
	replInterval := fs.Duration("replicate-interval", time.Second, "delta sync cadence for -replicate")
	advanceInterval := fs.Duration("advance-interval", 0, "seal every -windowed engine's live epoch on this wall-clock period (0 = only external seals)")

	var loads, shardeds, windoweds, replicas []string
	fs.Func("load", "host a snapshot file as name=path (repeatable)", func(raw string) error {
		loads = append(loads, raw)
		return nil
	})
	fs.Func("sharded", "host a fresh sharded intake engine as name=n,k[,shards[,bufcap]] (repeatable)", func(raw string) error {
		shardeds = append(shardeds, raw)
		return nil
	})
	fs.Func("windowed", "host a fresh sliding-window sharded engine as name=n,k,epochs[,shards[,bufcap]]; query with ?window= / ?halflife= (repeatable)", func(raw string) error {
		windoweds = append(windoweds, raw)
		return nil
	})
	fs.Func("replica", "replica base URL for -replicate, e.g. http://host:8158 (repeatable)", func(raw string) error {
		replicas = append(replicas, raw)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replName != "" && len(replicas) == 0 {
		return fmt.Errorf("-replicate %s needs at least one -replica", *replName)
	}
	if *replName == "" && len(replicas) > 0 {
		return fmt.Errorf("-replica given without -replicate")
	}

	srv := histapprox.NewSynopsisServer(&histapprox.ServeConfig{Workers: *workers, MaxBatch: *maxBatch})
	// Not ready until every engine is hosted — with a WAL that includes
	// recovery replay, which a load balancer must wait out.
	srv.SetReady(false)

	var hosted []string
	// closers are the durable engines to flush on shutdown, closed in
	// reverse hosting order.
	var closers []interface{ Close() error }

	for _, raw := range loads {
		name, path, err := nameValue(raw, "load")
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = srv.Load(name, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", path, err)
		}
		hosted = append(hosted, name+" ("+path+")")
	}
	for _, raw := range shardeds {
		name, spec, err := nameValue(raw, "sharded")
		if err != nil {
			return err
		}
		parts := strings.Split(spec, ",")
		if len(parts) < 2 || len(parts) > 4 {
			return fmt.Errorf("-sharded wants name=n,k[,shards[,bufcap]], got %q", raw)
		}
		nums := make([]int, 4)
		for i, p := range parts {
			if nums[i], err = strconv.Atoi(strings.TrimSpace(p)); err != nil {
				return fmt.Errorf("-sharded %q: %w", raw, err)
			}
		}
		if *walDir == "" {
			engine, err := histapprox.NewShardedMaintainer(nums[0], nums[1], nums[2], nums[3], nil)
			if err != nil {
				return err
			}
			if err := srv.Host(name, engine); err != nil {
				return err
			}
			hosted = append(hosted, fmt.Sprintf("%s (sharded n=%d k=%d shards=%d)", name, nums[0], nums[1], engine.Shards()))
			continue
		}
		dir := filepath.Join(*walDir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		engine, err := histapprox.OpenDurableShardedMaintainer(nums[0], nums[1], nums[2], nums[3], nil,
			histapprox.DurabilityOptions{
				Dir:                dir,
				SyncEvery:          *syncEvery,
				CheckpointEvery:    *ckptEvery,
				CheckpointInterval: *ckptInterval,
			})
		if err != nil {
			return fmt.Errorf("opening durable engine %q in %s: %w", name, dir, err)
		}
		closers = append(closers, engine)
		if err := srv.Host(name, engine); err != nil {
			return err
		}
		detail := ""
		if n := engine.Replayed(); n > 0 {
			detail = fmt.Sprintf(", replayed %d WAL records", n)
		}
		hosted = append(hosted, fmt.Sprintf("%s (durable sharded, wal=%s%s)", name, dir, detail))
	}
	// advancers are the windowed engines the -advance-interval ticker seals.
	var advancers []func() error
	for _, raw := range windoweds {
		name, spec, err := nameValue(raw, "windowed")
		if err != nil {
			return err
		}
		parts := strings.Split(spec, ",")
		if len(parts) < 3 || len(parts) > 5 {
			return fmt.Errorf("-windowed wants name=n,k,epochs[,shards[,bufcap]], got %q", raw)
		}
		nums := make([]int, 5)
		for i, p := range parts {
			if nums[i], err = strconv.Atoi(strings.TrimSpace(p)); err != nil {
				return fmt.Errorf("-windowed %q: %w", raw, err)
			}
		}
		n, k, epochs, shards, bufcap := nums[0], nums[1], nums[2], nums[3], nums[4]
		if *walDir == "" {
			engine, err := histapprox.NewWindowedShardedMaintainer(n, k, epochs, shards, bufcap, nil)
			if err != nil {
				return err
			}
			if err := srv.Host(name, engine); err != nil {
				return err
			}
			advancers = append(advancers, engine.Advance)
			hosted = append(hosted, fmt.Sprintf("%s (windowed n=%d k=%d epochs=%d shards=%d)", name, n, k, epochs, engine.Shards()))
			continue
		}
		dir := filepath.Join(*walDir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		engine, err := histapprox.OpenDurableShardedMaintainer(n, k, shards, bufcap, nil,
			histapprox.DurabilityOptions{
				Dir:                dir,
				SyncEvery:          *syncEvery,
				CheckpointEvery:    *ckptEvery,
				CheckpointInterval: *ckptInterval,
				WindowEpochs:       epochs,
			})
		if err != nil {
			return fmt.Errorf("opening durable windowed engine %q in %s: %w", name, dir, err)
		}
		closers = append(closers, engine)
		if err := srv.Host(name, engine); err != nil {
			return err
		}
		advancers = append(advancers, engine.Advance)
		detail := ""
		if n := engine.Replayed(); n > 0 {
			detail = fmt.Sprintf(", replayed %d WAL records", n)
		}
		hosted = append(hosted, fmt.Sprintf("%s (durable windowed epochs=%d, wal=%s%s)", name, epochs, dir, detail))
	}
	if *advanceInterval > 0 && len(advancers) == 0 {
		return fmt.Errorf("-advance-interval given without any -windowed engine")
	}
	if len(hosted) == 0 {
		log.Print("warning: nothing hosted at boot; push snapshots via PUT /v1/{name}/snapshot")
	}
	for _, h := range hosted {
		log.Printf("hosting %s", h)
	}
	srv.SetReady(true)

	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on
		// http.DefaultServeMux, which the query listener never uses — the
		// profiling surface stays on its own (typically loopback-only) port.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", ln.Addr())
		serveErr <- httpSrv.Serve(ln)
	}()

	// Replication fan-out: the primary client points at our own bound
	// listener (so it works with -addr :0), the replicas at their URLs.
	var repl *histapprox.SynopsisReplicator
	if *replName != "" {
		primary := histapprox.NewServeClient("http://"+loopbackHostPort(ln.Addr()), nil, true)
		members := make([]*histapprox.ServeClient, len(replicas))
		for i, base := range replicas {
			members[i] = histapprox.NewServeClient(base, nil, true)
			members[i].Retries = 2
			members[i].RetryBackoff = 50 * time.Millisecond
		}
		repl, err = histapprox.NewSynopsisReplicator(*replName, primary, members, *replInterval)
		if err != nil {
			return err
		}
		srv.AttachReplicator(repl)
		repl.Start()
		log.Printf("replicating %s to %s every %s", *replName, strings.Join(replicas, ", "), *replInterval)
	}

	// Epoch ticker: wall-clock epochs for the windowed engines. Sealing is
	// cheap (one drain + compaction per shard), so one goroutine serves all.
	var advanceStop chan struct{}
	if *advanceInterval > 0 {
		advanceStop = make(chan struct{})
		go func() {
			ticker := time.NewTicker(*advanceInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					for _, adv := range advancers {
						if err := adv(); err != nil {
							log.Printf("sealing windowed epoch: %v", err)
						}
					}
				case <-advanceStop:
					return
				}
			}
		}()
		log.Printf("sealing windowed epochs every %s", *advanceInterval)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		log.Printf("%s: shutting down", s)
	}
	// Stop intake first: drain in-flight requests (new connections are
	// refused), THEN flush and checkpoint the durable engines — after the
	// drain no ingest can race the final checkpoint.
	srv.SetReady(false)
	if repl != nil {
		repl.Stop()
	}
	if advanceStop != nil {
		close(advanceStop)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	for i := len(closers) - 1; i >= 0; i-- {
		if err := closers[i].Close(); err != nil {
			return fmt.Errorf("closing durable engine: %w", err)
		}
	}
	log.Print("clean shutdown: WAL flushed, final checkpoint committed")
	return nil
}
