// Command histserved serves synopses over HTTP: host checkpoint files
// and/or fresh streaming intake engines, then answer point/range queries,
// ingest update batches, and replicate snapshots.
//
// Usage:
//
//	histserved -addr :8157 \
//	    -load latency=latency_v1.bin \         # restore any snapshot file
//	    -load col=estimator_v1.bin \
//	    -sharded events=1000000,64             # fresh intake engine: n,k[,shards[,bufcap]]
//
// Endpoints (see the package documentation of repro's serving layer):
//
//	GET  /v1                        list hosted synopses
//	GET  /v1/{name}/at?x=42         one point query
//	POST /v1/{name}/at              batch point queries (JSON or binary body)
//	GET  /v1/{name}/range?a=1&b=99  one range query
//	POST /v1/{name}/range           batch range queries
//	POST /v1/{name}/add             ingest updates (streaming engines)
//	GET  /v1/{name}/snapshot        download the binary snapshot
//	PUT  /v1/{name}/snapshot        hot-swap from a pushed snapshot
//
// Snapshots are the library's versioned binary envelopes, so files written
// by one process (or fetched from another histserved) restore directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling handlers, exposed only behind -pprof
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	histapprox "repro"
)

// nameValue parses a repeatable "name=value" flag.
func nameValue(raw, flagName string) (name, value string, err error) {
	name, value, ok := strings.Cut(raw, "=")
	if !ok || name == "" || value == "" {
		return "", "", fmt.Errorf("-%s wants name=value, got %q", flagName, raw)
	}
	return name, value, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("histserved: ")

	addr := flag.String("addr", ":8157", "listen address")
	workers := flag.Int("workers", 1, "per-request batch fan-out (≤ 0 = all cores; 1 is usually best under concurrent load)")
	maxBatch := flag.Int("max-batch", 0, "max queries/updates per request body (0 = default)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")

	var hosted []string
	boot := func(fn func() error) {
		if err := fn(); err != nil {
			log.Fatal(err)
		}
	}

	var loads, shardeds []string
	flag.Func("load", "host a snapshot file as name=path (repeatable)", func(raw string) error {
		loads = append(loads, raw)
		return nil
	})
	flag.Func("sharded", "host a fresh sharded intake engine as name=n,k[,shards[,bufcap]] (repeatable)", func(raw string) error {
		shardeds = append(shardeds, raw)
		return nil
	})
	flag.Parse()

	srv := histapprox.NewSynopsisServer(&histapprox.ServeConfig{Workers: *workers, MaxBatch: *maxBatch})

	for _, raw := range loads {
		raw := raw
		boot(func() error {
			name, path, err := nameValue(raw, "load")
			if err != nil {
				return err
			}
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := srv.Load(name, f); err != nil {
				return fmt.Errorf("loading %s: %w", path, err)
			}
			hosted = append(hosted, name+" ("+path+")")
			return nil
		})
	}
	for _, raw := range shardeds {
		raw := raw
		boot(func() error {
			name, spec, err := nameValue(raw, "sharded")
			if err != nil {
				return err
			}
			parts := strings.Split(spec, ",")
			if len(parts) < 2 || len(parts) > 4 {
				return fmt.Errorf("-sharded wants name=n,k[,shards[,bufcap]], got %q", raw)
			}
			nums := make([]int, 4)
			for i, p := range parts {
				if nums[i], err = strconv.Atoi(strings.TrimSpace(p)); err != nil {
					return fmt.Errorf("-sharded %q: %w", raw, err)
				}
			}
			engine, err := histapprox.NewShardedMaintainer(nums[0], nums[1], nums[2], nums[3], nil)
			if err != nil {
				return err
			}
			if err := srv.Host(name, engine); err != nil {
				return err
			}
			hosted = append(hosted, fmt.Sprintf("%s (sharded n=%d k=%d shards=%d)", name, nums[0], nums[1], engine.Shards()))
			return nil
		})
	}
	if len(hosted) == 0 {
		log.Print("warning: nothing hosted at boot; push snapshots via PUT /v1/{name}/snapshot")
	}
	for _, h := range hosted {
		log.Printf("hosting %s", h)
	}

	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on
		// http.DefaultServeMux, which the query listener never uses — the
		// profiling surface stays on its own (typically loopback-only) port.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
