package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	histapprox "repro"
)

// jsonDecode decodes one JSON response body and closes it.
func jsonDecode(r *http.Response, v any) error {
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", r.StatusCode)
	}
	return json.NewDecoder(r.Body).Decode(v)
}

// startDaemon runs the daemon in-process on a random port and returns its
// base URL plus the channel run's error arrives on.
func startDaemon(t *testing.T, args []string) (string, chan error) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })
	done := make(chan error, 1)
	go func() { done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...)) }()
	select {
	case a := <-addrCh:
		return "http://" + a.String(), done
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
		return "", nil
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
		return "", nil
	}
}

// TestGracefulShutdown is the end-to-end drain test: boot a durable daemon,
// ingest through HTTP, SIGTERM it, and prove (a) run returns nil — exit 0 —
// and (b) recovering the WAL directory finds a final checkpoint holding
// every acknowledged update, with no log tail left to replay.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	base, done := startDaemon(t, []string{
		"-sharded", "ev=1000,6,2,32",
		"-wal", dir, "-sync-every", "1", "-checkpoint-every", "1000",
	})

	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v %v", resp, err)
	}
	const calls = 20
	for i := 0; i < calls; i++ {
		body := fmt.Sprintf(`{"points":[%d,%d,%d]}`, 1+i%1000, 1+(i*7)%1000, 1+(i*13)%1000)
		resp, err := http.Post(base+"/v1/ev/add", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}

	// The daemon catches SIGTERM via signal.Notify, so delivering it to our
	// own process exercises the real shutdown path without a subprocess.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil (exit 0)", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}

	// The listener must actually be closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}

	rec, err := histapprox.RecoverDurableShardedMaintainer(histapprox.DurabilityOptions{
		Dir: dir + "/ev", CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatalf("recovering after clean shutdown: %v", err)
	}
	defer rec.Close()
	if n := rec.Replayed(); n != 0 {
		t.Errorf("clean shutdown left %d WAL records to replay, want 0 (final checkpoint)", n)
	}
	st := rec.Stats()
	if got, want := st.Ingest.Updates, calls*3; got != want {
		t.Errorf("recovered %d updates, want %d", got, want)
	}
	if got, want := st.WAL.LastSeq, uint64(calls); got != want {
		t.Errorf("recovered WAL seq %d, want %d", got, want)
	}
}

// TestDaemonWindowedEngine boots a durable windowed engine with an epoch
// ticker, ingests, answers windowed and decayed queries over HTTP, rejects
// malformed knobs, and keeps the window across a restart.
func TestDaemonWindowedEngine(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-windowed", "rec=1000,6,4,2,32",
		"-advance-interval", "25ms",
		"-wal", dir, "-sync-every", "1",
	}
	base, done := startDaemon(t, args)
	resp, err := http.Post(base+"/v1/rec/add", "application/json",
		strings.NewReader(`{"points":[5,5,7],"weights":[2,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	// Windowed and decayed answers are 200s; the full-history mass includes
	// the ingest regardless of how many epochs the ticker has sealed so far.
	var out struct {
		Value float64 `json:"value"`
	}
	r, err := http.Get(base + "/v1/rec/range?a=1&b=1000&window=4&halflife=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonDecode(r, &out); err != nil {
		t.Fatal(err)
	}
	r, err = http.Get(base + "/v1/rec/range?a=1&b=1000")
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonDecode(r, &out); err != nil {
		t.Fatal(err)
	}
	if out.Value != 7 {
		t.Errorf("full-history mass = %v, want 7", out.Value)
	}
	// Malformed knobs are client errors.
	for _, q := range []string{"window=0", "window=abc", "window=99", "halflife=-1"} {
		r, err := http.Get(base + "/v1/rec/range?a=1&b=1000&" + q)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status %d, want 400", q, r.StatusCode)
		}
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	// Restart on the same WAL: recovery restores the windowed shape, so
	// windowed queries keep answering (a plain engine would 400).
	base, done = startDaemon(t, args)
	r, err = http.Get(base + "/v1/rec/range?a=1&b=1000&window=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonDecode(r, &out); err != nil {
		t.Fatalf("windowed query after restart: %v", err)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestDaemonRestartRecovers boots, ingests, shuts down cleanly, then boots
// AGAIN on the same WAL directory and checks the served answers include the
// first life's updates.
func TestDaemonRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-sharded", "ev=1000,6,2,32",
		"-wal", dir, "-sync-every", "1",
	}
	base, done := startDaemon(t, args)
	resp, err := http.Post(base+"/v1/ev/add", "application/json",
		strings.NewReader(`{"points":[5,5,5],"weights":[2,2,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	base, done = startDaemon(t, args)
	r, err := http.Get(base + "/v1/ev/range?a=1&b=1000")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Value float64 `json:"value"`
	}
	if err := jsonDecode(r, &out); err != nil {
		t.Fatal(err)
	}
	if out.Value != 6 {
		t.Errorf("total mass after restart = %v, want 6", out.Value)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
