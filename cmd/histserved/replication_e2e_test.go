package main

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	histapprox "repro"
)

// readBody fetches a URL and returns its body as a string.
func readBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// rangeValue runs one JSON range query against a daemon.
func rangeValue(t *testing.T, base, name string, a, b int) float64 {
	t.Helper()
	r, err := http.Get(fmt.Sprintf("%s/v1/%s/range?a=%d&b=%d", base, name, a, b))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Value float64 `json:"value"`
	}
	if err := jsonDecode(r, &out); err != nil {
		t.Fatal(err)
	}
	return out.Value
}

// TestThreeNodeReplication is the ISSUE's process demo: one primary daemon
// fanning a live intake engine out to two replica daemons over real HTTP,
// with bit-identical answers on every node and bounded lag on /metrics.
func TestThreeNodeReplication(t *testing.T) {
	// Replicas boot empty: the first complete delta frame hosts the engine.
	rep1, done1 := startDaemon(t, nil)
	rep2, done2 := startDaemon(t, nil)
	primary, done0 := startDaemon(t, []string{
		"-sharded", "ev=100000,8,4,256",
		"-replicate", "ev",
		"-replica", rep1,
		"-replica", rep2,
		"-replicate-interval", "30ms",
	})

	// Skewed ingest: most mass lands in a narrow band, so most rounds touch
	// a minority of shards — the delta protocol's home turf.
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 5; round++ {
		var pts strings.Builder
		pts.WriteString(`{"points":[`)
		for i := 0; i < 200; i++ {
			if i > 0 {
				pts.WriteByte(',')
			}
			p := 1 + rng.Intn(500)
			if rng.Intn(10) == 0 {
				p = 1 + rng.Intn(100000)
			}
			fmt.Fprintf(&pts, "%d", p)
		}
		pts.WriteString(`]}`)
		resp, err := http.Post(primary+"/v1/ev/add", "application/json", strings.NewReader(pts.String()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest round %d: status %d", round, resp.StatusCode)
		}
		time.Sleep(40 * time.Millisecond)
	}

	// Quiesce: wait until both replicas exist and answer the full-domain
	// range identically to the primary. Bit-identical equality is the
	// replication contract, not an approximation.
	want := rangeValue(t, primary, "ev", 1, 100000)
	if want <= 0 {
		t.Fatalf("primary total mass = %v", want)
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, rep := range []string{rep1, rep2} {
		for {
			r, err := http.Get(fmt.Sprintf("%s/v1/ev/range?a=1&b=100000", rep))
			if err == nil && r.StatusCode == http.StatusOK {
				var out struct {
					Value float64 `json:"value"`
				}
				if err := jsonDecode(r, &out); err == nil && out.Value == want {
					break
				}
			} else if err == nil {
				r.Body.Close()
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %s never converged to primary mass %v", rep, want)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	// Spot-check several sub-ranges for bit-identity across all three nodes.
	for _, ab := range [][2]int{{1, 500}, {250, 750}, {1, 100}, {90000, 100000}} {
		p := rangeValue(t, primary, "ev", ab[0], ab[1])
		for _, rep := range []string{rep1, rep2} {
			if got := rangeValue(t, rep, "ev", ab[0], ab[1]); got != p {
				t.Errorf("range [%d,%d]: replica %s = %v, primary = %v", ab[0], ab[1], rep, got, p)
			}
		}
	}

	// The primary's /metrics must carry the per-replica families, and lag
	// must be bounded: with a 30ms cadence and a live primary, well under
	// the 10s convergence budget.
	metrics := readBody(t, primary+"/metrics")
	for _, family := range []string{
		"histapprox_replica_syncs_total",
		"histapprox_replica_full_syncs_total",
		"histapprox_replica_delta_bytes_total",
		"histapprox_replica_lag_seconds",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	var maxLag float64
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, "histapprox_replica_lag_seconds{") {
			continue
		}
		var lag float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &lag); err != nil {
			t.Fatalf("unparseable lag line %q: %v", line, err)
		}
		if lag > maxLag {
			maxLag = lag
		}
	}
	if maxLag <= 0 || maxLag > 10 {
		t.Errorf("replica lag = %vs, want (0, 10s]", maxLag)
	}

	// One SIGTERM reaches every in-process daemon; all three must exit 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i, done := range []chan error{done0, done1, done2} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon %d shutdown: %v", i, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("daemon %d did not shut down", i)
		}
	}
}

// TestReplicationFlagValidation pins the flag contract: -replicate without
// -replica (and the converse) refuse at boot instead of silently doing
// nothing.
func TestReplicationFlagValidation(t *testing.T) {
	if err := run([]string{"-replicate", "ev"}); err == nil ||
		!strings.Contains(err.Error(), "-replica") {
		t.Errorf("-replicate without -replica: %v, want an error naming -replica", err)
	}
	if err := run([]string{"-replica", "http://localhost:1"}); err == nil ||
		!strings.Contains(err.Error(), "-replicate") {
		t.Errorf("-replica without -replicate: %v, want an error naming -replicate", err)
	}
}

// compile-time use of the facade aliases exercised elsewhere in this test
// file's package (the daemon itself builds them).
var _ *histapprox.SynopsisReplicator
