package histapprox

import (
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/piecewise"
	"repro/internal/quantile"
	"repro/internal/stream"
	"repro/internal/synopsis"
	"repro/internal/wavelet"
)

// Persistence & snapshots.
//
// Every synopsis type speaks one versioned binary wire format (see
// internal/codec): a 6-byte envelope header (magic "HSYN", format version,
// type tag), a payload of varint/delta-encoded boundaries and raw-bits
// IEEE-754 values, and a CRC-32C footer. Round trips are bit-identical —
// encode→decode→encode yields identical bytes and a decoded object answers
// every query with bit-identical results — and decoding validates as
// strictly as the JSON decoders (malformed partitions, non-finite values,
// corrupt or truncated envelopes are all rejected).
//
// Three ways in:
//
//   - io.WriterTo / io.ReaderFrom on the synopsis types themselves:
//     Histogram, Hierarchy, PiecewisePoly, CDF, and WaveletSynopsis all
//     implement both, so h.WriteTo(file) / h.ReadFrom(file) work directly.
//   - Snapshot / Restore on the streaming engines: a StreamingHistogram or
//     ShardedHistogram checkpoints its summary views plus the pending
//     (uncompacted) update logs, so a restored engine resumes mid-stream
//     bit-identically to the uninterrupted run — see examples/checkpoint.
//   - Encode / Decode here: tag-dispatched helpers when the caller does not
//     know (or care) which synopsis type a stream holds.
//
// Envelopes are self-delimiting, so any number of them can be concatenated
// on one stream and read back in order.

// Encode writes v as one binary envelope to w. Supported types: *Histogram,
// *Hierarchy, *PiecewisePoly, *CDF, *WaveletSynopsis, a SelectivityEstimator
// built by this package, *StreamingHistogram, and *ShardedHistogram.
func Encode(w io.Writer, v any) error {
	switch obj := v.(type) {
	case *Histogram:
		_, err := obj.WriteTo(w)
		return err
	case *Hierarchy:
		_, err := obj.WriteTo(w)
		return err
	case *PiecewisePoly:
		_, err := obj.WriteTo(w)
		return err
	case *CDF:
		_, err := obj.WriteTo(w)
		return err
	case *WaveletSynopsis:
		_, err := obj.WriteTo(w)
		return err
	case *StreamingHistogram:
		return obj.Snapshot(w)
	case *ShardedHistogram:
		return obj.Snapshot(w)
	default:
		if est, ok := v.(SelectivityEstimator); ok {
			return synopsis.EncodeEstimator(w, est)
		}
		return fmt.Errorf("histapprox: cannot encode %T", v)
	}
}

// Decode reads one binary envelope from r and returns the decoded object:
// *Histogram, *Hierarchy, *PiecewisePoly, *CDF, *WaveletSynopsis,
// SelectivityEstimator, *StreamingHistogram, or *ShardedHistogram depending
// on the envelope's type tag. The CRC footer is verified before the object
// is returned.
func Decode(r io.Reader) (any, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return nil, err
	}
	var v any
	switch tag {
	case codec.TagHistogram:
		v, err = core.DecodeHistogramPayload(dec)
	case codec.TagHierarchy:
		v, err = core.DecodeHierarchyPayload(dec)
	case codec.TagPiecewisePoly:
		v, err = piecewise.DecodePayload(dec)
	case codec.TagCDF:
		v, err = quantile.DecodePayload(dec)
	case codec.TagWavelet:
		v, err = wavelet.DecodePayload(dec)
	case codec.TagEstimator:
		v, err = synopsis.DecodeEstimatorPayload(dec)
	case codec.TagMaintainer:
		v, err = stream.DecodeMaintainerPayload(dec)
	case codec.TagSharded:
		v, err = stream.DecodeShardedPayload(dec)
	case codec.TagWindowed:
		v, err = stream.DecodeWindowedPayload(dec)
	default:
		return nil, fmt.Errorf("histapprox: unknown type tag %d", tag)
	}
	if err != nil {
		return nil, err
	}
	if err := dec.Close(); err != nil {
		return nil, err
	}
	return v, nil
}

// DecodeHistogram reads one histogram envelope from r.
func DecodeHistogram(r io.Reader) (*Histogram, error) { return core.DecodeHistogram(r) }

// DecodeHierarchy reads one hierarchy envelope from r.
func DecodeHierarchy(r io.Reader) (*Hierarchy, error) { return core.DecodeHierarchy(r) }

// DecodePiecewisePoly reads one piecewise-polynomial envelope from r.
func DecodePiecewisePoly(r io.Reader) (*PiecewisePoly, error) { return piecewise.Decode(r) }

// DecodeCDF reads one CDF envelope from r.
func DecodeCDF(r io.Reader) (*CDF, error) { return quantile.Decode(r) }

// DecodeWaveletSynopsis reads one wavelet-synopsis envelope from r.
func DecodeWaveletSynopsis(r io.Reader) (*WaveletSynopsis, error) { return wavelet.Decode(r) }

// EncodeSelectivityEstimator writes a range estimator's O(pieces) state as
// one binary envelope (histogram-backed estimators store their buckets;
// wavelet estimators store their coefficients — derived serving tables are
// rebuilt on decode).
func EncodeSelectivityEstimator(w io.Writer, est SelectivityEstimator) error {
	return synopsis.EncodeEstimator(w, est)
}

// DecodeSelectivityEstimator reads one estimator envelope from r. The
// restored estimator answers every EstimateRange bit-identically to the one
// encoded.
func DecodeSelectivityEstimator(r io.Reader) (SelectivityEstimator, error) {
	return synopsis.DecodeEstimator(r)
}

// RestoreStreamingHistogram reads a StreamingHistogram checkpoint written by
// its Snapshot method: the restored maintainer holds the same summary, the
// same pending buffered updates, and the same counters, and resumes the
// stream bit-identically to the uninterrupted run.
func RestoreStreamingHistogram(r io.Reader) (*StreamingHistogram, error) {
	return stream.RestoreMaintainer(r)
}

// RestoreShardedMaintainer reads a ShardedHistogram checkpoint written by
// its Snapshot method, rebuilding every shard's summary and pending update
// log with the original shard count (point routing depends on it).
func RestoreShardedMaintainer(r io.Reader) (*ShardedHistogram, error) {
	return stream.RestoreSharded(r)
}
