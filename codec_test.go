package histapprox

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/*_v1.bin golden fixtures from the current encoders")

// codecData is the deterministic vector behind the public-API codec tests
// and golden fixtures (a fixed LCG, so bytes are stable across platforms).
func codecData(n int) []float64 {
	q := make([]float64, n)
	state := uint64(40499)
	for i := range q {
		state = state*6364136223846793005 + 1442695040888963407
		q[i] = 1 + float64(state>>40)/float64(1<<24)
	}
	return q
}

// codecStream is a deterministic update stream over [1, n].
func codecStream(n, total int) ([]int, []float64) {
	points := make([]int, total)
	weights := make([]float64, total)
	state := uint64(1889)
	for i := range points {
		state = state*6364136223846793005 + 1442695040888963407
		points[i] = 1 + int(state>>33)%n
		weights[i] = 1 + float64(state>>50)/1024
		if i%13 == 0 {
			weights[i] = -weights[i]
		}
	}
	return points, weights
}

// goldenObjects builds one deterministic instance of every encodable type,
// keyed by fixture name. Workers is pinned to 1 so fixture bytes cannot
// depend on the machine's core count even in principle.
func goldenObjects(t *testing.T) map[string]any {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = 1
	q := codecData(600)

	h, _, err := Fit(q, 5, &opts)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := FitMultiscaleWorkers(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	poly, _, err := FitPolynomial(q, 3, 2, &opts)
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := NewCDF(h)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := NewWaveletSynopsis(q, 16)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewSelectivityEstimator(q, 6)
	if err != nil {
		t.Fatal(err)
	}

	points, weights := codecStream(600, 500)
	maint, err := NewStreamingHistogram(600, 4, 64, &opts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedMaintainer(600, 4, 3, 64, &opts)
	if err != nil {
		t.Fatal(err)
	}
	winMaint, err := NewWindowedStreamingHistogram(600, 4, 3, 64, &opts)
	if err != nil {
		t.Fatal(err)
	}
	winSharded, err := NewWindowedShardedMaintainer(600, 4, 3, 2, 64, &opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if err := maint.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
		if err := winMaint.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
		if err := winSharded.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
		// Seal two epochs mid-stream so the windowed fixtures carry a
		// non-trivial ring (two slots, a live view, and a pending tail).
		if i == 150 || i == 350 {
			if err := winMaint.Advance(); err != nil {
				t.Fatal(err)
			}
			if err := winSharded.Advance(); err != nil {
				t.Fatal(err)
			}
		}
	}

	return map[string]any{
		"histogram":        h,
		"hierarchy":        hier,
		"poly":             poly,
		"cdf":              cdf,
		"wavelet":          wave,
		"estimator":        est,
		"maintainer":       maint,
		"sharded":          sharded,
		"windowed":         winMaint,
		"windowed_sharded": winSharded,
	}
}

// TestEncodeDecodeDispatch round-trips every encodable type through the
// tag-dispatched top-level Encode/Decode and checks the decoded object is
// the right concrete type and re-encodes to identical bytes.
func TestEncodeDecodeDispatch(t *testing.T) {
	for name, obj := range goldenObjects(t) {
		var buf bytes.Buffer
		if err := Encode(&buf, obj); err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		blob := append([]byte{}, buf.Bytes()...)
		back, err := Decode(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if fmt.Sprintf("%T", back) != fmt.Sprintf("%T", obj) {
			t.Fatalf("%s: decoded %T, want %T", name, back, obj)
		}
		buf.Reset()
		if err := Encode(&buf, back); err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if !bytes.Equal(blob, buf.Bytes()) {
			t.Fatalf("%s: encode→decode→encode bytes differ", name)
		}
	}

	if err := Encode(&bytes.Buffer{}, 42); err == nil {
		t.Fatal("Encode accepted an int")
	}
}

// TestGoldenFixturesV1 pins the version-1 byte format: every type's encoding
// of a fixed object must match the committed fixture bit-for-bit, and the
// committed fixture must keep decoding — the compatibility contract future
// format versions have to honor. Regenerate (only on a deliberate format
// change, with a version bump) via: go test -run Golden . -update-golden
func TestGoldenFixturesV1(t *testing.T) {
	for name, obj := range goldenObjects(t) {
		path := filepath.Join("testdata", name+"_v1.bin")
		var buf bytes.Buffer
		if err := Encode(&buf, obj); err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		if *updateGolden {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden fixture (run with -update-golden): %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: encoding changed: %d bytes vs %d-byte fixture — format v1 must stay stable",
				name, buf.Len(), len(want))
		}
		if _, err := Decode(bytes.NewReader(want)); err != nil {
			t.Errorf("%s: committed v1 fixture no longer decodes: %v", name, err)
		}
	}
}

// TestNewShardedMaintainerDefaultsShards is the regression test for the
// shards ≤ 0 convention: like Options.Workers, non-positive means one shard
// per core (runtime.GOMAXPROCS(0)), never an error.
func TestNewShardedMaintainerDefaultsShards(t *testing.T) {
	for _, shards := range []int{0, -1, -100} {
		s, err := NewShardedMaintainer(1000, 4, shards, 0, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got, want := s.Shards(), runtime.GOMAXPROCS(0); got != want {
			t.Fatalf("shards=%d: got %d shards, want GOMAXPROCS = %d", shards, got, want)
		}
	}
	s, err := NewShardedMaintainer(1000, 4, 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 5 {
		t.Fatalf("explicit shard count not honored: %d", s.Shards())
	}
}

// TestStreamingCheckpointFacade exercises the public snapshot API end to
// end: snapshot → restore → resume must match the uninterrupted run's
// summary bit-for-bit.
func TestStreamingCheckpointFacade(t *testing.T) {
	const n, total = 2000, 4000
	points, weights := codecStream(n, total)
	straight, err := NewStreamingHistogram(n, 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	crashy, err := NewStreamingHistogram(n, 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total/2; i++ {
		if err := straight.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
		if err := crashy.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	var ckpt bytes.Buffer
	if err := Encode(&ckpt, crashy); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStreamingHistogram(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := total / 2; i < total; i++ {
		if err := straight.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
		if err := restored.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	hw, err := straight.Summary()
	if err != nil {
		t.Fatal(err)
	}
	hg, err := restored.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if hw.NumPieces() != hg.NumPieces() {
		t.Fatalf("pieces %d vs %d", hg.NumPieces(), hw.NumPieces())
	}
	for i, pc := range hw.Pieces() {
		gpc := hg.Pieces()[i]
		if gpc.Interval != pc.Interval || math.Float64bits(gpc.Value) != math.Float64bits(pc.Value) {
			t.Fatalf("piece %d differs after restore+resume", i)
		}
	}
}
