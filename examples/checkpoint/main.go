// Checkpoint/restore: snapshot a live sharded ingestion engine mid-stream,
// "crash", restore from the checkpoint bytes in a fresh engine, resume the
// stream, and verify the result is bit-identical to a run that never
// crashed — no stream replay, no forced compaction, O(k)-sized checkpoints.
//
// Run with:
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	histapprox "repro"
)

const (
	n       = 50_000 // value domain
	k       = 16     // summary size target
	shards  = 4      // fixed so the checkpoint example is machine-independent
	updates = 1_000_000
	crashAt = updates * 2 / 5
)

// stream is the deterministic update source both runs consume: a drifting
// hot band with occasional deletions.
func stream(u int) (point int, weight float64) {
	state := uint64(u)*6364136223846793005 + 1442695040888963407
	state ^= state >> 29
	center := 5000 + int(40000*float64(u)/updates)
	point = center + int(state%4000) - 2000
	if point < 1 {
		point = 1
	}
	if point > n {
		point = n
	}
	weight = 1
	if state%16 == 0 {
		weight = -1
	}
	return point, weight
}

func feed(s *histapprox.ShardedHistogram, from, to int) {
	for u := from; u < to; u++ {
		p, w := stream(u)
		if err := s.Add(p, w); err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	log.SetFlags(0)

	// --- The reference run: never interrupted. ---
	straight, err := histapprox.NewShardedMaintainer(n, k, shards, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	feed(straight, 0, updates)
	want, err := straight.Summary()
	if err != nil {
		log.Fatal(err)
	}

	// --- The crashing run. ---
	doomed, err := histapprox.NewShardedMaintainer(n, k, shards, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	feed(doomed, 0, crashAt)

	// Checkpoint to a file: every shard's summary view plus its pending
	// (uncompacted) update log. Snapshot never forces a compaction, so the
	// restored engine's future merging runs see exactly the same inputs the
	// uninterrupted run's do.
	path := filepath.Join(os.TempDir(), "histapprox-checkpoint.bin")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := doomed.Snapshot(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("checkpointed %d/%d updates into %d bytes (%s)\n",
		crashAt, updates, st.Size(), path)

	// 💥 The process "dies" here: drop every live object.
	doomed = nil

	// --- A fresh process restores and resumes. ---
	blob, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := histapprox.RestoreShardedMaintainer(bytes.NewReader(blob))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored engine: %d shards, %d updates already absorbed\n",
		restored.Shards(), restored.Updates())
	feed(restored, crashAt, updates)
	got, err := restored.Summary()
	if err != nil {
		log.Fatal(err)
	}

	// --- The two runs must be indistinguishable, bit for bit. ---
	if got.NumPieces() != want.NumPieces() {
		log.Fatalf("piece counts differ: %d vs %d", got.NumPieces(), want.NumPieces())
	}
	for i, pc := range want.Pieces() {
		gpc := got.Pieces()[i]
		if gpc.Interval != pc.Interval || math.Float64bits(gpc.Value) != math.Float64bits(pc.Value) {
			log.Fatalf("piece %d differs: %+v vs %+v", i, gpc, pc)
		}
	}
	fmt.Printf("crash+restore run == uninterrupted run: %d pieces, all bit-identical ✓\n",
		got.NumPieces())
	for _, r := range [][2]int{{1, n}, {20_000, 30_000}, {44_000, 44_500}} {
		a, _ := restored.EstimateRange(r[0], r[1])
		b, _ := straight.EstimateRange(r[0], r[1])
		fmt.Printf("  EstimateRange(%5d, %5d) = %12.1f (uninterrupted: %12.1f)\n",
			r[0], r[1], a, b)
	}
	os.Remove(path)
}
