// Checkpoint/restore and crash recovery, end to end.
//
// Part 1 — planned handoff: snapshot a live sharded ingestion engine
// mid-stream, "crash", restore from the checkpoint bytes in a fresh engine,
// resume the stream, and verify the result is bit-identical to a run that
// never crashed — no stream replay, no forced compaction, O(k)-sized
// checkpoints.
//
// Part 2 — unplanned crash: the snapshot in part 1 only exists because the
// application asked for it. A durable engine removes that requirement: every
// update is write-ahead logged before it is applied, periodic checkpoints
// truncate the log, and recovery = restore the last checkpoint + replay the
// log tail. The process below "dies" with updates beyond the last
// checkpoint, recovers from the WAL directory alone, resumes, and ends
// bit-identical to the uninterrupted run.
//
// Run with:
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	histapprox "repro"
)

const (
	n       = 50_000 // value domain
	k       = 16     // summary size target
	shards  = 4      // fixed so the checkpoint example is machine-independent
	updates = 1_000_000
	crashAt = updates * 2 / 5
)

// stream is the deterministic update source both runs consume: a drifting
// hot band with occasional deletions.
func stream(u int) (point int, weight float64) {
	state := uint64(u)*6364136223846793005 + 1442695040888963407
	state ^= state >> 29
	center := 5000 + int(40000*float64(u)/updates)
	point = center + int(state%4000) - 2000
	if point < 1 {
		point = 1
	}
	if point > n {
		point = n
	}
	weight = 1
	if state%16 == 0 {
		weight = -1
	}
	return point, weight
}

// adder is the ingest surface both engine flavors share.
type adder interface {
	Add(i int, w float64) error
}

func feed(s adder, from, to int) {
	for u := from; u < to; u++ {
		p, w := stream(u)
		if err := s.Add(p, w); err != nil {
			log.Fatal(err)
		}
	}
}

// mustMatch asserts two summaries are bit-identical, piece by piece.
func mustMatch(label string, got, want *histapprox.Histogram) {
	if got.NumPieces() != want.NumPieces() {
		log.Fatalf("%s: piece counts differ: %d vs %d", label, got.NumPieces(), want.NumPieces())
	}
	for i, pc := range want.Pieces() {
		gpc := got.Pieces()[i]
		if gpc.Interval != pc.Interval || math.Float64bits(gpc.Value) != math.Float64bits(pc.Value) {
			log.Fatalf("%s: piece %d differs: %+v vs %+v", label, i, gpc, pc)
		}
	}
	fmt.Printf("%s == uninterrupted run: %d pieces, all bit-identical ✓\n", label, got.NumPieces())
}

func main() {
	log.SetFlags(0)

	// --- The reference run: never interrupted. ---
	straight, err := histapprox.NewShardedMaintainer(n, k, shards, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	feed(straight, 0, updates)
	want, err := straight.Summary()
	if err != nil {
		log.Fatal(err)
	}

	// --- Part 1: planned handoff through an explicit snapshot. ---
	doomed, err := histapprox.NewShardedMaintainer(n, k, shards, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	feed(doomed, 0, crashAt)

	// Checkpoint to a file: every shard's summary view plus its pending
	// (uncompacted) update log. Snapshot never forces a compaction, so the
	// restored engine's future merging runs see exactly the same inputs the
	// uninterrupted run's do.
	path := filepath.Join(os.TempDir(), "histapprox-checkpoint.bin")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := doomed.Snapshot(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("checkpointed %d/%d updates into %d bytes (%s)\n",
		crashAt, updates, st.Size(), path)

	// 💥 The process "dies" here: drop every live object.
	doomed = nil

	// --- A fresh process restores and resumes. ---
	blob, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := histapprox.RestoreShardedMaintainer(bytes.NewReader(blob))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored engine: %d shards, %d updates already absorbed\n",
		restored.Shards(), restored.Updates())
	feed(restored, crashAt, updates)
	got, err := restored.Summary()
	if err != nil {
		log.Fatal(err)
	}
	mustMatch("crash+restore run", got, want)
	for _, r := range [][2]int{{1, n}, {20_000, 30_000}, {44_000, 44_500}} {
		a, _ := restored.EstimateRange(r[0], r[1])
		b, _ := straight.EstimateRange(r[0], r[1])
		fmt.Printf("  EstimateRange(%5d, %5d) = %12.1f (uninterrupted: %12.1f)\n",
			r[0], r[1], a, b)
	}
	os.Remove(path)

	// --- Part 2: unplanned crash, recovered from the WAL alone. ---
	walDir, err := os.MkdirTemp("", "histapprox-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	dopts := histapprox.DurabilityOptions{
		Dir:             walDir,
		SyncEvery:       1024,    // group-commit fsync window (1 = no-loss)
		CheckpointEvery: 150_000, // log-truncation cadence, in ingest calls
	}
	durable, err := histapprox.OpenDurableShardedMaintainer(n, k, shards, 0, nil, dopts)
	if err != nil {
		log.Fatal(err)
	}
	feed(durable, 0, crashAt)
	// Pin the log tail to disk so the "crash" below loses nothing — a real
	// SIGKILL could lose up to the last unsynced group-commit window (zero
	// with SyncEvery: 1), and recovery would come back bit-identical to the
	// uninterrupted run over that shorter surviving prefix instead.
	if err := durable.Sync(); err != nil {
		log.Fatal(err)
	}

	// 💥 SIGKILL. No Close, no final checkpoint, no snapshot call — updates
	// past the last periodic checkpoint exist only as WAL records.
	durable = nil

	rec, err := histapprox.RecoverDurableShardedMaintainer(dopts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered from %s: last checkpoint + %d WAL records replayed\n",
		walDir, rec.Replayed())
	feed(rec, crashAt, updates)
	got2, err := rec.Summary()
	if err != nil {
		log.Fatal(err)
	}
	mustMatch("kill+WAL-replay run", got2, want)
	ds := rec.Stats()
	fmt.Printf("  WAL: %d records appended, %d fsyncs, %d checkpoints committed\n",
		ds.WAL.Appends, ds.WAL.Fsyncs, ds.Checkpoints)
	if err := rec.Close(); err != nil {
		log.Fatal(err)
	}
}
