// Dow Jones summarization: compress a 16384-point market-index series into
// histogram synopses of increasing size, reading the whole size-vs-accuracy
// Pareto curve from ONE multiscale construction (Theorem 2.2 of the paper).
//
// Run with:
//
//	go run ./examples/dowjones
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	histapprox "repro"
	"repro/internal/datasets"
)

func main() {
	log.SetFlags(0)

	series := datasets.Dow() // simulated DJIA closes, n = 16384 (see DESIGN.md)
	stats := datasets.Describe(series)
	fmt.Printf("input: %d daily closes, range [%.1f, %.1f]\n\n", stats.N, stats.Min, stats.Max)

	// One O(n) pass builds every scale at once.
	start := time.Now()
	hier, err := histapprox.FitMultiscale(series)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiscale construction: %v (%d levels)\n\n",
		time.Since(start).Round(time.Microsecond), hier.NumLevels())

	fmt.Println("  k   pieces   l2 error    bytes vs raw")
	for _, k := range []int{1, 2, 5, 10, 25, 50, 100, 250} {
		res, err := hier.ForK(k)
		if err != nil {
			log.Fatal(err)
		}
		pieces := res.Histogram.NumPieces()
		// A piece stores (end index, value): 16 bytes.
		compression := float64(stats.N*8) / float64(pieces*16)
		fmt.Printf("%4d   %6d   %8.1f    %6.0f×\n", k, pieces, res.Error, compression)
	}

	// Render the 50-piece summary as a terminal sparkline against the raw
	// series' scale.
	res, err := hier.ForK(25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d-piece summary (each char ≈ %d days):\n", res.Histogram.NumPieces(), stats.N/100)
	fmt.Println(sparkline(res.Histogram.ToDense(), 100, stats.Min, stats.Max))
	fmt.Println("raw series at the same resolution:")
	fmt.Println(sparkline(series, 100, stats.Min, stats.Max))
}

// sparkline downsamples q to width buckets and renders block characters.
func sparkline(q []float64, width int, min, max float64) string {
	blocks := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for w := 0; w < width; w++ {
		lo := w * len(q) / width
		hi := (w + 1) * len(q) / width
		var sum float64
		for i := lo; i < hi; i++ {
			sum += q[i]
		}
		mean := sum / float64(hi-lo)
		idx := int((mean - min) / (max - min + 1e-12) * float64(len(blocks)))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
