// Distribution learning: draw i.i.d. samples from an unknown distribution
// and recover it with the paper's two-stage learner (Theorem 2.1), showing
// the O(1/ε²) sample complexity in action — the error floor is opt_k and the
// sampling error shrinks like 1/√m regardless of the universe size.
//
// Run with:
//
//	go run ./examples/learning
package main

import (
	"fmt"
	"log"
	"math"

	histapprox "repro"
)

func main() {
	log.SetFlags(0)

	// The "unknown" distribution: an 8-piece histogram over a universe of
	// 100k points — far too large to estimate pointwise, tiny to learn as a
	// histogram.
	const n = 100_000
	weights := make([]float64, n)
	levels := []float64{1, 7, 3, 12, 5, 9, 2, 6}
	for i := range weights {
		weights[i] = levels[i*len(levels)/n]
	}
	p, err := histapprox.DistributionFromWeights(weights)
	if err != nil {
		log.Fatal(err)
	}

	// How many samples does ε = 0.001 take? (Independent of n = 100k!)
	m, err := histapprox.SampleSize(0.001, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universe size n = %d;   SampleSize(ε=0.001, δ=0.05) = %d\n\n", n, m)

	fmt.Println("    m     pieces   ‖h−p‖₂     support(p̂)")
	for _, m := range []int{1_000, 10_000, 100_000, 1_000_000} {
		samples := histapprox.Draw(p, m, uint64(m))
		h, rep, err := histapprox.Learn(n, samples, len(levels), nil)
		if err != nil {
			log.Fatal(err)
		}
		// True error against the hidden distribution.
		var sq float64
		for i, pm := range p.P {
			d := pm - h.At(i+1)
			sq += d * d
		}
		fmt.Printf("%8d   %6d   %.6f   %8d\n", m, rep.Pieces, math.Sqrt(sq), rep.Support)
	}

	fmt.Println("\nThe error falls like 1/√m toward opt_k = 0 (p is exactly an")
	fmt.Println("8-histogram), and the learner never materializes the 100k-point")
	fmt.Println("universe — its work is linear in the sample count alone.")
}
