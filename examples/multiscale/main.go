// Multiscale learning: Theorem 2.2 end to end. One pass over one sample of
// an unknown distribution yields hypotheses for EVERY k simultaneously,
// each with a certified error estimate — so "how many pieces do I actually
// need?" is answered without re-running anything.
//
// Run with:
//
//	go run ./examples/multiscale
package main

import (
	"fmt"
	"log"
	"math"

	histapprox "repro"
	"repro/internal/datasets"
)

func main() {
	log.SetFlags(0)

	// The unknown distribution: the paper's dow' learning target.
	p := datasets.DowPrime()
	n := p.N()

	m := 50_000
	samples := histapprox.Draw(p, m, 2015)
	hier, rep, err := histapprox.LearnMultiscale(n, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drew %d samples from a hidden distribution over [1, %d] (support seen: %d)\n",
		m, n, rep.Support)
	fmt.Printf("one hierarchical construction: %d levels\n\n", hier.NumLevels())

	fmt.Println("   k   pieces   estimate ê     true ‖h−p‖₂   |ê − true|")
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		res, err := hier.ForK(k)
		if err != nil {
			log.Fatal(err)
		}
		var sq float64
		for i, pm := range p.P {
			d := pm - res.Histogram.At(i+1)
			sq += d * d
		}
		trueErr := math.Sqrt(sq)
		fmt.Printf("%4d   %6d   %.6f      %.6f      %.6f\n",
			k, res.Histogram.NumPieces(), res.Error, trueErr, math.Abs(res.Error-trueErr))
	}

	fmt.Println("\nThe estimate column ê is computed from the sample alone, yet tracks")
	fmt.Println("the true error within the ±ε sampling band (Theorem 2.2) — pick the")
	fmt.Println("smallest k where ê stops improving and pay for no more pieces.")
}
