// Piecewise polynomials: the paper's Section 4 generalization. On smooth
// data, a piecewise degree-d fit is a far more succinct synopsis than a
// histogram with the same storage budget — this example quantifies the
// trade-off on a smooth multi-regime signal.
//
// Run with:
//
//	go run ./examples/piecewisepoly
package main

import (
	"fmt"
	"log"
	"math"

	histapprox "repro"
)

func main() {
	log.SetFlags(0)

	// A smooth signal with three regimes: rising parabola, damped
	// oscillation, and a linear ramp. Noise keeps every fit honest.
	const n = 6000
	data := make([]float64, n)
	state := uint64(7)
	gauss := func() float64 {
		next := func() float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state>>11) / (1 << 53)
		}
		return math.Sqrt(-2*math.Log(next()+1e-18)) * math.Cos(2*math.Pi*next())
	}
	for i := range data {
		x := float64(i) / n
		var v float64
		switch {
		case x < 0.4:
			t := x / 0.4
			v = 40 * t * t
		case x < 0.7:
			t := (x - 0.4) / 0.3
			v = 40 - 25*t + 8*math.Sin(6*math.Pi*t)*math.Exp(-2*t)
		default:
			t := (x - 0.7) / 0.3
			v = 15 + 20*t
		}
		data[i] = v + 0.3*gauss()
	}

	// Storage budget: a histogram piece stores 2 numbers; a degree-d piece
	// stores d+2. Compare fits at (approximately) equal storage.
	fmt.Println("degree   pieces  numbers stored   l2 error")
	type row struct {
		label   string
		numbers int
		err     float64
	}
	budgetNumbers := 72
	var rows []row

	// Plain histogram: budget/2 pieces → k chosen so 2k+1 ≈ budget/2.
	kHist := (budgetNumbers/2 - 1) / 2
	paper := histapprox.PaperOptions()
	h, hErr, err := histapprox.Fit(data, kHist, &paper)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"0 (histogram)", h.NumPieces() * 2, hErr})
	fmt.Printf("%-12s %5d   %8d       %10.3f\n", "0 (hist)", h.NumPieces(), h.NumPieces()*2, hErr)

	for _, d := range []int{1, 2, 3} {
		// Pieces so that pieces·(d+2) ≈ budget; merging outputs 2k+1 pieces.
		targetPieces := budgetNumbers / (d + 2)
		k := (targetPieces - 1) / 2
		if k < 1 {
			k = 1
		}
		f, fErr, err := histapprox.FitPolynomial(data, k, d, &paper)
		if err != nil {
			log.Fatal(err)
		}
		stored := f.NumPieces() * (d + 2)
		rows = append(rows, row{fmt.Sprintf("%d", d), stored, fErr})
		fmt.Printf("%-12d %5d   %8d       %10.3f\n", d, f.NumPieces(), stored, fErr)
	}

	best := rows[0]
	for _, r := range rows[1:] {
		if r.err < best.err {
			best = r
		}
	}
	fmt.Printf("\nat ≈%d stored numbers, the best synopsis is degree %s (l2 %.3f vs histogram %.3f)\n",
		budgetNumbers, best.label, best.err, rows[0].err)
	fmt.Println("— exactly the Section 4 argument: smooth data rewards higher degree.")
}
