// Quickstart: fit a near-optimal histogram to a noisy step signal and
// compare it against the exact (but much slower) dynamic program.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	histapprox "repro"
)

func main() {
	log.SetFlags(0)

	// A noisy 6-piece step signal over [1, 5000].
	n := 5000
	levels := []float64{2, 9, 4, 12, 6, 1}
	data := make([]float64, n)
	rngState := uint64(1)
	gauss := func() float64 {
		// Tiny inline LCG+Box-Muller so the example is self-contained.
		next := func() float64 {
			rngState = rngState*6364136223846793005 + 1442695040888963407
			return float64(rngState>>11) / (1 << 53)
		}
		u, v := next(), next()
		return math.Sqrt(-2*math.Log(u+1e-18)) * math.Cos(2*math.Pi*v)
	}
	for i := range data {
		data[i] = levels[i*len(levels)/n] + 0.5*gauss()
	}

	// Near-optimal fit in O(n): with the paper's parameters the histogram
	// has 2k+1 pieces and error within a small constant of optimal.
	k := 6
	opts := histapprox.PaperOptions()
	start := time.Now()
	h, l2, err := histapprox.Fit(data, k, &opts)
	if err != nil {
		log.Fatal(err)
	}
	fitTime := time.Since(start)

	fmt.Printf("merging:  %2d pieces, l2 error %8.3f, %v\n", h.NumPieces(), l2, fitTime)

	// The exact O(n²k) DP for comparison.
	start = time.Now()
	_, optErr, err := histapprox.FitExact(data, k)
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(start)
	fmt.Printf("exact DP: %2d pieces, l2 error %8.3f, %v\n", k, optErr, exactTime)
	fmt.Printf("approximation ratio %.4f, speedup %.0f×\n\n",
		l2/optErr, float64(exactTime)/float64(fitTime))

	fmt.Println("fitted pieces:")
	for _, pc := range h.Pieces() {
		fmt.Printf("  [%4d, %4d]  %7.3f\n", pc.Lo, pc.Hi, pc.Value)
	}
}
