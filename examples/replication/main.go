// Replication: delta-snapshot fan-out end to end — a primary hosting a live
// intake engine, two replicas fed by version-vector deltas, a consistent-hash
// fleet routing reads, and the self-healing resync paths after a replica
// loses its state.
//
// Run with:
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"time"

	histapprox "repro"
)

func main() {
	log.SetFlags(0)
	const n = 100_000

	// The primary hosts a live sharded intake engine; the replicas boot
	// empty — the first complete delta frame hosts the engine for them.
	primarySrv := histapprox.NewSynopsisServer(nil)
	events, err := histapprox.NewShardedMaintainer(n, 64, 8, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := primarySrv.Host("events", events); err != nil {
		log.Fatal(err)
	}
	replica1Srv := histapprox.NewSynopsisServer(nil)
	replica2Srv := histapprox.NewSynopsisServer(nil)

	pts := httptest.NewServer(primarySrv.Handler())
	r1ts := httptest.NewServer(replica1Srv.Handler())
	r2ts := httptest.NewServer(replica2Srv.Handler())
	defer pts.Close()
	defer r1ts.Close()
	defer r2ts.Close()

	primary := histapprox.NewServeClient(pts.URL, pts.Client(), true)
	replica1 := histapprox.NewServeClient(r1ts.URL, r1ts.Client(), true)
	replica2 := histapprox.NewServeClient(r2ts.URL, r2ts.Client(), true)

	// The replicator ships version-vector deltas: only shards that changed
	// since a replica's last sync travel, and replicas at the same
	// coordinates share one memoized encode on the primary.
	repl, err := histapprox.NewSynopsisReplicator("events", primary,
		[]*histapprox.ServeClient{replica1, replica2}, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	primarySrv.AttachReplicator(repl) // replica lag/bytes appear on /metrics

	// Skewed ingest: a hot band plus a uniform tail, synced after each burst.
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 6; round++ {
		points := make([]int, 2000)
		for i := range points {
			if rng.Intn(4) == 0 {
				points[i] = 1 + rng.Intn(n)
			} else {
				points[i] = 1 + rng.Intn(n/50) // hot band: 2% of the domain
			}
		}
		if err := primary.Add("events", points, nil); err != nil {
			log.Fatal(err)
		}
		if err := repl.SyncAll(); err != nil {
			log.Fatal(err)
		}
	}

	// Every node answers bit-identically — replication ships the engine's
	// exact state, not an approximation of it.
	a, b := 1, n/50
	p, _ := primary.Range("events", a, b)
	v1, _ := replica1.Range("events", a, b)
	v2, _ := replica2.Range("events", a, b)
	fmt.Printf("hot-band mass [%d,%d]: primary %.1f, replica1 %.1f, replica2 %.1f\n", a, b, p, v1, v2)
	if v1 != p || v2 != p {
		log.Fatal("replicas diverged")
	}

	for _, st := range repl.Status() {
		fmt.Printf("replica %s: %d syncs (%d full), %d bytes shipped\n",
			st.Target, st.Syncs, st.FullSyncs, st.DeltaBytes)
	}

	// Self-healing: wipe replica2 (a restart with empty state) — the next
	// push 409s, and the replicator automatically re-ships the complete
	// frame and resumes deltas from the new coordinates.
	r2ts.Config.Handler = histapprox.NewSynopsisServer(nil).Handler()
	if err := primary.Add("events", []int{1, 2, 3}, nil); err != nil {
		log.Fatal(err)
	}
	if err := repl.SyncAll(); err != nil {
		log.Fatal(err)
	}
	p, _ = primary.Range("events", 1, n)
	v2, _ = replica2.Range("events", 1, n)
	fmt.Printf("after replica2 wipe + resync: primary %.1f, replica2 %.1f\n", p, v2)
	if v2 != p {
		log.Fatal("replica2 did not recover")
	}

	// A consistent-hash fleet routes names across servers: every process
	// that builds the fleet from the same member list agrees on placement,
	// and removing one member remaps only ~1/N of the names.
	fleet, err := histapprox.NewServeFleet([]*histapprox.ServeClient{primary, replica1, replica2})
	if err != nil {
		log.Fatal(err)
	}
	owners := map[string]int{}
	for i := 0; i < 1000; i++ {
		owners[fleet.ClientFor(fmt.Sprintf("synopsis-%d", i)).Base]++
	}
	fmt.Printf("fleet routing of 1000 names: %d / %d / %d\n",
		owners[primary.Base], owners[replica1.Base], owners[replica2.Base])
}
