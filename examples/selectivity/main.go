// Selectivity estimation: the database application from the paper's
// introduction. Build a near-V-optimal histogram synopsis of a skewed
// column with the merging algorithm, and compare its range-count estimates
// against classical equi-width and equi-depth histograms at equal space.
//
// Run with:
//
//	go run ./examples/selectivity
package main

import (
	"fmt"
	"log"
	"math"

	histapprox "repro"
)

func main() {
	log.SetFlags(0)

	// A synthetic "order value in cents" column over the domain [1, 20000]:
	// most orders cluster in a few price bands (skew that defeats fixed
	// bucket boundaries).
	const n = 20000
	const rows = 500_000
	values := make([]int, 0, rows)
	state := uint64(99)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	bands := []struct {
		lo, hi int
		weight float64
	}{
		{495, 505, 0.30},     // $4.95–$5.05 promos
		{999, 1001, 0.25},    // $9.99 anchor
		{1900, 2100, 0.20},   // $19–$21 bundle
		{1, 20000, 0.15},     // uniform long tail
		{15000, 15200, 0.10}, // $150–$152 premium
	}
	for len(values) < rows {
		u := next()
		acc := 0.0
		for _, b := range bands {
			acc += b.weight
			if u <= acc {
				span := b.hi - b.lo + 1
				values = append(values, b.lo+int(next()*float64(span)))
				break
			}
		}
	}

	freq, err := histapprox.ColumnFrequencies(values, n)
	if err != nil {
		log.Fatal(err)
	}
	exact := histapprox.NewExactCounter(freq)

	k := 12
	vopt, err := histapprox.NewSelectivityEstimator(freq, k)
	if err != nil {
		log.Fatal(err)
	}
	ew, err := histapprox.NewEquiWidthEstimator(freq, vopt.Pieces())
	if err != nil {
		log.Fatal(err)
	}
	ed, err := histapprox.NewEquiDepthEstimator(freq, vopt.Pieces())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("column: %d rows over [1, %d]; synopses: %d buckets each\n\n",
		rows, n, vopt.Pieces())

	queries := [][2]int{
		{480, 520},     // hits the $5 promo band
		{990, 1010},    // hits the $9.99 spike
		{1, 1000},      // cheap orders
		{2101, 14999},  // the quiet middle
		{14000, 16000}, // premium band
		{1, 20000},     // everything
	}
	fmt.Println("range           truth    v-opt(err%)    equi-width(err%)   equi-depth(err%)")
	var worstV, worstW, worstD float64
	for _, qr := range queries {
		truth, err := exact.CountRange(qr[0], qr[1])
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("[%5d,%5d] %8.0f", qr[0], qr[1], truth)
		for i, est := range []histapprox.SelectivityEstimator{vopt, ew, ed} {
			got, err := est.EstimateRange(qr[0], qr[1])
			if err != nil {
				log.Fatal(err)
			}
			relPct := 100 * math.Abs(got-truth) / math.Max(truth, 1)
			line += fmt.Sprintf("   %9.0f(%5.1f)", got, relPct)
			switch i {
			case 0:
				worstV = math.Max(worstV, relPct)
			case 1:
				worstW = math.Max(worstW, relPct)
			case 2:
				worstD = math.Max(worstD, relPct)
			}
		}
		fmt.Println(line)
	}
	fmt.Printf("\nworst relative error over these queries: v-optimal %.1f%%, equi-width %.1f%%, equi-depth %.1f%%\n",
		worstV, worstW, worstD)

	// The same queries answered through the batched serving path — one
	// call, bit-identical results (see examples/serving for the full
	// build-once/query-millions workload).
	as := make([]int, len(queries))
	bs := make([]int, len(queries))
	for i, qr := range queries {
		as[i], bs[i] = qr[0], qr[1]
	}
	batch, err := histapprox.EstimateRanges(vopt, as, bs, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := range queries {
		single, err := vopt.EstimateRange(as[i], bs[i])
		if err != nil {
			log.Fatal(err)
		}
		if batch[i] != single {
			log.Fatalf("batch[%d] = %v differs from single query %v", i, batch[i], single)
		}
	}
	fmt.Printf("batched EstimateRanges over %d queries: bit-identical to single-query answers\n",
		len(queries))
}
