// Server: the serving layer end to end — host synopses over HTTP, query
// them with JSON and binary batch bodies, ingest a live stream, and
// replicate a running engine to a second server with a snapshot push that
// hot-swaps atomically.
//
// Run with:
//
//	go run ./examples/server
package main

import (
	"bytes"
	"fmt"
	"log"
	"net/http/httptest"

	histapprox "repro"
)

func main() {
	log.SetFlags(0)

	// A column of 200k values with a skewed distribution, summarized once.
	const n = 200_000
	freq := make([]float64, n)
	state := uint64(1)
	for i := 0; i < 4_000_000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		v := int(state>>33) % n
		v = (v * v / n) % n // quadratic skew
		freq[v]++
	}
	est, err := histapprox.NewSelectivityEstimator(freq, 500)
	if err != nil {
		log.Fatal(err)
	}

	// A live intake engine, ingesting while it serves.
	events, err := histapprox.NewShardedMaintainer(n, 100, 4, 0, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Server A hosts both. (httptest gives this example a real loopback
	// listener; production uses cmd/histserved or http.ListenAndServe.)
	srvA := histapprox.NewSynopsisServer(nil)
	if err := srvA.Host("col", est); err != nil {
		log.Fatal(err)
	}
	if err := srvA.Host("events", events); err != nil {
		log.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	fmt.Printf("server A: %s hosting %v\n", tsA.URL, names(srvA))

	// Query with JSON and binary bodies — answers are bit-identical.
	jsonClient := histapprox.NewServeClient(tsA.URL, tsA.Client(), false)
	binClient := histapprox.NewServeClient(tsA.URL, tsA.Client(), true)
	as := []int{1, n / 4, n / 2}
	bs := []int{n / 4, n / 2, n}
	fromJSON, err := jsonClient.Ranges("col", as, bs)
	if err != nil {
		log.Fatal(err)
	}
	fromBin, err := binClient.Ranges("col", as, bs)
	if err != nil {
		log.Fatal(err)
	}
	for i := range as {
		direct, _ := histapprox.EstimateRanges(est, as[i:i+1], bs[i:i+1], 1)
		fmt.Printf("count[%6d, %6d] ≈ %.0f (json) = %.0f (binary) = %.0f (in-process)\n",
			as[i], bs[i], fromJSON[i], fromBin[i], direct[0])
	}

	// Stream 100k events into the served engine over the wire.
	points := make([]int, 1024)
	for batch := 0; batch < 100; batch++ {
		for i := range points {
			state = state*6364136223846793005 + 1442695040888963407
			points[i] = 1 + int(state>>33)%n
		}
		if err := binClient.Add("events", points, nil); err != nil {
			log.Fatal(err)
		}
	}
	mass, err := jsonClient.Range("events", 1, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server A ingested %.0f events over the wire\n", mass)

	// Replicate: snapshot the live engine from A, push it to a fresh server
	// B. The push decodes, validates, and then hot-swaps with one atomic
	// pointer store — B's readers never block on the swap.
	srvB := histapprox.NewSynopsisServer(nil)
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	var snap bytes.Buffer
	if err := binClient.Snapshot("events", &snap); err != nil {
		log.Fatal(err)
	}
	clientB := histapprox.NewServeClient(tsB.URL, tsB.Client(), true)
	if err := clientB.Push("events", bytes.NewReader(snap.Bytes())); err != nil {
		log.Fatal(err)
	}
	replicated, err := clientB.Range("events", 1, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server B: replica answers %.0f from a %d-byte snapshot (%.4f bytes/event)\n",
		replicated, snap.Len(), float64(snap.Len())/mass)
}

func names(s *histapprox.SynopsisServer) []string {
	var out []string
	for _, info := range s.Names() {
		out = append(out, info.Name+":"+info.Kind)
	}
	return out
}
