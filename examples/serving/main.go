// Serving: the build-once/query-millions shape that motivates the paper's
// database application. Build a near-V-optimal synopsis of a column once,
// then serve point lookups and range counts from the indexed read path —
// single queries, sorted batches, and a streaming maintainer queried
// between compactions.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	histapprox "repro"
)

func main() {
	log.SetFlags(0)

	// A skewed column over [1, 100000]: a few hot bands over a long tail.
	const n = 100000
	freq := make([]float64, n)
	state := uint64(7)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := range freq {
		freq[i] = float64(next() % 5)
	}
	for _, band := range [][2]int{{4900, 5100}, {42000, 42050}, {90000, 91000}} {
		for x := band[0]; x <= band[1]; x++ {
			freq[x-1] += 300
		}
	}

	// Build once: O(n) construction, ~2k+1 buckets.
	est, err := histapprox.NewSelectivityEstimator(freq, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synopsis: %d buckets over [1, %d]\n\n", est.Pieces(), n)

	// Serve forever: a deterministic stream of range queries.
	const queries = 200000
	as := make([]int, queries)
	bs := make([]int, queries)
	for i := range as {
		a := 1 + int(next())%n
		as[i] = a
		bs[i] = a + int(next())%(n-a+1)
	}

	// Single-query path: O(log k) per call, zero allocations.
	start := time.Now()
	var sum float64
	for i := range as {
		v, err := est.EstimateRange(as[i], bs[i])
		if err != nil {
			log.Fatal(err)
		}
		sum += v
	}
	single := time.Since(start)
	fmt.Printf("single queries : %8.0f qps (checksum %.0f)\n",
		float64(queries)/single.Seconds(), sum)

	// Batched path: sort by left endpoint for locality, answer the whole
	// batch with one call fanned out across all cores. Results are
	// bit-identical to the single-query path.
	order := make([]int, queries)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return as[order[i]] < as[order[j]] })
	sa := make([]int, queries)
	sb := make([]int, queries)
	for i, o := range order {
		sa[i] = as[o]
		sb[i] = bs[o]
	}
	start = time.Now()
	batched, err := histapprox.EstimateRanges(est, sa, sb, 0)
	if err != nil {
		log.Fatal(err)
	}
	batch := time.Since(start)
	var bsum float64
	for _, v := range batched {
		bsum += v
	}
	fmt.Printf("batched queries: %8.0f qps (checksum %.0f, speedup %.1fx)\n",
		float64(queries)/batch.Seconds(), bsum, single.Seconds()/batch.Seconds())

	// Streaming: keep ingesting updates and answer range queries from the
	// summary + pending buffer without forcing a compaction.
	sh, err := histapprox.NewStreamingHistogram(n, 50, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	for x := 1; x <= n; x++ {
		if err := sh.Add(x, freq[x-1]); err != nil {
			log.Fatal(err)
		}
	}
	live, err := sh.EstimateRange(4900, 5100)
	if err != nil {
		log.Fatal(err)
	}
	truth := 0.0
	for x := 4900; x <= 5100; x++ {
		truth += freq[x-1]
	}
	fmt.Printf("\nstreaming EstimateRange(4900, 5100) = %.0f (truth %.0f) "+
		"after %d updates, %d compactions\n",
		live, truth, sh.Updates(), sh.Compactions())
}
