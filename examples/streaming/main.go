// Streaming maintenance: keep an O(k)-piece histogram of a live update
// stream (inserts and deletes) with constant amortized cost per update, and
// merge per-shard summaries the way a parallel aggregation tree would —
// the maintenance setting of [GMP97, GGI+02] that motivates fast histogram
// construction.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	histapprox "repro"
)

func main() {
	log.SetFlags(0)

	const n = 10000 // value domain
	const k = 8

	// --- Part 1: a single maintained summary under a drifting workload. ---
	sh, err := histapprox.NewStreamingHistogram(n, k, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	truth := make([]float64, n)
	state := uint64(2015)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}

	const updates = 2_000_000
	start := time.Now()
	for u := 0; u < updates; u++ {
		// The hot band drifts across the domain over the stream's life.
		center := 1000 + int(8000*float64(u)/updates)
		point := center + int(600*(next()-0.5))
		if point < 1 {
			point = 1
		}
		if point > n {
			point = n
		}
		w := 1.0
		if next() < 0.1 {
			w = -1 // occasional deletions
		}
		truth[point-1] += w
		if err := sh.Add(point, w); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	h, err := sh.Summary()
	if err != nil {
		log.Fatal(err)
	}
	direct, directErr, err := histapprox.Fit(truth, k, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d updates in %v (%.0f ns/update, %d compactions)\n",
		updates, elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/updates, sh.Compactions())
	fmt.Printf("summary:   %d pieces, l2 error vs true frequencies %8.1f\n",
		h.NumPieces(), h.L2DistToDense(truth))
	fmt.Printf("direct fit: %d pieces, l2 error %8.1f  (batch over the final vector)\n\n",
		direct.NumPieces(), directErr)

	// --- Part 2: sharded multi-core intake + k-way mergeable summaries. ---
	// The Sharded engine hashes updates across per-core shards and runs
	// compactions on background goroutines behind a double-buffered log, so
	// AddBatch never waits for a merging run while compaction keeps up.
	sharded, err := histapprox.NewShardedMaintainer(n, k, 4, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	shardTruth := make([]float64, n)
	batch := make([]int, 0, 1024)
	ingestStart := time.Now()
	for u := 0; u < 400_000; u++ {
		point := 1 + int(float64(n)*math.Pow(next(), 2.5)) // skewed
		if point > n {
			point = n
		}
		shardTruth[point-1]++
		batch = append(batch, point)
		if len(batch) == cap(batch) {
			if err := sharded.AddBatch(batch, nil); err != nil {
				log.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := sharded.AddBatch(batch, nil); err != nil {
		log.Fatal(err)
	}
	combined, err := sharded.Summary() // MergeSummaries over the shard summaries
	if err != nil {
		log.Fatal(err)
	}
	st := sharded.Stats()
	fmt.Printf("sharded intake: %d updates on %d shards in %v (%d background compactions, %d pauses)\n",
		st.Updates, st.Shards, time.Since(ingestStart).Round(time.Millisecond),
		st.Compactions, st.PauseCount)
	fmt.Printf("merged %d shard summaries: %d pieces, l2 error vs union %8.1f\n",
		st.Shards, combined.NumPieces(), combined.L2DistToDense(shardTruth))

	// Quantiles straight from the merged summary.
	cdf, err := histapprox.NewCDF(combined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("quantiles from the merged summary: ")
	for _, p := range []float64{0.25, 0.5, 0.9, 0.99} {
		x, err := cdf.Quantile(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p%.0f=%d  ", p*100, x)
	}
	fmt.Println()
}
