// Windowed & time-decayed streaming synopses: maintain a histogram summary
// over a sliding window of recent epochs, and answer queries that either
// restrict to the last m epochs or exponentially down-weight older ones.
//
// The engine keeps a ring of per-epoch summaries. Advance() seals the live
// epoch into the ring; queries combine the requested slots on demand, scaling
// each sealed slot by exp2(-age/halflife). Because the merging guarantee is
// scale-invariant, decayed answers keep the same √(1+δ)·opt certificate as
// undecayed ones.
//
// Run with:
//
//	go run ./examples/windowed
package main

import (
	"fmt"
	"log"

	histapprox "repro"
)

func main() {
	log.SetFlags(0)

	const (
		n      = 10000 // value domain
		k      = 8     // piece budget per summary
		epochs = 6     // ring span: the sliding window's maximum extent
	)
	wm, err := histapprox.NewWindowedStreamingHistogram(n, k, epochs, 0, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Each epoch's traffic concentrates on a different band of the domain,
	// so windowed answers visibly track "what happened recently".
	state := uint64(777)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for e := 0; e < 9; e++ { // more epochs than the ring holds: it wraps
		lo := 1 + (e%5)*1800
		for i := 0; i < 50_000; i++ {
			point := lo + int(next())%1800
			if err := wm.Add(point, 1); err != nil {
				log.Fatal(err)
			}
		}
		if e < 8 { // the final epoch stays live (unsealed)
			if err := wm.Advance(); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("windowed maintainer: ring of %d epochs, tick %d (oldest epochs evicted)\n\n",
		wm.WindowEpochs(), wm.Tick())

	// The band the live epoch is using (e=8 → lo=5401..7200).
	const a, b = 5401, 7200
	full, err := wm.EstimateRange(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mass in [%d, %d]:\n", a, b)
	fmt.Printf("  full retained history          %10.0f\n", full)
	for _, w := range []int{1, 3, epochs} {
		v, err := wm.EstimateRangeOver(a, b, w, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  last %d epoch(s)                %10.0f\n", w, v)
	}
	for _, hl := range []float64{1, 3} {
		v, err := wm.EstimateRangeOver(a, b, 0, hl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  decayed, half-life %g epoch(s)  %10.1f\n", hl, v)
	}

	// SummaryOver materializes the combined windowed histogram — same object
	// the HTTP layer serves for ?window=/&halflife= queries.
	h, err := wm.SummaryOver(2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2-epoch window summary: %d pieces over [1, %d]\n", h.NumPieces(), n)
}
