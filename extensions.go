package histapprox

import (
	"repro/internal/core"
	"repro/internal/quantile"
	"repro/internal/stream"
	"repro/internal/wavelet"
)

// --- Streaming and mergeable summaries (the maintenance setting of
// [GMP97, GGI+02] that motivates fast histogram construction). ---

// StreamingHistogram maintains an O(k)-piece histogram summary under a
// stream of point updates with O(1) amortized update cost: updates are
// buffered and periodically recompacted through one merging run. Range
// queries between compactions go through EstimateRange, which combines the
// indexed summary with the pending buffer without forcing a compaction.
type StreamingHistogram = stream.Maintainer

// NewStreamingHistogram builds a maintainer over [1, n] targeting k-piece
// summaries. bufferCap ≤ 0 picks a default proportional to the summary
// size. Pass nil opts for DefaultOptions.
func NewStreamingHistogram(n, k, bufferCap int, opts *Options) (*StreamingHistogram, error) {
	return stream.NewMaintainer(n, k, bufferCap, resolveOpts(opts))
}

// NewWindowedStreamingHistogram builds a maintainer whose summaries cover a
// sliding window of the newest epochs: Advance seals the live epoch into a
// ring of at most epochs−1 per-epoch summaries (evicting the oldest), and
// EstimateRangeOver / SummaryOver answer over the newest `window` epochs,
// optionally down-weighting older epochs by an exponential half-life. Decay
// scales each sealed summary's masses by the elapsed-epoch factor as it
// enters the combined answer — the merging guarantee is scale-invariant, so
// the √(1+δ)·opt certificate survives the reweighting. epochs ≥ 1; the other
// parameters follow NewStreamingHistogram.
func NewWindowedStreamingHistogram(n, k, epochs, bufferCap int, opts *Options) (*StreamingHistogram, error) {
	return stream.NewWindowedMaintainer(n, k, epochs, bufferCap, resolveOpts(opts))
}

// MergeHistograms combines the summaries of two disjoint data sets over the
// same domain into one O(k)-piece summary: the pointwise sum is formed
// exactly on the common refinement of the two partitions, then recompacted
// with one merging run. For more than two summaries use MergeSummaries,
// which sweeps the m-way refinement in one pass.
func MergeHistograms(h1, h2 *Histogram, k int, opts *Options) (*Histogram, error) {
	return stream.Merge(h1, h2, k, resolveOpts(opts))
}

// MergeSummaries combines any number of histogram summaries of disjoint
// data sets over the same domain into one O(k)-piece summary: a single
// sweep over the m-way common refinement plus one recompaction (instead of
// the pairwise chain's m−1 refine-and-recompact steps), recursing through a
// deterministic parallel aggregation tree for large m. The output is
// bit-identical for every opts.Workers value. Pass nil opts for
// DefaultOptions.
func MergeSummaries(hs []*Histogram, k int, opts *Options) (*Histogram, error) {
	return stream.MergeAll(hs, k, resolveOpts(opts))
}

// ShardedHistogram is the multi-core streaming intake engine: point updates
// hash across per-core shards, each an independently compacting
// StreamingHistogram whose merging runs happen on background goroutines
// behind a double-buffered update log — Add/AddBatch never block on a
// merging run while compaction keeps up. Summary merges the per-shard
// summaries through MergeSummaries, so the global result carries the same
// merging guarantee as the serial maintainer. All methods are safe for
// concurrent use; Stats reports throughput counters and recent
// compaction/pause durations for capacity planning.
type ShardedHistogram = stream.Sharded

// IngestStats is a snapshot of a ShardedHistogram's ingestion counters and
// recent compaction/pause durations.
type IngestStats = stream.IngestStats

// NewShardedMaintainer builds a sharded streaming maintainer over [1, n]
// targeting k-piece global summaries. shards ≤ 0 defaults to one shard per
// core — runtime.GOMAXPROCS(0), the same convention as Options.Workers —
// never an error; bufferCap is the per-shard compaction period (0 picks the
// default); nil opts means DefaultOptions. For a fixed shard count and a
// fixed single-producer update order the global summary is bit-identical
// across runs (note the per-core default makes the shard count — and hence
// the exact floating-point results — machine-dependent; pass an explicit
// positive count for cross-machine reproducibility).
func NewShardedMaintainer(n, k, shards, bufferCap int, opts *Options) (*ShardedHistogram, error) {
	return stream.NewSharded(n, k, shards, bufferCap, resolveOpts(opts))
}

// NewWindowedShardedMaintainer builds a sharded maintainer with a sliding
// epoch window, following the NewWindowedStreamingHistogram contract per
// shard: Advance seals every shard's live epoch in lockstep, and windowed /
// decayed queries combine the per-shard rings. shards ≤ 0 defaults to one
// shard per core, as in NewShardedMaintainer.
func NewWindowedShardedMaintainer(n, k, epochs, shards, bufferCap int, opts *Options) (*ShardedHistogram, error) {
	return stream.NewWindowedSharded(n, k, epochs, shards, bufferCap, resolveOpts(opts))
}

// --- Crash-safe durability: write-ahead logging + incremental checkpoints. ---

// DurableShardedHistogram is a ShardedHistogram whose ingest calls are
// write-ahead logged before they are applied: every acknowledged Add/AddBatch
// survives a process crash (per the group-commit fsync policy), periodic
// checkpoints bound the log and the recovery time, and recovery replays the
// log tail to a state bit-identical to an uninterrupted run over the
// surviving updates — same floats, same compaction cadence. A torn or
// corrupted log tail (the bytes an OS crash can leave behind) is detected by
// checksum and truncated cleanly, never a panic.
type DurableShardedHistogram = stream.DurableSharded

// DurableStreamingHistogram is the single-threaded durable counterpart,
// wrapping a StreamingHistogram with the same WAL + checkpoint machinery.
type DurableStreamingHistogram = stream.DurableMaintainer

// DurabilityOptions configures a durable engine: the WAL directory, the
// group-commit fsync policy (SyncEvery/SyncInterval — SyncEvery=1 fsyncs
// before every ingest call returns), and the checkpoint cadence.
type DurabilityOptions = stream.DurableOptions

// DurabilityStats snapshots a durable engine's counters: ingest stats, WAL
// appends/bytes/fsyncs/group-commit sizes, and checkpoint totals/durations.
type DurabilityStats = stream.DurableStats

// OpenDurableShardedMaintainer opens (or creates) a durable sharded
// maintainer persisted in d.Dir: if the directory holds a WAL, the engine is
// recovered — snapshot restored, log tail replayed — and otherwise a fresh
// engine and log are created. The n/k/shards/bufferCap/opts parameters apply
// only to creation; recovery restores them from the snapshot.
func OpenDurableShardedMaintainer(n, k, shards, bufferCap int, opts *Options, d DurabilityOptions) (*DurableShardedHistogram, error) {
	return stream.OpenDurableSharded(n, k, shards, bufferCap, resolveOpts(opts), d)
}

// RecoverDurableShardedMaintainer recovers a durable sharded maintainer from
// an existing WAL directory, failing if d.Dir holds none.
func RecoverDurableShardedMaintainer(d DurabilityOptions) (*DurableShardedHistogram, error) {
	return stream.RecoverDurableSharded(d)
}

// OpenDurableStreamingHistogram opens (or creates) a durable single-threaded
// maintainer persisted in d.Dir, following the OpenDurableShardedMaintainer
// contract.
func OpenDurableStreamingHistogram(n, k, bufferCap int, opts *Options, d DurabilityOptions) (*DurableStreamingHistogram, error) {
	return stream.OpenDurableMaintainer(n, k, bufferCap, resolveOpts(opts), d)
}

// --- Quantile queries from a summary. ---

// CDF answers cumulative-distribution and quantile queries from a
// non-negative histogram summary in O(log pieces) per query.
type CDF = quantile.CDF

// NewCDF validates h (non-negative pieces, positive mass) and precomputes
// prefix masses.
func NewCDF(h *Histogram) (*CDF, error) { return quantile.New(h) }

// --- Wavelet synopsis baseline. ---

// WaveletSynopsis is a B-term Haar wavelet synopsis — the classical ℓ2
// synopsis alternative to V-optimal histograms, provided for comparison.
type WaveletSynopsis = wavelet.Synopsis

// NewWaveletSynopsis keeps the B largest-magnitude coefficients of the
// orthonormal Haar transform of data, the ℓ2-optimal B-term wavelet
// approximation. Its Error method reports the exact ℓ2 reconstruction error
// via Parseval.
func NewWaveletSynopsis(data []float64, b int) (*WaveletSynopsis, error) {
	return wavelet.NewSynopsis(data, b)
}

// FitSummary runs the merging algorithm starting from an arbitrary interval
// summary (a partition of [1, n] with per-interval length/Σ/Σ² statistics)
// instead of raw data. This is the low-level entry point for building
// custom summary pipelines; most callers want Fit, NewStreamingHistogram,
// or MergeHistograms.
func FitSummary(n int, boundaries []int, sums, sumSqs []float64, k int, opts *Options) (*Histogram, float64, error) {
	part, stats, err := summaryInput(n, boundaries, sums, sumSqs)
	if err != nil {
		return nil, 0, err
	}
	res, err := core.ConstructHistogramFromSummary(n, part, stats, k, resolveOpts(opts))
	if err != nil {
		return nil, 0, err
	}
	return res.Histogram, res.Error, nil
}
