package histapprox

import (
	"math"
	"testing"
)

func TestStreamingHistogramFacade(t *testing.T) {
	sh, err := NewStreamingHistogram(500, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	levels := []float64{2, 8, 5, 11}
	truth := make([]float64, 500)
	for i := 1; i <= 500; i++ {
		v := levels[(i-1)*4/500]
		truth[i-1] = v
		if err := sh.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	h, err := sh.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if got := h.L2DistToDense(truth); got > 1e-6 {
		t.Fatalf("streaming summary error %v", got)
	}
}

func TestMergeHistogramsFacade(t *testing.T) {
	left := make([]float64, 400)
	right := make([]float64, 400)
	for i := 0; i < 200; i++ {
		left[i] = 3
	}
	for i := 200; i < 400; i++ {
		right[i] = 7
	}
	hl, _, err := Fit(left, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	hr, _, err := Fit(right, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeHistograms(hl, hr, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := merged.At(100); math.Abs(v-3) > 1e-9 {
		t.Fatalf("merged left value %v", v)
	}
	if v := merged.At(300); math.Abs(v-7) > 1e-9 {
		t.Fatalf("merged right value %v", v)
	}
}

func TestShardedMaintainerFacade(t *testing.T) {
	s, err := NewShardedMaintainer(1000, 6, 4, 128, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	points := make([]int, 0, 256)
	total := 0.0
	for i := 1; i <= 1000; i++ {
		if err := s.Add(i, 2); err != nil {
			t.Fatal(err)
		}
		points = append(points, i)
		total += 2
		if len(points) == 256 {
			if err := s.AddBatch(points, nil); err != nil {
				t.Fatal(err)
			}
			total += 256
			points = points[:0]
		}
	}
	if err := s.AddBatch(points, nil); err != nil {
		t.Fatal(err)
	}
	total += float64(len(points))
	est, err := s.EstimateRange(1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-total) > 1e-6 {
		t.Fatalf("EstimateRange(1, n) = %v, want %v", est, total)
	}
	h, err := s.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Mass()-total) > 1e-6 {
		t.Fatalf("summary mass %v, want %v", h.Mass(), total)
	}
	st := s.Stats()
	if st.Updates != s.Updates() || st.Shards != 4 {
		t.Fatalf("stats snapshot %+v inconsistent", st)
	}
}

func TestMergeSummariesFacade(t *testing.T) {
	// Four quarter summaries merge into the whole in one k-way pass.
	n := 800
	parts := make([]*Histogram, 4)
	for q := 0; q < 4; q++ {
		data := make([]float64, n)
		for i := q * n / 4; i < (q+1)*n/4; i++ {
			data[i] = float64(q + 1)
		}
		h, _, err := Fit(data, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		parts[q] = h
	}
	merged, err := MergeSummaries(parts, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		mid := q*n/4 + n/8
		if v := merged.At(mid); math.Abs(v-float64(q+1)) > 1e-9 {
			t.Fatalf("quarter %d value %v", q, v)
		}
	}
	if _, err := MergeSummaries(nil, 2, nil); err == nil {
		t.Fatal("empty merge should error")
	}
}

func TestCDFFacade(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = 1
	}
	h, _, err := Fit(data, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := NewCDF(h)
	if err != nil {
		t.Fatal(err)
	}
	med, err := cdf.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med != 50 {
		t.Fatalf("median %d", med)
	}
}

func TestWaveletFacadeAndComparison(t *testing.T) {
	// On noiseless step data with non-dyadic jump positions, a histogram
	// recovers the signal exactly while a Haar synopsis with the same
	// number budget cannot: each non-dyadic jump needs ~log n detail
	// coefficients, more than the shared budget allows. (With additive
	// noise both sit at the same noise floor and the comparison is a coin
	// flip, so the test uses clean steps.)
	n := 1024
	data := make([]float64, n)
	for i := range data {
		switch {
		case i < 300:
			data[i] = 2
		case i < 707:
			data[i] = 9
		default:
			data[i] = 4
		}
	}
	paper := PaperOptions()
	h, hErr, err := Fit(data, 3, &paper) // 7 pieces = 14 numbers
	if err != nil {
		t.Fatal(err)
	}
	if hErr > 1e-6 {
		t.Fatalf("histogram should recover clean steps exactly, err %v", hErr)
	}
	b := 2 * h.NumPieces()
	ws, err := NewWaveletSynopsis(data, b)
	if err != nil {
		t.Fatal(err)
	}
	if ws.B() != b {
		t.Fatalf("stored %d coefficients, want %d", ws.B(), b)
	}
	if ws.Error() < 1 {
		t.Fatalf("wavelet error %v — %d coefficients should not capture two non-dyadic jumps", ws.Error(), b)
	}
	// And the wavelet synopsis must still reconstruct with its reported
	// error.
	back, err := ws.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != n {
		t.Fatalf("reconstruction length %d", len(back))
	}
}

func TestFitSummary(t *testing.T) {
	// A two-interval summary of constant data: [1,50] all 4s, [51,100] all
	// 9s (Σ = 200/450, Σ² = 800/4050).
	h, errVal, err := FitSummary(100,
		[]int{50, 100},
		[]float64{200, 450},
		[]float64{800, 4050},
		2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if errVal > 1e-9 {
		t.Fatalf("summary of constant pieces should be exact, err %v", errVal)
	}
	if h.At(10) != 4 || h.At(90) != 9 {
		t.Fatalf("values %v, %v", h.At(10), h.At(90))
	}
}

func TestFitSummaryValidation(t *testing.T) {
	if _, _, err := FitSummary(10, nil, nil, nil, 1, nil); err == nil {
		t.Fatal("empty summary should error")
	}
	if _, _, err := FitSummary(10, []int{10}, []float64{1, 2}, []float64{1}, 1, nil); err == nil {
		t.Fatal("shape mismatch should error")
	}
	if _, _, err := FitSummary(10, []int{5}, []float64{1}, []float64{1}, 1, nil); err == nil {
		t.Fatal("incomplete cover should error")
	}
	if _, _, err := FitSummary(10, []int{10}, []float64{1}, []float64{-1}, 1, nil); err == nil {
		t.Fatal("negative Σq² should error")
	}
}
