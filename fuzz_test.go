package histapprox

import (
	"bytes"
	"math"
	"testing"
)

// FuzzHistogramCodec throws arbitrary bytes at the binary decoder. The
// contract under fuzzing: never panic, never allocate absurdly, and any
// envelope that decodes successfully must re-encode canonically — the
// encode→decode→encode fixed point that pins the wire format.
func FuzzHistogramCodec(f *testing.F) {
	opts := DefaultOptions()
	opts.Workers = 1
	// Seed with valid envelopes of several shapes plus near-miss mutations.
	for _, k := range []int{1, 4, 40} {
		h, _, err := Fit(codecData(257), k, &opts)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := h.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		mutated := append([]byte{}, buf.Bytes()...)
		mutated[len(mutated)/2] ^= 0x55
		f.Add(mutated)
	}
	if cdf, err := NewCDF(mustFit(f, codecData(64), 3, &opts)); err == nil {
		var buf bytes.Buffer
		if _, err := cdf.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("HSYN"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // malformed input must be rejected, and was
		}
		var first bytes.Buffer
		if err := Encode(&first, v); err != nil {
			t.Fatalf("decoded object failed to re-encode: %v", err)
		}
		v2, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v", err)
		}
		var second bytes.Buffer
		if err := Encode(&second, v2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("encode→decode→encode is not a fixed point")
		}
	})
}

// FuzzWindowedSnapshot is FuzzSummarySnapshot's sliding-window twin: a
// windowed maintainer advances through fuzz-chosen epoch seals, snapshots at
// a fuzz-chosen cut (a TagWindowed envelope carrying the epoch ring), and the
// restored engine must be indistinguishable — identical re-snapshot bytes,
// bit-identical windowed and decayed answers, and a bit-identical final
// summary after both see the same remaining stream and seals.
func FuzzWindowedSnapshot(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 250, 0, 9, 9, 77}, uint8(4), uint8(3))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add(bytes.Repeat([]byte{128, 255, 7}, 60), uint8(33), uint8(11))

	f.Fuzz(func(t *testing.T, data []byte, cutByte, periodByte uint8) {
		const n, W = 300, 3
		period := 1 + int(periodByte)%40
		opts := DefaultOptions()
		opts.Workers = 1
		straight, err := NewWindowedStreamingHistogram(n, 3, W, 16, &opts)
		if err != nil {
			t.Fatal(err)
		}
		crashy, err := NewWindowedStreamingHistogram(n, 3, W, 16, &opts)
		if err != nil {
			t.Fatal(err)
		}
		step := func(m *StreamingHistogram, i int) {
			point := 1 + (int(data[i])*7+i)%n
			w := float64(i%17) + 0.5
			if i%5 == 0 {
				w = -w
			}
			if err := m.Add(point, w); err != nil {
				t.Fatal(err)
			}
			if (i+1)%period == 0 {
				if err := m.Advance(); err != nil {
					t.Fatal(err)
				}
			}
		}
		cut := 0
		if len(data) > 0 {
			cut = int(cutByte) % (len(data) + 1)
		}
		for i := 0; i < cut; i++ {
			step(straight, i)
			step(crashy, i)
		}
		var ckpt bytes.Buffer
		if err := crashy.Snapshot(&ckpt); err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreStreamingHistogram(bytes.NewReader(ckpt.Bytes()))
		if err != nil {
			t.Fatalf("own windowed snapshot failed to restore: %v", err)
		}
		if !restored.Windowed() || restored.WindowEpochs() != W || restored.Tick() != crashy.Tick() {
			t.Fatalf("restored windowed=%v epochs=%d tick=%d, want true/%d/%d",
				restored.Windowed(), restored.WindowEpochs(), restored.Tick(), W, crashy.Tick())
		}
		var again bytes.Buffer
		if err := restored.Snapshot(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ckpt.Bytes(), again.Bytes()) {
			t.Fatal("windowed snapshot → restore → snapshot bytes differ")
		}
		for w := 0; w <= W; w++ {
			for _, hl := range []float64{0, 1.25} {
				want, err1 := crashy.EstimateRangeOver(1, n, w, hl)
				got, err2 := restored.EstimateRangeOver(1, n, w, hl)
				if err1 != nil || err2 != nil || math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("EstimateRangeOver(1, n, %d, %g): %v vs %v (%v, %v)", w, hl, got, want, err1, err2)
				}
			}
		}
		for i := cut; i < len(data); i++ {
			step(straight, i)
			step(restored, i)
		}
		hw, err := straight.SummaryOver(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		hg, err := restored.SummaryOver(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if hw.NumPieces() != hg.NumPieces() {
			t.Fatalf("restored run: %d pieces, uninterrupted: %d", hg.NumPieces(), hw.NumPieces())
		}
		for i, pc := range hw.Pieces() {
			gpc := hg.Pieces()[i]
			if gpc.Interval != pc.Interval || math.Float64bits(gpc.Value) != math.Float64bits(pc.Value) {
				t.Fatalf("piece %d differs between restored and uninterrupted runs", i)
			}
		}
	})
}

func mustFit(f *testing.F, q []float64, k int, opts *Options) *Histogram {
	h, _, err := Fit(q, k, opts)
	if err != nil {
		f.Fatal(err)
	}
	return h
}

// FuzzSummarySnapshot drives a streaming maintainer with a fuzz-derived
// update stream, checkpoints it at a fuzz-chosen cut, and verifies the
// restored maintainer is indistinguishable from the original: identical
// snapshot bytes, EstimateRange answers, and final summaries after both see
// the same remaining stream.
func FuzzSummarySnapshot(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 250, 0, 9, 9, 77}, uint8(4))
	f.Add([]byte{}, uint8(0))
	f.Add(bytes.Repeat([]byte{128, 255, 7}, 60), uint8(33))

	f.Fuzz(func(t *testing.T, data []byte, cutByte uint8) {
		const n = 300
		opts := DefaultOptions()
		opts.Workers = 1
		straight, err := NewStreamingHistogram(n, 3, 16, &opts)
		if err != nil {
			t.Fatal(err)
		}
		crashy, err := NewStreamingHistogram(n, 3, 16, &opts)
		if err != nil {
			t.Fatal(err)
		}
		// Each input byte is one update: point from the byte, weight from its
		// position (negative every fifth update to cover deletions).
		update := func(m *StreamingHistogram, i int) {
			point := 1 + (int(data[i])*7+i)%n
			w := float64(i%17) + 0.5
			if i%5 == 0 {
				w = -w
			}
			if err := m.Add(point, w); err != nil {
				t.Fatal(err)
			}
		}
		cut := 0
		if len(data) > 0 {
			cut = int(cutByte) % (len(data) + 1)
		}
		for i := 0; i < cut; i++ {
			update(straight, i)
			update(crashy, i)
		}
		var ckpt bytes.Buffer
		if err := crashy.Snapshot(&ckpt); err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreStreamingHistogram(bytes.NewReader(ckpt.Bytes()))
		if err != nil {
			t.Fatalf("own snapshot failed to restore: %v", err)
		}
		var again bytes.Buffer
		if err := restored.Snapshot(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ckpt.Bytes(), again.Bytes()) {
			t.Fatal("snapshot → restore → snapshot bytes differ")
		}
		for _, r := range [][2]int{{1, n}, {n / 3, 2 * n / 3}, {5, 5}} {
			want, err1 := crashy.EstimateRange(r[0], r[1])
			got, err2 := restored.EstimateRange(r[0], r[1])
			if err1 != nil || err2 != nil || math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("EstimateRange(%d, %d): %v vs %v", r[0], r[1], got, want)
			}
		}
		for i := cut; i < len(data); i++ {
			update(straight, i)
			update(restored, i)
		}
		hw, err := straight.Summary()
		if err != nil {
			t.Fatal(err)
		}
		hg, err := restored.Summary()
		if err != nil {
			t.Fatal(err)
		}
		if hw.NumPieces() != hg.NumPieces() {
			t.Fatalf("restored run: %d pieces, uninterrupted: %d", hg.NumPieces(), hw.NumPieces())
		}
		for i, pc := range hw.Pieces() {
			gpc := hg.Pieces()[i]
			if gpc.Interval != pc.Interval || math.Float64bits(gpc.Value) != math.Float64bits(pc.Value) {
				t.Fatalf("piece %d differs between restored and uninterrupted runs", i)
			}
		}
	})
}
