// Package histapprox is a Go implementation of "Fast and Near-Optimal
// Algorithms for Approximating Distributions by Histograms" (Acharya,
// Diakonikolas, Hegde, Li, Schmidt — PODS 2015).
//
// The library answers two closely related questions:
//
//  1. Offline approximation: given a (possibly sparse) data vector q over
//     the universe [n], find a histogram with O(k) pieces whose ℓ2 distance
//     from q is within a small constant factor of the best k-piece
//     histogram — in time linear in the number of nonzeros, independent of
//     n and k (Fit, FitFast, FitMultiscale, FitPolynomial).
//
//  2. Distribution learning: given i.i.d. samples from an unknown
//     distribution p over [n], learn an O(k)-histogram h with
//     ‖h − p‖₂ ≤ 2·opt_k + ε from the information-theoretically minimal
//     O(1/ε²) samples, in time linear in the sample count (Learn,
//     LearnMultiscale, LearnPolynomial, SampleSize).
//
// Exact and approximate baselines from prior work (FitExact, FitDual,
// FitGKS) are included for comparison, along with a database-synopsis layer
// for range-count/selectivity estimation (NewSelectivityEstimator).
//
// Quick start:
//
//	data := ... // []float64 over [1, n]
//	h, l2err, err := histapprox.Fit(data, 10, nil)    // ≈ 21-piece histogram
//	v := h.At(42)                                     // O(log k) point query
//	s := h.RangeSum(100, 200)                         // O(log k) range sum
//	vs := h.AtBatch(points, nil, 0)                   // bulk serving, all cores
//
// Histograms are built once and then served read-only: every query runs on
// an immutable index (flat boundary array, prefix masses, Eytzinger search
// layout) built lazily on the first query and safe for any number of
// concurrent readers. See the examples/ directory for runnable end-to-end
// programs and EXPERIMENTS.md for the reproduction of the paper's tables
// and figures plus the query-throughput methodology.
package histapprox

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/piecewise"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// Histogram is a piecewise constant function over [1, n]. Obtain one from
// Fit, Learn, or the baselines; evaluate with At (point, O(log k)), RangeSum
// (range, O(log k)), or the batched AtBatch/RangeSumBatch serving paths;
// materialize with ToDense, inspect pieces with Pieces. All queries are
// safe for concurrent readers.
type Histogram = core.Histogram

// Piece is one interval of a Histogram with its constant value.
type Piece = core.Piece

// Hierarchy is a multi-scale histogram: a single O(s) construction that, for
// every k, yields an ≤ 8k-piece histogram with error ≤ 2·opt_k via ForK
// (Theorem 2.2 of the paper).
type Hierarchy = core.Hierarchy

// PiecewisePoly is a piecewise degree-d polynomial function over [1, n]
// (Theorem 2.3 of the paper).
type PiecewisePoly = piecewise.PiecewiseFunc

// Options are the trade-off parameters of the merging algorithm. Delta (δ)
// trades approximation ratio √(1+δ) against the piece bound (2+2/δ)k+γ;
// Gamma (γ) trades running time against pieces. Workers sets how many
// goroutines the merging rounds and the sample bucketing use: 0 (the
// default) or any negative value means all cores, 1 forces the serial
// path, any other positive value is used as given — the same convention as
// every worker-taking function here. The parallel path is bit-identical to the serial
// one for every worker count — Workers only changes wall-clock time, never
// the output (see EXPERIMENTS.md for measurements). The zero value of
// Options is invalid; use DefaultOptions or PaperOptions, or pass nil to
// the top-level functions to get DefaultOptions.
type Options = core.Options

// DefaultOptions returns δ = 1, γ = 1: at most 4k+1 pieces, error at most
// √2·opt_k.
func DefaultOptions() Options { return core.DefaultOptions() }

// PaperOptions returns the parameters of the paper's experiments: δ = 1000,
// γ = 1, producing 2k+1 pieces.
func PaperOptions() Options { return core.PaperOptions() }

func resolveOpts(opts *Options) Options {
	if opts == nil {
		return core.DefaultOptions()
	}
	return *opts
}

// checkFinite rejects NaN/Inf inputs up front: the merging statistics would
// otherwise propagate them into every interval silently.
func checkFinite(data []float64) error {
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("histapprox: data[%d] = %v is not finite", i, v)
		}
	}
	return nil
}

// Fit approximates the dense vector data (data[0] is the value at point 1)
// with a histogram of at most (2+2/δ)k+γ pieces and ℓ2 error at most
// √(1+δ)·opt_k, in time O(len(data)). It returns the histogram and its
// exact ℓ2 error. Pass nil opts for DefaultOptions.
func Fit(data []float64, k int, opts *Options) (*Histogram, float64, error) {
	if len(data) == 0 {
		return nil, 0, errors.New("histapprox: empty data")
	}
	if err := checkFinite(data); err != nil {
		return nil, 0, err
	}
	res, err := core.ConstructHistogram(sparse.FromDense(data), k, resolveOpts(opts))
	if err != nil {
		return nil, 0, err
	}
	return res.Histogram, res.Error, nil
}

// FitSparse is Fit for sparse inputs: entries maps 1-based indices in [1, n]
// to nonzero values; all other points are zero. The running time is linear
// in len(entries), independent of n — the input-sparsity guarantee that
// makes the learning pipeline sample-linear.
func FitSparse(n int, entries map[int]float64, k int, opts *Options) (*Histogram, float64, error) {
	es := make([]sparse.Entry, 0, len(entries))
	for i, v := range entries {
		es = append(es, sparse.Entry{Index: i, Value: v})
	}
	sf, err := sparse.New(n, es)
	if err != nil {
		return nil, 0, fmt.Errorf("histapprox: %w", err)
	}
	res, err := core.ConstructHistogram(sf, k, resolveOpts(opts))
	if err != nil {
		return nil, 0, err
	}
	return res.Histogram, res.Error, nil
}

// FitFast is Fit using the "fastmerging" variant, which merges larger groups
// of intervals in early rounds: same guarantees, O(log log) merging rounds
// instead of O(log), and measurably faster in practice (Table 1).
func FitFast(data []float64, k int, opts *Options) (*Histogram, float64, error) {
	if len(data) == 0 {
		return nil, 0, errors.New("histapprox: empty data")
	}
	if err := checkFinite(data); err != nil {
		return nil, 0, err
	}
	res, err := core.ConstructHistogramFast(sparse.FromDense(data), k, resolveOpts(opts))
	if err != nil {
		return nil, 0, err
	}
	return res.Histogram, res.Error, nil
}

// FitMultiscale builds the multi-scale hierarchy in one O(len(data)) pass.
// hierarchy.ForK(k) then returns, for any k, an ≤ 8k-piece histogram with
// error ≤ 2·opt_k together with its exact error — the whole k-vs-accuracy
// Pareto curve from a single run.
func FitMultiscale(data []float64) (*Hierarchy, error) {
	return FitMultiscaleWorkers(data, 0)
}

// FitMultiscaleWorkers is FitMultiscale with an explicit worker count:
// 0 means all cores, 1 forces the serial path. The hierarchy is
// bit-identical for every worker count.
func FitMultiscaleWorkers(data []float64, workers int) (*Hierarchy, error) {
	if len(data) == 0 {
		return nil, errors.New("histapprox: empty data")
	}
	if err := checkFinite(data); err != nil {
		return nil, err
	}
	return core.ConstructHierarchicalHistogramWorkers(sparse.FromDense(data), workers), nil
}

// FitPolynomial approximates data with a piecewise degree-d polynomial of at
// most (2+2/δ)k+γ pieces and error at most √(1+δ)·opt_{k,d}, using the
// discrete-Chebyshev projection oracle (Theorem 2.3 / Corollary 4.1).
func FitPolynomial(data []float64, k, d int, opts *Options) (*PiecewisePoly, float64, error) {
	if len(data) == 0 {
		return nil, 0, errors.New("histapprox: empty data")
	}
	if err := checkFinite(data); err != nil {
		return nil, 0, err
	}
	res, err := piecewise.FitPiecewisePoly(sparse.FromDense(data), k, d, resolveOpts(opts))
	if err != nil {
		return nil, 0, err
	}
	return res.Func, res.Error, nil
}

// FitExact computes the optimal V-optimal k-histogram by the O(n²k) dynamic
// program of Jagadish et al. [JKM+98]. Use it as an accuracy baseline; it is
// orders of magnitude slower than Fit (see EXPERIMENTS.md, Table 1).
func FitExact(data []float64, k int) (*Histogram, float64, error) {
	return baseline.ExactDP(data, k)
}

// FitDual runs the linear-time dual greedy algorithm of [JKM+98] with a
// binary search over the error budget: at most k pieces, error typically
// 1.5–2× optimal.
func FitDual(data []float64, k int) (*Histogram, float64, error) {
	return baseline.Dual(data, k)
}

// FitGKS computes a (1+delta)-approximate V-optimal k-histogram (squared
// error within (1+delta) of optimal) with a sparse dynamic program in the
// style of Guha, Koudas, and Shim [GKS06].
func FitGKS(data []float64, k int, delta float64) (*Histogram, float64, error) {
	return baseline.GKSApprox(data, k, delta)
}

// SampleSize returns the number of i.i.d. samples sufficient to learn any
// distribution over any universe to ℓ2 distance eps with probability
// 1−delta: m = O(eps⁻²·log(1/delta)), independent of the universe size
// (Theorem 3.1; matching lower bound in Theorem 3.2).
func SampleSize(eps, delta float64) (int, error) { return learn.SampleSize(eps, delta) }

// LearnReport carries provenance of a learned hypothesis: sample size,
// support, the observable empirical error, pieces, and merging rounds.
type LearnReport = learn.Report

// Learn builds an O(k)-histogram hypothesis from i.i.d. samples (1-based
// points in [1, n]) of an unknown distribution: pieces ≤ (2+2/δ)k+γ and
// ‖h − p‖₂ ≤ √(1+δ)·opt_k + O(ε) when len(samples) ≥ SampleSize(ε, ·)
// (Theorem 2.1). The hypothesis has total mass 1 by construction.
func Learn(n int, samples []int, k int, opts *Options) (*Histogram, LearnReport, error) {
	return learn.HistogramFromSamples(n, samples, k, resolveOpts(opts))
}

// LearnMultiscale builds the Theorem 2.2 hierarchy from samples: for every
// k, ForK(k) gives ≤ 8k pieces, error ≤ 2·opt_k + ε, and an error estimate
// within ±ε of the truth.
func LearnMultiscale(n int, samples []int) (*Hierarchy, LearnReport, error) {
	return learn.MultiscaleFromSamples(n, samples)
}

// LearnPolynomial learns a piecewise degree-d polynomial hypothesis from
// samples (Theorem 2.3).
func LearnPolynomial(n int, samples []int, k, d int, opts *Options) (*PiecewisePoly, LearnReport, error) {
	return learn.PiecewisePolyFromSamples(n, samples, k, d, resolveOpts(opts))
}

// Distribution is a probability distribution over [1, n].
type Distribution = dist.Dist

// NewDistribution validates masses (non-negative, summing to 1) and wraps
// them as a Distribution.
func NewDistribution(masses []float64) (Distribution, error) { return dist.New(masses) }

// DistributionFromWeights normalizes non-negative weights into a
// Distribution (negatives are clamped to zero).
func DistributionFromWeights(weights []float64) (Distribution, error) {
	return dist.FromWeights(weights)
}

// Draw returns m i.i.d. samples (1-based) from d using an O(1)-per-draw
// alias sampler seeded deterministically by seed.
func Draw(d Distribution, m int, seed uint64) []int {
	return dist.Draw(d, m, rng.New(seed))
}

// DrawWorkers draws m samples on `workers` goroutines (≤ 0 = all cores):
// the batch is split into fixed chunks, each filled from its own generator
// derived from seed. Deterministic for a fixed (seed, workers) pair with
// workers ≥ 1, but a different — equally i.i.d. — stream than Draw; use it
// for throughput when generating large sample batches. Note workers ≤ 0
// resolves to the machine's core count, so the stream then varies across
// machines — pass an explicit positive count for cross-machine
// reproducibility.
func DrawWorkers(d Distribution, m int, seed uint64, workers int) []int {
	return dist.DrawWorkers(d, m, rng.New(seed), workers)
}
