package histapprox

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func stepData(r *rng.RNG, n, k int, sigma float64) []float64 {
	q := make([]float64, n)
	pieceLen := n / k
	for p := 0; p < k; p++ {
		v := r.NormFloat64() * 5
		for i := p * pieceLen; i < (p+1)*pieceLen && i < n; i++ {
			q[i] = v + sigma*r.NormFloat64()
		}
	}
	for i := k * pieceLen; i < n; i++ {
		q[i] = q[k*pieceLen-1]
	}
	return q
}

func TestFitBasic(t *testing.T) {
	r := rng.New(227)
	data := stepData(r, 500, 5, 0)
	h, errVal, err := Fit(data, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if errVal > 1e-9 {
		t.Fatalf("error %v on exact 5-histogram", errVal)
	}
	if h.NumPieces() > DefaultOptions().TargetPieces(5) {
		t.Fatalf("pieces = %d", h.NumPieces())
	}
	if h.At(1) != data[0] {
		t.Fatal("At(1) mismatch")
	}
}

func TestFitEmpty(t *testing.T) {
	if _, _, err := Fit(nil, 1, nil); err == nil {
		t.Fatal("empty data should error")
	}
	if _, _, err := FitFast(nil, 1, nil); err == nil {
		t.Fatal("empty data should error")
	}
	if _, err := FitMultiscale(nil); err == nil {
		t.Fatal("empty data should error")
	}
	if _, _, err := FitPolynomial(nil, 1, 1, nil); err == nil {
		t.Fatal("empty data should error")
	}
}

func TestFitSparse(t *testing.T) {
	h, errVal, err := FitSparse(1_000_000, map[int]float64{
		10: 5, 11: 5, 12: 5, 500_000: 2,
	}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if errVal > 1e-9 {
		t.Fatalf("error %v — sparse step data should fit exactly", errVal)
	}
	if h.At(10) != 5 || h.At(999_999) != 0 {
		t.Fatal("sparse fit values wrong")
	}
	if _, _, err := FitSparse(10, map[int]float64{11: 1}, 1, nil); err == nil {
		t.Fatal("out-of-range entry should error")
	}
}

func TestFitOptionsRespected(t *testing.T) {
	r := rng.New(229)
	data := make([]float64, 2000)
	for i := range data {
		data[i] = r.NormFloat64()
	}
	paper := PaperOptions()
	h, _, err := Fit(data, 10, &paper)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumPieces() != 21 {
		t.Fatalf("paper options should give 2k+1 = 21 pieces, got %d", h.NumPieces())
	}
}

func TestFitFastAgreesOnQuality(t *testing.T) {
	r := rng.New(233)
	data := stepData(r, 4000, 8, 0.5)
	_, slowErr, err := Fit(data, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, fastErr, err := FitFast(data, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fastErr > 2*slowErr+1e-9 {
		t.Fatalf("fast %v vs slow %v", fastErr, slowErr)
	}
}

func TestFitMultiscale(t *testing.T) {
	r := rng.New(239)
	data := stepData(r, 1000, 6, 0.2)
	hier, err := FitMultiscale(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hier.ForK(6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram.NumPieces() > 48 {
		t.Fatalf("pieces = %d > 8k", res.Histogram.NumPieces())
	}
	_, opt, err := FitExact(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Error > 2*opt+1e-9 {
		t.Fatalf("multiscale error %v > 2·opt %v", res.Error, opt)
	}
}

func TestFitPolynomialBeatsHistogramOnQuadratic(t *testing.T) {
	data := make([]float64, 600)
	for i := range data {
		x := float64(i) / 600
		data[i] = 100 * x * x
	}
	_, polyErr, err := FitPolynomial(data, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, histErr, err := Fit(data, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if polyErr >= histErr/10 {
		t.Fatalf("degree-2 fit on a parabola should crush the histogram: %v vs %v", polyErr, histErr)
	}
}

func TestBaselinesConsistent(t *testing.T) {
	r := rng.New(241)
	data := make([]float64, 300)
	for i := range data {
		data[i] = r.NormFloat64() * 2
	}
	_, opt, err := FitExact(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, dual, err := FitDual(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, gks, err := FitGKS(data, 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if dual < opt-1e-9 || gks < opt-1e-9 {
		t.Fatal("baselines beat the optimum — impossible")
	}
	if gks*gks > 1.5*opt*opt+1e-9 {
		t.Fatalf("GKS outside its guarantee: %v vs opt %v", gks, opt)
	}
}

func TestLearnEndToEnd(t *testing.T) {
	// Build a 4-histogram distribution, sample, learn, and verify O(ε)
	// recovery through the pure public API.
	masses := make([]float64, 200)
	levels := []float64{4, 1, 6, 2}
	for i := range masses {
		masses[i] = levels[i/50]
	}
	p, err := DistributionFromWeights(masses)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SampleSize(0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	samples := Draw(p, m, 42)
	h, rep, err := Learn(200, samples, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.M != m {
		t.Fatalf("report M = %d", rep.M)
	}
	var sq float64
	for i, pm := range p.P {
		d := pm - h.At(i+1)
		sq += d * d
	}
	if l2 := math.Sqrt(sq); l2 > 0.1 {
		t.Fatalf("‖h − p‖₂ = %v", l2)
	}
	if math.Abs(h.Mass()-1) > 1e-9 {
		t.Fatalf("hypothesis mass %v", h.Mass())
	}
}

func TestLearnMultiscaleEndToEnd(t *testing.T) {
	p, err := DistributionFromWeights([]float64{1, 1, 1, 1, 5, 5, 5, 5, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	samples := Draw(p, 20000, 7)
	hier, rep, err := LearnMultiscale(10, samples)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Support == 0 {
		t.Fatal("empty support")
	}
	res, err := hier.ForK(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram.NumPieces() > 24 {
		t.Fatalf("pieces = %d", res.Histogram.NumPieces())
	}
}

func TestLearnPolynomialEndToEnd(t *testing.T) {
	w := make([]float64, 100)
	for i := range w {
		w[i] = float64(1 + i)
	}
	p, err := DistributionFromWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	samples := Draw(p, 30000, 11)
	f, _, err := LearnPolynomial(100, samples, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sq float64
	for i, pm := range p.P {
		d := pm - f.At(i+1)
		sq += d * d
	}
	if l2 := math.Sqrt(sq); l2 > 0.01 {
		t.Fatalf("piecewise-linear learning error %v", l2)
	}
}

func TestSelectivityFacade(t *testing.T) {
	values := []int{1, 1, 1, 2, 5, 5, 9, 9, 9, 9}
	freq, err := ColumnFrequencies(values, 10)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewSelectivityEstimator(freq, 3)
	if err != nil {
		t.Fatal(err)
	}
	exact := NewExactCounter(freq)
	got, err := est.EstimateRange(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := exact.CountRange(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-truth) > 1e-9 {
		t.Fatalf("whole-domain estimate %v vs %v", got, truth)
	}
	if _, err := NewEquiWidthEstimator(freq, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEquiDepthEstimator(freq, 3); err != nil {
		t.Fatal(err)
	}
	// Full coefficient budget (padded length 16) → exact answers.
	wv, err := NewWaveletEstimator(freq, 16)
	if err != nil {
		t.Fatal(err)
	}
	wvEst, err := wv.EstimateRange(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wvEst-truth) > 1e-6 {
		t.Fatalf("wavelet whole-domain estimate %v vs %v", wvEst, truth)
	}
}

func TestNewDistributionValidates(t *testing.T) {
	if _, err := NewDistribution([]float64{0.5, 0.6}); err == nil {
		t.Fatal("invalid masses should error")
	}
	d, err := NewDistribution([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 {
		t.Fatal("N wrong")
	}
}
