package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/interval"
	"repro/internal/numeric"
	"repro/internal/rng"
)

// bruteForceOpt enumerates all partitions of [1, n] into exactly ≤ k pieces
// and returns the minimal ℓ2 error. Exponential — tiny n only.
func bruteForceOpt(q []float64, k int) float64 {
	n := len(q)
	pre := numeric.NewPrefixSSE(q)
	best := math.MaxFloat64
	// Choose up to k−1 breakpoints out of n−1 positions.
	var rec func(start, piecesLeft int, acc float64)
	rec = func(start, piecesLeft int, acc float64) {
		if acc >= best {
			return
		}
		if piecesLeft == 1 {
			total := acc + pre.SSE(start, n)
			if total < best {
				best = total
			}
			return
		}
		for end := start; end <= n-piecesLeft+1; end++ {
			rec(end+1, piecesLeft-1, acc+pre.SSE(start, end))
		}
	}
	rec(1, k, 0)
	return math.Sqrt(best)
}

func randomVector(r *rng.RNG, n int) []float64 {
	q := make([]float64, n)
	for i := range q {
		q[i] = r.NormFloat64() * 3
	}
	return q
}

func stepVector(r *rng.RNG, n, k int, sigma float64) []float64 {
	p := interval.Uniform(n, k)
	q := make([]float64, n)
	for _, iv := range p {
		v := r.NormFloat64() * 5
		for x := iv.Lo; x <= iv.Hi; x++ {
			q[x-1] = v + sigma*r.NormFloat64()
		}
	}
	return q
}

func TestExactDPValidation(t *testing.T) {
	if _, _, err := ExactDP(nil, 1); err == nil {
		t.Fatal("empty input should error")
	}
	if _, _, err := ExactDP([]float64{1}, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestExactDPMatchesBruteForce(t *testing.T) {
	r := rng.New(113)
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(9) // n ≤ 12 keeps brute force fast
		k := 1 + r.Intn(4)
		q := randomVector(r, n)
		_, got, err := ExactDP(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceOpt(q, k)
		if !numeric.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("trial %d (n=%d k=%d): DP %v vs brute force %v", trial, n, k, got, want)
		}
	}
}

func TestExactDPHistogramMatchesReportedError(t *testing.T) {
	r := rng.New(127)
	q := randomVector(r, 200)
	for _, k := range []int{1, 2, 7, 50, 200, 500} {
		h, errVal, err := ExactDP(q, k)
		if err != nil {
			t.Fatal(err)
		}
		// Near-zero errors (k >= n) are rounding noise on both sides.
		if got := h.L2DistToDense(q); !numeric.AlmostEqual(got, errVal, 1e-9) &&
			(got > 1e-5 || errVal > 1e-5) {
			t.Fatalf("k=%d: histogram error %v vs reported %v", k, got, errVal)
		}
		if h.NumPieces() > k && k <= 200 {
			t.Fatalf("k=%d: %d pieces", k, h.NumPieces())
		}
	}
}

func TestExactDPExactRecovery(t *testing.T) {
	r := rng.New(131)
	for trial := 0; trial < 10; trial++ {
		n := 20 + r.Intn(100)
		k := 1 + r.Intn(5)
		q := stepVector(r, n, k, 0)
		_, errVal, err := ExactDP(q, k)
		if err != nil {
			t.Fatal(err)
		}
		// Prefix-sum cancellation leaves a rounding floor of ~1e-7 in the
		// reported error on inputs of this scale.
		if errVal > 1e-5 {
			t.Fatalf("trial %d: opt_%d = %v on a %d-histogram", trial, k, errVal, k)
		}
	}
}

func TestExactDPKGreaterThanN(t *testing.T) {
	q := []float64{3, 1, 4}
	h, errVal, err := ExactDP(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if errVal != 0 || h.NumPieces() != 3 {
		t.Fatalf("k>n: err %v pieces %d", errVal, h.NumPieces())
	}
}

func TestExactDPMonotoneInK(t *testing.T) {
	r := rng.New(137)
	q := randomVector(r, 64)
	prev := math.Inf(1)
	for k := 1; k <= 64; k++ {
		_, e, err := ExactDP(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if e > prev+1e-9 {
			t.Fatalf("opt_k increased at k=%d: %v -> %v", k, prev, e)
		}
		prev = e
	}
	// opt_n is mathematically 0; rounding leaves ~1e-6.
	if prev > 1e-5 {
		t.Fatalf("opt_n = %v, want ≈0", prev)
	}
}

func TestGreedyDualBudgetRespected(t *testing.T) {
	r := rng.New(139)
	q := randomVector(r, 300)
	pre := numeric.NewPrefixSSE(q)
	for _, tau := range []float64{0.1, 1, 10, 100} {
		part := GreedyDual(pre, tau)
		if err := part.Validate(300); err != nil {
			t.Fatal(err)
		}
		for _, iv := range part {
			if iv.Len() > 1 && pre.SSE(iv.Lo, iv.Hi) > tau+1e-12 {
				// Greedy closes a piece *before* the point that would
				// overflow it, so every multi-point piece obeys the budget.
				t.Fatalf("tau=%v: piece %v has SSE %v", tau, iv, pre.SSE(iv.Lo, iv.Hi))
			}
		}
	}
}

func TestGreedyDualZeroBudget(t *testing.T) {
	q := []float64{1, 1, 2, 2, 2, 3}
	pre := numeric.NewPrefixSSE(q)
	part := GreedyDual(pre, 0)
	// Zero budget groups only equal consecutive values: 3 pieces.
	if len(part) != 3 {
		t.Fatalf("pieces = %d, want 3: %v", len(part), part)
	}
}

func TestDualPieceCountAndError(t *testing.T) {
	r := rng.New(149)
	q := randomVector(r, 500)
	for _, k := range []int{1, 5, 20} {
		h, errVal, err := Dual(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if h.NumPieces() > k {
			t.Fatalf("k=%d: dual produced %d pieces", k, h.NumPieces())
		}
		if got := h.L2DistToDense(q); !numeric.AlmostEqual(got, errVal, 1e-9) {
			t.Fatalf("reported error %v vs actual %v", errVal, got)
		}
		// Dual is suboptimal but must be within a small factor of opt on
		// random data (the paper measures ≈1.6–2×).
		_, opt, err := ExactDP(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if errVal < opt-1e-9 {
			t.Fatalf("dual error %v beats optimal %v — impossible", errVal, opt)
		}
		if errVal > 3*opt+1e-9 {
			t.Fatalf("k=%d: dual error %v more than 3× opt %v", k, errVal, opt)
		}
	}
}

func TestDualExactRecovery(t *testing.T) {
	r := rng.New(151)
	q := stepVector(r, 120, 4, 0)
	h, errVal, err := Dual(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if errVal > 1e-5 {
		t.Fatalf("dual error %v on exact 4-histogram", errVal)
	}
	if h.NumPieces() > 4 {
		t.Fatalf("dual pieces %d > 4", h.NumPieces())
	}
}

func TestDualValidation(t *testing.T) {
	if _, _, err := Dual(nil, 1); err == nil {
		t.Fatal("empty input should error")
	}
	if _, _, err := Dual([]float64{1}, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestGKSApproxGuarantee(t *testing.T) {
	// Squared error within (1+δ) of optimal.
	r := rng.New(157)
	for trial := 0; trial < 15; trial++ {
		n := 30 + r.Intn(150)
		k := 1 + r.Intn(6)
		var q []float64
		if trial%2 == 0 {
			q = randomVector(r, n)
		} else {
			q = stepVector(r, n, k, 0.4)
		}
		_, opt, err := ExactDP(q, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, delta := range []float64{0.05, 0.5, 1} {
			h, got, err := GKSApprox(q, k, delta)
			if err != nil {
				t.Fatal(err)
			}
			if h.NumPieces() > k {
				t.Fatalf("GKS produced %d pieces > k=%d", h.NumPieces(), k)
			}
			if got*got > (1+delta)*opt*opt+1e-9 {
				t.Fatalf("trial %d (n=%d k=%d δ=%v): GKS err² %v > (1+δ)·opt² %v",
					trial, n, k, delta, got*got, (1+delta)*opt*opt)
			}
			if got < opt-1e-9 {
				t.Fatalf("GKS error %v beats optimal %v", got, opt)
			}
		}
	}
}

func TestGKSApproxValidation(t *testing.T) {
	if _, _, err := GKSApprox(nil, 1, 0.1); err == nil {
		t.Fatal("empty input should error")
	}
	if _, _, err := GKSApprox([]float64{1}, 0, 0.1); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, _, err := GKSApprox([]float64{1, 2}, 1, 0); err == nil {
		t.Fatal("delta=0 should error")
	}
	if _, _, err := GKSApprox([]float64{1, 2}, 1, math.NaN()); err == nil {
		t.Fatal("NaN delta should error")
	}
}

func TestGKSExactRecovery(t *testing.T) {
	r := rng.New(163)
	q := stepVector(r, 200, 5, 0)
	_, errVal, err := GKSApprox(q, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if errVal > 1e-5 {
		t.Fatalf("GKS error %v on exact 5-histogram", errVal)
	}
}

// Property: for random small inputs the three baselines are ordered
// opt ≤ GKS ≤ √(1+δ)·opt and opt ≤ dual.
func TestBaselineOrderingProperty(t *testing.T) {
	f := func(seed uint32, kRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := 20 + r.Intn(60)
		k := int(kRaw)%5 + 1
		q := randomVector(r, n)
		_, opt, err1 := ExactDP(q, k)
		_, gks, err2 := GKSApprox(q, k, 0.5)
		_, dual, err3 := Dual(q, k)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		tol := 1e-9 * (1 + opt)
		return gks >= opt-tol &&
			gks*gks <= 1.5*opt*opt+tol &&
			dual >= opt-tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
