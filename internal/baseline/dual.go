package baseline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/numeric"
)

// GreedyDual solves the dual histogram problem of [JKM+98] greedily: given a
// per-piece squared-error budget tau, it scans left to right, extending the
// current piece while its SSE stays within tau and closing it otherwise.
// The returned partition has the property that no piece (except possibly
// where a single extension jumped past the budget) can absorb its next point
// without exceeding tau, and its piece count is minimal up to the greedy
// horizon. Runs in O(n) using the prefix table.
func GreedyDual(pre *numeric.PrefixSSE, tau float64) interval.Partition {
	n := pre.N()
	var part interval.Partition
	lo := 1
	for i := 2; i <= n; i++ {
		if pre.SSE(lo, i) > tau {
			part = append(part, interval.New(lo, i-1))
			lo = i
		}
	}
	part = append(part, interval.New(lo, n))
	return part
}

// Dual lifts the greedy dual algorithm to the primal problem as in the
// paper's experimental section ("dual"): binary search over the per-piece
// error budget to find the smallest tau whose greedy partition uses at most
// k pieces, incurring the extra logarithmic factor the paper notes. It
// returns the flattened histogram and its exact ℓ2 error.
func Dual(q []float64, k int) (*core.Histogram, float64, error) {
	n := len(q)
	if n == 0 {
		return nil, 0, fmt.Errorf("baseline: empty input")
	}
	if k < 1 {
		return nil, 0, fmt.Errorf("baseline: k must be ≥ 1, got %d", k)
	}
	pre := numeric.NewPrefixSSE(q)
	hi := pre.SSE(1, n) // tau = total SSE always yields one piece
	lo := 0.0

	if len(GreedyDual(pre, 0)) <= k {
		hi = 0 // representable exactly with ≤ k pieces
	}
	// 64 bisection steps drive hi−lo below any float64-meaningful gap while
	// keeping the total cost O(n log(range/ulp)) — the "super-linear" cost
	// the paper attributes to this approach.
	for iter := 0; iter < 64 && hi > lo; iter++ {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break
		}
		if len(GreedyDual(pre, mid)) <= k {
			hi = mid
		} else {
			lo = mid
		}
	}
	part := GreedyDual(pre, hi)
	values := make([]float64, len(part))
	var sse float64
	for i, iv := range part {
		values[i] = pre.Mean(iv.Lo, iv.Hi)
		sse += pre.SSE(iv.Lo, iv.Hi)
	}
	h := core.NewHistogram(n, part, values)
	return h, math.Sqrt(numeric.ClampNonNeg(sse)), nil
}
