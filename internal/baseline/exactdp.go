// Package baseline implements the prior-work algorithms the paper compares
// against in Section 5:
//
//   - ExactDP: the O(n²k) V-optimal dynamic program of Jagadish et al.
//     [JKM+98] ("exactdp" in Table 1).
//   - Dual: the linear-time greedy algorithm for the dual problem of
//     [JKM+98], lifted to the primal problem by binary search over the error
//     bound ("dual" in Table 1).
//   - GKSApprox: a (1+δ)-approximate sparse dynamic program in the style of
//     Guha, Koudas, and Shim [GKS06] (the AHIST family), so the "near-exact
//     but slower than merging" comparison can be measured rather than quoted
//     from the literature.
//
// All three operate on dense inputs, as the originals do.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/numeric"
)

// ExactDP computes the optimal V-optimal k-histogram of the dense vector q
// by dynamic programming in O(n²k) time and O(nk) space [JKM+98]. It
// returns the histogram and its exact ℓ2 error ‖h − q‖₂ = opt_k.
func ExactDP(q []float64, k int) (*core.Histogram, float64, error) {
	n := len(q)
	if n == 0 {
		return nil, 0, fmt.Errorf("baseline: empty input")
	}
	if k < 1 {
		return nil, 0, fmt.Errorf("baseline: k must be ≥ 1, got %d", k)
	}
	if k > n {
		k = n
	}
	pre := numeric.NewPrefixSSE(q)
	sum := make([]float64, n+1)
	sumSq := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		sum[i] = pre.Sum(1, i)
		sumSq[i] = pre.SumSq(1, i)
	}

	// dp[i] (current level j): minimal squared error covering [1, i] with j
	// pieces. parent[j][i]: last breakpoint (end of piece j−1).
	dp := make([]float64, n+1)
	next := make([]float64, n+1)
	parent := make([][]int32, k+1)
	for j := 1; j <= k; j++ {
		parent[j] = make([]int32, n+1)
	}
	for i := 1; i <= n; i++ {
		s := sum[i]
		dp[i] = sumSq[i] - s*s/float64(i)
		if dp[i] < 0 {
			dp[i] = 0
		}
	}
	for j := 2; j <= k; j++ {
		par := parent[j]
		for i := 1; i <= n; i++ {
			if i <= j {
				// At least as many points as pieces: representable exactly
				// (each point its own piece, extra pieces unused).
				next[i] = 0
				par[i] = int32(i - 1)
				continue
			}
			best := math.MaxFloat64
			bestL := j - 1
			// sse(l+1, i) inlined from the prefix arrays: the innermost loop
			// runs Θ(n²k) times in total.
			si, s2i, fi := sum[i], sumSq[i], float64(i)
			for l := j - 1; l < i; l++ {
				ds := si - sum[l]
				sse := (s2i - sumSq[l]) - ds*ds/(fi-float64(l))
				if v := dp[l] + sse; v < best {
					best = v
					bestL = l
				}
			}
			if best < 0 {
				best = 0
			}
			next[i] = best
			par[i] = int32(bestL)
		}
		dp, next = next, dp
	}

	// Traceback from (k, n).
	bounds := make([]int, 0, k)
	i := n
	for j := k; j >= 2; j-- {
		l := int(parent[j][i])
		bounds = append(bounds, i)
		i = l
		if i == 0 {
			break
		}
	}
	if i > 0 {
		bounds = append(bounds, i)
	}
	// bounds collected right-to-left; reverse.
	for a, b := 0, len(bounds)-1; a < b; a, b = a+1, b-1 {
		bounds[a], bounds[b] = bounds[b], bounds[a]
	}
	part, err := interval.FromBoundaries(n, bounds)
	if err != nil {
		return nil, 0, fmt.Errorf("baseline: traceback produced invalid partition: %w", err)
	}
	values := make([]float64, len(part))
	var sse float64
	for pi, iv := range part {
		values[pi] = pre.Mean(iv.Lo, iv.Hi)
		sse += pre.SSE(iv.Lo, iv.Hi)
	}
	h := core.NewHistogram(n, part, values)
	return h, math.Sqrt(numeric.ClampNonNeg(sse)), nil
}
