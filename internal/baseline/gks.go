package baseline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/numeric"
)

// GKSApprox computes a (1+δ)-approximate V-optimal k-histogram in the style
// of Guha, Koudas, and Shim [GKS06] (the AHIST family): the dynamic program
// of [JKM+98], but with the inner minimization restricted to a sparse list
// of breakpoints at which the previous level's error curve grows by a
// (1+δ') factor, δ' = δ/(2k).
//
// Correctness sketch (following [GKS06]): dp_j(i) is non-decreasing in i,
// so replacing a true breakpoint b by the largest kept breakpoint b' ≥ b in
// its (1+δ')-group loses at most a (1+δ') factor on the dp term while only
// shrinking the new piece (sse(b'+1, i) ≤ sse(b+1, i)). When the group's
// representative lies at or beyond the queried prefix i, the candidate
// l = i−1 (always evaluated) belongs to the same group and plays the role of
// b'. Compounding over k levels gives squared error at most
// (1+δ')^k ≤ e^{δ/2} ≤ (1+δ) times opt² for δ ≤ 2. Every dp value
// corresponds to a real partition, so the returned histogram's true squared
// error equals the dp value.
//
// The running time is O(n·k·B) where B is the breakpoint-list size,
// B = O(log(range)/δ'): sub-quadratic in n for moderate δ, but — as the
// paper's comparison predicts — far slower than the merging algorithm.
func GKSApprox(q []float64, k int, delta float64) (*core.Histogram, float64, error) {
	n := len(q)
	if n == 0 {
		return nil, 0, fmt.Errorf("baseline: empty input")
	}
	if k < 1 {
		return nil, 0, fmt.Errorf("baseline: k must be ≥ 1, got %d", k)
	}
	if !(delta > 0) || math.IsNaN(delta) || math.IsInf(delta, 0) {
		return nil, 0, fmt.Errorf("baseline: delta must be positive and finite, got %v", delta)
	}
	if k > n {
		k = n
	}
	deltaPrime := delta / (2 * float64(k))
	pre := numeric.NewPrefixSSE(q)
	sum := make([]float64, n+1)
	sumSq := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		sum[i] = pre.Sum(1, i)
		sumSq[i] = pre.SumSq(1, i)
	}

	dp := make([]float64, n+1) // level j values at every prefix
	next := make([]float64, n+1)
	parent := make([][]int32, k+1)
	for j := 2; j <= k; j++ {
		parent[j] = make([]int32, n+1)
	}
	for i := 1; i <= n; i++ {
		s := sum[i]
		dp[i] = numeric.ClampNonNeg(sumSq[i] - s*s/float64(i))
	}

	breaks := make([]int32, 0, 256)
	for j := 2; j <= k; j++ {
		// Sparsify level j−1: keep, for each (1+δ')-group of dp values, the
		// rightmost position. Position 0 (empty prefix, dp = 0) is always a
		// valid breakpoint.
		breaks = breaks[:0]
		groupBase := 0.0
		for i := 0; i < n; i++ {
			nextV := dp[i+1]
			exceeds := false
			if groupBase == 0 {
				exceeds = nextV > 0
			} else {
				exceeds = nextV > (1+deltaPrime)*groupBase
			}
			if exceeds {
				breaks = append(breaks, int32(i))
				groupBase = nextV
			}
		}
		breaks = append(breaks, int32(n-1)) // rightmost possible breakpoint n−1
		// De-duplicate trailing repeat.
		if len(breaks) >= 2 && breaks[len(breaks)-1] == breaks[len(breaks)-2] {
			breaks = breaks[:len(breaks)-1]
		}

		par := parent[j]
		for i := 1; i <= n; i++ {
			if i <= j {
				next[i] = 0
				par[i] = int32(i - 1)
				continue
			}
			si, s2i, fi := sum[i], sumSq[i], float64(i)
			// Always consider l = i−1: if a group's rightmost representative
			// lies at or beyond i, position i−1 belongs to that same group
			// (dp_j is non-decreasing), so it inherits the (1+δ') guarantee.
			// Without it, prefixes shorter than the first kept breakpoint
			// would have no candidate at all.
			best := dp[i-1]
			bestL := i - 1
			for _, lb := range breaks {
				l := int(lb)
				if l >= i-1 {
					break
				}
				ds := si - sum[l]
				sse := (s2i - sumSq[l]) - ds*ds/(fi-float64(l))
				if v := dp[l] + sse; v < best {
					best = v
					bestL = l
				}
			}
			next[i] = numeric.ClampNonNeg(best)
			par[i] = int32(bestL)
		}
		dp, next = next, dp
	}

	// Traceback as in ExactDP.
	bounds := make([]int, 0, k)
	i := n
	for j := k; j >= 2; j-- {
		l := int(parent[j][i])
		bounds = append(bounds, i)
		i = l
		if i == 0 {
			break
		}
	}
	if i > 0 {
		bounds = append(bounds, i)
	}
	for a, b := 0, len(bounds)-1; a < b; a, b = a+1, b-1 {
		bounds[a], bounds[b] = bounds[b], bounds[a]
	}
	part, err := interval.FromBoundaries(n, bounds)
	if err != nil {
		return nil, 0, fmt.Errorf("baseline: GKS traceback produced invalid partition: %w", err)
	}
	values := make([]float64, len(part))
	var sse float64
	for pi, iv := range part {
		values[pi] = pre.Mean(iv.Lo, iv.Hi)
		sse += pre.SSE(iv.Lo, iv.Hi)
	}
	h := core.NewHistogram(n, part, values)
	return h, math.Sqrt(numeric.ClampNonNeg(sse)), nil
}
