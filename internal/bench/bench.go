// Package bench is the experiment harness that regenerates the paper's
// Table 1 and Figures 1–2. It times algorithms the way the paper does
// (averaging over at least 10 trials, more for fast algorithms), renders
// aligned text tables, and computes the relative error/time columns against
// the same baselines (errors relative to exactdp, times relative to
// fastmerging2).
package bench

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/sparse"
)

// TimeIt measures fn's wall-clock time, averaging over enough repetitions
// that the total measured time is at least minTotal (and at least minTrials
// runs, like the paper's "at least 10 trials, up to 10⁴ for fast
// algorithms").
func TimeIt(fn func(), minTrials int, minTotal time.Duration) time.Duration {
	if minTrials < 1 {
		minTrials = 1
	}
	var trials int
	var total time.Duration
	for trials < minTrials || total < minTotal {
		start := time.Now()
		fn()
		total += time.Since(start)
		trials++
		if trials >= 100000 {
			break
		}
	}
	return total / time.Duration(trials)
}

// Table1Row is one algorithm's result on one data set.
type Table1Row struct {
	Dataset   string
	Algorithm string
	Err       float64
	RelErr    float64 // vs exactdp on the same data set
	Millis    float64
	RelTime   float64 // vs fastmerging2 on the same data set
	Pieces    int
}

// Table1Config controls the Table 1 run.
type Table1Config struct {
	// SkipExact omits the O(n²k) exact DP (minutes on dow). Relative errors
	// are then reported against the GKS (1+δ) approximation instead.
	SkipExact bool
	// MinTrials and MinTotal control timing accuracy per algorithm.
	MinTrials int
	MinTotal  time.Duration
}

// DefaultTable1Config mirrors the paper's setup.
func DefaultTable1Config() Table1Config {
	return Table1Config{MinTrials: 10, MinTotal: 200 * time.Millisecond}
}

// table1Datasets returns the three (name, data, k) triples of Section 5.1.
func table1Datasets() []struct {
	Name string
	Q    []float64
	K    int
} {
	return []struct {
		Name string
		Q    []float64
		K    int
	}{
		{"hist", datasets.Hist(), datasets.HistK},
		{"poly", datasets.Poly(), datasets.PolyK},
		{"dow", datasets.Dow(), datasets.DowK},
	}
}

// algorithms in Table 1's column order. merging2/fastmerging2 halve k so the
// output has k+1 pieces; merging/fastmerging output 2k+1 pieces (δ=1000,
// γ=1, see Section 5.1).
type table1Alg struct {
	Name string
	Run  func(q []float64, sf *sparse.Func, k int) (errVal float64, pieces int)
}

func table1Algorithms(skipExact bool) []table1Alg {
	algs := []table1Alg{}
	if !skipExact {
		algs = append(algs, table1Alg{"exactdp", func(q []float64, _ *sparse.Func, k int) (float64, int) {
			h, e, err := baseline.ExactDP(q, k)
			must(err)
			return e, h.NumPieces()
		}})
	}
	algs = append(algs,
		table1Alg{"merging", func(_ []float64, sf *sparse.Func, k int) (float64, int) {
			res, err := core.ConstructHistogram(sf, k, core.PaperOptions())
			must(err)
			return res.Error, res.Histogram.NumPieces()
		}},
		table1Alg{"merging2", func(_ []float64, sf *sparse.Func, k int) (float64, int) {
			res, err := core.ConstructHistogram(sf, max1(k/2), core.PaperOptions())
			must(err)
			return res.Error, res.Histogram.NumPieces()
		}},
		table1Alg{"fastmerging", func(_ []float64, sf *sparse.Func, k int) (float64, int) {
			res, err := core.ConstructHistogramFast(sf, k, core.PaperOptions())
			must(err)
			return res.Error, res.Histogram.NumPieces()
		}},
		table1Alg{"fastmerging2", func(_ []float64, sf *sparse.Func, k int) (float64, int) {
			res, err := core.ConstructHistogramFast(sf, max1(k/2), core.PaperOptions())
			must(err)
			return res.Error, res.Histogram.NumPieces()
		}},
		table1Alg{"dual", func(q []float64, _ *sparse.Func, k int) (float64, int) {
			h, e, err := baseline.Dual(q, k)
			must(err)
			return e, h.NumPieces()
		}},
		table1Alg{"gks", func(q []float64, _ *sparse.Func, k int) (float64, int) {
			h, e, err := baseline.GKSApprox(q, k, 0.1)
			must(err)
			return e, h.NumPieces()
		}},
	)
	return algs
}

func max1(x int) int {
	if x < 1 {
		return 1
	}
	return x
}

func must(err error) {
	if err != nil {
		panic("bench: " + err.Error())
	}
}

// RunTable1 regenerates Table 1: ℓ2 error, relative error, time and relative
// time for each algorithm on hist (k=10), poly (k=10), dow (k=50). The gks
// column is our measured stand-in for the AHIST numbers the paper quotes
// from [GKS06].
func RunTable1(cfg Table1Config) []Table1Row {
	var rows []Table1Row
	for _, ds := range table1Datasets() {
		sf := sparse.FromDense(ds.Q)
		algs := table1Algorithms(cfg.SkipExact)
		dsRows := make([]Table1Row, 0, len(algs))
		for _, alg := range algs {
			errVal, pieces := alg.Run(ds.Q, sf, ds.K)
			minTrials := cfg.MinTrials
			minTotal := cfg.MinTotal
			if alg.Name == "exactdp" || alg.Name == "gks" {
				// The slow baselines get one timing trial (the paper also
				// averaged slow algorithms over fewer runs).
				minTrials, minTotal = 1, 0
			}
			elapsed := TimeIt(func() { alg.Run(ds.Q, sf, ds.K) }, minTrials, minTotal)
			dsRows = append(dsRows, Table1Row{
				Dataset:   ds.Name,
				Algorithm: alg.Name,
				Err:       errVal,
				Millis:    float64(elapsed.Nanoseconds()) / 1e6,
				Pieces:    pieces,
			})
		}
		// Relative columns: error vs the first row (exactdp, or gks when
		// exact is skipped), time vs fastmerging2.
		baseErr := dsRows[0].Err
		if cfg.SkipExact {
			for _, r := range dsRows {
				if r.Algorithm == "gks" {
					baseErr = r.Err
				}
			}
		}
		var baseTime float64
		for _, r := range dsRows {
			if r.Algorithm == "fastmerging2" {
				baseTime = r.Millis
			}
		}
		for i := range dsRows {
			if baseErr > 0 {
				dsRows[i].RelErr = dsRows[i].Err / baseErr
			}
			if baseTime > 0 {
				dsRows[i].RelTime = dsRows[i].Millis / baseTime
			}
		}
		rows = append(rows, dsRows...)
	}
	return rows
}

// WriteTable1 renders rows in the layout of the paper's Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\talgorithm\tpieces\terror(l2)\terror(rel)\ttime(ms)\ttime(rel)")
	prev := ""
	for _, r := range rows {
		if prev != "" && prev != r.Dataset {
			fmt.Fprintln(tw, "\t\t\t\t\t\t")
		}
		prev = r.Dataset
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.2f\t%.3f\t%.1f\n",
			r.Dataset, r.Algorithm, r.Pieces, r.Err, r.RelErr, r.Millis, r.RelTime)
	}
	return tw.Flush()
}

// RoundTo rounds x to d decimal digits (rendering helper).
func RoundTo(x float64, d int) float64 {
	p := math.Pow(10, float64(d))
	return math.Round(x*p) / p
}
