package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTimeItRunsAtLeastMinTrials(t *testing.T) {
	count := 0
	TimeIt(func() { count++ }, 7, 0)
	if count < 7 {
		t.Fatalf("ran %d times, want ≥ 7", count)
	}
}

func TestRunTable1SmokeSkipExact(t *testing.T) {
	if testing.Short() {
		t.Skip("table harness is slow")
	}
	cfg := Table1Config{SkipExact: true, MinTrials: 1, MinTotal: 0}
	rows := RunTable1(cfg)
	// 3 datasets × 6 algorithms (no exactdp).
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	byDS := map[string][]Table1Row{}
	for _, r := range rows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
		if r.Err < 0 || r.Millis < 0 {
			t.Fatalf("negative measurement: %+v", r)
		}
		if r.Pieces < 1 {
			t.Fatalf("no pieces: %+v", r)
		}
	}
	for ds, rs := range byDS {
		if len(rs) != 6 {
			t.Fatalf("%s: %d rows", ds, len(rs))
		}
		var merging, dual Table1Row
		for _, r := range rs {
			switch r.Algorithm {
			case "merging":
				merging = r
			case "dual":
				dual = r
			}
		}
		// The paper's qualitative claim: merging achieves a better error
		// than dual on every data set.
		if merging.Err >= dual.Err {
			t.Fatalf("%s: merging err %v not better than dual %v", ds, merging.Err, dual.Err)
		}
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dataset", "merging2", "dow", "gks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigure2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness is slow")
	}
	cfg := Figure2Config{
		SampleSizes: []int{500, 2000},
		Trials:      3,
		Seed:        1,
		SkipExact:   true,
	}
	series := RunFigure2(cfg)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.OptK <= 0 {
			t.Fatalf("%s: opt_k = %v", s.Dataset, s.OptK)
		}
		// 2 sample sizes × 2 algorithms.
		if len(s.Points) != 4 {
			t.Fatalf("%s: %d points", s.Dataset, len(s.Points))
		}
		// Errors decrease (or stay flat within noise) as m grows, and every
		// error is at least opt_k − noise.
		byAlg := map[string][]Figure2Point{}
		for _, p := range s.Points {
			byAlg[p.Algorithm] = append(byAlg[p.Algorithm], p)
			if p.MeanErr <= 0 {
				t.Fatalf("%s/%s: mean err %v", s.Dataset, p.Algorithm, p.MeanErr)
			}
		}
		for alg, ps := range byAlg {
			if ps[1].MeanErr > ps[0].MeanErr*1.5 {
				t.Fatalf("%s/%s: error grew strongly with more samples: %v -> %v",
					s.Dataset, alg, ps[0].MeanErr, ps[1].MeanErr)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteFigure2(&buf, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "opt_k") {
		t.Fatal("rendered figure missing opt_k")
	}
}

func TestFigure1Series(t *testing.T) {
	fs := Figure1Series()
	if len(fs) != 3 {
		t.Fatalf("series = %d", len(fs))
	}
	if len(fs["hist"]) != 1000 || len(fs["poly"]) != 4000 || len(fs["dow"]) != 16384 {
		t.Fatal("series sizes wrong")
	}
}

func TestTimeItMinTotal(t *testing.T) {
	start := time.Now()
	TimeIt(func() { time.Sleep(time.Millisecond) }, 1, 5*time.Millisecond)
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("TimeIt returned before accumulating MinTotal")
	}
}

func TestRoundTo(t *testing.T) {
	if RoundTo(1.2345, 2) != 1.23 {
		t.Fatal("RoundTo failed")
	}
	if RoundTo(1.235, 2) != 1.24 {
		t.Fatal("RoundTo rounding mode")
	}
}
