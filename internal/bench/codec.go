package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// CodecPoint is one (object, codec, k) cell of the codec benchmark:
// serialized size and encode/decode throughput for a built synopsis.
type CodecPoint struct {
	// Object is "histogram" (the JSON-comparable synopsis) or "maintainer"
	// (a mid-stream checkpoint: summary view + pending update log — binary
	// only, there is no JSON form to compare against).
	Object string `json:"object"`
	// Codec is "binary" (the internal/codec envelope) or "json".
	Codec  string `json:"codec"`
	K      int    `json:"k"`
	Pieces int    `json:"pieces"`
	N      int    `json:"n"`
	// Bytes is the serialized size; BytesPerPiece normalizes it by the piece
	// count (the O(k)-numbers promise, measured).
	Bytes         int     `json:"bytes"`
	BytesPerPiece float64 `json:"bytes_per_piece"`
	// RatioVsJSON is Bytes over the JSON cell's Bytes for the same object
	// and k (only on binary cells with a JSON counterpart). The acceptance
	// bar is ≤ 1/3 at k = 1000.
	RatioVsJSON float64 `json:"ratio_vs_json,omitempty"`
	EncodeNs    float64 `json:"encode_ns"`
	DecodeNs    float64 `json:"decode_ns"`
	// EncodeMBps / DecodeMBps are throughput over the serialized size.
	EncodeMBps float64 `json:"encode_mbps"`
	DecodeMBps float64 `json:"decode_mbps"`
}

// CodecReport is the BENCH_codec.json payload.
type CodecReport struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`
	GoVersion  string       `json:"goversion"`
	Note       string       `json:"note,omitempty"`
	Points     []CodecPoint `json:"points"`
}

// CodecConfig controls the codec benchmark sweep.
type CodecConfig struct {
	// N is the value-domain size of the synthetic column.
	N int
	// Ks lists the summary sizes to sweep.
	Ks []int
	// StreamUpdates is the number of updates fed to the maintainer cells.
	StreamUpdates int
	MinTrials     int
	MinTotal      time.Duration
}

// DefaultCodecConfig sweeps k ∈ {10, 100, 1000} over a 200k-value domain —
// the acceptance sweep: the binary k = 1000 histogram cell must come in at
// ≤ 1/3 of the JSON bytes.
func DefaultCodecConfig() CodecConfig {
	return CodecConfig{
		N:             200_000,
		Ks:            []int{10, 100, 1000},
		StreamUpdates: 200_000,
		MinTrials:     5,
		MinTotal:      200 * time.Millisecond,
	}
}

// QuickCodecConfig is the CI smoke grid.
func QuickCodecConfig() CodecConfig {
	return CodecConfig{
		N:             20_000,
		Ks:            []int{10, 100},
		StreamUpdates: 20_000,
		MinTrials:     2,
		MinTotal:      10 * time.Millisecond,
	}
}

// CodecBenchHistogram builds the benchmark's k-piece synopsis: a learned-
// style summary of a non-negative frequency vector normalized to total mass
// 1, so piece values are full-precision small doubles — the shape the
// paper's synopses actually ship (and the shape the acceptance ratio is
// defined on). Exported so the acceptance test pins the same workload the
// recorded BENCH_codec.json cells used.
func CodecBenchHistogram(n, k int) *core.Histogram {
	r := rng.New(uint64(n)*7 + uint64(k))
	q := make([]float64, n)
	var total float64
	for i := range q {
		q[i] = math.Abs(1 + 0.5*r.NormFloat64())
		total += q[i]
	}
	for i := range q {
		q[i] /= total
	}
	res, err := core.ConstructHistogram(sparse.FromDense(q), k, core.PaperOptions())
	must(err)
	return res.Histogram
}

// codecCell times one encode/decode pair and appends the cell.
func (rep *CodecReport) codecCell(cfg CodecConfig, object, codecName string, k, pieces int,
	encode func(io.Writer), decode func([]byte)) *CodecPoint {
	var buf bytes.Buffer
	encode(&buf)
	blob := append([]byte{}, buf.Bytes()...)
	decode(blob) // warm up + sanity

	encElapsed := TimeIt(func() {
		buf.Reset()
		encode(&buf)
	}, cfg.MinTrials, cfg.MinTotal)
	decElapsed := TimeIt(func() { decode(blob) }, cfg.MinTrials, cfg.MinTotal)

	encNs := float64(encElapsed.Nanoseconds())
	decNs := float64(decElapsed.Nanoseconds())
	rep.Points = append(rep.Points, CodecPoint{
		Object: object, Codec: codecName, K: k, Pieces: pieces, N: cfg.N,
		Bytes:         len(blob),
		BytesPerPiece: float64(len(blob)) / float64(pieces),
		EncodeNs:      encNs,
		DecodeNs:      decNs,
		EncodeMBps:    float64(len(blob)) / encNs * 1e9 / 1e6,
		DecodeMBps:    float64(len(blob)) / decNs * 1e9 / 1e6,
	})
	return &rep.Points[len(rep.Points)-1]
}

// RunCodecBench sweeps the binary codec against the JSON baseline on
// histogram synopses, plus binary-only maintainer checkpoint cells, over the
// configured k grid.
func RunCodecBench(cfg CodecConfig) CodecReport {
	rep := CodecReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Note: "histogram cells compare the versioned binary envelope against the JSON form " +
			"on a learned-style mass-1 summary; maintainer cells checkpoint a mid-stream " +
			"engine (summary + pending log), binary only",
	}
	for _, k := range cfg.Ks {
		h := CodecBenchHistogram(cfg.N, k)
		pieces := h.NumPieces()

		jsonBytes := rep.codecCell(cfg, "histogram", "json", k, pieces,
			func(w io.Writer) {
				blob, err := json.Marshal(h)
				must(err)
				_, err = w.Write(blob)
				must(err)
			},
			func(blob []byte) {
				var back core.Histogram
				must(json.Unmarshal(blob, &back))
			}).Bytes
		binPt := rep.codecCell(cfg, "histogram", "binary", k, pieces,
			func(w io.Writer) {
				_, err := h.WriteTo(w)
				must(err)
			},
			func(blob []byte) {
				_, err := core.DecodeHistogram(bytes.NewReader(blob))
				must(err)
			})
		binPt.RatioVsJSON = float64(binPt.Bytes) / float64(jsonBytes)

		// Maintainer checkpoint: summary view + a half-full pending log.
		m, err := stream.NewMaintainer(cfg.N, k, 0, core.DefaultOptions())
		must(err)
		r := rng.New(uint64(k) + 99)
		for i := 0; i < cfg.StreamUpdates; i++ {
			must(m.Add(1+r.Intn(cfg.N), 1+r.NormFloat64()/8))
		}
		ckpt := rep.codecCell(cfg, "maintainer", "binary", k, pieces,
			func(w io.Writer) { must(m.Snapshot(w)) },
			func(blob []byte) {
				_, err := stream.RestoreMaintainer(bytes.NewReader(blob))
				must(err)
			})
		ckpt.Pieces = 0 // piece count varies with buffer state; bytes carry the story
		ckpt.BytesPerPiece = 0
	}
	return rep
}

// WriteCodecJSON writes the report as indented JSON.
func WriteCodecJSON(w io.Writer, rep CodecReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
