package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCodecSizeAcceptanceK1000 pins the PR's acceptance bar on exactly the
// workload the recorded BENCH_codec.json cells use: at k = 1000 the binary
// envelope must be at most 1/3 the bytes of the JSON form.
func TestCodecSizeAcceptanceK1000(t *testing.T) {
	h := CodecBenchHistogram(DefaultCodecConfig().N, 1000)
	jsonBlob, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if 3*buf.Len() > len(jsonBlob) {
		t.Fatalf("binary = %d bytes, JSON = %d bytes (ratio %.3f): want ≤ 1/3",
			buf.Len(), len(jsonBlob), float64(buf.Len())/float64(len(jsonBlob)))
	}
	t.Logf("k=1000: binary %d bytes (%.1f/piece), JSON %d bytes, ratio %.3f",
		buf.Len(), float64(buf.Len())/float64(h.NumPieces()), len(jsonBlob),
		float64(buf.Len())/float64(len(jsonBlob)))
}

// TestCodecBenchQuickRuns smoke-tests the sweep end to end on the CI grid:
// every cell must carry positive sizes and rates, and binary histogram cells
// must beat JSON on bytes at every recorded k.
func TestCodecBenchQuickRuns(t *testing.T) {
	rep := RunCodecBench(QuickCodecConfig())
	if len(rep.Points) == 0 {
		t.Fatal("no cells recorded")
	}
	for _, pt := range rep.Points {
		if pt.Bytes <= 0 || pt.EncodeMBps <= 0 || pt.DecodeMBps <= 0 {
			t.Fatalf("degenerate cell: %+v", pt)
		}
		if pt.Object == "histogram" && pt.Codec == "binary" && pt.RatioVsJSON >= 1 {
			t.Fatalf("binary not smaller than JSON at k=%d: ratio %.3f", pt.K, pt.RatioVsJSON)
		}
	}
	var buf bytes.Buffer
	if err := WriteCodecJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back CodecReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
}
