package bench

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/rng"
)

// Figure2Point is one (algorithm, m) cell of a Figure 2 plot: the mean and
// standard deviation of ‖h − p‖₂ over the trials.
type Figure2Point struct {
	Dataset   string
	Algorithm string
	M         int
	MeanErr   float64
	StdErr    float64
}

// Figure2Series is one data set's worth of Figure 2: the measured points and
// the opt_k floor of the best k-histogram approximation to the underlying
// distribution.
type Figure2Series struct {
	Dataset string
	K       int
	OptK    float64
	Points  []Figure2Point
}

// Figure2Config controls the learning experiment.
type Figure2Config struct {
	// SampleSizes is the x-axis; the paper sweeps 1000..10000.
	SampleSizes []int
	// Trials per point; the paper uses 20.
	Trials int
	// Seed makes the whole figure reproducible.
	Seed uint64
	// SkipExact omits the exactdp learner (it dominates the running time).
	SkipExact bool
	// Progress, if non-nil, is called after each (dataset, m) sweep — the
	// long runs report liveness through it.
	Progress func(dataset string, m int)
}

// DefaultFigure2Config mirrors the paper's setup.
func DefaultFigure2Config() Figure2Config {
	ms := make([]int, 0, 10)
	for m := 1000; m <= 10000; m += 1000 {
		ms = append(ms, m)
	}
	return Figure2Config{SampleSizes: ms, Trials: 20, Seed: 20150531}
}

// figure2Datasets returns the three learning targets of Section 5.2.
func figure2Datasets() []struct {
	Name string
	P    dist.Dist
	K    int
} {
	return []struct {
		Name string
		P    dist.Dist
		K    int
	}{
		{"hist'", datasets.HistPrime(), datasets.HistK},
		{"poly'", datasets.PolyPrime(), datasets.PolyK},
		{"dow'", datasets.DowPrime(), datasets.DowK},
	}
}

// RunFigure2 regenerates Figure 2: for each data set and sample size, the
// mean ± std ℓ2 error of the exactdp, merging, and merging2 hypotheses over
// cfg.Trials independent sample draws, plus the opt_k floor.
func RunFigure2(cfg Figure2Config) []Figure2Series {
	r := rng.New(cfg.Seed)
	var out []Figure2Series
	for _, ds := range figure2Datasets() {
		series := Figure2Series{Dataset: ds.Name, K: ds.K}
		_, optK, err := baseline.ExactDP(ds.P.P, ds.K)
		must(err)
		series.OptK = optK

		type algo struct {
			name string
			run  func(samples []int) []float64 // returns dense hypothesis
		}
		algs := []algo{}
		if !cfg.SkipExact {
			algs = append(algs, algo{"exactdp", func(samples []int) []float64 {
				emp, err := dist.Empirical(ds.P.N(), samples)
				must(err)
				h, _, err := baseline.ExactDP(emp.P, ds.K)
				must(err)
				return h.ToDense()
			}})
		}
		algs = append(algs,
			algo{"merging", func(samples []int) []float64 {
				h, _, err := learn.HistogramFromSamples(ds.P.N(), samples, ds.K, core.PaperOptions())
				must(err)
				return h.ToDense()
			}},
			algo{"merging2", func(samples []int) []float64 {
				h, _, err := learn.HistogramFromSamples(ds.P.N(), samples, max1(ds.K/2), core.PaperOptions())
				must(err)
				return h.ToDense()
			}},
		)

		for _, m := range cfg.SampleSizes {
			// All algorithms see the same trials' samples, like the paper's
			// shared-experiment plots.
			trialSamples := make([][]int, cfg.Trials)
			for tr := range trialSamples {
				trialSamples[tr] = dist.Draw(ds.P, m, r)
			}
			for _, alg := range algs {
				errs := make([]float64, cfg.Trials)
				for tr, samples := range trialSamples {
					errs[tr] = ds.P.L2DistToVec(alg.run(samples))
				}
				mean, std := meanStd(errs)
				series.Points = append(series.Points, Figure2Point{
					Dataset: ds.Name, Algorithm: alg.name, M: m,
					MeanErr: mean, StdErr: std,
				})
			}
			if cfg.Progress != nil {
				cfg.Progress(ds.Name, m)
			}
		}
		out = append(out, series)
	}
	return out
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// WriteFigure2 renders the series as aligned text, one block per data set.
func WriteFigure2(w io.Writer, series []Figure2Series) error {
	for _, s := range series {
		fmt.Fprintf(w, "## %s (k=%d, opt_k = %.5f)\n", s.Dataset, s.K, s.OptK)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "m\talgorithm\tmean l2 err\tstd")
		for _, p := range s.Points {
			fmt.Fprintf(tw, "%d\t%s\t%.5f\t%.5f\n", p.M, p.Algorithm, p.MeanErr, p.StdErr)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure1Series returns the three raw data series of Figure 1 for dumping.
func Figure1Series() map[string][]float64 {
	return map[string][]float64{
		"hist": datasets.Hist(),
		"poly": datasets.Poly(),
		"dow":  datasets.Dow(),
	}
}
