package bench

import (
	"cmp"
	"encoding/json"
	"io"
	"runtime"
	"slices"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// IngestPoint is one (mode, shards, workload) throughput cell of the
// ingestion benchmark: how fast the maintenance engine absorbs a stream of
// point updates, in updates/sec, plus the compaction-pause tail.
type IngestPoint struct {
	// Mode is "serial" (the single-goroutine Maintainer, inline
	// compactions) or "sharded" (the Sharded engine, background
	// compactions behind a double-buffered log).
	Mode string `json:"mode"`
	// Shards is the shard count P (1 for serial).
	Shards int `json:"shards"`
	// Workload is "single" (one Add per update) or "batch" (AddBatch).
	Workload string `json:"workload"`
	// Batch is the updates per ingestion call (1 for single).
	Batch int `json:"batch"`
	// Updates is the stream length ingested per timed run (including the
	// final Summary call).
	Updates       int     `json:"updates"`
	NsPerUpdate   float64 `json:"ns_per_update"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	Compactions   int     `json:"compactions"`
	// CompactP50Us/P99Us are percentiles of the compaction durations (µs):
	// for serial mode every compaction is an inline ingest pause; for
	// sharded mode it is background work that only stalls ingest when a
	// full buffer gets ahead of it. Percentiles are computed over the
	// engines' duration rings — the most recent ≤512 samples per shard —
	// while the counts are exact totals.
	CompactP50Us float64 `json:"compact_p50_us"`
	CompactP99Us float64 `json:"compact_p99_us"`
	// PauseCount / PauseP50Us / PauseP99Us describe the stalls the ingest
	// path actually observed: the double-buffer waits for sharded mode,
	// the inline compactions themselves for serial mode. PauseCount is the
	// exact event total (not capped by the percentile sample window).
	PauseCount int     `json:"pause_count"`
	PauseP50Us float64 `json:"pause_p50_us"`
	PauseP99Us float64 `json:"pause_p99_us"`
}

// SortPoint is one log-size cell of the sort-kernel microbenchmark: the
// radix/counting dedup sort of the compaction inner loop timed head to head
// against the comparison sort it replaced, on identical entry logs.
type SortPoint struct {
	// LogSize is the number of entries sorted per op.
	LogSize int `json:"log_size"`
	// MaxIndex is the declared key domain (the maintainer's n).
	MaxIndex     int     `json:"max_index"`
	RadixNsPerOp float64 `json:"radix_ns_per_op"`
	CmpNsPerOp   float64 `json:"cmp_ns_per_op"`
	// Speedup is CmpNsPerOp / RadixNsPerOp.
	Speedup float64 `json:"speedup"`
}

// IngestReport is the BENCH_ingest.json payload. GoMaxProcs/NumCPU make
// single-core CI cells interpretable: with one hardware thread background
// compaction cannot overlap ingest, so sharded cells certify overhead
// bounds and bit-determinism rather than speedups.
type IngestReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	GoVersion  string        `json:"goversion"`
	Note       string        `json:"note,omitempty"`
	Points     []IngestPoint `json:"points"`
	// SortKernel holds the radix-vs-comparison sort cells (the compaction
	// inner loop in isolation).
	SortKernel []SortPoint `json:"sort_kernel,omitempty"`
}

// IngestConfig controls the ingestion benchmark sweep.
type IngestConfig struct {
	// N is the value-domain size, K the global summary size.
	N, K int
	// BufferCap is the per-shard compaction period.
	BufferCap int
	// Updates is the stream length per timed run.
	Updates int
	// Shards lists the Sharded shard counts to sweep (the serial Maintainer
	// is always measured as the baseline).
	Shards []int
	// Batch is the AddBatch call size for the batch workload.
	Batch int
	// SortSizes lists the log sizes for the sort-kernel microbenchmark
	// (radix/counting dedup sort vs the comparison sort it replaced).
	SortSizes []int
	// HotPoints is the distinct-point count of the concentrated "hot"
	// workload cell — small enough that the lazy merge-in path never needs a
	// full merging round, so the cell isolates the sweep cost.
	HotPoints int
	// MinTrials and MinTotal control timing accuracy per cell.
	MinTrials int
	MinTotal  time.Duration
}

// DefaultIngestConfig is the acceptance sweep: 2M updates per run at
// shards ∈ {1, 2, 8}, single vs 1024-update batches.
func DefaultIngestConfig() IngestConfig {
	return IngestConfig{
		N:         200_000,
		K:         32,
		BufferCap: 4096,
		Updates:   2_000_000,
		Shards:    []int{1, 2, 8},
		Batch:     1024,
		SortSizes: []int{1024, 4096, 16384, 65536},
		HotPoints: 160,
		MinTrials: 3,
		MinTotal:  500 * time.Millisecond,
	}
}

// QuickIngestConfig is the CI smoke grid: the same cells at a fraction of
// the stream length, so the whole ingest path runs headlessly in seconds.
func QuickIngestConfig() IngestConfig {
	return IngestConfig{
		N:         20_000,
		K:         16,
		BufferCap: 1024,
		Updates:   100_000,
		Shards:    []int{1, 2, 8},
		Batch:     512,
		SortSizes: []int{512, 2048},
		HotPoints: 80,
		MinTrials: 1,
		MinTotal:  10 * time.Millisecond,
	}
}

// ingestWorkload pre-generates the deterministic update stream: a skewed
// hot band drifting across the domain (the shape a live counter workload
// has), with ~10% deletions.
type ingestWorkload struct {
	points  []int
	weights []float64
}

func buildIngestWorkload(n, updates int) ingestWorkload {
	r := rng.New(uint64(n)*29 + uint64(updates))
	w := ingestWorkload{
		points:  make([]int, updates),
		weights: make([]float64, updates),
	}
	for i := 0; i < updates; i++ {
		center := 1 + (n-1)*i/updates
		p := center + int(float64(n)*0.05*(r.Float64()-0.5))
		if r.Float64() < 0.3 { // background uniform traffic
			p = 1 + r.Intn(n)
		}
		if p < 1 {
			p = 1
		}
		if p > n {
			p = n
		}
		w.points[i] = p
		if r.Float64() < 0.1 {
			w.weights[i] = -1
		} else {
			w.weights[i] = 1
		}
	}
	return w
}

// buildHotWorkload concentrates the whole stream on `distinct` fixed hot
// points scattered across the domain — the shape of a live counter workload
// with a stable key set. With distinct small enough that the refinement stays
// under the maintainer's lazy piece budget, every compaction is a pure
// merge-in sweep (zero merging rounds), so this cell isolates the sweep cost
// and the near-zero pauses the lazy path buys.
func buildHotWorkload(n, updates, distinct int) ingestWorkload {
	r := rng.New(uint64(n)*31 + uint64(updates) + uint64(distinct))
	hot := make([]int, distinct)
	for i := range hot {
		hot[i] = 1 + r.Intn(n)
	}
	w := ingestWorkload{
		points:  make([]int, updates),
		weights: make([]float64, updates),
	}
	for i := 0; i < updates; i++ {
		w.points[i] = hot[r.Intn(distinct)]
		if r.Float64() < 0.1 {
			w.weights[i] = -1
		} else {
			w.weights[i] = 1
		}
	}
	return w
}

// runSortKernelBench times the compaction inner loop's sort in isolation:
// the radix/counting IndexSorter against the comparison sort it replaced, on
// identical prefixes of the benchmark workload. Each op pays one copy of the
// log into the work buffer plus one sort — the copy cost is identical on
// both sides, so the speedup column understates the kernel's true ratio.
func runSortKernelBench(cfg IngestConfig, wl ingestWorkload) []SortPoint {
	var out []SortPoint
	var sorter sparse.IndexSorter
	for _, size := range cfg.SortSizes {
		if size <= 0 || size > len(wl.points) {
			continue
		}
		log := make([]sparse.Entry, size)
		for i := 0; i < size; i++ {
			log[i] = sparse.Entry{Index: wl.points[i], Value: wl.weights[i]}
		}
		work := make([]sparse.Entry, size)

		radix := func() {
			copy(work, log)
			sorter.Sort(work, cfg.N)
		}
		comparison := func() {
			copy(work, log)
			slices.SortStableFunc(work, func(a, b sparse.Entry) int {
				return cmp.Compare(a.Index, b.Index)
			})
		}
		out = append(out, SortPoint{
			LogSize:      size,
			MaxIndex:     cfg.N,
			RadixNsPerOp: timeSortOp(cfg, radix),
			CmpNsPerOp:   timeSortOp(cfg, comparison),
		})
		p := &out[len(out)-1]
		p.Speedup = p.CmpNsPerOp / p.RadixNsPerOp
	}
	return out
}

// timeSortOp returns the best-of-trials ns/op for fn, calibrating the reps
// per trial so each timed block is long enough to resolve.
func timeSortOp(cfg IngestConfig, fn func()) float64 {
	fn() // warm scratch buffers outside the timing
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		if d := time.Since(start); d >= time.Millisecond || reps >= 1<<20 {
			break
		}
		reps *= 2
	}
	trials := cfg.MinTrials
	if trials < 1 {
		trials = 1
	}
	var best time.Duration
	for t := 0; t < trials; t++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(reps)
}

// durPercentileUs returns the q-quantile of ds in microseconds (0 when no
// samples were recorded).
func durPercentileUs(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e3
}

// RunIngestBench sweeps the intake engines over the configured grid and
// reports per-cell throughput and pause percentiles. Every timed run
// ingests the full workload into a fresh engine and ends with Summary(),
// so buffered tails and final merges are always paid inside the
// measurement.
func RunIngestBench(cfg IngestConfig) IngestReport {
	rep := IngestReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	if rep.GoMaxProcs < 2 {
		rep.Note = "single-core environment: background compaction cannot overlap ingest and " +
			"sharded cells > serial certify overhead only; regenerate on a multi-core host for speedups"
	}
	wl := buildIngestWorkload(cfg.N, cfg.Updates)
	opts := core.DefaultOptions()

	type runStats struct {
		compactions, pauseCount int
		compactDur, pauses      []time.Duration
	}
	// Cells are timed best-of-N (same trial policy TimeIt uses, but keeping
	// the minimum instead of the mean): each run ingests an identical
	// deterministic stream, so the fastest trial is the least
	// scheduler-perturbed measurement of the same work — the right
	// comparator for cells that differ by a few percent.
	record := func(mode string, shards int, workload string, batch int, run func() runStats) {
		var rs runStats
		trials := cfg.MinTrials
		if trials < 1 {
			trials = 1
		}
		var best time.Duration
		var total time.Duration
		for trial := 0; trial < trials || total < cfg.MinTotal; trial++ {
			start := time.Now()
			cur := run()
			elapsed := time.Since(start)
			total += elapsed
			if best == 0 || elapsed < best {
				// Keep the stats of the trial the timing describes: pause
				// counts and tails are scheduling-dependent per run.
				best, rs = elapsed, cur
			}
			if trial >= 100 {
				break
			}
		}
		nsPerUpdate := float64(best.Nanoseconds()) / float64(cfg.Updates)
		rep.Points = append(rep.Points, IngestPoint{
			Mode:          mode,
			Shards:        shards,
			Workload:      workload,
			Batch:         batch,
			Updates:       cfg.Updates,
			NsPerUpdate:   nsPerUpdate,
			UpdatesPerSec: 1e9 / nsPerUpdate,
			Compactions:   rs.compactions,
			CompactP50Us:  durPercentileUs(rs.compactDur, 0.50),
			CompactP99Us:  durPercentileUs(rs.compactDur, 0.99),
			PauseCount:    rs.pauseCount,
			PauseP50Us:    durPercentileUs(rs.pauses, 0.50),
			PauseP99Us:    durPercentileUs(rs.pauses, 0.99),
		})
	}

	// Serial Maintainer baseline: every inline compaction is a pause, so
	// the exact pause count is the compaction counter (the duration ring
	// keeps only the most recent ≤512 samples for the percentiles).
	record("serial", 1, "single", 1, func() runStats {
		m, err := stream.NewMaintainer(cfg.N, cfg.K, cfg.BufferCap, opts)
		must(err)
		for i, p := range wl.points {
			must(m.Add(p, wl.weights[i]))
		}
		_, err = m.Summary()
		must(err)
		d := m.CompactionDurations(nil)
		return runStats{m.Compactions(), m.Compactions(), d, d}
	})
	record("serial", 1, "batch", cfg.Batch, func() runStats {
		m, err := stream.NewMaintainer(cfg.N, cfg.K, cfg.BufferCap, opts)
		must(err)
		for lo := 0; lo < len(wl.points); lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > len(wl.points) {
				hi = len(wl.points)
			}
			must(m.AddBatch(wl.points[lo:hi], wl.weights[lo:hi]))
		}
		_, err = m.Summary()
		must(err)
		d := m.CompactionDurations(nil)
		return runStats{m.Compactions(), m.Compactions(), d, d}
	})

	// Concentrated hot-key cell: the stream lives on a fixed small key set,
	// so the refinement never exceeds the lazy piece budget and every
	// compaction is a pure merge-in sweep — the cell that shows what
	// incremental merge-in buys over always-merge (compare its pause
	// percentiles with the serial cells above).
	if cfg.HotPoints > 0 {
		hot := buildHotWorkload(cfg.N, cfg.Updates, cfg.HotPoints)
		record("serial", 1, "hot", 1, func() runStats {
			m, err := stream.NewMaintainer(cfg.N, cfg.K, cfg.BufferCap, opts)
			must(err)
			for i, p := range hot.points {
				must(m.Add(p, hot.weights[i]))
			}
			_, err = m.Summary()
			must(err)
			d := m.CompactionDurations(nil)
			return runStats{m.Compactions(), m.Compactions(), d, d}
		})
	}

	for _, shards := range cfg.Shards {
		shards := shards
		record("sharded", shards, "single", 1, func() runStats {
			s, err := stream.NewSharded(cfg.N, cfg.K, shards, cfg.BufferCap, opts)
			must(err)
			for i, p := range wl.points {
				must(s.Add(p, wl.weights[i]))
			}
			_, err = s.Summary()
			must(err)
			st := s.Stats()
			return runStats{st.Compactions, st.PauseCount, st.CompactionDurations, st.Pauses}
		})
		record("sharded", shards, "batch", cfg.Batch, func() runStats {
			s, err := stream.NewSharded(cfg.N, cfg.K, shards, cfg.BufferCap, opts)
			must(err)
			for lo := 0; lo < len(wl.points); lo += cfg.Batch {
				hi := lo + cfg.Batch
				if hi > len(wl.points) {
					hi = len(wl.points)
				}
				must(s.AddBatch(wl.points[lo:hi], wl.weights[lo:hi]))
			}
			_, err = s.Summary()
			must(err)
			st := s.Stats()
			return runStats{st.Compactions, st.PauseCount, st.CompactionDurations, st.Pauses}
		})
	}

	rep.SortKernel = runSortKernelBench(cfg, wl)
	return rep
}

// WriteIngestJSON renders the report as indented JSON — the
// BENCH_ingest.json trajectory recorded at the repository root.
func WriteIngestJSON(w io.Writer, rep IngestReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
