package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestIngestBenchSmoke runs a minimal ingestion sweep end to end: every
// (mode, shards, workload) cell plus the sort-kernel cells must come out
// with sane fields, and the report must serialize.
func TestIngestBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timed ingestion benchmark")
	}
	cfg := QuickIngestConfig()
	cfg.Updates = 20_000
	cfg.Shards = []int{1, 2}
	cfg.SortSizes = []int{256, 1024}
	cfg.HotPoints = 40
	rep := RunIngestBench(cfg)

	// serial single + serial batch + serial hot + (single, batch) per shard count.
	wantCells := 3 + 2*len(cfg.Shards)
	if len(rep.Points) != wantCells {
		t.Fatalf("%d cells, want %d", len(rep.Points), wantCells)
	}
	for _, pt := range rep.Points {
		if pt.NsPerUpdate <= 0 || pt.UpdatesPerSec <= 0 || pt.Compactions <= 0 {
			t.Fatalf("degenerate cell: %+v", pt)
		}
		if pt.CompactP99Us < pt.CompactP50Us {
			t.Fatalf("compaction percentiles out of order: %+v", pt)
		}
	}
	if len(rep.SortKernel) != len(cfg.SortSizes) {
		t.Fatalf("%d sort cells, want %d", len(rep.SortKernel), len(cfg.SortSizes))
	}
	for _, sp := range rep.SortKernel {
		if sp.RadixNsPerOp <= 0 || sp.CmpNsPerOp <= 0 || sp.Speedup <= 0 {
			t.Fatalf("degenerate sort cell: %+v", sp)
		}
	}
	var buf bytes.Buffer
	if err := WriteIngestJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

// TestIngestBenchRecordedBeatsPreMergeInFloors pins the ingest fast path to
// the trajectory: the committed BENCH_ingest.json must show the radix-sorted
// compaction kernel and incremental merge-in STRICTLY beating the numbers
// recorded before they landed (comparison sort + full reconstruct every
// compaction, same box, same sweep). If a re-record loses a cell, the ingest
// hot path has regressed — fix it or re-record on a quiet machine; do not
// relax the floors.
func TestIngestBenchRecordedBeatsPreMergeInFloors(t *testing.T) {
	blob, err := os.ReadFile("../../BENCH_ingest.json")
	if err != nil {
		t.Skipf("no recorded BENCH_ingest.json: %v", err)
	}
	var rep IngestReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("recorded BENCH_ingest.json does not parse: %v", err)
	}

	// ns/update and compaction-pause p50 recorded before the radix sort +
	// merge-in kernels (comparison-sorted dedup, full Construct per
	// compaction; n=200k, k=32, bufferCap=4096, 2M updates).
	const (
		floorSingleNs   = 279.184684
		floorBatchNs    = 272.65297
		floorSingleP50  = 1102.771
		floorBatchP50   = 1082.547
		requiredSpeedup = 1.3
	)
	var single, batch, hot *IngestPoint
	for i := range rep.Points {
		pt := &rep.Points[i]
		if pt.Mode != "serial" {
			continue
		}
		switch pt.Workload {
		case "single":
			single = pt
		case "batch":
			batch = pt
		case "hot":
			hot = pt
		}
	}
	if single == nil || batch == nil {
		t.Fatal("recorded report is missing serial single/batch cells")
	}
	if got, want := single.NsPerUpdate, floorSingleNs/requiredSpeedup; !(got <= want) {
		t.Errorf("serial/single %.3f ns/update, need ≤ %.3f (%.1f× over the pre-merge-in %.3f)",
			got, want, requiredSpeedup, floorSingleNs)
	}
	if got, want := batch.NsPerUpdate, floorBatchNs/requiredSpeedup; !(got <= want) {
		t.Errorf("serial/batch %.3f ns/update, need ≤ %.3f (%.1f× over the pre-merge-in %.3f)",
			got, want, requiredSpeedup, floorBatchNs)
	}
	// Merge-in must also shrink the per-compaction pause itself, not just
	// amortize it.
	if !(single.CompactP50Us < floorSingleP50) {
		t.Errorf("serial/single compaction p50 %.1f µs, pre-merge-in floor %.1f", single.CompactP50Us, floorSingleP50)
	}
	if !(batch.CompactP50Us < floorBatchP50) {
		t.Errorf("serial/batch compaction p50 %.1f µs, pre-merge-in floor %.1f", batch.CompactP50Us, floorBatchP50)
	}
	// The concentrated hot-key cell runs entirely on the lazy sweep (zero
	// merging rounds): its pauses must undercut the mixed-stream cell's.
	if hot == nil {
		t.Fatal("recorded report has no serial hot cell — re-record with the merge-in sweep")
	}
	if !(hot.CompactP50Us < single.CompactP50Us) {
		t.Errorf("hot-cell compaction p50 %.1f µs not below the mixed stream's %.1f — lazy merge-in is not engaging",
			hot.CompactP50Us, single.CompactP50Us)
	}

	// Sort kernel: radix must never lose to the comparison sort, and must be
	// ≥2× at the log sizes compaction actually sees (≥4096).
	if len(rep.SortKernel) == 0 {
		t.Fatal("recorded report has no sort_kernel cells — re-record with the radix sweep")
	}
	for _, sp := range rep.SortKernel {
		if !(sp.Speedup >= 1) {
			t.Errorf("sort kernel log=%d: radix %.1f ns vs comparison %.1f ns (%.2fx) — slower than the sort it replaced",
				sp.LogSize, sp.RadixNsPerOp, sp.CmpNsPerOp, sp.Speedup)
		}
		if sp.LogSize >= 4096 && !(sp.Speedup >= 2) {
			t.Errorf("sort kernel log=%d: speedup %.2fx, need ≥ 2x at compaction-scale logs", sp.LogSize, sp.Speedup)
		}
	}
}
