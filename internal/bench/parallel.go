package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// ParallelPoint is one (algorithm, input size, worker count) timing cell of
// the parallel-engine benchmark.
type ParallelPoint struct {
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`       // domain size
	S         int     `json:"s"`       // input sparsity (live intervals ≈ 4s)
	Workers   int     `json:"workers"` // 0 means GOMAXPROCS
	Millis    float64 `json:"millis"`
	// Speedup is serial time / this time on the same (algorithm, n) cell.
	Speedup float64 `json:"speedup"`
}

// ParallelReport is the BENCH_parallel.json payload: environment metadata
// plus the measured trajectory. Identical outputs across worker counts are
// asserted by the test suite, so the report records timing only.
type ParallelReport struct {
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	GoVersion  string          `json:"goversion"`
	Note       string          `json:"note,omitempty"`
	Points     []ParallelPoint `json:"points"`
}

// ParallelConfig controls the parallel benchmark sweep.
type ParallelConfig struct {
	// Sizes is the list of domain sizes n to sweep (dense inputs, so the
	// sparsity s equals n).
	Sizes []int
	// Workers is the list of worker counts to sweep. The serial baseline
	// (workers = 1) is always timed first regardless of this list, so every
	// cell's Speedup has a denominator.
	Workers []int
	// MinTrials and MinTotal control timing accuracy per cell.
	MinTrials int
	MinTotal  time.Duration
	// K is the histogram size target.
	K int
	// SampleFactor scales the Learn sample count: m = SampleFactor·n.
	SampleFactor int
}

// DefaultParallelConfig sweeps n = 10⁵ and 10⁶ across 1, 2, 4 workers and
// all cores — the acceptance sweep for the parallel merging engine.
func DefaultParallelConfig() ParallelConfig {
	return ParallelConfig{
		Sizes:        []int{100_000, 1_000_000},
		Workers:      []int{1, 2, 4, 0},
		MinTrials:    5,
		MinTotal:     500 * time.Millisecond,
		K:            50,
		SampleFactor: 2,
	}
}

// ParallelBenchData builds a deterministic dense input with 4k underlying
// steps plus noise — enough structure that the merging loop runs a
// realistic number of rounds, enough noise that no round degenerates. The
// series is strictly positive so it doubles as a weight vector for the
// learning benchmarks.
func ParallelBenchData(n, k int) []float64 {
	r := rng.New(uint64(n) + 1)
	q := make([]float64, n)
	pieceLen := n/(4*k) + 1
	level := 0.0
	for i := range q {
		if i%pieceLen == 0 {
			level = r.NormFloat64() * 10
		}
		q[i] = 100 + level + 0.1*r.NormFloat64()
	}
	return q
}

// RunParallelBench sweeps Fit (merging), FitFast (fastmerging), Hierarchy,
// and Learn across input sizes and worker counts, reporting per-cell mean
// wall-clock times and speedups over the 1-worker baseline.
func RunParallelBench(cfg ParallelConfig) ParallelReport {
	rep := ParallelReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	if rep.GoMaxProcs < 2 {
		rep.Note = "single-core environment: parallel speedup cannot manifest; " +
			"cells verify overhead and bit-identity only"
	}
	// The serial cell is the speedup denominator, so it always runs first.
	workers := make([]int, 0, len(cfg.Workers)+1)
	workers = append(workers, 1)
	for _, w := range cfg.Workers {
		if w != 1 {
			workers = append(workers, w)
		}
	}

	for _, n := range cfg.Sizes {
		q := ParallelBenchData(n, cfg.K)
		sf := sparse.FromDense(q)
		p, err := dist.FromWeights(q)
		must(err)
		// Fixed worker count for input generation: DrawWorkers' stream
		// depends on the chunk count, and the benchmark inputs must be
		// identical on every machine for trajectories to be comparable.
		samples := dist.DrawWorkers(p, cfg.SampleFactor*n, rng.New(7), 4)

		type algo struct {
			name string
			run  func(workers int)
		}
		algs := []algo{
			{"fit", func(w int) {
				o := core.PaperOptions()
				o.Workers = w
				_, err := core.ConstructHistogram(sf, cfg.K, o)
				must(err)
			}},
			{"fitfast", func(w int) {
				o := core.PaperOptions()
				o.Workers = w
				_, err := core.ConstructHistogramFast(sf, cfg.K, o)
				must(err)
			}},
			{"hierarchy", func(w int) {
				core.ConstructHierarchicalHistogramWorkers(sf, w)
			}},
			{"learn", func(w int) {
				o := core.PaperOptions()
				o.Workers = w
				_, _, err := learn.HistogramFromSamples(n, samples, cfg.K, o)
				must(err)
			}},
		}
		for _, alg := range algs {
			// Untimed warm-up so the first timed cell (the serial baseline)
			// doesn't absorb one-off page-in and heap-growth costs that the
			// later cells then get credited for.
			alg.run(1)
			var serialMillis float64
			for _, w := range workers {
				elapsed := TimeIt(func() { alg.run(w) }, cfg.MinTrials, cfg.MinTotal)
				millis := float64(elapsed.Nanoseconds()) / 1e6
				if w == 1 {
					serialMillis = millis
				}
				pt := ParallelPoint{
					Algorithm: alg.name,
					N:         n,
					S:         sf.Sparsity(),
					Workers:   w,
					Millis:    millis,
				}
				if serialMillis > 0 {
					pt.Speedup = serialMillis / millis
				}
				rep.Points = append(rep.Points, pt)
			}
		}
	}
	return rep
}

// WriteParallelJSON renders the report as indented JSON — the
// BENCH_parallel.json trajectory recorded at the repository root.
func WriteParallelJSON(w io.Writer, rep ParallelReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
