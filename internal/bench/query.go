package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/synopsis"
)

// QueryPoint is one (workload, k, workers) throughput cell of the query
// benchmark: how fast a built synopsis answers queries, in queries/sec.
type QueryPoint struct {
	// Workload is one of "point" (Histogram.At), "range"
	// (Synopsis.EstimateRange via the index), "range_scan" (the legacy
	// O(pieces) scan, kept for the asymptotic comparison), "point_batch"
	// (AtBatch) and "range_batch" (EstimateRangeBatch) over left-sorted
	// queries, plus their "_unsorted" twins over the same queries in random
	// order — the cells that isolate the software-pipelined Eytzinger
	// descent, since no sorted-locality fast path can fire.
	Workload string `json:"workload"`
	K        int    `json:"k"`      // requested histogram size
	Pieces   int    `json:"pieces"` // actual bucket count of the synopsis
	N        int    `json:"n"`      // value-domain size
	// Workers is the fan-out of batched workloads (1 = serial); single-query
	// workloads always run on one goroutine.
	Workers int `json:"workers"`
	// Batch is the queries answered per API call (1 for single-query
	// workloads).
	Batch      int     `json:"batch"`
	NsPerQuery float64 `json:"ns_per_query"`
	QPS        float64 `json:"qps"`
}

// QueryReport is the BENCH_query.json payload: environment metadata plus the
// serving-throughput trajectory. Outputs are asserted identical between the
// single and batched paths by the test suite, so the report records timing
// only.
type QueryReport struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`
	GoVersion  string       `json:"goversion"`
	Note       string       `json:"note,omitempty"`
	Points     []QueryPoint `json:"points"`
}

// QueryConfig controls the query benchmark sweep.
type QueryConfig struct {
	// N is the value-domain size of the synthetic column.
	N int
	// Ks lists the histogram sizes to sweep.
	Ks []int
	// Queries is the number of distinct queries per workload; batched
	// workloads answer all of them per call.
	Queries int
	// Workers lists fan-outs for the batched workloads (the serial cell
	// workers = 1 is always measured so batch-vs-single is comparable).
	Workers []int
	// MinTrials and MinTotal control timing accuracy per cell.
	MinTrials int
	MinTotal  time.Duration
}

// DefaultQueryConfig sweeps k ∈ {10, 100, 1000} over a 200k-value domain —
// the acceptance sweep for the indexed query engine.
func DefaultQueryConfig() QueryConfig {
	return QueryConfig{
		N:         200_000,
		Ks:        []int{10, 100, 1000},
		Queries:   4096,
		Workers:   []int{1, 2, 0},
		MinTrials: 5,
		MinTotal:  300 * time.Millisecond,
	}
}

// QuickQueryConfig is the CI smoke grid: the same workloads on a small
// domain with minimal timing effort, so the serving path is exercised
// headlessly in a few seconds.
func QuickQueryConfig() QueryConfig {
	return QueryConfig{
		N:         20_000,
		Ks:        []int{10, 100},
		Queries:   512,
		Workers:   []int{1, 0},
		MinTrials: 2,
		MinTotal:  20 * time.Millisecond,
	}
}

// queryWorkload builds the deterministic query set: points and ranges drawn
// uniformly at random. Batched workloads serve the same multiset sorted by
// left endpoint — the locality order a batching frontend would use and the
// layout the batch kernels are optimized for.
type queryWorkload struct {
	xs, as, bs         []int // random order, for single-query loops
	sortedXs           []int
	sortedAs, sortedBs []int
}

func buildQueryWorkload(n, count int) queryWorkload {
	r := rng.New(uint64(n)*13 + uint64(count))
	w := queryWorkload{
		xs: make([]int, count),
		as: make([]int, count),
		bs: make([]int, count),
	}
	for i := 0; i < count; i++ {
		w.xs[i] = 1 + r.Intn(n)
		a := 1 + r.Intn(n)
		w.as[i] = a
		w.bs[i] = a + r.Intn(n-a+1)
	}
	w.sortedXs = append([]int(nil), w.xs...)
	sort.Ints(w.sortedXs)
	type qr struct{ a, b int }
	qs := make([]qr, count)
	for i := range qs {
		qs[i] = qr{w.as[i], w.bs[i]}
	}
	sort.Slice(qs, func(i, j int) bool {
		if qs[i].a != qs[j].a {
			return qs[i].a < qs[j].a
		}
		return qs[i].b < qs[j].b
	})
	w.sortedAs = make([]int, count)
	w.sortedBs = make([]int, count)
	for i, q := range qs {
		w.sortedAs[i] = q.a
		w.sortedBs[i] = q.b
	}
	return w
}

// RunQueryBench sweeps point, range, and batched serving workloads over the
// configured k grid and reports per-cell throughput. This is the first
// benchmark in the repository that measures query serving rather than
// construction.
func RunQueryBench(cfg QueryConfig) QueryReport {
	rep := QueryReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	if rep.GoMaxProcs < 2 {
		rep.Note = "single-core environment: batched workers > 1 cannot beat workers = 1; " +
			"multi-worker cells certify overhead only"
	}
	wl := buildQueryWorkload(cfg.N, cfg.Queries)
	var sink float64
	for _, k := range cfg.Ks {
		freq := ParallelBenchData(cfg.N, k)
		syn, err := synopsis.VOptimal(freq, k)
		must(err)
		hist := syn.(interface{ Histogram() *core.Histogram }).Histogram()
		hist.At(1) // build the index outside every timed region

		record := func(workload string, workers, batch int, perCall int, fn func()) {
			fn() // warm up
			elapsed := TimeIt(fn, cfg.MinTrials, cfg.MinTotal)
			nsPerQuery := float64(elapsed.Nanoseconds()) / float64(perCall)
			rep.Points = append(rep.Points, QueryPoint{
				Workload:   workload,
				K:          k,
				Pieces:     syn.Pieces(),
				N:          cfg.N,
				Workers:    workers,
				Batch:      batch,
				NsPerQuery: nsPerQuery,
				QPS:        1e9 / nsPerQuery,
			})
		}

		record("point", 1, 1, len(wl.xs), func() {
			for _, x := range wl.xs {
				sink += hist.At(x)
			}
		})
		record("range", 1, 1, len(wl.as), func() {
			for i := range wl.as {
				est, err := syn.EstimateRange(wl.as[i], wl.bs[i])
				must(err)
				sink += est
			}
		})
		// The retained O(pieces) scan keeps the asymptotic comparison
		// visible in the recorded trajectory.
		record("range_scan", 1, 1, len(wl.as), func() {
			for i := range wl.as {
				sink += hist.RangeSumScan(wl.as[i], wl.bs[i])
			}
		})

		// The serial batch cell always runs so batch-vs-single is on record.
		workers := []int{1}
		for _, w := range cfg.Workers {
			if w != 1 {
				workers = append(workers, w)
			}
		}
		outAt := make([]float64, len(wl.sortedXs))
		outRange := make([]float64, len(wl.sortedAs))
		for _, w := range workers {
			w := w
			record("point_batch", w, len(wl.sortedXs), len(wl.sortedXs), func() {
				outAt = hist.AtBatch(wl.sortedXs, outAt, w)
			})
			record("range_batch", w, len(wl.sortedAs), len(wl.sortedAs), func() {
				res, err := synopsis.EstimateRangeBatchInto(syn, wl.sortedAs, wl.sortedBs, outRange, w)
				must(err)
				outRange = res
			})
			// Unsorted cells measure the pipelined-descent path directly: no
			// locality to pre-filter on, every query a cold search, the lanes
			// overlapping the boundary loads.
			record("point_batch_unsorted", w, len(wl.xs), len(wl.xs), func() {
				outAt = hist.AtBatch(wl.xs, outAt, w)
			})
			record("range_batch_unsorted", w, len(wl.as), len(wl.as), func() {
				res, err := synopsis.EstimateRangeBatchInto(syn, wl.as, wl.bs, outRange, w)
				must(err)
				outRange = res
			})
		}
		for _, v := range outAt {
			sink += v
		}
		for _, v := range outRange {
			sink += v
		}
	}
	_ = sink
	return rep
}

// WriteQueryJSON renders the report as indented JSON — the BENCH_query.json
// trajectory recorded at the repository root.
func WriteQueryJSON(w io.Writer, rep QueryReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
