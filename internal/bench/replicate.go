package bench

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/stream"
)

// ReplicatePoint is one sync strategy's steady-state measurement: bytes
// shipped and round latency for keeping a replica current while skewed
// ingest touches a minority of shards between rounds.
type ReplicatePoint struct {
	// Mode is "delta" (version-vector frames via the Replicator) or "full"
	// (complete snapshot GET + PUT every round, the pre-delta baseline).
	Mode string `json:"mode"`
	// Rounds is the measured sync round count.
	Rounds int `json:"rounds"`
	// BytesTotal is the wire bytes shipped across all rounds; BytesPerRound
	// the mean.
	BytesTotal    int64   `json:"bytes_total"`
	BytesPerRound float64 `json:"bytes_per_round"`
	// P50Us / P99Us are per-round sync latencies (fetch + apply) in
	// microseconds.
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
}

// ReplicateReport is the BENCH_replicate.json payload.
type ReplicateReport struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	GoVersion  string `json:"goversion"`
	// N, K, Shards, BufferCap echo the engine configuration.
	N         int `json:"n"`
	K         int `json:"k"`
	Shards    int `json:"shards"`
	BufferCap int `json:"buffer_cap"`
	// HotShards is the shard subset the skewed ingest touches per round.
	HotShards int `json:"hot_shards"`
	// DeltaVsFullBytes is the headline ratio: delta bytes_total over full
	// bytes_total. The delta protocol's promise is that this tracks
	// HotShards/Shards, not 1.
	DeltaVsFullBytes float64          `json:"delta_vs_full_bytes"`
	Note             string           `json:"note,omitempty"`
	Points           []ReplicatePoint `json:"points"`
}

// ReplicateConfig controls the replication benchmark.
type ReplicateConfig struct {
	// N is the value domain; K the per-shard piece budget; Shards the engine
	// shard count; BufferCap the pending-log capacity.
	N, K, Shards, BufferCap int
	// HotShards is how many shards the skewed ingest may touch per round —
	// the ISSUE's regime is Shards/8.
	HotShards int
	// Rounds is the measured sync rounds per mode; BatchPerRound the points
	// ingested between rounds.
	Rounds, BatchPerRound int
	// WarmBatch is the uniform ingest before measurement starts: it gives
	// every shard real state, so "full" genuinely reships the cold shards
	// each round the way a production snapshot would.
	WarmBatch int
}

// DefaultReplicateConfig is the recorded sweep: a 16-shard engine with
// ingest confined to 2 shards (1/8) between rounds.
func DefaultReplicateConfig() ReplicateConfig {
	return ReplicateConfig{
		N: 200_000, K: 32, Shards: 16, BufferCap: 4096,
		HotShards: 2, Rounds: 60, BatchPerRound: 512, WarmBatch: 100_000,
	}
}

// QuickReplicateConfig is the CI smoke grid.
func QuickReplicateConfig() ReplicateConfig {
	return ReplicateConfig{
		N: 20_000, K: 16, Shards: 8, BufferCap: 1024,
		HotShards: 1, Rounds: 12, BatchPerRound: 128, WarmBatch: 12_000,
	}
}

// skewedBatch draws points whose shards all land inside the hot subset, so a
// round dirties exactly ≤ hot shards — the steady state the delta protocol
// is built for (a handful of hot keys, most shards quiet).
func skewedBatch(rng *rand.Rand, eng *stream.Sharded, n, count, hot int) []int {
	pts := make([]int, 0, count)
	for len(pts) < count {
		p := 1 + rng.Intn(n)
		if eng.ShardOf(p) < hot {
			pts = append(pts, p)
		}
	}
	return pts
}

// replicaPair boots a primary hosting eng and an empty replica, both behind
// real loopback HTTP, and returns their clients plus a teardown.
func replicaPair(eng *stream.Sharded, name string) (primary, replica *serve.Client, done func()) {
	ps := serve.NewServer(&serve.Config{Workers: 1})
	must(ps.Host(name, eng))
	rs := serve.NewServer(&serve.Config{Workers: 1})
	pts := httptest.NewServer(ps.Handler())
	rts := httptest.NewServer(rs.Handler())
	primary = serve.NewClient(pts.URL, pts.Client(), true)
	replica = serve.NewClient(rts.URL, rts.Client(), true)
	done = func() { pts.Close(); rts.Close() }
	return primary, replica, done
}

// verifyReplica panics unless the replica's range answers are bit-identical
// to the primary's — a sync strategy can never "win" by shipping garbage.
func verifyReplica(primary, replica *serve.Client, name string, n int) {
	as := []int{1, 1, n / 4, n / 2}
	bs := []int{n, n / 2, 3 * n / 4, n}
	p, err := primary.Ranges(name, as, bs)
	must(err)
	r, err := replica.Ranges(name, as, bs)
	must(err)
	for i := range p {
		if p[i] != r[i] {
			panic("bench: replica diverged from primary")
		}
	}
}

// RunReplicateBench measures steady-state replication two ways over real
// loopback HTTP: version-vector delta rounds through a serve.Replicator, and
// the full-snapshot baseline (complete GET + PUT every round). Both modes
// replay the identical skewed ingest schedule — points confined to HotShards
// of the Shards — and both verify the replica answers bit-identically to the
// primary after the final round.
func RunReplicateBench(cfg ReplicateConfig) ReplicateReport {
	rep := ReplicateReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		N:          cfg.N, K: cfg.K, Shards: cfg.Shards, BufferCap: cfg.BufferCap,
		HotShards: cfg.HotShards,
	}

	opts := core.DefaultOptions()
	opts.Workers = 1
	const name = "repl"

	var totals [2]int64 // delta, full
	for mode := 0; mode < 2; mode++ {
		eng, err := stream.NewSharded(cfg.N, cfg.K, cfg.Shards, cfg.BufferCap, opts)
		must(err)
		primary, replica, done := replicaPair(eng, name)

		// Identical ingest schedule across modes: same seed, same batches.
		rng := rand.New(rand.NewSource(42))

		// Warm-up: uniform ingest so every shard holds real state before
		// measurement. Without it, cold shards are empty stubs and "full"
		// has nothing extra to reship.
		warm := make([]int, cfg.WarmBatch)
		for i := range warm {
			warm[i] = 1 + rng.Intn(cfg.N)
		}
		must(eng.AddBatch(warm, nil))

		var rp *serve.Replicator
		if mode == 0 {
			rp, err = serve.NewReplicator(name, primary, []*serve.Client{replica}, time.Second)
			must(err)
			must(rp.SyncOnce(0)) // bootstrap: the complete frame, unmeasured
		} else {
			full, err := fetchFullSnapshot(primary, name)
			must(err)
			must(replica.PushBytes(name, full))
		}

		lats := make([]time.Duration, 0, cfg.Rounds)
		var bytesTotal int64
		for round := 0; round < cfg.Rounds; round++ {
			pts := skewedBatch(rng, eng, cfg.N, cfg.BatchPerRound, cfg.HotShards)
			must(eng.AddBatch(pts, nil))

			start := time.Now()
			if mode == 0 {
				st0 := rp.Status()[0].DeltaBytes
				must(rp.SyncOnce(0))
				bytesTotal += rp.Status()[0].DeltaBytes - st0
			} else {
				full, err := fetchFullSnapshot(primary, name)
				must(err)
				must(replica.PushBytes(name, full))
				bytesTotal += int64(len(full))
			}
			lats = append(lats, time.Since(start))
		}
		verifyReplica(primary, replica, name, cfg.N)
		done()

		totals[mode] = bytesTotal
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(q float64) float64 {
			return float64(lats[int(q*float64(len(lats)-1))].Nanoseconds()) / 1e3
		}
		modeName := "delta"
		if mode == 1 {
			modeName = "full"
		}
		rep.Points = append(rep.Points, ReplicatePoint{
			Mode:          modeName,
			Rounds:        cfg.Rounds,
			BytesTotal:    bytesTotal,
			BytesPerRound: float64(bytesTotal) / float64(cfg.Rounds),
			P50Us:         pct(0.50),
			P99Us:         pct(0.99),
		})
	}
	if totals[1] > 0 {
		rep.DeltaVsFullBytes = float64(totals[0]) / float64(totals[1])
	}
	return rep
}

// fetchFullSnapshot GETs the complete snapshot envelope as bytes — the
// baseline wire unit the delta protocol replaces.
func fetchFullSnapshot(c *serve.Client, name string) ([]byte, error) {
	var buf deferredBuf
	if err := c.Snapshot(name, &buf); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// deferredBuf is a minimal append-only io.Writer (bytes.Buffer without the
// read-side bookkeeping).
type deferredBuf struct{ b []byte }

func (d *deferredBuf) Write(p []byte) (int, error) {
	d.b = append(d.b, p...)
	return len(p), nil
}

// WriteReplicateJSON renders the report as indented JSON — the
// BENCH_replicate.json trajectory recorded at the repository root.
func WriteReplicateJSON(w io.Writer, rep ReplicateReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
