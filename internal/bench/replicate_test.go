package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestReplicateBenchQuick is the ISSUE's acceptance gate: with ingest
// confined to 1/8 of the shards between rounds, steady-state delta bytes
// must come in at ≤ 1/4 of full-snapshot shipping — the margin between the
// protocol's ideal (1/8, plus the fixed header) and "not actually shipping
// deltas at all" (1.0).
func TestReplicateBenchQuick(t *testing.T) {
	cfg := QuickReplicateConfig()
	if cfg.HotShards*8 != cfg.Shards {
		t.Fatalf("quick config drifted: hot=%d shards=%d, want 1/8", cfg.HotShards, cfg.Shards)
	}
	rep := RunReplicateBench(cfg)

	if len(rep.Points) != 2 {
		t.Fatalf("%d points, want 2 (delta, full)", len(rep.Points))
	}
	var delta, full *ReplicatePoint
	for i := range rep.Points {
		switch rep.Points[i].Mode {
		case "delta":
			delta = &rep.Points[i]
		case "full":
			full = &rep.Points[i]
		}
	}
	if delta == nil || full == nil {
		t.Fatalf("modes = %v", []string{rep.Points[0].Mode, rep.Points[1].Mode})
	}
	if delta.Rounds != cfg.Rounds || full.Rounds != cfg.Rounds {
		t.Errorf("rounds = %d/%d, want %d", delta.Rounds, full.Rounds, cfg.Rounds)
	}
	if delta.BytesTotal <= 0 || full.BytesTotal <= 0 {
		t.Fatalf("bytes: delta=%d full=%d", delta.BytesTotal, full.BytesTotal)
	}

	// The acceptance ratio. RunReplicateBench verified bit-identical replica
	// answers in both modes before returning, so the delta rounds cannot
	// have cheated their way under the bound.
	if rep.DeltaVsFullBytes > 0.25 {
		t.Errorf("delta/full bytes = %.3f (delta %d, full %d), want ≤ 0.25 with 1/8 shards hot",
			rep.DeltaVsFullBytes, delta.BytesTotal, full.BytesTotal)
	}
	if rep.DeltaVsFullBytes <= 0 {
		t.Errorf("ratio = %v, want > 0", rep.DeltaVsFullBytes)
	}

	// The report must round-trip as JSON (it is a recorded artifact).
	var buf bytes.Buffer
	if err := WriteReplicateJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back ReplicateReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.DeltaVsFullBytes != rep.DeltaVsFullBytes || len(back.Points) != 2 {
		t.Error("JSON round-trip lost fields")
	}
}
