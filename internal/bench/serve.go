package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/synopsis"
)

// ServePoint is one (workload, codec, concurrency) cell of the serving
// benchmark: request latency percentiles and query throughput measured
// against a live HTTP server over loopback.
type ServePoint struct {
	// Workload is "point" / "range" (one query per request) or
	// "point_batch" / "range_batch" (Batch queries per request).
	Workload string `json:"workload"`
	// Codec is the request/response body format: "json" or "binary".
	Codec string `json:"codec"`
	// Concurrency is the number of simultaneous client goroutines.
	Concurrency int `json:"concurrency"`
	// Batch is the queries per request.
	Batch int `json:"batch"`
	// Requests is the total requests measured for this cell.
	Requests int `json:"requests"`
	// P50Us / P99Us are request latency percentiles in microseconds.
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
	// RPS is requests per second; QPS is queries per second (RPS × Batch).
	RPS float64 `json:"rps"`
	QPS float64 `json:"qps"`
}

// ServeReport is the BENCH_serve.json payload.
type ServeReport struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`
	GoVersion  string       `json:"goversion"`
	N          int          `json:"n"`
	K          int          `json:"k"`
	Note       string       `json:"note,omitempty"`
	Points     []ServePoint `json:"points"`
}

// ServeConfig controls the serving benchmark sweep.
type ServeConfig struct {
	// N is the value-domain size; K the synopsis piece budget.
	N, K int
	// Batch is the queries per batched request.
	Batch int
	// Concurrency lists the simultaneous-client counts to sweep.
	Concurrency []int
	// Requests is the request count per cell at concurrency 1, scaled up
	// linearly with concurrency so per-client work stays constant.
	Requests int
}

// DefaultServeConfig is the recorded sweep: a k=1000 synopsis over 200k
// values served to 1, 8, and 64 concurrent clients.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		N:           200_000,
		K:           1000,
		Batch:       512,
		Concurrency: []int{1, 8, 64},
		Requests:    400,
	}
}

// QuickServeConfig is the CI smoke grid.
func QuickServeConfig() ServeConfig {
	return ServeConfig{
		N:           20_000,
		K:           100,
		Batch:       128,
		Concurrency: []int{1, 8},
		Requests:    60,
	}
}

// serveWorkload precomputes the query sets and request bodies for one cell:
// encoding cost is the client's problem, so bodies are built once outside
// the timed region and replayed.
type serveWorkload struct {
	url   string
	ctype string
	body  []byte
}

// RunServeBench boots the serving layer on a loopback listener, hosts a
// V-optimal synopsis, and hammers it with every (workload, codec,
// concurrency) cell: per-request latencies are recorded for percentiles,
// throughput is requests (× batch) over wall clock. Responses are fully
// read and, once per cell, decoded and spot-checked against the in-process
// answer, so a cell can never "win" by serving garbage.
func RunServeBench(cfg ServeConfig) ServeReport {
	rep := ServeReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		N:          cfg.N,
		K:          cfg.K,
	}
	if rep.GoMaxProcs < 2 {
		rep.Note = "single-core environment: concurrency > 1 cells measure queueing, not parallel serving"
	}

	freq := ParallelBenchData(cfg.N, cfg.K)
	syn, err := synopsis.VOptimal(freq, cfg.K)
	must(err)
	hist := syn.(interface{ Histogram() *core.Histogram }).Histogram()
	hist.At(1) // build the query index outside every timed region

	// Workers=1 per request: under concurrent load, cross-request
	// parallelism beats intra-batch fan-out and keeps cells comparable.
	srv := serve.NewServer(&serve.Config{Workers: 1})
	must(srv.Host("col", hist))
	// Streaming ingest target for the add cells: a Sharded engine hosted
	// beside the static synopsis, so POST /add measures the full
	// wire-to-maintainer path (parse, buffer, merge-in compaction) under
	// concurrent writers. k is fixed at a streaming-typical 32 — the cells
	// compare codecs, not summary sizes.
	ing, err := stream.NewSharded(cfg.N, 32, 4, 4096, core.DefaultOptions())
	must(err)
	must(srv.Host("ing", ing))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wl := buildQueryWorkload(cfg.N, cfg.Batch)

	type cellSpec struct {
		workload string
		batch    int
		xs       []int // point queries (nil for range cells)
		as, bs   []int // range queries (nil for point cells)
	}
	cells := []cellSpec{
		{workload: "point", batch: 1, xs: wl.xs[:1]},
		{workload: "range", batch: 1, as: wl.as[:1], bs: wl.bs[:1]},
		{workload: "point_batch", batch: cfg.Batch, xs: wl.sortedXs},
		{workload: "range_batch", batch: cfg.Batch, as: wl.sortedAs, bs: wl.sortedBs},
	}

	for _, cell := range cells {
		// In-process truth for the spot check.
		var want []float64
		if cell.xs != nil {
			want = hist.AtBatch(cell.xs, nil, 1)
		} else {
			want, err = synopsis.EstimateRangeBatch(syn, cell.as, cell.bs, 1)
			must(err)
		}
		for _, codec := range []string{"json", "binary"} {
			w := buildServeRequest(ts.URL, codec, cell.xs, cell.as, cell.bs)
			verifyServeCell(ts.Client(), w, codec, want)
			for _, conc := range cfg.Concurrency {
				total := cfg.Requests * conc
				lat := hammer(ts.Client(), w, conc, total)
				rep.Points = append(rep.Points, summarizeServeCell(cell.workload, codec, conc, cell.batch, lat))
			}
		}
	}

	// Write-path cells: POST /v1/ing/add with Batch-point unit-weight bodies,
	// streaming JSON decode vs zero-copy binary parse, into the live
	// streaming engine.
	for _, codec := range []string{"json", "binary"} {
		w := buildAddRequest(ts.URL, codec, wl.sortedXs)
		verifyAddCell(ts.Client(), w, len(wl.sortedXs))
		for _, conc := range cfg.Concurrency {
			total := cfg.Requests * conc
			lat := hammer(ts.Client(), w, conc, total)
			rep.Points = append(rep.Points, summarizeServeCell("add_batch", codec, conc, cfg.Batch, lat))
		}
	}
	return rep
}

// buildAddRequest precomputes one ingest cell's request bytes.
func buildAddRequest(base, codec string, points []int) serveWorkload {
	w := serveWorkload{url: base + "/v1/ing/add"}
	var buf bytes.Buffer
	if codec == "binary" {
		w.ctype = serve.ContentBatch
		must(serve.EncodeAddBody(&buf, points, nil))
	} else {
		w.ctype = serve.ContentJSON
		must(json.NewEncoder(&buf).Encode(struct {
			Points []int `json:"points"`
		}{points}))
	}
	w.body = buf.Bytes()
	return w
}

// verifyAddCell issues one request and checks the server acknowledged the
// full batch — an ingest cell can never "win" by dropping updates.
func verifyAddCell(hc *http.Client, w serveWorkload, wantN int) {
	resp, err := hc.Post(w.url, w.ctype, bytes.NewReader(w.body))
	must(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("bench: add cell returned %s", resp.Status))
	}
	var v struct {
		Ingested int `json:"ingested"`
	}
	must(json.NewDecoder(resp.Body).Decode(&v))
	if v.Ingested != wantN {
		panic(fmt.Sprintf("bench: add cell ingested %d, want %d", v.Ingested, wantN))
	}
}

// buildServeRequest precomputes one cell's request bytes.
func buildServeRequest(base, codec string, xs, as, bs []int) serveWorkload {
	isPoint := xs != nil
	w := serveWorkload{}
	if isPoint {
		w.url = base + "/v1/col/at"
	} else {
		w.url = base + "/v1/col/range"
	}
	var buf bytes.Buffer
	if codec == "binary" {
		w.ctype = serve.ContentBatch
		if isPoint {
			must(serve.EncodePointsBody(&buf, xs))
		} else {
			must(serve.EncodeRangesBody(&buf, as, bs))
		}
	} else {
		w.ctype = serve.ContentJSON
		enc := json.NewEncoder(&buf)
		if isPoint {
			must(enc.Encode(struct {
				Points []int `json:"points"`
			}{xs}))
		} else {
			must(enc.Encode(struct {
				As []int `json:"as"`
				Bs []int `json:"bs"`
			}{as, bs}))
		}
	}
	w.body = buf.Bytes()
	return w
}

// verifyServeCell issues one request and checks the decoded values match the
// in-process truth exactly.
func verifyServeCell(hc *http.Client, w serveWorkload, codec string, want []float64) {
	resp, err := hc.Post(w.url, w.ctype, bytes.NewReader(w.body))
	must(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("bench: serve cell returned %s", resp.Status))
	}
	var got []float64
	if codec == "binary" {
		got, err = serve.DecodeValuesBody(resp.Body)
		must(err)
	} else {
		var v struct {
			Values []float64 `json:"values"`
		}
		must(json.NewDecoder(resp.Body).Decode(&v))
		got = v.Values
	}
	if len(got) != len(want) {
		panic(fmt.Sprintf("bench: serve cell answered %d values, want %d", len(got), len(want)))
	}
	for i := range got {
		if got[i] != want[i] {
			panic(fmt.Sprintf("bench: serve cell answer %d = %v, want %v", i, got[i], want[i]))
		}
	}
}

// hammer replays one prepared request from conc concurrent clients until
// total requests complete, returning every request's latency.
func hammer(hc *http.Client, w serveWorkload, conc, total int) []time.Duration {
	perClient := total / conc
	latencies := make([][]time.Duration, conc)
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				start := time.Now()
				resp, err := hc.Post(w.url, w.ctype, bytes.NewReader(w.body))
				must(err)
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				must(err)
				if resp.StatusCode != http.StatusOK {
					panic(fmt.Sprintf("bench: serve request returned %s", resp.Status))
				}
				lats = append(lats, time.Since(start))
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	return all
}

// summarizeServeCell folds raw latencies into one report point.
func summarizeServeCell(workload, codec string, conc, batch int, lat []time.Duration) ServePoint {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(q float64) float64 {
		return float64(sorted[int(q*float64(len(sorted)-1))].Nanoseconds()) / 1e3
	}
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	// Wall-clock throughput: with conc in-flight requests, aggregate service
	// time is total/conc.
	wall := total / time.Duration(conc)
	rps := float64(len(lat)) / wall.Seconds()
	return ServePoint{
		Workload:    workload,
		Codec:       codec,
		Concurrency: conc,
		Batch:       batch,
		Requests:    len(lat),
		P50Us:       pct(0.50),
		P99Us:       pct(0.99),
		RPS:         rps,
		QPS:         rps * float64(batch),
	}
}

// WriteServeJSON renders the report as indented JSON — the BENCH_serve.json
// trajectory recorded at the repository root.
func WriteServeJSON(w io.Writer, rep ServeReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
