package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestServeBenchSmoke runs a minimal serving sweep end to end: the harness
// must produce every (workload, codec, concurrency) cell with sane fields,
// and the report must serialize. Answer correctness is asserted inside
// RunServeBench itself (each cell is spot-checked against the in-process
// call before it is timed).
func TestServeBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP benchmark")
	}
	cfg := QuickServeConfig()
	cfg.Requests = 12
	cfg.Concurrency = []int{1, 2}
	rep := RunServeBench(cfg)

	wantCells := 5 * 2 * len(cfg.Concurrency) // workloads × codecs × concurrency
	if len(rep.Points) != wantCells {
		t.Fatalf("%d cells, want %d", len(rep.Points), wantCells)
	}
	for _, pt := range rep.Points {
		if pt.Requests <= 0 || pt.QPS <= 0 || pt.RPS <= 0 {
			t.Fatalf("degenerate cell: %+v", pt)
		}
		if pt.P50Us <= 0 || pt.P99Us < pt.P50Us {
			t.Fatalf("latency percentiles out of order: %+v", pt)
		}
		if pt.QPS != pt.RPS*float64(pt.Batch) {
			t.Fatalf("qps ≠ rps×batch: %+v", pt)
		}
		switch pt.Workload {
		case "point", "range":
			if pt.Batch != 1 {
				t.Fatalf("single workload with batch %d", pt.Batch)
			}
		case "point_batch", "range_batch", "add_batch":
			if pt.Batch != cfg.Batch {
				t.Fatalf("batch workload with batch %d", pt.Batch)
			}
		default:
			t.Fatalf("unknown workload %q", pt.Workload)
		}
	}
	var buf bytes.Buffer
	if err := WriteServeJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

// TestServeBenchRecordedBinaryBeatsJSON is the acceptance gate on the
// RECORDED trajectory: in the committed BENCH_serve.json, every batched
// cell's binary-body qps must be at least its JSON-body counterpart's. If a
// re-recorded run loses a cell, fix the wire path (or re-record on a quiet
// machine) rather than deleting the file.
func TestServeBenchRecordedBinaryBeatsJSON(t *testing.T) {
	blob, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Skipf("no recorded BENCH_serve.json: %v", err)
	}
	var rep ServeReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("recorded BENCH_serve.json does not parse: %v", err)
	}
	type key struct {
		workload string
		conc     int
	}
	qps := map[key]map[string]float64{}
	for _, pt := range rep.Points {
		k := key{pt.Workload, pt.Concurrency}
		if qps[k] == nil {
			qps[k] = map[string]float64{}
		}
		qps[k][pt.Codec] = pt.QPS
	}
	checked, checkedAdd := 0, 0
	for k, byCodec := range qps {
		switch k.workload {
		case "point_batch", "range_batch":
			checked++
		case "add_batch":
			checkedAdd++
		default:
			continue
		}
		if byCodec["binary"] < byCodec["json"] {
			t.Errorf("%s conc=%d: binary %.0f qps < json %.0f qps", k.workload, k.conc, byCodec["binary"], byCodec["json"])
		}
	}
	if checked == 0 {
		t.Fatal("recorded report has no batch cells")
	}
	if checkedAdd == 0 {
		t.Fatal("recorded report has no add_batch cells — re-record with the wire-ingest sweep")
	}
}

// TestServeBenchRecordedBeatsPR5Floors pins the zero-copy serving rewrite to
// the trajectory: the committed BENCH_serve.json must show binary batch
// throughput STRICTLY above the numbers recorded before the pooled
// parse-in-place/append-into-frame path landed (PR 5, same box, same sweep).
// If a re-record loses a cell, the serving hot path has regressed — fix it or
// re-record on a quiet machine; do not relax the floors.
func TestServeBenchRecordedBeatsPR5Floors(t *testing.T) {
	blob, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Skipf("no recorded BENCH_serve.json: %v", err)
	}
	var rep ServeReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("recorded BENCH_serve.json does not parse: %v", err)
	}
	type key struct {
		workload string
		conc     int
	}
	// Binary batch qps recorded in the PR 5 BENCH_serve.json (streaming
	// encode/decode path, k=1000, n=200k, batch=512).
	floors := map[key]float64{
		{"point_batch", 1}:  3724217.6124360934,
		{"point_batch", 8}:  3655350.323931439,
		{"point_batch", 64}: 2929678.96205242,
		{"range_batch", 1}:  2297230.950565676,
		{"range_batch", 8}:  1950832.2034187987,
		{"range_batch", 64}: 2004357.9318651396,
	}
	matched := 0
	for _, pt := range rep.Points {
		if pt.Codec != "binary" {
			continue
		}
		floor, ok := floors[key{pt.Workload, pt.Concurrency}]
		if !ok {
			continue
		}
		matched++
		if !(pt.QPS > floor) {
			t.Errorf("%s binary conc=%d: recorded %.0f qps, PR 5 floor %.0f — zero-copy path must beat it strictly",
				pt.Workload, pt.Concurrency, pt.QPS, floor)
		}
	}
	if matched == 0 {
		t.Fatal("recorded report has no cells matching the PR 5 floor grid")
	}
}
