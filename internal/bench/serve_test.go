package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestServeBenchSmoke runs a minimal serving sweep end to end: the harness
// must produce every (workload, codec, concurrency) cell with sane fields,
// and the report must serialize. Answer correctness is asserted inside
// RunServeBench itself (each cell is spot-checked against the in-process
// call before it is timed).
func TestServeBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP benchmark")
	}
	cfg := QuickServeConfig()
	cfg.Requests = 12
	cfg.Concurrency = []int{1, 2}
	rep := RunServeBench(cfg)

	wantCells := 4 * 2 * len(cfg.Concurrency) // workloads × codecs × concurrency
	if len(rep.Points) != wantCells {
		t.Fatalf("%d cells, want %d", len(rep.Points), wantCells)
	}
	for _, pt := range rep.Points {
		if pt.Requests <= 0 || pt.QPS <= 0 || pt.RPS <= 0 {
			t.Fatalf("degenerate cell: %+v", pt)
		}
		if pt.P50Us <= 0 || pt.P99Us < pt.P50Us {
			t.Fatalf("latency percentiles out of order: %+v", pt)
		}
		if pt.QPS != pt.RPS*float64(pt.Batch) {
			t.Fatalf("qps ≠ rps×batch: %+v", pt)
		}
		switch pt.Workload {
		case "point", "range":
			if pt.Batch != 1 {
				t.Fatalf("single workload with batch %d", pt.Batch)
			}
		case "point_batch", "range_batch":
			if pt.Batch != cfg.Batch {
				t.Fatalf("batch workload with batch %d", pt.Batch)
			}
		default:
			t.Fatalf("unknown workload %q", pt.Workload)
		}
	}
	var buf bytes.Buffer
	if err := WriteServeJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

// TestServeBenchRecordedBinaryBeatsJSON is the acceptance gate on the
// RECORDED trajectory: in the committed BENCH_serve.json, every batched
// cell's binary-body qps must be at least its JSON-body counterpart's. If a
// re-recorded run loses a cell, fix the wire path (or re-record on a quiet
// machine) rather than deleting the file.
func TestServeBenchRecordedBinaryBeatsJSON(t *testing.T) {
	blob, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Skipf("no recorded BENCH_serve.json: %v", err)
	}
	var rep ServeReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("recorded BENCH_serve.json does not parse: %v", err)
	}
	type key struct {
		workload string
		conc     int
	}
	qps := map[key]map[string]float64{}
	for _, pt := range rep.Points {
		k := key{pt.Workload, pt.Concurrency}
		if qps[k] == nil {
			qps[k] = map[string]float64{}
		}
		qps[k][pt.Codec] = pt.QPS
	}
	checked := 0
	for k, byCodec := range qps {
		if k.workload != "point_batch" && k.workload != "range_batch" {
			continue
		}
		if byCodec["binary"] < byCodec["json"] {
			t.Errorf("%s conc=%d: binary %.0f qps < json %.0f qps", k.workload, k.conc, byCodec["binary"], byCodec["json"])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("recorded report has no batch cells")
	}
}
