package bench

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// WALPoint is one cell of the durable-ingest benchmark: batched intake
// through a write-ahead-logged engine at one group-commit setting, head to
// head against the identical in-memory engine.
type WALPoint struct {
	// Mode is "memory" (the bare Sharded engine — this sweep's baseline,
	// re-measured so the overhead column is self-contained) or "wal".
	Mode string `json:"mode"`
	// SyncEvery is the group-commit fsync policy: the flusher fsyncs at
	// least every SyncEvery appended records (1 = before every ingest call
	// returns). 0 for the memory baseline.
	SyncEvery int `json:"sync_every"`
	// Batch is the updates per AddBatch call; Updates the stream length per
	// timed run (including the final Sync and Summary).
	Batch         int     `json:"batch"`
	Updates       int     `json:"updates"`
	NsPerUpdate   float64 `json:"ns_per_update"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// OverheadVsMemory is NsPerUpdate over the memory baseline's — the cost
	// of durability at this fsync policy (1.0 for the baseline itself).
	OverheadVsMemory float64 `json:"overhead_vs_memory"`
	// WALBytes / Appends / Flushes / Fsyncs / MeanGroup / MaxGroup describe
	// the log traffic of the measured run: how many record frames the
	// ingest encoded, how they coalesced into write batches, and how many
	// fsyncs made them durable. MeanGroup = Appends / Flushes.
	WALBytes  int64   `json:"wal_bytes"`
	Appends   int64   `json:"appends"`
	Flushes   int64   `json:"flushes"`
	Fsyncs    int64   `json:"fsyncs"`
	MeanGroup float64 `json:"mean_group"`
	MaxGroup  int     `json:"max_group"`
	// Checkpoints counts checkpoint commits during the run (checkpointing
	// is left on its default cadence — durability as deployed, not an
	// fsync-only microbenchmark).
	Checkpoints int64 `json:"checkpoints"`
}

// WALReport is the BENCH_wal.json payload.
type WALReport struct {
	GoMaxProcs int        `json:"gomaxprocs"`
	NumCPU     int        `json:"numcpu"`
	GoVersion  string     `json:"goversion"`
	Note       string     `json:"note,omitempty"`
	Points     []WALPoint `json:"points"`
}

// WALConfig controls the durable-ingest sweep.
type WALConfig struct {
	// N is the value-domain size, K the summary size, BufferCap the
	// compaction period, matching the ingest sweep so the cells compare.
	N, K, BufferCap int
	// Updates is the stream length per timed run; Batch the AddBatch size.
	Updates, Batch int
	// SyncEverys lists the group-commit policies to sweep.
	SyncEverys []int
	// CheckpointEvery is the ingest-call checkpoint cadence for the wal
	// cells (0 = the engine default).
	CheckpointEvery int
	// MinTrials and MinTotal control timing accuracy per cell.
	MinTrials int
	MinTotal  time.Duration
}

// DefaultWALConfig mirrors the ingest sweep's batch cell (same domain,
// summary size, compaction period, stream length, and batch size, one
// shard) and sweeps the fsync-batching curve from every-call to the
// default group commit.
func DefaultWALConfig() WALConfig {
	return WALConfig{
		N:          200_000,
		K:          32,
		BufferCap:  4096,
		Updates:         2_000_000,
		Batch:           1024,
		SyncEverys:      []int{1, 8, 64, 256},
		CheckpointEvery: 500,
		MinTrials:       5,
		MinTotal:        500 * time.Millisecond,
	}
}

// QuickWALConfig is the CI smoke grid.
func QuickWALConfig() WALConfig {
	return WALConfig{
		N:          20_000,
		K:          16,
		BufferCap:  1024,
		Updates:         100_000,
		Batch:           512,
		SyncEverys:      []int{1, 256},
		CheckpointEvery: 100,
		MinTrials:       1,
		MinTotal:        10 * time.Millisecond,
	}
}

// RunWALBench measures durable batched ingest against the in-memory
// baseline. Every timed run ingests the full workload into a fresh engine
// (fresh WAL directory for the durable cells), forces the log durable with
// Sync, and ends with Summary() — the same always-pay-the-tail policy as
// the ingest sweep. Engine teardown and directory removal happen outside
// the timing.
func RunWALBench(cfg WALConfig) WALReport {
	rep := WALReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	if rep.GoMaxProcs < 2 {
		rep.Note = "single-core environment: WAL flusher goroutine shares the ingest core, " +
			"so group-commit coalescing is understated; regenerate on a multi-core host"
	}
	wl := buildIngestWorkload(cfg.N, cfg.Updates)
	opts := core.DefaultOptions()

	feed := func(add func([]int, []float64) error) {
		for lo := 0; lo < len(wl.points); lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > len(wl.points) {
				hi = len(wl.points)
			}
			must(add(wl.points[lo:hi], wl.weights[lo:hi]))
		}
	}

	// timeCell runs best-of-trials over run (which returns the stats of its
	// own completed run) and appends the cell.
	timeCell := func(pt WALPoint, run func() (time.Duration, stream.DurableStats)) WALPoint {
		trials := cfg.MinTrials
		if trials < 1 {
			trials = 1
		}
		var best time.Duration
		var bestStats stream.DurableStats
		var total time.Duration
		for trial := 0; trial < trials || total < cfg.MinTotal; trial++ {
			elapsed, st := run()
			total += elapsed
			if best == 0 || elapsed < best {
				best, bestStats = elapsed, st
			}
			if trial >= 100 {
				break
			}
		}
		pt.Updates = cfg.Updates
		pt.Batch = cfg.Batch
		pt.NsPerUpdate = float64(best.Nanoseconds()) / float64(cfg.Updates)
		pt.UpdatesPerSec = 1e9 / pt.NsPerUpdate
		pt.WALBytes = bestStats.WAL.AppendedBytes
		pt.Appends = bestStats.WAL.Appends
		pt.Flushes = bestStats.WAL.Flushes
		pt.Fsyncs = bestStats.WAL.Fsyncs
		if bestStats.WAL.Flushes > 0 {
			pt.MeanGroup = float64(bestStats.WAL.Appends) / float64(bestStats.WAL.Flushes)
		}
		pt.MaxGroup = bestStats.WAL.MaxGroup
		pt.Checkpoints = bestStats.Checkpoints
		rep.Points = append(rep.Points, pt)
		return pt
	}

	memory := timeCell(WALPoint{Mode: "memory"}, func() (time.Duration, stream.DurableStats) {
		s, err := stream.NewSharded(cfg.N, cfg.K, 1, cfg.BufferCap, opts)
		must(err)
		start := time.Now()
		feed(s.AddBatch)
		_, err = s.Summary()
		must(err)
		return time.Since(start), stream.DurableStats{}
	})
	rep.Points[len(rep.Points)-1].OverheadVsMemory = 1

	for _, syncEvery := range cfg.SyncEverys {
		syncEvery := syncEvery
		pt := timeCell(WALPoint{Mode: "wal", SyncEvery: syncEvery}, func() (time.Duration, stream.DurableStats) {
			dir, err := os.MkdirTemp("", "histbench-wal-*")
			must(err)
			defer os.RemoveAll(dir)
			d, err := stream.NewDurableSharded(cfg.N, cfg.K, 1, cfg.BufferCap, opts, stream.DurableOptions{
				Dir:             dir,
				SyncEvery:       syncEvery,
				CheckpointEvery: cfg.CheckpointEvery,
			})
			must(err)
			start := time.Now()
			feed(d.AddBatch)
			must(d.Sync())
			_, err = d.Summary()
			must(err)
			elapsed := time.Since(start)
			st := d.Stats()
			must(d.Close())
			return elapsed, st
		})
		rep.Points[len(rep.Points)-1].OverheadVsMemory = pt.NsPerUpdate / memory.NsPerUpdate
	}
	return rep
}

// WriteWALJSON renders the report as indented JSON — the BENCH_wal.json
// trajectory recorded at the repository root.
func WriteWALJSON(w io.Writer, rep WALReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
