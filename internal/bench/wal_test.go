package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/wal"
)

// TestWALBenchSmoke runs a minimal durable-ingest sweep end to end: the
// memory baseline plus every fsync-policy cell must come out with sane
// fields and a serializable report.
func TestWALBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timed durable-ingest benchmark")
	}
	cfg := QuickWALConfig()
	cfg.Updates = 20_000
	cfg.SyncEverys = []int{1, 64}
	rep := RunWALBench(cfg)

	if len(rep.Points) != 1+len(cfg.SyncEverys) {
		t.Fatalf("%d cells, want %d", len(rep.Points), 1+len(cfg.SyncEverys))
	}
	mem := rep.Points[0]
	if mem.Mode != "memory" || mem.OverheadVsMemory != 1 || mem.NsPerUpdate <= 0 {
		t.Fatalf("degenerate memory baseline: %+v", mem)
	}
	for _, pt := range rep.Points[1:] {
		if pt.Mode != "wal" || pt.NsPerUpdate <= 0 || pt.OverheadVsMemory <= 0 {
			t.Fatalf("degenerate wal cell: %+v", pt)
		}
		if pt.Appends <= 0 || pt.WALBytes <= 0 || pt.Fsyncs <= 0 {
			t.Fatalf("wal cell logged nothing: %+v", pt)
		}
	}
	// SyncEvery=1 fsyncs once per ingest call; the batched policy must
	// coalesce to strictly fewer.
	if rep.Points[1].Fsyncs <= rep.Points[2].Fsyncs {
		t.Errorf("fsyncs: sync-every=1 %d, sync-every=64 %d — no group-commit coalescing",
			rep.Points[1].Fsyncs, rep.Points[2].Fsyncs)
	}
	var buf bytes.Buffer
	if err := WriteWALJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

// TestWALBenchRecordedDurableWithin2x pins the durability tax to the
// trajectory: in the committed BENCH_wal.json, batched durable ingest at the
// DEFAULT group-commit policy must land within 2× of the in-memory engine —
// both against the sweep's own memory baseline and against the serial batch
// cell of the committed BENCH_ingest.json (the two files must be recorded on
// the same box in the same machine state for the cross-file bound to mean
// anything; re-record both together). If a re-record loses the bound, the
// WAL hot path has regressed — fix it, do not relax the factor.
func TestWALBenchRecordedDurableWithin2x(t *testing.T) {
	blob, err := os.ReadFile("../../BENCH_wal.json")
	if err != nil {
		t.Skipf("no recorded BENCH_wal.json: %v", err)
	}
	var rep WALReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("recorded BENCH_wal.json does not parse: %v", err)
	}

	var memory, def *WALPoint
	for i := range rep.Points {
		pt := &rep.Points[i]
		switch {
		case pt.Mode == "memory":
			memory = pt
		case pt.Mode == "wal" && pt.SyncEvery == wal.DefaultSyncEvery:
			def = pt
		}
	}
	if memory == nil {
		t.Fatal("recorded report has no memory baseline")
	}
	if def == nil {
		t.Fatalf("recorded report has no wal cell at the default group commit (sync-every=%d)", wal.DefaultSyncEvery)
	}
	if def.Appends <= 0 || def.Fsyncs <= 0 || def.Checkpoints <= 0 {
		t.Fatalf("default wal cell did not log, sync, and checkpoint: %+v", def)
	}
	const factor = 2.0
	if got, want := def.NsPerUpdate, factor*memory.NsPerUpdate; !(got <= want) {
		t.Errorf("durable batched ingest %.1f ns/update, need ≤ %.1f (%.0f× the sweep's memory baseline %.1f)",
			got, want, factor, memory.NsPerUpdate)
	}

	iblob, err := os.ReadFile("../../BENCH_ingest.json")
	if err != nil {
		t.Skipf("no recorded BENCH_ingest.json: %v", err)
	}
	var irep IngestReport
	if err := json.Unmarshal(iblob, &irep); err != nil {
		t.Fatalf("recorded BENCH_ingest.json does not parse: %v", err)
	}
	var serialBatch *IngestPoint
	for i := range irep.Points {
		pt := &irep.Points[i]
		if pt.Mode == "serial" && pt.Workload == "batch" {
			serialBatch = pt
		}
	}
	if serialBatch == nil {
		t.Fatal("recorded BENCH_ingest.json has no serial batch cell")
	}
	if got, want := def.NsPerUpdate, factor*serialBatch.NsPerUpdate; !(got <= want) {
		t.Errorf("durable batched ingest %.1f ns/update, need ≤ %.1f (%.0f× the recorded in-memory serial batch cell %.1f)",
			got, want, factor, serialBatch.NsPerUpdate)
	}
}
