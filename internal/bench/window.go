package bench

import (
	"encoding/json"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// WindowPoint is one windowed-query cell: the latency of EstimateRangeOver
// at a given window span (0 = full retained history) and half-life.
type WindowPoint struct {
	// Window is the queried epoch span (0 = every retained epoch).
	Window int `json:"window"`
	// Halflife is the exponential-decay half-life in epochs (0 = no decay).
	Halflife float64 `json:"halflife"`
	// NsPerQuery is the mean latency of one EstimateRangeOver call.
	NsPerQuery float64 `json:"ns_per_query"`
	// SummaryNs is the latency of one SummaryOver call at these knobs — the
	// k-way combine that materializes the windowed histogram.
	SummaryNs float64 `json:"summary_ns"`
}

// WindowReport is the BENCH_window.json payload.
type WindowReport struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	GoVersion  string `json:"goversion"`
	// N..BufferCap echo the engine configuration; PerEpoch is the updates
	// ingested per sealed epoch, Tail the live pending updates.
	N         int `json:"n"`
	K         int `json:"k"`
	Epochs    int `json:"epochs"`
	BufferCap int `json:"buffer_cap"`
	PerEpoch  int `json:"per_epoch"`
	Tail      int `json:"tail"`
	// MEpochWindow is the "recent window" span the acceptance ratio pins.
	MEpochWindow int `json:"m_epoch_window"`
	// WindowVsFullQuery is the headline ratio: ns/query at Window=MEpochWindow
	// over ns/query at Window=0 (full history). The ring design's promise is
	// that a small-window query does no more work than the full combine — the
	// ratio stays within a small constant of 1.
	WindowVsFullQuery float64       `json:"window_vs_full_query"`
	Note              string        `json:"note,omitempty"`
	Points            []WindowPoint `json:"points"`
}

// WindowConfig controls the windowed-query benchmark.
type WindowConfig struct {
	// N is the value domain; K the piece budget; Epochs the ring span;
	// BufferCap the pending-log capacity.
	N, K, Epochs, BufferCap int
	// PerEpoch updates are ingested before each seal; Tail lands in the live
	// epoch after the last seal, so queries pay a real live-view combine on
	// top of the sealed slots.
	PerEpoch, Tail int
	// MEpochWindow is the small window span for the headline ratio.
	MEpochWindow int
	// Queries is the timed EstimateRangeOver calls per cell.
	Queries int
}

// DefaultWindowConfig is the recorded sweep: a 24-epoch ring (think hourly
// epochs, one day retained) under a 200k domain.
func DefaultWindowConfig() WindowConfig {
	return WindowConfig{
		N: 200_000, K: 64, Epochs: 24, BufferCap: 4096,
		PerEpoch: 20_000, Tail: 1500, MEpochWindow: 6, Queries: 20_000,
	}
}

// QuickWindowConfig is the CI smoke grid.
func QuickWindowConfig() WindowConfig {
	return WindowConfig{
		N: 20_000, K: 16, Epochs: 8, BufferCap: 1024,
		PerEpoch: 2_000, Tail: 300, MEpochWindow: 3, Queries: 4_000,
	}
}

// RunWindowBench builds a windowed maintainer, seals Epochs+2 epochs (so the
// ring has wrapped and every slot is live), and times windowed and decayed
// range queries across window spans, plus the SummaryOver materialization.
func RunWindowBench(cfg WindowConfig) WindowReport {
	rep := WindowReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		N:          cfg.N, K: cfg.K, Epochs: cfg.Epochs, BufferCap: cfg.BufferCap,
		PerEpoch: cfg.PerEpoch, Tail: cfg.Tail,
		MEpochWindow: cfg.MEpochWindow,
	}

	opts := core.DefaultOptions()
	opts.Workers = 1
	m, err := stream.NewWindowedMaintainer(cfg.N, cfg.K, cfg.Epochs, cfg.BufferCap, opts)
	must(err)
	rng := rand.New(rand.NewSource(7))
	for e := 0; e < cfg.Epochs+2; e++ {
		for i := 0; i < cfg.PerEpoch; i++ {
			must(m.Add(1+rng.Intn(cfg.N), 1+rng.Float64()))
		}
		must(m.Advance())
	}
	for i := 0; i < cfg.Tail; i++ {
		must(m.Add(1+rng.Intn(cfg.N), 1+rng.Float64()))
	}
	// Fold the tail into the live epoch's view up front: each cell's
	// SummaryOver call drains the pending log as a side effect, so without
	// this the first cell alone would pay a per-query pending-log scan and
	// the grid would not be comparable cell to cell. (The pending-scan cost
	// itself is the ingest benchmark's territory.)
	if _, err := m.SummaryOver(0, 0); err != nil {
		must(err)
	}

	// A deterministic query workload reused by every cell.
	as := make([]int, cfg.Queries)
	bs := make([]int, cfg.Queries)
	for i := range as {
		a := 1 + rng.Intn(cfg.N)
		b := a + rng.Intn(cfg.N-a+1)
		as[i], bs[i] = a, b
	}

	cell := func(window int, halflife float64) WindowPoint {
		// Warm untimed (builds the lazy slot indexes, faults in the ring,
		// settles the branch predictor) so the first grid cell isn't an
		// outlier, then time.
		for i := 0; i < cfg.Queries/10+1; i++ {
			if _, err := m.EstimateRangeOver(as[i], bs[i], window, halflife); err != nil {
				must(err)
			}
		}
		var sink float64
		start := time.Now()
		for i := range as {
			v, err := m.EstimateRangeOver(as[i], bs[i], window, halflife)
			must(err)
			sink += v
		}
		elapsed := time.Since(start)
		_ = sink

		sumStart := time.Now()
		_, err := m.SummaryOver(window, halflife)
		must(err)
		return WindowPoint{
			Window: window, Halflife: halflife,
			NsPerQuery: float64(elapsed.Nanoseconds()) / float64(cfg.Queries),
			SummaryNs:  float64(time.Since(sumStart).Nanoseconds()),
		}
	}

	var mNs, fullNs float64
	for _, w := range []int{0, 1, cfg.MEpochWindow, cfg.Epochs} {
		for _, hl := range []float64{0, float64(cfg.Epochs) / 4} {
			pt := cell(w, hl)
			rep.Points = append(rep.Points, pt)
			if hl == 0 {
				switch w {
				case 0:
					fullNs = pt.NsPerQuery
				case cfg.MEpochWindow:
					mNs = pt.NsPerQuery
				}
			}
		}
	}
	if fullNs > 0 {
		rep.WindowVsFullQuery = mNs / fullNs
	}
	return rep
}

// WriteWindowJSON renders the report as indented JSON — the BENCH_window.json
// trajectory recorded at the repository root.
func WriteWindowJSON(w io.Writer, rep WindowReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
