package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWindowBenchQuick runs the CI-sized windowed-query grid and pins the
// ISSUE acceptance bound: an m-epoch window query must cost no more than a
// small constant times the full-history query. The windowed path combines
// m ring slots instead of all of them, so the true ratio hovers at or below
// 1; the 3× pin absorbs scheduler noise on loaded CI machines.
func TestWindowBenchQuick(t *testing.T) {
	cfg := QuickWindowConfig()
	rep := RunWindowBench(cfg)

	if got, want := len(rep.Points), 8; got != want {
		t.Fatalf("got %d grid points, want %d", got, want)
	}
	for _, pt := range rep.Points {
		if pt.NsPerQuery <= 0 || pt.SummaryNs <= 0 {
			t.Errorf("window=%d halflife=%g: non-positive timings %+v", pt.Window, pt.Halflife, pt)
		}
	}
	if rep.WindowVsFullQuery <= 0 {
		t.Fatalf("window-vs-full ratio %v, want > 0", rep.WindowVsFullQuery)
	}
	if rep.WindowVsFullQuery > 3 {
		t.Errorf("%d-epoch window query is %.2fx the full-history query, want ≤ 3x",
			cfg.MEpochWindow, rep.WindowVsFullQuery)
	}

	var buf bytes.Buffer
	if err := WriteWindowJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back WindowReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.MEpochWindow != cfg.MEpochWindow || len(back.Points) != len(rep.Points) {
		t.Fatalf("round-tripped report lost fields: %+v", back)
	}
}
