package cheby

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/sparse"
)

// Projection is the result of projecting a function restricted to the
// interval [A, B] (1-based, inclusive) onto the space of polynomials of
// degree ≤ D: the Gram-basis coefficients and the exact squared projection
// error, obtained via Parseval without materializing the residual.
type Projection struct {
	// A, B are the absolute interval endpoints (1-based, inclusive).
	A, B int
	// D is the requested degree; the effective degree is min(D, B−A), since
	// the polynomial space saturates on short intervals.
	D int
	// Coeffs are the coefficients a_r in the orthonormal Gram basis of the
	// interval, r = 0..effective degree.
	Coeffs []float64
	// ErrSq is ‖q_I − proj‖₂² = Σ_{i∈I} q(i)² − Σ_r a_r², clamped at 0.
	ErrSq float64

	basis *Basis
}

// Project computes the ℓ2 projection of the entries onto degree-d
// polynomials over [a, b]. The entries must be the nonzeros of the target
// function with absolute indices inside [a, b], sorted ascending; points of
// [a, b] not listed are treated as zeros (they contribute nothing to inner
// products, which is what makes the oracle run in O(d·s_I) rather than
// O(d·|I|) — the paper's Theorem 4.2 sparsity trick).
func Project(entries []sparse.Entry, a, b, d int) (Projection, error) {
	if a < 1 || a > b {
		return Projection{}, fmt.Errorf("cheby: invalid interval [%d, %d]", a, b)
	}
	if d < 0 {
		return Projection{}, fmt.Errorf("cheby: negative degree %d", d)
	}
	n := b - a + 1
	dEff := d
	if dEff > n-1 {
		dEff = n - 1
	}
	basis, err := NewBasis(n, dEff)
	if err != nil {
		return Projection{}, err
	}
	coeffs := make([]float64, dEff+1)
	tvals := make([]float64, dEff+1)
	var sumSq float64
	for _, e := range entries {
		if e.Index < a || e.Index > b {
			return Projection{}, fmt.Errorf("cheby: entry index %d outside [%d, %d]", e.Index, a, b)
		}
		basis.Eval(float64(e.Index-a), tvals)
		for r := range coeffs {
			coeffs[r] += e.Value * tvals[r]
		}
		sumSq += e.Value * e.Value
	}
	var coeffSq float64
	for _, c := range coeffs {
		coeffSq += c * c
	}
	return Projection{
		A: a, B: b, D: d,
		Coeffs: coeffs,
		ErrSq:  numeric.ClampNonNeg(sumSq - coeffSq),
		basis:  basis,
	}, nil
}

// FromCoeffs rebuilds a Projection from its stored state — interval, degree,
// Gram-basis coefficients, and squared error — recomputing the basis, which
// is derived state. It is the decode-side constructor of the binary codec:
// Eval on the result is bit-identical to the original projection's (the same
// coefficients drive the same recurrence). Shape and range are validated;
// the coefficient values themselves are trusted, like every stored float.
func FromCoeffs(a, b, d int, coeffs []float64, errSq float64) (Projection, error) {
	if a < 1 || a > b {
		return Projection{}, fmt.Errorf("cheby: invalid interval [%d, %d]", a, b)
	}
	if d < 0 {
		return Projection{}, fmt.Errorf("cheby: negative degree %d", d)
	}
	n := b - a + 1
	dEff := d
	if dEff > n-1 {
		dEff = n - 1
	}
	if len(coeffs) != dEff+1 {
		return Projection{}, fmt.Errorf("cheby: %d coefficients for effective degree %d on [%d, %d]",
			len(coeffs), dEff, a, b)
	}
	if math.IsNaN(errSq) || math.IsInf(errSq, 0) || errSq < 0 {
		return Projection{}, fmt.Errorf("cheby: invalid squared error %v", errSq)
	}
	basis, err := NewBasis(n, dEff)
	if err != nil {
		return Projection{}, err
	}
	return Projection{A: a, B: b, D: d, Coeffs: coeffs, ErrSq: errSq, basis: basis}, nil
}

// Eval returns the fitted polynomial's value at the absolute index i (which
// may lie outside [A, B]; the polynomial extrapolates).
func (p Projection) Eval(i int) float64 { return p.EvalAt(float64(i)) }

// EvalAt evaluates the fitted polynomial at an arbitrary real position in
// absolute coordinates.
func (p Projection) EvalAt(x float64) float64 {
	tvals := make([]float64, len(p.Coeffs))
	p.basis.Eval(x-float64(p.A), tvals)
	var v float64
	for r, c := range p.Coeffs {
		v += c * tvals[r]
	}
	return v
}

// Err returns the ℓ2 (not squared) projection error.
func (p Projection) Err() float64 { return math.Sqrt(p.ErrSq) }

// Dense materializes the fitted polynomial on [A, B] as a dense slice of
// length B−A+1.
func (p Projection) Dense() []float64 {
	out := make([]float64, p.B-p.A+1)
	tvals := make([]float64, len(p.Coeffs))
	for i := range out {
		p.basis.Eval(float64(i), tvals)
		var v float64
		for r, c := range p.Coeffs {
			v += c * tvals[r]
		}
		out[i] = v
	}
	return out
}
