package cheby

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func denseEntries(q []float64, a int) []sparse.Entry {
	var es []sparse.Entry
	for i, v := range q {
		if v != 0 {
			es = append(es, sparse.Entry{Index: a + i, Value: v})
		}
	}
	return es
}

func TestProjectValidation(t *testing.T) {
	if _, err := Project(nil, 0, 5, 1); err == nil {
		t.Fatal("a<1 should error")
	}
	if _, err := Project(nil, 5, 4, 1); err == nil {
		t.Fatal("a>b should error")
	}
	if _, err := Project(nil, 1, 5, -1); err == nil {
		t.Fatal("d<0 should error")
	}
	if _, err := Project([]sparse.Entry{{Index: 9, Value: 1}}, 1, 5, 1); err == nil {
		t.Fatal("entry outside interval should error")
	}
}

func TestProjectDegreeZeroIsFlattening(t *testing.T) {
	// Degree-0 projection must equal the interval mean with SSE error —
	// exactly Definition 3.1's flattening.
	q := []float64{1, 5, 0, 2}
	p, err := Project(denseEntries(q, 11), 11, 14, 0)
	if err != nil {
		t.Fatal(err)
	}
	mean := 2.0
	if !numeric.AlmostEqual(p.Eval(11), mean, 1e-12) {
		t.Fatalf("degree-0 value = %v, want %v", p.Eval(11), mean)
	}
	var sse float64
	for _, v := range q {
		sse += (v - mean) * (v - mean)
	}
	if !numeric.AlmostEqual(p.ErrSq, sse, 1e-9) {
		t.Fatalf("ErrSq = %v, want %v", p.ErrSq, sse)
	}
}

func TestProjectExactPolynomial(t *testing.T) {
	// Points on a degree-3 polynomial project with zero error and exact
	// reconstruction.
	coef := []float64{2, -1, 0.5, 0.03}
	a, b := 101, 160
	q := make([]float64, b-a+1)
	for i := range q {
		q[i] = numeric.EvalPoly(coef, float64(i))
	}
	p, err := Project(denseEntries(q, a), a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	// ErrSq = Σq² − Σa² cancels two ≈2e9 quantities, so the residual floor
	// is ~1e-6 in float64; anything below 1e-4 is an exact fit.
	if p.ErrSq > 1e-4 {
		t.Fatalf("ErrSq = %v on exact polynomial", p.ErrSq)
	}
	for i := range q {
		if !numeric.AlmostEqual(p.Eval(a+i), q[i], 1e-7) {
			t.Fatalf("Eval(%d) = %v, want %v", a+i, p.Eval(a+i), q[i])
		}
	}
}

func TestProjectMatchesLeastSquares(t *testing.T) {
	// The Gram projection must agree with brute-force normal-equation least
	// squares on random data.
	r := rng.New(83)
	for trial := 0; trial < 20; trial++ {
		n := 10 + r.Intn(60)
		d := r.Intn(4)
		a := 1 + r.Intn(100)
		q := make([]float64, n)
		xs := make([]float64, n)
		for i := range q {
			q[i] = r.NormFloat64()
			xs[i] = float64(i) - float64(n-1)/2 // centered for conditioning
		}
		p, err := Project(denseEntries(q, a), a, a+n-1, d)
		if err != nil {
			t.Fatal(err)
		}
		coef, err := numeric.PolyFitLS(xs, q, d)
		if err != nil {
			t.Fatal(err)
		}
		var lsErrSq float64
		for i := range q {
			diff := q[i] - numeric.EvalPoly(coef, xs[i])
			lsErrSq += diff * diff
		}
		if !numeric.AlmostEqual(p.ErrSq, lsErrSq, 1e-6) {
			t.Fatalf("trial %d (n=%d d=%d): Gram ErrSq %v vs LS %v", trial, n, d, p.ErrSq, lsErrSq)
		}
		for i := 0; i < n; i += 1 + n/7 {
			want := numeric.EvalPoly(coef, xs[i])
			if !numeric.AlmostEqual(p.Eval(a+i), want, 1e-6) {
				t.Fatalf("trial %d: Eval(%d) = %v, LS %v", trial, a+i, p.Eval(a+i), want)
			}
		}
	}
}

func TestProjectSparseZerosCount(t *testing.T) {
	// Zeros inside the interval are real data points: projecting {5 at one
	// point, zeros elsewhere} at degree 0 gives the mean 5/n, not 5.
	p, err := Project([]sparse.Entry{{Index: 3, Value: 5}}, 1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(p.Eval(1), 0.5, 1e-12) {
		t.Fatalf("mean = %v, want 0.5", p.Eval(1))
	}
}

func TestProjectDegreeSaturation(t *testing.T) {
	// d ≥ |I| − 1 means the space includes interpolation: error 0.
	q := []float64{3, -1, 4}
	p, err := Project(denseEntries(q, 5), 5, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.ErrSq > 1e-9 {
		t.Fatalf("saturated degree should interpolate, ErrSq = %v", p.ErrSq)
	}
	for i, v := range q {
		if !numeric.AlmostEqual(p.Eval(5+i), v, 1e-7) {
			t.Fatalf("interpolation failed at %d: %v vs %v", 5+i, p.Eval(5+i), v)
		}
	}
}

func TestProjectSingletonInterval(t *testing.T) {
	p, err := Project([]sparse.Entry{{Index: 4, Value: 9}}, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.ErrSq != 0 || !numeric.AlmostEqual(p.Eval(4), 9, 1e-12) {
		t.Fatalf("singleton: err %v value %v", p.ErrSq, p.Eval(4))
	}
}

func TestProjectionDense(t *testing.T) {
	q := []float64{1, 2, 3, 4}
	p, err := Project(denseEntries(q, 1), 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Dense()
	if len(d) != 4 {
		t.Fatalf("Dense length %d", len(d))
	}
	for i := range d {
		if !numeric.AlmostEqual(d[i], q[i], 1e-9) {
			t.Fatalf("linear data should fit exactly: %v vs %v", d[i], q[i])
		}
	}
}

func TestProjectErrIsSqrt(t *testing.T) {
	q := []float64{0, 4}
	p, err := Project(denseEntries(q, 1), 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Mean 2, SSE = 4+4 = 8.
	if !numeric.AlmostEqual(p.ErrSq, 8, 1e-12) || !numeric.AlmostEqual(p.Err(), math.Sqrt(8), 1e-12) {
		t.Fatalf("ErrSq = %v Err = %v", p.ErrSq, p.Err())
	}
}

// Property: the projection error never increases with degree, and is never
// negative.
func TestProjectMonotoneInDegreeProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw)%40 + 3
		q := make([]float64, n)
		for i := range q {
			q[i] = r.NormFloat64()
		}
		es := denseEntries(q, 1)
		prev := math.Inf(1)
		for d := 0; d <= 5 && d < n; d++ {
			p, err := Project(es, 1, n, d)
			if err != nil {
				return false
			}
			if p.ErrSq < 0 || p.ErrSq > prev+1e-9 {
				return false
			}
			prev = p.ErrSq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: projection is a contraction — the fitted polynomial's energy on
// the interval never exceeds the data's energy (Parseval/Bessel).
func TestProjectBesselProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 25
		q := make([]float64, n)
		for i := range q {
			q[i] = r.NormFloat64()
		}
		p, err := Project(denseEntries(q, 1), 1, n, 4)
		if err != nil {
			return false
		}
		var dataEnergy, fitEnergy float64
		for i := range q {
			dataEnergy += q[i] * q[i]
			v := p.Eval(1 + i)
			fitEnergy += v * v
		}
		return fitEnergy <= dataEnergy+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProject(b *testing.B) {
	r := rng.New(1)
	q := make([]float64, 1024)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	es := denseEntries(q, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Project(es, 1, 1024, 5); err != nil {
			b.Fatal(err)
		}
	}
}
