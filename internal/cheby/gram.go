// Package cheby implements the discrete Chebyshev (Gram) orthonormal
// polynomial basis on the integer grid {0, 1, …, N−1} and the fast
// projection of sparse functions onto degree-d polynomials — the paper's
// FitPolyd projection oracle (Section 4.2 and Appendix A).
//
// Two evaluators are provided:
//
//   - Basis (the production path) evaluates all of t_0(x), …, t_d(x) with the
//     orthonormal three-term recurrence
//     t_{r+1}(x) = (τ·t_r(x) − √c_r·t_{r−1}(x)) / √c_{r+1},
//     τ = x − (N−1)/2, c_r = r²(N²−r²)/(4(4r²−1)),
//     which is O(d) per point after O(d) setup and numerically stable for
//     large N.
//   - EvaluateGram is the paper's explicit formula (Algorithm 4):
//     t_r(x) = (r!/W_r)·Δʳ[(y choose r)·((y−N) choose r)](x) with
//     W_r = √(N·∏_{j=1..r}(N²−j²)/(2r+1)). It exists for fidelity and as a
//     cross-check; tests verify the two agree to high precision.
//
// Orthonormality means Σ_{x=0}^{N−1} t_r(x)·t_s(x) = [r = s], so projecting a
// function is computing inner products a_r = Σ q(x)·t_r(x) and the projection
// error follows from Parseval: ‖q − proj‖₂² = ‖q‖₂² − Σ a_r².
package cheby

import (
	"fmt"
	"math"
)

// Basis is the orthonormal Gram polynomial basis {t_0, …, t_d} on the grid
// {0, …, N−1}, evaluated by three-term recurrence.
type Basis struct {
	n int
	d int
	// sqrtC[r] = √c_r for r = 1..d (index 0 unused).
	sqrtC []float64
	// invSqrtN = t_0 = 1/√N.
	invSqrtN float64
	// center = (N−1)/2.
	center float64
}

// NewBasis builds the basis for grid size n and maximum degree d. The
// polynomial space of degree d on n points requires d < n; callers should
// clamp d to n−1 (NewBasis returns an error otherwise so that silent
// rank-deficiency cannot occur).
func NewBasis(n, d int) (*Basis, error) {
	if n < 1 {
		return nil, fmt.Errorf("cheby: grid size %d < 1", n)
	}
	if d < 0 || d >= n {
		return nil, fmt.Errorf("cheby: degree %d out of [0, n-1] for n = %d", d, n)
	}
	b := &Basis{
		n:        n,
		d:        d,
		sqrtC:    make([]float64, d+1),
		invSqrtN: 1 / math.Sqrt(float64(n)),
		center:   float64(n-1) / 2,
	}
	nf := float64(n)
	for r := 1; r <= d; r++ {
		rf := float64(r)
		c := rf * rf * (nf*nf - rf*rf) / (4 * (4*rf*rf - 1))
		b.sqrtC[r] = math.Sqrt(c)
	}
	return b, nil
}

// N returns the grid size.
func (b *Basis) N() int { return b.n }

// Degree returns the maximum degree d.
func (b *Basis) Degree() int { return b.d }

// Eval writes t_0(x), …, t_d(x) into out (which must have length ≥ d+1) and
// returns out[:d+1]. x is a grid position in [0, N−1]; fractional x is
// permitted (the polynomials are defined on all of ℝ), which the piecewise
// layer uses for rendering.
func (b *Basis) Eval(x float64, out []float64) []float64 {
	out = out[:b.d+1]
	tau := x - b.center
	out[0] = b.invSqrtN
	if b.d >= 1 {
		out[1] = tau * out[0] / b.sqrtC[1]
	}
	for r := 1; r < b.d; r++ {
		out[r+1] = (tau*out[r] - b.sqrtC[r]*out[r-1]) / b.sqrtC[r+1]
	}
	return out
}

// EvaluateGram is the paper's Algorithm 4: it returns t_0(x), …, t_d(x) on
// the grid {0, …, n−1} using the explicit forward-difference formula
//
//	t_r(x) = (r!/W_r) · Σ_{j=0}^{r} (−1)^j·C(r,j)·ν_r(x+r−j),
//	ν_r(y) = C(y, r)·C(y−n, r),
//
// with generalized binomial coefficients and the normalization
// W_r = √(n·∏_{j=1}^{r}(n²−j²)/(2r+1)).
//
// This implementation favours clarity over the incremental O(d²) updates of
// the paper's pseudocode (it is O(d³) per point); it is used only as a
// cross-validation oracle for Basis, which is O(d) per point.
func EvaluateGram(x, d, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("cheby: grid size %d < 1", n)
	}
	if d < 0 || d >= n {
		return nil, fmt.Errorf("cheby: degree %d out of [0, n-1] for n = %d", d, n)
	}
	// Pascal triangle for C(r, j).
	binom := make([][]float64, d+1)
	for r := 0; r <= d; r++ {
		binom[r] = make([]float64, r+1)
		binom[r][0], binom[r][r] = 1, 1
		for j := 1; j < r; j++ {
			binom[r][j] = binom[r-1][j-1] + binom[r-1][j]
		}
	}
	out := make([]float64, d+1)
	nf := float64(n)
	rfact := 1.0 // r!
	prodN := 1.0 // ∏_{j=1..r} (n²−j²)
	for r := 0; r <= d; r++ {
		if r > 0 {
			rfact *= float64(r)
			prodN *= nf*nf - float64(r)*float64(r)
		}
		w := math.Sqrt(nf * prodN / float64(2*r+1))
		// Forward difference Δʳ ν_r at x.
		var sum float64
		for j := 0; j <= r; j++ {
			y := float64(x + r - j)
			nu := fallingBinom(y, r) * fallingBinom(y-nf, r)
			if j%2 == 0 {
				sum += binom[r][j] * nu
			} else {
				sum -= binom[r][j] * nu
			}
		}
		out[r] = rfact * sum / w
	}
	return out, nil
}

// fallingBinom returns the generalized binomial coefficient C(y, r) =
// y·(y−1)···(y−r+1)/r! for real y and integer r ≥ 0.
func fallingBinom(y float64, r int) float64 {
	v := 1.0
	for j := 0; j < r; j++ {
		v *= (y - float64(j)) / float64(j+1)
	}
	return v
}
