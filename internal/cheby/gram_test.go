package cheby

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
	"repro/internal/rng"
)

func TestNewBasisValidation(t *testing.T) {
	if _, err := NewBasis(0, 0); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NewBasis(5, -1); err == nil {
		t.Fatal("d<0 should error")
	}
	if _, err := NewBasis(5, 5); err == nil {
		t.Fatal("d≥n should error")
	}
	if _, err := NewBasis(1, 0); err != nil {
		t.Fatal("n=1,d=0 should be fine")
	}
}

func TestBasisOrthonormality(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 100, 1000} {
		d := n - 1
		if d > 8 {
			d = 8
		}
		b, err := NewBasis(n, d)
		if err != nil {
			t.Fatal(err)
		}
		// Gram matrix G[r][s] = Σ_x t_r(x)·t_s(x) must be the identity.
		g := make([][]float64, d+1)
		for r := range g {
			g[r] = make([]float64, d+1)
		}
		tv := make([]float64, d+1)
		for x := 0; x < n; x++ {
			b.Eval(float64(x), tv)
			for r := 0; r <= d; r++ {
				for s := 0; s <= d; s++ {
					g[r][s] += tv[r] * tv[s]
				}
			}
		}
		for r := 0; r <= d; r++ {
			for s := 0; s <= d; s++ {
				want := 0.0
				if r == s {
					want = 1.0
				}
				if math.Abs(g[r][s]-want) > 1e-9 {
					t.Fatalf("n=%d: G[%d][%d] = %v, want %v", n, r, s, g[r][s], want)
				}
			}
		}
	}
}

func TestBasisDegreeStructure(t *testing.T) {
	// t_r must be a degree-r polynomial: finite differences of order r+1
	// vanish.
	n := 50
	d := 5
	b, err := NewBasis(n, d)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= d; r++ {
		vals := make([]float64, n)
		tv := make([]float64, d+1)
		for x := 0; x < n; x++ {
			b.Eval(float64(x), tv)
			vals[x] = tv[r]
		}
		// Apply r+1 forward differences.
		for k := 0; k <= r; k++ {
			for i := 0; i < len(vals)-1; i++ {
				vals[i] = vals[i+1] - vals[i]
			}
			vals = vals[:len(vals)-1]
		}
		for i, v := range vals {
			if math.Abs(v) > 1e-7 {
				t.Fatalf("t_%d: Δ^%d at %d = %v, want 0", r, r+1, i, v)
			}
		}
	}
}

func TestBasisSymmetry(t *testing.T) {
	// t_r(N−1−x) = (−1)^r·t_r(x): Gram polynomials alternate parity about
	// the grid center.
	n := 37
	d := 6
	b, _ := NewBasis(n, d)
	tv1 := make([]float64, d+1)
	tv2 := make([]float64, d+1)
	for x := 0; x < n; x++ {
		b.Eval(float64(x), tv1)
		b.Eval(float64(n-1-x), tv2)
		for r := 0; r <= d; r++ {
			sign := 1.0
			if r%2 == 1 {
				sign = -1
			}
			if math.Abs(tv2[r]-sign*tv1[r]) > 1e-10 {
				t.Fatalf("parity violated for r=%d at x=%d", r, x)
			}
		}
	}
}

func TestEvaluateGramMatchesRecurrence(t *testing.T) {
	for _, n := range []int{2, 7, 33, 200} {
		d := 6
		if d >= n {
			d = n - 1
		}
		b, err := NewBasis(n, d)
		if err != nil {
			t.Fatal(err)
		}
		tv := make([]float64, d+1)
		for x := 0; x < n; x++ {
			explicit, err := EvaluateGram(x, d, n)
			if err != nil {
				t.Fatal(err)
			}
			b.Eval(float64(x), tv)
			for r := 0; r <= d; r++ {
				// The explicit formula may differ by sign convention per
				// degree; both are valid orthonormal bases. Pin sign at x=0
				// and check consistency instead.
				if math.Abs(math.Abs(explicit[r])-math.Abs(tv[r])) > 1e-6*(1+math.Abs(tv[r])) {
					t.Fatalf("n=%d x=%d r=%d: explicit %v vs recurrence %v",
						n, x, r, explicit[r], tv[r])
				}
			}
		}
	}
}

func TestEvaluateGramOrthonormality(t *testing.T) {
	n := 40
	d := 5
	g := make([][]float64, d+1)
	for r := range g {
		g[r] = make([]float64, d+1)
	}
	for x := 0; x < n; x++ {
		tv, err := EvaluateGram(x, d, n)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r <= d; r++ {
			for s := 0; s <= d; s++ {
				g[r][s] += tv[r] * tv[s]
			}
		}
	}
	for r := 0; r <= d; r++ {
		for s := 0; s <= d; s++ {
			want := 0.0
			if r == s {
				want = 1
			}
			if math.Abs(g[r][s]-want) > 1e-8 {
				t.Fatalf("explicit Gram matrix [%d][%d] = %v, want %v", r, s, g[r][s], want)
			}
		}
	}
}

func TestEvaluateGramValidation(t *testing.T) {
	if _, err := EvaluateGram(0, 3, 2); err == nil {
		t.Fatal("d ≥ n should error")
	}
	if _, err := EvaluateGram(0, -1, 2); err == nil {
		t.Fatal("negative degree should error")
	}
	if _, err := EvaluateGram(0, 0, 0); err == nil {
		t.Fatal("n=0 should error")
	}
}

// Property: the basis spans exactly the monomials — any degree-≤d polynomial
// sampled on the grid is perfectly reconstructed by its basis expansion.
func TestBasisSpansPolynomialsProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint8, dRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw)%60 + 2
		d := int(dRaw)%5 + 1
		if d >= n {
			d = n - 1
		}
		b, err := NewBasis(n, d)
		if err != nil {
			return false
		}
		// Random degree-d polynomial in monomial form (centered x to keep
		// conditioning sane).
		coef := make([]float64, d+1)
		for i := range coef {
			coef[i] = r.NormFloat64()
		}
		center := float64(n-1) / 2
		poly := func(x float64) float64 {
			var y float64
			for i := len(coef) - 1; i >= 0; i-- {
				y = y*(x-center) + coef[i]
			}
			return y
		}
		// Expand in the Gram basis.
		a := make([]float64, d+1)
		tv := make([]float64, d+1)
		for x := 0; x < n; x++ {
			b.Eval(float64(x), tv)
			v := poly(float64(x))
			for rr := range a {
				a[rr] += v * tv[rr]
			}
		}
		// Reconstruct and compare.
		for x := 0; x < n; x++ {
			b.Eval(float64(x), tv)
			var v float64
			for rr := range a {
				v += a[rr] * tv[rr]
			}
			if !numeric.AlmostEqual(v, poly(float64(x)), 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBasisEval(b *testing.B) {
	basis, _ := NewBasis(1024, 5)
	tv := make([]float64, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis.Eval(float64(i%1024), tv)
	}
}

func BenchmarkEvaluateGramExplicit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateGram(i%1024, 5, 1024); err != nil {
			b.Fatal(err)
		}
	}
}
