package codec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Append-into-frame helpers: the allocation-free face of the envelope
// format, used by the serving layer's zero-copy response path.
//
// The Writer/Reader pair streams through an io.Writer/io.Reader and feeds a
// running hash.Hash32 one small write at a time — the right shape for
// snapshot files, and the wrong one for a hot serving loop, where the
// interface calls and per-write CRC updates dominate the actual payload
// bytes. These helpers instead build one complete envelope in a caller-owned
// []byte (typically a pooled response buffer): header appended up front,
// payload appended in place, and the CRC-32C footer computed by one
// hardware-accelerated pass over the filled region. The bytes produced are
// identical to the Writer's for the same payload, and ParseFrame accepts
// either producer's envelopes.

// AppendFrameHeader appends the 6-byte envelope header (magic, version, tag)
// for a frame starting at len(dst) and returns the extended slice. Pair with
// FinishFrame, passing the pre-append length as the frame start.
func AppendFrameHeader(dst []byte, tag byte) []byte {
	return append(dst, Magic[0], Magic[1], Magic[2], Magic[3], Version, tag)
}

// AppendUvarint appends an unsigned varint.
func AppendUvarint(dst []byte, u uint64) []byte {
	return binary.AppendUvarint(dst, u)
}

// AppendVarint appends a zig-zag signed varint.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendFloat64 appends the raw IEEE-754 bits, little-endian — bit-identical
// to Writer.Float64.
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendDeltaInts appends a strictly increasing integer sequence exactly as
// Writer.DeltaInts does: length prefix, first element as a varint, gaps as
// uvarints. Like the Writer it panics on a non-increasing sequence —
// encoders only pass validated boundaries.
func AppendDeltaInts(dst []byte, xs []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(xs)))
	prev := 0
	for i, x := range xs {
		if i == 0 {
			dst = binary.AppendVarint(dst, int64(x))
		} else {
			if x <= prev {
				panic(fmt.Sprintf("codec: DeltaInts not strictly increasing: %d after %d", x, prev))
			}
			dst = binary.AppendUvarint(dst, uint64(x-prev))
		}
		prev = x
	}
	return dst
}

// AppendPackedFloat64s appends a length prefix followed by the XOR-delta
// byte-aligned packing Writer.PackedFloat64s produces — bit-identical bytes,
// no intermediate buffer.
func AppendPackedFloat64s(dst []byte, fs []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(fs)))
	var prev uint64
	for i := 0; i < len(fs); i += 2 {
		x1 := math.Float64bits(fs[i]) ^ prev
		prev = math.Float64bits(fs[i])
		lz1 := leadingZeroBytes(x1)
		var x2 uint64
		lz2 := 8
		if i+1 < len(fs) {
			x2 = math.Float64bits(fs[i+1]) ^ prev
			prev = math.Float64bits(fs[i+1])
			lz2 = leadingZeroBytes(x2)
		}
		dst = append(dst, byte(lz1<<4)|byte(lz2))
		dst = appendBigEndianTail(dst, x1, 8-lz1)
		if i+1 < len(fs) {
			dst = appendBigEndianTail(dst, x2, 8-lz2)
		}
	}
	return dst
}

// appendBigEndianTail appends the low nb bytes of x, most significant first.
func appendBigEndianTail(dst []byte, x uint64, nb int) []byte {
	for b := nb - 1; b >= 0; b-- {
		dst = append(dst, byte(x>>(8*b)))
	}
	return dst
}

// FinishFrame closes the envelope that starts at dst[frameStart:]: it
// computes the CRC-32C over the filled region (header through payload) in
// one pass and appends the 4-byte footer, returning the completed slice.
func FinishFrame(dst []byte, frameStart int) []byte {
	sum := crc32.Checksum(dst[frameStart:], castagnoli)
	return append(dst, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

// ParseFrame validates one complete envelope held in buf — magic, version,
// and the CRC-32C footer over everything before it — and returns the type
// tag plus the payload bytes between header and footer. The payload is a
// sub-slice of buf (no copy); callers decode it with FramePayload. Because
// the checksum is verified up front in one pass, payload decoding needs no
// incremental hashing at all.
func ParseFrame(buf []byte) (tag byte, payload []byte, err error) {
	if len(buf) < 10 { // 6-byte header + 4-byte footer
		return 0, nil, fmt.Errorf("codec: frame of %d bytes is shorter than an empty envelope", len(buf))
	}
	if [4]byte(buf[:4]) != Magic {
		return 0, nil, fmt.Errorf("codec: bad magic %q", buf[:4])
	}
	if buf[4] != Version {
		return 0, nil, fmt.Errorf("codec: unsupported format version %d (have %d)", buf[4], Version)
	}
	body, foot := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := binary.LittleEndian.Uint32(foot), crc32.Checksum(body, castagnoli); got != want {
		return 0, nil, fmt.Errorf("%w: footer %08x, computed %08x", ErrChecksum, got, want)
	}
	return buf[5], body[6:], nil
}

// FramePayload is a cursor over a ParseFrame payload: the zero-allocation
// counterpart of Reader's payload methods. The checksum has already been
// verified by ParseFrame, so methods only validate shape. Methods return an
// error rather than panicking, whatever the bytes — decoding untrusted data
// is the point.
type FramePayload struct {
	buf []byte
	off int
}

// NewFramePayload wraps payload bytes returned by ParseFrame.
func NewFramePayload(payload []byte) FramePayload {
	return FramePayload{buf: payload}
}

// Uvarint reads an unsigned varint.
func (p *FramePayload) Uvarint() (uint64, error) {
	u, n := binary.Uvarint(p.buf[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("codec: reading uvarint at offset %d", p.off)
	}
	p.off += n
	return u, nil
}

// Varint reads a zig-zag signed varint.
func (p *FramePayload) Varint() (int64, error) {
	v, n := binary.Varint(p.buf[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("codec: reading varint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

// SliceLen reads a length prefix under the same sanity bound Reader.SliceLen
// enforces.
func (p *FramePayload) SliceLen() (int, error) {
	u, err := p.Uvarint()
	if err != nil {
		return 0, err
	}
	if u > maxElems {
		return 0, fmt.Errorf("codec: length %d exceeds sanity bound", u)
	}
	return int(u), nil
}

// Byte reads one raw payload byte.
func (p *FramePayload) Byte() (byte, error) {
	if p.off >= len(p.buf) {
		return 0, fmt.Errorf("codec: reading byte at offset %d", p.off)
	}
	b := p.buf[p.off]
	p.off++
	return b, nil
}

// Float64 reads raw IEEE-754 bits, little-endian.
func (p *FramePayload) Float64() (float64, error) {
	if p.off+8 > len(p.buf) {
		return 0, fmt.Errorf("codec: reading float64 at offset %d", p.off)
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(p.buf[p.off:]))
	p.off += 8
	return f, nil
}

// FiniteFloat64 reads a float64 and rejects NaN and ±Inf, mirroring
// Reader.FiniteFloat64.
func (p *FramePayload) FiniteFloat64() (float64, error) {
	f, err := p.Float64()
	if err != nil {
		return 0, err
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("codec: non-finite value %v", f)
	}
	return f, nil
}

// DeltaInts reads a strictly increasing integer sequence written by
// Writer.DeltaInts or AppendDeltaInts, with the same validation the Reader
// applies (no zero gaps, bounded elements, no overflow).
func (p *FramePayload) DeltaInts() ([]int, error) {
	k, err := p.SliceLen()
	if err != nil {
		return nil, err
	}
	const maxElem = int64(1) << 48
	xs := make([]int, k)
	for i := range xs {
		if i == 0 {
			v, err := p.Varint()
			if err != nil {
				return nil, err
			}
			if v < -maxElem || v > maxElem {
				return nil, fmt.Errorf("codec: sequence start %d out of range", v)
			}
			xs[0] = int(v)
			continue
		}
		gap, err := p.Uvarint()
		if err != nil {
			return nil, err
		}
		if gap == 0 || gap > uint64(maxElem) {
			return nil, fmt.Errorf("codec: bad sequence gap %d", gap)
		}
		next := xs[i-1] + int(gap)
		if next <= xs[i-1] {
			return nil, fmt.Errorf("codec: sequence overflow at element %d", i)
		}
		xs[i] = next
	}
	return xs, nil
}

// PackedFloat64s reads a sequence written by Writer.PackedFloat64s or
// AppendPackedFloat64s into dst, reallocating it only when too small: the
// zero-allocation counterpart of Reader.PackedFloat64s, with the same
// validation (control nibbles ≤ 8, finite values only).
func (p *FramePayload) PackedFloat64s(dst []float64) ([]float64, error) {
	k, err := p.SliceLen()
	if err != nil {
		return nil, err
	}
	if cap(dst) < k {
		dst = make([]float64, k)
	} else {
		dst = dst[:k]
	}
	var prev uint64
	for i := 0; i < k; i += 2 {
		ctrl, err := p.Byte()
		if err != nil {
			return nil, err
		}
		lz1, lz2 := int(ctrl>>4), int(ctrl&0x0f)
		if lz1 > 8 || lz2 > 8 {
			return nil, fmt.Errorf("codec: bad float control nibble %#02x", ctrl)
		}
		x, err := p.bigEndianTail(8 - lz1)
		if err != nil {
			return nil, err
		}
		prev ^= x
		if dst[i], err = finite(prev); err != nil {
			return nil, err
		}
		if i+1 < k {
			x, err := p.bigEndianTail(8 - lz2)
			if err != nil {
				return nil, err
			}
			prev ^= x
			if dst[i+1], err = finite(prev); err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

// bigEndianTail reads nb big-endian bytes into the low bytes of a uint64.
func (p *FramePayload) bigEndianTail(nb int) (uint64, error) {
	if p.off+nb > len(p.buf) {
		return 0, fmt.Errorf("codec: reading %d float bytes at offset %d", nb, p.off)
	}
	var x uint64
	for _, b := range p.buf[p.off : p.off+nb] {
		x = x<<8 | uint64(b)
	}
	p.off += nb
	return x, nil
}

// Done reports whether the payload has been fully consumed; decoders call it
// last so trailing garbage inside a checksummed frame is still rejected.
func (p *FramePayload) Done() error {
	if p.off != len(p.buf) {
		return fmt.Errorf("codec: %d trailing payload bytes", len(p.buf)-p.off)
	}
	return nil
}
