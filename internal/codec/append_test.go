package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// appendFloatCases covers the packing control paths: empty, odd length, long
// runs of equal values (zero XOR bytes), sign flips, extreme magnitudes.
var appendFloatCases = [][]float64{
	nil,
	{},
	{0},
	{1.5},
	{3.25, 3.25, 3.25, 3.25, 3.25},
	{0, -0.0, 1.5, math.Pi, -math.Pi, math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64},
	{1, 2, 4, 8, 16, 32, 64, 128, 256},
	{-1e300, 1e-300, 7},
}

func TestAppendedFrameBytesMatchWriter(t *testing.T) {
	// The append path must produce byte-identical envelopes to the streaming
	// Writer for the same payload — they share one wire format, not two
	// compatible ones.
	for _, fs := range appendFloatCases {
		var buf bytes.Buffer
		w := NewWriter(&buf, TagHistogram)
		w.Int(len(fs))
		w.PackedFloat64s(fs)
		w.Varint(-12345)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		dst := AppendFrameHeader(nil, TagHistogram)
		dst = AppendUvarint(dst, uint64(len(fs)))
		dst = AppendPackedFloat64s(dst, fs)
		dst = AppendVarint(dst, -12345)
		dst = FinishFrame(dst, 0)

		if !bytes.Equal(dst, buf.Bytes()) {
			t.Fatalf("append path produced %x, Writer produced %x (case %v)", dst, buf.Bytes(), fs)
		}
	}
}

func TestAppendedFrameAtOffset(t *testing.T) {
	// Frames are appended into shared response buffers, so the frame start is
	// rarely 0; the CRC must cover only the frame's own bytes.
	prefix := []byte("junk-before-frame")
	dst := append([]byte{}, prefix...)
	start := len(dst)
	dst = AppendFrameHeader(dst, TagCDF)
	dst = AppendUvarint(dst, 3)
	dst = FinishFrame(dst, start)
	tag, payload, err := ParseFrame(dst[start:])
	if err != nil {
		t.Fatalf("ParseFrame: %v", err)
	}
	if tag != TagCDF {
		t.Fatalf("tag = %d, want %d", tag, TagCDF)
	}
	p := NewFramePayload(payload)
	if n, err := p.SliceLen(); err != nil || n != 3 {
		t.Fatalf("SliceLen = %d, %v", n, err)
	}
	if err := p.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestParseFrameRejectsCorruption(t *testing.T) {
	good := FinishFrame(AppendUvarint(AppendFrameHeader(nil, TagHistogram), 7), 0)
	if _, _, err := ParseFrame(good); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	t.Run("short", func(t *testing.T) {
		if _, _, err := ParseFrame(good[:9]); err == nil {
			t.Fatal("truncated frame accepted")
		}
	})
	t.Run("magic", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[0] ^= 0xFF
		if _, _, err := ParseFrame(bad); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[4] = Version + 1
		if _, _, err := ParseFrame(bad); err == nil {
			t.Fatal("future version accepted")
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[6] ^= 0x01
		_, _, err := ParseFrame(bad)
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("corrupted payload: err = %v, want ErrChecksum", err)
		}
	})
	t.Run("flipped footer bit", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[len(bad)-1] ^= 0x80
		if _, _, err := ParseFrame(bad); !errors.Is(err, ErrChecksum) {
			t.Fatal("corrupted footer accepted")
		}
	})
}

func TestFramePayloadCursor(t *testing.T) {
	dst := AppendFrameHeader(nil, TagHistogram)
	dst = AppendUvarint(dst, 2)
	dst = AppendVarint(dst, -9)
	dst = AppendVarint(dst, 1<<40)
	dst = FinishFrame(dst, 0)
	_, payload, err := ParseFrame(dst)
	if err != nil {
		t.Fatal(err)
	}
	p := NewFramePayload(payload)
	if n, err := p.SliceLen(); err != nil || n != 2 {
		t.Fatalf("SliceLen = %d, %v", n, err)
	}
	if v, err := p.Varint(); err != nil || v != -9 {
		t.Fatalf("Varint = %d, %v", v, err)
	}
	if v, err := p.Varint(); err != nil || v != 1<<40 {
		t.Fatalf("Varint = %d, %v", v, err)
	}
	if err := p.Done(); err != nil {
		t.Fatalf("Done on consumed payload: %v", err)
	}
	// Reading past the end must error, not panic.
	if _, err := p.Varint(); err == nil {
		t.Fatal("Varint past end succeeded")
	}
	// Trailing bytes inside a valid checksum are still a malformed body.
	q := NewFramePayload(payload)
	if _, err := q.SliceLen(); err != nil {
		t.Fatal(err)
	}
	if err := q.Done(); err == nil {
		t.Fatal("Done ignored trailing payload bytes")
	}
}

func TestFramePayloadSliceLenBound(t *testing.T) {
	dst := AppendFrameHeader(nil, TagHistogram)
	dst = AppendUvarint(dst, uint64(maxElems)+1)
	dst = FinishFrame(dst, 0)
	_, payload, err := ParseFrame(dst)
	if err != nil {
		t.Fatal(err)
	}
	p := NewFramePayload(payload)
	if _, err := p.SliceLen(); err == nil {
		t.Fatal("SliceLen accepted a length above the sanity bound")
	}
}

func TestAppendPackedFloat64sDecodableByReader(t *testing.T) {
	for _, fs := range appendFloatCases {
		dst := AppendFrameHeader(nil, TagHistogram)
		dst = AppendPackedFloat64s(dst, fs)
		dst = FinishFrame(dst, 0)
		r := NewReader(bytes.NewReader(dst))
		if _, err := r.Header(); err != nil {
			t.Fatal(err)
		}
		got, err := r.PackedFloat64s()
		if err != nil {
			t.Fatalf("PackedFloat64s(%v): %v", fs, err)
		}
		if len(got) != len(fs) {
			t.Fatalf("decoded %d floats, wrote %d", len(got), len(fs))
		}
		for i := range fs {
			if math.Float64bits(got[i]) != math.Float64bits(fs[i]) {
				t.Fatalf("float %d: %v != %v (bits differ)", i, got[i], fs[i])
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendDeltaIntsAndFloat64MatchWriter(t *testing.T) {
	// The scalar/sequence helpers added for delta frames must stay
	// bit-identical to their Writer counterparts, round-trip through the
	// FramePayload cursor, and keep the Writer's panic-on-misuse contract.
	cases := [][]int{nil, {}, {1}, {-5, 0, 3, 4, 1000}, {7, 8, 9, 1 << 20}}
	for _, xs := range cases {
		var buf bytes.Buffer
		w := NewWriter(&buf, TagHistogram)
		w.DeltaInts(xs)
		w.Float64(-math.Pi)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		dst := AppendFrameHeader(nil, TagHistogram)
		dst = AppendDeltaInts(dst, xs)
		dst = AppendFloat64(dst, -math.Pi)
		dst = FinishFrame(dst, 0)
		if !bytes.Equal(dst, buf.Bytes()) {
			t.Fatalf("append path produced %x, Writer produced %x (case %v)", dst, buf.Bytes(), xs)
		}
		_, payload, err := ParseFrame(dst)
		if err != nil {
			t.Fatal(err)
		}
		p := NewFramePayload(payload)
		got, err := p.DeltaInts()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(xs) {
			t.Fatalf("DeltaInts read %v, wrote %v", got, xs)
		}
		for i := range xs {
			if got[i] != xs[i] {
				t.Fatalf("DeltaInts read %v, wrote %v", got, xs)
			}
		}
		f, err := p.Float64()
		if err != nil || f != -math.Pi {
			t.Fatalf("Float64 = %v, %v", f, err)
		}
		if err := p.Done(); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AppendDeltaInts accepted a non-increasing sequence")
		}
	}()
	AppendDeltaInts(nil, []int{3, 3})
}
