// Package codec is the versioned binary wire format shared by every
// synopsis type in the repository: histograms, hierarchies, piecewise
// polynomials, CDFs, wavelet synopses, and the streaming maintainer /
// sharded-intake checkpoints.
//
// The paper's point is that an O(k)-number summary is a portable object —
// cheap to ship, merge, and serve. This package is the shipping layer. One
// envelope frames every object:
//
//	magic "HSYN" (4 bytes) | format version (1) | type tag (1) | payload | CRC-32C (4)
//
// and one small vocabulary encodes every payload:
//
//   - integers as (u)varints;
//   - strictly increasing integer sequences (partition boundaries, wavelet
//     coefficient indices) delta-encoded, so k boundaries over a domain of n
//     cost ~k·log₂(n/k)/7 bytes instead of 8k;
//   - float64 values as raw IEEE-754 bits, little-endian — round-trips are
//     bit-identical by construction, unlike any decimal rendering.
//
// The CRC-32C footer covers everything from the magic onward, so truncation
// and corruption are detected before a decoded object is ever used. Readers
// consume exactly the bytes of one envelope and no more, so envelopes can be
// concatenated on one stream.
//
// Per-type payload encoders live next to their types (core, piecewise,
// quantile, wavelet, synopsis, stream) as Encode*Payload / Decode*Payload
// functions over this package's Writer and Reader; the top-level package
// dispatches on the type tag. Version 1 is pinned by golden fixtures under
// testdata/ — future versions must keep decoding it.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
)

// Version is the current format version written by every encoder. Decoders
// accept exactly the versions they know how to parse (currently only 1).
const Version = 1

// Magic is the 4-byte envelope prefix.
var Magic = [4]byte{'H', 'S', 'Y', 'N'}

// Type tags identify the object inside an envelope. Values are part of the
// wire format: never renumber, only append. Tags 0xF0–0xFF are reserved for
// the HTTP serving layer's request/response body frames (internal/serve),
// which ride the same envelope machinery; synopsis tags must stay below
// that range so a query body can never be mistaken for a synopsis.
const (
	TagHistogram     byte = 1  // core.Histogram
	TagHierarchy     byte = 2  // core.Hierarchy
	TagPiecewisePoly byte = 3  // piecewise.PiecewiseFunc
	TagCDF           byte = 4  // quantile.CDF
	TagWavelet       byte = 5  // wavelet.Synopsis
	TagEstimator     byte = 6  // synopsis.Synopsis (range estimator state)
	TagMaintainer    byte = 7  // stream.Maintainer checkpoint
	TagSharded       byte = 8  // stream.Sharded checkpoint
	TagWALRecord     byte = 9  // internal/wal update-batch record (one ingest call)
	TagWALManifest   byte = 10 // internal/wal checkpoint manifest
	TagWindowed      byte = 11 // stream windowed-engine checkpoint (epoch ring; maintainer or sharded)

	// TagShardedDelta lives in the serving-reserved range on purpose: a
	// delta frame is a replication wire artifact (stream.Checkpoint deltas
	// shipped between servers), not a persistent synopsis, and must never be
	// decodable as one. internal/serve's body tags occupy 0xF0–0xF3.
	TagShardedDelta byte = 0xF4 // stream.Sharded delta checkpoint (changed shards only)
	// TagShardedDeltaW is the windowed-engine delta layout: TagShardedDelta
	// plus the window span in the header and each carried shard's epoch ring
	// after its state. It is a separate tag (not a field spliced into 0xF4)
	// so a mixed-version fleet fails loudly — an old binary rejects the
	// unknown tag instead of misparsing the extra fields, and plain engines
	// keep emitting byte-identical 0xF4 frames across the upgrade.
	TagShardedDeltaW byte = 0xF5 // stream.Sharded delta checkpoint, windowed engine
)

// castagnoli is the CRC-32C table (iSCSI polynomial), hardware-accelerated
// on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxElems bounds any single length prefix a decoder will honor. It exists
// purely to stop a corrupt or adversarial length from driving a huge
// allocation before validation can reject the payload; real synopses are
// O(k) with k orders of magnitude below this.
const maxElems = 1 << 28

// ErrChecksum is returned by Reader.Close when the footer CRC does not match
// the consumed envelope bytes.
var ErrChecksum = errors.New("codec: checksum mismatch")

// A Writer frames one object: NewWriter emits the envelope header, the
// payload methods append to the running CRC, and Close appends the footer.
// Methods are no-ops after the first error; Close reports it.
type Writer struct {
	w   io.Writer
	crc hash.Hash32
	n   int64
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter starts an envelope with the given type tag on w.
func NewWriter(w io.Writer, tag byte) *Writer {
	enc := &Writer{w: w, crc: crc32.New(castagnoli)}
	var hdr [6]byte
	copy(hdr[:4], Magic[:])
	hdr[4] = Version
	hdr[5] = tag
	enc.raw(hdr[:])
	return enc
}

// raw writes p, feeding the CRC.
func (e *Writer) raw(p []byte) {
	if e.err != nil {
		return
	}
	n, err := e.w.Write(p)
	e.n += int64(n)
	if err != nil {
		e.err = err
		return
	}
	e.crc.Write(p)
}

// Uvarint appends an unsigned varint.
func (e *Writer) Uvarint(u uint64) {
	n := binary.PutUvarint(e.buf[:], u)
	e.raw(e.buf[:n])
}

// Varint appends a zig-zag signed varint.
func (e *Writer) Varint(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

// Int appends a non-negative int as a uvarint.
func (e *Writer) Int(v int) { e.Uvarint(uint64(v)) }

// Byte appends a single byte (via the scratch buffer — no allocation).
func (e *Writer) Byte(b byte) {
	e.buf[0] = b
	e.raw(e.buf[:1])
}

// Float64 appends the raw IEEE-754 bits, little-endian.
func (e *Writer) Float64(f float64) {
	binary.LittleEndian.PutUint64(e.buf[:8], math.Float64bits(f))
	e.raw(e.buf[:8])
}

// Float64s appends a length prefix followed by the raw bits of every value.
func (e *Writer) Float64s(fs []float64) {
	e.Int(len(fs))
	for _, f := range fs {
		e.Float64(f)
	}
}

// leadingZeroBytes returns how many of x's most significant bytes are zero,
// 0..8.
func leadingZeroBytes(x uint64) int { return bits.LeadingZeros64(x|1) / 8 }

// PackedFloat64s appends a length prefix followed by the values XOR-delta
// compressed byte-aligned (the Gorilla idea, simplified): each value's bits
// are XORed with the previous value's, a 4-bit control records how many
// leading bytes of the XOR are zero, and only the remaining bytes are
// written big-endian. Neighboring histogram piece values share sign,
// exponent, and high mantissa bits, so this typically stores 6–7 bytes per
// value instead of 8 while remaining exactly bit-identical on decode.
// Control nibbles are packed two per byte ahead of their values' payloads.
func (e *Writer) PackedFloat64s(fs []float64) {
	e.Int(len(fs))
	var prev uint64
	for i := 0; i < len(fs); i += 2 {
		x1 := math.Float64bits(fs[i]) ^ prev
		prev = math.Float64bits(fs[i])
		lz1 := leadingZeroBytes(x1)
		var x2 uint64
		lz2 := 8
		if i+1 < len(fs) {
			x2 = math.Float64bits(fs[i+1]) ^ prev
			prev = math.Float64bits(fs[i+1])
			lz2 = leadingZeroBytes(x2)
		}
		e.Byte(byte(lz1<<4) | byte(lz2))
		e.bigEndianTail(x1, 8-lz1)
		if i+1 < len(fs) {
			e.bigEndianTail(x2, 8-lz2)
		}
	}
}

// bigEndianTail writes the low nb bytes of x, most significant first.
func (e *Writer) bigEndianTail(x uint64, nb int) {
	for b := nb - 1; b >= 0; b-- {
		e.buf[nb-1-b] = byte(x >> (8 * b))
	}
	e.raw(e.buf[:nb])
}

// PackedFloat64s reads a sequence written by Writer.PackedFloat64s,
// rejecting malformed control nibbles and non-finite values.
func (d *Reader) PackedFloat64s() ([]float64, error) {
	k, err := d.SliceLen()
	if err != nil {
		return nil, err
	}
	fs := make([]float64, k)
	var prev uint64
	for i := 0; i < k; i += 2 {
		ctrl, err := d.ReadByte()
		if err != nil {
			return nil, err
		}
		lz1, lz2 := int(ctrl>>4), int(ctrl&0x0f)
		if lz1 > 8 || lz2 > 8 {
			return nil, fmt.Errorf("codec: bad float control nibble %#02x", ctrl)
		}
		x, err := d.bigEndianTail(8 - lz1)
		if err != nil {
			return nil, err
		}
		prev ^= x
		if fs[i], err = finite(prev); err != nil {
			return nil, err
		}
		if i+1 < k {
			x, err := d.bigEndianTail(8 - lz2)
			if err != nil {
				return nil, err
			}
			prev ^= x
			if fs[i+1], err = finite(prev); err != nil {
				return nil, err
			}
		}
	}
	return fs, nil
}

// bigEndianTail reads nb bytes written by Writer.bigEndianTail.
func (d *Reader) bigEndianTail(nb int) (uint64, error) {
	if nb == 0 {
		return 0, nil
	}
	if err := d.fill(nb); err != nil {
		return 0, err
	}
	var x uint64
	for _, b := range d.buf[:nb] {
		x = x<<8 | uint64(b)
	}
	return x, nil
}

func finite(bits uint64) (float64, error) {
	f := math.Float64frombits(bits)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("codec: non-finite value %v", f)
	}
	return f, nil
}

// DeltaInts appends a strictly increasing integer sequence as a length
// prefix, the first element as a varint, and successive gaps as uvarints.
// It panics if the sequence is not strictly increasing — encoders only pass
// validated boundaries, and a silent wrap would corrupt the stream.
func (e *Writer) DeltaInts(xs []int) {
	e.Int(len(xs))
	prev := 0
	for i, x := range xs {
		if i == 0 {
			e.Varint(int64(x))
		} else {
			if x <= prev {
				panic(fmt.Sprintf("codec: DeltaInts not strictly increasing: %d after %d", x, prev))
			}
			e.Uvarint(uint64(x - prev))
		}
		prev = x
	}
}

// Len returns the number of bytes written so far (header included; footer
// only after Close).
func (e *Writer) Len() int64 { return e.n }

// Close appends the CRC-32C footer and returns the first error encountered.
// It does not close the underlying writer.
func (e *Writer) Close() error {
	if e.err != nil {
		return e.err
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], e.crc.Sum32())
	n, err := e.w.Write(foot[:])
	e.n += int64(n)
	if err != nil {
		e.err = err
	}
	return e.err
}

// A Reader consumes exactly one envelope from r: Header validates the magic
// and version and returns the tag, the payload methods mirror the Writer's,
// and Close reads the footer and verifies the CRC. Every method returns an
// error rather than panicking, whatever the input bytes — decoding untrusted
// data is the point.
type Reader struct {
	r   io.Reader
	crc hash.Hash32
	n   int64
	buf [8]byte
}

// NewReader wraps r for decoding one envelope.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, crc: crc32.New(castagnoli)}
}

// fill reads exactly n ≤ 8 bytes into the scratch buffer, feeding the CRC.
func (d *Reader) fill(n int) error {
	if _, err := io.ReadFull(d.r, d.buf[:n]); err != nil {
		if err == io.EOF && n > 0 {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("codec: short read: %w", err)
	}
	d.n += int64(n)
	d.crc.Write(d.buf[:n])
	return nil
}

// ReadByte reads one byte (it also makes Reader an io.ByteReader for the
// varint helpers).
func (d *Reader) ReadByte() (byte, error) {
	if err := d.fill(1); err != nil {
		return 0, err
	}
	return d.buf[0], nil
}

// Header validates the envelope prefix and returns the type tag.
func (d *Reader) Header() (tag byte, err error) {
	var hdr [6]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("codec: reading header: %w", err)
	}
	d.n += 6
	d.crc.Write(hdr[:])
	if [4]byte(hdr[:4]) != Magic {
		return 0, fmt.Errorf("codec: bad magic %q", hdr[:4])
	}
	if hdr[4] != Version {
		return 0, fmt.Errorf("codec: unsupported format version %d (have %d)", hdr[4], Version)
	}
	return hdr[5], nil
}

// Uvarint reads an unsigned varint.
func (d *Reader) Uvarint() (uint64, error) {
	u, err := binary.ReadUvarint(d)
	if err != nil {
		return 0, fmt.Errorf("codec: reading uvarint: %w", err)
	}
	return u, nil
}

// Varint reads a zig-zag signed varint.
func (d *Reader) Varint() (int64, error) {
	v, err := binary.ReadVarint(d)
	if err != nil {
		return 0, fmt.Errorf("codec: reading varint: %w", err)
	}
	return v, nil
}

// Int reads a non-negative int value (a domain size, a counter), rejecting
// only values that cannot fit an int. Length prefixes that drive allocations
// go through Len instead.
func (d *Reader) Int() (int, error) {
	u, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	if u > math.MaxInt64/2 {
		return 0, fmt.Errorf("codec: integer %d out of range", u)
	}
	return int(u), nil
}

// SliceLen reads a length prefix, additionally enforcing the maxElems
// sanity bound so a corrupt length cannot drive a huge allocation before
// payload validation gets a chance to reject it.
func (d *Reader) SliceLen() (int, error) {
	u, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	if u > maxElems {
		return 0, fmt.Errorf("codec: length %d exceeds sanity bound", u)
	}
	return int(u), nil
}

// Float64 reads raw IEEE-754 bits, little-endian.
func (d *Reader) Float64() (float64, error) {
	if err := d.fill(8); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(d.buf[:8])), nil
}

// FiniteFloat64 reads a float64 and rejects NaN and ±Inf — the binary
// equivalent of the strictness JSON decoding gets for free (JSON cannot
// carry non-finite numbers).
func (d *Reader) FiniteFloat64() (float64, error) {
	f, err := d.Float64()
	if err != nil {
		return 0, err
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("codec: non-finite value %v", f)
	}
	return f, nil
}

// Float64s reads a length-prefixed float slice, every element finite.
func (d *Reader) Float64s() ([]float64, error) {
	k, err := d.SliceLen()
	if err != nil {
		return nil, err
	}
	fs := make([]float64, k)
	for i := range fs {
		if fs[i], err = d.FiniteFloat64(); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// DeltaInts reads a strictly increasing integer sequence written by
// Writer.DeltaInts, rejecting zero gaps and overflow.
func (d *Reader) DeltaInts() ([]int, error) {
	k, err := d.SliceLen()
	if err != nil {
		return nil, err
	}
	// Elements are bounded well below overflow (but far above any length
	// bound: boundary values range over the domain size, which can be
	// billions) so the accumulation below cannot wrap undetected.
	const maxElem = int64(1) << 48
	xs := make([]int, k)
	for i := range xs {
		if i == 0 {
			v, err := d.Varint()
			if err != nil {
				return nil, err
			}
			if v < -maxElem || v > maxElem {
				return nil, fmt.Errorf("codec: sequence start %d out of range", v)
			}
			xs[0] = int(v)
			continue
		}
		gap, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		if gap == 0 || gap > uint64(maxElem) {
			return nil, fmt.Errorf("codec: bad sequence gap %d", gap)
		}
		next := xs[i-1] + int(gap)
		if next <= xs[i-1] {
			return nil, fmt.Errorf("codec: sequence overflow at element %d", i)
		}
		xs[i] = next
	}
	return xs, nil
}

// Len returns the number of bytes consumed so far (footer included only
// after Close).
func (d *Reader) Len() int64 { return d.n }

// Close reads the 4-byte footer and verifies the CRC over everything
// consumed since NewReader. It must be called after the payload is fully
// decoded; a mismatch (corruption, truncation, or a decoder that misread
// the payload shape) returns ErrChecksum.
func (d *Reader) Close() error {
	want := d.crc.Sum32()
	var foot [4]byte
	if _, err := io.ReadFull(d.r, foot[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("codec: reading checksum: %w", err)
	}
	d.n += 4
	if got := binary.LittleEndian.Uint32(foot[:]); got != want {
		return fmt.Errorf("%w: footer %08x, computed %08x", ErrChecksum, got, want)
	}
	return nil
}
