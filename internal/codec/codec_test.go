package codec

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// roundTrip frames a payload written by fill and hands the bytes to a fresh
// Reader positioned after the header.
func roundTrip(t *testing.T, tag byte, fill func(*Writer)) (*Reader, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, tag)
	fill(w)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := w.Len(); got != int64(buf.Len()) {
		t.Fatalf("Writer.Len() = %d, wrote %d bytes", got, buf.Len())
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	got, err := r.Header()
	if err != nil {
		t.Fatalf("Header: %v", err)
	}
	if got != tag {
		t.Fatalf("tag = %d, want %d", got, tag)
	}
	return r, buf.Bytes()
}

func TestScalarRoundTrip(t *testing.T) {
	ints := []int{0, 1, 127, 128, 1 << 20, maxElems}
	varints := []int64{0, -1, 1, -(1 << 40), 1 << 40}
	floats := []float64{0, -0.0, 1.5, math.Pi, -math.MaxFloat64, math.SmallestNonzeroFloat64}
	r, _ := roundTrip(t, TagHistogram, func(w *Writer) {
		for _, v := range ints {
			w.Int(v)
		}
		for _, v := range varints {
			w.Varint(v)
		}
		for _, v := range floats {
			w.Float64(v)
		}
		w.Byte(0xab)
	})
	for _, want := range ints {
		got, err := r.Int()
		if err != nil || got != want {
			t.Fatalf("Int = %d, %v; want %d", got, err, want)
		}
	}
	for _, want := range varints {
		got, err := r.Varint()
		if err != nil || got != want {
			t.Fatalf("Varint = %d, %v; want %d", got, err, want)
		}
	}
	for _, want := range floats {
		got, err := r.Float64()
		if err != nil || math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Float64 = %v, %v; want %v (bit-identical)", got, err, want)
		}
	}
	b, err := r.ReadByte()
	if err != nil || b != 0xab {
		t.Fatalf("ReadByte = %x, %v", b, err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestDeltaIntsRoundTrip(t *testing.T) {
	seqs := [][]int{
		{},
		{1},
		{-5, 0, 3},
		{1, 2, 3, 1000, 1_000_000},
	}
	for _, want := range seqs {
		r, _ := roundTrip(t, TagHistogram, func(w *Writer) { w.DeltaInts(want) })
		got, err := r.DeltaInts()
		if err != nil {
			t.Fatalf("DeltaInts(%v): %v", want, err)
		}
		if len(got) != len(want) {
			t.Fatalf("DeltaInts(%v) = %v", want, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("DeltaInts(%v) = %v", want, got)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

func TestDeltaIntsRejectsNonIncreasing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DeltaInts accepted a non-increasing sequence")
		}
	}()
	w := NewWriter(io.Discard, TagHistogram)
	w.DeltaInts([]int{3, 3})
}

func TestPackedFloat64sRoundTrip(t *testing.T) {
	seqs := [][]float64{
		{},
		{0},
		{-0.0},
		{math.Pi},
		{1, 1, 1},
		{1e-300, -1e300, 0.5, 0.5000001},
		{-1, 2, -3, 4, -5},
	}
	r := rngLike(99)
	random := make([]float64, 257)
	for i := range random {
		random[i] = float64(r()) / float64(1<<63)
	}
	seqs = append(seqs, random)
	for _, want := range seqs {
		rd, _ := roundTrip(t, TagHistogram, func(w *Writer) { w.PackedFloat64s(want) })
		got, err := rd.PackedFloat64s()
		if err != nil {
			t.Fatalf("PackedFloat64s(%v): %v", want, err)
		}
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("element %d: %v (bits %x), want %v (bits %x)",
					i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
			}
		}
		if err := rd.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// rngLike is a tiny splitmix so the test does not depend on internal/rng
// (codec must stay a leaf package).
func rngLike(seed uint64) func() int64 {
	return func() int64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return int64((z ^ (z >> 31)) >> 1)
	}
}

func TestPackedFloat64sRejects(t *testing.T) {
	// Non-finite values are rejected on decode.
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		r, _ := roundTrip(t, TagHistogram, func(w *Writer) { w.PackedFloat64s([]float64{1, bad}) })
		if _, err := r.PackedFloat64s(); err == nil {
			t.Fatalf("PackedFloat64s accepted %v", bad)
		}
	}
	// A control nibble above 8 is malformed.
	r, _ := roundTrip(t, TagHistogram, func(w *Writer) {
		w.Int(1)
		w.Byte(0x90)
	})
	if _, err := r.PackedFloat64s(); err == nil {
		t.Fatal("PackedFloat64s accepted control nibble 9")
	}
}

func TestFiniteFloat64Rejects(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		r, _ := roundTrip(t, TagHistogram, func(w *Writer) { w.Float64(bad) })
		if _, err := r.FiniteFloat64(); err == nil {
			t.Fatalf("FiniteFloat64 accepted %v", bad)
		}
	}
}

func TestHeaderRejectsBadEnvelope(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf, TagHistogram)
		w.Int(7)
		w.Close()
		return buf.Bytes()
	}()

	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:3],
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
	}
	for name, data := range cases {
		r := NewReader(bytes.NewReader(data))
		if _, err := r.Header(); err == nil {
			t.Errorf("%s: Header accepted %v", name, data)
		}
	}
}

func TestCloseDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, TagHistogram)
	w.Float64s([]float64{1, 2, 3})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip one payload byte: Close must fail with ErrChecksum.
	corrupt := append([]byte{}, data...)
	corrupt[8] ^= 0x40
	r := NewReader(bytes.NewReader(corrupt))
	if _, err := r.Header(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Float64s(); err != nil {
		// Corruption may already trip payload validation; that is fine too.
		return
	}
	if err := r.Close(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Close on corrupted envelope = %v, want ErrChecksum", err)
	}

	// Truncation before the footer must error, not succeed.
	r = NewReader(bytes.NewReader(data[:len(data)-2]))
	if _, err := r.Header(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Float64s(); err != nil {
		return
	}
	if err := r.Close(); err == nil {
		t.Fatal("Close accepted a truncated envelope")
	}
}

func TestConcatenatedEnvelopes(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		w := NewWriter(&buf, byte(i+1))
		w.Int(i * 100)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	stream := bytes.NewReader(buf.Bytes())
	for i := 0; i < 3; i++ {
		r := NewReader(stream)
		tag, err := r.Header()
		if err != nil {
			t.Fatalf("envelope %d: %v", i, err)
		}
		if tag != byte(i+1) {
			t.Fatalf("envelope %d: tag %d", i, tag)
		}
		v, err := r.Int()
		if err != nil || v != i*100 {
			t.Fatalf("envelope %d: Int = %d, %v", i, v, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("envelope %d: Close: %v", i, err)
		}
	}
	if stream.Len() != 0 {
		t.Fatalf("%d bytes left over after three envelopes", stream.Len())
	}
}
