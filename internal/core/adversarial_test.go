package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/interval"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// timeAfter gives the livelock regression a generous-but-finite deadline.
func timeAfter() <-chan time.Time { return time.After(30 * time.Second) }

// Adversarial input patterns for the merging algorithms: heavy ties (the
// selection threshold logic), alternating spikes, geometric decay, and
// pathological shapes for the pairing parity.

func fitAll(t *testing.T, q []float64, k int) []Result {
	t.Helper()
	sf := sparse.FromDense(q)
	var out []Result
	for _, o := range []Options{DefaultOptions(), PaperOptions()} {
		r1, err := ConstructHistogram(sf, k, o)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ConstructHistogramFast(sf, k, o)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r1, r2)
	}
	return out
}

func TestAdversarialAllEqual(t *testing.T) {
	q := make([]float64, 4096)
	for i := range q {
		q[i] = 3.75
	}
	for _, res := range fitAll(t, q, 3) {
		if res.Error != 0 {
			t.Fatalf("constant input error %v", res.Error)
		}
	}
}

func TestAdversarialAlternating(t *testing.T) {
	// The worst case for histogram compression: ±1 alternation has opt_k ≈
	// ‖q‖ for any small k. Errors must still never exceed the flattening of
	// the whole domain (the 1-piece error).
	n := 2048
	q := make([]float64, n)
	for i := range q {
		if i%2 == 0 {
			q[i] = 1
		} else {
			q[i] = -1
		}
	}
	whole := sparse.FromDense(q)
	onePiece := whole.FlattenError(interval.Partition{interval.New(1, n)})
	for _, res := range fitAll(t, q, 4) {
		if res.Error > onePiece+1e-9 {
			t.Fatalf("error %v exceeds 1-piece flattening %v", res.Error, onePiece)
		}
	}
}

func TestAdversarialSingleSpike(t *testing.T) {
	// One huge spike in a sea of zeros: exactly representable with 3 pieces.
	n := 100000
	q := make([]float64, n)
	q[56789] = 1e9
	for _, res := range fitAll(t, q, 3) {
		if res.Error > 1e-3 {
			t.Fatalf("spike not isolated: error %v", res.Error)
		}
	}
}

func TestAdversarialGeometricDecay(t *testing.T) {
	// Geometrically decaying values stress the error-threshold ties: every
	// pair error differs by orders of magnitude.
	n := 1024
	q := make([]float64, n)
	v := 1e12
	for i := range q {
		q[i] = v
		v *= 0.97
	}
	for _, res := range fitAll(t, q, 8) {
		if math.IsNaN(res.Error) || math.IsInf(res.Error, 0) {
			t.Fatalf("non-finite error %v", res.Error)
		}
		if err := res.Partition.Validate(n); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdversarialPrimeLengths(t *testing.T) {
	// Odd/prime interval counts exercise the unpaired-trailing-interval
	// path every round.
	r := rng.New(317)
	for _, n := range []int{2, 3, 5, 7, 11, 13, 17, 97, 997} {
		q := make([]float64, n)
		for i := range q {
			q[i] = r.NormFloat64()
		}
		sf := sparse.FromDense(q)
		res, err := ConstructHistogram(sf, 1, DefaultOptions())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := res.Partition.Validate(n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		fast, err := ConstructHistogramFast(sf, 1, DefaultOptions())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := fast.Partition.Validate(n); err != nil {
			t.Fatalf("n=%d fast: %v", n, err)
		}
	}
}

func TestAdversarialManyTiedErrors(t *testing.T) {
	// Periodic data where every candidate merge has the identical error:
	// the tie-budget logic must keep exactly the budgeted number split and
	// still terminate.
	n := 4096
	q := make([]float64, n)
	for i := range q {
		q[i] = float64(i % 2)
	}
	sf := sparse.FromDense(q)
	for _, k := range []int{1, 2, 16} {
		res, err := ConstructHistogram(sf, k, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got, max := res.Histogram.NumPieces(), DefaultOptions().TargetPieces(k); got > max {
			t.Fatalf("k=%d: %d pieces > %d under total ties", k, got, max)
		}
	}
}

func TestRegressionTieLivelock(t *testing.T) {
	// Regression for a livelock: with pair errors like [0,0,0,192,392] and
	// keep budget 3, the old tie logic let the three zero ties consume the
	// whole budget and the two strictly-greater pairs split anyway — every
	// pair split, no merge, infinite loop. Dense step data with small k and
	// the paper's δ=1000 reproduces it deterministically.
	freq := make([]float64, 100)
	for i := range freq {
		switch {
		case i < 30:
			freq[i] = 5
		case i < 70:
			freq[i] = 1
		default:
			freq[i] = 8
		}
	}
	done := make(chan Result, 1)
	go func() {
		res, err := ConstructHistogram(sparse.FromDense(freq), 3, PaperOptions())
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	select {
	case res := <-done:
		if res.Error > 1e-9 {
			t.Fatalf("step data must be recovered exactly, error %v", res.Error)
		}
		if res.Histogram.NumPieces() > PaperOptions().TargetPieces(3) {
			t.Fatalf("pieces = %d", res.Histogram.NumPieces())
		}
	case <-timeAfter():
		t.Fatal("ConstructHistogram livelocked on tied merge errors")
	}

	// Same input through the fast and generalized variants.
	fast, err := ConstructHistogramFast(sparse.FromDense(freq), 3, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fast.Error > 1e-9 {
		t.Fatalf("fastmerge error %v", fast.Error)
	}
}

func TestAdversarialHugeDynamicRange(t *testing.T) {
	// Mixing 1e-300 and 1e300 scale values must not overflow interval
	// statistics into Inf (Σq² stays ≤ ~1e301·len < MaxFloat64).
	q := []float64{1e-300, 1e-300, 1e150, 1e150, -1e150, 5, 5, 5}
	sf := sparse.FromDense(q)
	res, err := ConstructHistogram(sf, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Error) || math.IsInf(res.Error, 0) {
		t.Fatalf("error = %v", res.Error)
	}
}
