package core

import (
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/interval"
	"repro/internal/sparse"
)

// This file is core's half of the versioned binary codec (internal/codec):
// payload encoders for the two core synopsis types, plus the io.WriterTo /
// io.ReaderFrom envelope methods built on them. The payload functions are
// exported so composite types in other packages (quantile.CDF, the synopsis
// estimators, the stream checkpoints) can embed a histogram in their own
// payloads without nesting a second envelope.

// Validate checks the option parameters the way every construction entry
// point does: Delta positive and finite, Gamma ≥ 1 and finite. Workers needs
// no validation (every value has a meaning). Exported so decoders can reject
// a corrupt checkpoint's options before building anything from them.
func (o Options) Validate() error { return o.validate() }

// EncodeHistogramPayload writes the histogram's wire payload: the domain
// size, the delta-encoded piece boundaries, and the raw-bits piece values —
// the same (n, ends, values) triple MarshalJSON emits, in binary.
func EncodeHistogramPayload(w *codec.Writer, h *Histogram) {
	w.Int(h.n)
	ends := make([]int, len(h.pieces))
	for i, pc := range h.pieces {
		ends[i] = pc.Hi
	}
	w.DeltaInts(ends)
	values := make([]float64, len(h.pieces))
	for i, pc := range h.pieces {
		values[i] = pc.Value
	}
	w.PackedFloat64s(values)
}

// DecodeHistogramPayload reads and validates a histogram payload. Malformed
// partitions (gaps, overlaps, wrong final end) and non-finite values are
// rejected, exactly as strictly as UnmarshalJSON.
func DecodeHistogramPayload(r *codec.Reader) (*Histogram, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	ends, err := r.DeltaInts()
	if err != nil {
		return nil, err
	}
	part, err := interval.FromBoundaries(n, ends)
	if err != nil {
		return nil, fmt.Errorf("core: decoding histogram: %w", err)
	}
	values, err := r.PackedFloat64s()
	if err != nil {
		return nil, err
	}
	if len(values) != len(part) {
		return nil, fmt.Errorf("core: %d values for %d pieces", len(values), len(part))
	}
	pieces := make([]Piece, len(part))
	for i, iv := range part {
		pieces[i] = Piece{Interval: iv, Value: values[i]}
	}
	return &Histogram{n: n, pieces: pieces}, nil
}

// WriteTo encodes the histogram as one binary envelope (see internal/codec)
// and implements io.WriterTo. The encoding is canonical: equal histograms
// produce identical bytes, and encode→decode→encode is bit-identical.
func (h *Histogram) WriteTo(w io.Writer) (int64, error) {
	enc := codec.NewWriter(w, codec.TagHistogram)
	EncodeHistogramPayload(enc, h)
	err := enc.Close()
	return enc.Len(), err
}

// ReadFrom decodes one binary envelope into the receiver, replacing its
// pieces, and implements io.ReaderFrom. Like UnmarshalJSON it validates the
// partition before touching the receiver and drops any previously built
// query index, so a reused histogram can never serve the old partition.
func (h *Histogram) ReadFrom(r io.Reader) (int64, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return dec.Len(), err
	}
	if tag != codec.TagHistogram {
		return dec.Len(), fmt.Errorf("core: envelope holds type tag %d, not a histogram", tag)
	}
	fresh, err := DecodeHistogramPayload(dec)
	if err != nil {
		return dec.Len(), err
	}
	if err := dec.Close(); err != nil {
		return dec.Len(), err
	}
	h.n = fresh.n
	h.pieces = fresh.pieces
	// The decoded pieces replace whatever the histogram previously held; a
	// stale query index would serve the old partition.
	h.invalidateIndex()
	return dec.Len(), nil
}

// DecodeHistogram reads one histogram envelope from r.
func DecodeHistogram(r io.Reader) (*Histogram, error) {
	h := new(Histogram)
	if _, err := h.ReadFrom(r); err != nil {
		return nil, err
	}
	return h, nil
}

// EncodeSparsePayload writes a sparse function as (n, delta-encoded indices,
// raw-bits values). Exported for the stream checkpoints, which persist
// pending update logs in the same vocabulary.
func EncodeSparsePayload(w *codec.Writer, q *sparse.Func) {
	w.Int(q.N())
	entries := q.Entries()
	idxs := make([]int, len(entries))
	for i, e := range entries {
		idxs[i] = e.Index
	}
	w.DeltaInts(idxs)
	values := make([]float64, len(entries))
	for i, e := range entries {
		values[i] = e.Value
	}
	w.PackedFloat64s(values)
}

// DecodeSparsePayload reads and validates a sparse function payload:
// indices strictly increasing inside [1, n], values finite and nonzero (a
// zero would be silently dropped by the sparse constructor, breaking the
// encode→decode→encode bit-identity contract).
func DecodeSparsePayload(r *codec.Reader) (*sparse.Func, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	idxs, err := r.DeltaInts()
	if err != nil {
		return nil, err
	}
	values, err := r.PackedFloat64s()
	if err != nil {
		return nil, err
	}
	if len(values) != len(idxs) {
		return nil, fmt.Errorf("core: %d values for %d sparse indices", len(values), len(idxs))
	}
	entries := make([]sparse.Entry, len(idxs))
	for i, idx := range idxs {
		if values[i] == 0 {
			return nil, fmt.Errorf("core: zero value at sparse index %d", idx)
		}
		entries[i] = sparse.Entry{Index: idx, Value: values[i]}
	}
	q, err := sparse.New(n, entries)
	if err != nil {
		return nil, fmt.Errorf("core: decoding sparse function: %w", err)
	}
	return q, nil
}

// EncodeHierarchyPayload writes a hierarchy's wire payload: the input sparse
// function (ForK flattens it when serving a level) followed by every
// recorded level's boundaries and error.
func EncodeHierarchyPayload(w *codec.Writer, h *Hierarchy) {
	EncodeSparsePayload(w, h.q)
	w.Int(len(h.levels))
	for _, lv := range h.levels {
		w.DeltaInts(lv.Partition.Boundaries())
		w.Float64(lv.Error)
	}
}

// DecodeHierarchyPayload reads and validates a hierarchy payload. Structural
// invariants of Algorithm 2's output are enforced: at least one level, every
// level a valid partition of [1, n], strictly decreasing level sizes with
// each level refining its successor, the final level under 8 pieces (what
// makes ForK total), and non-negative finite errors.
func DecodeHierarchyPayload(r *codec.Reader) (*Hierarchy, error) {
	q, err := DecodeSparsePayload(r)
	if err != nil {
		return nil, err
	}
	numLevels, err := r.SliceLen()
	if err != nil {
		return nil, err
	}
	if numLevels < 1 {
		return nil, fmt.Errorf("core: hierarchy with no levels")
	}
	h := &Hierarchy{q: q, levels: make([]Level, 0, numLevels)}
	for li := 0; li < numLevels; li++ {
		ends, err := r.DeltaInts()
		if err != nil {
			return nil, err
		}
		part, err := interval.FromBoundaries(q.N(), ends)
		if err != nil {
			return nil, fmt.Errorf("core: decoding hierarchy level %d: %w", li, err)
		}
		e, err := r.FiniteFloat64()
		if err != nil {
			return nil, err
		}
		if e < 0 {
			return nil, fmt.Errorf("core: hierarchy level %d has negative error %v", li, e)
		}
		if li > 0 {
			prev := h.levels[li-1].Partition
			if len(part) >= len(prev) {
				return nil, fmt.Errorf("core: hierarchy level %d has %d pieces, not fewer than the %d above it",
					li, len(part), len(prev))
			}
			if !prev.Refines(part) {
				return nil, fmt.Errorf("core: hierarchy level %d is not a coarsening of level %d", li, li-1)
			}
		}
		h.levels = append(h.levels, Level{Partition: part, Error: e})
	}
	if last := len(h.levels[len(h.levels)-1].Partition); last >= 8 {
		return nil, fmt.Errorf("core: final hierarchy level has %d pieces, want < 8", last)
	}
	return h, nil
}

// WriteTo encodes the hierarchy as one binary envelope and implements
// io.WriterTo. The payload carries the input sparse function alongside the
// levels, so a decoded hierarchy answers ForK / ErrorEstimate / ParetoCurve
// identically to the original.
func (h *Hierarchy) WriteTo(w io.Writer) (int64, error) {
	enc := codec.NewWriter(w, codec.TagHierarchy)
	EncodeHierarchyPayload(enc, h)
	err := enc.Close()
	return enc.Len(), err
}

// ReadFrom decodes one binary envelope into the receiver and implements
// io.ReaderFrom. Validation happens before the receiver is touched.
func (h *Hierarchy) ReadFrom(r io.Reader) (int64, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return dec.Len(), err
	}
	if tag != codec.TagHierarchy {
		return dec.Len(), fmt.Errorf("core: envelope holds type tag %d, not a hierarchy", tag)
	}
	fresh, err := DecodeHierarchyPayload(dec)
	if err != nil {
		return dec.Len(), err
	}
	if err := dec.Close(); err != nil {
		return dec.Len(), err
	}
	*h = *fresh
	return dec.Len(), nil
}

// DecodeHierarchy reads one hierarchy envelope from r.
func DecodeHierarchy(r io.Reader) (*Hierarchy, error) {
	h := new(Hierarchy)
	if _, err := h.ReadFrom(r); err != nil {
		return nil, err
	}
	return h, nil
}
