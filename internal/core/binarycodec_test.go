package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/interval"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// adversarialVectors are the shared fixtures of the codec property tests:
// shapes that stress boundary deltas (single piece, all-singleton pieces),
// float values (negatives, denormal-scale magnitudes, exact zeros), and
// domain sizes around the index fast paths.
func adversarialVectors(t *testing.T) map[string][]float64 {
	t.Helper()
	r := rng.New(1315)
	noisy := make([]float64, 700)
	for i := range noisy {
		noisy[i] = r.NormFloat64() * math.Pow(10, float64(i%7-3))
	}
	step := make([]float64, 256)
	for i := range step {
		step[i] = float64(i / 64)
	}
	spiky := make([]float64, 300)
	for i := 0; i < len(spiky); i += 37 {
		spiky[i] = float64(i) * 1e-9
	}
	return map[string][]float64{
		"single point": {42.5},
		"two points":   {-1, 1},
		"constant":     {3, 3, 3, 3, 3, 3, 3, 3},
		"step":         step,
		"noisy":        noisy,
		"spiky sparse": spiky,
	}
}

func encodeHistogram(t *testing.T, h *Histogram) []byte {
	t.Helper()
	var buf bytes.Buffer
	if n, err := h.WriteTo(&buf); err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo = %d, %v (buffer %d)", n, err, buf.Len())
	}
	return buf.Bytes()
}

func TestHistogramBinaryRoundTripBitIdentical(t *testing.T) {
	for name, q := range adversarialVectors(t) {
		for _, k := range []int{1, 3, 17} {
			res, err := ConstructHistogram(sparse.FromDense(q), k, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			h := res.Histogram
			blob := encodeHistogram(t, h)
			back, err := DecodeHistogram(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("%s k=%d: decode: %v", name, k, err)
			}
			if back.N() != h.N() || back.NumPieces() != h.NumPieces() {
				t.Fatalf("%s k=%d: shape n=%d pieces=%d", name, k, back.N(), back.NumPieces())
			}
			for i, pc := range h.Pieces() {
				bpc := back.Pieces()[i]
				if bpc.Interval != pc.Interval || math.Float64bits(bpc.Value) != math.Float64bits(pc.Value) {
					t.Fatalf("%s k=%d: piece %d differs: %+v vs %+v", name, k, i, bpc, pc)
				}
			}
			// encode→decode→encode must produce identical bytes.
			if !bytes.Equal(blob, encodeHistogram(t, back)) {
				t.Fatalf("%s k=%d: re-encoded bytes differ", name, k)
			}
			// Every query must answer identically.
			for i := 1; i <= h.N(); i++ {
				if math.Float64bits(back.At(i)) != math.Float64bits(h.At(i)) {
					t.Fatalf("%s k=%d: At(%d) differs", name, k, i)
				}
			}
			if math.Float64bits(back.RangeSum(1, h.N())) != math.Float64bits(h.RangeSum(1, h.N())) {
				t.Fatalf("%s k=%d: RangeSum differs", name, k)
			}
		}
	}
}

func TestHistogramBinaryIsCompactVsJSON(t *testing.T) {
	// A learned-distribution summary: non-negative frequencies normalized to
	// mass 1, so piece values are full-precision small doubles — the shape
	// the paper's synopses actually ship.
	r := rng.New(23)
	q := make([]float64, 100000)
	var total float64
	for i := range q {
		q[i] = math.Abs(1 + 0.5*r.NormFloat64())
		total += q[i]
	}
	for i := range q {
		q[i] /= total
	}
	res, err := ConstructHistogram(sparse.FromDense(q), 100, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	jsonBlob, err := json.Marshal(res.Histogram)
	if err != nil {
		t.Fatal(err)
	}
	binBlob := encodeHistogram(t, res.Histogram)
	if 3*len(binBlob) > len(jsonBlob) {
		t.Fatalf("binary %d bytes vs JSON %d bytes: want ≤ 1/3", len(binBlob), len(jsonBlob))
	}
}

// TestHistogramBinaryLargeDomain is the regression test for the decoder's
// length-sanity bound leaking onto value integers: a synopsis of a huge
// domain is tiny on the wire (that is the whole point) and must round-trip
// even when n itself is far above any sane element count.
func TestHistogramBinaryLargeDomain(t *testing.T) {
	const n = 300_000_000
	h := NewHistogram(n,
		interval.Partition{interval.New(1, 1_000_000), interval.New(1_000_001, n)},
		[]float64{2.5, 0.125})
	blob := encodeHistogram(t, h)
	back, err := DecodeHistogram(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("large-domain histogram failed to decode: %v", err)
	}
	if back.N() != n || back.At(n) != 0.125 {
		t.Fatalf("large-domain round trip mangled the histogram: n=%d", back.N())
	}
}

// mutate flips or truncates encoded bytes; decoding must error, never panic
// or return a malformed histogram.
func TestHistogramBinaryRejectsMalformed(t *testing.T) {
	h := NewHistogram(10, interval.Partition{interval.New(1, 4), interval.New(5, 10)}, []float64{1, -2})
	good := encodeHistogram(t, h)

	// Wrong tag.
	var buf bytes.Buffer
	w := codec.NewWriter(&buf, codec.TagHierarchy)
	EncodeHistogramPayload(w, h)
	w.Close()
	if _, err := DecodeHistogram(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("accepted a hierarchy-tagged envelope")
	}

	// NaN value.
	buf.Reset()
	w = codec.NewWriter(&buf, codec.TagHistogram)
	w.Int(10)
	w.DeltaInts([]int{4, 10})
	w.PackedFloat64s([]float64{math.NaN(), 1})
	w.Close()
	if _, err := DecodeHistogram(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("accepted a NaN piece value")
	}

	// Partition not ending at n.
	buf.Reset()
	w = codec.NewWriter(&buf, codec.TagHistogram)
	w.Int(10)
	w.DeltaInts([]int{4, 9})
	w.PackedFloat64s([]float64{1, 2})
	w.Close()
	if _, err := DecodeHistogram(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("accepted a short partition")
	}

	// Truncations at every byte must error.
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeHistogram(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d/%d bytes", cut, len(good))
		}
	}

	// Single-bit corruption must never round-trip silently to different
	// pieces: either decoding errors (payload validation or CRC) or — never —
	// succeeds with altered content.
	for pos := 6; pos < len(good)-1; pos++ {
		bad := append([]byte{}, good...)
		bad[pos] ^= 0x10
		if got, err := DecodeHistogram(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d decoded silently to %v", pos, got)
		}
	}
}

// TestDecodeResetsQueryIndex is the regression test for the stale-index bug
// class: decoding into an already-queried histogram must drop the lazily
// built Eytzinger index, for the JSON and the binary path alike — otherwise
// At would keep serving the old partition.
func TestDecodeResetsQueryIndex(t *testing.T) {
	mkHist := func(v float64) *Histogram {
		return NewHistogram(100,
			interval.Partition{interval.New(1, 50), interval.New(51, 100)},
			[]float64{v, -v})
	}
	oldH := mkHist(1)
	newH := NewHistogram(100,
		interval.Partition{interval.New(1, 10), interval.New(11, 100)},
		[]float64{7, 9})

	t.Run("binary", func(t *testing.T) {
		h := mkHist(1)
		_ = h.At(60) // force the index to build on the old partition
		if _, err := h.ReadFrom(bytes.NewReader(encodeHistogram(t, newH))); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 100; i++ {
			if got, want := h.At(i), newH.At(i); got != want {
				t.Fatalf("At(%d) = %v after ReadFrom, want %v (stale index?)", i, got, want)
			}
		}
		if got, want := h.RangeSum(1, 100), newH.RangeSum(1, 100); got != want {
			t.Fatalf("RangeSum = %v after ReadFrom, want %v", got, want)
		}
	})

	t.Run("json", func(t *testing.T) {
		h := mkHist(1)
		_ = h.At(60)
		blob, err := json.Marshal(newH)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(blob, h); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 100; i++ {
			if got, want := h.At(i), newH.At(i); got != want {
				t.Fatalf("At(%d) = %v after UnmarshalJSON, want %v (stale index?)", i, got, want)
			}
		}
	})

	// A failed decode must leave the receiver (and its index) untouched.
	t.Run("failed decode keeps receiver", func(t *testing.T) {
		h := mkHist(3)
		_ = h.At(60)
		bad := encodeHistogram(t, newH)
		bad[len(bad)-1] ^= 0xff // corrupt the CRC footer
		if _, err := h.ReadFrom(bytes.NewReader(bad)); err == nil {
			t.Fatal("corrupted envelope decoded")
		}
		if got, want := h.At(60), oldH.At(60)*3; got != want {
			t.Fatalf("receiver changed by failed decode: At(60) = %v, want %v", got, want)
		}
	})
}

func TestHierarchyBinaryRoundTrip(t *testing.T) {
	for name, q := range adversarialVectors(t) {
		sf := sparse.FromDense(q)
		h := ConstructHierarchicalHistogram(sf)
		var buf bytes.Buffer
		if _, err := h.WriteTo(&buf); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		blob := append([]byte{}, buf.Bytes()...)
		back, err := DecodeHierarchy(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		// encode→decode→encode bit-identity.
		buf.Reset()
		if _, err := back.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, buf.Bytes()) {
			t.Fatalf("%s: re-encoded bytes differ", name)
		}
		if back.NumLevels() != h.NumLevels() {
			t.Fatalf("%s: %d levels, want %d", name, back.NumLevels(), h.NumLevels())
		}
		for _, k := range []int{1, 2, 5, 40} {
			want, err := h.ForK(k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.ForK(k)
			if err != nil {
				t.Fatalf("%s: restored ForK(%d): %v", name, k, err)
			}
			if math.Float64bits(got.Error) != math.Float64bits(want.Error) || got.Rounds != want.Rounds {
				t.Fatalf("%s: ForK(%d) meta differs", name, k)
			}
			for i := 1; i <= sf.N(); i++ {
				if math.Float64bits(got.Histogram.At(i)) != math.Float64bits(want.Histogram.At(i)) {
					t.Fatalf("%s: ForK(%d).At(%d) differs", name, k, i)
				}
			}
		}
		we, _ := h.ErrorEstimate(3)
		ge, err := back.ErrorEstimate(3)
		if err != nil || math.Float64bits(ge) != math.Float64bits(we) {
			t.Fatalf("%s: ErrorEstimate differs: %v vs %v (%v)", name, ge, we, err)
		}
	}
}

func TestHierarchyBinaryRejectsMalformed(t *testing.T) {
	q := make([]float64, 64)
	for i := range q {
		q[i] = float64(i % 9)
	}
	h := ConstructHierarchicalHistogram(sparse.FromDense(q))
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for cut := 0; cut < len(good); cut += 3 {
		if _, err := DecodeHierarchy(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d/%d bytes", cut, len(good))
		}
	}

	// Non-nested levels must be rejected: level 1 is not a coarsening of
	// level 0 here.
	var bad bytes.Buffer
	w := codec.NewWriter(&bad, codec.TagHierarchy)
	EncodeSparsePayload(w, sparse.FromDense([]float64{1, 2, 3, 4, 5, 6}))
	w.Int(2)
	w.DeltaInts([]int{2, 4, 6})
	w.Float64(0)
	w.DeltaInts([]int{3, 6})
	w.Float64(1)
	w.Close()
	if _, err := DecodeHierarchy(bytes.NewReader(bad.Bytes())); err == nil {
		t.Error("accepted non-nested hierarchy levels")
	}
}
