package core

import (
	"fmt"
	"math"

	"repro/internal/interval"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// SummaryScratch owns the reusable state of repeated summary recompactions:
// the merge-round scratch of one mergeState plus a double-buffered output
// area. A streaming maintainer recompacts (previous summary + buffered
// updates) back to O(k) pieces thousands of times over its life; routing
// every one of those runs through a single SummaryScratch makes the
// steady-state compaction path allocation-free (asserted by
// TestSummaryScratchSteadyStateAllocs), exactly like the Fit hot path.
//
// The zero value is ready to use. A SummaryScratch must not be copied after
// its first Construct call (the bound round passes point back into it), and
// is not safe for concurrent use.
type SummaryScratch struct {
	m mergeState
	// out is the double-buffered output area: Construct writes the buffer
	// the previous call did NOT return, so the previous result stays
	// readable while the next compaction consumes it — the
	// read-old-while-writing-new shape of streaming maintenance.
	out [2]struct {
		part interval.Partition
		vals []float64
	}
	cur int
}

// SummaryResult is the output of SummaryScratch.Construct. Partition and
// Values are owned by the scratch: they stay valid through the next
// Construct call on the same scratch (double buffering) and are overwritten
// by the call after that. Callers that need a longer-lived result copy them
// out (e.g. via NewHistogram, which copies).
type SummaryResult struct {
	Partition interval.Partition
	Values    []float64
	// Error is the ℓ2 distance between the output histogram and the
	// summarized input, computed exactly from the interval statistics.
	Error float64
	// Rounds is the number of merging iterations performed.
	Rounds int
}

// Construct runs the merging loop of ConstructHistogramFromSummary on the
// scratch's reusable buffers: same inputs, bit-identical outputs
// (TestSummaryScratchMatchesConstructFromSummary), no steady-state heap
// allocation once the buffers have grown to the working-set size. The
// partition and stats slices are not retained or modified.
func (s *SummaryScratch) Construct(n int, p interval.Partition, stats []sparse.Stat, k int, opts Options) (SummaryResult, error) {
	if err := opts.validate(); err != nil {
		return SummaryResult{}, err
	}
	if k < 1 {
		return SummaryResult{}, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	if err := p.Validate(n); err != nil {
		return SummaryResult{}, fmt.Errorf("core: %w", err)
	}
	if len(stats) != len(p) {
		return SummaryResult{}, fmt.Errorf("core: %d stats for %d intervals", len(stats), len(p))
	}
	if s.m.fnPairErrs == nil {
		s.m.initPasses()
	}
	s.m.workers = parallel.Resolve(opts.Workers)
	s.m.ivs = grow(s.m.ivs, len(p))
	copy(s.m.ivs, p)
	s.m.stats = grow(s.m.stats, len(stats))
	copy(s.m.stats, stats)

	rounds := s.mergeToTarget(k, opts)
	return s.emitResult(rounds), nil
}

// mergeToTarget runs merging rounds on the loaded state until it fits the
// target piece budget, returning the number of rounds performed.
func (s *SummaryScratch) mergeToTarget(k int, opts Options) int {
	target := opts.TargetPieces(k)
	keep := opts.KeepBudget(k)
	rounds := 0
	for s.m.len() > target {
		s.m.pairRound(keep)
		rounds++
	}
	return rounds
}

// emitResult copies the merge state into the output buffer the previous call
// did NOT return, and derives piece values and the exact ℓ2 error from the
// interval statistics.
func (s *SummaryScratch) emitResult(rounds int) SummaryResult {
	s.cur = 1 - s.cur
	o := &s.out[s.cur]
	o.part = grow(o.part, len(s.m.ivs))
	copy(o.part, s.m.ivs)
	o.vals = grow(o.vals, len(s.m.stats))
	var sse float64
	for i, st := range s.m.stats {
		o.vals[i] = st.Mean()
		sse += st.SSE()
	}
	return SummaryResult{
		Partition: o.part,
		Values:    o.vals,
		Error:     math.Sqrt(sse),
		Rounds:    rounds,
	}
}
