package core

import (
	"testing"

	"repro/internal/interval"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// randomSummary builds a random interval summary of [1, n] with `pieces`
// intervals: the shape a streaming compaction feeds the merging loop.
func randomSummary(r *rng.RNG, n, pieces int) (interval.Partition, []sparse.Stat) {
	// Random distinct boundaries.
	ends := map[int]bool{n: true}
	for len(ends) < pieces {
		ends[1+r.Intn(n)] = true
	}
	var part interval.Partition
	lo := 1
	for x := 1; x <= n; x++ {
		if ends[x] {
			part = append(part, interval.New(lo, x))
			lo = x + 1
		}
	}
	stats := make([]sparse.Stat, len(part))
	for i, iv := range part {
		v := r.NormFloat64() * 3
		l := float64(iv.Len())
		stats[i] = sparse.Stat{Len: iv.Len(), Sum: v * l, SumSq: v * v * l}
		if r.Float64() < 0.3 { // some intervals carry non-flat mass
			stats[i].SumSq += r.Float64() * l
		}
	}
	return part, stats
}

func TestSummaryScratchMatchesConstructFromSummary(t *testing.T) {
	// A reused scratch must produce the bit-identical partition, values,
	// error, and round count of the one-shot entry point, run after run —
	// including runs whose input is the previous run's output, the shape a
	// compaction loop creates.
	r := rng.New(421)
	var s SummaryScratch
	for trial := 0; trial < 20; trial++ {
		n := 500 + r.Intn(2000)
		pieces := 2 + r.Intn(400)
		part, stats := randomSummary(r, n, pieces)
		k := 1 + r.Intn(12)
		opts := DefaultOptions()
		if trial%3 == 0 {
			opts = PaperOptions()
		}
		opts.Workers = 1 + trial%3

		want, err := ConstructHistogramFromSummary(n, part, stats, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Construct(n, part, stats, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Error != want.Error || got.Rounds != want.Rounds {
			t.Fatalf("trial %d: (err, rounds) = (%v, %d), want (%v, %d)",
				trial, got.Error, got.Rounds, want.Error, want.Rounds)
		}
		if len(got.Partition) != len(want.Partition) {
			t.Fatalf("trial %d: %d pieces, want %d", trial, len(got.Partition), len(want.Partition))
		}
		wantPieces := want.Histogram.Pieces()
		for i := range got.Partition {
			if got.Partition[i] != wantPieces[i].Interval {
				t.Fatalf("trial %d: piece %d = %v, want %v", trial, i, got.Partition[i], wantPieces[i].Interval)
			}
			if got.Values[i] != wantPieces[i].Value {
				t.Fatalf("trial %d: value %d = %v, want %v", trial, i, got.Values[i], wantPieces[i].Value)
			}
		}
	}
}

func TestSummaryScratchDoubleBuffer(t *testing.T) {
	// The previous Construct result must stay readable while the next call
	// runs — streaming compaction reads the old summary to build the new
	// one's input.
	r := rng.New(431)
	var s SummaryScratch
	n := 3000
	part, stats := randomSummary(r, n, 300)
	prev, err := s.Construct(n, part, stats, 8, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prevPart := append(interval.Partition(nil), prev.Partition...)
	prevVals := append([]float64(nil), prev.Values...)

	part2, stats2 := randomSummary(r, n, 280)
	if _, err := s.Construct(n, part2, stats2, 8, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for i := range prevPart {
		if prev.Partition[i] != prevPart[i] || prev.Values[i] != prevVals[i] {
			t.Fatalf("previous result clobbered at piece %d by the next Construct", i)
		}
	}
}

func TestSummaryScratchSteadyStateAllocs(t *testing.T) {
	// Once the scratch has grown to the working-set size, a full compaction
	// run (load summary, merging rounds, write output) allocates nothing on
	// the serial path.
	r := rng.New(433)
	var s SummaryScratch
	n := 4000
	part, stats := randomSummary(r, n, 600)
	opts := DefaultOptions()
	opts.Workers = 1
	for i := 0; i < 3; i++ { // warm the buffers
		if _, err := s.Construct(n, part, stats, 10, opts); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.Construct(n, part, stats, 10, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state Construct allocates %v/op, want 0", allocs)
	}
}
