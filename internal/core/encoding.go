package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/interval"
)

// histogramJSON is the interchange form of a Histogram: the domain size and
// the pieces as (hi, value) pairs — the canonical O(k)-number synopsis
// representation (piece lows are implied by the previous piece's hi).
type histogramJSON struct {
	N      int             `json:"n"`
	Ends   []int           `json:"ends"`
	Values []float64       `json:"values"`
	_      json.RawMessage `json:"-"`
}

// MarshalJSON encodes the histogram as {"n":…, "ends":[…], "values":[…]}.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	enc := histogramJSON{
		N:      h.n,
		Ends:   make([]int, len(h.pieces)),
		Values: make([]float64, len(h.pieces)),
	}
	for i, pc := range h.pieces {
		enc.Ends[i] = pc.Hi
		enc.Values[i] = pc.Value
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes and validates a histogram produced by MarshalJSON.
// Malformed partitions (gaps, overlaps, wrong final end) are rejected.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var enc histogramJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return fmt.Errorf("core: decoding histogram: %w", err)
	}
	if len(enc.Ends) != len(enc.Values) {
		return fmt.Errorf("core: %d ends but %d values", len(enc.Ends), len(enc.Values))
	}
	part, err := interval.FromBoundaries(enc.N, enc.Ends)
	if err != nil {
		return fmt.Errorf("core: decoding histogram: %w", err)
	}
	pieces := make([]Piece, len(part))
	for i, iv := range part {
		pieces[i] = Piece{Interval: iv, Value: enc.Values[i]}
	}
	h.n = enc.N
	h.pieces = pieces
	// The decoded pieces replace whatever the histogram previously held; a
	// stale query index would serve the old pieces.
	h.invalidateIndex()
	return nil
}
