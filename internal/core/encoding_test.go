package core

import (
	"encoding/json"
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestHistogramJSONRoundTrip(t *testing.T) {
	r := rng.New(337)
	q := make([]float64, 300)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	res, err := ConstructHistogram(sparse.FromDense(q), 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res.Histogram)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 300 || back.NumPieces() != res.Histogram.NumPieces() {
		t.Fatalf("round trip shape: n=%d pieces=%d", back.N(), back.NumPieces())
	}
	for i := 1; i <= 300; i++ {
		if back.At(i) != res.Histogram.At(i) {
			t.Fatalf("value differs at %d", i)
		}
	}
}

func TestHistogramJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"gap":             `{"n":10,"ends":[3,10],"values":[1]}`,
		"short cover":     `{"n":10,"ends":[5],"values":[1]}`,
		"non-monotone":    `{"n":10,"ends":[7,3,10],"values":[1,2,3]}`,
		"empty":           `{"n":10,"ends":[],"values":[]}`,
		"not json":        `{`,
		"past end":        `{"n":10,"ends":[12],"values":[1]}`,
		"length mismatch": `{"n":10,"ends":[5,10],"values":[1]}`,
	}
	for name, blob := range cases {
		var h Histogram
		if err := json.Unmarshal([]byte(blob), &h); err == nil {
			t.Errorf("%s: should fail to decode", name)
		}
	}
}

func TestHistogramJSONIsCompact(t *testing.T) {
	// The synopsis promise: a k-piece histogram of a huge domain serializes
	// to O(k) bytes, not O(n).
	q := make([]float64, 100000)
	for i := range q {
		q[i] = float64(i / 25000)
	}
	res, err := ConstructHistogram(sparse.FromDense(q), 4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res.Histogram)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > 2048 {
		t.Fatalf("synopsis blob is %d bytes for %d pieces", len(blob), res.Histogram.NumPieces())
	}
}
