package core

import (
	"fmt"
	"math"

	"repro/internal/selection"
	"repro/internal/sparse"
)

// ConstructHistogramFast is the paper's "fastmerging" variant (Section 5,
// footnote 3): instead of always pairing, early rounds merge larger groups
// of consecutive intervals, so the number of rounds drops from O(log s) to
// O(log log s) while the total running time stays O(s) — the first round
// still dominates.
//
// Group sizing: with s live intervals and a keep budget K, round group size
// is g = max(2, ⌊√(s/(K+1))⌋) capped so at least K+2 groups exist. Each
// round keeps the K groups with the largest merge errors split (into their
// component intervals) and merges every other group into a single interval,
// giving s' ≈ K·g + s/g ≈ 2√(s·(K+1)) — the live count roughly square-roots
// per round until the pairing regime takes over.
//
// The approximation guarantee is the same as Algorithm 1's: a group is only
// merged when its error is not among the K largest, which is exactly the
// property the proof of Theorem 3.3 (case ii) uses, so the output still
// satisfies error ≤ √(1+δ)·opt_k with at most (2+2/δ)k + γ pieces.
func ConstructHistogramFast(q *sparse.Func, k int, opts Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	m := newMergeState(q)
	target := opts.TargetPieces(k)
	keep := opts.KeepBudget(k)
	rounds := 0
	for m.len() > target {
		g := groupSize(m.len(), keep)
		if g <= 2 {
			m.pairRound(keep)
		} else {
			m.groupRound(g, keep)
		}
		rounds++
	}
	return m.finish(q.N(), rounds), nil
}

// groupSize picks the merge-group size for a round with s live intervals and
// keep budget K: ⌊√(s/(K+1))⌋, at least 2, capped so that at least K+2
// groups exist (otherwise no group would be merged and the round could not
// make progress).
func groupSize(s, keep int) int {
	g := int(math.Sqrt(float64(s) / float64(keep+1)))
	if g < 2 {
		return 2
	}
	if maxG := s / (keep + 2); g > maxG {
		g = maxG
	}
	if g < 2 {
		return 2
	}
	return g
}

// groupRound merges consecutive groups of g intervals, keeping the `keep`
// groups with the largest merge errors split into their components. The
// trailing group of fewer than g intervals participates like any other.
func (m *mergeState) groupRound(g, keep int) int {
	s := len(m.ivs)
	numGroups := (s + g - 1) / g
	if keep >= numGroups {
		keep = numGroups - 1
	}
	if keep < 0 {
		keep = 0
	}

	m.errs = m.errs[:0]
	for u := 0; u < numGroups; u++ {
		lo := u * g
		hi := lo + g
		if hi > s {
			hi = s
		}
		st := m.stats[lo]
		for i := lo + 1; i < hi; i++ {
			st = st.Add(m.stats[i])
		}
		m.errs = append(m.errs, st.SSE())
	}

	// Tie handling mirrors pairRound: strictly-greater groups always split
	// (at most keep−1 of them); ties get only the leftover budget so no
	// round can split every group and stall.
	var cut float64
	if keep > 0 {
		cut = selection.Threshold(m.errs, keep)
	} else {
		cut = math.Inf(1)
	}
	greater := 0
	for _, e := range m.errs {
		if e > cut {
			greater++
		}
	}
	tieLeft := keep - greater
	if tieLeft < 0 {
		tieLeft = 0
	}

	m.nextIvs = m.nextIvs[:0]
	m.nextStats = m.nextStats[:0]
	for u := 0; u < numGroups; u++ {
		lo := u * g
		hi := lo + g
		if hi > s {
			hi = s
		}
		e := m.errs[u]
		tie := e == cut && tieLeft > 0
		split := e > cut || tie
		if split || hi-lo == 1 {
			if tie {
				tieLeft--
			}
			m.nextIvs = append(m.nextIvs, m.ivs[lo:hi]...)
			m.nextStats = append(m.nextStats, m.stats[lo:hi]...)
		} else {
			iv := m.ivs[lo]
			st := m.stats[lo]
			for i := lo + 1; i < hi; i++ {
				iv = iv.Union(m.ivs[i])
				st = st.Add(m.stats[i])
			}
			m.nextIvs = append(m.nextIvs, iv)
			m.nextStats = append(m.nextStats, st)
		}
	}
	m.ivs, m.nextIvs = m.nextIvs, m.ivs
	m.stats, m.nextStats = m.nextStats, m.stats
	return len(m.ivs)
}
