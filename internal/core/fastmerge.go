package core

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/sparse"
)

// ConstructHistogramFast is the paper's "fastmerging" variant (Section 5,
// footnote 3): instead of always pairing, early rounds merge larger groups
// of consecutive intervals, so the number of rounds drops from O(log s) to
// O(log log s) while the total running time stays O(s) — the first round
// still dominates.
//
// Group sizing: with s live intervals and a keep budget K, round group size
// is g = max(2, ⌊√(s/(K+1))⌋) capped so at least K+2 groups exist. Each
// round keeps the K groups with the largest merge errors split (into their
// component intervals) and merges every other group into a single interval,
// giving s' ≈ K·g + s/g ≈ 2√(s·(K+1)) — the live count roughly square-roots
// per round until the pairing regime takes over.
//
// The approximation guarantee is the same as Algorithm 1's: a group is only
// merged when its error is not among the K largest, which is exactly the
// property the proof of Theorem 3.3 (case ii) uses, so the output still
// satisfies error ≤ √(1+δ)·opt_k with at most (2+2/δ)k + γ pieces.
func ConstructHistogramFast(q *sparse.Func, k int, opts Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	m := newMergeState(q, opts.Workers)
	target := opts.TargetPieces(k)
	keep := opts.KeepBudget(k)
	rounds := 0
	for m.len() > target {
		g := groupSize(m.len(), keep)
		if g <= 2 {
			m.pairRound(keep)
		} else {
			m.groupRound(g, keep)
		}
		rounds++
	}
	return m.finish(q.N(), rounds), nil
}

// groupSize picks the merge-group size for a round with s live intervals and
// keep budget K: ⌊√(s/(K+1))⌋, at least 2, capped so that at least K+2
// groups exist (otherwise no group would be merged and the round could not
// make progress).
func groupSize(s, keep int) int {
	g := int(math.Sqrt(float64(s) / float64(keep+1)))
	if g < 2 {
		return 2
	}
	if maxG := s / (keep + 2); g > maxG {
		g = maxG
	}
	if g < 2 {
		return 2
	}
	return g
}

// groupRound merges consecutive groups of g intervals, keeping the `keep`
// groups with the largest merge errors split into their components. The
// trailing group of fewer than g intervals participates like any other.
//
// Like pairRound it runs as three chunked passes over the groups (errors,
// per-chunk decision counts, offset writes); the per-group statistics are
// accumulated left to right inside each group, so the floats match the
// serial loop exactly for every worker count. Tie handling mirrors
// pairRound: strictly-greater groups always split (at most keep−1 of them);
// ties get only the leftover budget so no round can split every group and
// stall.
func (m *mergeState) groupRound(g, keep int) int {
	s := len(m.ivs)
	numGroups := (s + g - 1) / g
	if keep >= numGroups {
		keep = numGroups - 1
	}
	if keep < 0 {
		keep = 0
	}
	m.g = g

	// Each group touches g intervals, so weigh the worker cutoff by the
	// underlying interval count, not the group count.
	w := m.roundWorkers(s)
	nc := parallel.NumChunks(numGroups, w)
	m.errs = grow(m.errs, numGroups)
	parallel.ForChunks(w, numGroups, nc, m.fnGroupErrs)

	m.cutAndTieBudgets(keep, w, nc)

	// Per-chunk output lengths in parallel, then an O(chunks) serial prefix
	// sum for the offsets — groups' ragged sizes rule out the closed-form
	// sizing pairRound uses, but the decision re-walk still parallelizes.
	parallel.ForChunks(w, numGroups, nc, m.fnGroupLen)
	total := 0
	for ci := 0; ci < nc; ci++ {
		m.chunkOff[ci] = total
		total += m.chunkOutLen[ci]
	}
	m.nextIvs = grow(m.nextIvs, total)
	m.nextStats = grow(m.nextStats, total)

	parallel.ForChunks(w, numGroups, nc, m.fnGroupWrite)
	m.ivs, m.nextIvs = m.nextIvs[:total], m.ivs
	m.stats, m.nextStats = m.nextStats[:total], m.stats
	return len(m.ivs)
}

// groupBounds returns the interval index range of group u under the current
// group size m.g.
func (m *mergeState) groupBounds(u int) (int, int) {
	lo := u * m.g
	hi := lo + m.g
	if hi > len(m.ivs) {
		hi = len(m.ivs)
	}
	return lo, hi
}

// initGroupPasses binds the groupRound chunk passes (see initPasses).
func (m *mergeState) initGroupPasses() {
	m.fnGroupErrs = func(_, ulo, uhi int) {
		for u := ulo; u < uhi; u++ {
			lo, hi := m.groupBounds(u)
			st := m.stats[lo]
			for i := lo + 1; i < hi; i++ {
				st = st.Add(m.stats[i])
			}
			m.errs[u] = st.SSE()
		}
	}
	// Output sizing: a split group emits its hi−lo component intervals, a
	// merged group emits 1. Singleton groups always pass through — whether
	// or not they hold tie budget — exactly as the serial loop decided.
	// Each chunk's length depends only on its own tie budget, so the pass
	// runs in parallel; the offsets follow from a serial prefix sum.
	m.fnGroupLen = func(ci, ulo, uhi int) {
		tieLeft := m.chunkTieUse[ci]
		out := 0
		for u := ulo; u < uhi; u++ {
			lo, hi := m.groupBounds(u)
			e := m.errs[u]
			tie := e == m.cut && tieLeft > 0
			if e > m.cut || tie || hi-lo == 1 {
				if tie {
					tieLeft--
				}
				out += hi - lo
			} else {
				out++
			}
		}
		m.chunkOutLen[ci] = out
	}
	m.fnGroupWrite = func(ci, ulo, uhi int) {
		o := m.chunkOff[ci]
		tieLeft := m.chunkTieUse[ci]
		for u := ulo; u < uhi; u++ {
			lo, hi := m.groupBounds(u)
			e := m.errs[u]
			tie := e == m.cut && tieLeft > 0
			if e > m.cut || tie || hi-lo == 1 {
				if tie {
					tieLeft--
				}
				o += copy(m.nextIvs[o:], m.ivs[lo:hi])
				copy(m.nextStats[o-(hi-lo):], m.stats[lo:hi])
			} else {
				iv := m.ivs[lo]
				st := m.stats[lo]
				for i := lo + 1; i < hi; i++ {
					iv = iv.Union(m.ivs[i])
					st = st.Add(m.stats[i])
				}
				m.nextIvs[o] = iv
				m.nextStats[o] = st
				o++
			}
		}
	}
}
