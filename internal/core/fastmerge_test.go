package core

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestFastMergePieceBound(t *testing.T) {
	r := rng.New(31)
	for _, n := range []int{100, 1000, 16384} {
		q := make([]float64, n)
		for i := range q {
			q[i] = r.NormFloat64()
		}
		sf := sparse.FromDense(q)
		for _, k := range []int{1, 5, 25} {
			for _, o := range []Options{DefaultOptions(), PaperOptions()} {
				res, err := ConstructHistogramFast(sf, k, o)
				if err != nil {
					t.Fatal(err)
				}
				if got, max := res.Histogram.NumPieces(), o.TargetPieces(k); got > max {
					t.Fatalf("n=%d k=%d: %d pieces > %d", n, k, got, max)
				}
				if err := res.Partition.Validate(n); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestFastMergeExactRecovery(t *testing.T) {
	r := rng.New(37)
	for trial := 0; trial < 15; trial++ {
		n := 64 + r.Intn(1000)
		k := 1 + r.Intn(8)
		q := randomKHistogram(r, n, k, 0)
		sf := sparse.FromDense(q)
		res, err := ConstructHistogramFast(sf, k, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		// See TestConstructHistogramExactRecovery: phantom ~1e-16 SSEs on
		// merged equal-value groups accumulate to ~1e-6.
		if res.Error > 1e-4 {
			t.Fatalf("trial %d (n=%d k=%d): error %v on exact k-histogram", trial, n, k, res.Error)
		}
	}
}

func TestFastMergeApproximationGuarantee(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 20; trial++ {
		n := 40 + r.Intn(100)
		k := 1 + r.Intn(4)
		q := randomKHistogram(r, n, k, 0.4)
		opt := optK(q, k)
		sf := sparse.FromDense(q)
		res, err := ConstructHistogramFast(sf, k, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Error > math.Sqrt2*opt+1e-9 {
			t.Fatalf("trial %d: error %v > √2·opt = %v", trial, res.Error, math.Sqrt2*opt)
		}
	}
}

func TestFastMergeFewerRounds(t *testing.T) {
	// The whole point of fastmerging: far fewer rounds than binary merging
	// on large inputs.
	r := rng.New(43)
	n := 1 << 16
	q := make([]float64, n)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	sf := sparse.FromDense(q)
	slow, err := ConstructHistogram(sf, 10, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ConstructHistogramFast(sf, 10, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fast.Rounds >= slow.Rounds {
		t.Fatalf("fast rounds %d not fewer than binary rounds %d", fast.Rounds, slow.Rounds)
	}
	t.Logf("rounds: binary=%d fast=%d", slow.Rounds, fast.Rounds)
}

func TestFastMergeValidatesInput(t *testing.T) {
	sf := sparse.FromDense([]float64{1, 2})
	if _, err := ConstructHistogramFast(sf, 0, DefaultOptions()); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := ConstructHistogramFast(sf, 1, Options{Delta: -1, Gamma: 1}); err == nil {
		t.Fatal("bad options should error")
	}
}

func TestGroupSize(t *testing.T) {
	// g ≥ 2 always; at least keep+2 groups.
	for _, c := range []struct{ s, keep int }{
		{10, 3}, {100, 3}, {100000, 11}, {8, 100}, {2, 1},
	} {
		g := groupSize(c.s, c.keep)
		if g < 2 {
			t.Fatalf("s=%d keep=%d: g=%d < 2", c.s, c.keep, g)
		}
		if g > 2 {
			numGroups := (c.s + g - 1) / g
			if numGroups < c.keep+2 {
				t.Fatalf("s=%d keep=%d g=%d: only %d groups", c.s, c.keep, g, numGroups)
			}
		}
	}
}

func TestFastMergeDeterminism(t *testing.T) {
	r := rng.New(47)
	q := make([]float64, 2048)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	sf := sparse.FromDense(q)
	a, _ := ConstructHistogramFast(sf, 7, PaperOptions())
	b, _ := ConstructHistogramFast(sf, 7, PaperOptions())
	if a.Error != b.Error || len(a.Partition) != len(b.Partition) {
		t.Fatal("fastmerge runs differ")
	}
}

func TestFastMergeAgreesWithBinaryOnQuality(t *testing.T) {
	// Fastmerging is allowed to produce a different partition but must stay
	// in the same quality class: within a factor ~2 of binary merging's
	// error on smooth data (both are ≤ √(1+δ)·opt).
	r := rng.New(53)
	n := 4096
	q := make([]float64, n)
	for i := range q {
		q[i] = math.Sin(float64(i)/100)*10 + r.NormFloat64()
	}
	sf := sparse.FromDense(q)
	slow, _ := ConstructHistogram(sf, 10, PaperOptions())
	fast, _ := ConstructHistogramFast(sf, 10, PaperOptions())
	if fast.Error > 2*slow.Error+1e-9 {
		t.Fatalf("fast error %v more than 2× binary error %v", fast.Error, slow.Error)
	}
}
