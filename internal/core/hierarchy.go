package core

import (
	"fmt"
	"math"

	"repro/internal/interval"
	"repro/internal/sparse"
)

// Level is one layer of the multi-scale hierarchy: a partition of [1, n]
// together with the exact flattening error of the input over it.
type Level struct {
	// Partition is the set of intervals I_j at this level.
	Partition interval.Partition
	// Error is ‖q̄_{I_j} − q‖₂, the exact ℓ2 error of flattening the input
	// over this level. In the learning setting this is the error estimate
	// e_t of Theorem 2.2 (within ±ε of the true distance to p).
	Error float64
}

// Hierarchy is the output of Algorithm 2: the sequence of partitions
// I_0, I_1, …, I_L with geometrically decreasing sizes. For every k there is
// a level with at most 8k pieces whose error is at most 2·opt_k
// (Theorem 3.5).
type Hierarchy struct {
	q      *sparse.Func
	levels []Level
}

// ConstructHierarchicalHistogram is Algorithm 2 (Section 3.4): starting from
// the exact initial partition I₀, each round pairs consecutive intervals,
// keeps the s/4 pairs with the largest merge errors split, and merges the
// remaining s/4 pairs, reducing the live count to ≈ 3s/4, until fewer than 8
// intervals remain. One run costs O(s) total and serves every k at once.
// It runs on all cores; use ConstructHierarchicalHistogramWorkers to pin the
// worker count.
func ConstructHierarchicalHistogram(q *sparse.Func) *Hierarchy {
	return ConstructHierarchicalHistogramWorkers(q, 0)
}

// ConstructHierarchicalHistogramWorkers is Algorithm 2 with an explicit
// worker count (0 = all cores, 1 = serial). The recorded levels are
// bit-identical for every worker count: the pair rounds use fixed chunk
// boundaries and the per-level error sums run serially in index order.
func ConstructHierarchicalHistogramWorkers(q *sparse.Func, workers int) *Hierarchy {
	m := newMergeState(q, workers)
	h := &Hierarchy{q: q}
	h.record(m)
	for m.len() >= 8 {
		keep := m.len() / 4
		m.pairRound(keep)
		h.record(m)
	}
	return h
}

func (h *Hierarchy) record(m *mergeState) {
	p := make(interval.Partition, len(m.ivs))
	copy(p, m.ivs)
	var sse float64
	for _, st := range m.stats {
		sse += st.SSE()
	}
	h.levels = append(h.levels, Level{Partition: p, Error: math.Sqrt(sse)})
}

// Levels returns the recorded levels, finest (I₀, error 0) first.
func (h *Hierarchy) Levels() []Level { return h.levels }

// NumLevels returns the number of recorded levels.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// levelFor returns the level ForK(k) serves — the first whose partition has
// at most 8k pieces (the final level, with at most 7 pieces, always
// qualifies) — along with its index. It returns an error if k < 1.
func (h *Hierarchy) levelFor(k int) (Level, error) {
	if k < 1 {
		return Level{}, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	for _, lv := range h.levels {
		if len(lv.Partition) <= 8*k {
			return lv, nil
		}
	}
	// Unreachable: the final level always has at most 7 pieces ≤ 8k.
	return h.levels[len(h.levels)-1], nil
}

// ForK returns the result for a target piece count k: the first level whose
// partition has at most 8k pieces, flattened into a histogram. By
// Theorem 3.5 its error is at most 2·opt_k. It returns an error if k < 1.
func (h *Hierarchy) ForK(k int) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	for li, lv := range h.levels {
		if len(lv.Partition) <= 8*k {
			return Result{
				Partition: lv.Partition,
				Histogram: FlattenHistogram(h.q, lv.Partition),
				Error:     lv.Error,
				Rounds:    li,
			}, nil
		}
	}
	// Unreachable: the final level always has at most 7 pieces ≤ 8k.
	last := h.levels[len(h.levels)-1]
	return Result{
		Partition: last.Partition,
		Histogram: FlattenHistogram(h.q, last.Partition),
		Error:     last.Error,
		Rounds:    len(h.levels) - 1,
	}, nil
}

// ErrorEstimate returns the error estimate e_t for target piece count k —
// the exact flattening error at the level ForK(k) would select, read off
// the level record without flattening.
func (h *Hierarchy) ErrorEstimate(k int) (float64, error) {
	lv, err := h.levelFor(k)
	if err != nil {
		return 0, err
	}
	return lv.Error, nil
}

// ParetoCurve returns, for every k in ks, the pair (pieces, error) of the
// level serving k. It is the paper's "entire Pareto curve between k and
// opt_k" read off a single O(s) run. Both values are recorded on the level,
// so the curve is read without flattening a histogram per k.
func (h *Hierarchy) ParetoCurve(ks []int) ([]int, []float64, error) {
	pieces := make([]int, len(ks))
	errs := make([]float64, len(ks))
	for i, k := range ks {
		lv, err := h.levelFor(k)
		if err != nil {
			return nil, nil, err
		}
		pieces[i] = len(lv.Partition)
		errs[i] = lv.Error
	}
	return pieces, errs, nil
}
