package core

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestHierarchyLevelSizesDecrease(t *testing.T) {
	r := rng.New(59)
	q := make([]float64, 5000)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	sf := sparse.FromDense(q)
	h := ConstructHierarchicalHistogram(sf)
	levels := h.Levels()
	if len(levels) < 2 {
		t.Fatalf("only %d levels", len(levels))
	}
	for i := 1; i < len(levels); i++ {
		if len(levels[i].Partition) >= len(levels[i-1].Partition) {
			t.Fatalf("level %d size %d did not decrease from %d",
				i, len(levels[i].Partition), len(levels[i-1].Partition))
		}
	}
	if last := len(levels[len(levels)-1].Partition); last >= 8 {
		t.Fatalf("final level has %d ≥ 8 pieces", last)
	}
	// Level errors are monotone non-decreasing as partitions coarsen.
	for i := 1; i < len(levels); i++ {
		if levels[i].Error < levels[i-1].Error-1e-9 {
			t.Fatalf("error decreased while coarsening at level %d", i)
		}
	}
	// The finest level is exact.
	if levels[0].Error != 0 {
		t.Fatalf("I0 error = %v, want 0", levels[0].Error)
	}
}

func TestHierarchyTheorem35(t *testing.T) {
	// For every k: pieces ≤ 8k and error ≤ 2·opt_k.
	r := rng.New(61)
	for trial := 0; trial < 10; trial++ {
		n := 60 + r.Intn(120)
		q := make([]float64, n)
		for i := range q {
			q[i] = r.NormFloat64() * 3
		}
		sf := sparse.FromDense(q)
		h := ConstructHierarchicalHistogram(sf)
		for k := 1; k <= 10; k++ {
			res, err := h.ForK(k)
			if err != nil {
				t.Fatal(err)
			}
			if res.Histogram.NumPieces() > 8*k {
				t.Fatalf("k=%d: %d pieces > 8k", k, res.Histogram.NumPieces())
			}
			opt := optK(q, k)
			if res.Error > 2*opt+1e-9 {
				t.Fatalf("trial %d k=%d: error %v > 2·opt = %v", trial, k, res.Error, 2*opt)
			}
		}
	}
}

func TestHierarchyExactRecovery(t *testing.T) {
	r := rng.New(67)
	for trial := 0; trial < 10; trial++ {
		n := 100 + r.Intn(400)
		k := 1 + r.Intn(6)
		q := randomKHistogram(r, n, k, 0)
		sf := sparse.FromDense(q)
		h := ConstructHierarchicalHistogram(sf)
		res, err := h.ForK(k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Error > 1e-9 {
			t.Fatalf("trial %d: error %v on exact %d-histogram", trial, res.Error, k)
		}
	}
}

func TestHierarchyErrorEstimateMatchesFlattening(t *testing.T) {
	r := rng.New(71)
	q := make([]float64, 1000)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	sf := sparse.FromDense(q)
	h := ConstructHierarchicalHistogram(sf)
	for k := 1; k <= 20; k += 3 {
		res, err := h.ForK(k)
		if err != nil {
			t.Fatal(err)
		}
		est, err := h.ErrorEstimate(k)
		if err != nil {
			t.Fatal(err)
		}
		want := res.Histogram.L2DistToDense(q)
		if !numeric.AlmostEqual(est, want, 1e-9) {
			t.Fatalf("k=%d: estimate %v, actual %v", k, est, want)
		}
	}
}

func TestHierarchyForKValidation(t *testing.T) {
	sf := sparse.FromDense([]float64{1, 2, 3})
	h := ConstructHierarchicalHistogram(sf)
	if _, err := h.ForK(0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := h.ErrorEstimate(-1); err == nil {
		t.Fatal("k<0 should error")
	}
}

func TestHierarchyLargeKReturnsExact(t *testing.T) {
	// If 8k exceeds |I0| the finest level is selected and the error is 0.
	q := []float64{5, 5, 1, 1, 9, 9, 9, 2}
	sf := sparse.FromDense(q)
	h := ConstructHierarchicalHistogram(sf)
	res, err := h.ForK(len(q))
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("error = %v, want 0 for huge k", res.Error)
	}
}

func TestHierarchyParetoCurve(t *testing.T) {
	r := rng.New(73)
	q := make([]float64, 2000)
	for i := range q {
		q[i] = math.Sin(float64(i)/50)*5 + r.NormFloat64()
	}
	sf := sparse.FromDense(q)
	h := ConstructHierarchicalHistogram(sf)
	ks := []int{1, 2, 4, 8, 16, 32}
	pieces, errs, err := h.ParetoCurve(ks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ks {
		if pieces[i] > 8*ks[i] {
			t.Fatalf("k=%d: %d pieces", ks[i], pieces[i])
		}
	}
	// Errors along the Pareto curve are non-increasing in k.
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1]+1e-9 {
			t.Fatalf("Pareto error increased at k=%d: %v -> %v", ks[i], errs[i-1], errs[i])
		}
	}
}

func TestHierarchyZeroInput(t *testing.T) {
	sf, err := sparse.New(500, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := ConstructHierarchicalHistogram(sf)
	res, err := h.ForK(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 || res.Histogram.NumPieces() != 1 {
		t.Fatal("zero function should be represented exactly by one piece")
	}
}

func TestHierarchySingleRunServesAllK(t *testing.T) {
	// One construction, many queries — the multi-scale promise. Verify the
	// queried levels are internally consistent: pieces(k) non-decreasing,
	// err(k) non-increasing.
	r := rng.New(79)
	q := make([]float64, 3000)
	for i := range q {
		q[i] = r.NormFloat64() * float64(1+i/500)
	}
	sf := sparse.FromDense(q)
	h := ConstructHierarchicalHistogram(sf)
	prevPieces, prevErr := 0, math.Inf(1)
	for k := 1; k <= 64; k *= 2 {
		res, err := h.ForK(k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Histogram.NumPieces() < prevPieces {
			t.Fatalf("pieces decreased at k=%d", k)
		}
		if res.Error > prevErr+1e-9 {
			t.Fatalf("error increased at k=%d", k)
		}
		prevPieces, prevErr = res.Histogram.NumPieces(), res.Error
	}
}
