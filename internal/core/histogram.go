// Package core implements the paper's primary contribution: the iterative
// greedy merging algorithms for near-optimal histogram approximation in
// input-sparsity time.
//
//   - ConstructHistogram is Algorithm 1 (Section 3.2): pair-merging with a
//     (1+1/δ)k "keep split" budget per round, achieving ≤ (2+2/δ)k+γ pieces
//     and error ≤ √(1+δ)·opt_k in O(s + k(1+1/δ)·log((1+1/δ)k/γ)) time
//     (Theorems 3.3, 3.4).
//   - ConstructHistogramFast is the footnote's "fastmerging" variant: it
//     merges larger groups in early rounds (group size ≈ √(s/k)), finishing
//     in O(log log) rounds with the same O(s) total time.
//   - ConstructHierarchicalHistogram is Algorithm 2 (Section 3.4): one O(s)
//     pass that produces a hierarchy of partitions such that for every k
//     some level has ≤ 8k pieces and error ≤ 2·opt_k (Theorem 3.5).
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/interval"
	"repro/internal/sparse"
)

// Piece is one interval of a histogram together with its constant value.
type Piece struct {
	interval.Interval
	Value float64
}

// Histogram is a piecewise constant function over [1, n]: the pieces
// partition [1, n] and the function takes Value on each piece. A histogram
// is immutable once constructed, which is what makes the lazily built query
// index below safe to share across concurrent readers.
type Histogram struct {
	n      int
	pieces []Piece
	// idx is the read-optimized query index (see index.go), built on the
	// first query and shared by all subsequent ones. Always access through
	// the index method.
	idx atomic.Pointer[queryIndex]
}

// NewHistogram builds a histogram from a partition of [1, n] and the
// corresponding piece values. It panics on malformed input; construction
// happens on validated internal paths.
func NewHistogram(n int, p interval.Partition, values []float64) *Histogram {
	if err := p.Validate(n); err != nil {
		panic(fmt.Sprintf("core: invalid partition: %v", err))
	}
	if len(values) != len(p) {
		panic("core: values/partition length mismatch")
	}
	pieces := make([]Piece, len(p))
	for i, iv := range p {
		pieces[i] = Piece{Interval: iv, Value: values[i]}
	}
	return &Histogram{n: n, pieces: pieces}
}

// FlattenHistogram builds the flattening q̄_I of q over partition p
// (Definition 3.1): the histogram whose value on each piece is the mean of q
// there — the ℓ2-optimal histogram on that partition.
func FlattenHistogram(q *sparse.Func, p interval.Partition) *Histogram {
	stats := q.StatsFor(p)
	values := make([]float64, len(p))
	for i, st := range stats {
		values[i] = st.Mean()
	}
	return NewHistogram(q.N(), p, values)
}

// N returns the domain size.
func (h *Histogram) N() int { return h.n }

// NumPieces returns the number of interval pieces.
func (h *Histogram) NumPieces() int { return len(h.pieces) }

// Pieces returns the pieces in domain order. Callers must not modify the
// returned slice.
func (h *Histogram) Pieces() []Piece { return h.pieces }

// Partition returns the interval partition underlying the histogram.
func (h *Histogram) Partition() interval.Partition {
	p := make(interval.Partition, len(h.pieces))
	for i, pc := range h.pieces {
		p[i] = pc.Interval
	}
	return p
}

// At returns h(i) for i ∈ [1, n] in O(log pieces) with zero allocations at
// steady state: the point location runs on the query index's Eytzinger
// boundary layout (one closure-free comparison per tree level) instead of a
// sort.Search over the pieces. For slices of points use AtBatch.
func (h *Histogram) At(i int) float64 {
	if i < 1 || i > h.n {
		panic(fmt.Sprintf("core: Histogram.At(%d) out of [1, %d]", i, h.n))
	}
	idx := h.index()
	return idx.values[idx.find(i)]
}

// atLinear is the pre-index implementation of At, kept as the reference
// oracle for the query-engine property tests: the indexed path must return
// the bit-identical value for every point.
func (h *Histogram) atLinear(i int) float64 {
	if i < 1 || i > h.n {
		panic(fmt.Sprintf("core: Histogram.At(%d) out of [1, %d]", i, h.n))
	}
	idx := sort.Search(len(h.pieces), func(j int) bool { return h.pieces[j].Hi >= i })
	return h.pieces[idx].Value
}

// RangeSumScan is the retained O(pieces) range sum: clamp every piece to
// [a, b] and accumulate in piece order. It computes the same quantity as
// RangeSum (up to floating-point accumulation order) and exists only as the
// linear baseline for the asymptotic benchmarks and the query property
// tests — serving paths use RangeSum.
func (h *Histogram) RangeSumScan(a, b int) float64 {
	if a < 1 || b > h.n || a > b {
		panic(fmt.Sprintf("core: Histogram.RangeSumScan(%d, %d) invalid for [1, %d]", a, b, h.n))
	}
	var total float64
	for _, pc := range h.pieces {
		lo, hi := pc.Lo, pc.Hi
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if lo > hi {
			continue
		}
		total += float64(hi-lo+1) * pc.Value
	}
	return total
}

// ToDense materializes the histogram as a dense vector of length n.
func (h *Histogram) ToDense() []float64 {
	out := make([]float64, h.n)
	for _, pc := range h.pieces {
		for x := pc.Lo; x <= pc.Hi; x++ {
			out[x-1] = pc.Value
		}
	}
	return out
}

// Mass returns Σᵢ h(i) = Σ pieces |I|·v. For a histogram learned from a
// distribution this is 1 (flattening preserves mass).
func (h *Histogram) Mass() float64 {
	var m float64
	for _, pc := range h.pieces {
		m += float64(pc.Len()) * pc.Value
	}
	return m
}

// L2DistToDense returns ‖h − q‖₂ against a dense vector without
// materializing h, in O(n) time and O(1) extra space.
func (h *Histogram) L2DistToDense(q []float64) float64 {
	if len(q) != h.n {
		panic("core: L2DistToDense length mismatch")
	}
	var sum float64
	for _, pc := range h.pieces {
		for x := pc.Lo; x <= pc.Hi; x++ {
			d := q[x-1] - pc.Value
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

// L2DistToSparse returns ‖h − q‖₂ for a sparse q in O(s + pieces) time: for
// every piece, the squared distance is (|I| − s_I)·v² + Σ_{nonzeros in I}
// (q(i) − v)² where s_I is the number of nonzeros inside the piece.
func (h *Histogram) L2DistToSparse(q *sparse.Func) float64 {
	if q.N() != h.n {
		panic("core: L2DistToSparse domain mismatch")
	}
	entries := q.Entries()
	ei := 0
	var sum float64
	for _, pc := range h.pieces {
		inPiece := 0
		for ei < len(entries) && entries[ei].Index <= pc.Hi {
			d := entries[ei].Value - pc.Value
			sum += d * d
			inPiece++
			ei++
		}
		zeros := pc.Len() - inPiece
		sum += float64(zeros) * pc.Value * pc.Value
	}
	return math.Sqrt(sum)
}

// String renders a short description like "Histogram{n=100, 5 pieces}".
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Histogram{n=%d, %d pieces}", h.n, len(h.pieces))
	return b.String()
}
