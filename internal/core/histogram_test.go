package core

import (
	"testing"

	"repro/internal/interval"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestNewHistogramValidation(t *testing.T) {
	p := interval.Partition{interval.New(1, 2), interval.New(3, 5)}
	h := NewHistogram(5, p, []float64{1, 2})
	if h.N() != 5 || h.NumPieces() != 2 {
		t.Fatal("basic accessors wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched values length should panic")
		}
	}()
	NewHistogram(5, p, []float64{1})
}

func TestHistogramAtAndToDense(t *testing.T) {
	p := interval.Partition{interval.New(1, 3), interval.New(4, 4), interval.New(5, 8)}
	h := NewHistogram(8, p, []float64{1.5, -2, 0.25})
	want := []float64{1.5, 1.5, 1.5, -2, 0.25, 0.25, 0.25, 0.25}
	dense := h.ToDense()
	for i, w := range want {
		if dense[i] != w {
			t.Fatalf("ToDense[%d] = %v, want %v", i, dense[i], w)
		}
		if h.At(i+1) != w {
			t.Fatalf("At(%d) = %v, want %v", i+1, h.At(i+1), w)
		}
	}
}

func TestHistogramAtPanics(t *testing.T) {
	h := NewHistogram(3, interval.Partition{interval.New(1, 3)}, []float64{1})
	for _, i := range []int{0, 4} {
		func(i int) {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) should panic", i)
				}
			}()
			h.At(i)
		}(i)
	}
}

func TestHistogramMass(t *testing.T) {
	p := interval.Partition{interval.New(1, 2), interval.New(3, 6)}
	h := NewHistogram(6, p, []float64{0.25, 0.125})
	if got := h.Mass(); got != 1 {
		t.Fatalf("Mass = %v, want 1", got)
	}
}

func TestHistogramPartitionRoundTrip(t *testing.T) {
	p := interval.Partition{interval.New(1, 4), interval.New(5, 9)}
	h := NewHistogram(9, p, []float64{1, 2})
	got := h.Partition()
	if len(got) != 2 || got[0] != p[0] || got[1] != p[1] {
		t.Fatalf("Partition = %v", got)
	}
}

func TestL2DistConsistency(t *testing.T) {
	r := rng.New(3)
	q := make([]float64, 200)
	for i := range q {
		if r.Float64() < 0.4 {
			q[i] = r.NormFloat64()
		}
	}
	sf := sparse.FromDense(q)
	p := interval.Uniform(200, 13)
	h := FlattenHistogram(sf, p)

	dense := h.L2DistToDense(q)
	sparseDist := h.L2DistToSparse(sf)
	naive := numeric.L2Dist(h.ToDense(), q)
	flatErr := sf.FlattenError(p)

	for name, got := range map[string]float64{
		"L2DistToDense":  dense,
		"L2DistToSparse": sparseDist,
		"FlattenError":   flatErr,
	} {
		if !numeric.AlmostEqual(got, naive, 1e-9) {
			t.Fatalf("%s = %v, naive = %v", name, got, naive)
		}
	}
}

func TestFlattenHistogramIsOptimalOnPartition(t *testing.T) {
	// The flattening minimizes ℓ2 error among all histograms on the same
	// partition; compare against a perturbed histogram.
	q := []float64{1, 2, 3, 10, 11, 12}
	sf := sparse.FromDense(q)
	p := interval.Partition{interval.New(1, 3), interval.New(4, 6)}
	h := FlattenHistogram(sf, p)
	if h.At(1) != 2 || h.At(6) != 11 {
		t.Fatalf("flattening means wrong: %v, %v", h.At(1), h.At(6))
	}
	base := h.L2DistToDense(q)
	worse := NewHistogram(6, p, []float64{2.1, 11})
	if worse.L2DistToDense(q) < base {
		t.Fatal("perturbed histogram beat the flattening")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(4, interval.Partition{interval.New(1, 4)}, []float64{1})
	if got := h.String(); got != "Histogram{n=4, 1 pieces}" {
		t.Fatalf("String = %q", got)
	}
}
