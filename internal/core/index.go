package core

import (
	"fmt"
	"math/bits"

	"repro/internal/parallel"
)

// queryIndex is the read-optimized serving structure behind Histogram.At,
// PieceIndex, RangeSum and the batched query APIs: a structure-of-arrays
// snapshot of the pieces (flat boundary and value arrays instead of []Piece),
// the left-to-right prefix masses that turn range sums into O(1) arithmetic,
// and an Eytzinger (BFS) layout of the boundaries so the point-location
// binary search is closure-free and branch-predictor friendly.
//
// The index is immutable once built. Histograms are immutable after
// construction (Pieces is documented read-only), so the index is built
// lazily on the first query and shared by every subsequent reader; see
// Histogram.index for the publication protocol.
type queryIndex struct {
	// ends[j] = pieces[j].Hi in domain order; ends[k-1] = n. The piece lows
	// are implied: lo_j = ends[j-1]+1, lo_0 = 1.
	ends []int
	// values[j] = pieces[j].Value in domain order.
	values []float64
	// prefix[j] = Σ_{i<j} |I_i|·v_i, accumulated left to right with plain
	// float64 additions; prefix[0] = 0 and prefix[k] = Mass(). The exact
	// addition order is part of the query semantics: RangeSum differences
	// two of these prefixes, and the bit-identity tests replay the same
	// accumulation sequence linearly.
	prefix []float64
	// eytz[1..k] holds ends in BFS order (slot 0 unused): the children of
	// slot j are 2j and 2j+1, so the search touches one cache line per
	// level instead of striding across the sorted array.
	eytz []int
	// rank maps an eytz slot back to the domain-order piece position.
	rank []int32
}

// buildQueryIndex snapshots the pieces into the SoA arrays. O(k) time,
// called at most once per histogram per publication race (losing builders
// are discarded).
func buildQueryIndex(pieces []Piece) *queryIndex {
	k := len(pieces)
	idx := &queryIndex{
		ends:   make([]int, k),
		values: make([]float64, k),
		prefix: make([]float64, k+1),
		eytz:   make([]int, k+1),
		rank:   make([]int32, k+1),
	}
	for j, pc := range pieces {
		idx.ends[j] = pc.Hi
		idx.values[j] = pc.Value
		idx.prefix[j+1] = idx.prefix[j] + float64(pc.Len())*pc.Value
	}
	pos := 0
	var fill func(slot int)
	fill = func(slot int) {
		if slot > k {
			return
		}
		fill(2 * slot)
		idx.eytz[slot] = idx.ends[pos]
		idx.rank[slot] = int32(pos)
		pos++
		fill(2*slot + 1)
	}
	fill(1)
	return idx
}

// find returns the domain-order position of the piece containing x, i.e. the
// first j with ends[j] ≥ x. The caller guarantees 1 ≤ x ≤ n, so a containing
// piece always exists. The loop is the Eytzinger lower-bound walk: one
// comparison per tree level, no closure, and a data-dependent increment the
// compiler can lower to a conditional move.
func (idx *queryIndex) find(x int) int {
	k := len(idx.ends)
	j := 1
	for j <= k {
		step := 0
		if idx.eytz[j] < x {
			step = 1
		}
		j = 2*j + step
	}
	// Undo the virtual descent: strip the trailing 1-bits (right turns past
	// the answer) and the final level bit to land on the lower-bound slot.
	j >>= bits.TrailingZeros(^uint(j)) + 1
	return int(idx.rank[j])
}

// findFrom is find with a locality fast path for sorted or clustered query
// batches: if x lands in the piece found by the previous query in the batch
// (or the one immediately after it), no search runs. The result is the same
// position find returns — the fast path only short-circuits the walk.
func (idx *queryIndex) findFrom(last, x int) int {
	if last >= 0 && last < len(idx.ends) && x <= idx.ends[last] {
		if last == 0 || x > idx.ends[last-1] {
			return last
		}
	} else if next := last + 1; last >= 0 && next < len(idx.ends) &&
		x > idx.ends[next-1] && x <= idx.ends[next] {
		return next
	}
	return idx.find(x)
}

// lo returns the first domain point of piece j.
func (idx *queryIndex) lo(j int) int {
	if j == 0 {
		return 1
	}
	return idx.ends[j-1] + 1
}

// rangeSum returns Σ_{i=a}^{b} h(i) for a validated 1 ≤ a ≤ b ≤ n in O(log k):
// two point locations, then O(1) arithmetic — the two partial edge pieces
// computed directly (so sub-piece queries never difference large prefixes)
// plus the prefix-mass difference of the whole pieces strictly between them.
func (idx *queryIndex) rangeSum(a, b int) float64 {
	pa := idx.find(a)
	if b <= idx.ends[pa] {
		return float64(b-a+1) * idx.values[pa]
	}
	pb := idx.find(b)
	left := float64(idx.ends[pa]-a+1) * idx.values[pa]
	mid := idx.prefix[pb] - idx.prefix[pa+1]
	right := float64(b-idx.lo(pb)+1) * idx.values[pb]
	return left + mid + right
}

// index returns the histogram's query index, building it on first use.
// Publication is a CompareAndSwap on an atomic pointer: concurrent first
// queries may each build an index, but every build is identical (a pure
// function of the immutable pieces) and exactly one survives, so readers
// never observe a partially built structure and results are deterministic.
func (h *Histogram) index() *queryIndex {
	if idx := h.idx.Load(); idx != nil {
		return idx
	}
	idx := buildQueryIndex(h.pieces)
	if h.idx.CompareAndSwap(nil, idx) {
		return idx
	}
	return h.idx.Load()
}

// invalidateIndex drops a previously built index after the pieces change
// (only UnmarshalJSON mutates a histogram in place).
func (h *Histogram) invalidateIndex() { h.idx.Store(nil) }

// PieceIndex returns the position (in Pieces() order) of the piece containing
// x ∈ [1, n], in O(log pieces) with no allocation. It panics on out-of-range
// x, like At.
func (h *Histogram) PieceIndex(x int) int {
	if x < 1 || x > h.n {
		panic(fmt.Sprintf("core: Histogram.PieceIndex(%d) out of [1, %d]", x, h.n))
	}
	return h.index().find(x)
}

// RangeSum returns the exact sum Σ_{i=a}^{b} h(i) over the inclusive range
// [a, b] ⊆ [1, n] in O(log pieces) time and zero allocations: two indexed
// point locations plus O(1) prefix-mass arithmetic. For a synopsis histogram
// this is the range-count estimate under the standard uniform-spread
// assumption. It panics if the range is invalid; error-returning validation
// lives in the synopsis layer.
func (h *Histogram) RangeSum(a, b int) float64 {
	if a < 1 || b > h.n || a > b {
		panic(fmt.Sprintf("core: Histogram.RangeSum(%d, %d) invalid for [1, %d]", a, b, h.n))
	}
	return h.index().rangeSum(a, b)
}

// batchWorkers resolves a Workers knob against a batch size: parallel
// dispatch below MinGrain queries costs more than it saves.
func batchWorkers(workers, batch int) int {
	w := parallel.Resolve(workers)
	if batch < parallel.MinGrain {
		return 1
	}
	return w
}

// atChunk answers the point queries xs[lo:hi] into out[lo:hi]: the serial
// kernel both the single-threaded batch path and every parallel worker run.
// It is a standalone function (not a closure) so the serial path stays
// allocation-free.
func (idx *queryIndex) atChunk(n int, xs []int, out []float64, lo, hi int) {
	last := -1
	for qi := lo; qi < hi; qi++ {
		x := xs[qi]
		if x < 1 || x > n {
			panic(fmt.Sprintf("core: Histogram.AtBatch point %d out of [1, %d]", x, n))
		}
		last = idx.findFrom(last, x)
		out[qi] = idx.values[last]
	}
}

// rangeSumChunk answers the range queries [as[i], bs[i]] for i in [lo, hi)
// into out: the shared serial/parallel batch kernel, with the sorted-query
// locality fast path on the left endpoints.
func (idx *queryIndex) rangeSumChunk(n int, as, bs []int, out []float64, lo, hi int) {
	last := -1
	for qi := lo; qi < hi; qi++ {
		a, b := as[qi], bs[qi]
		if a < 1 || b > n || a > b {
			panic(fmt.Sprintf("core: Histogram.RangeSumBatch range [%d, %d] invalid for [1, %d]", a, b, n))
		}
		pa := idx.findFrom(last, a)
		last = pa
		if b <= idx.ends[pa] {
			out[qi] = float64(b-a+1) * idx.values[pa]
			continue
		}
		pb := idx.find(b)
		left := float64(idx.ends[pa]-a+1) * idx.values[pa]
		mid := idx.prefix[pb] - idx.prefix[pa+1]
		right := float64(b-idx.lo(pb)+1) * idx.values[pb]
		out[qi] = left + mid + right
	}
}

// AtBatch evaluates h at every point of xs, writing results into out (which
// is grown if shorter than xs) and returning it. Each query produces the
// bit-identical value At returns, for every workers setting — the
// Options.Workers convention: any value ≤ 0 means all cores (GOMAXPROCS),
// 1 forces the serial path, any other positive value is used as given;
// batches below the parallel grain run serially regardless, as a pure
// performance heuristic. Consecutive queries hitting the same piece skip
// the search entirely, so sorted batches run fastest; the serial path with
// a reused output slice performs zero allocations. Panics on out-of-range
// points, like At.
func (h *Histogram) AtBatch(xs []int, out []float64, workers int) []float64 {
	if cap(out) < len(xs) {
		out = make([]float64, len(xs))
	}
	out = out[:len(xs)]
	idx := h.index()
	w := batchWorkers(workers, len(xs))
	if w <= 1 {
		idx.atChunk(h.n, xs, out, 0, len(xs))
		return out
	}
	parallel.ForChunks(w, len(xs), w, func(_, lo, hi int) {
		idx.atChunk(h.n, xs, out, lo, hi)
	})
	return out
}

// RangeSumBatch answers the ranges [as[i], bs[i]] into out (grown if needed)
// and returns it. Per-query results are bit-identical to RangeSum for every
// workers setting (the Options.Workers convention: ≤ 0 = all cores, 1 =
// serial, other positive values as given, sub-grain batches serial); the
// batch only amortizes index access and exploits sorted-query locality on
// the left endpoints, and the serial path with a reused output slice
// performs zero allocations. Panics on invalid ranges or if
// len(as) ≠ len(bs).
func (h *Histogram) RangeSumBatch(as, bs []int, out []float64, workers int) []float64 {
	if len(as) != len(bs) {
		panic(fmt.Sprintf("core: Histogram.RangeSumBatch: %d starts vs %d ends", len(as), len(bs)))
	}
	if cap(out) < len(as) {
		out = make([]float64, len(as))
	}
	out = out[:len(as)]
	idx := h.index()
	w := batchWorkers(workers, len(as))
	if w <= 1 {
		idx.rangeSumChunk(h.n, as, bs, out, 0, len(as))
		return out
	}
	parallel.ForChunks(w, len(as), w, func(_, lo, hi int) {
		idx.rangeSumChunk(h.n, as, bs, out, lo, hi)
	})
	return out
}
