package core

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/parallel"
)

// queryIndex is the read-optimized serving structure behind Histogram.At,
// PieceIndex, RangeSum and the batched query APIs: a structure-of-arrays
// snapshot of the pieces (flat boundary and value arrays instead of []Piece),
// the left-to-right prefix masses that turn range sums into O(1) arithmetic,
// and an Eytzinger (BFS) layout of the boundaries so the point-location
// binary search is closure-free and branch-predictor friendly.
//
// The Eytzinger tree is padded to a perfect tree (the next power of two)
// with +inf sentinel boundaries in the spare in-order slots. That buys two
// things: the scalar descent becomes a fixed-trip-count, fully branchless
// loop (no j ≤ k exit test feeding the branch predictor), and — the point —
// every search descends exactly the same number of levels, so findLanes can
// advance a whole batch of independent queries one tree level per iteration
// with their boundary loads overlapping in flight instead of serializing on
// cache misses.
//
// The index is immutable once built. Histograms are immutable after
// construction (Pieces is documented read-only), so the index is built
// lazily on the first query and shared by every subsequent reader; see
// Histogram.index for the publication protocol.
type queryIndex struct {
	// ends[j] = pieces[j].Hi in domain order; ends[k-1] = n. The piece lows
	// are implied: lo_j = ends[j-1]+1, lo_0 = 1.
	ends []int
	// values[j] = pieces[j].Value in domain order.
	values []float64
	// prefix[j] = Σ_{i<j} |I_i|·v_i, accumulated left to right with plain
	// float64 additions; prefix[0] = 0 and prefix[k] = Mass(). The exact
	// addition order is part of the query semantics: RangeSum differences
	// two of these prefixes, and the bit-identity tests replay the same
	// accumulation sequence linearly.
	prefix []float64
	// eytz[1..m-1] holds ends in BFS order over a perfect tree (slot 0
	// unused, m = len(eytz) a power of two): the children of slot j are 2j
	// and 2j+1, so the search touches one cache line per level instead of
	// striding across the sorted array. In-order slots past the k real
	// boundaries hold math.MaxInt sentinels, so every descent runs exactly
	// log₂(m) levels.
	eytz []int
	// rank maps an eytz slot back to the domain-order piece position
	// (sentinel slots map past the end and are never returned for in-range
	// queries).
	rank []int32
}

// batchLanes is the software-pipeline width of the batched point-location
// kernels: findLanes advances up to this many independent descents one tree
// level per pass, enough to cover the latency of an L2/L3 boundary load with
// the seven other lanes' loads.
const batchLanes = 8

// buildQueryIndex snapshots the pieces into the SoA arrays. O(k) time,
// called at most once per histogram per publication race (losing builders
// are discarded).
func buildQueryIndex(pieces []Piece) *queryIndex {
	k := len(pieces)
	// m is the smallest power of two with m-1 ≥ k tree slots.
	m := 1
	for m-1 < k {
		m <<= 1
	}
	idx := &queryIndex{
		ends:   make([]int, k),
		values: make([]float64, k),
		prefix: make([]float64, k+1),
		eytz:   make([]int, m),
		rank:   make([]int32, m),
	}
	for j, pc := range pieces {
		idx.ends[j] = pc.Hi
		idx.values[j] = pc.Value
		idx.prefix[j+1] = idx.prefix[j] + float64(pc.Len())*pc.Value
	}
	pos := 0
	var fill func(slot int)
	fill = func(slot int) {
		if slot >= m {
			return
		}
		fill(2 * slot)
		if pos < k {
			idx.eytz[slot] = idx.ends[pos]
			idx.rank[slot] = int32(pos)
		} else {
			// Sentinel: larger than any in-range query, so padded levels
			// always descend left. rank points past the real pieces so a
			// contract violation (x above the domain) fails loudly instead
			// of answering from the wrong piece.
			idx.eytz[slot] = math.MaxInt
			idx.rank[slot] = int32(k)
		}
		pos++
		fill(2*slot + 1)
	}
	fill(1)
	return idx
}

// find returns the domain-order position of the piece containing x, i.e. the
// first j with ends[j] ≥ x. The caller guarantees 1 ≤ x ≤ n, so a containing
// piece always exists. The loop is the branchless Eytzinger lower-bound walk
// over the sentinel-padded perfect tree: exactly log₂(m) iterations, one
// data-dependent increment per level the compiler lowers to a conditional
// move.
func (idx *queryIndex) find(x int) int {
	eytz := idx.eytz
	j := 1
	for j < len(eytz) {
		step := 0
		if eytz[j] < x {
			step = 1
		}
		j = 2*j + step
	}
	// Undo the descent: strip the trailing 1-bits (right turns past the
	// answer) and the final level bit to land on the lower-bound slot.
	j >>= bits.TrailingZeros(^uint(j)) + 1
	return int(idx.rank[j])
}

// findLanes resolves np ≤ batchLanes independent point locations in one
// software-pipelined descent: all lanes advance one tree level per outer
// iteration, so the np boundary loads of a level are independent and overlap
// in flight — the memory-level-parallelism win that makes random batches run
// near the speed of cache-resident ones. Every lane's result is the exact
// slot the scalar find returns; the padded perfect tree guarantees all lanes
// share the same trip count, so there is no per-lane exit test inside the
// hot loop.
func (idx *queryIndex) findLanes(xs *[batchLanes]int, np int, out *[batchLanes]int32) {
	eytz := idx.eytz
	m := len(eytz)
	var j [batchLanes]int
	for l := 0; l < np; l++ {
		j[l] = 1
	}
	for lvl := 1; lvl < m; lvl <<= 1 {
		for l := 0; l < np; l++ {
			jl := j[l]
			step := 0
			if eytz[jl] < xs[l] {
				step = 1
			}
			j[l] = 2*jl + step
		}
	}
	for l := 0; l < np; l++ {
		jj := j[l]
		jj >>= bits.TrailingZeros(^uint(jj)) + 1
		out[l] = idx.rank[jj]
	}
}

// near is the sorted-locality pre-filter shared by the batch kernels: it
// reports whether x lands in piece last or the one immediately after it (the
// two hits sorted or clustered batches produce almost always), without
// running a search. A hit is the same position find returns — the guess is
// verified against both piece edges, so any last, even a stale one, is safe.
func (idx *queryIndex) near(last, x int) (int, bool) {
	if last >= 0 && last < len(idx.ends) && x <= idx.ends[last] {
		if last == 0 || x > idx.ends[last-1] {
			return last, true
		}
	} else if next := last + 1; last >= 0 && next < len(idx.ends) &&
		x > idx.ends[next-1] && x <= idx.ends[next] {
		return next, true
	}
	return 0, false
}

// findFrom is find with the locality fast path for sorted or clustered query
// sequences: if x lands in the piece found by the previous query (or the one
// immediately after it), no search runs. The result is the same position
// find returns — the fast path only short-circuits the walk.
func (idx *queryIndex) findFrom(last, x int) int {
	if p, ok := idx.near(last, x); ok {
		return p
	}
	return idx.find(x)
}

// lo returns the first domain point of piece j.
func (idx *queryIndex) lo(j int) int {
	if j == 0 {
		return 1
	}
	return idx.ends[j-1] + 1
}

// rangeSum returns Σ_{i=a}^{b} h(i) for a validated 1 ≤ a ≤ b ≤ n in O(log k):
// two point locations, then O(1) arithmetic — the two partial edge pieces
// computed directly (so sub-piece queries never difference large prefixes)
// plus the prefix-mass difference of the whole pieces strictly between them.
// The right-endpoint search starts from the left endpoint's piece (b ≥ a, so
// pa is a valid locality hint), which short-circuits the second walk for the
// short ranges real selectivity workloads are full of.
func (idx *queryIndex) rangeSum(a, b int) float64 {
	pa := idx.find(a)
	if b <= idx.ends[pa] {
		return float64(b-a+1) * idx.values[pa]
	}
	pb := idx.findFrom(pa, b)
	return idx.rangeParts(pa, pb, a, b)
}

// rangeParts is the shared O(1) arithmetic of every range-sum path once both
// endpoint pieces are located, with pa < pb: the two partial edge pieces
// computed directly plus the prefix-mass difference of the whole pieces
// strictly between them. The term order is part of the query semantics (the
// bit-identity oracle replays it).
func (idx *queryIndex) rangeParts(pa, pb, a, b int) float64 {
	left := float64(idx.ends[pa]-a+1) * idx.values[pa]
	mid := idx.prefix[pb] - idx.prefix[pa+1]
	right := float64(b-idx.lo(pb)+1) * idx.values[pb]
	return left + mid + right
}

// index returns the histogram's query index, building it on first use.
// Publication is a CompareAndSwap on an atomic pointer: concurrent first
// queries may each build an index, but every build is identical (a pure
// function of the immutable pieces) and exactly one survives, so readers
// never observe a partially built structure and results are deterministic.
func (h *Histogram) index() *queryIndex {
	if idx := h.idx.Load(); idx != nil {
		return idx
	}
	idx := buildQueryIndex(h.pieces)
	if h.idx.CompareAndSwap(nil, idx) {
		return idx
	}
	return h.idx.Load()
}

// invalidateIndex drops a previously built index after the pieces change
// (only UnmarshalJSON mutates a histogram in place).
func (h *Histogram) invalidateIndex() { h.idx.Store(nil) }

// PieceIndex returns the position (in Pieces() order) of the piece containing
// x ∈ [1, n], in O(log pieces) with no allocation. It panics on out-of-range
// x, like At.
func (h *Histogram) PieceIndex(x int) int {
	if x < 1 || x > h.n {
		panic(fmt.Sprintf("core: Histogram.PieceIndex(%d) out of [1, %d]", x, h.n))
	}
	return h.index().find(x)
}

// RangeSum returns the exact sum Σ_{i=a}^{b} h(i) over the inclusive range
// [a, b] ⊆ [1, n] in O(log pieces) time and zero allocations: two indexed
// point locations plus O(1) prefix-mass arithmetic. For a synopsis histogram
// this is the range-count estimate under the standard uniform-spread
// assumption. It panics if the range is invalid; error-returning validation
// lives in the synopsis layer.
func (h *Histogram) RangeSum(a, b int) float64 {
	if a < 1 || b > h.n || a > b {
		panic(fmt.Sprintf("core: Histogram.RangeSum(%d, %d) invalid for [1, %d]", a, b, h.n))
	}
	return h.index().rangeSum(a, b)
}

// batchWorkers resolves a Workers knob against a batch size: parallel
// dispatch below MinGrain queries costs more than it saves.
func batchWorkers(workers, batch int) int {
	w := parallel.Resolve(workers)
	if batch < parallel.MinGrain {
		return 1
	}
	return w
}

// atChunk answers the point queries xs[lo:hi] into out[lo:hi]: the serial
// kernel both the single-threaded batch path and every parallel worker run.
// Queries are processed in blocks of batchLanes: each query first tries the
// sorted-locality pre-filter (near), and the misses are gathered and
// resolved together by one pipelined findLanes descent, so sorted batches
// keep their search-free fast path while random batches overlap their
// boundary loads across lanes. Everything lives in fixed-size stack arrays,
// so the serial path stays allocation-free.
func (idx *queryIndex) atChunk(n int, xs []int, out []float64, lo, hi int) {
	last := -1
	var lx [batchLanes]int   // gathered misses: query values
	var li [batchLanes]int   // gathered misses: absolute query indices
	var lp [batchLanes]int32 // resolved piece positions
	for base := lo; base < hi; {
		end := base + batchLanes
		if end > hi {
			end = hi
		}
		np := 0
		for qi := base; qi < end; qi++ {
			x := xs[qi]
			if x < 1 || x > n {
				panic(fmt.Sprintf("core: Histogram.AtBatch point %d out of [1, %d]", x, n))
			}
			if p, ok := idx.near(last, x); ok {
				last = p
				out[qi] = idx.values[p]
			} else {
				lx[np] = x
				li[np] = qi
				np++
			}
		}
		if np > 0 {
			idx.findLanes(&lx, np, &lp)
			for l := 0; l < np; l++ {
				out[li[l]] = idx.values[lp[l]]
			}
			last = int(lp[np-1])
		}
		base = end
	}
}

// smallTree is the Eytzinger size below which the pipelined range kernel
// loses to a plain per-query loop: the whole tree is a couple of cache lines,
// so there are no load latencies to overlap and the lane staging is pure
// overhead.
const smallTree = 64

// rangeSumChunkSmall is the scalar range kernel for cache-resident trees:
// per-query locality chaining (the previous left endpoint seeds the next
// search) with no lane staging. Results are identical to the pipelined
// kernel — both are built from the same find/near/rangeParts primitives.
func (idx *queryIndex) rangeSumChunkSmall(n int, as, bs []int, out []float64, lo, hi int) {
	last := -1
	for qi := lo; qi < hi; qi++ {
		a, b := as[qi], bs[qi]
		if a < 1 || b > n || a > b {
			panic(fmt.Sprintf("core: Histogram.RangeSumBatch range [%d, %d] invalid for [1, %d]", a, b, n))
		}
		pa := idx.findFrom(last, a)
		last = pa
		if b <= idx.ends[pa] {
			out[qi] = float64(b-a+1) * idx.values[pa]
			continue
		}
		out[qi] = idx.rangeParts(pa, idx.findFrom(pa, b), a, b)
	}
}

// rangeSumChunk answers the range queries [as[i], bs[i]] for i in [lo, hi)
// into out: the shared serial/parallel batch kernel. Both endpoint searches
// run in pipelined lanes per block of batchLanes queries: left endpoints go
// through the sorted-locality pre-filter with misses batched into one
// findLanes descent, and right endpoints start from their own left piece
// (b ≥ a makes pa a locality hint — within-piece and next-piece ranges never
// search) with the remaining cold searches batched the same way.
func (idx *queryIndex) rangeSumChunk(n int, as, bs []int, out []float64, lo, hi int) {
	if len(idx.eytz) <= smallTree {
		idx.rangeSumChunkSmall(n, as, bs, out, lo, hi)
		return
	}
	last := -1
	var lx [batchLanes]int    // gathered misses: query values
	var li [batchLanes]int    // gathered misses: block-relative query slots
	var lp [batchLanes]int32  // resolved piece positions
	var pas [batchLanes]int32 // left-endpoint piece per block slot
	for base := lo; base < hi; {
		end := base + batchLanes
		if end > hi {
			end = hi
		}
		// Stage 1: locate every left endpoint.
		np := 0
		for qi := base; qi < end; qi++ {
			a, b := as[qi], bs[qi]
			if a < 1 || b > n || a > b {
				panic(fmt.Sprintf("core: Histogram.RangeSumBatch range [%d, %d] invalid for [1, %d]", a, b, n))
			}
			if p, ok := idx.near(last, a); ok {
				last = p
				pas[qi-base] = int32(p)
			} else {
				lx[np] = a
				li[np] = qi - base
				np++
			}
		}
		if np > 0 {
			idx.findLanes(&lx, np, &lp)
			for l := 0; l < np; l++ {
				pas[li[l]] = lp[l]
			}
			last = int(lp[np-1])
		}
		// Stage 2: locate right endpoints from pa and finish the arithmetic.
		np = 0
		for qi := base; qi < end; qi++ {
			a, b := as[qi], bs[qi]
			pa := int(pas[qi-base])
			if b <= idx.ends[pa] {
				out[qi] = float64(b-a+1) * idx.values[pa]
				continue
			}
			if pb, ok := idx.near(pa, b); ok {
				out[qi] = idx.rangeParts(pa, pb, a, b)
			} else {
				lx[np] = b
				li[np] = qi - base
				np++
			}
		}
		if np > 0 {
			idx.findLanes(&lx, np, &lp)
			for l := 0; l < np; l++ {
				qi := base + li[l]
				out[qi] = idx.rangeParts(int(pas[li[l]]), int(lp[l]), as[qi], bs[qi])
			}
		}
		base = end
	}
}

// AtBatch evaluates h at every point of xs, writing results into out (which
// is grown if shorter than xs) and returning it. Each query produces the
// bit-identical value At returns, for every workers setting — the
// Options.Workers convention: any value ≤ 0 means all cores (GOMAXPROCS),
// 1 forces the serial path, any other positive value is used as given;
// batches below the parallel grain run serially regardless, as a pure
// performance heuristic. Consecutive queries hitting the same piece skip
// the search entirely, and the queries that do search are resolved in
// software-pipelined lanes (see findLanes), so both sorted and random
// batches beat the single-query loop; the serial path with a reused output
// slice performs zero allocations. Panics on out-of-range points, like At.
func (h *Histogram) AtBatch(xs []int, out []float64, workers int) []float64 {
	if cap(out) < len(xs) {
		out = make([]float64, len(xs))
	}
	out = out[:len(xs)]
	idx := h.index()
	w := batchWorkers(workers, len(xs))
	if w <= 1 {
		idx.atChunk(h.n, xs, out, 0, len(xs))
		return out
	}
	parallel.ForChunks(w, len(xs), w, func(_, lo, hi int) {
		idx.atChunk(h.n, xs, out, lo, hi)
	})
	return out
}

// RangeSumBatch answers the ranges [as[i], bs[i]] into out (grown if needed)
// and returns it. Per-query results are bit-identical to RangeSum for every
// workers setting (the Options.Workers convention: ≤ 0 = all cores, 1 =
// serial, other positive values as given, sub-grain batches serial); the
// batch only amortizes index access, exploits sorted-query locality on both
// endpoints, and overlaps the cold searches in pipelined lanes, and the
// serial path with a reused output slice performs zero allocations. Panics
// on invalid ranges or if len(as) ≠ len(bs).
func (h *Histogram) RangeSumBatch(as, bs []int, out []float64, workers int) []float64 {
	if len(as) != len(bs) {
		panic(fmt.Sprintf("core: Histogram.RangeSumBatch: %d starts vs %d ends", len(as), len(bs)))
	}
	if cap(out) < len(as) {
		out = make([]float64, len(as))
	}
	out = out[:len(as)]
	idx := h.index()
	w := batchWorkers(workers, len(as))
	if w <= 1 {
		idx.rangeSumChunk(h.n, as, bs, out, 0, len(as))
		return out
	}
	parallel.ForChunks(w, len(as), w, func(_, lo, hi int) {
		idx.rangeSumChunk(h.n, as, bs, out, lo, hi)
	})
	return out
}
