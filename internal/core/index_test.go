package core

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"repro/internal/interval"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// rangeSumLinearRef is the linear reference oracle for RangeSum: an O(pieces)
// scan that locates both endpoints by walking the pieces and replays the
// exact floating-point accumulation sequence of the index (left-to-right
// prefix masses, partial edges computed directly). The indexed path must be
// bit-identical to it on every query.
func rangeSumLinearRef(h *Histogram, a, b int) float64 {
	pieces := h.pieces
	pa := 0
	for pieces[pa].Hi < a {
		pa++
	}
	if b <= pieces[pa].Hi {
		return float64(b-a+1) * pieces[pa].Value
	}
	pb := pa
	for pieces[pb].Hi < b {
		pb++
	}
	var acc float64
	for j := 0; j <= pa; j++ {
		acc += float64(pieces[j].Len()) * pieces[j].Value
	}
	prefixA := acc
	for j := pa + 1; j < pb; j++ {
		acc += float64(pieces[j].Len()) * pieces[j].Value
	}
	left := float64(pieces[pa].Hi-a+1) * pieces[pa].Value
	mid := acc - prefixA
	right := float64(b-pieces[pb].Lo+1) * pieces[pb].Value
	return left + mid + right
}

// rangeSumClampedRef is the legacy pre-index EstimateRange scan (clamp every
// piece to [a, b], accumulate in piece order). It computes the same
// mathematical quantity as RangeSum with a different floating-point
// accumulation order, so the indexed path must agree up to rounding.
func rangeSumClampedRef(h *Histogram, a, b int) float64 {
	var total float64
	for _, pc := range h.pieces {
		lo, hi := pc.Lo, pc.Hi
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if lo > hi {
			continue
		}
		total += float64(hi-lo+1) * pc.Value
	}
	return total
}

// randomHistogram builds a histogram over [1, n] with pieceCount pieces at
// random boundaries and values drawn from r — including negative values, the
// shape deletion streams produce.
func randomHistogram(r *rng.RNG, n, pieceCount int) *Histogram {
	if pieceCount > n {
		pieceCount = n
	}
	used := make(map[int]bool, pieceCount)
	ends := make([]int, 0, pieceCount)
	used[n] = true
	ends = append(ends, n)
	for len(ends) < pieceCount {
		e := 1 + r.Intn(n)
		if !used[e] {
			used[e] = true
			ends = append(ends, e)
		}
	}
	for i := 1; i < len(ends); i++ {
		for j := i; j > 0 && ends[j] < ends[j-1]; j-- {
			ends[j], ends[j-1] = ends[j-1], ends[j]
		}
	}
	part, err := interval.FromBoundaries(n, ends)
	if err != nil {
		panic(err)
	}
	values := make([]float64, len(part))
	for i := range values {
		values[i] = r.NormFloat64() * 10
		if r.Intn(4) == 0 {
			values[i] = -values[i] // ensure both signs appear often
		}
	}
	return NewHistogram(n, part, values)
}

// queryFixtures returns the adversarial histogram fixtures every query
// property is checked on: a single piece, all-singleton pieces, a negative
// deletion-stream shape, and random piece layouts at several scales.
func queryFixtures(t *testing.T) []*Histogram {
	t.Helper()
	r := rng.New(42)
	fixtures := []*Histogram{
		// Single piece covering the whole domain.
		NewHistogram(100, interval.Partition{interval.New(1, 100)}, []float64{3.25}),
		// n = 1: the smallest legal domain.
		NewHistogram(1, interval.Partition{interval.New(1, 1)}, []float64{-7}),
		// Every point its own piece.
		randomHistogram(r, 64, 64),
		// Negative values from a deletion stream: fit the net vector.
		func() *Histogram {
			q := make([]float64, 500)
			for i := range q {
				q[i] = float64((i%7)-3) * 1.5
			}
			res, err := ConstructHistogram(sparse.FromDense(q), 8, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			return res.Histogram
		}(),
	}
	for _, pieces := range []int{2, 3, 17, 256, 1000} {
		fixtures = append(fixtures, randomHistogram(r, 4096, pieces))
	}
	return fixtures
}

func TestPieceIndexMatchesPartitionFind(t *testing.T) {
	for _, h := range queryFixtures(t) {
		part := h.Partition()
		for x := 1; x <= h.N(); x++ {
			if got, want := h.PieceIndex(x), part.Find(x); got != want {
				t.Fatalf("%v: PieceIndex(%d) = %d, Partition.Find = %d", h, x, got, want)
			}
		}
	}
}

func TestAtBitIdenticalToLinear(t *testing.T) {
	for _, h := range queryFixtures(t) {
		for x := 1; x <= h.N(); x++ {
			if got, want := h.At(x), h.atLinear(x); got != want {
				t.Fatalf("%v: At(%d) = %v, linear oracle %v", h, x, got, want)
			}
		}
	}
}

// queryRanges enumerates the ranges the RangeSum properties are checked on:
// every a == b probe on a grid, the full domain, prefixes, suffixes, and
// random ranges.
func queryRanges(r *rng.RNG, n int) [][2]int {
	ranges := [][2]int{{1, n}, {1, 1}, {n, n}}
	for i := 0; i < 200; i++ {
		a := 1 + r.Intn(n)
		b := a + r.Intn(n-a+1)
		ranges = append(ranges, [2]int{a, b}, [2]int{a, a}, [2]int{1, b}, [2]int{a, n})
	}
	return ranges
}

func TestRangeSumBitIdenticalToLinearRef(t *testing.T) {
	r := rng.New(7)
	for _, h := range queryFixtures(t) {
		for _, q := range queryRanges(r, h.N()) {
			got := h.RangeSum(q[0], q[1])
			want := rangeSumLinearRef(h, q[0], q[1])
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("%v: RangeSum(%d, %d) = %v, linear replay oracle %v",
					h, q[0], q[1], got, want)
			}
		}
	}
}

func TestRangeSumMatchesClampedScan(t *testing.T) {
	// The legacy clamped scan accumulates in a different order, so agreement
	// is up to floating-point rounding, scaled by the total mass involved.
	r := rng.New(11)
	for _, h := range queryFixtures(t) {
		var scale float64
		for _, pc := range h.pieces {
			scale += math.Abs(float64(pc.Len()) * pc.Value)
		}
		if scale == 0 {
			scale = 1
		}
		for _, q := range queryRanges(r, h.N()) {
			got := h.RangeSum(q[0], q[1])
			want := rangeSumClampedRef(h, q[0], q[1])
			if math.Abs(got-want) > 1e-12*scale {
				t.Fatalf("%v: RangeSum(%d, %d) = %v, clamped scan %v (scale %v)",
					h, q[0], q[1], got, want, scale)
			}
			// The exported linear baseline must be the clamped scan exactly:
			// benchmarks and the synopsis oracle lean on it.
			if scan := h.RangeSumScan(q[0], q[1]); scan != want {
				t.Fatalf("%v: RangeSumScan(%d, %d) = %v, independent clamped ref %v",
					h, q[0], q[1], scan, want)
			}
		}
	}
}

func TestRangeSumAgainstDense(t *testing.T) {
	// Ground truth: sum the materialized histogram directly.
	r := rng.New(13)
	for _, h := range queryFixtures(t) {
		dense := h.ToDense()
		for _, q := range queryRanges(r, h.N()) {
			var want float64
			for x := q[0]; x <= q[1]; x++ {
				want += dense[x-1]
			}
			got := h.RangeSum(q[0], q[1])
			tol := 1e-9 * (1 + math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("%v: RangeSum(%d, %d) = %v, dense truth %v", h, q[0], q[1], got, want)
			}
		}
	}
}

func TestBatchQueriesBitIdenticalAcrossWorkers(t *testing.T) {
	r := rng.New(17)
	for _, h := range queryFixtures(t) {
		n := h.N()
		var xs, as, bs []int
		for i := 0; i < 3000; i++ {
			xs = append(xs, 1+r.Intn(n))
			a := 1 + r.Intn(n)
			as = append(as, a)
			bs = append(bs, a+r.Intn(n-a+1))
		}
		wantAt := make([]float64, len(xs))
		for i, x := range xs {
			wantAt[i] = h.At(x)
		}
		wantRange := make([]float64, len(as))
		for i := range as {
			wantRange[i] = h.RangeSum(as[i], bs[i])
		}
		for _, workers := range []int{1, 2, 8} {
			gotAt := h.AtBatch(xs, nil, workers)
			for i := range xs {
				if gotAt[i] != wantAt[i] {
					t.Fatalf("%v workers=%d: AtBatch[%d] = %v, At = %v",
						h, workers, i, gotAt[i], wantAt[i])
				}
			}
			gotRange := h.RangeSumBatch(as, bs, nil, workers)
			for i := range as {
				if gotRange[i] != wantRange[i] {
					t.Fatalf("%v workers=%d: RangeSumBatch[%d] = %v, RangeSum = %v",
						h, workers, i, gotRange[i], wantRange[i])
				}
			}
		}
	}
}

func TestBatchSortedQueriesUseLocalityPath(t *testing.T) {
	// Sorted batches drive the findFrom fast path; results must still match
	// the single-query answers exactly.
	r := rng.New(19)
	h := randomHistogram(r, 10000, 300)
	xs := make([]int, 0, 5000)
	for x := 1; x <= 10000; x += 2 {
		xs = append(xs, x)
	}
	got := h.AtBatch(xs, nil, 1)
	for i, x := range xs {
		if got[i] != h.At(x) {
			t.Fatalf("sorted AtBatch[%d] (x=%d) = %v, At = %v", i, x, got[i], h.At(x))
		}
	}
	as := make([]int, 0, 2000)
	bs := make([]int, 0, 2000)
	for a := 1; a+50 <= 10000; a += 5 {
		as = append(as, a)
		bs = append(bs, a+50)
	}
	gotR := h.RangeSumBatch(as, bs, nil, 1)
	for i := range as {
		if gotR[i] != h.RangeSum(as[i], bs[i]) {
			t.Fatalf("sorted RangeSumBatch[%d] = %v, RangeSum = %v",
				i, gotR[i], h.RangeSum(as[i], bs[i]))
		}
	}
}

func TestBatchReusesOutputSlice(t *testing.T) {
	r := rng.New(23)
	h := randomHistogram(r, 1000, 20)
	xs := []int{1, 500, 1000}
	out := make([]float64, 8)
	got := h.AtBatch(xs, out, 1)
	if len(got) != len(xs) || &got[0] != &out[0] {
		t.Fatal("AtBatch should reuse a sufficiently large output slice")
	}
	got2 := h.RangeSumBatch(xs, []int{2, 600, 1000}, out, 1)
	if len(got2) != 3 || &got2[0] != &out[0] {
		t.Fatal("RangeSumBatch should reuse a sufficiently large output slice")
	}
}

func TestQuerySteadyStateAllocs(t *testing.T) {
	r := rng.New(29)
	h := randomHistogram(r, 100000, 1000)
	h.At(1) // build the index outside the measured window
	var sink float64
	if allocs := testing.AllocsPerRun(200, func() {
		sink += h.At(77777)
	}); allocs != 0 {
		t.Fatalf("At allocates %v/op at steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		sink += h.RangeSum(123, 98765)
	}); allocs != 0 {
		t.Fatalf("RangeSum allocates %v/op at steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		sink += float64(h.PieceIndex(4242))
	}); allocs != 0 {
		t.Fatalf("PieceIndex allocates %v/op at steady state, want 0", allocs)
	}
	xs := []int{5, 77777, 99999, 12, 50000}
	out := make([]float64, len(xs))
	if allocs := testing.AllocsPerRun(200, func() {
		out = h.AtBatch(xs, out, 1)
	}); allocs != 0 {
		t.Fatalf("serial AtBatch with reused output allocates %v/op, want 0", allocs)
	}
	as := []int{1, 40000, 99000, 7, 31337}
	bs := []int{9, 41000, 100000, 7, 90210}
	if allocs := testing.AllocsPerRun(200, func() {
		out = h.RangeSumBatch(as, bs, out, 1)
	}); allocs != 0 {
		t.Fatalf("serial RangeSumBatch with reused output allocates %v/op, want 0", allocs)
	}
	_ = sink
}

func TestConcurrentColdQueries(t *testing.T) {
	// Many goroutines race to build the lazy index; under -race this
	// certifies the publication protocol, and every reader must see the
	// same values.
	r := rng.New(31)
	h := randomHistogram(r, 50000, 512)
	want := h.atLinear(12345)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for x := 1 + g; x <= h.N(); x += 97 {
				if h.At(x) != h.atLinear(x) {
					errs <- "concurrent At mismatch"
					return
				}
			}
			if h.At(12345) != want {
				errs <- "concurrent reader saw a different value"
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestUnmarshalInvalidatesIndex(t *testing.T) {
	h := NewHistogram(10, interval.Partition{interval.New(1, 4), interval.New(5, 10)}, []float64{1, 2})
	if got := h.At(7); got != 2 {
		t.Fatalf("At(7) = %v before reload", got)
	}
	// Reload different pieces into the same histogram value.
	replacement := NewHistogram(10, interval.Partition{interval.New(1, 6), interval.New(7, 10)}, []float64{5, 9})
	blob, err := json.Marshal(replacement)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, h); err != nil {
		t.Fatal(err)
	}
	if got := h.At(3); got != 5 {
		t.Fatalf("after reload At(3) = %v, stale index served old pieces", got)
	}
	if got := h.RangeSum(1, 10); got != 5*6+9*4 {
		t.Fatalf("after reload RangeSum = %v", got)
	}
}

func TestQueryPanicsOnInvalidInput(t *testing.T) {
	h := NewHistogram(10, interval.Partition{interval.New(1, 10)}, []float64{1})
	for name, fn := range map[string]func(){
		"At(0)":             func() { h.At(0) },
		"At(11)":            func() { h.At(11) },
		"PieceIndex(0)":     func() { h.PieceIndex(0) },
		"RangeSum reversed": func() { h.RangeSum(5, 4) },
		"RangeSum high":     func() { h.RangeSum(1, 11) },
		"AtBatch bad point": func() { h.AtBatch([]int{0}, nil, 1) },
		"RangeSumBatch len": func() { h.RangeSumBatch([]int{1}, []int{2, 3}, nil, 1) },
		"RangeSumBatch bad": func() { h.RangeSumBatch([]int{0}, []int{3}, nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}
