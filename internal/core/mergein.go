package core

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// Incremental merge-in: the compaction fast path of a streaming maintainer.
//
// Construct rebuilds a summary from an explicit refinement every cycle: the
// caller materializes the (summary ∪ delta singletons) partition and stats
// into its own buffers, Construct validates them and copies them into the
// merge state, then runs merging rounds. MergeIn collapses that pipeline for
// the one caller shape that dominates ingest: a trusted previous summary (we
// built it) plus a sorted deduplicated delta log. The sweep below writes the
// refinement DIRECTLY into the merge state — no intermediate refinement
// buffers, no validation pass, no copy — and the merging rounds only run
// when the refined piece count exceeds the caller's lazy threshold, so most
// compaction cycles are a single linear sweep. The paper's mergeability
// theorem is what makes the laziness sound: a summary carrying more than the
// target piece count is still an exact piecewise representation of
// (summary + deltas), so deferring the merge loses nothing — whenever the
// rounds do run they operate on the same refinement a full reconstruct would
// have built, keeping the result bit-identical to the Construct oracle
// (asserted by TestMergeInMatchesConstructOracle).

// mergeInSweep emits the common refinement of (summary pieces ∪ delta
// singletons) straight into the merge state's interval/stat arrays. A plain
// struct with methods (rather than closures over locals) keeps the sweep
// free of captured-variable heap traffic, like combineEmit on the maintainer
// side; the arithmetic matches it term for term so refinement stats are
// bit-identical to the full-reconstruct path.
type mergeInSweep struct {
	ivs    []interval.Interval
	stats  []sparse.Stat
	deltas []sparse.Entry
	di     int
}

// run emits a flat run [lo, hi] at summary value v.
func (w *mergeInSweep) run(lo, hi int, v float64) {
	if lo > hi {
		return
	}
	w.ivs = append(w.ivs, interval.New(lo, hi))
	length := float64(hi - lo + 1)
	w.stats = append(w.stats, sparse.Stat{Len: hi - lo + 1, Sum: v * length, SumSq: v * v * length})
}

// point emits the touched point p with value v+delta.
func (w *mergeInSweep) point(p int, v, delta float64) {
	w.ivs = append(w.ivs, interval.New(p, p))
	s := v + delta
	w.stats = append(w.stats, sparse.Stat{Len: 1, Sum: s, SumSq: s * s})
}

// refine splits the summary piece [lo, hi] (value v) around every delta
// point it contains.
func (w *mergeInSweep) refine(lo, hi int, v float64) {
	for w.di < len(w.deltas) && w.deltas[w.di].Index <= hi {
		p := w.deltas[w.di].Index
		w.run(lo, p-1, v)
		w.point(p, v, w.deltas[w.di].Value)
		lo = p + 1
		w.di++
	}
	w.run(lo, hi, v)
}

// MergeIn sweeps a sorted, deduplicated delta log into an existing summary
// view and re-merges only when the refined piece count exceeds maxPieces
// (clamped up to the target budget, so maxPieces ≤ target means "always
// merge", the Construct behavior). The result is the successor summary:
// when the merging rounds run it is bit-identical to
// Construct(refinement(part, deltas)); when they are skipped it is the exact
// refinement itself, one linear sweep with no merge pause.
//
// Unlike Construct, the inputs are trusted: part/values must be a previous
// Construct/MergeIn output over [1, n] (or empty, meaning the zero function),
// and deltas must be strictly increasing in Index within [1, n] — a
// maintainer's dedupedBuffer output. Neither is retained or modified, and
// neither may alias the scratch's previous result except AS that previous
// result (the double-buffered output makes read-old-while-writing-new safe).
func (s *SummaryScratch) MergeIn(n int, part interval.Partition, values []float64, deltas []sparse.Entry, k, maxPieces int, opts Options) (SummaryResult, error) {
	if err := opts.validate(); err != nil {
		return SummaryResult{}, err
	}
	if k < 1 {
		return SummaryResult{}, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	if len(values) != len(part) {
		return SummaryResult{}, fmt.Errorf("core: %d values for %d intervals", len(values), len(part))
	}
	if s.m.fnPairErrs == nil {
		s.m.initPasses()
	}
	s.m.workers = parallel.Resolve(opts.Workers)

	w := mergeInSweep{ivs: s.m.ivs[:0], stats: s.m.stats[:0], deltas: deltas}
	if len(part) == 0 {
		// No summary yet: one zero piece spans the domain.
		w.refine(1, n, 0)
	} else {
		for i, iv := range part {
			w.refine(iv.Lo, iv.Hi, values[i])
		}
	}
	s.m.ivs, s.m.stats = w.ivs, w.stats

	rounds := 0
	if limit := max(maxPieces, opts.TargetPieces(k)); s.m.len() > limit {
		rounds = s.mergeToTarget(k, opts)
	}
	return s.emitResult(rounds), nil
}
