package core

import (
	"math"
	"testing"

	"repro/internal/interval"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// refineOracle is the full-reconstruct refinement MergeIn's sweep replaces:
// materialize the common refinement of (summary pieces ∪ delta singletons)
// into fresh slices, with the same per-piece arithmetic. MergeIn must be
// bit-identical to Construct over this refinement.
func refineOracle(n int, part interval.Partition, values []float64, deltas []sparse.Entry) (interval.Partition, []sparse.Stat) {
	var out interval.Partition
	var stats []sparse.Stat
	emitRun := func(lo, hi int, v float64) {
		if lo > hi {
			return
		}
		out = append(out, interval.New(lo, hi))
		length := float64(hi - lo + 1)
		stats = append(stats, sparse.Stat{Len: hi - lo + 1, Sum: v * length, SumSq: v * v * length})
	}
	di := 0
	refine := func(lo, hi int, v float64) {
		for di < len(deltas) && deltas[di].Index <= hi {
			p := deltas[di].Index
			emitRun(lo, p-1, v)
			s := v + deltas[di].Value
			out = append(out, interval.New(p, p))
			stats = append(stats, sparse.Stat{Len: 1, Sum: s, SumSq: s * s})
			lo = p + 1
			di++
		}
		emitRun(lo, hi, v)
	}
	if len(part) == 0 {
		refine(1, n, 0)
	} else {
		for i, iv := range part {
			refine(iv.Lo, iv.Hi, values[i])
		}
	}
	return out, stats
}

// randomDeltas draws `count` distinct points of [1, n] sorted ascending with
// random signed weights — the shape dedupedBuffer hands a compaction. Some
// weights are exactly zero (a point whose updates cancelled).
func randomDeltas(r *rng.RNG, n, count int) []sparse.Entry {
	seen := map[int]bool{}
	var out []sparse.Entry
	for len(out) < count {
		p := 1 + r.Intn(n)
		if seen[p] {
			continue
		}
		seen[p] = true
		v := r.NormFloat64() * 2
		switch {
		case r.Float64() < 0.1:
			v = 0
		case r.Float64() < 0.3:
			v = -v
		}
		out = append(out, sparse.Entry{Index: p, Value: v})
	}
	sortEntriesByIndex(out)
	return out
}

func sortEntriesByIndex(es []sparse.Entry) {
	var s sparse.IndexSorter
	mx := 1
	for _, e := range es {
		if e.Index > mx {
			mx = e.Index
		}
	}
	s.Sort(es, mx)
}

// summaryOf compacts random stats down to a valid (partition, values) pair —
// the trusted previous-summary input shape of MergeIn.
func summaryOf(t *testing.T, r *rng.RNG, n, pieces, k int, opts Options) (interval.Partition, []float64) {
	t.Helper()
	part, stats := randomSummary(r, n, pieces)
	var s SummaryScratch
	res, err := s.Construct(n, part, stats, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return append(interval.Partition(nil), res.Partition...), append([]float64(nil), res.Values...)
}

// TestMergeInMatchesConstructOracle: with laziness disabled (maxPieces=0),
// MergeIn must be bit-identical to Construct run over the externally built
// refinement — partition, values, error, and round count — across summary
// shapes, delta densities, and the empty-summary bootstrap case.
func TestMergeInMatchesConstructOracle(t *testing.T) {
	r := rng.New(971)
	var s SummaryScratch
	var oracle SummaryScratch
	for trial := 0; trial < 25; trial++ {
		n := 500 + r.Intn(3000)
		k := 1 + r.Intn(12)
		opts := DefaultOptions()
		if trial%3 == 0 {
			opts = PaperOptions()
		}
		opts.Workers = 1 + trial%2

		var part interval.Partition
		var values []float64
		if trial%5 != 0 { // every 5th trial bootstraps from the empty summary
			part, values = summaryOf(t, r, n, 2+r.Intn(200), k, opts)
		}
		deltas := randomDeltas(r, n, 1+r.Intn(400))

		refPart, refStats := refineOracle(n, part, values, deltas)
		want, err := oracle.Construct(n, refPart, refStats, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.MergeIn(n, part, values, deltas, k, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Error != want.Error || got.Rounds != want.Rounds {
			t.Fatalf("trial %d: (err, rounds) = (%v, %d), want (%v, %d)",
				trial, got.Error, got.Rounds, want.Error, want.Rounds)
		}
		if len(got.Partition) != len(want.Partition) {
			t.Fatalf("trial %d: %d pieces, want %d", trial, len(got.Partition), len(want.Partition))
		}
		for i := range got.Partition {
			if got.Partition[i] != want.Partition[i] || got.Values[i] != want.Values[i] {
				t.Fatalf("trial %d piece %d: (%v, %v), want (%v, %v)", trial, i,
					got.Partition[i], got.Values[i], want.Partition[i], want.Values[i])
			}
		}
	}
}

// TestMergeInLazySkipsRounds: when the refined piece count fits maxPieces,
// MergeIn must run zero merging rounds and return the exact refinement — a
// valid partition whose values match the swept summary+deltas (the flat-run
// means reproduce v up to one rounding).
func TestMergeInLazySkipsRounds(t *testing.T) {
	r := rng.New(977)
	var s SummaryScratch
	n := 5000
	k := 8
	opts := DefaultOptions()
	opts.Workers = 1
	part, values := summaryOf(t, r, n, 120, k, opts)
	deltas := randomDeltas(r, n, 60)

	got, err := s.MergeIn(n, part, values, deltas, k, 100000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != 0 {
		t.Fatalf("lazy merge-in ran %d rounds", got.Rounds)
	}
	if err := got.Partition.Validate(n); err != nil {
		t.Fatalf("lazy refinement is not a valid partition: %v", err)
	}
	refPart, refStats := refineOracle(n, part, values, deltas)
	if len(got.Partition) != len(refPart) {
		t.Fatalf("%d pieces, want refinement's %d", len(got.Partition), len(refPart))
	}
	for i := range refPart {
		if got.Partition[i] != refPart[i] {
			t.Fatalf("piece %d: %v, want %v", i, got.Partition[i], refPart[i])
		}
		want := refStats[i].Mean()
		if math.Abs(got.Values[i]-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("piece %d value %v, want %v", i, got.Values[i], want)
		}
	}
	// The refinement is exact: its ℓ2 error against the swept input is zero
	// up to the cancellation noise of v²L − (vL)²/L per flat run (≈ √(εv²L)
	// summed over pieces).
	if got.Error > 1e-4 {
		t.Fatalf("lazy refinement error %v, want ~0", got.Error)
	}
}

// TestMergeInThresholdCrossing: piece counts just below the threshold skip
// the rounds, just above trigger a full merge down to the target budget.
func TestMergeInThresholdCrossing(t *testing.T) {
	r := rng.New(983)
	var s SummaryScratch
	n := 10000
	k := 4
	opts := DefaultOptions()
	opts.Workers = 1
	target := opts.TargetPieces(k)
	part, values := summaryOf(t, r, n, 3*target, k, opts)
	deltas := randomDeltas(r, n, target)

	refPart, _ := refineOracle(n, part, values, deltas)
	refined := len(refPart)
	lazy, err := s.MergeIn(n, part, values, deltas, k, refined, opts)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Rounds != 0 || len(lazy.Partition) != refined {
		t.Fatalf("maxPieces=%d (== refined): rounds %d, %d pieces — want a lazy skip",
			refined, lazy.Rounds, len(lazy.Partition))
	}
	eager, err := s.MergeIn(n, part, values, deltas, k, refined-1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if eager.Rounds == 0 || len(eager.Partition) > target {
		t.Fatalf("maxPieces=%d (< refined %d): rounds %d, %d pieces — want a full merge to ≤ %d",
			refined-1, refined, eager.Rounds, len(eager.Partition), target)
	}
}

// TestMergeInSteadyStateAllocs: a compaction cycle through MergeIn (sweep +
// merge rounds + output) allocates nothing once the scratch has grown.
func TestMergeInSteadyStateAllocs(t *testing.T) {
	r := rng.New(991)
	var s SummaryScratch
	n := 20000
	k := 6
	opts := DefaultOptions()
	opts.Workers = 1
	part, values := summaryOf(t, r, n, 200, k, opts)
	deltas := randomDeltas(r, n, 500)
	for i := 0; i < 3; i++ { // warm the buffers
		if _, err := s.MergeIn(n, part, values, deltas, k, 0, opts); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.MergeIn(n, part, values, deltas, k, 0, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state MergeIn allocates %v/op, want 0", allocs)
	}
}
