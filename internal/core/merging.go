package core

import (
	"fmt"
	"math"

	"repro/internal/interval"
	"repro/internal/selection"
	"repro/internal/sparse"
)

// Options are the trade-off parameters of Algorithm 1.
//
// Delta (δ) controls the trade-off between the approximation ratio and the
// number of output pieces: the output has at most (2 + 2/δ)k + γ pieces and
// error at most √(1+δ)·opt_k (Theorem 3.3). Small δ means a tighter error
// ratio but more pieces; the paper's experiments use δ = 1000 so that the
// output has ≈ 2k pieces.
//
// Gamma (γ) controls the trade-off between running time and pieces: with
// γ = c·(2 + 2/δ)k the algorithm runs in O(s) for every k (Corollary 3.1);
// with γ = 1 it runs in O(s + k(1+1/δ)·log((1+1/δ)k)).
type Options struct {
	Delta float64
	Gamma float64
}

// DefaultOptions returns δ = 1, γ = 1: at most 4k+1 pieces with error at
// most √2·opt_k.
func DefaultOptions() Options { return Options{Delta: 1, Gamma: 1} }

// PaperOptions returns the parameters used in the paper's experimental
// section (Section 5): δ = 1000, γ = 1, so the output histogram has 2k+1
// pieces.
func PaperOptions() Options { return Options{Delta: 1000, Gamma: 1} }

func (o Options) validate() error {
	if !(o.Delta > 0) || math.IsInf(o.Delta, 0) || math.IsNaN(o.Delta) {
		return fmt.Errorf("core: Delta must be a positive finite number, got %v", o.Delta)
	}
	if !(o.Gamma >= 1) || math.IsInf(o.Gamma, 0) || math.IsNaN(o.Gamma) {
		return fmt.Errorf("core: Gamma must be ≥ 1, got %v", o.Gamma)
	}
	return nil
}

// TargetPieces returns the loop exit threshold ⌊(2 + 2/δ)k + γ⌋: the
// algorithm stops once at most this many intervals remain, so the output has
// at most that many pieces.
func (o Options) TargetPieces(k int) int {
	return int((2+2/o.Delta)*float64(k) + o.Gamma)
}

// KeepBudget returns ⌊(1 + 1/δ)k⌋ (at least 1), the per-round number of
// candidate merges with the largest errors that are kept split (Algorithm 1,
// line 16). Floor semantics match the paper's experimental parameterization:
// with δ = 1000, k = 10 the target of 21 pieces is only reachable if the
// keep budget rounds down to 10 in the final rounds.
func (o Options) KeepBudget(k int) int {
	b := int((1 + 1/o.Delta) * float64(k))
	if b < 1 {
		b = 1
	}
	return b
}

// Result is the output of a merging run.
type Result struct {
	// Partition is the final interval partition I.
	Partition interval.Partition
	// Histogram is the flattening q̄_I of the input over Partition — the
	// ℓ2-optimal histogram on that partition.
	Histogram *Histogram
	// Error is ‖q̄_I − q‖₂, computed exactly from the interval statistics.
	// In the learning setting this is the error estimate e_t of Theorem 2.2.
	Error float64
	// Rounds is the number of merging iterations performed.
	Rounds int
}

// mergeState carries the live intervals and their statistics across rounds.
// A merge adds the Stats of the two (or more) constituent intervals, keeping
// every round linear in the number of live intervals.
type mergeState struct {
	ivs   []interval.Interval
	stats []sparse.Stat
	// Scratch buffers reused across rounds.
	errs      []float64
	nextIvs   []interval.Interval
	nextStats []sparse.Stat
}

func newMergeState(q *sparse.Func) *mergeState {
	p := q.InitialPartition()
	return &mergeState{ivs: p, stats: q.StatsFor(p)}
}

func (m *mergeState) len() int { return len(m.ivs) }

// finish flattens the summarized input over the final partition and
// assembles the Result. n is the domain size.
func (m *mergeState) finish(n, rounds int) Result {
	p := make(interval.Partition, len(m.ivs))
	copy(p, m.ivs)
	values := make([]float64, len(m.stats))
	var sse float64
	for i, st := range m.stats {
		values[i] = st.Mean()
		sse += st.SSE()
	}
	return Result{
		Partition: p,
		Histogram: NewHistogram(n, p, values),
		Error:     math.Sqrt(sse),
		Rounds:    rounds,
	}
}

// pairRound performs one iteration of Algorithm 1's loop: pair up the
// current intervals, keep the `keep` pairs with the largest merge errors
// split, and merge every other pair. An unpaired trailing interval is
// carried over. It reports the number of live intervals after the round.
func (m *mergeState) pairRound(keep int) int {
	s := len(m.ivs)
	pairs := s / 2
	if keep >= pairs {
		keep = pairs - 1 // guarantee progress: at least one pair merges
	}
	if keep < 0 {
		keep = 0
	}

	m.errs = m.errs[:0]
	for u := 0; u < pairs; u++ {
		merged := m.stats[2*u].Add(m.stats[2*u+1])
		m.errs = append(m.errs, merged.SSE())
	}

	// Cut value: the keep-th largest pair error. Pairs strictly above the
	// cut always stay split (there are at most keep−1 of them); ties at the
	// cut stay split only until the remaining budget is exhausted, so
	// exactly `keep` pairs stay split. The tie budget must be computed
	// up front — handing ties the full budget in index order would let
	// early ties plus later strictly-greater errors split more than `keep`
	// pairs, and a round where every pair splits makes no progress.
	var cut float64
	if keep > 0 {
		cut = selection.Threshold(m.errs, keep)
	} else {
		cut = math.Inf(1)
	}
	greater := 0
	for _, e := range m.errs {
		if e > cut {
			greater++
		}
	}
	tieLeft := keep - greater
	if tieLeft < 0 {
		tieLeft = 0
	}

	m.nextIvs = m.nextIvs[:0]
	m.nextStats = m.nextStats[:0]
	for u := 0; u < pairs; u++ {
		e := m.errs[u]
		tie := e == cut && tieLeft > 0
		split := e > cut || tie
		if split {
			if tie {
				tieLeft--
			}
			m.nextIvs = append(m.nextIvs, m.ivs[2*u], m.ivs[2*u+1])
			m.nextStats = append(m.nextStats, m.stats[2*u], m.stats[2*u+1])
		} else {
			m.nextIvs = append(m.nextIvs, m.ivs[2*u].Union(m.ivs[2*u+1]))
			m.nextStats = append(m.nextStats, m.stats[2*u].Add(m.stats[2*u+1]))
		}
	}
	if s%2 == 1 { // trailing unpaired interval
		m.nextIvs = append(m.nextIvs, m.ivs[s-1])
		m.nextStats = append(m.nextStats, m.stats[s-1])
	}
	m.ivs, m.nextIvs = m.nextIvs, m.ivs
	m.stats, m.nextStats = m.nextStats, m.stats
	return len(m.ivs)
}

// ConstructHistogram is Algorithm 1: it approximates the s-sparse function q
// with a histogram of at most (2 + 2/δ)k + γ pieces whose ℓ2 error is at
// most √(1+δ)·opt_k, where opt_k is the error of the best k-histogram
// (Theorem 3.3). With γ = Θ(k/δ) the running time is O(s) (Corollary 3.1).
func ConstructHistogram(q *sparse.Func, k int, opts Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	m := newMergeState(q)
	target := opts.TargetPieces(k)
	keep := opts.KeepBudget(k)
	rounds := 0
	for m.len() > target {
		m.pairRound(keep)
		rounds++
	}
	return m.finish(q.N(), rounds), nil
}

// ConstructHistogramFromSummary runs the merging loop starting from an
// arbitrary interval summary instead of a sparse function: a partition of
// [1, n] with the per-interval statistics (length, Σq, Σq²) of the data each
// interval summarizes. This is the entry point for mergeable and streaming
// summaries (internal/stream), where the "input" is itself a previously
// built histogram plus buffered updates. The partition and stats slices are
// not retained or modified.
func ConstructHistogramFromSummary(n int, p interval.Partition, stats []sparse.Stat, k int, opts Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	if err := p.Validate(n); err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	if len(stats) != len(p) {
		return Result{}, fmt.Errorf("core: %d stats for %d intervals", len(stats), len(p))
	}
	m := &mergeState{
		ivs:   append([]interval.Interval(nil), p...),
		stats: append([]sparse.Stat(nil), stats...),
	}
	target := opts.TargetPieces(k)
	keep := opts.KeepBudget(k)
	rounds := 0
	for m.len() > target {
		m.pairRound(keep)
		rounds++
	}
	return m.finish(n, rounds), nil
}
