package core

import (
	"fmt"
	"math"

	"repro/internal/interval"
	"repro/internal/parallel"
	"repro/internal/selection"
	"repro/internal/sparse"
)

// Options are the trade-off parameters of Algorithm 1.
//
// Delta (δ) controls the trade-off between the approximation ratio and the
// number of output pieces: the output has at most (2 + 2/δ)k + γ pieces and
// error at most √(1+δ)·opt_k (Theorem 3.3). Small δ means a tighter error
// ratio but more pieces; the paper's experiments use δ = 1000 so that the
// output has ≈ 2k pieces.
//
// Gamma (γ) controls the trade-off between running time and pieces: with
// γ = c·(2 + 2/δ)k the algorithm runs in O(s) for every k (Corollary 3.1);
// with γ = 1 it runs in O(s + k(1+1/δ)·log((1+1/δ)k)).
//
// Workers controls how many goroutines the merging rounds use: any value
// ≤ 0 means all cores (GOMAXPROCS), 1 forces the serial path, any other
// positive value is used as given — the same convention every
// worker-taking entry point in this repository follows (parallel.Resolve).
// The parallel path is bit-identical to the serial one —
// chunk boundaries are fixed up front and every floating-point reduction
// happens in index order — so Workers only changes wall-clock time, never
// the output. Small inputs run serially regardless (the dispatch overhead
// would dominate below a few thousand live intervals).
type Options struct {
	Delta   float64
	Gamma   float64
	Workers int
}

// DefaultOptions returns δ = 1, γ = 1: at most 4k+1 pieces with error at
// most √2·opt_k. Workers = 0: use all cores.
func DefaultOptions() Options { return Options{Delta: 1, Gamma: 1} }

// PaperOptions returns the parameters used in the paper's experimental
// section (Section 5): δ = 1000, γ = 1, so the output histogram has 2k+1
// pieces. Workers = 0: use all cores.
func PaperOptions() Options { return Options{Delta: 1000, Gamma: 1} }

func (o Options) validate() error {
	if !(o.Delta > 0) || math.IsInf(o.Delta, 0) || math.IsNaN(o.Delta) {
		return fmt.Errorf("core: Delta must be a positive finite number, got %v", o.Delta)
	}
	if !(o.Gamma >= 1) || math.IsInf(o.Gamma, 0) || math.IsNaN(o.Gamma) {
		return fmt.Errorf("core: Gamma must be ≥ 1, got %v", o.Gamma)
	}
	// Workers needs no validation: parallel.Resolve gives every value a
	// meaning (≤ 0 = all cores), matching the other worker-taking APIs.
	return nil
}

// TargetPieces returns the loop exit threshold ⌊(2 + 2/δ)k + γ⌋: the
// algorithm stops once at most this many intervals remain, so the output has
// at most that many pieces.
func (o Options) TargetPieces(k int) int {
	return int((2+2/o.Delta)*float64(k) + o.Gamma)
}

// KeepBudget returns ⌊(1 + 1/δ)k⌋ (at least 1), the per-round number of
// candidate merges with the largest errors that are kept split (Algorithm 1,
// line 16). Floor semantics match the paper's experimental parameterization:
// with δ = 1000, k = 10 the target of 21 pieces is only reachable if the
// keep budget rounds down to 10 in the final rounds.
func (o Options) KeepBudget(k int) int {
	b := int((1 + 1/o.Delta) * float64(k))
	if b < 1 {
		b = 1
	}
	return b
}

// Result is the output of a merging run.
type Result struct {
	// Partition is the final interval partition I.
	Partition interval.Partition
	// Histogram is the flattening q̄_I of the input over Partition — the
	// ℓ2-optimal histogram on that partition.
	Histogram *Histogram
	// Error is ‖q̄_I − q‖₂, computed exactly from the interval statistics.
	// In the learning setting this is the error estimate e_t of Theorem 2.2.
	Error float64
	// Rounds is the number of merging iterations performed.
	Rounds int
}

// mergeState carries the live intervals and their statistics across rounds.
// A merge adds the Stats of the two (or more) constituent intervals, keeping
// every round linear in the number of live intervals.
//
// All scratch buffers are owned by the state and reused round after round:
// after the first round a serial merging round performs no heap allocation
// (asserted by TestPairRoundSteadyStateAllocs). Parallel rounds additionally
// pay O(workers) per chunk pass for goroutine spawns and their coordination
// state — noise against the ≥ MinGrain items each worker processes.
type mergeState struct {
	ivs   []interval.Interval
	stats []sparse.Stat
	// workers is the effective worker count (≥ 1) for the round passes.
	workers int
	// Scratch buffers reused across rounds.
	errs       []float64
	nextIvs    []interval.Interval
	nextStats  []sparse.Stat
	selScratch []float64
	// Per-chunk scratch of the two-pass split/merge scheme.
	chunkGreater []int // candidates strictly above the cut, per chunk
	chunkTies    []int // candidates exactly at the cut, per chunk
	chunkTieUse  []int // ties granted split budget, per chunk
	chunkOutLen  []int // intervals the chunk will emit (groupRound only)
	chunkOff     []int // output offset of each chunk's first interval

	// Round-scoped parameters read by the stored passes below.
	cut      float64 // keep-th largest candidate error this round
	g        int     // group size (groupRound only)
	outTotal int     // output length accumulated by the offset pass

	// The chunk passes are built once per state and reused every round —
	// a fresh closure per round would escape into the worker goroutines
	// and put an allocation back on the per-round path.
	fnPairErrs, fnPairOff, fnPairWrite    func(ci, lo, hi int)
	fnGroupErrs, fnGroupLen, fnGroupWrite func(ci, lo, hi int)
	fnCount                               func(ci, lo, hi int)
}

func newMergeState(q *sparse.Func, workers int) *mergeState {
	p := q.InitialPartition()
	m := &mergeState{ivs: p, stats: q.StatsFor(p), workers: parallel.Resolve(workers)}
	m.initPasses()
	return m
}

// initPasses binds the chunk passes shared by pairRound and groupRound.
func (m *mergeState) initPasses() {
	m.fnPairErrs = func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			m.errs[u] = m.stats[2*u].Add(m.stats[2*u+1]).SSE()
		}
	}
	m.fnCount = func(ci, lo, hi int) {
		greater, ties := 0, 0
		for _, e := range m.errs[lo:hi] {
			if e > m.cut {
				greater++
			} else if e == m.cut {
				ties++
			}
		}
		m.chunkGreater[ci] = greater
		m.chunkTies[ci] = ties
	}
	// Output offsets: a split pair emits 2 intervals, a merged pair 1, so a
	// chunk with p pairs of which g+t split emits p + g + t.
	m.fnPairOff = func(ci, lo, hi int) {
		m.chunkOff[ci] = m.outTotal
		m.outTotal += (hi - lo) + m.chunkGreater[ci] + m.chunkTieUse[ci]
	}
	m.fnPairWrite = func(ci, lo, hi int) {
		o := m.chunkOff[ci]
		tieLeft := m.chunkTieUse[ci]
		for u := lo; u < hi; u++ {
			e := m.errs[u]
			tie := e == m.cut && tieLeft > 0
			if e > m.cut || tie {
				if tie {
					tieLeft--
				}
				m.nextIvs[o], m.nextIvs[o+1] = m.ivs[2*u], m.ivs[2*u+1]
				m.nextStats[o], m.nextStats[o+1] = m.stats[2*u], m.stats[2*u+1]
				o += 2
			} else {
				m.nextIvs[o] = m.ivs[2*u].Union(m.ivs[2*u+1])
				m.nextStats[o] = m.stats[2*u].Add(m.stats[2*u+1])
				o++
			}
		}
	}
	m.initGroupPasses()
}

func (m *mergeState) len() int { return len(m.ivs) }

// roundWorkers caps the configured worker count by the amount of work in
// this round: below MinGrain items per worker the dispatch overhead wins,
// so small rounds (and the tail of every run) execute serially.
func (m *mergeState) roundWorkers(items int) int {
	w := m.workers
	if max := items / parallel.MinGrain; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// finish flattens the summarized input over the final partition and
// assembles the Result. n is the domain size.
func (m *mergeState) finish(n, rounds int) Result {
	p := make(interval.Partition, len(m.ivs))
	copy(p, m.ivs)
	values := make([]float64, len(m.stats))
	var sse float64
	for i, st := range m.stats {
		values[i] = st.Mean()
		sse += st.SSE()
	}
	return Result{
		Partition: p,
		Histogram: NewHistogram(n, p, values),
		Error:     math.Sqrt(sse),
		Rounds:    rounds,
	}
}

// grow returns xs resized to length n, reallocating only when the capacity
// is insufficient — the buffer-reuse primitive of the round scratch.
func grow[T any](xs []T, n int) []T {
	if cap(xs) < n {
		return make([]T, n)
	}
	return xs[:n]
}

// cutAndTieBudgets runs the shared middle of a merging round: given the
// candidate errors in m.errs, it selects the cut value (the keep-th largest
// error) into m.cut, counts per chunk how many candidates sit strictly
// above and exactly at the cut, and hands each chunk its tie budget in
// index order.
//
// Cut semantics (identical to the historical serial loop): candidates
// strictly above the cut always stay split — there are at most keep−1 of
// them; ties at the cut stay split only until the remaining budget is
// exhausted, so exactly `keep` candidates stay split. The tie budget must
// be computed up front — handing ties the full budget in index order would
// let early ties plus later strictly-greater errors split more than `keep`
// candidates, and a round where every candidate splits makes no progress.
// Chunking preserves those semantics exactly: chunks partition the
// candidate index range in order, so granting chunk c the budget left after
// chunks 0..c−1 reproduces the global index-order allocation.
func (m *mergeState) cutAndTieBudgets(keep, w, nc int) {
	if keep > 0 {
		m.cut, m.selScratch = selection.ThresholdParallel(m.errs, keep, w, m.selScratch)
	} else {
		m.cut = math.Inf(1)
	}
	m.chunkGreater = grow(m.chunkGreater, nc)
	m.chunkTies = grow(m.chunkTies, nc)
	m.chunkTieUse = grow(m.chunkTieUse, nc)
	m.chunkOutLen = grow(m.chunkOutLen, nc)
	m.chunkOff = grow(m.chunkOff, nc)
	parallel.ForChunks(w, len(m.errs), nc, m.fnCount)
	greater := 0
	for _, g := range m.chunkGreater[:nc] {
		greater += g
	}
	tieLeft := keep - greater
	if tieLeft < 0 {
		tieLeft = 0
	}
	for ci := 0; ci < nc; ci++ {
		use := m.chunkTies[ci]
		if use > tieLeft {
			use = tieLeft
		}
		m.chunkTieUse[ci] = use
		tieLeft -= use
	}
}

// pairRound performs one iteration of Algorithm 1's loop: pair up the
// current intervals, keep the `keep` pairs with the largest merge errors
// split, and merge every other pair. An unpaired trailing interval is
// carried over. It reports the number of live intervals after the round.
//
// The round runs in three chunked passes over the pairs — compute merge
// errors, count split decisions per chunk, write the next generation at
// precomputed offsets — so any number of workers produces the same interval
// sequence the serial loop historically did, bit for bit.
func (m *mergeState) pairRound(keep int) int {
	s := len(m.ivs)
	pairs := s / 2
	if keep >= pairs {
		keep = pairs - 1 // guarantee progress: at least one pair merges
	}
	if keep < 0 {
		keep = 0
	}

	w := m.roundWorkers(pairs)
	nc := parallel.NumChunks(pairs, w)
	m.errs = grow(m.errs, pairs)
	parallel.ForChunks(w, pairs, nc, m.fnPairErrs)

	m.cutAndTieBudgets(keep, w, nc)

	m.outTotal = 0
	parallel.ForChunks(1, pairs, nc, m.fnPairOff)
	carry := s%2 == 1
	outLen := m.outTotal
	if carry {
		outLen++
	}
	m.nextIvs = grow(m.nextIvs, outLen)
	m.nextStats = grow(m.nextStats, outLen)

	parallel.ForChunks(w, pairs, nc, m.fnPairWrite)
	if carry { // trailing unpaired interval
		m.nextIvs[outLen-1] = m.ivs[s-1]
		m.nextStats[outLen-1] = m.stats[s-1]
	}
	m.ivs, m.nextIvs = m.nextIvs[:outLen], m.ivs
	m.stats, m.nextStats = m.nextStats[:outLen], m.stats
	return len(m.ivs)
}

// ConstructHistogram is Algorithm 1: it approximates the s-sparse function q
// with a histogram of at most (2 + 2/δ)k + γ pieces whose ℓ2 error is at
// most √(1+δ)·opt_k, where opt_k is the error of the best k-histogram
// (Theorem 3.3). With γ = Θ(k/δ) the running time is O(s) (Corollary 3.1).
// The rounds run on opts.Workers goroutines (0 = all cores) with output
// bit-identical to the serial path.
func ConstructHistogram(q *sparse.Func, k int, opts Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	m := newMergeState(q, opts.Workers)
	target := opts.TargetPieces(k)
	keep := opts.KeepBudget(k)
	rounds := 0
	for m.len() > target {
		m.pairRound(keep)
		rounds++
	}
	return m.finish(q.N(), rounds), nil
}

// ConstructHistogramFromSummary runs the merging loop starting from an
// arbitrary interval summary instead of a sparse function: a partition of
// [1, n] with the per-interval statistics (length, Σq, Σq²) of the data each
// interval summarizes. This is the entry point for mergeable and streaming
// summaries (internal/stream), where the "input" is itself a previously
// built histogram plus buffered updates. The partition and stats slices are
// not retained or modified. Repeated callers (compaction loops) should hold
// a SummaryScratch and call its Construct method instead: same loop, same
// bit-identical output, but the scratch and output buffers are reused so
// steady-state compaction allocates nothing.
func ConstructHistogramFromSummary(n int, p interval.Partition, stats []sparse.Stat, k int, opts Options) (Result, error) {
	var s SummaryScratch
	sr, err := s.Construct(n, p, stats, k, opts)
	if err != nil {
		return Result{}, err
	}
	// The scratch is function-local and never reused, so its output
	// buffers are safe to hand out directly; NewHistogram copies anyway.
	return Result{
		Partition: sr.Partition,
		Histogram: NewHistogram(n, sr.Partition, sr.Values),
		Error:     sr.Error,
		Rounds:    sr.Rounds,
	}, nil
}
