package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/interval"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// optK computes the exact optimal k-histogram error via the O(n²k) dynamic
// program — the test oracle for the merging guarantees. Small n only.
func optK(q []float64, k int) float64 {
	n := len(q)
	pre := numeric.NewPrefixSSE(q)
	if k >= n {
		return 0
	}
	const inf = math.MaxFloat64
	prev := make([]float64, n+1) // prev[i] = best error of j-1 pieces on [1,i]
	cur := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		prev[i] = pre.SSE(1, i)
	}
	for j := 2; j <= k; j++ {
		for i := 1; i <= n; i++ {
			best := inf
			for l := j - 1; l < i; l++ {
				if v := prev[l] + pre.SSE(l+1, i); v < best {
					best = v
				}
			}
			if i <= j {
				best = 0
			}
			cur[i] = best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[n])
}

// randomKHistogram builds a dense vector that is exactly a k-histogram, plus
// optional Gaussian noise of scale sigma.
func randomKHistogram(r *rng.RNG, n, k int, sigma float64) []float64 {
	p := interval.Uniform(n, k)
	q := make([]float64, n)
	for _, iv := range p {
		v := r.NormFloat64() * 5
		for x := iv.Lo; x <= iv.Hi; x++ {
			q[x-1] = v + sigma*r.NormFloat64()
		}
	}
	return q
}

func TestOptKOracle(t *testing.T) {
	// Sanity-check the test oracle itself: a 2-histogram has opt_2 = 0 and
	// opt_1 > 0.
	q := []float64{1, 1, 1, 5, 5}
	if got := optK(q, 2); got != 0 {
		t.Fatalf("opt_2 = %v, want 0", got)
	}
	if got := optK(q, 1); got <= 0 {
		t.Fatalf("opt_1 = %v, want > 0", got)
	}
	// opt_1 equals the flattening error of the whole interval.
	pre := numeric.NewPrefixSSE(q)
	if want := math.Sqrt(pre.SSE(1, 5)); math.Abs(optK(q, 1)-want) > 1e-12 {
		t.Fatalf("opt_1 = %v, want %v", optK(q, 1), want)
	}
}

func TestOptionsValidate(t *testing.T) {
	sf := sparse.FromDense([]float64{1, 2, 3})
	bad := []Options{
		{Delta: 0, Gamma: 1},
		{Delta: -1, Gamma: 1},
		{Delta: math.NaN(), Gamma: 1},
		{Delta: 1, Gamma: 0.5},
		{Delta: 1, Gamma: math.Inf(1)},
	}
	for _, o := range bad {
		if _, err := ConstructHistogram(sf, 1, o); err == nil {
			t.Errorf("options %+v should be rejected", o)
		}
	}
	if _, err := ConstructHistogram(sf, 0, DefaultOptions()); err == nil {
		t.Error("k=0 should be rejected")
	}
}

func TestTargetAndBudget(t *testing.T) {
	// Paper experiment parameters: δ=1000, γ=1 → 2k+1 pieces for k=10.
	o := PaperOptions()
	if got := o.TargetPieces(10); got != 21 {
		t.Fatalf("TargetPieces(10) = %d, want 21", got)
	}
	d := DefaultOptions()
	if got := d.TargetPieces(10); got != 41 {
		t.Fatalf("Default TargetPieces(10) = %d, want 41", got)
	}
	if got := d.KeepBudget(10); got != 20 {
		t.Fatalf("Default KeepBudget(10) = %d, want 20", got)
	}
}

func TestConstructHistogramPieceBound(t *testing.T) {
	r := rng.New(5)
	for _, n := range []int{50, 500, 4096} {
		q := make([]float64, n)
		for i := range q {
			q[i] = r.NormFloat64()
		}
		sf := sparse.FromDense(q)
		for _, k := range []int{1, 3, 10} {
			for _, o := range []Options{DefaultOptions(), PaperOptions(), {Delta: 0.5, Gamma: 4}} {
				res, err := ConstructHistogram(sf, k, o)
				if err != nil {
					t.Fatal(err)
				}
				if got, max := res.Histogram.NumPieces(), o.TargetPieces(k); got > max {
					t.Fatalf("n=%d k=%d opts=%+v: %d pieces > bound %d", n, k, o, got, max)
				}
				if err := res.Partition.Validate(n); err != nil {
					t.Fatalf("invalid output partition: %v", err)
				}
			}
		}
	}
}

func TestConstructHistogramExactRecovery(t *testing.T) {
	// When q is itself a k-histogram, opt_k = 0, so Theorem 3.3 forces the
	// output error to be exactly 0.
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 64 + r.Intn(400)
		k := 1 + r.Intn(8)
		q := randomKHistogram(r, n, k, 0)
		sf := sparse.FromDense(q)
		res, err := ConstructHistogram(sf, k, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		// Merged equal-value pairs carry ~1e-16 phantom SSE from prefix
		// cancellation; over hundreds of pieces that accumulates to ~1e-6
		// in the reported error. Anything below 1e-4 is exact recovery.
		if res.Error > 1e-4 {
			t.Fatalf("trial %d (n=%d k=%d): error %v on exact k-histogram", trial, n, k, res.Error)
		}
	}
}

func TestConstructHistogramApproximationGuarantee(t *testing.T) {
	// Theorem 3.3: ‖q̄_I − q‖₂ ≤ √(1+δ)·opt_k, verified against the exact DP
	// on noisy k-histograms and on pure noise.
	r := rng.New(11)
	for trial := 0; trial < 25; trial++ {
		n := 40 + r.Intn(120)
		k := 1 + r.Intn(5)
		var q []float64
		if trial%2 == 0 {
			q = randomKHistogram(r, n, k, 0.3)
		} else {
			q = make([]float64, n)
			for i := range q {
				q[i] = r.NormFloat64()
			}
		}
		opt := optK(q, k)
		sf := sparse.FromDense(q)
		// The theorem's case-(ii) argument needs ⌊(1+1/δ)k⌋ − k ≥ ⌈k/δ⌉ ≥ 1
		// kept intervals without jumps, so test δ values with k ≥ δ.
		deltas := []float64{0.5, 1}
		if k >= 4 {
			deltas = append(deltas, 4)
		}
		for _, delta := range deltas {
			o := Options{Delta: delta, Gamma: 1}
			res, err := ConstructHistogram(sf, k, o)
			if err != nil {
				t.Fatal(err)
			}
			bound := math.Sqrt(1+delta)*opt + 1e-9
			if res.Error > bound {
				t.Fatalf("trial %d (n=%d k=%d δ=%v): error %v > √(1+δ)·opt = %v",
					trial, n, k, delta, res.Error, bound)
			}
		}
	}
}

func TestConstructHistogramErrorFieldExact(t *testing.T) {
	r := rng.New(13)
	q := make([]float64, 300)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	sf := sparse.FromDense(q)
	res, err := ConstructHistogram(sf, 7, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := res.Histogram.L2DistToDense(q)
	if !numeric.AlmostEqual(res.Error, want, 1e-9) {
		t.Fatalf("Error field %v, recomputed %v", res.Error, want)
	}
}

func TestConstructHistogramSparseInput(t *testing.T) {
	// Very sparse input over a huge domain: runtime must depend on s, not n,
	// and the result must still satisfy the piece bound.
	n := 10_000_000
	entries := []sparse.Entry{}
	r := rng.New(17)
	seen := map[int]bool{}
	for len(entries) < 100 {
		i := 1 + r.Intn(n)
		if !seen[i] {
			seen[i] = true
			entries = append(entries, sparse.Entry{Index: i, Value: 1 + r.Float64()})
		}
	}
	sf, err := sparse.New(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ConstructHistogram(sf, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram.NumPieces() > DefaultOptions().TargetPieces(5) {
		t.Fatalf("pieces = %d", res.Histogram.NumPieces())
	}
	if got := res.Histogram.L2DistToSparse(sf); !numeric.AlmostEqual(got, res.Error, 1e-9) {
		t.Fatalf("sparse distance %v vs error %v", got, res.Error)
	}
}

func TestConstructHistogramZeroFunction(t *testing.T) {
	sf, err := sparse.New(1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ConstructHistogram(sf, 3, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 || res.Histogram.NumPieces() != 1 {
		t.Fatalf("zero function: error %v pieces %d", res.Error, res.Histogram.NumPieces())
	}
	if res.Rounds != 0 {
		t.Fatalf("zero function should need 0 rounds, got %d", res.Rounds)
	}
}

func TestConstructHistogramKLargerThanSparsity(t *testing.T) {
	// If the initial partition is already at most the target size, the input
	// is returned exactly.
	sf := sparse.FromDense([]float64{0, 5, 0, 0, 3, 0})
	res, err := ConstructHistogram(sf, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("error = %v, want exact representation", res.Error)
	}
}

func TestConstructHistogramDeterminism(t *testing.T) {
	r := rng.New(23)
	q := make([]float64, 777)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	sf := sparse.FromDense(q)
	a, _ := ConstructHistogram(sf, 9, PaperOptions())
	b, _ := ConstructHistogram(sf, 9, PaperOptions())
	if a.Error != b.Error || a.Rounds != b.Rounds || len(a.Partition) != len(b.Partition) {
		t.Fatal("runs differ")
	}
	for i := range a.Partition {
		if a.Partition[i] != b.Partition[i] {
			t.Fatal("partitions differ")
		}
	}
}

// Property: on arbitrary random inputs the merging error is within
// √(1+δ)·opt_k for δ=1 and the piece bound holds.
func TestMergingGuaranteeProperty(t *testing.T) {
	f := func(seed uint32, kRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := 30 + r.Intn(70)
		k := int(kRaw)%4 + 1
		q := make([]float64, n)
		for i := range q {
			q[i] = float64(r.Intn(6)) // ties stress the selection logic
		}
		sf := sparse.FromDense(q)
		res, err := ConstructHistogram(sf, k, DefaultOptions())
		if err != nil {
			return false
		}
		if res.Histogram.NumPieces() > DefaultOptions().TargetPieces(k) {
			return false
		}
		return res.Error <= math.Sqrt2*optK(q, k)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging error is monotone non-increasing in k on a fixed input.
func TestMergingMonotoneInK(t *testing.T) {
	r := rng.New(29)
	q := make([]float64, 500)
	for i := range q {
		q[i] = r.NormFloat64() + math.Sin(float64(i)/20)*3
	}
	sf := sparse.FromDense(q)
	prev := math.Inf(1)
	for k := 1; k <= 40; k *= 2 {
		res, err := ConstructHistogram(sf, k, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		// Not strictly guaranteed piecewise, but with doubling k the target
		// partition strictly refines in budget; allow tiny slack.
		if res.Error > prev+1e-9 {
			t.Fatalf("error increased from %v to %v at k=%d", prev, res.Error, k)
		}
		prev = res.Error
	}
}
