package core

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// Serial/parallel equivalence: the whole point of the chunked engine is
// that Workers changes wall-clock time only. These tests assert the outputs
// are bit-identical — same partitions, same piece values down to the float
// bits, same error, same round count — for worker counts on both sides of
// the serial cutoff, across the adversarial shapes the serial tests use
// plus inputs large enough that the parallel path actually engages.

var equivalenceWorkers = []int{1, 2, 8}

// equivFixtures returns (name, data) pairs covering the adversarial shapes
// of adversarial_test.go at sizes that exercise the chunked passes
// (tens of thousands of live intervals in the early rounds).
func equivFixtures() map[string][]float64 {
	fixtures := make(map[string][]float64)

	allEqual := make([]float64, 50000)
	for i := range allEqual {
		allEqual[i] = 3.75
	}
	fixtures["allEqual"] = allEqual

	alternating := make([]float64, 60000)
	for i := range alternating {
		if i%2 == 0 {
			alternating[i] = 1
		} else {
			alternating[i] = -1
		}
	}
	fixtures["alternating"] = alternating

	spike := make([]float64, 100000)
	spike[56789] = 1e9
	fixtures["singleSpike"] = spike

	decay := make([]float64, 50001) // odd length: trailing-interval path
	v := 1e12
	for i := range decay {
		decay[i] = v
		v *= 0.9997
	}
	fixtures["geometricDecay"] = decay

	ties := make([]float64, 65536)
	for i := range ties {
		ties[i] = float64(i % 2)
	}
	fixtures["manyTiedErrors"] = ties

	r := rng.New(317)
	noise := make([]float64, 77773) // prime length
	for i := range noise {
		noise[i] = r.NormFloat64()
	}
	fixtures["gaussianNoise"] = noise

	steps := make([]float64, 40000)
	for i := range steps {
		switch {
		case i < 12000:
			steps[i] = 5
		case i < 28000:
			steps[i] = 1
		default:
			steps[i] = 8
		}
	}
	fixtures["steps"] = steps

	return fixtures
}

func sameResult(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Rounds != b.Rounds {
		t.Fatalf("%s: rounds %d vs %d", label, a.Rounds, b.Rounds)
	}
	if math.Float64bits(a.Error) != math.Float64bits(b.Error) {
		t.Fatalf("%s: error %v vs %v (bits differ)", label, a.Error, b.Error)
	}
	if len(a.Partition) != len(b.Partition) {
		t.Fatalf("%s: %d vs %d pieces", label, len(a.Partition), len(b.Partition))
	}
	for i := range a.Partition {
		if a.Partition[i] != b.Partition[i] {
			t.Fatalf("%s: piece %d interval %v vs %v", label, i, a.Partition[i], b.Partition[i])
		}
	}
	pa, pb := a.Histogram.Pieces(), b.Histogram.Pieces()
	for i := range pa {
		if math.Float64bits(pa[i].Value) != math.Float64bits(pb[i].Value) {
			t.Fatalf("%s: piece %d value %v vs %v (bits differ)", label, i, pa[i].Value, pb[i].Value)
		}
	}
}

func TestParallelEquivalenceConstructHistogram(t *testing.T) {
	for name, q := range equivFixtures() {
		sf := sparse.FromDense(q)
		for _, opts := range []Options{DefaultOptions(), PaperOptions()} {
			for _, k := range []int{3, 17} {
				opts.Workers = 1
				serial, err := ConstructHistogram(sf, k, opts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for _, w := range equivalenceWorkers[1:] {
					opts.Workers = w
					par, err := ConstructHistogram(sf, k, opts)
					if err != nil {
						t.Fatalf("%s workers=%d: %v", name, w, err)
					}
					sameResult(t, name+"/merging", serial, par)
				}
			}
		}
	}
}

func TestParallelEquivalenceConstructHistogramFast(t *testing.T) {
	for name, q := range equivFixtures() {
		sf := sparse.FromDense(q)
		for _, opts := range []Options{DefaultOptions(), PaperOptions()} {
			for _, k := range []int{3, 17} {
				opts.Workers = 1
				serial, err := ConstructHistogramFast(sf, k, opts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for _, w := range equivalenceWorkers[1:] {
					opts.Workers = w
					par, err := ConstructHistogramFast(sf, k, opts)
					if err != nil {
						t.Fatalf("%s workers=%d: %v", name, w, err)
					}
					sameResult(t, name+"/fastmerging", serial, par)
				}
			}
		}
	}
}

func TestParallelEquivalenceHierarchy(t *testing.T) {
	for name, q := range equivFixtures() {
		sf := sparse.FromDense(q)
		serial := ConstructHierarchicalHistogramWorkers(sf, 1)
		for _, w := range equivalenceWorkers[1:] {
			par := ConstructHierarchicalHistogramWorkers(sf, w)
			if serial.NumLevels() != par.NumLevels() {
				t.Fatalf("%s workers=%d: %d vs %d levels", name, w, par.NumLevels(), serial.NumLevels())
			}
			for li := range serial.Levels() {
				ls, lp := serial.Levels()[li], par.Levels()[li]
				if math.Float64bits(ls.Error) != math.Float64bits(lp.Error) {
					t.Fatalf("%s workers=%d level %d: error %v vs %v", name, w, li, lp.Error, ls.Error)
				}
				if len(ls.Partition) != len(lp.Partition) {
					t.Fatalf("%s workers=%d level %d: size %d vs %d", name, w, li, len(lp.Partition), len(ls.Partition))
				}
				for i := range ls.Partition {
					if ls.Partition[i] != lp.Partition[i] {
						t.Fatalf("%s workers=%d level %d piece %d: %v vs %v",
							name, w, li, i, lp.Partition[i], ls.Partition[i])
					}
				}
			}
		}
	}
}

// The merging loop must not allocate after its scratch buffers warm up:
// repeat runs on one state via the summary entry point and count allocs on
// the steady-state rounds.
func TestPairRoundSteadyStateAllocs(t *testing.T) {
	q := make([]float64, 30000)
	r := rng.New(5)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	sf := sparse.FromDense(q)
	m := newMergeState(sf, 1)
	// Warm up scratch on the first round, then the remaining rounds must be
	// allocation-free.
	m.pairRound(8)
	allocs := testing.AllocsPerRun(3, func() {
		m.pairRound(8)
	})
	if allocs > 0 {
		t.Fatalf("pairRound allocated %v times per round after warm-up", allocs)
	}
}
