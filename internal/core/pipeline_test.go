package core

import (
	"testing"

	"repro/internal/interval"
	"repro/internal/rng"
)

// pipelineFixtures returns histograms at the piece counts the pipelined
// point-location kernels care about: the all-in-one-piece degenerate tree,
// lane underfill (fewer pieces than lanes), piece counts straddling the
// power-of-two padding edges, and a large tree whose descents actually miss
// cache.
func pipelineFixtures(t *testing.T) []*Histogram {
	t.Helper()
	r := rng.New(101)
	hs := []*Histogram{
		// Every query lands in the same piece: the locality pre-filter and the
		// sentinel-padded descent must agree on a tree of one real boundary.
		NewHistogram(64, interval.Partition{interval.New(1, 64)}, []float64{2.5}),
	}
	for _, k := range []int{1, 2, 3, 10, 1000} {
		hs = append(hs, randomHistogram(r, 4*k+17, k))
	}
	return hs
}

// laneQueries builds an adversarial query stream for one histogram: random
// probes, every piece boundary and its left neighbor (the lower-bound edge
// cases), the domain edges, and runs of duplicates.
func laneQueries(r *rng.RNG, idx *queryIndex, n int) []int {
	queries := make([]int, 0, 3*len(idx.ends)+300)
	for i := 0; i < 256; i++ {
		queries = append(queries, 1+r.Intn(n))
	}
	for _, e := range idx.ends {
		queries = append(queries, e)
		if e > 1 {
			queries = append(queries, e-1)
		}
	}
	d := 1 + r.Intn(n)
	for i := 0; i < 16; i++ {
		queries = append(queries, d) // all-lanes-duplicate blocks
	}
	return append(queries, 1, n, n, 1, 1, n)
}

func TestFindLanesEveryWidthMatchesScalarFind(t *testing.T) {
	r := rng.New(103)
	for _, h := range pipelineFixtures(t) {
		idx := h.index()
		queries := laneQueries(r, idx, h.N())
		for np := 1; np <= batchLanes; np++ {
			var xs [batchLanes]int
			var got [batchLanes]int32
			for base := 0; base+np <= len(queries); base += np {
				copy(xs[:np], queries[base:base+np])
				idx.findLanes(&xs, np, &got)
				for l := 0; l < np; l++ {
					if want := idx.find(xs[l]); int(got[l]) != want {
						t.Fatalf("k=%d np=%d: findLanes lane %d for x=%d gave piece %d, scalar find %d",
							len(idx.ends), np, l, xs[l], got[l], want)
					}
				}
			}
		}
	}
}

func TestFindMatchesLinearLowerBound(t *testing.T) {
	for _, h := range pipelineFixtures(t) {
		idx := h.index()
		for x := 1; x <= h.N(); x++ {
			want := 0
			for idx.ends[want] < x {
				want++
			}
			if got := idx.find(x); got != want {
				t.Fatalf("k=%d: find(%d) = %d, linear lower bound %d", len(idx.ends), x, got, want)
			}
		}
	}
}

func TestBatchAdversarialOrdersBitIdentical(t *testing.T) {
	// Reverse-sorted batches defeat the forward-locality pre-filter on every
	// query, and duplicate-heavy batches hit it on every query; both must
	// produce exactly the single-query answers at every lane fill and fan-out.
	r := rng.New(107)
	for _, h := range pipelineFixtures(t) {
		n := h.N()
		var xs []int
		for x := n; x >= 1; x-- {
			xs = append(xs, x)
		}
		d := 1 + r.Intn(n)
		for i := 0; i < 100; i++ {
			xs = append(xs, d)
		}
		var as, bs []int
		for a := n; a >= 1; a-- {
			as = append(as, a)
			bs = append(bs, a+(n-a)/2)
		}
		for _, workers := range []int{1, 2, 8} {
			got := h.AtBatch(xs, nil, workers)
			for i, x := range xs {
				if got[i] != h.At(x) {
					t.Fatalf("k=%d workers=%d: reverse AtBatch[%d] (x=%d) = %v, At = %v",
						h.NumPieces(), workers, i, x, got[i], h.At(x))
				}
			}
			gotR := h.RangeSumBatch(as, bs, nil, workers)
			for i := range as {
				if want := h.RangeSum(as[i], bs[i]); gotR[i] != want {
					t.Fatalf("k=%d workers=%d: reverse RangeSumBatch[%d] = %v, RangeSum = %v",
						h.NumPieces(), workers, i, gotR[i], want)
				}
			}
		}
	}
}

// TestBatchPartialTailBlocks drives every batch length from 1 to 3 blocks plus
// change, so the lane-gather tail (np < batchLanes on the final block) is
// exercised at every fill level.
func TestBatchPartialTailBlocks(t *testing.T) {
	r := rng.New(109)
	h := randomHistogram(r, 5000, 257)
	for size := 1; size <= 3*batchLanes+1; size++ {
		xs := make([]int, size)
		as := make([]int, size)
		bs := make([]int, size)
		for i := range xs {
			xs[i] = 1 + r.Intn(5000)
			as[i] = 1 + r.Intn(5000)
			bs[i] = as[i] + r.Intn(5000-as[i]+1)
		}
		got := h.AtBatch(xs, nil, 1)
		for i, x := range xs {
			if got[i] != h.At(x) {
				t.Fatalf("size=%d: AtBatch[%d] = %v, At = %v", size, i, got[i], h.At(x))
			}
		}
		gotR := h.RangeSumBatch(as, bs, nil, 1)
		for i := range as {
			if want := h.RangeSum(as[i], bs[i]); gotR[i] != want {
				t.Fatalf("size=%d: RangeSumBatch[%d] = %v, RangeSum = %v", size, i, gotR[i], want)
			}
		}
	}
}
