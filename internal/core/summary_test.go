package core

import (
	"testing"

	"repro/internal/interval"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestConstructHistogramFromSummaryMatchesDirect(t *testing.T) {
	// Starting from the exact initial partition + stats must reproduce the
	// direct ConstructHistogram run bit for bit.
	r := rng.New(331)
	q := make([]float64, 700)
	for i := range q {
		q[i] = r.NormFloat64() * 4
	}
	sf := sparse.FromDense(q)
	p := sf.InitialPartition()
	stats := sf.StatsFor(p)
	direct, err := ConstructHistogram(sf, 6, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	viaSummary, err := ConstructHistogramFromSummary(700, p, stats, 6, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if direct.Error != viaSummary.Error || direct.Rounds != viaSummary.Rounds {
		t.Fatalf("direct (%v, %d rounds) vs summary (%v, %d rounds)",
			direct.Error, direct.Rounds, viaSummary.Error, viaSummary.Rounds)
	}
	p1, p2 := direct.Partition, viaSummary.Partition
	if len(p1) != len(p2) {
		t.Fatal("partition sizes differ")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("partitions differ at %d", i)
		}
	}
}

func TestConstructHistogramFromSummaryValidation(t *testing.T) {
	part := interval.Partition{interval.New(1, 10)}
	stats := []sparse.Stat{{Len: 10, Sum: 5, SumSq: 3}}
	if _, err := ConstructHistogramFromSummary(10, part, stats, 0, DefaultOptions()); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := ConstructHistogramFromSummary(10, part, nil, 1, DefaultOptions()); err == nil {
		t.Fatal("stats length mismatch should error")
	}
	if _, err := ConstructHistogramFromSummary(11, part, stats, 1, DefaultOptions()); err == nil {
		t.Fatal("partition not covering domain should error")
	}
	if _, err := ConstructHistogramFromSummary(10, part, stats, 1, Options{Delta: 0, Gamma: 1}); err == nil {
		t.Fatal("bad options should error")
	}
}

func TestConstructHistogramFromSummaryDoesNotMutateInput(t *testing.T) {
	part := interval.Partition{}
	stats := []sparse.Stat{}
	for i := 0; i < 64; i++ {
		part = append(part, interval.New(i*4+1, i*4+4))
		stats = append(stats, sparse.Stat{Len: 4, Sum: float64(i % 7), SumSq: float64(i % 7)})
	}
	partCopy := append(interval.Partition(nil), part...)
	statsCopy := append([]sparse.Stat(nil), stats...)
	if _, err := ConstructHistogramFromSummary(256, part, stats, 3, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for i := range part {
		if part[i] != partCopy[i] || stats[i] != statsCopy[i] {
			t.Fatal("inputs were mutated")
		}
	}
}

func TestConstructHistogramFromSummaryCoarseSummary(t *testing.T) {
	// A summary whose intervals already aggregate many points: merging must
	// respect the summary's intervals as atoms (it can only merge, never
	// split), and the flattening error must combine the summary's internal
	// SSE with the merge SSE.
	part := interval.Partition{interval.New(1, 50), interval.New(51, 100)}
	// Interval 1 summarizes constant 2s (SSE 0); interval 2 constant 8s.
	stats := []sparse.Stat{
		{Len: 50, Sum: 100, SumSq: 200},
		{Len: 50, Sum: 400, SumSq: 3200},
	}
	res, err := ConstructHistogramFromSummary(100, part, stats, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Target for k=1, δ=1, γ=1 is 5 ≥ 2 pieces: nothing merges, exact.
	if res.Error != 0 {
		t.Fatalf("error %v, want 0", res.Error)
	}
	if res.Histogram.At(1) != 2 || res.Histogram.At(100) != 8 {
		t.Fatal("summary values wrong")
	}
	// Force a merge with a tighter target: one piece, mean 5, SSE = 50·9+50·9.
	res2, err := ConstructHistogramFromSummary(100, part, stats, 1, Options{Delta: 1000, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = res2 // target (2+2/1000)·1+1 = 3 ≥ 2: still no merge
	if res2.Histogram.NumPieces() != 2 {
		t.Fatalf("pieces = %d", res2.Histogram.NumPieces())
	}
}

func TestSummaryMergeArithmetic(t *testing.T) {
	// When a merge does happen, the merged value is the stat-weighted mean
	// and the error is the exact SSE of the combined stats.
	part := interval.Partition{
		interval.New(1, 2), interval.New(3, 4), interval.New(5, 6), interval.New(7, 8),
		interval.New(9, 10), interval.New(11, 12), interval.New(13, 14), interval.New(15, 16),
	}
	stats := make([]sparse.Stat, 8)
	vals := []float64{1, 1, 1, 1, 9, 9, 9, 9}
	for i := range stats {
		stats[i] = sparse.Stat{Len: 2, Sum: 2 * vals[i], SumSq: 2 * vals[i] * vals[i]}
	}
	res, err := ConstructHistogramFromSummary(16, part, stats, 1, Options{Delta: 1000, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Target 3 pieces; the two constant halves merge without error; only a
	// forced cross-jump merge would add error, and with 3 target pieces the
	// split budget protects the jump: error 0.
	if res.Error > 1e-9 {
		t.Fatalf("error %v", res.Error)
	}
	if got := res.Histogram.At(1); !numeric.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("left value %v", got)
	}
	if got := res.Histogram.At(16); !numeric.AlmostEqual(got, 9, 1e-12) {
		t.Fatalf("right value %v", got)
	}
}
