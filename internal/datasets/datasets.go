// Package datasets generates the three data sets of the paper's experimental
// section (Figure 1) and their normalized, subsampled variants used in the
// learning experiments (Figure 2).
//
//   - Hist: a 10-piece histogram contaminated with Gaussian noise, n = 1000.
//   - Poly: a degree-5 polynomial contaminated with Gaussian noise, n = 4000.
//   - Dow: the paper uses n = 16384 daily closing values of the Dow Jones
//     Industrial Average. That exact series is not redistributable here, so
//     we *simulate* it with a geometric random walk whose drift and
//     volatility are calibrated to give the same qualitative shape (a long,
//     locally smooth, non-stationary positive series spanning roughly
//     [40, 400] like the paper's plot). See DESIGN.md §3 for why this
//     preserves the experimental comparison.
//
// All generators are deterministic: fixed seeds, identical output on every
// call.
package datasets

import (
	"math"

	"repro/internal/dist"
	"repro/internal/numeric"
	"repro/internal/rng"
)

// Sizes and piece counts used in the paper's experiments (Section 5).
const (
	HistN = 1000
	PolyN = 4000
	DowN  = 16384

	// HistK, PolyK, DowK are the histogram sizes used for each data set in
	// Table 1 and Figure 2.
	HistK = 10
	PolyK = 10
	DowK  = 50

	// Subsampling factors producing the Figure 2 learning data sets with
	// support ≈ 1000.
	PolySubsample = 4
	DowSubsample  = 16
)

// Fixed generator seeds; changing these changes every experiment, so don't.
const (
	histSeed = 0x485153542031 // "HIST 1"
	polySeed = 0x504f4c592031 // "POLY 1"
	dowSeed  = 0x444f572031   // "DOW 1"
)

// Hist returns the "hist" data set: a 10-piece histogram with levels drawn
// in [1, 9] and additive N(0, 0.5²) noise, n = 1000 (Figure 1, left).
func Hist() []float64 {
	r := rng.New(histSeed)
	const n = HistN
	const pieces = 10
	q := make([]float64, n)
	// Random piece boundaries: 9 cut points, at least 20 apart so every
	// piece is visible at plot scale.
	bounds := randomBoundaries(r, n, pieces, 20)
	lo := 0
	prev := math.Inf(1)
	for _, hi := range bounds {
		level := 1 + 8*r.Float64()
		// Avoid adjacent levels closer than the noise floor, so the data is
		// genuinely a 10-piece histogram at signal scale.
		for math.Abs(level-prev) < 1.5 {
			level = 1 + 8*r.Float64()
		}
		prev = level
		for i := lo; i < hi; i++ {
			q[i] = level + 0.5*r.NormFloat64()
		}
		lo = hi
	}
	return q
}

// Poly returns the "poly" data set: a degree-5 polynomial scaled to roughly
// [0, 30] with additive N(0, 1) noise, n = 4000 (Figure 1, middle).
func Poly() []float64 {
	r := rng.New(polySeed)
	const n = PolyN
	// A degree-5 polynomial with visible wiggles on [0, 1]:
	// p(x) = 30·x·(1−x)·(x−0.25)·(x−0.6)·(x−0.9) rescaled.
	q := make([]float64, n)
	raw := make([]float64, n)
	minV, maxV := math.Inf(1), math.Inf(-1)
	for i := range raw {
		x := float64(i) / float64(n-1)
		v := x * (1 - x) * (x - 0.25) * (x - 0.6) * (x - 0.9)
		raw[i] = v
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	for i := range q {
		scaled := 2 + 26*(raw[i]-minV)/(maxV-minV)
		q[i] = scaled + r.NormFloat64()
	}
	return q
}

// Dow returns the simulated Dow Jones data set: a geometric random walk with
// daily drift 8.5e-5 and volatility 1.1% starting at 60, n = 16384
// (Figure 1, right). The parameters give a series that, like the paper's,
// rises non-monotonically by roughly an order of magnitude with sustained
// drawdowns.
func Dow() []float64 {
	r := rng.New(dowSeed)
	const n = DowN
	q := make([]float64, n)
	v := 60.0
	for i := range q {
		q[i] = v
		v *= math.Exp(8.5e-5 + 0.011*r.NormFloat64())
	}
	return q
}

// randomBoundaries returns `pieces−1` sorted cut points in (minGap, n) with
// pairwise (and boundary) gaps of at least minGap, then appends n.
func randomBoundaries(r *rng.RNG, n, pieces, minGap int) []int {
	cuts := make([]int, 0, pieces)
	for len(cuts) < pieces-1 {
		c := minGap + r.Intn(n-2*minGap)
		ok := true
		for _, existing := range cuts {
			if abs(existing-c) < minGap {
				ok = false
				break
			}
		}
		if ok {
			cuts = append(cuts, c)
		}
	}
	// Insertion sort: tiny slice.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	return append(cuts, n)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Subsample keeps every factor-th point of q starting at index 0, the
// uniformly-spaced subsampling the paper applies to poly and dow for the
// learning experiments.
func Subsample(q []float64, factor int) []float64 {
	if factor < 1 {
		panic("datasets: subsample factor must be ≥ 1")
	}
	out := make([]float64, 0, (len(q)+factor-1)/factor)
	for i := 0; i < len(q); i += factor {
		out = append(out, q[i])
	}
	return out
}

// Normalize converts a raw data set into a probability distribution by
// clamping negatives to zero and dividing by the total mass — how the paper
// turns the Figure 1 data sets into the Figure 2 learning targets.
func Normalize(q []float64) dist.Dist {
	d, err := dist.FromWeights(q)
	if err != nil {
		panic("datasets: normalization failed: " + err.Error())
	}
	return d
}

// HistPrime returns the hist' learning target: Hist normalized
// (support 1000).
func HistPrime() dist.Dist { return Normalize(Hist()) }

// PolyPrime returns the poly' learning target: Poly subsampled ×4 and
// normalized (support 1000).
func PolyPrime() dist.Dist { return Normalize(Subsample(Poly(), PolySubsample)) }

// DowPrime returns the dow' learning target: Dow subsampled ×16 and
// normalized (support 1024).
func DowPrime() dist.Dist { return Normalize(Subsample(Dow(), DowSubsample)) }

// Stats summarizes a data set for documentation and sanity tests.
type Stats struct {
	N          int
	Min, Max   float64
	Mean       float64
	TotalSumSq float64
}

// Describe computes summary statistics of q.
func Describe(q []float64) Stats {
	s := Stats{N: len(q), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range q {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = numeric.Mean(q)
	s.TotalSumSq = numeric.SumSq(q)
	return s
}
