package datasets

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sparse"
)

func TestSizes(t *testing.T) {
	if got := len(Hist()); got != HistN {
		t.Fatalf("|hist| = %d, want %d", got, HistN)
	}
	if got := len(Poly()); got != PolyN {
		t.Fatalf("|poly| = %d, want %d", got, PolyN)
	}
	if got := len(Dow()); got != DowN {
		t.Fatalf("|dow| = %d, want %d", got, DowN)
	}
}

func TestDeterminism(t *testing.T) {
	for name, gen := range map[string]func() []float64{
		"hist": Hist, "poly": Poly, "dow": Dow,
	} {
		a, b := gen(), gen()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: differs at %d between calls", name, i)
			}
		}
	}
}

func TestHistIsNearlyTenPieces(t *testing.T) {
	// The signal is a 10-piece histogram: opt_10 should capture essentially
	// all structure, i.e., the optimal 10-histogram error should be close to
	// the pure-noise floor σ√n and far below opt_1.
	q := Hist()
	_, opt10, err := baseline.ExactDP(q, HistK)
	if err != nil {
		t.Fatal(err)
	}
	_, opt1, err := baseline.ExactDP(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	noiseFloor := 0.5 * math.Sqrt(float64(HistN))
	if opt10 > 1.15*noiseFloor {
		t.Fatalf("opt_10 = %v, noise floor %v — structure not captured", opt10, noiseFloor)
	}
	if opt1 < 3*opt10 {
		t.Fatalf("opt_1 = %v vs opt_10 = %v — data not histogram-like", opt1, opt10)
	}
}

func TestPolyRangeLooksLikeFigure(t *testing.T) {
	s := Describe(Poly())
	if s.Min < -5 || s.Max > 35 {
		t.Fatalf("poly range [%v, %v] out of Figure-1 scale", s.Min, s.Max)
	}
	if s.Max < 20 {
		t.Fatalf("poly max %v too small", s.Max)
	}
}

func TestDowLooksLikeAnIndex(t *testing.T) {
	q := Dow()
	s := Describe(q)
	if s.Min <= 0 {
		t.Fatalf("dow min %v ≤ 0 — a price series must stay positive", s.Min)
	}
	// Order-of-magnitude growth with drawdowns, like the DJIA series.
	if q[len(q)-1] < 3*q[0] {
		t.Fatalf("dow grew only from %v to %v", q[0], q[len(q)-1])
	}
	maxDrawdown := 0.0
	peak := q[0]
	for _, v := range q {
		if v > peak {
			peak = v
		}
		if dd := (peak - v) / peak; dd > maxDrawdown {
			maxDrawdown = dd
		}
	}
	if maxDrawdown < 0.15 {
		t.Fatalf("max drawdown %v — too smooth to be an index", maxDrawdown)
	}
}

func TestSubsample(t *testing.T) {
	q := []float64{0, 1, 2, 3, 4, 5, 6}
	got := Subsample(q, 3)
	want := []float64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if got := Subsample(q, 1); len(got) != len(q) {
		t.Fatal("factor 1 must be identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("factor 0 should panic")
		}
	}()
	Subsample(q, 0)
}

func TestPrimeVariants(t *testing.T) {
	if got := HistPrime().N(); got != 1000 {
		t.Fatalf("hist' support %d", got)
	}
	if got := PolyPrime().N(); got != 1000 {
		t.Fatalf("poly' support %d", got)
	}
	if got := DowPrime().N(); got != 1024 {
		t.Fatalf("dow' support %d", got)
	}
	// FromWeights already validates; re-check the mass sums to 1.
	for name, masses := range map[string][]float64{
		"hist'": HistPrime().P,
		"poly'": PolyPrime().P,
		"dow'":  DowPrime().P,
	} {
		var sum float64
		for _, p := range masses {
			if p < 0 {
				t.Fatalf("%s: negative mass", name)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: total mass %v", name, sum)
		}
	}
}

func TestMergingWorksOnAllDatasets(t *testing.T) {
	// Smoke test tying datasets to the core algorithm with the paper's
	// parameters.
	for name, c := range map[string]struct {
		q []float64
		k int
	}{
		"hist": {Hist(), HistK},
		"poly": {Poly(), PolyK},
		"dow":  {Dow(), DowK},
	} {
		sf := sparse.FromDense(c.q)
		res, err := core.ConstructHistogram(sf, c.k, core.PaperOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Histogram.NumPieces() != 2*c.k+1 {
			t.Fatalf("%s: %d pieces, want 2k+1 = %d", name, res.Histogram.NumPieces(), 2*c.k+1)
		}
		if res.Error <= 0 {
			t.Fatalf("%s: zero error is implausible on noisy data", name)
		}
	}
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{1, 2, 3})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 || s.TotalSumSq != 14 {
		t.Fatalf("Describe = %+v", s)
	}
}
