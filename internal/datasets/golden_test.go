package datasets

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"
)

// hashSeries fingerprints a float series bit-exactly.
func hashSeries(q []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range q {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Golden fingerprints pin the generated data sets: every experiment in
// EXPERIMENTS.md is reproducible only if these never change. If you
// intentionally change a generator, update the fingerprint AND rerun all
// recorded experiments.
func TestGoldenFingerprints(t *testing.T) {
	got := map[string]uint64{
		"hist": hashSeries(Hist()),
		"poly": hashSeries(Poly()),
		"dow":  hashSeries(Dow()),
	}
	// On first run these log the values to pin; the constants below were
	// produced by this very test and must stay stable across platforms
	// (pure float64 arithmetic, no math/rand).
	want := map[string]uint64{
		"hist": goldenHist,
		"poly": goldenPoly,
		"dow":  goldenDow,
	}
	for name, g := range got {
		if w := want[name]; g != w {
			t.Errorf("%s fingerprint = %#x, want %#x — generator changed; "+
				"update the golden value and rerun EXPERIMENTS.md", name, g, w)
		}
	}
}

// Golden values — see TestGoldenFingerprints.
const (
	goldenHist = 0x9539ecaaa02b4372
	goldenPoly = 0x1b9d7777808b988f
	goldenDow  = 0x84fb68b3bae1843b
)
