package dist

import (
	"repro/internal/parallel"
	"repro/internal/rng"
)

// Alias is a Walker/Vose alias table over a distribution: O(n) to build,
// O(1) per draw. Building uses only integer and float comparisons in a fixed
// order, so the table — and therefore every sample stream — is deterministic.
type Alias struct {
	prob  []float64 // acceptance threshold per column, scaled to [0, 1]
	alias []int     // 0-based alternative outcome per column
}

// NewAlias builds the alias table for d in O(n).
func NewAlias(d Dist) *Alias {
	n := len(d.P)
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	// Vose's stack-based construction. scaled[i] = n·p_i; columns with
	// scaled < 1 ("small") borrow their slack from columns with scaled ≥ 1
	// ("large").
	scaled := make([]float64, n)
	for i, p := range d.P {
		scaled[i] = p * float64(n)
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i := n - 1; i >= 0; i-- { // reverse so pops come in index order
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers (either stack) have scaled ≈ 1 up to rounding: always accept.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Draw returns one sample: a 1-based point in [1, n].
func (a *Alias) Draw(r *rng.RNG) int {
	col := r.Intn(len(a.prob))
	if r.Float64() < a.prob[col] {
		return col + 1
	}
	return a.alias[col] + 1
}

// Fill fills out with i.i.d. samples from the table.
func (a *Alias) Fill(out []int, r *rng.RNG) {
	for i := range out {
		out[i] = a.Draw(r)
	}
}

// Draw returns m i.i.d. samples (1-based points) from d, using a fresh alias
// table and the caller's generator. The sample stream is a pure function of
// d and the generator state.
func Draw(d Dist, m int, r *rng.RNG) []int {
	out := make([]int, m)
	NewAlias(d).Fill(out, r)
	return out
}

// DrawWorkers draws m samples with `workers` goroutines (workers ≤ 0 means
// GOMAXPROCS): the sample is split into fixed chunks and each chunk is
// filled from its own generator, derived from r by repeated Split in chunk
// order. The result is deterministic for a given (d, seed, workers) triple
// with workers ≥ 1 — with workers ≤ 0 the effective count (and therefore
// the stream) depends on the machine — and is a different, equally i.i.d.
// stream than the serial Draw, so use it for throughput, not for replaying
// a serial experiment. r is advanced once per chunk.
func DrawWorkers(d Dist, m int, r *rng.RNG, workers int) []int {
	w := parallel.Resolve(workers)
	if w <= 1 || m < parallel.MinGrain {
		return Draw(d, m, r)
	}
	out := make([]int, m)
	a := NewAlias(d)
	// Derive the per-chunk generators serially so the assignment of streams
	// to chunks never depends on scheduling.
	rngs := make([]*rng.RNG, w)
	for i := range rngs {
		rngs[i] = r.Split()
	}
	parallel.ForChunks(w, m, w, func(ci, lo, hi int) {
		a.Fill(out[lo:hi], rngs[ci])
	})
	return out
}
