// Package dist represents probability distributions over the discrete
// universe [n] = {1, …, n}: validated mass vectors, the empirical
// distribution of a sample, and O(1)-per-draw alias sampling. It is the
// sampling front end of the learning pipeline (Section 3.1 of the paper):
// Draw produces the i.i.d. samples, Empirical turns them back into the
// sparse empirical distribution p̂_m the merging algorithms consume.
//
// All sampling is deterministic given the caller's rng.RNG seed, so every
// experiment is reproducible bit for bit.
package dist

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/parallel"
)

// massTol is the tolerance New accepts on the total mass; float64 rounding
// on a million-point distribution accumulates well below this.
const massTol = 1e-9

// Dist is a probability distribution over [1, n]: P[i] is the mass of point
// i+1. The zero value is an empty (invalid) distribution; construct with
// New, FromWeights, Uniform, or Empirical.
type Dist struct {
	// P holds the point masses. Callers must not modify it.
	P []float64
}

// New validates masses (finite, non-negative, summing to 1 within 1e-9) and
// wraps them as a Dist. The slice is retained, not copied.
func New(masses []float64) (Dist, error) {
	if len(masses) == 0 {
		return Dist{}, errors.New("dist: empty mass vector")
	}
	var sum numeric.Summer
	for i, m := range masses {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			return Dist{}, fmt.Errorf("dist: mass[%d] = %v is not finite", i, m)
		}
		if m < 0 {
			return Dist{}, fmt.Errorf("dist: mass[%d] = %v is negative", i, m)
		}
		sum.Add(m)
	}
	if total := sum.Sum(); math.Abs(total-1) > massTol {
		return Dist{}, fmt.Errorf("dist: total mass %v, want 1", total)
	}
	return Dist{P: masses}, nil
}

// FromWeights normalizes non-negative weights into a Dist, clamping negative
// weights to zero (how the paper turns raw data sets into learning targets).
// It errors if the weights are empty, non-finite, or all non-positive.
func FromWeights(weights []float64) (Dist, error) {
	if len(weights) == 0 {
		return Dist{}, errors.New("dist: empty weight vector")
	}
	p := make([]float64, len(weights))
	var sum numeric.Summer
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return Dist{}, fmt.Errorf("dist: weight[%d] = %v is not finite", i, w)
		}
		if w > 0 {
			p[i] = w
			sum.Add(w)
		}
	}
	total := sum.Sum()
	if total <= 0 {
		return Dist{}, errors.New("dist: total weight is not positive")
	}
	for i := range p {
		p[i] /= total
	}
	return Dist{P: p}, nil
}

// Uniform returns the uniform distribution over [1, n]. It panics if n < 1.
func Uniform(n int) Dist {
	if n < 1 {
		panic("dist: Uniform with n < 1")
	}
	p := make([]float64, n)
	u := 1 / float64(n)
	for i := range p {
		p[i] = u
	}
	return Dist{P: p}
}

// Empirical returns the empirical distribution p̂_m of a sample: 1-based
// points in [1, n], each contributing mass 1/m. It errors on an empty sample
// or an out-of-range point.
func Empirical(n int, samples []int) (Dist, error) {
	return EmpiricalWorkers(n, samples, 1)
}

// EmpiricalWorkers is Empirical computed with `workers` goroutines
// (workers ≤ 0 means GOMAXPROCS): each worker counts a fixed chunk of the
// sample into its own shard, and the shards are merged in worker order. The
// counts are integers, so the result is bit-identical to the serial path
// for every worker count.
func EmpiricalWorkers(n int, samples []int, workers int) (Dist, error) {
	if n < 1 {
		return Dist{}, errors.New("dist: domain size must be ≥ 1")
	}
	if len(samples) == 0 {
		return Dist{}, errors.New("dist: empty sample")
	}
	w := parallel.Resolve(workers)
	// Sharded counting only pays off when the per-shard zeroing (O(n) each)
	// is dominated by the counting work.
	if w > 1 && len(samples) < 4*n {
		w = 1
	}
	counts := make([]int, n)
	var bad error
	if w <= 1 || len(samples) < parallel.MinGrain {
		for _, x := range samples {
			if x < 1 || x > n {
				return Dist{}, fmt.Errorf("dist: sample %d out of [1, %d]", x, n)
			}
			counts[x-1]++
		}
	} else {
		shards := make([][]int, w)
		errs := make([]error, w)
		parallel.ForChunks(w, len(samples), w, func(ci, lo, hi int) {
			shard := make([]int, n)
			for _, x := range samples[lo:hi] {
				if x < 1 || x > n {
					errs[ci] = fmt.Errorf("dist: sample %d out of [1, %d]", x, n)
					return
				}
				shard[x-1]++
			}
			shards[ci] = shard
		})
		for ci, err := range errs {
			if err != nil && bad == nil {
				bad = err
			}
			if s := shards[ci]; s != nil {
				for i, c := range s {
					counts[i] += c
				}
			}
		}
	}
	if bad != nil {
		return Dist{}, bad
	}
	p := make([]float64, n)
	inv := 1 / float64(len(samples))
	for i, c := range counts {
		if c != 0 {
			p[i] = float64(c) * inv
		}
	}
	return Dist{P: p}, nil
}

// N returns the universe size n.
func (d Dist) N() int { return len(d.P) }

// Support returns the number of points with nonzero mass.
func (d Dist) Support() int {
	s := 0
	for _, m := range d.P {
		if m != 0 {
			s++
		}
	}
	return s
}

// Mass returns the total mass Σ P[i] (1 up to rounding for a valid Dist).
func (d Dist) Mass() float64 {
	var sum numeric.Summer
	for _, m := range d.P {
		sum.Add(m)
	}
	return sum.Sum()
}

// L2 returns ‖d − o‖₂. It panics if the universe sizes differ.
func (d Dist) L2(o Dist) float64 { return numeric.L2Dist(d.P, o.P) }

// L1 returns ‖d − o‖₁. It panics if the universe sizes differ.
func (d Dist) L1(o Dist) float64 { return numeric.L1Dist(d.P, o.P) }

// L2DistToVec returns the ℓ2 distance between d and an arbitrary dense
// vector over the same universe (e.g. a learned hypothesis). It panics if
// the lengths differ.
func (d Dist) L2DistToVec(q []float64) float64 { return numeric.L2Dist(d.P, q) }
