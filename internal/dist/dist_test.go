package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty masses should error")
	}
	if _, err := New([]float64{0.5, 0.6}); err == nil {
		t.Fatal("mass 1.1 should error")
	}
	if _, err := New([]float64{0.5, 0.4}); err == nil {
		t.Fatal("mass 0.9 should error")
	}
	if _, err := New([]float64{1.5, -0.5}); err == nil {
		t.Fatal("negative mass should error")
	}
	if _, err := New([]float64{math.NaN(), 1}); err == nil {
		t.Fatal("NaN mass should error")
	}
	d, err := New([]float64{0.25, 0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 || d.Support() != 3 {
		t.Fatalf("N=%d Support=%d", d.N(), d.Support())
	}
	if math.Abs(d.Mass()-1) > 1e-12 {
		t.Fatalf("mass %v", d.Mass())
	}
}

func TestFromWeights(t *testing.T) {
	if _, err := FromWeights(nil); err == nil {
		t.Fatal("empty weights should error")
	}
	if _, err := FromWeights([]float64{0, -1, 0}); err == nil {
		t.Fatal("non-positive total should error")
	}
	if _, err := FromWeights([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("Inf weight should error")
	}
	d, err := FromWeights([]float64{3, -2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.P[1] != 0 {
		t.Fatalf("negative weight not clamped: %v", d.P[1])
	}
	if math.Abs(d.Mass()-1) > 1e-12 {
		t.Fatalf("mass %v", d.Mass())
	}
	if d.P[0] != 0.75 || d.P[2] != 0.25 {
		t.Fatalf("normalization wrong: %v", d.P)
	}
}

func TestUniform(t *testing.T) {
	d := Uniform(4)
	for i, p := range d.P {
		if p != 0.25 {
			t.Fatalf("P[%d] = %v", i, p)
		}
	}
}

func TestEmpirical(t *testing.T) {
	if _, err := Empirical(5, nil); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := Empirical(5, []int{1, 6}); err == nil {
		t.Fatal("out-of-range sample should error")
	}
	if _, err := Empirical(5, []int{0}); err == nil {
		t.Fatal("sample 0 should error")
	}
	d, err := Empirical(5, []int{1, 1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0, 0.25, 0, 0.25}
	for i, p := range d.P {
		if p != want[i] {
			t.Fatalf("P = %v, want %v", d.P, want)
		}
	}
	if d.Support() != 3 {
		t.Fatalf("support %d", d.Support())
	}
}

// Sharded counting must agree exactly with the serial count for every worker
// count, including sample sizes that don't divide evenly.
func TestEmpiricalWorkersBitIdentical(t *testing.T) {
	r := rng.New(5)
	n := 64
	p := Uniform(n)
	samples := Draw(p, 100003, r)
	serial, err := Empirical(n, samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		par, err := EmpiricalWorkers(n, samples, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.P {
			if serial.P[i] != par.P[i] {
				t.Fatalf("workers=%d: P[%d] = %v vs serial %v", w, i, par.P[i], serial.P[i])
			}
		}
	}
	// Out-of-range points must be reported from the parallel path too.
	bad := append(append([]int{}, samples...), n+1)
	if _, err := EmpiricalWorkers(n, bad, 4); err == nil {
		t.Fatal("parallel path swallowed out-of-range sample")
	}
}

func TestDrawDeterministicBySeed(t *testing.T) {
	d, err := FromWeights([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	a := Draw(d, 1000, rng.New(42))
	b := Draw(d, 1000, rng.New(42))
	c := Draw(d, 1000, rng.New(43))
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed must reproduce the same samples")
	}
	if !diff {
		t.Fatal("different seeds should give different samples")
	}
	for _, x := range a {
		if x < 1 || x > 4 {
			t.Fatalf("sample %d out of range", x)
		}
	}
}

// The alias sampler must reproduce the distribution: χ²-style tolerance on a
// large sample.
func TestDrawFrequencies(t *testing.T) {
	d, err := New([]float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	m := 200000
	emp, err := Empirical(4, Draw(d, m, rng.New(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.P {
		if math.Abs(emp.P[i]-d.P[i]) > 0.01 {
			t.Fatalf("point %d: empirical %v vs true %v", i+1, emp.P[i], d.P[i])
		}
	}
}

// A point with zero mass must never be drawn (the alias table may not leak
// mass into empty columns).
func TestDrawNeverHitsZeroMass(t *testing.T) {
	d, err := New([]float64{0.5, 0, 0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range Draw(d, 50000, rng.New(11)) {
		if x == 2 || x == 4 {
			t.Fatalf("drew zero-mass point %d", x)
		}
	}
}

func TestDrawWorkersDeterministicAndDistributed(t *testing.T) {
	d, err := New([]float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	m := 100000
	a := DrawWorkers(d, m, rng.New(9), 4)
	b := DrawWorkers(d, m, rng.New(9), 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DrawWorkers must be deterministic for a fixed seed and worker count")
		}
	}
	emp, err := Empirical(4, a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.P {
		if math.Abs(emp.P[i]-d.P[i]) > 0.02 {
			t.Fatalf("point %d: empirical %v vs true %v", i+1, emp.P[i], d.P[i])
		}
	}
}

func TestL2L1(t *testing.T) {
	a := Uniform(2)
	b, err := New([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.L1(b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("L1 = %v, want 1", got)
	}
	want := math.Sqrt(0.5)
	if got := a.L2(b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("L2 = %v, want %v", got, want)
	}
	if got := a.L2DistToVec([]float64{0.5, 0.5}); got != 0 {
		t.Fatalf("L2DistToVec = %v", got)
	}
}
