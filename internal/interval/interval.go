// Package interval defines intervals over the discrete universe
// [n] = {1, …, n} and partitions of [n] into consecutive intervals, the
// combinatorial objects underlying every histogram in the repository.
//
// Conventions follow the paper: an interval J = [a, b] is the set
// {a, a+1, …, b} with 1 ≤ a ≤ b ≤ n, and |J| = b − a + 1.
package interval

import (
	"errors"
	"fmt"
)

// Interval is a non-empty closed interval [Lo, Hi] of integers, 1-based.
type Interval struct {
	Lo, Hi int
}

// New returns the interval [lo, hi]. It panics if lo > hi or lo < 1; callers
// construct intervals from already-validated positions on hot paths.
func New(lo, hi int) Interval {
	if lo < 1 || lo > hi {
		panic(fmt.Sprintf("interval: invalid [%d, %d]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// Len returns |I| = Hi − Lo + 1.
func (iv Interval) Len() int { return iv.Hi - iv.Lo + 1 }

// Contains reports whether x ∈ [Lo, Hi].
func (iv Interval) Contains(x int) bool { return iv.Lo <= x && x <= iv.Hi }

// ContainsInterval reports whether other ⊆ iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Union returns the smallest interval containing both iv and other; it
// panics unless the two are adjacent or overlapping (the merging algorithms
// only ever union consecutive intervals).
func (iv Interval) Union(other Interval) Interval {
	if other.Lo > iv.Hi+1 || iv.Lo > other.Hi+1 {
		panic(fmt.Sprintf("interval: union of non-adjacent %v and %v", iv, other))
	}
	lo, hi := iv.Lo, iv.Hi
	if other.Lo < lo {
		lo = other.Lo
	}
	if other.Hi > hi {
		hi = other.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// String renders the interval as "[lo,hi]".
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// Partition is an ordered list of disjoint consecutive intervals covering
// [1, n] exactly: p[0].Lo = 1, p[i+1].Lo = p[i].Hi + 1, p[last].Hi = n.
type Partition []Interval

// Validate checks the partition covers [1, n] contiguously.
func (p Partition) Validate(n int) error {
	if len(p) == 0 {
		return errors.New("interval: empty partition")
	}
	if p[0].Lo != 1 {
		return fmt.Errorf("interval: partition starts at %d, want 1", p[0].Lo)
	}
	for i, iv := range p {
		if iv.Lo > iv.Hi {
			return fmt.Errorf("interval: piece %d is empty: %v", i, iv)
		}
		if i > 0 && iv.Lo != p[i-1].Hi+1 {
			return fmt.Errorf("interval: gap or overlap between %v and %v", p[i-1], iv)
		}
	}
	if last := p[len(p)-1].Hi; last != n {
		return fmt.Errorf("interval: partition ends at %d, want %d", last, n)
	}
	return nil
}

// N returns the domain size covered by the partition (the Hi of the last
// piece), or 0 for an empty partition.
func (p Partition) N() int {
	if len(p) == 0 {
		return 0
	}
	return p[len(p)-1].Hi
}

// Find returns the index of the piece containing x using binary search, or
// -1 if x is outside [1, N()].
func (p Partition) Find(x int) int {
	lo, hi := 0, len(p)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case x < p[mid].Lo:
			hi = mid - 1
		case x > p[mid].Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// Boundaries returns the sorted right endpoints of all pieces; two
// partitions are equal iff their boundaries (and N) are equal.
func (p Partition) Boundaries() []int {
	bs := make([]int, len(p))
	for i, iv := range p {
		bs[i] = iv.Hi
	}
	return bs
}

// Refines reports whether p refines q: every piece of p lies inside a single
// piece of q. Both must cover the same domain.
func (p Partition) Refines(q Partition) bool {
	if p.N() != q.N() {
		return false
	}
	j := 0
	for _, iv := range p {
		for j < len(q) && q[j].Hi < iv.Hi {
			j++
		}
		if j == len(q) || !q[j].ContainsInterval(iv) {
			return false
		}
	}
	return true
}

// Uniform returns the partition of [1, n] into k pieces of near-equal length
// (the first n mod k pieces are one longer). It panics if k < 1 or k > n.
func Uniform(n, k int) Partition {
	if k < 1 || k > n {
		panic(fmt.Sprintf("interval: Uniform(%d, %d) invalid", n, k))
	}
	p := make(Partition, 0, k)
	base := n / k
	extra := n % k
	lo := 1
	for i := 0; i < k; i++ {
		length := base
		if i < extra {
			length++
		}
		p = append(p, Interval{Lo: lo, Hi: lo + length - 1})
		lo += length
	}
	return p
}

// FromBoundaries builds a partition of [1, n] whose pieces end at the given
// strictly increasing right endpoints; the final endpoint must be n.
func FromBoundaries(n int, ends []int) (Partition, error) {
	if len(ends) == 0 {
		return nil, errors.New("interval: no boundaries")
	}
	p := make(Partition, 0, len(ends))
	lo := 1
	for i, e := range ends {
		if e < lo || e > n {
			return nil, fmt.Errorf("interval: boundary %d at position %d out of order", e, i)
		}
		p = append(p, Interval{Lo: lo, Hi: e})
		lo = e + 1
	}
	if p[len(p)-1].Hi != n {
		return nil, fmt.Errorf("interval: last boundary %d ≠ n = %d", p[len(p)-1].Hi, n)
	}
	return p, nil
}
