package interval

import (
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := New(3, 7)
	if iv.Len() != 5 {
		t.Fatalf("Len = %d, want 5", iv.Len())
	}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(2) || iv.Contains(8) {
		t.Fatal("Contains boundary behaviour wrong")
	}
	if iv.String() != "[3,7]" {
		t.Fatalf("String = %q", iv.String())
	}
}

func TestNewPanics(t *testing.T) {
	for _, c := range [][2]int{{0, 5}, {5, 4}, {-1, -1}} {
		func(lo, hi int) {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", lo, hi)
				}
			}()
			New(lo, hi)
		}(c[0], c[1])
	}
}

func TestContainsInterval(t *testing.T) {
	outer := New(2, 10)
	if !outer.ContainsInterval(New(2, 10)) {
		t.Fatal("interval must contain itself")
	}
	if !outer.ContainsInterval(New(3, 9)) {
		t.Fatal("strict sub-interval")
	}
	if outer.ContainsInterval(New(1, 5)) || outer.ContainsInterval(New(5, 11)) {
		t.Fatal("overhanging intervals are not contained")
	}
}

func TestUnionAdjacent(t *testing.T) {
	a, b := New(1, 3), New(4, 8)
	u := a.Union(b)
	if u.Lo != 1 || u.Hi != 8 {
		t.Fatalf("Union = %v", u)
	}
	// Union is symmetric.
	u2 := b.Union(a)
	if u2 != u {
		t.Fatalf("Union not symmetric: %v vs %v", u, u2)
	}
}

func TestUnionNonAdjacentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("union of [1,2] and [5,6] should panic")
		}
	}()
	New(1, 2).Union(New(5, 6))
}

func TestPartitionValidate(t *testing.T) {
	good := Partition{New(1, 3), New(4, 4), New(5, 10)}
	if err := good.Validate(10); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	cases := []struct {
		name string
		p    Partition
		n    int
	}{
		{"empty", Partition{}, 5},
		{"starts late", Partition{New(2, 5)}, 5},
		{"gap", Partition{New(1, 2), New(4, 5)}, 5},
		{"overlap", Partition{New(1, 3), New(3, 5)}, 5},
		{"short", Partition{New(1, 4)}, 5},
		{"long", Partition{New(1, 6)}, 5},
	}
	for _, c := range cases {
		if err := c.p.Validate(c.n); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
}

func TestPartitionFind(t *testing.T) {
	p := Partition{New(1, 3), New(4, 4), New(5, 10)}
	cases := map[int]int{1: 0, 3: 0, 4: 1, 5: 2, 10: 2}
	for x, want := range cases {
		if got := p.Find(x); got != want {
			t.Errorf("Find(%d) = %d, want %d", x, got, want)
		}
	}
	if p.Find(0) != -1 || p.Find(11) != -1 {
		t.Error("Find outside domain should return -1")
	}
}

func TestUniform(t *testing.T) {
	p := Uniform(10, 3)
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Fatalf("pieces = %d, want 3", len(p))
	}
	// 10 = 4 + 3 + 3.
	if p[0].Len() != 4 || p[1].Len() != 3 || p[2].Len() != 3 {
		t.Fatalf("lengths = %d,%d,%d", p[0].Len(), p[1].Len(), p[2].Len())
	}
	one := Uniform(5, 5)
	for i, iv := range one {
		if iv.Len() != 1 || iv.Lo != i+1 {
			t.Fatalf("Uniform(5,5)[%d] = %v", i, iv)
		}
	}
}

func TestFromBoundaries(t *testing.T) {
	p, err := FromBoundaries(10, []int{3, 4, 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[1] != New(4, 4) {
		t.Fatalf("p = %v", p)
	}
	if _, err := FromBoundaries(10, []int{3, 3}); err == nil {
		t.Fatal("repeated boundary should error")
	}
	if _, err := FromBoundaries(10, []int{5}); err == nil {
		t.Fatal("incomplete cover should error")
	}
	if _, err := FromBoundaries(10, nil); err == nil {
		t.Fatal("empty boundaries should error")
	}
}

func TestRefines(t *testing.T) {
	fine := Partition{New(1, 2), New(3, 3), New(4, 6), New(7, 10)}
	coarse := Partition{New(1, 3), New(4, 10)}
	if !fine.Refines(coarse) {
		t.Fatal("fine should refine coarse")
	}
	if coarse.Refines(fine) {
		t.Fatal("coarse should not refine fine")
	}
	// Every partition refines itself.
	if !fine.Refines(fine) {
		t.Fatal("partition must refine itself")
	}
	// Crossing boundaries do not refine.
	cross := Partition{New(1, 5), New(6, 10)}
	other := Partition{New(1, 4), New(5, 10)}
	if cross.Refines(other) || other.Refines(cross) {
		t.Fatal("crossing partitions must not refine each other")
	}
}

// Property: Uniform always validates and has exactly k pieces whose lengths
// differ by at most 1.
func TestUniformProperty(t *testing.T) {
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		k := int(kRaw)%n + 1
		p := Uniform(n, k)
		if p.Validate(n) != nil || len(p) != k {
			return false
		}
		minLen, maxLen := n, 0
		for _, iv := range p {
			if iv.Len() < minLen {
				minLen = iv.Len()
			}
			if iv.Len() > maxLen {
				maxLen = iv.Len()
			}
		}
		return maxLen-minLen <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Boundaries round-trips through FromBoundaries.
func TestBoundariesRoundTripProperty(t *testing.T) {
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		k := int(kRaw)%n + 1
		p := Uniform(n, k)
		q, err := FromBoundaries(n, p.Boundaries())
		if err != nil || len(q) != len(p) {
			return false
		}
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
