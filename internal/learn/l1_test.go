package learn

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rng"
)

// The paper's footnote 1: the sampling/optimization decoupling works for ℓ2
// because ‖p̂_m − p‖₂ concentrates at 1/√m *independent of n*; for ℓ1 it
// fails — ‖p̂_m − p‖₁ stays Θ(1) whenever the support is much larger than
// the sample. This test demonstrates the contrast quantitatively.
func TestDecouplingFailsForL1(t *testing.T) {
	r := rng.New(347)
	n := 50000
	m := 500 // m ≪ n
	p := dist.Uniform(n)
	emp, err := dist.Empirical(n, dist.Draw(p, m, r))
	if err != nil {
		t.Fatal(err)
	}
	l2 := p.L2(emp)
	l1 := p.L1(emp)
	// ℓ2: ≈ 1/√m regardless of n (Lemma 3.1). Allow 3× slack.
	if l2 > 3.0/22.3 { // 1/√500 ≈ 0.0447
		t.Fatalf("‖p̂−p‖₂ = %v, want ≈ 1/√m", l2)
	}
	// ℓ1: nearly total — the empirical distribution misses almost all of the
	// support, so ‖p̂ − p‖₁ ≈ 2(1 − m/n) ≈ 2.
	if l1 < 1.5 {
		t.Fatalf("‖p̂−p‖₁ = %v, expected ≈ 2 for m ≪ n — the footnote-1 "+
			"decoupling failure did not manifest", l1)
	}
}

// And the flip side: with the SAME m ≪ n samples, the ℓ2 merging pipeline
// still learns a histogram-structured distribution to small ℓ2 error —
// that is exactly what Theorem 2.1's n-independence buys.
func TestL2LearningUnaffectedBySupportSize(t *testing.T) {
	r := rng.New(349)
	n := 50000
	m := 2000
	// 2-histogram distribution over the huge domain.
	w := make([]float64, n)
	for i := range w {
		if i < n/2 {
			w[i] = 3
		} else {
			w[i] = 1
		}
	}
	p, err := dist.FromWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := Histogram(p, 2, m, core.DefaultOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.L2DistToVec(h.ToDense()); got > 3.0/44.7 { // 3/√2000
		t.Fatalf("‖h−p‖₂ = %v with m=%d over n=%d", got, m, n)
	}
}
