// Package learn implements the paper's two-stage agnostic learning framework
// (Theorems 2.1–2.3, Section 3.1): draw m = O(ε⁻²·log 1/δ) i.i.d. samples
// from an unknown distribution p over [n], form the empirical distribution
// p̂_m (which is ε-close to p in ℓ2 with probability 1−δ, Lemma 3.1), and
// post-process p̂_m with the input-sparsity-time merging algorithms of
// internal/core. The output histogram h then satisfies
// ‖h − p‖₂ ≤ √(1+δ_alg)·opt_k + O(ε).
//
// The package also provides the multi-scale learner (Theorem 2.2), the
// piecewise-polynomial learner (Theorem 2.3), and the hypothesis-testing
// pair behind the Ω(ε⁻²·log 1/δ) lower bound (Theorem 3.2).
package learn

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/piecewise"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// SampleSize returns the number of samples m sufficient for
// ‖p̂_m − p‖₂ ≤ ε with probability at least 1 − δ, following the constants in
// the proof of Lemma 3.1: E[‖p̂_m − p‖₂] < 1/√m ≤ ε/4 requires m ≥ 16/ε², and
// McDiarmid with deviation η = 3ε/4 requires exp(−η²m/2) ≤ δ, i.e.
// m ≥ (32/9)·ln(1/δ)/ε².
func SampleSize(eps, delta float64) (int, error) {
	if !(eps > 0 && eps < 1) {
		return 0, fmt.Errorf("learn: eps must be in (0,1), got %v", eps)
	}
	if !(delta > 0 && delta < 1) {
		return 0, fmt.Errorf("learn: delta must be in (0,1), got %v", delta)
	}
	mMean := 16 / (eps * eps)
	mConc := 32.0 / 9.0 * math.Log(1/delta) / (eps * eps)
	m := math.Ceil(math.Max(mMean, mConc))
	return int(m), nil
}

// EmpiricalFunc converts a sample over [n] into the empirical distribution
// represented as a sparse function — the input format the merging algorithms
// consume. The sparsity is at most min(n, len(samples)).
func EmpiricalFunc(n int, samples []int) (*sparse.Func, error) {
	return EmpiricalFuncWorkers(n, samples, 1)
}

// EmpiricalFuncWorkers is EmpiricalFunc with the sample bucketing sharded
// over `workers` goroutines (0 = all cores); the shard counts are integers
// merged in shard order, so the result is bit-identical to the serial path.
func EmpiricalFuncWorkers(n int, samples []int, workers int) (*sparse.Func, error) {
	emp, err := dist.EmpiricalWorkers(n, samples, workers)
	if err != nil {
		return nil, err
	}
	entries := make([]sparse.Entry, 0, min(n, len(samples)))
	for i, p := range emp.P {
		if p != 0 {
			entries = append(entries, sparse.Entry{Index: i + 1, Value: p})
		}
	}
	return sparse.New(n, entries)
}

// Report carries the provenance of a learned hypothesis.
type Report struct {
	// M is the number of samples used.
	M int
	// Support is the number of distinct sample values (the sparsity s the
	// merging stage ran on).
	Support int
	// EmpiricalError is ‖h − p̂_m‖₂, the exact distance between hypothesis
	// and empirical distribution — the observable proxy for ‖h − p‖₂
	// (within ±ε of it, by Lemma 3.1 and the triangle inequality).
	EmpiricalError float64
	// Pieces is the number of intervals in the hypothesis.
	Pieces int
	// Rounds is the number of merging rounds used by the second stage.
	Rounds int
}

// Histogram draws m samples from p and learns an O(k)-histogram hypothesis
// (Theorem 2.1). With opts = core.DefaultOptions() and
// m = SampleSize(ε/2, δ), the result has ≤ 4k+1 pieces and satisfies
// ‖h − p‖₂ ≤ √2·opt_k + ε with probability ≥ 1 − δ.
func Histogram(p dist.Dist, k, m int, opts core.Options, r *rng.RNG) (*core.Histogram, Report, error) {
	if m < 1 {
		return nil, Report{}, fmt.Errorf("learn: sample size %d < 1", m)
	}
	samples := dist.Draw(p, m, r)
	return HistogramFromSamples(p.N(), samples, k, opts)
}

// HistogramFromSamples learns an O(k)-histogram from an already-drawn sample
// (the second stage alone). This is the entry point when samples come from a
// table scan rather than a known distribution.
func HistogramFromSamples(n int, samples []int, k int, opts core.Options) (*core.Histogram, Report, error) {
	emp, err := EmpiricalFuncWorkers(n, samples, opts.Workers)
	if err != nil {
		return nil, Report{}, err
	}
	res, err := core.ConstructHistogram(emp, k, opts)
	if err != nil {
		return nil, Report{}, err
	}
	return res.Histogram, Report{
		M:              len(samples),
		Support:        emp.Sparsity(),
		EmpiricalError: res.Error,
		Pieces:         res.Histogram.NumPieces(),
		Rounds:         res.Rounds,
	}, nil
}

// Multiscale draws m samples from p and builds the hierarchical histogram of
// Theorem 2.2: for every k, ForK(k) yields a ≤ 8k-piece hypothesis with
// ‖h_t − p‖₂ ≤ 2·opt_k + ε, and its Error field estimates ‖h_t − p‖₂ within
// ±ε.
func Multiscale(p dist.Dist, m int, r *rng.RNG) (*core.Hierarchy, Report, error) {
	if m < 1 {
		return nil, Report{}, fmt.Errorf("learn: sample size %d < 1", m)
	}
	samples := dist.Draw(p, m, r)
	return MultiscaleFromSamples(p.N(), samples)
}

// MultiscaleFromSamples is the sample-supplied variant of Multiscale. It
// runs on all cores; use MultiscaleFromSamplesWorkers to pin the count.
func MultiscaleFromSamples(n int, samples []int) (*core.Hierarchy, Report, error) {
	return MultiscaleFromSamplesWorkers(n, samples, 0)
}

// MultiscaleFromSamplesWorkers is MultiscaleFromSamples with an explicit
// worker count (0 = all cores, 1 = serial); the hierarchy is bit-identical
// for every worker count.
func MultiscaleFromSamplesWorkers(n int, samples []int, workers int) (*core.Hierarchy, Report, error) {
	emp, err := EmpiricalFuncWorkers(n, samples, workers)
	if err != nil {
		return nil, Report{}, err
	}
	h := core.ConstructHierarchicalHistogramWorkers(emp, workers)
	return h, Report{
		M:       len(samples),
		Support: emp.Sparsity(),
		Rounds:  h.NumLevels() - 1,
	}, nil
}

// PiecewisePoly draws m samples from p and learns a (O(k), d)-piecewise
// polynomial hypothesis (Theorem 2.3): ≤ (2+2/δ_alg)k+γ pieces with
// ‖f − p‖₂ ≤ √(1+δ_alg)·opt_{k,d} + O(ε).
func PiecewisePoly(p dist.Dist, k, d, m int, opts core.Options, r *rng.RNG) (*piecewise.PiecewiseFunc, Report, error) {
	if m < 1 {
		return nil, Report{}, fmt.Errorf("learn: sample size %d < 1", m)
	}
	samples := dist.Draw(p, m, r)
	return PiecewisePolyFromSamples(p.N(), samples, k, d, opts)
}

// PiecewisePolyFromSamples is the sample-supplied variant of PiecewisePoly.
func PiecewisePolyFromSamples(n int, samples []int, k, d int, opts core.Options) (*piecewise.PiecewiseFunc, Report, error) {
	emp, err := EmpiricalFuncWorkers(n, samples, opts.Workers)
	if err != nil {
		return nil, Report{}, err
	}
	res, err := piecewise.FitPiecewisePoly(emp, k, d, opts)
	if err != nil {
		return nil, Report{}, err
	}
	return res.Func, Report{
		M:              len(samples),
		Support:        emp.Sparsity(),
		EmpiricalError: res.Error,
		Pieces:         res.Func.NumPieces(),
		Rounds:         res.Rounds,
	}, nil
}

// ToDistribution converts a learned histogram into a proper distribution.
// Flattening an empirical distribution already preserves total mass 1 and
// non-negativity, so this only renormalizes away accumulated float rounding.
func ToDistribution(h *core.Histogram) (dist.Dist, error) {
	return dist.FromWeights(h.ToDense())
}

// LowerBoundPair returns the two 2-histogram distributions over [n] from the
// proof of Theorem 3.2: p1 = (1/2+ε, 1/2−ε, 0, …), p2 with the first two
// masses swapped. Any algorithm that learns to ℓ2 distance ε with
// probability 1−δ distinguishes them, which requires
// Ω(ε⁻²·log 1/δ) samples since h²(p1, p2) ≤ 3ε².
func LowerBoundPair(n int, eps float64) (dist.Dist, dist.Dist, error) {
	if n < 2 {
		return dist.Dist{}, dist.Dist{}, fmt.Errorf("learn: need n ≥ 2, got %d", n)
	}
	if !(eps > 0 && eps < 0.5) {
		return dist.Dist{}, dist.Dist{}, fmt.Errorf("learn: eps must be in (0, 1/2), got %v", eps)
	}
	p1 := make([]float64, n)
	p2 := make([]float64, n)
	p1[0], p1[1] = 0.5+eps, 0.5-eps
	p2[0], p2[1] = 0.5-eps, 0.5+eps
	d1, err := dist.New(p1)
	if err != nil {
		return dist.Dist{}, dist.Dist{}, err
	}
	d2, err := dist.New(p2)
	if err != nil {
		return dist.Dist{}, dist.Dist{}, err
	}
	return d1, d2, nil
}

// DistinguishLowerBoundPair implements the tester from the proof of
// Theorem 3.2(a): given a hypothesis q (as a dense vector over [n]), it
// returns 1 if q is ℓ2-closer to p1 and 2 otherwise.
func DistinguishLowerBoundPair(p1, p2 dist.Dist, q []float64) int {
	if p1.L2DistToVec(q) < p2.L2DistToVec(q) {
		return 1
	}
	return 2
}
