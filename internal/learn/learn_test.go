package learn

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/interval"
	"repro/internal/numeric"
	"repro/internal/rng"
)

// khistDist builds a k-histogram distribution over [n] with random piece
// masses.
func khistDist(r *rng.RNG, n, k int) dist.Dist {
	p := interval.Uniform(n, k)
	w := make([]float64, n)
	for _, iv := range p {
		v := r.Float64() + 0.05
		for x := iv.Lo; x <= iv.Hi; x++ {
			w[x-1] = v
		}
	}
	d, err := dist.FromWeights(w)
	if err != nil {
		panic(err)
	}
	return d
}

func TestSampleSizeValidation(t *testing.T) {
	for _, c := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}, {-1, 0.5}} {
		if _, err := SampleSize(c[0], c[1]); err == nil {
			t.Errorf("SampleSize(%v, %v) should error", c[0], c[1])
		}
	}
}

func TestSampleSizeScaling(t *testing.T) {
	m1, err := SampleSize(0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := SampleSize(0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Halving ε quadruples m.
	if m2 < 4*m1-4 || m2 > 4*m1+4 {
		t.Fatalf("m(ε/2) = %d, want ≈ 4·m(ε) = %d", m2, 4*m1)
	}
	// Decreasing δ increases m only logarithmically.
	m3, err := SampleSize(0.1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if m3 < m1 {
		t.Fatal("smaller δ must not decrease m")
	}
	if float64(m3) > 10*float64(m1) {
		t.Fatalf("δ dependence too strong: %d vs %d", m3, m1)
	}
}

func TestEmpiricalFunc(t *testing.T) {
	f, err := EmpiricalFunc(5, []int{1, 1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 5 || f.Sparsity() != 3 {
		t.Fatalf("N=%d s=%d", f.N(), f.Sparsity())
	}
	if f.At(1) != 0.5 || f.At(3) != 0.25 || f.At(2) != 0 {
		t.Fatal("empirical masses wrong")
	}
	if _, err := EmpiricalFunc(5, nil); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := EmpiricalFunc(5, []int{9}); err == nil {
		t.Fatal("out-of-range sample should error")
	}
}

func TestHistogramLearnsKHistogramDistribution(t *testing.T) {
	// opt_k = 0 for a k-histogram distribution, so the learned error must be
	// O(ε) with m = SampleSize(ε, δ) samples (Theorem 2.1 with opt = 0).
	r := rng.New(167)
	n, k := 200, 5
	p := khistDist(r, n, k)
	eps := 0.05
	m, err := SampleSize(eps, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	h, rep, err := Histogram(p, k, m, core.DefaultOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.M != m || rep.Pieces != h.NumPieces() {
		t.Fatalf("report inconsistent: %+v", rep)
	}
	got := p.L2DistToVec(h.ToDense())
	// Theory: ≤ √2·opt + O(ε) = O(ε). Allow 2ε slack for the triangle
	// inequality through the empirical distribution.
	if got > 2*eps {
		t.Fatalf("‖h − p‖₂ = %v > 2ε = %v", got, 2*eps)
	}
	if h.NumPieces() > core.DefaultOptions().TargetPieces(k) {
		t.Fatalf("pieces = %d", h.NumPieces())
	}
}

func TestHistogramHypothesisIsDistribution(t *testing.T) {
	r := rng.New(173)
	p := khistDist(r, 100, 4)
	h, _, err := Histogram(p, 4, 5000, core.DefaultOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Mass()-1) > 1e-9 {
		t.Fatalf("hypothesis mass = %v, want 1 (flattening preserves mass)", h.Mass())
	}
	d, err := ToDistribution(h)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 100 {
		t.Fatal("distribution conversion wrong universe")
	}
}

func TestHistogramErrorDecreasesWithSamples(t *testing.T) {
	r := rng.New(179)
	p := khistDist(r, 300, 8)
	var prev float64 = math.Inf(1)
	for _, m := range []int{100, 10000} {
		var total float64
		const trials = 5
		for tr := 0; tr < trials; tr++ {
			h, _, err := Histogram(p, 8, m, core.DefaultOptions(), r)
			if err != nil {
				t.Fatal(err)
			}
			total += p.L2DistToVec(h.ToDense())
		}
		mean := total / trials
		if mean > prev {
			t.Fatalf("mean error increased with more samples: %v -> %v", prev, mean)
		}
		prev = mean
	}
}

func TestHistogramFromSamplesMatchesReport(t *testing.T) {
	r := rng.New(181)
	p := khistDist(r, 150, 3)
	samples := dist.Draw(p, 2000, r)
	h, rep, err := HistogramFromSamples(150, samples, 3, core.PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	emp, err := dist.Empirical(150, samples)
	if err != nil {
		t.Fatal(err)
	}
	if got := emp.L2DistToVec(h.ToDense()); !numeric.AlmostEqual(got, rep.EmpiricalError, 1e-9) {
		t.Fatalf("EmpiricalError %v, actual %v", rep.EmpiricalError, got)
	}
	if rep.Support != emp.Support() {
		t.Fatalf("Support %d vs %d", rep.Support, emp.Support())
	}
}

func TestMultiscaleTheorem22(t *testing.T) {
	// One hierarchy must serve every k with ≤ 8k pieces, error ≤ 2·opt_k + ε,
	// and an error estimate within ±ε of the true distance to p.
	r := rng.New(191)
	n := 200
	p := khistDist(r, n, 6)
	eps := 0.05
	m, err := SampleSize(eps, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	hier, _, err := Multiscale(p, m, r)
	if err != nil {
		t.Fatal(err)
	}
	dense := make([]float64, n)
	copy(dense, p.P)
	for _, k := range []int{1, 2, 4, 6, 10} {
		res, err := hier.ForK(k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Histogram.NumPieces() > 8*k {
			t.Fatalf("k=%d: %d pieces > 8k", k, res.Histogram.NumPieces())
		}
		_, opt, err := baseline.ExactDP(dense, k)
		if err != nil {
			t.Fatal(err)
		}
		trueErr := p.L2DistToVec(res.Histogram.ToDense())
		if trueErr > 2*opt+2*eps {
			t.Fatalf("k=%d: ‖h−p‖ = %v > 2·opt + 2ε = %v", k, trueErr, 2*opt+2*eps)
		}
		// e_t within ±2ε of the true error.
		if math.Abs(res.Error-trueErr) > 2*eps {
			t.Fatalf("k=%d: estimate %v vs true %v", k, res.Error, trueErr)
		}
	}
}

func TestPiecewisePolyLearning(t *testing.T) {
	// A linear-density distribution is a (1, 1)-piecewise polynomial:
	// opt_{1,1} = 0, so the learned error must be O(ε).
	r := rng.New(193)
	n := 200
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i + 1)
	}
	p, err := dist.FromWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	f, rep, err := PiecewisePoly(p, 1, 1, 20000, core.DefaultOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	got := p.L2DistToVec(f.ToDense())
	if got > 0.05 {
		t.Fatalf("‖f − p‖₂ = %v on a linear density", got)
	}
	if rep.Pieces != f.NumPieces() {
		t.Fatalf("report pieces mismatch")
	}
}

func TestLearnValidation(t *testing.T) {
	r := rng.New(197)
	p := dist.Uniform(10)
	if _, _, err := Histogram(p, 1, 0, core.DefaultOptions(), r); err == nil {
		t.Fatal("m=0 should error")
	}
	if _, _, err := Multiscale(p, 0, r); err == nil {
		t.Fatal("m=0 should error")
	}
	if _, _, err := PiecewisePoly(p, 1, 0, 0, core.DefaultOptions(), r); err == nil {
		t.Fatal("m=0 should error")
	}
}

func TestLowerBoundPair(t *testing.T) {
	p1, p2, err := LowerBoundPair(10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// ‖p1 − p2‖₂ = 2√2·ε? The paper states 2√2ε but the two distributions
	// differ by 2ε at two points: √(2·(2ε)²) = 2√2·ε.
	want := 2 * math.Sqrt2 * 0.1
	if got := p1.L2(p2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("‖p1−p2‖₂ = %v, want %v", got, want)
	}
	// Both are 2-histogram distributions with support {1, 2}.
	if p1.Support() != 2 || p2.Support() != 2 {
		t.Fatal("supports wrong")
	}
	if _, _, err := LowerBoundPair(1, 0.1); err == nil {
		t.Fatal("n=1 should error")
	}
	if _, _, err := LowerBoundPair(10, 0.6); err == nil {
		t.Fatal("eps ≥ 1/2 should error")
	}
}

func TestDistinguishLowerBoundPair(t *testing.T) {
	p1, p2, err := LowerBoundPair(4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := DistinguishLowerBoundPair(p1, p2, p1.P); got != 1 {
		t.Fatalf("q=p1 classified as %d", got)
	}
	if got := DistinguishLowerBoundPair(p1, p2, p2.P); got != 2 {
		t.Fatalf("q=p2 classified as %d", got)
	}
}

func TestLowerBoundEmpirically(t *testing.T) {
	// With m ≫ 1/ε² samples the learn-then-test pipeline distinguishes the
	// pair with high probability; with m ≪ 1/ε² it cannot do much better
	// than chance. This demonstrates the Θ(1/ε²) transition of Theorem 3.2.
	r := rng.New(199)
	eps := 0.1
	p1, p2, err := LowerBoundPair(4, eps)
	if err != nil {
		t.Fatal(err)
	}
	run := func(m, trials int) int {
		correct := 0
		for tr := 0; tr < trials; tr++ {
			truth := p1
			want := 1
			if tr%2 == 1 {
				truth = p2
				want = 2
			}
			emp, err := dist.Empirical(4, dist.Draw(truth, m, r))
			if err != nil {
				t.Fatal(err)
			}
			if DistinguishLowerBoundPair(p1, p2, emp.P) == want {
				correct++
			}
		}
		return correct
	}
	const trials = 200
	rich := run(40*int(1/(eps*eps)), trials) // m = 4000 ≫ 1/ε²
	poor := run(2, trials)                   // m = 2 ≪ 1/ε² = 100
	if rich < trials*95/100 {
		t.Fatalf("with many samples only %d/%d correct", rich, trials)
	}
	if poor > trials*80/100 {
		t.Fatalf("with 2 samples %d/%d correct — too good, pair too easy", poor, trials)
	}
}
