package numeric

import (
	"errors"
	"math"
)

// ErrSingular is returned by SolveLinear and PolyFitLS when the system matrix
// is numerically singular.
var ErrSingular = errors.New("numeric: singular matrix")

// SolveLinear solves the square linear system A·x = b in place using Gaussian
// elimination with partial pivoting. A is given row-major as a slice of rows;
// A and b are overwritten. It returns ErrSingular when a pivot is smaller
// than ~1e3 ULPs of the largest matrix entry.
//
// The merging algorithms never call this; it exists as a brute-force oracle
// against which the Gram-polynomial projection (internal/cheby) is tested,
// and for the small Vandermonde solves in the data-set generators.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("numeric: SolveLinear shape mismatch")
	}
	var maxEntry float64
	for _, row := range a {
		if len(row) != n {
			return nil, errors.New("numeric: SolveLinear non-square matrix")
		}
		for _, v := range row {
			if av := math.Abs(v); av > maxEntry {
				maxEntry = av
			}
		}
	}
	tiny := maxEntry * 1e-13
	if tiny == 0 {
		tiny = 1e-300
	}

	for col := 0; col < n; col++ {
		// Partial pivoting: swap in the row with the largest entry in col.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < tiny {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}

	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// PolyFitLS fits a degree-d polynomial to the points (xs[i], ys[i]) by
// ordinary least squares via the normal equations. It returns the monomial
// coefficients c[0..d] of c0 + c1·x + ... + cd·x^d.
//
// This is O(d²·len + d³) and numerically fragile for large x ranges — it is
// the *test oracle* for cheby.FitPoly, not a production path. Callers should
// center xs before fitting when the range is large.
func PolyFitLS(xs, ys []float64, d int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("numeric: PolyFitLS length mismatch")
	}
	if d < 0 {
		return nil, errors.New("numeric: PolyFitLS negative degree")
	}
	m := d + 1
	// Normal equations: (VᵀV)c = Vᵀy with V the Vandermonde matrix.
	ata := make([][]float64, m)
	for i := range ata {
		ata[i] = make([]float64, m)
	}
	atb := make([]float64, m)
	pow := make([]float64, 2*d+1)
	for i, x := range xs {
		pow[0] = 1
		for p := 1; p <= 2*d; p++ {
			pow[p] = pow[p-1] * x
		}
		for r := 0; r < m; r++ {
			for c := 0; c < m; c++ {
				ata[r][c] += pow[r+c]
			}
			atb[r] += pow[r] * ys[i]
		}
	}
	return SolveLinear(ata, atb)
}

// EvalPoly evaluates the polynomial with monomial coefficients c at x using
// Horner's rule.
func EvalPoly(c []float64, x float64) float64 {
	var y float64
	for i := len(c) - 1; i >= 0; i-- {
		y = y*x + c[i]
	}
	return y
}
