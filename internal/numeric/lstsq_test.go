package numeric

import (
	"math"
	"testing"
)

func TestSolveLinearIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, -4}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != -4 {
		t.Fatalf("x = %v, want [3 -4]", x)
	}
}

func TestSolveLinear3x3(t *testing.T) {
	// x + y + z = 6; 2y + 5z = -4; 2x + 5y - z = 27 → x=5, y=3, z=-2.
	a := [][]float64{{1, 1, 1}, {0, 2, 5}, {2, 5, -1}}
	b := []float64{6, -4, 27}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, -2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero pivot in position (0,0) requires row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearShapeErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Fatal("empty system should error")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("non-square matrix should error")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched b should error")
	}
}

func TestPolyFitLSExact(t *testing.T) {
	// Points on 2 - 3x + 0.5x² must be recovered exactly (up to rounding).
	coef := []float64{2, -3, 0.5}
	var xs, ys []float64
	for i := 0; i < 20; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, EvalPoly(coef, x))
	}
	got, err := PolyFitLS(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coef {
		if math.Abs(got[i]-coef[i]) > 1e-8 {
			t.Fatalf("coef = %v, want %v", got, coef)
		}
	}
}

func TestPolyFitLSDegreeZero(t *testing.T) {
	// Degree-0 fit is the mean.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7}
	got, err := PolyFitLS(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-4) > 1e-12 {
		t.Fatalf("degree-0 coef = %v, want 4", got[0])
	}
}

func TestPolyFitLSErrors(t *testing.T) {
	if _, err := PolyFitLS([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := PolyFitLS([]float64{1}, []float64{1}, -1); err == nil {
		t.Fatal("negative degree should error")
	}
}

func TestEvalPoly(t *testing.T) {
	// 1 + 2x + 3x² at x=2 → 1 + 4 + 12 = 17.
	if got := EvalPoly([]float64{1, 2, 3}, 2); got != 17 {
		t.Fatalf("EvalPoly = %v, want 17", got)
	}
	if got := EvalPoly(nil, 5); got != 0 {
		t.Fatalf("EvalPoly(nil) = %v, want 0", got)
	}
}
