package numeric

// PrefixSSE holds prefix sums of a dense vector q and of its squares,
// supporting O(1) queries for the sum, mean, and sum-of-squared-error of any
// interval. Indices are 1-based and inclusive, matching the paper's
// convention for intervals over [n].
//
// This is the dense analogue of the paper's precomputed partial sums r_j and
// t_j (Algorithm 1, lines 6-7). The merging algorithms themselves carry
// per-interval statistics instead, but the dynamic-programming baselines and
// the synopsis layer need arbitrary-interval queries and use this table.
type PrefixSSE struct {
	// sum[i] = q[1] + ... + q[i]; sum[0] = 0.
	sum []float64
	// sumSq[i] = q[1]² + ... + q[i]²; sumSq[0] = 0.
	sumSq []float64
}

// NewPrefixSSE builds the prefix table for q, where q[0] is the value of
// point 1. Construction is O(len(q)).
func NewPrefixSSE(q []float64) *PrefixSSE {
	n := len(q)
	p := &PrefixSSE{
		sum:   make([]float64, n+1),
		sumSq: make([]float64, n+1),
	}
	var s, sc, s2, s2c float64 // Kahan-compensated running sums.
	for i, x := range q {
		y := x - sc
		t := s + y
		sc = (t - s) - y
		s = t

		y2 := x*x - s2c
		t2 := s2 + y2
		s2c = (t2 - s2) - y2
		s2 = t2

		p.sum[i+1] = s
		p.sumSq[i+1] = s2
	}
	return p
}

// N returns the domain size n the table was built for.
func (p *PrefixSSE) N() int { return len(p.sum) - 1 }

// Sum returns q[a] + ... + q[b] for 1 ≤ a ≤ b ≤ n.
func (p *PrefixSSE) Sum(a, b int) float64 {
	p.check(a, b)
	return p.sum[b] - p.sum[a-1]
}

// SumSq returns q[a]² + ... + q[b]².
func (p *PrefixSSE) SumSq(a, b int) float64 {
	p.check(a, b)
	return p.sumSq[b] - p.sumSq[a-1]
}

// Mean returns the mean of q over [a, b] — the value of the best
// 1-histogram approximation on that interval (Definition 3.1).
func (p *PrefixSSE) Mean(a, b int) float64 {
	return p.Sum(a, b) / float64(b-a+1)
}

// SSE returns err_q([a,b]) = Σ_{i∈[a,b]} (q(i) − μ)², the squared ℓ2 error of
// flattening q on [a, b] (Definition 3.1). The result is clamped at 0.
func (p *PrefixSSE) SSE(a, b int) float64 {
	s := p.Sum(a, b)
	return ClampNonNeg(p.SumSq(a, b) - s*s/float64(b-a+1))
}

func (p *PrefixSSE) check(a, b int) {
	if a < 1 || b > p.N() || a > b {
		panic("numeric: PrefixSSE interval out of range")
	}
}
