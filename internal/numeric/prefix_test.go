package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func naiveSSE(q []float64, a, b int) float64 {
	seg := q[a-1 : b]
	mu := Mean(seg)
	var s float64
	for _, x := range seg {
		s += (x - mu) * (x - mu)
	}
	return s
}

func TestPrefixSSEBasic(t *testing.T) {
	q := []float64{1, 2, 3, 4, 5}
	p := NewPrefixSSE(q)
	if p.N() != 5 {
		t.Fatalf("N = %d, want 5", p.N())
	}
	if got := p.Sum(1, 5); got != 15 {
		t.Fatalf("Sum(1,5) = %v, want 15", got)
	}
	if got := p.Sum(2, 4); got != 9 {
		t.Fatalf("Sum(2,4) = %v, want 9", got)
	}
	if got := p.SumSq(1, 5); got != 55 {
		t.Fatalf("SumSq(1,5) = %v, want 55", got)
	}
	if got := p.Mean(2, 4); got != 3 {
		t.Fatalf("Mean(2,4) = %v, want 3", got)
	}
	// SSE of 1..5 around mean 3 is 4+1+0+1+4 = 10.
	if got := p.SSE(1, 5); math.Abs(got-10) > 1e-12 {
		t.Fatalf("SSE(1,5) = %v, want 10", got)
	}
}

func TestPrefixSSESinglePoint(t *testing.T) {
	p := NewPrefixSSE([]float64{7, -3})
	if got := p.SSE(1, 1); got != 0 {
		t.Fatalf("SSE of single point = %v, want 0", got)
	}
	if got := p.SSE(2, 2); got != 0 {
		t.Fatalf("SSE of single point = %v, want 0", got)
	}
}

func TestPrefixSSEConstantInterval(t *testing.T) {
	q := make([]float64, 100)
	for i := range q {
		q[i] = 3.25
	}
	p := NewPrefixSSE(q)
	if got := p.SSE(1, 100); got != 0 {
		t.Fatalf("SSE of constant vector = %v, want 0 (clamped)", got)
	}
}

func TestPrefixSSEOutOfRangePanics(t *testing.T) {
	p := NewPrefixSSE([]float64{1, 2, 3})
	for _, c := range [][2]int{{0, 1}, {1, 4}, {3, 2}} {
		func(a, b int) {
			defer func() {
				if recover() == nil {
					t.Errorf("Sum(%d,%d) should panic", a, b)
				}
			}()
			p.Sum(a, b)
		}(c[0], c[1])
	}
}

// Property: prefix SSE matches the naive two-pass computation on random
// vectors and random intervals.
func TestPrefixSSEMatchesNaiveProperty(t *testing.T) {
	f := func(raw []float64, ai, bi uint8) bool {
		var q []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				q = append(q, x)
			}
		}
		if len(q) == 0 {
			return true
		}
		a := int(ai)%len(q) + 1
		b := int(bi)%len(q) + 1
		if a > b {
			a, b = b, a
		}
		p := NewPrefixSSE(q)
		got := p.SSE(a, b)
		want := naiveSSE(q, a, b)
		return AlmostEqual(got, want, 1e-6) || math.Abs(got-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SSE is superadditive under splitting — splitting an interval
// never increases total SSE (flattening finer is never worse).
func TestPrefixSSESplitProperty(t *testing.T) {
	f := func(raw []float64, mi uint8) bool {
		var q []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				q = append(q, x)
			}
		}
		if len(q) < 2 {
			return true
		}
		p := NewPrefixSSE(q)
		n := len(q)
		m := int(mi)%(n-1) + 1 // split point in [1, n-1]
		whole := p.SSE(1, n)
		split := p.SSE(1, m) + p.SSE(m+1, n)
		return split <= whole+1e-9*(1+whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
