// Package numeric provides the low-level numerical building blocks shared by
// the histogram algorithms: compensated summation, prefix-sum tables with
// O(1) interval sum-of-squared-error queries, a small dense least-squares
// solver (used as a test oracle for the polynomial projection), and float
// comparison helpers.
//
// Everything in this package is allocation-conscious: the merging algorithms
// call into it on their hot paths.
package numeric

import "math"

// Summer is a streaming Kahan (compensated) accumulator: Add values one at
// a time, read the running total with Sum. It produces bit-identical results
// to Sum over the same values in the same order, without requiring the
// caller to materialize them in a slice — the zero-allocation building block
// of the sparse hot paths.
type Summer struct {
	sum, comp float64
}

// Add folds x into the accumulator.
func (s *Summer) Add(x float64) {
	y := x - s.comp
	t := s.sum + y
	s.comp = (t - s.sum) - y
	s.sum = t
}

// Sum returns the compensated running total.
func (s *Summer) Sum() float64 { return s.sum }

// Sum returns the sum of xs using Kahan (compensated) summation.
//
// The histogram algorithms repeatedly subtract large, nearly equal partial
// sums; compensated summation keeps the interval statistics accurate enough
// that the greedy merge order matches exact arithmetic on all the data sets
// we generate.
func Sum(xs []float64) float64 {
	var s Summer
	for _, x := range xs {
		s.Add(x)
	}
	return s.Sum()
}

// SumSq returns the sum of squares of xs using Kahan summation.
func SumSq(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x*x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by len, not
// len-1), or 0 for an empty slice. It uses the two-pass algorithm for
// stability.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var sum, comp float64
	for _, x := range xs {
		d := x - mu
		y := d*d - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Dot returns the inner product of a and b. It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: Dot length mismatch")
	}
	var sum, comp float64
	for i, x := range a {
		y := x*b[i] - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// L2Norm returns sqrt(Σ xs[i]²).
func L2Norm(xs []float64) float64 { return math.Sqrt(SumSq(xs)) }

// L2Dist returns the Euclidean distance between a and b. It panics if the
// lengths differ.
func L2Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: L2Dist length mismatch")
	}
	var sum, comp float64
	for i, x := range a {
		d := x - b[i]
		y := d*d - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return math.Sqrt(sum)
}

// L1Dist returns the ℓ1 distance between a and b. It panics if the lengths
// differ.
func L1Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: L1Dist length mismatch")
	}
	var sum, comp float64
	for i, x := range a {
		y := math.Abs(x-b[i]) - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// ClampNonNeg returns x if x > 0 and 0 otherwise. Interval SSE values are
// mathematically non-negative but can round slightly below zero; every
// err computation in the repository clamps through this helper so that
// downstream square roots never produce NaN.
func ClampNonNeg(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

// AlmostEqual reports whether a and b are equal to within tol, either
// absolutely or relative to the larger magnitude. It treats NaN as unequal to
// everything.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
