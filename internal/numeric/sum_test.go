package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
	if got := SumSq(nil); got != 0 {
		t.Fatalf("SumSq(nil) = %v, want 0", got)
	}
}

func TestSumSimple(t *testing.T) {
	xs := []float64{1, 2, 3, 4.5}
	if got := Sum(xs); got != 10.5 {
		t.Fatalf("Sum = %v, want 10.5", got)
	}
	if got, want := SumSq(xs), 1.0+4+9+20.25; got != want {
		t.Fatalf("SumSq = %v, want %v", got, want)
	}
}

func TestSumCompensation(t *testing.T) {
	// 1 + 1e-16 repeated: naive float64 summation loses every tiny term;
	// Kahan keeps them.
	xs := make([]float64, 0, 2_000_001)
	xs = append(xs, 1)
	for i := 0; i < 2_000_000; i++ {
		xs = append(xs, 1e-16)
	}
	got := Sum(xs)
	want := 1 + 2_000_000*1e-16
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("Sum = %.18f, want %.18f", got, want)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMeanVarianceEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("Mean/Variance of empty slice should be 0")
	}
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths should panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestL2Dist(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := L2Dist(a, b); got != 5 {
		t.Fatalf("L2Dist = %v, want 5", got)
	}
	if got := L2Norm(b); got != 5 {
		t.Fatalf("L2Norm = %v, want 5", got)
	}
}

func TestL1Dist(t *testing.T) {
	a := []float64{1, -2, 3}
	b := []float64{0, 0, 0}
	if got := L1Dist(a, b); got != 6 {
		t.Fatalf("L1Dist = %v, want 6", got)
	}
}

func TestClampNonNeg(t *testing.T) {
	if ClampNonNeg(-1e-18) != 0 {
		t.Fatal("negative values must clamp to 0")
	}
	if ClampNonNeg(2.5) != 2.5 {
		t.Fatal("positive values must pass through")
	}
}

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 2, 1e-9, false},
		{1e18, 1e18 * (1 + 1e-12), 1e-9, true},
		{math.NaN(), 1, 1, false},
		{1, math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

// Property: Sum agrees with naive summation to high relative accuracy on
// random moderate-magnitude inputs.
func TestSumMatchesNaiveProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			clean = append(clean, x)
		}
		var naive float64
		for _, x := range clean {
			naive += x
		}
		return AlmostEqual(Sum(clean), naive, 1e-6) || math.Abs(naive) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: L2Dist is a metric on random vectors — symmetry and triangle
// inequality.
func TestL2DistMetricProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		n := len(xs) / 3
		if n == 0 {
			return true
		}
		a, b, c := xs[:n], xs[n:2*n], xs[2*n:3*n]
		dab, dba := L2Dist(a, b), L2Dist(b, a)
		dac, dcb := L2Dist(a, c), L2Dist(c, b)
		if dab != dba {
			return false
		}
		return dab <= dac+dcb+1e-9*(1+dac+dcb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
