// Package parallel is the execution engine behind the multi-core merging,
// selection, and sampling paths: deterministic chunked parallel-for over an
// index range.
//
// Determinism is the design constraint. Every construct here fixes the
// chunk boundaries as a pure function of (n, chunks) — never of timing —
// and callers arrange their work so that each chunk writes only its own
// output region and cross-chunk reductions happen serially in chunk order.
// Under those rules the floating-point results are bit-identical for every
// worker count, which is what lets Options.Workers default to all cores
// without changing any algorithm output (see internal/core).
//
// Workers are spawned per call rather than kept in a persistent pool: the
// merging rounds that use this package each carry at least MinGrain items
// of work, so goroutine startup (~1 µs each) is noise, and per-call
// spawning keeps the package free of shared state, shutdown ordering, and
// leaked-goroutine hazards under `go test -race`.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MinGrain is the number of items below which parallel dispatch costs more
// than it saves; callers use it as the serial cutoff.
const MinGrain = 2048

// Resolve maps a Workers knob to an effective worker count: values ≤ 0 mean
// GOMAXPROCS (all cores), anything else is used as given.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// chunkBound returns the start of chunk ci when [0, n) is cut into `chunks`
// equal parts: ⌊ci·n/chunks⌋. Depends only on (n, chunks).
func chunkBound(ci, n, chunks int) int { return ci * n / chunks }

// NumChunks returns the number of chunks ForChunks will actually run for a
// range of n items and a requested chunk count: min(chunks, n), at least 1
// when n > 0. Callers sizing per-chunk scratch use this.
func NumChunks(n, chunks int) int {
	if n <= 0 {
		return 0
	}
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// ForChunks cuts [0, n) into NumChunks(n, chunks) fixed ranges and calls
// fn(ci, lo, hi) once per chunk, running up to `workers` chunks
// concurrently. Chunks are handed out by an atomic counter, so scheduling
// order varies but the (ci, lo, hi) triples never do. With workers ≤ 1 the
// chunks run inline in index order — the same code path the parallel
// workers execute, just sequentially.
func ForChunks(workers, n, chunks int, fn func(ci, lo, hi int)) {
	chunks = NumChunks(n, chunks)
	if chunks == 0 {
		return
	}
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for ci := 0; ci < chunks; ci++ {
			fn(ci, chunkBound(ci, n, chunks), chunkBound(ci+1, n, chunks))
		}
		return
	}
	forChunksParallel(workers, n, chunks, fn)
}

// forChunksParallel is the multi-goroutine branch of ForChunks, split out so
// that its escaping coordination state (wait group, atomic cursor) is never
// allocated on the serial path — the zero-alloc guarantee of the merging
// rounds depends on it.
func forChunksParallel(workers, n, chunks int, fn func(ci, lo, hi int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= chunks {
					return
				}
				fn(ci, chunkBound(ci, n, chunks), chunkBound(ci+1, n, chunks))
			}
		}()
	}
	wg.Wait()
}
