package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d", got)
	}
	if got := Resolve(5); got != 5 {
		t.Fatalf("Resolve(5) = %d", got)
	}
}

func TestNumChunks(t *testing.T) {
	cases := []struct{ n, chunks, want int }{
		{0, 4, 0}, {-1, 4, 0}, {3, 8, 3}, {100, 4, 4}, {100, 0, 1},
	}
	for _, c := range cases {
		if got := NumChunks(c.n, c.chunks); got != c.want {
			t.Errorf("NumChunks(%d, %d) = %d, want %d", c.n, c.chunks, got, c.want)
		}
	}
}

// Chunk boundaries must cover [0, n) exactly once and be identical for every
// worker count.
func TestForChunksCoverage(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 4097} {
		for _, workers := range []int{1, 2, 8, 64} {
			hits := make([]int32, n)
			ForChunks(workers, n, workers, func(_, lo, hi int) {
				if lo >= hi {
					t.Errorf("empty chunk [%d, %d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

// The (ci, lo, hi) triples are a pure function of (n, chunks), independent
// of the worker count.
func TestForChunksDeterministicBoundaries(t *testing.T) {
	n, chunks := 100003, 16
	collect := func(workers int) map[int][2]int {
		out := make([]([2]int), NumChunks(n, chunks))
		ForChunks(workers, n, chunks, func(ci, lo, hi int) {
			out[ci] = [2]int{lo, hi}
		})
		m := make(map[int][2]int, len(out))
		for ci, b := range out {
			m[ci] = b
		}
		return m
	}
	serial := collect(1)
	for _, w := range []int{2, 4, 32} {
		got := collect(w)
		for ci, b := range serial {
			if got[ci] != b {
				t.Fatalf("chunk %d: workers=%d gives %v, serial gives %v", ci, w, got[ci], b)
			}
		}
	}
}

func TestForChunksSums(t *testing.T) {
	n := 10000
	var total atomic.Int64
	ForChunks(8, n, 8, func(_, lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		total.Add(local)
	})
	want := int64(n) * int64(n-1) / 2
	if total.Load() != want {
		t.Fatalf("sum = %d, want %d", total.Load(), want)
	}
}
