package piecewise

import (
	"fmt"
	"io"

	"repro/internal/cheby"
	"repro/internal/codec"
	"repro/internal/interval"
)

// Fit kinds on the wire. A fitted piece is either a constant (the
// histogram/flattening oracle) or a Gram-basis polynomial (the Chebyshev
// projection oracle); those are the two evaluator types the construction
// paths produce. Values are part of the format: never renumber.
const (
	fitConst byte = 0
	fitPoly  byte = 1
)

// EncodePayload writes the piecewise function's wire payload: domain size,
// then per piece the boundary delta, squared fit error, and the fit itself
// (kind byte + parameters). It returns an error for evaluator types outside
// the wire vocabulary rather than guessing at their state.
func EncodePayload(w *codec.Writer, f *PiecewiseFunc) error {
	w.Int(f.n)
	ends := make([]int, len(f.pieces))
	for i, pc := range f.pieces {
		ends[i] = pc.Hi
	}
	w.DeltaInts(ends)
	for i, pc := range f.pieces {
		w.Float64(pc.ErrSq)
		switch fit := pc.Fit.(type) {
		case constEval:
			w.Byte(fitConst)
			w.Float64(float64(fit))
		case cheby.Projection:
			w.Byte(fitPoly)
			w.Int(fit.D)
			w.Float64s(fit.Coeffs)
		default:
			return fmt.Errorf("piecewise: piece %d has unencodable fit type %T", i, pc.Fit)
		}
	}
	return nil
}

// DecodePayload reads and validates a piecewise function payload: a proper
// partition of [1, n], finite non-negative piece errors, and per-piece fits
// whose shape matches their interval (coefficient counts are checked by
// cheby.FromCoeffs against the effective degree).
func DecodePayload(r *codec.Reader) (*PiecewiseFunc, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	ends, err := r.DeltaInts()
	if err != nil {
		return nil, err
	}
	if len(ends) == 0 {
		return nil, fmt.Errorf("piecewise: empty partition")
	}
	if ends[0] < 1 || ends[len(ends)-1] != n {
		return nil, fmt.Errorf("piecewise: boundaries do not cover [1, %d]", n)
	}
	pieces := make([]FittedPiece, len(ends))
	lo := 1
	for i, hi := range ends {
		errSq, err := r.FiniteFloat64()
		if err != nil {
			return nil, err
		}
		if errSq < 0 {
			return nil, fmt.Errorf("piecewise: piece %d has negative squared error %v", i, errSq)
		}
		kind, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		var fit Evaluator
		switch kind {
		case fitConst:
			v, err := r.FiniteFloat64()
			if err != nil {
				return nil, err
			}
			fit = constEval(v)
		case fitPoly:
			d, err := r.Int()
			if err != nil {
				return nil, err
			}
			coeffs, err := r.Float64s()
			if err != nil {
				return nil, err
			}
			proj, err := cheby.FromCoeffs(lo, hi, d, coeffs, errSq)
			if err != nil {
				return nil, fmt.Errorf("piecewise: piece %d: %w", i, err)
			}
			fit = proj
		default:
			return nil, fmt.Errorf("piecewise: unknown fit kind %d", kind)
		}
		// DeltaInts guarantees strictly increasing ends and ends[0] ≥ 1 was
		// checked above, so [lo, hi] is always a valid interval here.
		pieces[i] = FittedPiece{Interval: interval.New(lo, hi), Fit: fit, ErrSq: errSq}
		lo = hi + 1
	}
	return &PiecewiseFunc{n: n, pieces: pieces}, nil
}

// WriteTo encodes the piecewise function as one binary envelope (see
// internal/codec) and implements io.WriterTo. encode→decode→encode is
// bit-identical, and a decoded function evaluates bit-identically at every
// point (the Gram recurrence is a pure function of the stored coefficients).
func (f *PiecewiseFunc) WriteTo(w io.Writer) (int64, error) {
	enc := codec.NewWriter(w, codec.TagPiecewisePoly)
	if err := EncodePayload(enc, f); err != nil {
		return enc.Len(), err
	}
	err := enc.Close()
	return enc.Len(), err
}

// ReadFrom decodes one binary envelope into the receiver and implements
// io.ReaderFrom. Validation happens before the receiver is touched.
func (f *PiecewiseFunc) ReadFrom(r io.Reader) (int64, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return dec.Len(), err
	}
	if tag != codec.TagPiecewisePoly {
		return dec.Len(), fmt.Errorf("piecewise: envelope holds type tag %d, not a piecewise function", tag)
	}
	fresh, err := DecodePayload(dec)
	if err != nil {
		return dec.Len(), err
	}
	if err := dec.Close(); err != nil {
		return dec.Len(), err
	}
	*f = *fresh
	return dec.Len(), nil
}

// Decode reads one piecewise-function envelope from r.
func Decode(r io.Reader) (*PiecewiseFunc, error) {
	f := new(PiecewiseFunc)
	if _, err := f.ReadFrom(r); err != nil {
		return nil, err
	}
	return f, nil
}
