package piecewise

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestPiecewisePolyBinaryRoundTrip(t *testing.T) {
	r := rng.New(808)
	fixtures := map[string][]float64{
		"quadratic + noise": func() []float64 {
			q := make([]float64, 400)
			for i := range q {
				x := float64(i) / 400
				q[i] = 3*x*x - 2*x + 0.25*r.NormFloat64()
			}
			return q
		}(),
		"tiny": {1, 2},
		"sparse spikes": func() []float64 {
			q := make([]float64, 300)
			for i := 0; i < len(q); i += 41 {
				q[i] = float64(i)
			}
			return q
		}(),
	}
	for name, q := range fixtures {
		for _, d := range []int{0, 1, 3} {
			res, err := FitPiecewisePoly(sparse.FromDense(q), 4, d, core.DefaultOptions())
			if err != nil {
				t.Fatalf("%s d=%d: fit: %v", name, d, err)
			}
			f := res.Func
			var buf bytes.Buffer
			if n, err := f.WriteTo(&buf); err != nil || n != int64(buf.Len()) {
				t.Fatalf("%s d=%d: WriteTo = %d, %v", name, d, n, err)
			}
			blob := append([]byte{}, buf.Bytes()...)
			back, err := Decode(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("%s d=%d: decode: %v", name, d, err)
			}
			// encode→decode→encode bit-identity.
			buf.Reset()
			if _, err := back.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, buf.Bytes()) {
				t.Fatalf("%s d=%d: re-encoded bytes differ", name, d)
			}
			// Every point evaluates bit-identically; Error matches.
			if back.NumPieces() != f.NumPieces() || back.N() != f.N() {
				t.Fatalf("%s d=%d: shape differs", name, d)
			}
			for i := 1; i <= f.N(); i++ {
				if math.Float64bits(back.At(i)) != math.Float64bits(f.At(i)) {
					t.Fatalf("%s d=%d: At(%d) = %v, want %v", name, d, i, back.At(i), f.At(i))
				}
			}
			if math.Float64bits(back.Error()) != math.Float64bits(f.Error()) {
				t.Fatalf("%s d=%d: Error differs", name, d)
			}
		}
	}
}

func TestPiecewiseConstOracleRoundTrip(t *testing.T) {
	q := sparse.FromDense([]float64{1, 1, 5, 5, 5, 2})
	res, err := ConstructGeneralHistogram(q, 2, core.DefaultOptions(), NewHistOracle(q))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := res.Func.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= q.N(); i++ {
		if back.At(i) != res.Func.At(i) {
			t.Fatalf("At(%d) differs", i)
		}
	}
}

func TestPiecewiseBinaryRejectsMalformed(t *testing.T) {
	q := sparse.FromDense([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	res, err := FitPiecewisePoly(q, 2, 1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := res.Func.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for cut := 0; cut < len(good); cut++ {
		if _, err := Decode(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d/%d", cut, len(good))
		}
	}
	for pos := 6; pos < len(good)-1; pos++ {
		bad := append([]byte{}, good...)
		bad[pos] ^= 0x08
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d decoded silently", pos)
		}
	}
}
