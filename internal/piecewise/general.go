package piecewise

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/selection"
	"repro/internal/sparse"
)

// FittedPiece is one interval of a piecewise F-function with its fit and the
// fit's squared error against the input.
type FittedPiece struct {
	interval.Interval
	Fit   Evaluator
	ErrSq float64
}

// PiecewiseFunc is a k-piecewise F-function (Definition 4.2): a partition of
// [1, n] with a member of F fitted on each piece.
type PiecewiseFunc struct {
	n      int
	pieces []FittedPiece
}

// N returns the domain size.
func (f *PiecewiseFunc) N() int { return f.n }

// NumPieces returns the number of interval pieces.
func (f *PiecewiseFunc) NumPieces() int { return len(f.pieces) }

// Pieces returns the fitted pieces in domain order.
func (f *PiecewiseFunc) Pieces() []FittedPiece { return f.pieces }

// Partition returns the underlying interval partition.
func (f *PiecewiseFunc) Partition() interval.Partition {
	p := make(interval.Partition, len(f.pieces))
	for i, pc := range f.pieces {
		p[i] = pc.Interval
	}
	return p
}

// At returns f(i) for i ∈ [1, n].
func (f *PiecewiseFunc) At(i int) float64 {
	if i < 1 || i > f.n {
		panic(fmt.Sprintf("piecewise: At(%d) out of [1, %d]", i, f.n))
	}
	lo, hi := 0, len(f.pieces)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if f.pieces[mid].Hi < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return f.pieces[lo].Fit.Eval(i)
}

// ToDense materializes f on [1, n].
func (f *PiecewiseFunc) ToDense() []float64 {
	out := make([]float64, f.n)
	for _, pc := range f.pieces {
		for x := pc.Lo; x <= pc.Hi; x++ {
			out[x-1] = pc.Fit.Eval(x)
		}
	}
	return out
}

// Error returns ‖f − q‖₂ = sqrt(Σ per-piece ErrSq), exact by construction
// since each piece's fit error is computed by the oracle.
func (f *PiecewiseFunc) Error() float64 {
	var sum float64
	for _, pc := range f.pieces {
		sum += pc.ErrSq
	}
	return math.Sqrt(sum)
}

// Result is the output of ConstructGeneralHistogram.
type Result struct {
	// Func is the fitted piecewise F-function.
	Func *PiecewiseFunc
	// Error is ‖f − q‖₂.
	Error float64
	// Rounds is the number of merging iterations performed.
	Rounds int
}

// ConstructGeneralHistogram is the paper's generalized merging algorithm
// (Section 4.1): identical control flow to Algorithm 1, but candidate merge
// errors come from the projection oracle O for the function class F instead
// of the flattening statistics. By Theorem 4.1 the output has at most
// (2 + 2/δ)k + γ pieces and error at most √(1+δ) times the best k-piecewise
// F-function's error.
func ConstructGeneralHistogram(q *sparse.Func, k int, opts core.Options, oracle Oracle) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("piecewise: k must be ≥ 1, got %d", k)
	}
	if oracle == nil {
		return Result{}, fmt.Errorf("piecewise: nil oracle")
	}
	// Reuse core's parameter validation by querying the derived quantities.
	if opts.Delta <= 0 || math.IsNaN(opts.Delta) || math.IsInf(opts.Delta, 0) {
		return Result{}, fmt.Errorf("piecewise: Delta must be positive and finite, got %v", opts.Delta)
	}
	if opts.Gamma < 1 || math.IsNaN(opts.Gamma) || math.IsInf(opts.Gamma, 0) {
		return Result{}, fmt.Errorf("piecewise: Gamma must be ≥ 1, got %v", opts.Gamma)
	}

	ivs := []interval.Interval(q.InitialPartition())
	target := opts.TargetPieces(k)
	keep := opts.KeepBudget(k)
	rounds := 0

	errs := make([]float64, 0, len(ivs)/2)
	next := make([]interval.Interval, 0, len(ivs))
	for len(ivs) > target {
		s := len(ivs)
		pairs := s / 2
		kp := keep
		if kp >= pairs {
			kp = pairs - 1
		}
		if kp < 0 {
			kp = 0
		}

		errs = errs[:0]
		for u := 0; u < pairs; u++ {
			errs = append(errs, oracle.ErrSq(ivs[2*u].Lo, ivs[2*u+1].Hi))
		}
		// Tie handling mirrors core's pairRound: strictly-greater pairs
		// always split (at most kp−1 of them); ties get only the leftover
		// budget so no round can split every pair and stall.
		var cut float64
		if kp > 0 {
			cut = selection.Threshold(errs, kp)
		} else {
			cut = math.Inf(1)
		}
		greater := 0
		for _, e := range errs {
			if e > cut {
				greater++
			}
		}
		tieLeft := kp - greater
		if tieLeft < 0 {
			tieLeft = 0
		}

		next = next[:0]
		for u := 0; u < pairs; u++ {
			e := errs[u]
			tie := e == cut && tieLeft > 0
			if e > cut || tie {
				if tie {
					tieLeft--
				}
				next = append(next, ivs[2*u], ivs[2*u+1])
			} else {
				next = append(next, ivs[2*u].Union(ivs[2*u+1]))
			}
		}
		if s%2 == 1 {
			next = append(next, ivs[s-1])
		}
		ivs, next = next, ivs
		rounds++
	}

	pieces := make([]FittedPiece, len(ivs))
	var sumErrSq float64
	for i, iv := range ivs {
		fit := oracle.Fit(iv.Lo, iv.Hi)
		errSq := oracle.ErrSq(iv.Lo, iv.Hi)
		pieces[i] = FittedPiece{Interval: iv, Fit: fit, ErrSq: errSq}
		sumErrSq += errSq
	}
	f := &PiecewiseFunc{n: q.N(), pieces: pieces}
	return Result{Func: f, Error: math.Sqrt(sumErrSq), Rounds: rounds}, nil
}

// FitPiecewisePoly runs ConstructGeneralHistogram with the degree-d
// polynomial oracle — the paper's Corollary 4.1. The output is a
// ((2+2/δ)k+γ)-piecewise degree-d polynomial with error at most
// √(1+δ)·opt_{k,d}.
func FitPiecewisePoly(q *sparse.Func, k, d int, opts core.Options) (Result, error) {
	oracle, err := NewPolyOracle(q, d)
	if err != nil {
		return Result{}, err
	}
	return ConstructGeneralHistogram(q, k, opts, oracle)
}
