package piecewise

import (
	"math"
	"testing"

	"repro/internal/cheby"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// optKD computes the exact optimal (k,d)-piecewise polynomial error via
// dynamic programming with projection errors from the Gram oracle. O(n²·k)
// oracle calls — tiny inputs only.
func optKD(q []float64, k, d int) float64 {
	n := len(q)
	sf := sparse.FromDense(q)
	oracle, err := NewPolyOracle(sf, d)
	if err != nil {
		panic(err)
	}
	// errSq[a][b] cache.
	errSq := func(a, b int) float64 { return oracle.ErrSq(a, b) }
	const inf = math.MaxFloat64
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		prev[i] = errSq(1, i)
	}
	for j := 2; j <= k; j++ {
		for i := 1; i <= n; i++ {
			best := inf
			for l := j - 1; l < i; l++ {
				if v := prev[l] + errSq(l+1, i); v < best {
					best = v
				}
			}
			cur[i] = best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(numeric.ClampNonNeg(prev[n]))
}

// piecewisePolyData builds a dense vector that is exactly a k-piecewise
// degree-d polynomial plus optional noise.
func piecewisePolyData(r *rng.RNG, n, k, d int, sigma float64) []float64 {
	p := interval.Uniform(n, k)
	q := make([]float64, n)
	for _, iv := range p {
		coef := make([]float64, d+1)
		for c := range coef {
			coef[c] = r.NormFloat64() / math.Pow(float64(iv.Len()), float64(c))
		}
		for x := iv.Lo; x <= iv.Hi; x++ {
			t := float64(x - iv.Lo)
			q[x-1] = numeric.EvalPoly(coef, t)*5 + sigma*r.NormFloat64()
		}
	}
	return q
}

func TestPolyOracleDegreeZeroMatchesHistOracle(t *testing.T) {
	r := rng.New(89)
	q := make([]float64, 150)
	for i := range q {
		if r.Float64() < 0.5 {
			q[i] = r.NormFloat64()
		}
	}
	sf := sparse.FromDense(q)
	po, err := NewPolyOracle(sf, 0)
	if err != nil {
		t.Fatal(err)
	}
	ho := NewHistOracle(sf)
	for _, c := range [][2]int{{1, 150}, {1, 1}, {10, 20}, {149, 150}, {37, 111}} {
		a, b := c[0], c[1]
		if !numeric.AlmostEqual(po.ErrSq(a, b), ho.ErrSq(a, b), 1e-9) {
			t.Fatalf("[%d,%d]: poly %v vs hist %v", a, b, po.ErrSq(a, b), ho.ErrSq(a, b))
		}
		if !numeric.AlmostEqual(po.Fit(a, b).Eval(a), ho.Fit(a, b).Eval(a), 1e-9) {
			t.Fatalf("[%d,%d]: fitted values differ", a, b)
		}
	}
}

func TestNewPolyOracleValidation(t *testing.T) {
	sf := sparse.FromDense([]float64{1})
	if _, err := NewPolyOracle(sf, -1); err == nil {
		t.Fatal("negative degree should error")
	}
}

func TestGeneralHistogramWithHistOracleMatchesAlg1(t *testing.T) {
	// Section 4.1: with the flattening oracle, the generalized algorithm is
	// Algorithm 1 — same partitions, same error.
	r := rng.New(97)
	q := make([]float64, 600)
	for i := range q {
		q[i] = r.NormFloat64() * float64(1+i/100)
	}
	sf := sparse.FromDense(q)
	for _, k := range []int{2, 5, 11} {
		alg1, err := core.ConstructHistogram(sf, k, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		gen, err := ConstructGeneralHistogram(sf, k, core.DefaultOptions(), NewHistOracle(sf))
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(alg1.Error, gen.Error, 1e-9) {
			t.Fatalf("k=%d: Alg1 error %v vs general %v", k, alg1.Error, gen.Error)
		}
		p1, p2 := alg1.Partition, gen.Func.Partition()
		if len(p1) != len(p2) {
			t.Fatalf("k=%d: partition sizes differ: %d vs %d", k, len(p1), len(p2))
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("k=%d: partitions diverge at %d: %v vs %v", k, i, p1[i], p2[i])
			}
		}
	}
}

func TestFitPiecewisePolyExactRecovery(t *testing.T) {
	// opt_{k,d} = 0 for data that is exactly a k-piecewise degree-d
	// polynomial, so by Theorem 4.1 the output error must be ~0.
	r := rng.New(101)
	for trial := 0; trial < 10; trial++ {
		n := 100 + r.Intn(200)
		k := 1 + r.Intn(3)
		d := r.Intn(3)
		q := piecewisePolyData(r, n, k, d, 0)
		sf := sparse.FromDense(q)
		res, err := FitPiecewisePoly(sf, k, d, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		scale := numeric.L2Norm(q)
		if res.Error > 1e-6*(1+scale) {
			t.Fatalf("trial %d (n=%d k=%d d=%d): error %v on exact data",
				trial, n, k, d, res.Error)
		}
	}
}

func TestFitPiecewisePolyGuarantee(t *testing.T) {
	// Theorem 4.1 / Corollary 4.1: error ≤ √(1+δ)·opt_{k,d} and pieces ≤
	// (2+2/δ)k + γ, against the exact DP.
	r := rng.New(103)
	for trial := 0; trial < 8; trial++ {
		n := 30 + r.Intn(40)
		k := 1 + r.Intn(3)
		d := r.Intn(3)
		q := piecewisePolyData(r, n, k, d, 0.5)
		opt := optKD(q, k, d)
		sf := sparse.FromDense(q)
		res, err := FitPiecewisePoly(sf, k, d, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got, max := res.Func.NumPieces(), core.DefaultOptions().TargetPieces(k); got > max {
			t.Fatalf("trial %d: %d pieces > %d", trial, got, max)
		}
		bound := math.Sqrt2*opt + 1e-6*(1+numeric.L2Norm(q))
		if res.Error > bound {
			t.Fatalf("trial %d (n=%d k=%d d=%d): error %v > √2·opt = %v",
				trial, n, k, d, res.Error, bound)
		}
	}
}

func TestFitPiecewisePolyBeatsHistogramOnSmoothData(t *testing.T) {
	// A degree-2 fit with few pieces should beat a histogram with the same
	// piece budget on smooth polynomial data — the paper's motivation for
	// piecewise polynomials as a more succinct synopsis.
	r := rng.New(107)
	n := 500
	q := make([]float64, n)
	for i := range q {
		x := float64(i) / float64(n)
		q[i] = 30*x*x - 20*x + 5 + 0.1*r.NormFloat64()
	}
	sf := sparse.FromDense(q)
	hist, err := core.ConstructHistogram(sf, 4, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	poly, err := FitPiecewisePoly(sf, 4, 2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if poly.Error >= hist.Error {
		t.Fatalf("poly error %v should beat histogram error %v", poly.Error, hist.Error)
	}
}

func TestPiecewiseFuncAccessors(t *testing.T) {
	q := []float64{1, 2, 3, 4, 5, 6}
	sf := sparse.FromDense(q)
	res, err := FitPiecewisePoly(sf, 1, 1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := res.Func
	if f.N() != 6 {
		t.Fatalf("N = %d", f.N())
	}
	dense := f.ToDense()
	for i := range q {
		if !numeric.AlmostEqual(dense[i], q[i], 1e-9) {
			t.Fatalf("linear data should fit exactly: %v vs %v", dense[i], q[i])
		}
		if !numeric.AlmostEqual(f.At(i+1), q[i], 1e-9) {
			t.Fatalf("At(%d) = %v, want %v", i+1, f.At(i+1), q[i])
		}
	}
	if err := f.Partition().Validate(6); err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(f.Error(), res.Error, 1e-12) {
		t.Fatalf("Error() %v vs result %v", f.Error(), res.Error)
	}
}

func TestPiecewiseFuncAtPanics(t *testing.T) {
	sf := sparse.FromDense([]float64{1, 2})
	res, _ := FitPiecewisePoly(sf, 1, 0, core.DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("At(0) should panic")
		}
	}()
	res.Func.At(0)
}

func TestConstructGeneralHistogramValidation(t *testing.T) {
	sf := sparse.FromDense([]float64{1, 2, 3})
	o := NewHistOracle(sf)
	if _, err := ConstructGeneralHistogram(sf, 0, core.DefaultOptions(), o); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := ConstructGeneralHistogram(sf, 1, core.DefaultOptions(), nil); err == nil {
		t.Fatal("nil oracle should error")
	}
	if _, err := ConstructGeneralHistogram(sf, 1, core.Options{Delta: -1, Gamma: 1}, o); err == nil {
		t.Fatal("bad delta should error")
	}
	if _, err := ConstructGeneralHistogram(sf, 1, core.Options{Delta: 1, Gamma: 0}, o); err == nil {
		t.Fatal("bad gamma should error")
	}
}

func TestProjectionOracleConsistency(t *testing.T) {
	// Projection used inside the oracle must agree with calling cheby
	// directly.
	r := rng.New(109)
	q := make([]float64, 80)
	for i := range q {
		if r.Float64() < 0.6 {
			q[i] = r.NormFloat64()
		}
	}
	sf := sparse.FromDense(q)
	oracle, err := NewPolyOracle(sf, 2)
	if err != nil {
		t.Fatal(err)
	}
	es := sf.Entries()
	var in []sparse.Entry
	for _, e := range es {
		if e.Index >= 11 && e.Index <= 60 {
			in = append(in, e)
		}
	}
	direct, err := cheby.Project(in, 11, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(oracle.ErrSq(11, 60), direct.ErrSq, 1e-12) {
		t.Fatalf("oracle %v vs direct %v", oracle.ErrSq(11, 60), direct.ErrSq)
	}
}
