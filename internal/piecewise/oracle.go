// Package piecewise implements Section 4 of the paper: the generalized
// merging algorithm ConstructGeneralHistogram, which fits k-piecewise
// F-functions for any function class F equipped with a projection oracle
// (Definition 4.1), and its specialization to piecewise degree-d polynomials
// via the Gram polynomial oracle (Theorem 4.2 / Corollary 4.1).
package piecewise

import (
	"fmt"
	"sort"

	"repro/internal/cheby"
	"repro/internal/sparse"
)

// Evaluator is a fitted member of the function class F on some interval.
type Evaluator interface {
	// Eval returns the fitted function's value at absolute index i.
	Eval(i int) float64
}

// Oracle is the paper's projection oracle (Definition 4.1) for a function
// class F over a fixed s-sparse input q: given an interval [a, b] it returns
// the squared ℓ2 error of the best fit g ∈ F to q on [a, b], and the fit
// itself.
type Oracle interface {
	// ErrSq returns min_{g∈F} ‖g_I − q_I‖₂² for I = [a, b].
	ErrSq(a, b int) float64
	// Fit returns the minimizing g restricted to [a, b].
	Fit(a, b int) Evaluator
}

// PolyOracle projects onto degree-d polynomials using the discrete Chebyshev
// basis (the paper's FitPolyd). Each query costs O(d·s_I + log s) where s_I
// is the number of nonzeros inside the queried interval.
type PolyOracle struct {
	q *sparse.Func
	d int
}

// NewPolyOracle returns the degree-d polynomial projection oracle for q.
func NewPolyOracle(q *sparse.Func, d int) (*PolyOracle, error) {
	if d < 0 {
		return nil, fmt.Errorf("piecewise: negative degree %d", d)
	}
	return &PolyOracle{q: q, d: d}, nil
}

// Degree returns the oracle's polynomial degree d.
func (o *PolyOracle) Degree() int { return o.d }

// entriesIn returns the nonzeros of q with indices in [a, b] via binary
// search over the sorted entries.
func (o *PolyOracle) entriesIn(a, b int) []sparse.Entry {
	es := o.q.Entries()
	lo := sort.Search(len(es), func(i int) bool { return es[i].Index >= a })
	hi := sort.Search(len(es), func(i int) bool { return es[i].Index > b })
	return es[lo:hi]
}

// ErrSq implements Oracle.
func (o *PolyOracle) ErrSq(a, b int) float64 {
	p, err := cheby.Project(o.entriesIn(a, b), a, b, o.d)
	if err != nil {
		panic(fmt.Sprintf("piecewise: projection failed on validated interval: %v", err))
	}
	return p.ErrSq
}

// Fit implements Oracle.
func (o *PolyOracle) Fit(a, b int) Evaluator {
	p, err := cheby.Project(o.entriesIn(a, b), a, b, o.d)
	if err != nil {
		panic(fmt.Sprintf("piecewise: projection failed on validated interval: %v", err))
	}
	return p
}

// HistOracle is the constant-function oracle: projecting onto degree-0
// polynomials is exactly the flattening of Definition 3.1. It exists to
// demonstrate (and test) that ConstructGeneralHistogram with this oracle is
// Algorithm 1, as Section 4.1 observes. It answers queries in O(log s) using
// prefix sums over the nonzeros.
type HistOracle struct {
	q *sparse.Func
	// cumSum[i], cumSumSq[i]: sums over the first i entries.
	cumSum, cumSumSq []float64
}

// NewHistOracle builds the flattening oracle for q.
func NewHistOracle(q *sparse.Func) *HistOracle {
	es := q.Entries()
	o := &HistOracle{
		q:        q,
		cumSum:   make([]float64, len(es)+1),
		cumSumSq: make([]float64, len(es)+1),
	}
	for i, e := range es {
		o.cumSum[i+1] = o.cumSum[i] + e.Value
		o.cumSumSq[i+1] = o.cumSumSq[i] + e.Value*e.Value
	}
	return o
}

func (o *HistOracle) stat(a, b int) sparse.Stat {
	es := o.q.Entries()
	lo := sort.Search(len(es), func(i int) bool { return es[i].Index >= a })
	hi := sort.Search(len(es), func(i int) bool { return es[i].Index > b })
	return sparse.Stat{
		Len:   b - a + 1,
		Sum:   o.cumSum[hi] - o.cumSum[lo],
		SumSq: o.cumSumSq[hi] - o.cumSumSq[lo],
	}
}

// ErrSq implements Oracle: err_q([a,b]).
func (o *HistOracle) ErrSq(a, b int) float64 { return o.stat(a, b).SSE() }

// Fit implements Oracle: the constant μ_q([a,b]).
func (o *HistOracle) Fit(a, b int) Evaluator { return constEval(o.stat(a, b).Mean()) }

type constEval float64

func (c constEval) Eval(int) float64 { return float64(c) }
