package quantile

import (
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/core"
)

// The CDF's wire payload is exactly its histogram's payload: the prefix
// masses and total are derived state, rebuilt (in the same accumulation
// order, hence bit-identically) by New on decode.

// EncodePayload writes the CDF's wire payload.
func EncodePayload(w *codec.Writer, c *CDF) {
	core.EncodeHistogramPayload(w, c.h)
}

// DecodePayload reads and validates a CDF payload, enforcing everything New
// enforces: a well-formed partition, non-negative pieces, positive total
// mass.
func DecodePayload(r *codec.Reader) (*CDF, error) {
	h, err := core.DecodeHistogramPayload(r)
	if err != nil {
		return nil, err
	}
	c, err := New(h)
	if err != nil {
		return nil, fmt.Errorf("quantile: decoding CDF: %w", err)
	}
	return c, nil
}

// WriteTo encodes the CDF as one binary envelope (see internal/codec) and
// implements io.WriterTo.
func (c *CDF) WriteTo(w io.Writer) (int64, error) {
	enc := codec.NewWriter(w, codec.TagCDF)
	EncodePayload(enc, c)
	err := enc.Close()
	return enc.Len(), err
}

// ReadFrom decodes one binary envelope into the receiver and implements
// io.ReaderFrom. Validation happens before the receiver is touched; a
// restored CDF answers At / Quantile / Median / Summary bit-identically.
func (c *CDF) ReadFrom(r io.Reader) (int64, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return dec.Len(), err
	}
	if tag != codec.TagCDF {
		return dec.Len(), fmt.Errorf("quantile: envelope holds type tag %d, not a CDF", tag)
	}
	fresh, err := DecodePayload(dec)
	if err != nil {
		return dec.Len(), err
	}
	if err := dec.Close(); err != nil {
		return dec.Len(), err
	}
	*c = *fresh
	return dec.Len(), nil
}

// Decode reads one CDF envelope from r.
func Decode(r io.Reader) (*CDF, error) {
	c := new(CDF)
	if _, err := c.ReadFrom(r); err != nil {
		return nil, err
	}
	return c, nil
}
