package quantile

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestCDFBinaryRoundTrip(t *testing.T) {
	r := rng.New(515)
	q := make([]float64, 500)
	for i := range q {
		q[i] = math.Abs(r.NormFloat64()) + 0.01
	}
	res, err := core.ConstructHistogram(sparse.FromDense(q), 8, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(res.Histogram)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n, err := c.WriteTo(&buf); err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo = %d, %v", n, err)
	}
	blob := append([]byte{}, buf.Bytes()...)
	back, err := Decode(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := back.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, buf.Bytes()) {
		t.Fatal("re-encoded bytes differ")
	}
	if math.Float64bits(back.Total()) != math.Float64bits(c.Total()) {
		t.Fatalf("Total = %v, want %v", back.Total(), c.Total())
	}
	for x := 0; x <= 500; x += 7 {
		want, err1 := c.At(x)
		got, err2 := back.At(x)
		if err1 != nil || err2 != nil || math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("At(%d) = %v (%v), want %v (%v)", x, got, err2, want, err1)
		}
	}
	for p := 0.05; p <= 1; p += 0.05 {
		want, err1 := c.Quantile(p)
		got, err2 := back.Quantile(p)
		if err1 != nil || err2 != nil || got != want {
			t.Fatalf("Quantile(%v) = %d, want %d", p, got, want)
		}
	}
}

func TestCDFBinaryRejectsNegativeMass(t *testing.T) {
	// A histogram with a negative piece is a valid histogram but not a valid
	// CDF; the CDF decoder must enforce its own construction invariants.
	h := core.NewHistogram(10,
		interval.Partition{interval.New(1, 5), interval.New(6, 10)},
		[]float64{1, -1})
	var buf bytes.Buffer
	w := codec.NewWriter(&buf, codec.TagCDF)
	core.EncodeHistogramPayload(w, h)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("decoded a CDF with negative piece mass")
	}
}
