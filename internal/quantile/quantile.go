// Package quantile answers cumulative-distribution and quantile queries from
// a histogram summary — the other half of the database-synopsis story:
// once a column's distribution is compressed to O(k) pieces, medians,
// percentiles, and CDF probes come from the summary in O(log k) without
// touching the data again.
//
// Queries interpret the histogram as a mass function over [1, n] with the
// standard continuous-uniform spread inside each piece. Negative piece
// values (possible for summaries of signed data) are rejected at
// construction: quantiles are only meaningful for non-negative mass.
package quantile

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// CDF answers cumulative and inverse-cumulative queries from a histogram.
type CDF struct {
	h *core.Histogram
	// cum[i] = total mass of pieces 0..i-1; cum[len(pieces)] = total mass.
	cum   []float64
	total float64
}

// New validates the histogram (non-negative pieces, positive total mass) and
// precomputes piece prefix masses in O(pieces).
func New(h *core.Histogram) (*CDF, error) {
	pieces := h.Pieces()
	cum := make([]float64, len(pieces)+1)
	for i, pc := range pieces {
		if pc.Value < 0 {
			return nil, fmt.Errorf("quantile: piece %d has negative value %v", i, pc.Value)
		}
		cum[i+1] = cum[i] + pc.Value*float64(pc.Len())
	}
	total := cum[len(pieces)]
	if total <= 0 {
		return nil, fmt.Errorf("quantile: total mass %v is not positive", total)
	}
	return &CDF{h: h, cum: cum, total: total}, nil
}

// Total returns the histogram's total mass.
func (c *CDF) Total() float64 { return c.total }

// At returns F(x) = (mass of [1, x]) / total for x ∈ [0, n]; At(0) = 0.
func (c *CDF) At(x int) (float64, error) {
	if x < 0 || x > c.h.N() {
		return 0, fmt.Errorf("quantile: x = %d out of [0, %d]", x, c.h.N())
	}
	if x == 0 {
		return 0, nil
	}
	pieces := c.h.Pieces()
	// Point location on the histogram's query index: closure-free and
	// allocation-free, shared with At/RangeSum serving.
	i := c.h.PieceIndex(x)
	mass := c.cum[i] + pieces[i].Value*float64(x-pieces[i].Lo+1)
	return mass / c.total, nil
}

// Quantile returns the smallest x ∈ [1, n] with F(x) ≥ p, for p ∈ (0, 1].
func (c *CDF) Quantile(p float64) (int, error) {
	if !(p > 0 && p <= 1) {
		return 0, fmt.Errorf("quantile: p = %v out of (0, 1]", p)
	}
	targetMass := p * c.total
	pieces := c.h.Pieces()
	// First piece whose cumulative end-mass reaches the target.
	i := sort.Search(len(pieces), func(j int) bool { return c.cum[j+1] >= targetMass })
	if i == len(pieces) {
		return c.h.N(), nil
	}
	pc := pieces[i]
	if pc.Value <= 0 {
		// Zero-mass piece reached only when targetMass == cum[i]; the
		// quantile is the end of the previous mass.
		return pc.Lo, nil
	}
	// Points needed inside the piece: ceil((targetMass − cum[i]) / value).
	need := (targetMass - c.cum[i]) / pc.Value
	offset := int(need)
	if float64(offset) < need {
		offset++
	}
	if offset < 1 {
		offset = 1
	}
	x := pc.Lo + offset - 1
	if x > pc.Hi {
		x = pc.Hi
	}
	return x, nil
}

// Median returns Quantile(0.5).
func (c *CDF) Median() (int, error) { return c.Quantile(0.5) }

// Summary returns the q-quantile sketch: Quantile(i/q) for i = 1..q (the
// final entry is the maximum-mass point n or earlier).
func (c *CDF) Summary(q int) ([]int, error) {
	if q < 1 {
		return nil, fmt.Errorf("quantile: q must be ≥ 1, got %d", q)
	}
	out := make([]int, q)
	for i := 1; i <= q; i++ {
		x, err := c.Quantile(float64(i) / float64(q))
		if err != nil {
			return nil, err
		}
		out[i-1] = x
	}
	return out, nil
}
