package quantile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func histFrom(values []float64) *core.Histogram {
	sf := sparse.FromDense(values)
	p := sf.InitialPartition()
	return core.FlattenHistogram(sf, p)
}

func uniformHist(n int) *core.Histogram {
	return core.NewHistogram(n, interval.Partition{interval.New(1, n)}, []float64{1})
}

func TestNewValidation(t *testing.T) {
	neg := core.NewHistogram(2, interval.Partition{interval.New(1, 2)}, []float64{-1})
	if _, err := New(neg); err == nil {
		t.Fatal("negative pieces should error")
	}
	zero := core.NewHistogram(2, interval.Partition{interval.New(1, 2)}, []float64{0})
	if _, err := New(zero); err == nil {
		t.Fatal("zero mass should error")
	}
}

func TestCDFUniform(t *testing.T) {
	c, err := New(uniformHist(100))
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 100 {
		t.Fatalf("total %v", c.Total())
	}
	for _, x := range []int{1, 25, 50, 100} {
		f, err := c.At(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f-float64(x)/100) > 1e-12 {
			t.Fatalf("F(%d) = %v", x, f)
		}
	}
	if f, _ := c.At(0); f != 0 {
		t.Fatal("F(0) must be 0")
	}
	if _, err := c.At(101); err == nil {
		t.Fatal("out of range should error")
	}
}

func TestQuantileUniform(t *testing.T) {
	c, err := New(uniformHist(100))
	if err != nil {
		t.Fatal(err)
	}
	med, err := c.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med != 50 {
		t.Fatalf("median %d, want 50", med)
	}
	q1, _ := c.Quantile(0.25)
	q3, _ := c.Quantile(0.75)
	if q1 != 25 || q3 != 75 {
		t.Fatalf("quartiles %d, %d", q1, q3)
	}
	if x, _ := c.Quantile(1); x != 100 {
		t.Fatalf("Quantile(1) = %d", x)
	}
	if _, err := c.Quantile(0); err == nil {
		t.Fatal("p=0 should error")
	}
	if _, err := c.Quantile(1.1); err == nil {
		t.Fatal("p>1 should error")
	}
}

func TestQuantilePointMass(t *testing.T) {
	// All mass at point 7.
	values := make([]float64, 20)
	values[6] = 5
	c, err := New(histFrom(values))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.01, 0.5, 1} {
		x, err := c.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if x != 7 {
			t.Fatalf("Quantile(%v) = %d, want 7", p, x)
		}
	}
}

func TestQuantileInverseOfCDF(t *testing.T) {
	// Galois connection: Quantile(p) = min{x : F(x) ≥ p}.
	r := rng.New(307)
	values := make([]float64, 200)
	for i := range values {
		if r.Float64() < 0.7 {
			values[i] = r.Float64() * 10
		}
	}
	c, err := New(histFrom(values))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.001, 0.1, 0.25, 0.5, 0.77, 0.99, 1} {
		x, err := c.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		fx, err := c.At(x)
		if err != nil {
			t.Fatal(err)
		}
		if fx < p-1e-9 {
			t.Fatalf("F(Quantile(%v)) = %v < p", p, fx)
		}
		if x > 1 {
			fprev, err := c.At(x - 1)
			if err != nil {
				t.Fatal(err)
			}
			if fprev >= p+1e-9 {
				t.Fatalf("Quantile(%v) = %d not minimal: F(%d) = %v", p, x, x-1, fprev)
			}
		}
	}
}

func TestSummary(t *testing.T) {
	c, err := New(uniformHist(100))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Summary(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{25, 50, 75, 100}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("summary %v, want %v", s, want)
		}
	}
	if _, err := c.Summary(0); err == nil {
		t.Fatal("q=0 should error")
	}
}

// Property: quantiles are monotone in p and CDF is monotone in x.
func TestMonotoneProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		values := make([]float64, 64)
		any := false
		for i := range values {
			if r.Float64() < 0.5 {
				values[i] = r.Float64() * 5
				any = true
			}
		}
		if !any {
			return true
		}
		c, err := New(histFrom(values))
		if err != nil {
			return false
		}
		prevQ := 0
		for p := 0.1; p <= 1.0001; p += 0.1 {
			pp := math.Min(p, 1)
			x, err := c.Quantile(pp)
			if err != nil || x < prevQ {
				return false
			}
			prevQ = x
		}
		prevF := 0.0
		for x := 1; x <= 64; x++ {
			fx, err := c.At(x)
			if err != nil || fx < prevF-1e-12 {
				return false
			}
			prevF = fx
		}
		return math.Abs(prevF-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Quantiles from a compressed summary track quantiles of the raw data.
func TestQuantilesSurviveCompression(t *testing.T) {
	r := rng.New(311)
	n := 5000
	values := make([]float64, n)
	for i := range values {
		// Bimodal mass.
		if i < n/3 {
			values[i] = 3 + r.Float64()
		} else if i > 2*n/3 {
			values[i] = 1 + r.Float64()
		}
	}
	exactC, err := New(histFrom(values))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ConstructHistogram(sparse.FromDense(values), 10, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Clamp tiny negative flattening values (none expected for non-negative
	// data, but be safe).
	sumC, err := New(res.Histogram)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		xe, err := exactC.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		xs, err := sumC.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(xe-xs)) > float64(n)/50 {
			t.Fatalf("p=%v: exact %d vs summary %d", p, xe, xs)
		}
	}
}
