// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every stochastic component in the repository (data-set
// generation, samplers, randomized tests, experiment trials).
//
// We deliberately avoid math/rand's global state: every experiment in the
// paper reproduction takes an explicit seed, and re-running any command or
// benchmark with the same seed reproduces the same samples bit-for-bit.
//
// The generator is xoshiro256**, seeded through SplitMix64 as its authors
// recommend. It is not cryptographically secure; it does not need to be.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s [4]uint64
	// Cached second normal variate from the polar Box-Muller transform.
	normCached bool
	normValue  float64
}

// New returns a generator seeded from seed via SplitMix64, so that nearby
// seeds still give well-separated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		r.s[i] = z
	}
	// All-zero state would be a fixed point; the SplitMix64 expansion cannot
	// produce it for four consecutive outputs, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split returns a new generator deterministically derived from the current
// state without advancing it in a statistically correlated way: it draws one
// value and reseeds through SplitMix64. Use it to hand independent streams to
// parallel trials.
func (r *RNG) Split() *RNG { return New(r.Uint64()) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded generation.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// NormFloat64 returns a standard normal variate via the polar Box-Muller
// method (Marsaglia). One call in two is served from the cached second
// variate.
func (r *RNG) NormFloat64() float64 {
	if r.normCached {
		r.normCached = false
		return r.normValue
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.normValue = v * f
		r.normCached = true
		return u * f
	}
}

// Perm returns a uniformly random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place uniformly at random.
func (r *RNG) Shuffle(xs []float64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
