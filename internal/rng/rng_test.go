package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical outputs for different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	x := r.Uint64()
	y := r.Uint64()
	if x == 0 && y == 0 {
		t.Fatal("seed 0 produced a stuck stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	// Chi-square-ish uniformity check: each bucket within 10% of expectation.
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > n/100 {
			t.Fatalf("bucket %d has %d draws, want ≈%d", i, c, n/10)
		}
	}
}

func TestIntnOne(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Intn(1) != 0 {
			t.Fatal("Intn(1) must always return 0")
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestNormFloat64Tails(t *testing.T) {
	// P(|Z| > 3) ≈ 0.0027; check we see some but not too many.
	r := New(19)
	const n = 100000
	tail := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.NormFloat64()) > 3 {
			tail++
		}
	}
	if tail < 100 || tail > 600 {
		t.Fatalf("|Z|>3 count = %d, want ≈270", tail)
	}
}

func TestPerm(t *testing.T) {
	r := New(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(29)
	xs := []float64{1, 2, 3, 4, 5}
	ys := append([]float64(nil), xs...)
	r.Shuffle(ys)
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	if sx != sy {
		t.Fatalf("shuffle changed contents: %v -> %v", xs, ys)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(31)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collide: %d/100", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var x uint64
	for i := 0; i < b.N; i++ {
		x = r.Uint64()
	}
	_ = x
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var x float64
	for i := 0; i < b.N; i++ {
		x = r.NormFloat64()
	}
	_ = x
}
