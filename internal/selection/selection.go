// Package selection provides expected-linear-time order statistics.
//
// Algorithm 1 needs, in every merging round, the (1 + 1/δ)k-th largest merge
// error among the current pair errors (line 16). Sorting would cost
// O(s log s) in the first round and break the O(s) total running time of
// Theorem 3.4; quickselect keeps every round linear.
//
// The implementation is quickselect with a median-of-three-medians ("ninther")
// pivot and an insertion-sort base case. The ninther pivot makes adversarial
// inputs astronomically unlikely while staying deterministic, so experiment
// runs remain reproducible.
package selection

import (
	"math"

	"repro/internal/parallel"
)

// KthLargest returns the k-th largest value of xs (k = 1 is the maximum).
// It partially reorders xs in place. It panics if k is out of [1, len(xs)].
func KthLargest(xs []float64, k int) float64 {
	if k < 1 || k > len(xs) {
		panic("selection: k out of range")
	}
	// k-th largest is the (len-k)-th smallest (0-based rank).
	return kthSmallest(xs, len(xs)-k)
}

// KthSmallest returns the k-th smallest value of xs (k = 1 is the minimum).
// It partially reorders xs in place. It panics if k is out of [1, len(xs)].
func KthSmallest(xs []float64, k int) float64 {
	if k < 1 || k > len(xs) {
		panic("selection: k out of range")
	}
	return kthSmallest(xs, k-1)
}

// kthSmallest selects the element of rank r (0-based) in xs.
func kthSmallest(xs []float64, r int) float64 {
	lo, hi := 0, len(xs)-1
	for {
		if hi-lo < 12 {
			insertionSort(xs[lo : hi+1])
			return xs[r]
		}
		p := ninther(xs, lo, hi)
		// Three-way partition around the pivot value to handle runs of ties
		// (merge errors are frequently exactly zero) in one pass.
		lt, gt := partition3(xs, lo, hi, p)
		switch {
		case r < lt:
			hi = lt - 1
		case r > gt:
			lo = gt + 1
		default:
			return xs[r]
		}
	}
}

// ninther returns the median of three medians-of-three sampled across
// [lo, hi], a deterministic pivot that is good on sorted, reversed, organ-pipe
// and constant inputs.
func ninther(xs []float64, lo, hi int) float64 {
	n := hi - lo + 1
	step := n / 8
	m1 := median3(xs[lo], xs[lo+step], xs[lo+2*step])
	mid := lo + n/2
	m2 := median3(xs[mid-step], xs[mid], xs[mid+step])
	m3 := median3(xs[hi-2*step], xs[hi-step], xs[hi])
	return median3(m1, m2, m3)
}

func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// partition3 partitions xs[lo..hi] into < p, == p, > p regions and returns
// the index range [lt, gt] occupied by values equal to p.
func partition3(xs []float64, lo, hi int, p float64) (lt, gt int) {
	lt, gt = lo, hi
	i := lo
	for i <= gt {
		switch {
		case xs[i] < p:
			xs[i], xs[lt] = xs[lt], xs[i]
			lt++
			i++
		case xs[i] > p:
			xs[i], xs[gt] = xs[gt], xs[i]
			gt--
		default:
			i++
		}
	}
	return lt, gt
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// Threshold returns the k-th largest element of xs, the cut value t such
// that at least k elements are ≥ t. If k ≥ len(xs) it returns the minimum
// (everything passes a ≥ test); if k ≤ 0 it returns +Inf (nothing passes).
// xs is copied, not reordered.
//
// The merging algorithms use CountAbove together with this to keep exactly
// the budgeted number of pairs split even when many errors tie at t.
func Threshold(xs []float64, k int) float64 {
	cut, _ := ThresholdScratch(xs, k, nil)
	return cut
}

// ThresholdScratch is Threshold using (and returning) a caller-owned scratch
// buffer for the copy, so that round-based callers — the merging loops call
// this once per round — amortize the allocation to zero. The returned slice
// is the possibly-regrown scratch; pass it back in on the next call.
func ThresholdScratch(xs []float64, k int, scratch []float64) (float64, []float64) {
	if len(xs) == 0 {
		panic("selection: Threshold of empty slice")
	}
	if k <= 0 {
		return math.Inf(1), scratch
	}
	if k >= len(xs) {
		min := xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
		}
		return min, scratch
	}
	if cap(scratch) < len(xs) {
		scratch = make([]float64, len(xs))
	}
	cp := scratch[:len(xs)]
	copy(cp, xs)
	return KthLargest(cp, k), scratch
}

// ThresholdParallel is ThresholdScratch computed with `workers` goroutines:
// the input is cut into fixed chunks, each worker quickselects its chunk's
// top k into the tail of its scratch region, and the ≤ workers·k candidates
// are merged with one final serial selection. Every chunk's k-th largest
// bounds the chunk's contribution to the global top k, so the merged
// selection returns exactly the k-th largest of xs — the identical float the
// serial path returns, for every worker count.
//
// It falls back to the serial path when the parallel plan cannot win:
// few elements, one worker, or k so large that per-chunk selection would
// retain most of the input anyway.
func ThresholdParallel(xs []float64, k, workers int, scratch []float64) (float64, []float64) {
	w := workers
	if w > len(xs)/parallel.MinGrain {
		w = len(xs) / parallel.MinGrain
	}
	if w <= 1 || k <= 0 || k >= len(xs) || 4*k*w >= len(xs) {
		return ThresholdScratch(xs, k, scratch)
	}
	if cap(scratch) < len(xs) {
		scratch = make([]float64, len(xs))
	}
	cp := scratch[:len(xs)]
	// Each chunk copies and partially reorders only its own region of cp;
	// candidate harvesting below runs after the barrier.
	parallel.ForChunks(w, len(xs), w, func(_, lo, hi int) {
		copy(cp[lo:hi], xs[lo:hi])
		if hi-lo > k {
			KthLargest(cp[lo:hi], k)
		}
	})
	// Compact every chunk's top-k candidates to the front of cp in chunk
	// order (regions never overlap: chunk ci's candidates start at ci·k ≤ lo
	// because each chunk holds > k elements).
	cand := 0
	parallel.ForChunks(1, len(xs), w, func(_, lo, hi int) {
		top := lo
		if hi-lo > k {
			top = hi - k
		}
		cand += copy(cp[cand:], cp[top:hi])
	})
	return KthLargest(cp[:cand], k), scratch
}
