package selection

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestKthLargestSmall(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	// Sorted descending: 9 6 5 4 3 2 1 1.
	want := []float64{9, 6, 5, 4, 3, 2, 1, 1}
	for k := 1; k <= len(xs); k++ {
		cp := append([]float64(nil), xs...)
		if got := KthLargest(cp, k); got != want[k-1] {
			t.Fatalf("KthLargest(k=%d) = %v, want %v", k, got, want[k-1])
		}
	}
}

func TestKthSmallestSmall(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	want := []float64{1, 1, 3, 4, 5}
	for k := 1; k <= len(xs); k++ {
		cp := append([]float64(nil), xs...)
		if got := KthSmallest(cp, k); got != want[k-1] {
			t.Fatalf("KthSmallest(k=%d) = %v, want %v", k, got, want[k-1])
		}
	}
}

func TestPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{0, 4} {
		func(k int) {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d should panic", k)
				}
			}()
			KthLargest([]float64{1, 2, 3}, k)
		}(k)
	}
}

func TestSingleElement(t *testing.T) {
	if KthLargest([]float64{42}, 1) != 42 {
		t.Fatal("single element")
	}
}

func TestAllEqual(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 7
	}
	for _, k := range []int{1, 500, 1000} {
		cp := append([]float64(nil), xs...)
		if got := KthLargest(cp, k); got != 7 {
			t.Fatalf("all-equal KthLargest(k=%d) = %v", k, got)
		}
	}
}

func TestAdversarialPatterns(t *testing.T) {
	const n = 4096
	patterns := map[string]func(i int) float64{
		"sorted":    func(i int) float64 { return float64(i) },
		"reversed":  func(i int) float64 { return float64(n - i) },
		"organpipe": func(i int) float64 { return math.Min(float64(i), float64(n-i)) },
		"sawtooth":  func(i int) float64 { return float64(i % 17) },
		"zeros":     func(i int) float64 { return 0 },
	}
	for name, gen := range patterns {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gen(i)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, k := range []int{1, 2, n / 3, n / 2, n - 1, n} {
			cp := append([]float64(nil), xs...)
			got := KthLargest(cp, k)
			want := sorted[n-k]
			if got != want {
				t.Fatalf("%s: KthLargest(k=%d) = %v, want %v", name, k, got, want)
			}
		}
	}
}

func TestThreshold(t *testing.T) {
	xs := []float64{5, 1, 3, 3, 2}
	if got := Threshold(xs, 2); got != 3 {
		t.Fatalf("Threshold(2) = %v, want 3", got)
	}
	if got := Threshold(xs, 10); got != 1 {
		t.Fatalf("Threshold(k≥len) = %v, want min = 1", got)
	}
	if got := Threshold(xs, 0); !math.IsInf(got, 1) {
		t.Fatalf("Threshold(0) = %v, want +Inf", got)
	}
	// Threshold must not reorder its input.
	if xs[0] != 5 || xs[4] != 2 {
		t.Fatalf("Threshold reordered input: %v", xs)
	}
}

func TestThresholdEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Threshold of empty slice should panic")
		}
	}()
	Threshold(nil, 1)
}

// Property: KthLargest agrees with sorting on random inputs of random sizes.
func TestKthLargestMatchesSortProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint16, kRaw uint16) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw)%500 + 1
		k := int(kRaw)%n + 1
		xs := make([]float64, n)
		for i := range xs {
			// Mix of continuous values and heavy ties.
			if r.Float64() < 0.5 {
				xs[i] = float64(r.Intn(5))
			} else {
				xs[i] = r.NormFloat64()
			}
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		got := KthLargest(xs, k)
		return got == sorted[n-k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: after Threshold with cut t, the number of elements ≥ t is ≥ k and
// the number of elements > t is < k — exactly the property the merging rounds
// rely on to budget split pairs.
func TestThresholdCountProperty(t *testing.T) {
	f := func(seed uint32, nRaw, kRaw uint16) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw)%300 + 1
		k := int(kRaw)%n + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(r.Intn(8))
		}
		cut := Threshold(xs, k)
		ge, gt := 0, 0
		for _, x := range xs {
			if x >= cut {
				ge++
			}
			if x > cut {
				gt++
			}
		}
		return ge >= k && gt < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKthLargest(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 1<<16)
	for i := range xs {
		xs[i] = r.Float64()
	}
	cp := make([]float64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(cp, xs)
		KthLargest(cp, len(cp)/10)
	}
}

func TestThresholdScratchReuse(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	cut, scratch := ThresholdScratch(xs, 3, nil)
	if cut != 7 {
		t.Fatalf("cut = %v, want 7", cut)
	}
	// Second call must reuse the buffer and must not reorder xs.
	cut2, scratch2 := ThresholdScratch(xs, 5, scratch)
	if cut2 != 5 {
		t.Fatalf("cut = %v, want 5", cut2)
	}
	if &scratch[0] != &scratch2[0] {
		t.Fatal("scratch buffer was not reused")
	}
	if xs[0] != 5 || xs[9] != 0 {
		t.Fatal("input was reordered")
	}
}

// The parallel threshold must return the exact same float as the serial one
// on large inputs with duplicates, for every worker count.
func TestThresholdParallelMatchesSerial(t *testing.T) {
	r := rng.New(91)
	for _, n := range []int{10000, 100001} {
		xs := make([]float64, n)
		for i := range xs {
			// Heavy ties: quantized normals.
			xs[i] = math.Floor(r.NormFloat64() * 8)
		}
		var scratch []float64
		for _, k := range []int{1, 2, 17, 300} {
			want := Threshold(xs, k)
			for _, w := range []int{1, 2, 3, 8} {
				var got float64
				got, scratch = ThresholdParallel(xs, k, w, scratch)
				if got != want {
					t.Fatalf("n=%d k=%d workers=%d: got %v, want %v", n, k, w, got, want)
				}
			}
		}
	}
}

func TestThresholdParallelEdgeCases(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got, _ := ThresholdParallel(xs, 0, 4, nil); !math.IsInf(got, 1) {
		t.Fatalf("k=0 should give +Inf, got %v", got)
	}
	if got, _ := ThresholdParallel(xs, 5, 4, nil); got != 1 {
		t.Fatalf("k>=len should give the minimum, got %v", got)
	}
}
