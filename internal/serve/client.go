package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client talks to a synopsis server. The zero batch codec is JSON; Binary
// selects the binary body format for batch calls — the two are
// interchangeable (answers are bit-identical), binary just decodes faster
// and ships fewer bytes. Snapshot calls always speak the binary envelope;
// that IS the snapshot format.
//
// Reliability knobs: Timeout bounds each attempt end to end, and Retries
// allows that many re-sends after transient failures — connection errors and
// 5xx responses — with RetryBackoff doubling between attempts. Every request
// the client issues is safe to re-send: queries and ingests are rebuilt from
// their encoded bodies, and the server applies an ingest batch atomically, so
// a retried POST /add after a connection error either landed once or not at
// all per attempt (at-least-once overall; idempotent ingest is the caller's
// concern, as with any HTTP retry). Non-transient failures (4xx) surface
// immediately as *APIError.
type Client struct {
	// Base is the server's base URL, e.g. "http://localhost:8157".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// Binary selects binary bodies for At/Ranges/Add batches.
	Binary bool
	// Timeout bounds one attempt (connection + request + response). 0 keeps
	// the underlying client's own timeout.
	Timeout time.Duration
	// Retries is how many times a transiently failed request is re-sent
	// (0 = single attempt).
	Retries int
	// RetryBackoff is the sleep before the first re-send, doubled each
	// further attempt. 0 with Retries > 0 means 10ms.
	RetryBackoff time.Duration
}

// NewClient builds a client for the server at base.
func NewClient(base string, hc *http.Client, binary bool) *Client {
	return &Client{Base: base, HTTP: hc, Binary: binary}
}

// APIError is a non-2xx response: the status code plus the server's JSON
// diagnostic body, when it sent one.
type APIError struct {
	// StatusCode is the numeric HTTP status.
	StatusCode int
	// Status is the full status line, e.g. "409 Conflict".
	Status string
	// Message is the server's decoded {"error": ...} diagnostic, if any.
	Message string
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("serve: %s: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("serve: %s", e.Status)
}

// IsConflict reports whether err is a 409 — a replica refusing a partial
// delta it has no base state for.
func IsConflict(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusConflict
}

func (c *Client) http() *http.Client {
	base := c.HTTP
	if base == nil {
		base = http.DefaultClient
	}
	if c.Timeout <= 0 {
		return base
	}
	// Shallow-copy so the per-client timeout never mutates a shared client.
	cl := *base
	cl.Timeout = c.Timeout
	return &cl
}

// apiError decodes a non-2xx response into an *APIError.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	ae := &APIError{StatusCode: resp.StatusCode, Status: resp.Status}
	var e errorJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil {
		ae.Message = e.Error
	}
	return ae
}

// transient reports whether a failed attempt is worth re-sending: transport
// errors (connection refused, reset, timeout — net/http wraps them all in
// *url.Error) and 5xx responses. 4xx responses are the caller's bug or a
// state conflict; retrying cannot fix them.
func transient(err error) bool {
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode >= 500
}

// request issues one HTTP request with the client's retry policy. body may be
// nil; non-nil bodies are re-sent from the same bytes on each attempt. The
// returned response is always 2xx; everything else comes back as an error.
func (c *Client) request(method, u, contentType string, body []byte) (*http.Response, error) {
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, u, rd)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.http().Do(req)
		if err == nil && resp.StatusCode/100 == 2 {
			return resp, nil
		}
		if err == nil {
			err = apiError(resp)
		}
		lastErr = err
		if !transient(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// queryURL assembles /v1/{name}/{verb} with optional k.
func (c *Client) queryURL(name, verb string, k int) string {
	u := c.Base + "/v1/" + url.PathEscape(name) + "/" + verb
	if k > 0 {
		u += "?k=" + strconv.Itoa(k)
	}
	return u
}

// batch posts one batch body and decodes the value vector, honoring the
// client's codec choice.
func (c *Client) batch(u string, encodeBinary func(io.Writer) error, jsonBody any) ([]float64, error) {
	var buf bytes.Buffer
	ct := ContentJSON
	if c.Binary {
		ct = ContentBatch
		if err := encodeBinary(&buf); err != nil {
			return nil, err
		}
	} else if err := json.NewEncoder(&buf).Encode(jsonBody); err != nil {
		return nil, err
	}
	resp, err := c.request(http.MethodPost, u, ct, buf.Bytes())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if c.Binary {
		return DecodeValuesBody(resp.Body)
	}
	var v valuesJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return v.Values, nil
}

// At answers a batch of point queries against the named synopsis.
func (c *Client) At(name string, xs []int) ([]float64, error) {
	return c.AtForK(name, 0, xs)
}

// AtForK is At against a hosted hierarchy, resolved at piece budget k.
func (c *Client) AtForK(name string, k int, xs []int) ([]float64, error) {
	return c.batch(c.queryURL(name, "at", k),
		func(w io.Writer) error { return EncodePointsBody(w, xs) },
		pointsJSON{Points: xs})
}

// Ranges answers a batch of range queries [as[i], bs[i]].
func (c *Client) Ranges(name string, as, bs []int) ([]float64, error) {
	return c.RangesForK(name, 0, as, bs)
}

// RangesForK is Ranges against a hosted hierarchy at piece budget k.
func (c *Client) RangesForK(name string, k int, as, bs []int) ([]float64, error) {
	return c.batch(c.queryURL(name, "range", k),
		func(w io.Writer) error { return EncodeRangesBody(w, as, bs) },
		rangesJSON{As: as, Bs: bs})
}

// Point answers one point query via the GET form.
func (c *Client) Point(name string, x int) (float64, error) {
	return c.single(c.Base + "/v1/" + url.PathEscape(name) + "/at?x=" + strconv.Itoa(x))
}

// Range answers one range query via the GET form.
func (c *Client) Range(name string, a, b int) (float64, error) {
	return c.single(c.Base + "/v1/" + url.PathEscape(name) +
		"/range?a=" + strconv.Itoa(a) + "&b=" + strconv.Itoa(b))
}

func (c *Client) single(u string) (float64, error) {
	resp, err := c.request(http.MethodGet, u, "", nil)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var v struct {
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return 0, err
	}
	return v.Value, nil
}

// Add ingests a batch of updates into the named streaming engine (nil
// weights means unit weight per point).
func (c *Client) Add(name string, points []int, weights []float64) error {
	var buf bytes.Buffer
	ct := ContentJSON
	if c.Binary {
		ct = ContentBatch
		if err := EncodeAddBody(&buf, points, weights); err != nil {
			return err
		}
	} else if err := json.NewEncoder(&buf).Encode(addJSON{Points: points, Weights: weights}); err != nil {
		return err
	}
	resp, err := c.request(http.MethodPost, c.Base+"/v1/"+url.PathEscape(name)+"/add", ct, buf.Bytes())
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Snapshot fetches the named synopsis as one binary envelope into w — ready
// to write to disk, decode with the library, or push to another server.
func (c *Client) Snapshot(name string, w io.Writer) error {
	resp, err := c.request(http.MethodGet, c.Base+"/v1/"+url.PathEscape(name)+"/snapshot", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(w, resp.Body)
	return err
}

// SnapshotDelta fetches a delta frame for the named sharded engine. since is
// "0" (or "") for the complete state, else the FormatSince coordinates the
// caller holds. Returns the frame plus the epoch and version vector it
// brings a replica to, read from the response headers.
func (c *Client) SnapshotDelta(name, since string) (body []byte, epoch uint64, versions []uint64, err error) {
	if since == "" {
		since = "0"
	}
	u := c.Base + "/v1/" + url.PathEscape(name) + "/snapshot?since=" + url.QueryEscape(since)
	resp, err := c.request(http.MethodGet, u, "", nil)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	if epoch, err = strconv.ParseUint(resp.Header.Get(HeaderEpoch), 10, 64); err != nil {
		return nil, 0, nil, fmt.Errorf("serve: bad %s header %q", HeaderEpoch, resp.Header.Get(HeaderEpoch))
	}
	if versions, err = ParseVersionsHeader(resp.Header.Get(HeaderVersions)); err != nil {
		return nil, 0, nil, err
	}
	if body, err = io.ReadAll(resp.Body); err != nil {
		return nil, 0, nil, err
	}
	return body, epoch, versions, nil
}

// Push uploads a binary envelope, hot-swapping (or creating) the synopsis
// served under name.
func (c *Client) Push(name string, r io.Reader) error {
	body, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return c.PushBytes(name, body)
}

// PushBytes is Push from a byte slice — the body every delta-replication
// round already holds, re-sendable across retries without buffering twice.
func (c *Client) PushBytes(name string, body []byte) error {
	resp, err := c.request(http.MethodPut, c.Base+"/v1/"+url.PathEscape(name)+"/snapshot", ContentSnapshot, body)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// List fetches the registry listing.
func (c *Client) List() ([]NameInfo, error) {
	resp, err := c.request(http.MethodGet, c.Base+"/v1", "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var v struct {
		Synopses []NameInfo `json:"synopses"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return v.Synopses, nil
}
