package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// Client talks to a synopsis server. The zero batch codec is JSON; Binary
// selects the binary body format for batch calls — the two are
// interchangeable (answers are bit-identical), binary just decodes faster
// and ships fewer bytes. Snapshot calls always speak the binary envelope;
// that IS the snapshot format.
type Client struct {
	// Base is the server's base URL, e.g. "http://localhost:8157".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// Binary selects binary bodies for At/Ranges/Add batches.
	Binary bool
}

// NewClient builds a client for the server at base.
func NewClient(base string, hc *http.Client, binary bool) *Client {
	return &Client{Base: base, HTTP: hc, Binary: binary}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes a non-2xx response into an error.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	var e errorJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("serve: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("serve: %s", resp.Status)
}

// do issues one request and returns the response on 2xx.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp)
	}
	return resp, nil
}

// queryURL assembles /v1/{name}/{verb} with optional k.
func (c *Client) queryURL(name, verb string, k int) string {
	u := c.Base + "/v1/" + url.PathEscape(name) + "/" + verb
	if k > 0 {
		u += "?k=" + strconv.Itoa(k)
	}
	return u
}

// batch posts one batch body and decodes the value vector, honoring the
// client's codec choice.
func (c *Client) batch(u string, encodeBinary func(io.Writer) error, jsonBody any) ([]float64, error) {
	var buf bytes.Buffer
	ct := ContentJSON
	if c.Binary {
		ct = ContentBatch
		if err := encodeBinary(&buf); err != nil {
			return nil, err
		}
	} else if err := json.NewEncoder(&buf).Encode(jsonBody); err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, u, &buf)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ct)
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if c.Binary {
		return DecodeValuesBody(resp.Body)
	}
	var v valuesJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return v.Values, nil
}

// At answers a batch of point queries against the named synopsis.
func (c *Client) At(name string, xs []int) ([]float64, error) {
	return c.AtForK(name, 0, xs)
}

// AtForK is At against a hosted hierarchy, resolved at piece budget k.
func (c *Client) AtForK(name string, k int, xs []int) ([]float64, error) {
	return c.batch(c.queryURL(name, "at", k),
		func(w io.Writer) error { return EncodePointsBody(w, xs) },
		pointsJSON{Points: xs})
}

// Ranges answers a batch of range queries [as[i], bs[i]].
func (c *Client) Ranges(name string, as, bs []int) ([]float64, error) {
	return c.RangesForK(name, 0, as, bs)
}

// RangesForK is Ranges against a hosted hierarchy at piece budget k.
func (c *Client) RangesForK(name string, k int, as, bs []int) ([]float64, error) {
	return c.batch(c.queryURL(name, "range", k),
		func(w io.Writer) error { return EncodeRangesBody(w, as, bs) },
		rangesJSON{As: as, Bs: bs})
}

// Point answers one point query via the GET form.
func (c *Client) Point(name string, x int) (float64, error) {
	return c.single(c.Base + "/v1/" + url.PathEscape(name) + "/at?x=" + strconv.Itoa(x))
}

// Range answers one range query via the GET form.
func (c *Client) Range(name string, a, b int) (float64, error) {
	return c.single(c.Base + "/v1/" + url.PathEscape(name) +
		"/range?a=" + strconv.Itoa(a) + "&b=" + strconv.Itoa(b))
}

func (c *Client) single(u string) (float64, error) {
	resp, err := c.http().Get(u)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode/100 != 2 {
		return 0, apiError(resp)
	}
	defer resp.Body.Close()
	var v struct {
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return 0, err
	}
	return v.Value, nil
}

// Add ingests a batch of updates into the named streaming engine (nil
// weights means unit weight per point).
func (c *Client) Add(name string, points []int, weights []float64) error {
	var buf bytes.Buffer
	ct := ContentJSON
	if c.Binary {
		ct = ContentBatch
		if err := EncodeAddBody(&buf, points, weights); err != nil {
			return err
		}
	} else if err := json.NewEncoder(&buf).Encode(addJSON{Points: points, Weights: weights}); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/"+url.PathEscape(name)+"/add", &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ct)
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Snapshot fetches the named synopsis as one binary envelope into w — ready
// to write to disk, decode with the library, or push to another server.
func (c *Client) Snapshot(name string, w io.Writer) error {
	resp, err := c.http().Get(c.Base + "/v1/" + url.PathEscape(name) + "/snapshot")
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	defer resp.Body.Close()
	_, err = io.Copy(w, resp.Body)
	return err
}

// Push uploads a binary envelope, hot-swapping (or creating) the synopsis
// served under name.
func (c *Client) Push(name string, r io.Reader) error {
	req, err := http.NewRequest(http.MethodPut, c.Base+"/v1/"+url.PathEscape(name)+"/snapshot", r)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ContentSnapshot)
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// List fetches the registry listing.
func (c *Client) List() ([]NameInfo, error) {
	resp, err := c.http().Get(c.Base + "/v1")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var v struct {
		Synopses []NameInfo `json:"synopses"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return v.Synopses, nil
}
