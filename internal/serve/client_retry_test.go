package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first n requests with the given status, then
// delegates — the standard shape of a server mid-restart or briefly
// overloaded.
func flakyHandler(n int64, status int, inner http.Handler) (http.Handler, *atomic.Int64) {
	var seen atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) <= n {
			httpError(w, status, "transient failure, try again")
			return
		}
		inner.ServeHTTP(w, r)
	}), &seen
}

// TestClientRetriesTransientFailures pins the retry contract: 5xx responses
// are retried up to Retries times with backoff, and a request that succeeds
// within budget surfaces no error at all.
func TestClientRetriesTransientFailures(t *testing.T) {
	srv := NewServer(&Config{Workers: 1})
	if err := srv.Host("h", testHistogram(t, 500, 8)); err != nil {
		t.Fatal(err)
	}
	handler, seen := flakyHandler(2, http.StatusServiceUnavailable, srv.Handler())
	ts := httptest.NewServer(handler)
	defer ts.Close()

	c := NewClient(ts.URL, ts.Client(), true)
	c.Retries = 3
	c.RetryBackoff = time.Millisecond
	vals, err := c.At("h", []int{1, 2, 3})
	if err != nil {
		t.Fatalf("with 3 retries against 2 failures: %v", err)
	}
	if len(vals) != 3 {
		t.Fatalf("%d values", len(vals))
	}
	if got := seen.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestClientRetryBudgetExhausted pins the other half: more failures than the
// budget surfaces the last transient error, and a zero-retry client fails on
// the first one.
func TestClientRetryBudgetExhausted(t *testing.T) {
	srv := NewServer(&Config{Workers: 1})
	if err := srv.Host("h", testHistogram(t, 500, 8)); err != nil {
		t.Fatal(err)
	}
	handler, seen := flakyHandler(100, http.StatusInternalServerError, srv.Handler())
	ts := httptest.NewServer(handler)
	defer ts.Close()

	c := NewClient(ts.URL, ts.Client(), false)
	c.Retries = 2
	c.RetryBackoff = time.Millisecond
	_, err := c.At("h", []int{1})
	var ae *APIError
	if err == nil || !errors.As(err, &ae) || ae.StatusCode != 500 {
		t.Fatalf("exhausted retries: %v, want a 500 APIError", err)
	}
	if got := seen.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}

	c2 := NewClient(ts.URL, ts.Client(), false)
	if _, err := c2.At("h", []int{1}); err == nil {
		t.Fatal("zero-retry client succeeded against a failing server")
	}
	if got := seen.Load(); got != 4 {
		t.Fatalf("zero-retry client issued %d extra attempts, want 1", got-3)
	}
}

// TestClientDoesNotRetryCallerErrors pins that 4xx responses surface
// immediately: retrying a bad request cannot fix it, and a conflict must
// reach the replicator as a conflict, not as three delayed conflicts.
func TestClientDoesNotRetryCallerErrors(t *testing.T) {
	srv := NewServer(&Config{Workers: 1})
	if err := srv.Host("h", testHistogram(t, 500, 8)); err != nil {
		t.Fatal(err)
	}
	var seen atomic.Int64
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.Add(1)
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counting)
	defer ts.Close()

	c := NewClient(ts.URL, ts.Client(), false)
	c.Retries = 5
	c.RetryBackoff = time.Millisecond
	_, err := c.At("h", []int{100000}) // out of domain: 400
	var ae *APIError
	if err == nil || !errors.As(err, &ae) || ae.StatusCode != 400 {
		t.Fatalf("%v, want a 400 APIError", err)
	}
	if ae.Message == "" {
		t.Fatal("400 lost the server's diagnostic message")
	}
	if got := seen.Load(); got != 1 {
		t.Fatalf("a 400 was attempted %d times", got)
	}
}

// TestClientRetriesConnectionRefused pins the transport-error half of
// transient(): a dead endpoint is retried (observable via elapsed backoff)
// and still fails cleanly.
func TestClientRetriesConnectionRefused(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	base := ts.URL
	ts.Close() // nothing listens here any more

	c := NewClient(base, nil, false)
	c.Retries = 2
	c.RetryBackoff = 8 * time.Millisecond
	start := time.Now()
	_, err := c.At("h", []int{1})
	if err == nil {
		t.Fatal("query against a closed port succeeded")
	}
	// 8ms + 16ms of backoff must have elapsed if both retries ran.
	if elapsed := time.Since(start); elapsed < 24*time.Millisecond {
		t.Fatalf("returned after %v; backoff schedule says ≥ 24ms", elapsed)
	}
	var ae *APIError
	if errors.As(err, &ae) {
		t.Fatalf("connection error surfaced as an APIError: %v", err)
	}
}

// TestClientTimeout pins the per-attempt timeout: a hung server turns into a
// prompt transport error instead of an indefinite stall, without mutating a
// shared http.Client.
func TestClientTimeout(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hang until the client gives up
	}))
	defer ts.Close()

	shared := ts.Client()
	c := NewClient(ts.URL, shared, false)
	c.Timeout = 50 * time.Millisecond
	start := time.Now()
	_, err := c.Point("h", 1)
	if err == nil {
		t.Fatal("query against a hung server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timed out only after %v", elapsed)
	}
	if shared.Timeout != 0 {
		t.Fatal("client timeout leaked into the shared http.Client")
	}
}

// TestClientErrorPaths pins satellite-grade decode robustness: diagnostic
// bodies on non-2xx, truncated binary frames, and checksum-corrupted frames
// all surface as errors — typed where the server answered, never a panic.
func TestClientErrorPaths(t *testing.T) {
	srv := NewServer(&Config{Workers: 1})
	if err := srv.Host("h", testHistogram(t, 500, 8)); err != nil {
		t.Fatal(err)
	}
	real := httptest.NewServer(srv.Handler())
	defer real.Close()
	realCl := NewClient(real.URL, real.Client(), true)

	// Non-2xx with diagnostic body → typed error carrying the message.
	_, err := realCl.Ranges("missing", []int{1}, []int{2})
	var ae *APIError
	if err == nil || !errors.As(err, &ae) {
		t.Fatalf("%v, want an APIError", err)
	}
	if ae.StatusCode != 404 || !strings.Contains(ae.Message, "missing") {
		t.Fatalf("APIError = %+v", ae)
	}
	if !strings.Contains(ae.Error(), "404") || !strings.Contains(ae.Error(), "missing") {
		t.Fatalf("Error() lost information: %q", ae.Error())
	}

	// A server that truncates and corrupts binary response frames: the
	// client must reject both without panicking.
	sabotage := ""
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		switch sabotage {
		case "truncate":
			body = body[:len(body)/2]
		case "corrupt":
			body = append([]byte(nil), body...)
			body[len(body)-5] ^= 0x20
		}
		w.Header().Set("Content-Type", rec.Header().Get("Content-Type"))
		w.WriteHeader(rec.Code)
		_, _ = w.Write(body)
	}))
	defer evil.Close()
	evilCl := NewClient(evil.URL, evil.Client(), true)

	for _, mode := range []string{"truncate", "corrupt"} {
		sabotage = mode
		if _, err := evilCl.At("h", []int{1, 2, 3, 4}); err == nil {
			t.Fatalf("%sd binary response decoded", mode)
		}
	}
	sabotage = ""
	if _, err := evilCl.At("h", []int{1, 2, 3, 4}); err != nil {
		t.Fatalf("clean pass-through failed: %v", err)
	}

	// A corrupted snapshot push: the server's CRC check answers 400 with a
	// diagnostic, and the client surfaces it typed.
	var snap strings.Builder
	if err := realCl.Snapshot("h", &snap); err != nil {
		t.Fatal(err)
	}
	bad := []byte(snap.String())
	bad[len(bad)/2] ^= 0x01
	err = realCl.PushBytes("h2", bad)
	if err == nil || !errors.As(err, &ae) || ae.StatusCode != 400 || ae.Message == "" {
		t.Fatalf("corrupt push: %v, want a 400 APIError with a message", err)
	}
}
