package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/stream"
)

// Delta replication endpoints.
//
//	GET /v1/{name}/snapshot?since=<vector>   serve a delta frame
//	PUT /v1/{name}/snapshot  (delta body)    apply a delta frame
//
// The since vector is "0" for "send me everything" or
// "<epoch>:<v1>,<v2>,..." — the epoch and per-shard version vector the
// replica currently holds. The response carries the coordinates the frame
// brings the replica to in X-Hsyn-Epoch / X-Hsyn-Versions, so a replicator
// tracks the fleet without ever decoding a frame.
//
// A GET never conflicts: an unknown epoch (the primary restarted), a
// malformed-but-parsable topology mismatch, or since=0 all fall back to the
// complete delta, which is self-contained. A PUT of a non-complete delta is
// where consistency is enforced: it applies only if the entry's recorded
// fleet state matches every carried shard's fromVersion, and answers 409
// otherwise — the replicator's cue to request a complete frame.

// Delta response/request headers.
const (
	HeaderEpoch    = "X-Hsyn-Epoch"
	HeaderVersions = "X-Hsyn-Versions"
)

// FormatSince renders a replica's coordinates as a since parameter.
func FormatSince(epoch uint64, versions []uint64) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(epoch, 10))
	b.WriteByte(':')
	for i, v := range versions {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(v, 10))
	}
	return b.String()
}

// parseSince interprets a since parameter against a live engine. A nil
// returned vector means "serve the complete delta". Only syntactically
// malformed input errors; a stale epoch or foreign topology just downgrades
// to the complete frame.
func parseSince(raw string, epoch uint64, shards int) ([]uint64, error) {
	if raw == "0" {
		return nil, nil
	}
	es, vs, ok := strings.Cut(raw, ":")
	if !ok {
		return nil, fmt.Errorf("bad since %q (want 0 or epoch:v1,v2,...)", raw)
	}
	e, err := strconv.ParseUint(es, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad since epoch %q", es)
	}
	parts := strings.Split(vs, ",")
	vec := make([]uint64, len(parts))
	for i, p := range parts {
		if vec[i], err = strconv.ParseUint(p, 10, 64); err != nil {
			return nil, fmt.Errorf("bad since version %q", p)
		}
	}
	if e != epoch || len(vec) != shards {
		return nil, nil // different engine life or topology: complete delta
	}
	return vec, nil
}

// handleSnapshotDelta serves GET /v1/{name}/snapshot?since=. The encoded
// frame is memoized per (published pointer, since string) and revalidated
// against the engine's live version vector, so N replicas polling at the same
// coordinates share one encode — the memo twin of the full-snapshot cache,
// with freshness proven by versions instead of immutability.
func (s *Server) handleSnapshotDelta(w http.ResponseWriter, r *http.Request, since string) {
	name := r.PathValue("name")
	ent, ok := s.lookupEntry(name)
	if !ok {
		httpError(w, http.StatusNotFound, "no synopsis named %q", name)
		return
	}
	p := ent.ptr.Load()
	if p == nil {
		httpError(w, http.StatusNotFound, "no synopsis named %q", name)
		return
	}
	ds, ok := (*p).(deltaSource)
	if !ok {
		httpError(w, http.StatusBadRequest, "synopsis kind %q does not serve deltas", (*p).kind())
		return
	}
	eng := ds.deltaEngine()
	sinceVec, err := parseSince(since, eng.Epoch(), eng.Shards())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ent.stats.snapshots.Add(1)
	if c := ent.delta.Load(); c != nil && c.owner == p && c.since == since {
		if vecEqual(eng.Versions(nil), c.to) {
			writeDeltaBody(w, eng.Epoch(), c.to, c.body)
			return
		}
	}
	s.deltaEncodes.Add(1)
	ckpt, err := eng.Checkpoint()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	frame, err := ckpt.AppendDelta(nil, sinceVec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	to := ckpt.Versions(nil)
	ent.delta.Store(&deltaCache{owner: p, since: since, to: to, body: frame})
	writeDeltaBody(w, ckpt.Epoch(), to, frame)
}

func vecEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeDeltaBody writes one delta frame with its coordinate headers.
func writeDeltaBody(w http.ResponseWriter, epoch uint64, to []uint64, body []byte) {
	w.Header().Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
	w.Header().Set(HeaderVersions, versionsHeader(to))
	writeSnapshotBody(w, body)
}

func versionsHeader(to []uint64) string {
	var b strings.Builder
	for i, v := range to {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(v, 10))
	}
	return b.String()
}

// ParseVersionsHeader decodes an X-Hsyn-Versions value.
func ParseVersionsHeader(raw string) ([]uint64, error) {
	if raw == "" {
		return nil, fmt.Errorf("serve: empty %s header", HeaderVersions)
	}
	parts := strings.Split(raw, ",")
	vec := make([]uint64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: bad %s entry %q", HeaderVersions, p)
		}
		vec[i] = v
	}
	return vec, nil
}

// deltaPutJSON is the PUT response for an applied delta.
type deltaPutJSON struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Applied int    `json:"applied"` // shards swapped
	Full    bool   `json:"full"`    // complete delta: engine rebuilt, not patched
}

// applyDelta handles a PUT /snapshot whose body is a TagShardedDelta frame.
// A complete frame rebuilds the engine from scratch and hosts it (creating
// the name if needed) — the full-resync path, which can never conflict. A
// partial frame is an in-place patch: under the entry's apply mutex, the
// recorded fleet state must match the frame's epoch and every carried
// shard's fromVersion, and only then are the named shards swapped. Any
// mismatch is a 409, telling the replicator to fall back to a complete
// frame. Partial applies are refused for anything but the bare sharded
// adapter: patching the engine under a durable wrapper would leave its WAL
// claiming a history the state no longer came from.
func (s *Server) applyDelta(w http.ResponseWriter, name string, frame []byte) {
	d, err := stream.ParseShardedDelta(frame)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if d.Complete() {
		eng, err := stream.NewShardedFromDelta(d)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.Host(name, eng); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		ent, _ := s.lookupEntry(name)
		ent.fleet.Store(&fleetState{epoch: d.Epoch(), versions: d.ToVersions(nil)})
		writeJSON(w, deltaPutJSON{Name: name, Kind: "sharded", Applied: d.ChangedShards(), Full: true})
		return
	}
	ent, ok := s.lookupEntry(name)
	if !ok {
		httpError(w, http.StatusConflict, "no synopsis named %q to apply a partial delta to", name)
		return
	}
	ent.applyMu.Lock()
	defer ent.applyMu.Unlock()
	p := ent.ptr.Load()
	if p == nil {
		httpError(w, http.StatusConflict, "no synopsis named %q to apply a partial delta to", name)
		return
	}
	sh, ok := (*p).(shardServed)
	if !ok {
		httpError(w, http.StatusConflict, "synopsis kind %q does not accept partial deltas", (*p).kind())
		return
	}
	fl := ent.fleet.Load()
	if fl == nil || fl.epoch != d.Epoch() || len(fl.versions) != d.TotalShards() {
		httpError(w, http.StatusConflict, "replica holds no base state from epoch %d", d.Epoch())
		return
	}
	for j := 0; j < d.ChangedShards(); j++ {
		idx, from, _ := d.Shard(j)
		if fl.versions[idx] != from {
			httpError(w, http.StatusConflict, "shard %d at version %d, delta starts from %d", idx, fl.versions[idx], from)
			return
		}
	}
	if err := sh.s.ApplyDelta(d); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	ent.fleet.Store(&fleetState{epoch: d.Epoch(), versions: d.ToVersions(fl.versions)})
	writeJSON(w, deltaPutJSON{Name: name, Kind: "sharded", Applied: d.ChangedShards()})
}
