package serve

import (
	"fmt"
	"sort"
	"strconv"
)

// Fleet routes synopsis names across a set of servers with a consistent-hash
// ring: each server contributes fleetVnodes virtual points, a name is served
// by the first point clockwise of its hash, and adding or removing one server
// remaps only the names that hashed to its arcs (~1/N of them) instead of
// reshuffling everything, the way modulo routing would.
type Fleet struct {
	clients []*Client
	ring    []ringPoint
}

// ringPoint is one virtual node: a position on the hash circle and the index
// of the client that owns it.
type ringPoint struct {
	pos uint64
	idx int
}

// fleetVnodes is the virtual-node count per server. 64 keeps the per-server
// load spread within a few percent of even for small fleets while the ring
// stays tiny (N×64 points, binary-searched).
const fleetVnodes = 64

// NewFleet builds a consistent-hash router over the given clients. Ring
// positions are derived from each client's Base URL, so every process that
// builds a fleet from the same member list routes identically — the property
// that lets stateless clients agree on placement with no coordination.
func NewFleet(clients []*Client) (*Fleet, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("serve: fleet needs at least one client")
	}
	f := &Fleet{
		clients: clients,
		ring:    make([]ringPoint, 0, len(clients)*fleetVnodes),
	}
	for i, c := range clients {
		if c == nil || c.Base == "" {
			return nil, fmt.Errorf("serve: fleet client %d has no base URL", i)
		}
		for v := 0; v < fleetVnodes; v++ {
			f.ring = append(f.ring, ringPoint{pos: fnv1a(c.Base + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(f.ring, func(a, b int) bool {
		if f.ring[a].pos != f.ring[b].pos {
			return f.ring[a].pos < f.ring[b].pos
		}
		return f.ring[a].idx < f.ring[b].idx
	})
	return f, nil
}

// ClientFor returns the server that owns name on the ring.
func (f *Fleet) ClientFor(name string) *Client {
	h := fnv1a(name)
	i := sort.Search(len(f.ring), func(i int) bool { return f.ring[i].pos >= h })
	if i == len(f.ring) {
		i = 0 // wrap: the circle's first point owns everything past the last
	}
	return f.clients[f.ring[i].idx]
}

// Clients returns the fleet members in construction order.
func (f *Fleet) Clients() []*Client { return f.clients }

// fnv1a is the 64-bit FNV-1a hash run through a full-avalanche finalizer —
// stable across processes and platforms, which ring placement requires
// (maphash seeds would not be). Raw FNV-1a's high bits barely change across
// short keys with a shared prefix ("events-1", "events-2", ...), so without
// the finalizer sequential names clump onto a handful of arcs instead of
// spreading around the ring.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	// murmur3's fmix64: every input bit flips ~half the output bits.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
