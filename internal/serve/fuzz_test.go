package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sparse"
	"repro/internal/stream"
)

// fuzzTargets enumerates the request surface the fuzzer drives: every
// endpoint family, with the method and paths fixed per slot so the fuzzer's
// first byte selects a slot deterministically.
var fuzzTargets = []struct {
	method string
	path   string
}{
	{http.MethodPost, "/v1/h/at"},
	{http.MethodPost, "/v1/h/range"},
	{http.MethodPost, "/v1/h/add"},
	{http.MethodPost, "/v1/s/at"},
	{http.MethodPost, "/v1/s/range"},
	{http.MethodPost, "/v1/s/add"},
	{http.MethodPut, "/v1/h/snapshot"},
	{http.MethodPut, "/v1/s/snapshot"},
	{http.MethodPut, "/v1/new/snapshot"},
	{http.MethodPost, "/v1/hier/at"},
	{http.MethodGet, "/v1/h/at?x=1"},
	{http.MethodGet, "/v1/h/range?a=1&b=2"},
}

var fuzzContentTypes = []string{
	ContentJSON,
	ContentBatch,
	ContentSnapshot,
	"",
	"text/plain; charset=utf-8",
	"application/json; charset=\x7f",
}

// fuzzHandler builds one shared handler hosting a histogram, a sharded
// engine, and a hierarchy. Shared across fuzz executions: the handler must
// stay healthy under any request sequence, which is exactly the property
// being fuzzed.
var fuzzHandler = sync.OnceValue(func() http.Handler {
	opts := core.DefaultOptions()
	opts.Workers = 1
	srv := NewServer(&Config{Workers: 1, MaxBatch: 1 << 12, MaxSnapshotBytes: 1 << 20})
	data := testData(512)
	res, err := core.ConstructHistogram(sparse.FromDense(data), 8, opts)
	if err != nil {
		panic(err)
	}
	if err := srv.Host("h", res.Histogram); err != nil {
		panic(err)
	}
	sh, err := stream.NewSharded(512, 4, 2, 64, opts)
	if err != nil {
		panic(err)
	}
	if err := srv.Host("s", sh); err != nil {
		panic(err)
	}
	if err := srv.Host("hier", core.ConstructHierarchicalHistogramWorkers(sparse.FromDense(data), 1)); err != nil {
		panic(err)
	}
	return srv.Handler()
})

// FuzzServeRequest throws arbitrary bodies — malformed JSON, truncated or
// corrupted binary frames, absurd lengths, junk snapshots — at every
// endpoint. The contract: the handler NEVER panics (a panic fails the fuzz
// run) and never reports a server-side failure for a client-side body; every
// response is 2xx or 4xx.
func FuzzServeRequest(f *testing.F) {
	// Seed with one valid and one near-miss body per codec and shape.
	var pts, rngs, add bytes.Buffer
	if err := EncodePointsBody(&pts, []int{1, 2, 500}); err != nil {
		f.Fatal(err)
	}
	if err := EncodeRangesBody(&rngs, []int{1, 4}, []int{3, 400}); err != nil {
		f.Fatal(err)
	}
	if err := EncodeAddBody(&add, []int{5, 6}, []float64{1, -2.5}); err != nil {
		f.Fatal(err)
	}
	for slot := range fuzzTargets {
		f.Add(uint8(slot), uint8(0), []byte(`{"points":[1,2,3]}`))
		f.Add(uint8(slot), uint8(1), pts.Bytes())
	}
	f.Add(uint8(1), uint8(1), rngs.Bytes())
	f.Add(uint8(2), uint8(1), add.Bytes())
	f.Add(uint8(0), uint8(0), []byte(`{"as":[1],"bs":[9]}`))
	f.Add(uint8(0), uint8(1), pts.Bytes()[:len(pts.Bytes())-2]) // truncated
	mutated := append([]byte(nil), rngs.Bytes()...)
	mutated[len(mutated)/2] ^= 0xff
	f.Add(uint8(4), uint8(1), mutated) // corrupted CRC
	f.Add(uint8(6), uint8(2), []byte("HSYN\x01\x01garbage"))
	f.Add(uint8(8), uint8(2), []byte{})
	// Absurd length prefix: a points frame claiming 2^40 entries.
	f.Add(uint8(0), uint8(1), []byte{'H', 'S', 'Y', 'N', 1, 0xF0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20})

	handler := fuzzHandler()
	f.Fuzz(func(t *testing.T, slot, ctype uint8, body []byte) {
		target := fuzzTargets[int(slot)%len(fuzzTargets)]
		ct := fuzzContentTypes[int(ctype)%len(fuzzContentTypes)]
		req := httptest.NewRequest(target.method, target.path, bytes.NewReader(body))
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("%s %s (%q, %d body bytes): server-side status %d: %s",
				target.method, target.path, ct, len(body), rec.Code, rec.Body.String())
		}
	})
}
