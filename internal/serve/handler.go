package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/codec"
)

// Handler returns the HTTP handler serving the registry. Routing uses the
// standard library mux; see the package comment for the endpoint table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1", s.handleList)
	mux.HandleFunc("GET /v1/{name}/at", s.handleQuery)
	mux.HandleFunc("POST /v1/{name}/at", s.handleQuery)
	mux.HandleFunc("GET /v1/{name}/range", s.handleQuery)
	mux.HandleFunc("POST /v1/{name}/range", s.handleQuery)
	mux.HandleFunc("POST /v1/{name}/add", s.handleAdd)
	mux.HandleFunc("GET /v1/{name}/snapshot", s.handleSnapshotGet)
	mux.HandleFunc("PUT /v1/{name}/snapshot", s.handleSnapshotPut)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// handleHealthz is liveness: the process is up and the handler runs. Always
// 200 — a wedged engine shows in /metrics and /readyz, not here.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// handleReadyz is readiness: 200 once recovery/replay has finished and the
// registry accepts traffic, 503 before (see Server.SetReady).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		httpError(w, http.StatusServiceUnavailable, "recovering")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// JSON request/response shapes.
type pointsJSON struct {
	Points []int `json:"points"`
}
type rangesJSON struct {
	As []int `json:"as"`
	Bs []int `json:"bs"`
}
type addJSON struct {
	Points  []int     `json:"points"`
	Weights []float64 `json:"weights,omitempty"`
}
type valuesJSON struct {
	Values []float64 `json:"values"`
}
type errorJSON struct {
	Error string `json:"error"`
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", ContentJSON)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorJSON{Error: fmt.Sprintf(format, args...)})
}

// bodyErrStatus maps a request-body decode error to its status: an oversized
// body (the MaxBytesReader tripping) is 413 — "shrink your batch", not
// "malformed request" — and everything else is a plain 400.
func bodyErrStatus(err error) int {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// writeJSON writes v as a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", ContentJSON)
	_ = json.NewEncoder(w).Encode(v)
}

// resolve loads the synopsis a request addresses — and its registry slot,
// whose counters the handler bumps — or writes the 404.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (served, *entry, bool) {
	name := r.PathValue("name")
	ent, ok := s.lookupEntry(name)
	if !ok {
		httpError(w, http.StatusNotFound, "no synopsis named %q", name)
		return nil, nil, false
	}
	p := ent.ptr.Load()
	if p == nil {
		httpError(w, http.StatusNotFound, "no synopsis named %q", name)
		return nil, nil, false
	}
	return *p, ent, true
}

// params extracts the per-request query knobs (?k= for hierarchies,
// ?window= / ?halflife= for windowed streaming engines; the batch fan-out
// comes from the server configuration).
func (s *Server) params(r *http.Request) (queryParams, error) {
	q := queryParams{workers: s.cfg.Workers}
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err := strconv.Atoi(raw)
		if err != nil {
			return q, fmt.Errorf("bad k %q", raw)
		}
		q.k = k
	}
	if raw := r.URL.Query().Get("window"); raw != "" {
		w, err := strconv.Atoi(raw)
		if err != nil || w < 1 {
			return q, fmt.Errorf("bad window %q (want an integer ≥ 1 epochs)", raw)
		}
		q.window = w
	}
	if raw := r.URL.Query().Get("halflife"); raw != "" {
		hl, err := strconv.ParseFloat(raw, 64)
		if err != nil || hl <= 0 || math.IsInf(hl, 0) || math.IsNaN(hl) {
			return q, fmt.Errorf("bad halflife %q (want a finite number of epochs > 0)", raw)
		}
		q.halflife = hl
	}
	return q, nil
}

// contentType parses the request's Content-Type, defaulting to JSON when the
// header is absent.
func contentType(r *http.Request) (string, error) {
	raw := r.Header.Get("Content-Type")
	if raw == "" {
		return ContentJSON, nil
	}
	ct, _, err := mime.ParseMediaType(raw)
	if err != nil {
		return "", fmt.Errorf("bad Content-Type %q", raw)
	}
	return ct, nil
}

// handleList serves the registry listing.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Synopses []NameInfo `json:"synopses"`
	}{Synopses: s.Names()})
}

// handleQuery serves /at and /range in both single (GET + URL params) and
// batch (POST + body) form. The response codec follows the request codec.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sv, ent, ok := s.resolve(w, r)
	if !ok {
		return
	}
	q, err := s.params(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if q.windowed() {
		ws, ok := sv.(windowedServed)
		if !ok || !ws.windowedQueries() {
			httpError(w, http.StatusBadRequest,
				"synopsis kind %q does not answer windowed or decayed queries (?window= / ?halflife= need a windowed streaming engine)", sv.kind())
			return
		}
	}
	isRange := strings.HasSuffix(r.URL.Path, "/range")
	if isRange {
		ent.stats.ranges.Add(1)
	} else {
		ent.stats.points.Add(1)
	}

	if r.Method == http.MethodGet {
		s.handleSingleQuery(w, r, sv, q, isRange)
		return
	}

	ct, err := contentType(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxQueryBodyBytes(s.cfg.MaxBatch))
	var values []float64
	switch ct {
	case ContentJSON:
		var qerr error
		if isRange {
			var req rangesJSON
			if err := decodeJSONBody(body, &req); err != nil {
				httpError(w, bodyErrStatus(err), "%v", err)
				return
			}
			if len(req.As) != len(req.Bs) {
				httpError(w, http.StatusBadRequest, "%d starts for %d ends", len(req.As), len(req.Bs))
				return
			}
			if len(req.As) > s.cfg.MaxBatch {
				httpError(w, http.StatusBadRequest, "batch of %d exceeds the server's limit of %d", len(req.As), s.cfg.MaxBatch)
				return
			}
			values, qerr = sv.rangeBatch(req.As, req.Bs, q, nil)
		} else {
			var req pointsJSON
			if err := decodeJSONBody(body, &req); err != nil {
				httpError(w, bodyErrStatus(err), "%v", err)
				return
			}
			if len(req.Points) > s.cfg.MaxBatch {
				httpError(w, http.StatusBadRequest, "batch of %d exceeds the server's limit of %d", len(req.Points), s.cfg.MaxBatch)
				return
			}
			values, qerr = sv.pointBatch(req.Points, q, nil)
		}
		if qerr != nil {
			httpError(w, http.StatusBadRequest, "%v", qerr)
			return
		}
		writeJSON(w, valuesJSON{Values: values})
	case ContentBatch:
		wb := s.bufs.get()
		status, err := s.answerBinary(sv, q, isRange, body, wb)
		if err != nil {
			s.bufs.put(wb)
			httpError(w, status, "%v", err)
			return
		}
		w.Header().Set("Content-Type", ContentBatch)
		w.Header().Set("Content-Length", strconv.Itoa(len(wb.resp)))
		_, _ = w.Write(wb.resp)
		// net/http copies the bytes out during Write, so the frame can be
		// recycled as soon as it returns.
		s.bufs.put(wb)
	default:
		httpError(w, http.StatusUnsupportedMediaType, "unsupported Content-Type %q (want %q or %q)", ct, ContentJSON, ContentBatch)
	}
}

// answerBinary is the zero-copy binary batch path: the request body is read
// into a pooled buffer, checksum-verified and parsed in place, answered into
// the pooled value vector, and the response frame is appended directly into
// wb.resp — header first, packed values, one CRC pass over the filled region.
// After warm-up the whole request performs no allocations. On success wb.resp
// holds the complete response frame; on error it returns the HTTP status to
// report. Factored off the handler so tests can pin the allocation count
// without a ResponseWriter in the way.
func (s *Server) answerBinary(sv served, q queryParams, isRange bool, body io.Reader, wb *wireBuf) (int, error) {
	req, err := readBodyInto(wb.req, body)
	wb.req = req
	if err != nil {
		return bodyErrStatus(err), err
	}
	var values []float64
	if isRange {
		as, bs, err := ParseRangesBody(req, s.cfg.MaxBatch, wb.xs, wb.bs)
		if err != nil {
			return http.StatusBadRequest, err
		}
		wb.xs, wb.bs = as, bs
		values, err = sv.rangeBatch(as, bs, q, wb.vals)
		if err != nil {
			return http.StatusBadRequest, err
		}
	} else {
		xs, err := ParsePointsBody(req, s.cfg.MaxBatch, wb.xs)
		if err != nil {
			return http.StatusBadRequest, err
		}
		wb.xs = xs
		values, err = sv.pointBatch(xs, q, wb.vals)
		if err != nil {
			return http.StatusBadRequest, err
		}
	}
	wb.vals = values
	wb.resp = AppendValuesBody(wb.resp[:0], values)
	return http.StatusOK, nil
}

// handleSingleQuery answers GET /at?x= and GET /range?a=&b= with a one-value
// JSON object — the curl-friendly face of the batch machinery, answered by
// the same adapters so single and batch answers are bit-identical.
func (s *Server) handleSingleQuery(w http.ResponseWriter, r *http.Request, sv served, q queryParams, isRange bool) {
	get := func(key string) (int, bool) {
		v, err := strconv.Atoi(r.URL.Query().Get(key))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad or missing %s=%q", key, r.URL.Query().Get(key))
			return 0, false
		}
		return v, true
	}
	var values []float64
	var err error
	if isRange {
		a, ok := get("a")
		if !ok {
			return
		}
		b, ok := get("b")
		if !ok {
			return
		}
		values, err = sv.rangeBatch([]int{a}, []int{b}, q, nil)
	} else {
		x, ok := get("x")
		if !ok {
			return
		}
		values, err = sv.pointBatch([]int{x}, q, nil)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, struct {
		Value float64 `json:"value"`
	}{Value: values[0]})
}

// handleAdd serves ingest batches into a hosted streaming engine.
func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	sv, ent, ok := s.resolve(w, r)
	if !ok {
		return
	}
	ing, ok := sv.(ingester)
	if !ok {
		httpError(w, http.StatusBadRequest, "synopsis kind %q does not accept updates", sv.kind())
		return
	}
	ent.stats.ingests.Add(1)
	ct, err := contentType(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxQueryBodyBytes(s.cfg.MaxBatch))
	switch ct {
	case ContentJSON:
		points, weights, err := decodeAddJSON(body, s.cfg.MaxBatch)
		if err != nil {
			httpError(w, bodyErrStatus(err), "%v", err)
			return
		}
		if weights != nil && len(weights) != len(points) {
			httpError(w, http.StatusBadRequest, "%d weights for %d points", len(weights), len(points))
			return
		}
		if err := ing.ingest(points, weights); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, struct {
			Ingested int `json:"ingested"`
		}{Ingested: len(points)})
	case ContentBatch:
		wb := s.bufs.get()
		status, err := s.ingestBinary(ing, body, wb)
		if err != nil {
			s.bufs.put(wb)
			httpError(w, status, "%v", err)
			return
		}
		w.Header().Set("Content-Type", ContentJSON)
		w.Header().Set("Content-Length", strconv.Itoa(len(wb.resp)))
		_, _ = w.Write(wb.resp)
		// net/http copies the bytes out during Write, so the reply can be
		// recycled as soon as it returns.
		s.bufs.put(wb)
	default:
		httpError(w, http.StatusUnsupportedMediaType, "unsupported Content-Type %q (want %q or %q)", ct, ContentJSON, ContentBatch)
	}
}

// ingestBinary is the zero-copy binary ingest path, mirroring answerBinary:
// the request body is read into a pooled buffer, checksum-verified and
// parsed in place into the pooled point/weight vectors, fed to the engine,
// and the {"ingested":N} reply is appended into the pooled response buffer.
// After warm-up the whole request performs no allocations (the hosted
// maintainer's compactions included). On success wb.resp holds the complete
// reply; on error it returns the HTTP status to report. Factored off the
// handler so tests can pin the allocation count without a ResponseWriter in
// the way.
func (s *Server) ingestBinary(ing ingester, body io.Reader, wb *wireBuf) (int, error) {
	req, err := readBodyInto(wb.req, body)
	wb.req = req
	if err != nil {
		return bodyErrStatus(err), err
	}
	points, weights, err := ParseAddBody(req, s.cfg.MaxBatch, wb.xs, wb.vals)
	if err != nil {
		return http.StatusBadRequest, err
	}
	wb.xs = points
	if weights != nil {
		wb.vals = weights
	}
	if err := ing.ingest(points, weights); err != nil {
		return http.StatusBadRequest, err
	}
	wb.resp = appendIngestedJSON(wb.resp[:0], len(points))
	return http.StatusOK, nil
}

// appendIngestedJSON renders the {"ingested":N} reply byte-for-byte as
// writeJSON's json.Encoder would (trailing newline included), without the
// encoder allocations.
func appendIngestedJSON(dst []byte, n int) []byte {
	dst = append(dst, `{"ingested":`...)
	dst = strconv.AppendInt(dst, int64(n), 10)
	return append(dst, '}', '\n')
}

// decodeAddJSON decodes an ingest body {"points":[...],"weights":[...]} with
// the strictness of decodeJSONBody (unknown fields and trailing data
// rejected) but enforces maxBatch DURING the points array scan: a body
// claiming a million points is rejected at element maxBatch+1 instead of
// after materializing the whole slice. The binary path gets the same
// guarantee from the length prefix; the streaming JSON grammar has no
// prefix, so the decoder has to count as it goes.
func decodeAddJSON(r io.Reader, maxBatch int) (points []int, weights []float64, err error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := expectDelim(dec, '{'); err != nil {
		return nil, nil, err
	}
	seenP, seenW := false, false
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, nil, err
		}
		key, _ := tok.(string)
		switch key {
		case "points":
			if seenP {
				return nil, nil, fmt.Errorf(`json: duplicate field "points"`)
			}
			seenP = true
			if points, err = decodeJSONIntArray(dec, maxBatch); err != nil {
				return nil, nil, fmt.Errorf("points: %w", err)
			}
		case "weights":
			if seenW {
				return nil, nil, fmt.Errorf(`json: duplicate field "weights"`)
			}
			seenW = true
			if weights, err = decodeJSONFloatArray(dec, maxBatch); err != nil {
				return nil, nil, fmt.Errorf("weights: %w", err)
			}
		default:
			return nil, nil, fmt.Errorf("json: unknown field %q", key)
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, nil, err
	}
	if dec.More() {
		return nil, nil, fmt.Errorf("trailing data after JSON body")
	}
	return points, weights, nil
}

// expectDelim consumes one token and requires it to be the delimiter.
func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("json: expected %q, got %v", want.String(), tok)
	}
	return nil
}

// decodeJSONIntArray streams an integer array, failing as soon as it exceeds
// maxBatch elements. A JSON null decodes to nil, like encoding/json.
func decodeJSONIntArray(dec *json.Decoder, maxBatch int) ([]int, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	if tok == nil {
		return nil, nil
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return nil, fmt.Errorf("json: expected an array, got %v", tok)
	}
	out := []int{}
	for dec.More() {
		if len(out) >= maxBatch {
			return nil, fmt.Errorf("batch exceeds the server's limit of %d", maxBatch)
		}
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		num, ok := tok.(json.Number)
		if !ok {
			return nil, fmt.Errorf("json: element %d is not a number", len(out))
		}
		v, err := strconv.ParseInt(num.String(), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("json: element %d: %v", len(out), err)
		}
		out = append(out, int(v))
	}
	_, err = dec.Token() // the closing ]
	return out, err
}

// decodeJSONFloatArray streams a float array, failing as soon as it exceeds
// maxBatch elements. A JSON null decodes to nil, like encoding/json.
func decodeJSONFloatArray(dec *json.Decoder, maxBatch int) ([]float64, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	if tok == nil {
		return nil, nil
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return nil, fmt.Errorf("json: expected an array, got %v", tok)
	}
	out := []float64{}
	for dec.More() {
		if len(out) >= maxBatch {
			return nil, fmt.Errorf("batch exceeds the server's limit of %d", maxBatch)
		}
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		num, ok := tok.(json.Number)
		if !ok {
			return nil, fmt.Errorf("json: element %d is not a number", len(out))
		}
		v, err := num.Float64()
		if err != nil {
			return nil, fmt.Errorf("json: element %d: %v", len(out), err)
		}
		out = append(out, v)
	}
	_, err = dec.Token() // the closing ]
	return out, err
}

// handleSnapshotGet streams the synopsis as one binary envelope. The
// envelope is staged in memory first — synopses are O(k) numbers — so a
// capture error still maps to a clean HTTP status instead of a torn body.
// For immutable synopses the staged body is memoized on the registry entry,
// keyed by the published pointer: every GET between two hot-swaps serves the
// same preserialized bytes, and the atomic store that publishes a replacement
// is also what retires the cache. Mutable engines (anything that ingests) are
// never cached — their bytes change without a swap.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	if since := r.URL.Query().Get("since"); since != "" {
		s.handleSnapshotDelta(w, r, since)
		return
	}
	name := r.PathValue("name")
	ent, ok := s.lookupEntry(name)
	if !ok {
		httpError(w, http.StatusNotFound, "no synopsis named %q", name)
		return
	}
	p := ent.ptr.Load()
	if p == nil {
		httpError(w, http.StatusNotFound, "no synopsis named %q", name)
		return
	}
	ent.stats.snapshots.Add(1)
	if c := ent.snap.Load(); c != nil && c.owner == p {
		writeSnapshotBody(w, c.body)
		return
	}
	sv := *p
	s.snapshotEncodes.Add(1)
	var buf bytes.Buffer
	if err := sv.snapshot(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body := buf.Bytes()
	if _, mutable := sv.(ingester); !mutable {
		ent.snap.Store(&snapCache{owner: p, body: body})
	}
	writeSnapshotBody(w, body)
}

// writeSnapshotBody writes one complete snapshot envelope.
func writeSnapshotBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", ContentSnapshot)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

// handleSnapshotPut replaces (or creates) the synopsis served under a name
// from a pushed binary envelope: decode and validate the complete
// replacement first, then publish it with one atomic pointer store.
// In-flight requests keep serving the object they already loaded. The body
// lands in a pooled wire buffer — on a replica syncing every few hundred
// milliseconds this is the hot path, and steady-state decode should recycle
// its scratch like the binary query paths do. A delta body (TagShardedDelta
// or TagShardedDeltaW) is dispatched to the delta-apply path instead of the
// decode-and-swap one.
func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSnapshotBytes)
	wb := s.bufs.get()
	defer s.bufs.put(wb)
	req, err := readBodyInto(wb.req, body)
	wb.req = req
	if err != nil {
		status := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "%v", err)
		return
	}
	if len(req) >= 6 && [4]byte(req[:4]) == codec.Magic &&
		(req[5] == codec.TagShardedDelta || req[5] == codec.TagShardedDeltaW) {
		s.applyDelta(w, name, req)
		return
	}
	if err := s.Load(name, bytes.NewReader(req)); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sv, _ := s.lookup(name)
	writeJSON(w, struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}{Name: name, Kind: sv.kind()})
}

// decodeJSONBody strictly decodes one JSON value, rejecting unknown fields,
// trailing garbage, and oversized bodies (the MaxBytesReader surfaces here
// as a read error).
func decodeJSONBody(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// maxQueryBodyBytes bounds a query/ingest body: generous per-element worst
// cases (JSON renders a float64 in ≤ 25 bytes; two of those plus separators
// per range query) plus framing slack.
func maxQueryBodyBytes(maxBatch int) int64 {
	return int64(maxBatch)*64 + 4096
}
