// GET /metrics: the registry's operational counters in the Prometheus text
// exposition format (0.0.4), hand-rendered — the repo has no client library
// and needs none for a page of gauges and counters.
//
// Three layers of metrics compose the page. The handler layer counts
// requests per hosted name (point/range/ingest/snapshot); the engine layer
// reports ingest totals and compaction/pause latency percentiles for any
// adapter offering ingestStats; and the durability layer reports WAL and
// checkpoint counters for any adapter offering durableStats. Immutable
// synopses appear only in the request-count families.
//
// Percentiles are computed server-side over the engines' recent-duration
// rings (up to 512 samples per shard per kind) and exposed as gauges with a
// quantile label — the rings are bounded windows, not histograms, so a
// scraper gets "recent p99" rather than an aggregatable distribution. Rates
// (ingest qps, fsyncs/s) fall out of the _total counters under rate().
package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/stream"
)

// metricsRow is one hosted name's slice of the scrape, captured before
// rendering so samples group correctly under their family headers.
type metricsRow struct {
	name    string
	points  int64
	ranges  int64
	ingests int64
	snaps   int64
	ingest  *stream.IngestStats
	durable *stream.DurableStats
}

// handleMetrics serves the scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var rows []metricsRow
	s.entries.Range(func(key, value any) bool {
		ent := value.(*entry)
		p := ent.ptr.Load()
		if p == nil {
			return true
		}
		row := metricsRow{
			name:    key.(string),
			points:  ent.stats.points.Load(),
			ranges:  ent.stats.ranges.Load(),
			ingests: ent.stats.ingests.Load(),
			snaps:   ent.stats.snapshots.Load(),
		}
		switch sv := (*p).(type) {
		case durableStatser:
			st := sv.durableStats()
			row.durable = &st
			row.ingest = &st.Ingest
		case ingestStatser:
			st := sv.ingestStats()
			row.ingest = &st
		}
		rows = append(rows, row)
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	var b bytes.Buffer
	ready := int64(0)
	if s.Ready() {
		ready = 1
	}
	promFamily(&b, "histapprox_ready", "gauge", "Whether the server has finished recovery and accepts traffic.")
	promInt(&b, "histapprox_ready", "", ready)
	promFamily(&b, "histapprox_synopses", "gauge", "Number of synopses currently hosted.")
	promInt(&b, "histapprox_synopses", "", int64(len(rows)))
	promFamily(&b, "histapprox_snapshot_encodes_total", "counter", "Snapshot GETs that ran an encoder instead of serving the memoized body.")
	promInt(&b, "histapprox_snapshot_encodes_total", "", s.snapshotEncodes.Load())
	promFamily(&b, "histapprox_delta_encodes_total", "counter", "Delta GETs that ran an encoder instead of serving the memoized frame.")
	promInt(&b, "histapprox_delta_encodes_total", "", s.deltaEncodes.Load())

	perName := []struct {
		family, typ, help string
		value             func(metricsRow) int64
	}{
		{"histapprox_point_queries_total", "counter", "Point-query requests served, per synopsis.", func(r metricsRow) int64 { return r.points }},
		{"histapprox_range_queries_total", "counter", "Range-query requests served, per synopsis.", func(r metricsRow) int64 { return r.ranges }},
		{"histapprox_ingest_requests_total", "counter", "Ingest requests accepted, per synopsis.", func(r metricsRow) int64 { return r.ingests }},
		{"histapprox_snapshot_requests_total", "counter", "Snapshot GET requests served, per synopsis.", func(r metricsRow) int64 { return r.snaps }},
	}
	for _, fam := range perName {
		promFamily(&b, fam.family, fam.typ, fam.help)
		for _, row := range rows {
			promInt(&b, fam.family, nameLabel(row.name), fam.value(row))
		}
	}

	writeIngestFamilies(&b, rows)
	writeDurableFamilies(&b, rows)
	if rp := s.repl.Load(); rp != nil {
		writeReplicaFamilies(&b, rp)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(b.Len()))
	_, _ = w.Write(b.Bytes())
}

// writeIngestFamilies renders the engine-layer families for every row with
// ingest stats (bare and durable streaming engines alike).
func writeIngestFamilies(b *bytes.Buffer, rows []metricsRow) {
	any := false
	for _, r := range rows {
		if r.ingest != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	ints := []struct {
		family, typ, help string
		value             func(*stream.IngestStats) int64
	}{
		{"histapprox_ingest_updates_total", "counter", "Updates applied by the streaming engine.", func(st *stream.IngestStats) int64 { return int64(st.Updates) }},
		{"histapprox_compactions_total", "counter", "Merging-run compactions completed.", func(st *stream.IngestStats) int64 { return int64(st.Compactions) }},
		{"histapprox_ingest_pauses_total", "counter", "Ingest stalls behind an in-flight compaction.", func(st *stream.IngestStats) int64 { return int64(st.PauseCount) }},
		{"histapprox_ingest_shards", "gauge", "Shard count of the streaming engine.", func(st *stream.IngestStats) int64 { return int64(st.Shards) }},
	}
	for _, fam := range ints {
		promFamily(b, fam.family, fam.typ, fam.help)
		for _, row := range rows {
			if row.ingest != nil {
				promInt(b, fam.family, nameLabel(row.name), fam.value(row.ingest))
			}
		}
	}
	promFamily(b, "histapprox_compaction_seconds", "gauge", "Recent compaction duration percentiles.")
	for _, row := range rows {
		if row.ingest != nil {
			promQuantiles(b, "histapprox_compaction_seconds", row.name, row.ingest.CompactionDurations)
		}
	}
	promFamily(b, "histapprox_ingest_pause_seconds", "gauge", "Recent ingest-stall duration percentiles.")
	for _, row := range rows {
		if row.ingest != nil {
			promQuantiles(b, "histapprox_ingest_pause_seconds", row.name, row.ingest.Pauses)
		}
	}
}

// writeDurableFamilies renders the WAL and checkpoint families for every row
// backed by a write-ahead-logged engine.
func writeDurableFamilies(b *bytes.Buffer, rows []metricsRow) {
	any := false
	for _, r := range rows {
		if r.durable != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	ints := []struct {
		family, typ, help string
		value             func(*stream.DurableStats) int64
	}{
		{"histapprox_wal_appends_total", "counter", "Records appended to the write-ahead log.", func(st *stream.DurableStats) int64 { return st.WAL.Appends }},
		{"histapprox_wal_appended_bytes_total", "counter", "Frame bytes appended to the write-ahead log.", func(st *stream.DurableStats) int64 { return st.WAL.AppendedBytes }},
		{"histapprox_wal_flushes_total", "counter", "Group commits (write batches) flushed to the log.", func(st *stream.DurableStats) int64 { return st.WAL.Flushes }},
		{"histapprox_wal_fsyncs_total", "counter", "fsyncs issued by the log flusher.", func(st *stream.DurableStats) int64 { return st.WAL.Fsyncs }},
		{"histapprox_wal_rotations_total", "counter", "Log segment rotations (one per checkpoint).", func(st *stream.DurableStats) int64 { return st.WAL.Rotations }},
		{"histapprox_wal_max_group_commit", "gauge", "Largest number of records one flush wrote.", func(st *stream.DurableStats) int64 { return int64(st.WAL.MaxGroup) }},
		{"histapprox_wal_last_seq", "gauge", "Last assigned WAL sequence number.", func(st *stream.DurableStats) int64 { return int64(st.WAL.LastSeq) }},
		{"histapprox_wal_synced_seq", "gauge", "Last WAL sequence number covered by an fsync.", func(st *stream.DurableStats) int64 { return int64(st.WAL.SyncedSeq) }},
		{"histapprox_checkpoints_total", "counter", "Checkpoints committed (snapshot + WAL truncation).", func(st *stream.DurableStats) int64 { return st.Checkpoints }},
		{"histapprox_replayed_records", "gauge", "WAL records replayed when this engine was recovered.", func(st *stream.DurableStats) int64 { return int64(st.Replayed) }},
	}
	for _, fam := range ints {
		promFamily(b, fam.family, fam.typ, fam.help)
		for _, row := range rows {
			if row.durable != nil {
				promInt(b, fam.family, nameLabel(row.name), fam.value(row.durable))
			}
		}
	}
	promFamily(b, "histapprox_checkpoint_seconds", "gauge", "Recent checkpoint duration percentiles (capture + encode + commit).")
	for _, row := range rows {
		if row.durable != nil {
			promQuantiles(b, "histapprox_checkpoint_seconds", row.name, row.durable.CheckpointDurations)
		}
	}
}

// writeReplicaFamilies renders the fan-out replication families from the
// attached replicator: per-replica sync counters and a lag gauge (seconds
// since the last successful round — the number an alert should watch).
func writeReplicaFamilies(b *bytes.Buffer, rp *Replicator) {
	statuses := rp.Status()
	ints := []struct {
		family, typ, help string
		value             func(ReplicaStatus) int64
	}{
		{"histapprox_replica_syncs_total", "counter", "Successful replication rounds, per replica.", func(s ReplicaStatus) int64 { return s.Syncs }},
		{"histapprox_replica_full_syncs_total", "counter", "Rounds that shipped a complete state instead of a delta.", func(s ReplicaStatus) int64 { return s.FullSyncs }},
		{"histapprox_replica_sync_errors_total", "counter", "Failed replication rounds, per replica.", func(s ReplicaStatus) int64 { return s.SyncErrors }},
		{"histapprox_replica_delta_bytes_total", "counter", "Frame bytes shipped to each replica.", func(s ReplicaStatus) int64 { return s.DeltaBytes }},
	}
	for _, fam := range ints {
		promFamily(b, fam.family, fam.typ, fam.help)
		for _, st := range statuses {
			promInt(b, fam.family, targetLabel(st.Target), fam.value(st))
		}
	}
	promFamily(b, "histapprox_replica_lag_seconds", "gauge", "Seconds since each replica's last successful sync.")
	for _, st := range statuses {
		if st.LastSync.IsZero() {
			continue // never synced: no sample beats a misleading huge one
		}
		lag := time.Since(st.LastSync).Seconds()
		fmt.Fprintf(b, "histapprox_replica_lag_seconds%s %s\n",
			targetLabel(st.Target), strconv.FormatFloat(lag, 'g', -1, 64))
	}
}

// targetLabel renders the {target="..."} label set for one replica.
func targetLabel(target string) string {
	return `{target="` + escapeLabel(target) + `"}`
}

// promFamily writes the HELP/TYPE header for one family.
func promFamily(b *bytes.Buffer, family, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", family, help, family, typ)
}

// promInt writes one integer-valued sample. labels is the full rendered
// label set including braces, or "" for none.
func promInt(b *bytes.Buffer, family, labels string, v int64) {
	b.WriteString(family)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(v, 10))
	b.WriteByte('\n')
}

// promQuantiles writes p50/p90/p99 gauges over a recent-duration window,
// skipping empty windows (no samples beats a misleading zero).
func promQuantiles(b *bytes.Buffer, family, name string, durs []time.Duration) {
	if len(durs) == 0 {
		return
	}
	sorted := make([]time.Duration, len(durs))
	copy(sorted, durs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
		idx := int(q.q * float64(len(sorted)))
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		secs := sorted[idx].Seconds()
		fmt.Fprintf(b, "%s{name=\"%s\",quantile=\"%s\"} %s\n",
			family, escapeLabel(name), q.label, strconv.FormatFloat(secs, 'g', -1, 64))
	}
}

// nameLabel renders the {name="..."} label set for one hosted name.
func nameLabel(name string) string {
	return `{name="` + escapeLabel(name) + `"}`
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
