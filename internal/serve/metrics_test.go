package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// metricValue finds the sample for the exact series prefix (family plus
// rendered labels) and parses its value.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in scrape:\n%s", series, body)
	return 0
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestMetricsScrape drives traffic at a durable engine and an immutable
// histogram, then checks the /metrics page reports the request counters,
// engine ingest totals, and WAL families with the right values.
func TestMetricsScrape(t *testing.T) {
	srv := NewServer(&Config{Workers: 1})
	opts := core.DefaultOptions()
	opts.Workers = 1
	dur, err := stream.NewDurableSharded(1000, 6, 2, 64, opts, stream.DurableOptions{
		Dir: t.TempDir(), SyncEvery: 1, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dur.Close() })
	if err := srv.Host("dur", dur); err != nil {
		t.Fatal(err)
	}
	if err := srv.Host("hist", testHistogram(t, 1000, 8)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := ts.Client().Post(ts.URL+"/v1/dur/add", ContentJSON,
		strings.NewReader(`{"points":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if st, _ := get(t, ts, "/v1/dur/at?x=5"); st != http.StatusOK {
		t.Fatalf("point query status %d", st)
	}
	if st, _ := get(t, ts, "/v1/hist/range?a=1&b=10"); st != http.StatusOK {
		t.Fatalf("range query status %d", st)
	}
	if st, _ := get(t, ts, "/v1/dur/snapshot"); st != http.StatusOK {
		t.Fatalf("snapshot status %d", st)
	}

	r, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("scrape Content-Type %q lacks the exposition version", ct)
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for series, want := range map[string]float64{
		"histapprox_ready":                               1,
		"histapprox_synopses":                            2,
		`histapprox_point_queries_total{name="dur"}`:     1,
		`histapprox_point_queries_total{name="hist"}`:    0,
		`histapprox_range_queries_total{name="hist"}`:    1,
		`histapprox_ingest_requests_total{name="dur"}`:   1,
		`histapprox_snapshot_requests_total{name="dur"}`: 1,
		`histapprox_ingest_updates_total{name="dur"}`:    3,
		`histapprox_ingest_shards{name="dur"}`:           2,
		`histapprox_wal_appends_total{name="dur"}`:       1,
		`histapprox_wal_last_seq{name="dur"}`:            1,
		`histapprox_wal_synced_seq{name="dur"}`:          1,
	} {
		if got := metricValue(t, body, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	// SyncEvery=1 made the acknowledged ingest durable before returning.
	if got := metricValue(t, body, `histapprox_wal_fsyncs_total{name="dur"}`); got < 1 {
		t.Errorf("fsyncs = %v, want ≥ 1", got)
	}
	// The immutable histogram must not appear in engine/WAL families.
	if strings.Contains(body, `histapprox_wal_appends_total{name="hist"}`) {
		t.Error("immutable histogram leaked into the WAL families")
	}
	// Family headers are present exactly once per family.
	if n := strings.Count(body, "# TYPE histapprox_wal_appends_total counter"); n != 1 {
		t.Errorf("wal_appends TYPE header appears %d times", n)
	}
}

// TestHealthzReadyz pins the liveness/readiness split: /healthz is always
// 200, /readyz follows SetReady in both directions.
func TestHealthzReadyz(t *testing.T) {
	srv := NewServer(nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if st, body := get(t, ts, "/healthz"); st != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz = %d %q", st, body)
	}
	if st, _ := get(t, ts, "/readyz"); st != http.StatusOK {
		t.Fatalf("readyz while ready = %d, want 200", st)
	}
	srv.SetReady(false)
	if st, _ := get(t, ts, "/readyz"); st != http.StatusServiceUnavailable {
		t.Fatalf("readyz while recovering = %d, want 503", st)
	}
	if st, _ := get(t, ts, "/healthz"); st != http.StatusOK {
		t.Fatalf("healthz while recovering = %d, want 200", st)
	}
	srv.SetReady(true)
	if st, _ := get(t, ts, "/readyz"); st != http.StatusOK {
		t.Fatalf("readyz after recovery = %d, want 200", st)
	}
}

// TestSnapshotPutTooLarge pins the 413 on oversized snapshot pushes — the
// MaxBytesReader must trip before the decoder materializes anything — and
// that a legitimate snapshot under the cap still loads.
func TestSnapshotPutTooLarge(t *testing.T) {
	h := testHistogram(t, 200, 6)
	var small bytes.Buffer
	if _, err := h.WriteTo(&small); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(&Config{MaxSnapshotBytes: int64(small.Len())})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	put := func(body []byte) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/h/snapshot", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ContentSnapshot)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if st := put(small.Bytes()); st != http.StatusOK {
		t.Fatalf("snapshot exactly at the cap: status %d, want 200", st)
	}
	// A genuinely bigger envelope: the decoder needs bytes past the cap, so
	// the MaxBytesReader trips mid-decode.
	big := testHistogram(t, 4000, 64)
	var bigBuf bytes.Buffer
	if _, err := big.WriteTo(&bigBuf); err != nil {
		t.Fatal(err)
	}
	if bigBuf.Len() <= small.Len() {
		t.Fatalf("test setup: big envelope (%d bytes) not bigger than the cap (%d)", bigBuf.Len(), small.Len())
	}
	if st := put(bigBuf.Bytes()); st != http.StatusRequestEntityTooLarge {
		t.Fatalf("snapshot over the cap: status %d, want 413", st)
	}
	// The rejected push must not have disturbed the hosted synopsis.
	if st, _ := get(t, ts, "/v1/h/at?x=1"); st != http.StatusOK {
		t.Fatalf("query after rejected push: status %d", st)
	}
}

// TestAddBodyTooLarge pins the 413 on ingest bodies exceeding the batch
// body cap, in both codecs.
func TestAddBodyTooLarge(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Workers = 1
	m, err := stream.NewMaintainer(100, 4, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(&Config{MaxBatch: 4})
	if err := srv.Host("m", m); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	huge := bytes.Repeat([]byte{'7'}, int(maxQueryBodyBytes(4))+64)
	for _, ct := range []string{ContentJSON, ContentBatch} {
		resp, err := ts.Client().Post(ts.URL+"/v1/m/add", ct, bytes.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized add: status %d, want 413", ct, resp.StatusCode)
		}
	}
}
