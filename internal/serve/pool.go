package serve

import (
	"io"
	"sync"
	"sync/atomic"
)

// wireBuf is the per-request scratch of the zero-copy binary serving path:
// the raw request body, the parsed query slices, the answer vector, and the
// outgoing response frame all live here, recycled through the server's pool
// so a steady-state binary batch request performs no allocations at all.
type wireBuf struct {
	req  []byte    // raw request body bytes
	resp []byte    // outgoing HSYN response frame
	xs   []int     // parsed point queries / range starts
	bs   []int     // parsed range ends
	vals []float64 // batch answers, appended into resp
}

// wirePool hands out wireBufs, sizing fresh buffers from high-water marks so
// a pool miss after warm-up still allocates once at full size instead of
// growing through the append ladder.
type wirePool struct {
	pool    sync.Pool
	reqHWM  atomic.Int64 // largest request body seen
	respHWM atomic.Int64 // largest response frame built
}

// get returns a wireBuf with empty slices of high-water-mark capacity.
func (p *wirePool) get() *wireBuf {
	if wb, ok := p.pool.Get().(*wireBuf); ok {
		return wb
	}
	return &wireBuf{
		req:  make([]byte, 0, p.reqHWM.Load()),
		resp: make([]byte, 0, p.respHWM.Load()),
	}
}

// put records the buffer's grown capacities in the high-water marks and
// recycles it. Capacities, not lengths: readBodyInto needs a spare byte past
// the body to observe EOF, so sizing fresh buffers to the largest capacity a
// request actually grew to (rather than the largest body) keeps even a
// pool-miss request from growing again. The caller must be done with every
// slice — including a response frame already handed to the ResponseWriter.
func (p *wirePool) put(wb *wireBuf) {
	raiseHWM(&p.reqHWM, cap(wb.req))
	raiseHWM(&p.respHWM, cap(wb.resp))
	p.pool.Put(wb)
}

// raiseHWM lifts the mark to at least n.
func raiseHWM(hwm *atomic.Int64, n int) {
	for {
		cur := hwm.Load()
		if int64(n) <= cur || hwm.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// readBodyInto reads r to EOF into buf's spare capacity, growing only when
// the body outruns it — io.ReadAll against a recycled buffer. The returned
// slice aliases buf's array whenever capacity sufficed.
func readBodyInto(buf []byte, r io.Reader) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
