//go:build race

package serve

// raceEnabled reports that this binary was built with the race detector,
// which makes sync.Pool drop items at random — allocation-count assertions
// over pooled paths are meaningless there.
const raceEnabled = true
