package serve

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// TestServeConcurrentAddRangeSnapshot hammers one served sharded maintainer
// with parallel add, range, snapshot, and hot-swap traffic (run under -race
// by CI). The assertions are the serving layer's consistency contract:
//
//   - every request succeeds (no request ever observes a half-swapped or
//     half-compacted synopsis);
//   - every snapshot decodes cleanly with the strict library decoder;
//   - every snapshot is self-consistent: with unit-weight adds the
//     maintained vector is non-negative, so the restored engine's prefix
//     masses EstimateRange(1, x) must be non-decreasing in x, and the total
//     mass must lie between the adds completed before the snapshot request
//     and the adds started before its response.
func TestServeConcurrentAddRangeSnapshot(t *testing.T) {
	const (
		n         = 5000
		adders    = 4
		rangers   = 4
		snappers  = 2
		perAdder  = 60 // batches per adder
		batchSize = 50
	)
	opts := core.DefaultOptions()
	opts.Workers = 1
	engine, err := stream.NewSharded(n, 8, 4, 256, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(&Config{Workers: 1})
	if err := srv.Host("s", engine); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var completedAdds atomic.Int64 // updates acknowledged by the server
	var startedAdds atomic.Int64   // updates posted (ack pending or done)

	var wg, addersWg sync.WaitGroup
	errs := make(chan error, adders+rangers+snappers+1)

	for a := 0; a < adders; a++ {
		wg.Add(1)
		addersWg.Add(1)
		go func(a int) {
			defer wg.Done()
			defer addersWg.Done()
			c := NewClient(ts.URL, ts.Client(), a%2 == 0)
			points := make([]int, batchSize)
			for b := 0; b < perAdder; b++ {
				for i := range points {
					points[i] = 1 + (a*131071+b*8191+i*37)%n
				}
				startedAdds.Add(batchSize)
				if err := c.Add("s", points, nil); err != nil {
					errs <- fmt.Errorf("adder %d: %w", a, err)
					return
				}
				completedAdds.Add(batchSize)
			}
		}(a)
	}

	done := make(chan struct{})
	for r := 0; r < rangers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := NewClient(ts.URL, ts.Client(), r%2 == 0)
			as := make([]int, 16)
			bs := make([]int, 16)
			for q := 0; ; q++ {
				select {
				case <-done:
					return
				default:
				}
				for i := range as {
					a := 1 + (r*7919+q*211+i*97)%n
					as[i] = a
					bs[i] = a + (q*13+i)%(n-a+1)
				}
				vals, err := c.Ranges("s", as, bs)
				if err != nil {
					errs <- fmt.Errorf("ranger %d: %w", r, err)
					return
				}
				for i, v := range vals {
					if v < 0 || math.IsNaN(v) {
						errs <- fmt.Errorf("ranger %d: negative/NaN mass %v for [%d, %d] under unit-weight adds", r, v, as[i], bs[i])
						return
					}
				}
			}
		}(r)
	}

	for s := 0; s < snappers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := NewClient(ts.URL, ts.Client(), false)
			for {
				select {
				case <-done:
					return
				default:
				}
				before := completedAdds.Load()
				var buf bytes.Buffer
				if err := c.Snapshot("s", &buf); err != nil {
					errs <- fmt.Errorf("snapper %d: %w", s, err)
					return
				}
				after := startedAdds.Load()
				restored, err := stream.RestoreSharded(bytes.NewReader(buf.Bytes()))
				if err != nil {
					errs <- fmt.Errorf("snapper %d: snapshot does not decode: %w", s, err)
					return
				}
				// Monotone prefix masses on a unit-weight stream (up to
				// float rounding of the summary arithmetic).
				prev := -1.0
				for _, x := range []int{1, n / 8, n / 4, n / 2, 3 * n / 4, n} {
					v, err := restored.EstimateRange(1, x)
					if err != nil {
						errs <- fmt.Errorf("snapper %d: %w", s, err)
						return
					}
					if v < prev-1e-6*(1+math.Abs(prev)) {
						errs <- fmt.Errorf("snapper %d: prefix mass decreased: EstimateRange(1, %d) = %v < %v", s, x, v, prev)
						return
					}
					prev = v
				}
				total, err := restored.EstimateRange(1, n)
				if err != nil {
					errs <- fmt.Errorf("snapper %d: %w", s, err)
					return
				}
				// Unit weights: total mass counts absorbed updates. The
				// snapshot must hold at least every add acknowledged before
				// the request and at most every add started before the
				// response (each shard is captured under its lock, so no
				// update can be half-present).
				if total < float64(before)-0.5 || total > float64(after)+0.5 {
					errs <- fmt.Errorf("snapper %d: snapshot mass %v outside [%d, %d]", s, total, before, after)
					return
				}
				if math.Abs(total-math.Round(total)) > 1e-6*math.Max(1, total) {
					errs <- fmt.Errorf("snapper %d: unit-weight mass %v is not an integer", s, total)
					return
				}
			}
		}(s)
	}

	// One hot-swapper PUTs an independent histogram over a second name while
	// the hammering runs — swaps must never disturb requests against "s".
	swapHist := testHistogram(t, n, 10)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var blob bytes.Buffer
		if _, err := swapHist.WriteTo(&blob); err != nil {
			errs <- err
			return
		}
		c := NewClient(ts.URL, ts.Client(), false)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := c.Push("swap", bytes.NewReader(blob.Bytes())); err != nil {
				errs <- fmt.Errorf("swapper: %w", err)
				return
			}
			if _, err := c.Point("swap", 1+i%n); err != nil {
				errs <- fmt.Errorf("swapper query: %w", err)
				return
			}
		}
	}()

	// Run until the adders finish, then stop the open-ended workers.
	addersDone := make(chan struct{})
	go func() {
		defer close(addersDone)
		addersWg.Wait()
	}()

	select {
	case err := <-errs:
		close(done)
		wg.Wait()
		t.Fatal(err)
	case <-addersDone:
		close(done)
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	}

	// Final sanity: total mass equals every add issued.
	total, err := engine.EstimateRange(1, n)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(adders * perAdder * batchSize)
	if math.Abs(total-want) > 1e-6*want {
		t.Fatalf("final mass %v, want %v", total, want)
	}
}
