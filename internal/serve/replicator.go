package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Replicator fans one primary's sharded engine out to N replicas by shipping
// version-vector deltas on a fixed cadence.
//
// Each replica has its own goroutine and its own tracked coordinates
// (epoch + version vector), so a slow or down replica never holds the others
// back — per-replica pipelining, not a barrier sync. A round for one replica
// is: GET /snapshot?since=<tracked> from the primary, PUT the frame to the
// replica, advance the tracked coordinates to what the response headers
// promised. Two self-healing paths fall out of the delta protocol itself:
//
//   - Primary restart: its epoch changes, the replica's since names a dead
//     epoch, and the primary answers with a complete frame — which applies
//     unconditionally.
//   - Replica restart: the replicator's tracked vector no longer matches the
//     replica's (empty) state, the PUT answers 409, and the replicator
//     re-requests the complete frame and resets its tracking.
//
// Replicas polling at the same coordinates share the primary's memoized
// frame, so fan-out costs one encode per state change, not one per replica.
type Replicator struct {
	name     string
	primary  *Client
	replicas []*Client
	interval time.Duration

	states []replicaState

	mu      sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// replicaState is one replica's tracking and telemetry. The mutex covers the
// coordinates (one sync round at a time per replica); counters are atomics so
// /metrics scrapes never contend with a round in flight.
type replicaState struct {
	mu       sync.Mutex
	known    bool
	epoch    uint64
	versions []uint64

	syncs      atomic.Int64
	fullSyncs  atomic.Int64
	syncErrors atomic.Int64
	deltaBytes atomic.Int64
	lastSync   atomic.Int64 // unix nanos of the last successful round
	lastErr    atomic.Pointer[string]
}

// ReplicaStatus is one replica's externally visible replication state.
type ReplicaStatus struct {
	// Target is the replica's base URL.
	Target string
	// Known reports whether the replicator holds valid coordinates for the
	// replica (false until its first successful sync).
	Known bool
	// Epoch is the primary epoch the replica last synced from.
	Epoch uint64
	// Syncs counts successful rounds; FullSyncs the subset that shipped a
	// complete state (first sync, primary restart, or 409 recovery).
	Syncs, FullSyncs int64
	// SyncErrors counts failed rounds.
	SyncErrors int64
	// DeltaBytes totals the frame bytes shipped to this replica.
	DeltaBytes int64
	// LastSync is the completion time of the last successful round (zero if
	// none yet); LastErr the message of the most recent failure.
	LastSync time.Time
	LastErr  string
}

// NewReplicator builds a replicator for the named engine. interval is the
// sync cadence for Start; SyncOnce/SyncAll work regardless.
func NewReplicator(name string, primary *Client, replicas []*Client, interval time.Duration) (*Replicator, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: replicator needs a synopsis name")
	}
	if primary == nil || len(replicas) == 0 {
		return nil, fmt.Errorf("serve: replicator needs a primary and at least one replica")
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &Replicator{
		name:     name,
		primary:  primary,
		replicas: replicas,
		interval: interval,
		states:   make([]replicaState, len(replicas)),
	}, nil
}

// Name returns the replicated synopsis name.
func (r *Replicator) Name() string { return r.name }

// SyncOnce drives one complete round for replica i: fetch the delta since
// the replica's tracked coordinates, apply it, advance. Deterministic ground
// truth for tests and benchmarks; Start's goroutines call exactly this.
func (r *Replicator) SyncOnce(i int) error {
	st := &r.states[i]
	st.mu.Lock()
	defer st.mu.Unlock()
	since := "0"
	if st.known {
		since = FormatSince(st.epoch, st.versions)
	}
	body, epoch, versions, err := r.primary.SnapshotDelta(r.name, since)
	if err != nil {
		return r.fail(st, fmt.Errorf("fetch: %w", err))
	}
	full := !st.known || epoch != st.epoch
	if err := r.replicas[i].PushBytes(r.name, body); err != nil {
		if !IsConflict(err) {
			return r.fail(st, fmt.Errorf("apply: %w", err))
		}
		// The replica refused the partial frame — it lost (or never had) the
		// base state our tracking assumed. Reset and ship the complete state.
		full = true
		if body, epoch, versions, err = r.primary.SnapshotDelta(r.name, "0"); err != nil {
			return r.fail(st, fmt.Errorf("resync fetch: %w", err))
		}
		if err = r.replicas[i].PushBytes(r.name, body); err != nil {
			return r.fail(st, fmt.Errorf("resync apply: %w", err))
		}
	}
	st.known, st.epoch, st.versions = true, epoch, versions
	st.syncs.Add(1)
	if full {
		st.fullSyncs.Add(1)
	}
	st.deltaBytes.Add(int64(len(body)))
	st.lastSync.Store(time.Now().UnixNano())
	return nil
}

func (r *Replicator) fail(st *replicaState, err error) error {
	st.syncErrors.Add(1)
	msg := err.Error()
	st.lastErr.Store(&msg)
	return err
}

// SyncAll runs one round against every replica, returning the first error
// (all replicas are still attempted).
func (r *Replicator) SyncAll() error {
	var first error
	for i := range r.replicas {
		if err := r.SyncOnce(i); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Start launches one sync goroutine per replica on the configured cadence.
// Idempotent; Stop shuts the goroutines down and waits for in-flight rounds.
func (r *Replicator) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return
	}
	r.started = true
	r.stop = make(chan struct{})
	for i := range r.replicas {
		r.wg.Add(1)
		go func(i int) {
			defer r.wg.Done()
			ticker := time.NewTicker(r.interval)
			defer ticker.Stop()
			_ = r.SyncOnce(i) // first sync immediately, not one interval late
			for {
				select {
				case <-r.stop:
					return
				case <-ticker.C:
					_ = r.SyncOnce(i)
				}
			}
		}(i)
	}
}

// Stop halts the sync goroutines and waits for in-flight rounds to finish.
func (r *Replicator) Stop() {
	r.mu.Lock()
	if !r.started {
		r.mu.Unlock()
		return
	}
	r.started = false
	close(r.stop)
	r.mu.Unlock()
	r.wg.Wait()
}

// Status reports every replica's replication state, in replica order.
func (r *Replicator) Status() []ReplicaStatus {
	out := make([]ReplicaStatus, len(r.replicas))
	for i := range r.replicas {
		st := &r.states[i]
		s := ReplicaStatus{
			Target:     r.replicas[i].Base,
			Syncs:      st.syncs.Load(),
			FullSyncs:  st.fullSyncs.Load(),
			SyncErrors: st.syncErrors.Load(),
			DeltaBytes: st.deltaBytes.Load(),
		}
		if ns := st.lastSync.Load(); ns != 0 {
			s.LastSync = time.Unix(0, ns)
		}
		if msg := st.lastErr.Load(); msg != nil {
			s.LastErr = *msg
		}
		// Coordinates under the round mutex so epoch/known are consistent.
		st.mu.Lock()
		s.Known, s.Epoch = st.known, st.epoch
		st.mu.Unlock()
		out[i] = s
	}
	return out
}

// AttachReplicator exposes rp's per-replica telemetry on this server's
// /metrics page (histapprox_replica_* families). Pass nil to detach.
func (s *Server) AttachReplicator(rp *Replicator) { s.repl.Store(rp) }
