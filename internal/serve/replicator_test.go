package serve

import (
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// replTestEngine builds a sharded engine with deterministic knobs for
// replication tests: serial compaction, a buffer big enough that tests
// control exactly when compactions run.
func replTestEngine(t testing.TB, n, shards int) *stream.Sharded {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Workers = 1
	s, err := stream.NewSharded(n, 5, shards, 8192, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// replServer hosts one registry behind a real listener and returns it with a
// client.
func replServer(t testing.TB) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv := NewServer(&Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, NewClient(ts.URL, ts.Client(), true)
}

// assertReplicaConverged checks that the replica's served answers are
// bit-identical to the primary's across a probe workload.
func assertReplicaConverged(t *testing.T, primary, replica *Client, name string, n int) {
	t.Helper()
	_, as, bs := queries(n, 64)
	want, err := primary.Ranges(name, as, bs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := replica.Ranges(name, as, bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("range [%d, %d] = %v on replica, %v on primary", as[i], bs[i], got[i], want[i])
		}
	}
}

// TestReplicatorConvergesEveryRound is the acceptance property: across many
// rounds of skewed ingest, every SyncAll leaves both replicas answering
// bit-identically to the primary — including rounds where a compaction
// replaced whole summary views and rounds with nothing to ship.
func TestReplicatorConvergesEveryRound(t *testing.T) {
	const n = 3000
	eng := replTestEngine(t, n, 4)
	primarySrv, _, primaryCl := replServer(t)
	if err := primarySrv.Host("hist", eng); err != nil {
		t.Fatal(err)
	}
	_, _, replicaCl1 := replServer(t)
	_, _, replicaCl2 := replServer(t)
	rp, err := NewReplicator("hist", primaryCl, []*Client{replicaCl1, replicaCl2}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(42)
	for round := 0; round < 10; round++ {
		switch round % 3 {
		case 0, 1:
			points := make([]int, 200)
			weights := make([]float64, 200)
			for i := range points {
				state = state*6364136223846793005 + 1442695040888963407
				points[i] = 1 + int(state>>33)%n
				weights[i] = 1 + float64(state>>55)/8
			}
			if err := eng.AddBatch(points, weights); err != nil {
				t.Fatal(err)
			}
			if round%3 == 1 {
				if _, err := eng.Summary(); err != nil { // compact + install
					t.Fatal(err)
				}
			}
		case 2: // quiet round: deltas must be empty and still converge
		}
		if err := rp.SyncAll(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		assertReplicaConverged(t, primaryCl, replicaCl1, "hist", n)
		assertReplicaConverged(t, primaryCl, replicaCl2, "hist", n)
	}
	for i, st := range rp.Status() {
		if st.Syncs != 10 || st.SyncErrors != 0 {
			t.Fatalf("replica %d: %d syncs, %d errors", i, st.Syncs, st.SyncErrors)
		}
		if st.FullSyncs != 1 {
			t.Fatalf("replica %d: %d full syncs, want only the bootstrap one", i, st.FullSyncs)
		}
		if !st.Known || st.Epoch != eng.Epoch() {
			t.Fatalf("replica %d tracking epoch %d, engine %d", i, st.Epoch, eng.Epoch())
		}
	}
}

// TestReplicatorRecoversFromReplicaRestart kills a replica mid-stream
// (simulated by a fresh empty server at the same role) and checks the
// protocol heals: the stale tracked vector draws a 409, the replicator
// full-resyncs, and convergence resumes — the crash/restart half of the
// acceptance property.
func TestReplicatorRecoversFromReplicaRestart(t *testing.T) {
	const n = 2000
	eng := replTestEngine(t, n, 4)
	primarySrv, _, primaryCl := replServer(t)
	if err := primarySrv.Host("hist", eng); err != nil {
		t.Fatal(err)
	}
	replicaSrv, ts, replicaCl := replServer(t)
	rp, err := NewReplicator("hist", primaryCl, []*Client{replicaCl}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(seed uint64) {
		points := make([]int, 150)
		for i := range points {
			seed = seed*6364136223846793005 + 1442695040888963407
			points[i] = 1 + int(seed>>33)%n
		}
		if err := eng.AddBatch(points, nil); err != nil {
			t.Fatal(err)
		}
	}
	ingest(1)
	if err := rp.SyncOnce(0); err != nil {
		t.Fatal(err)
	}
	assertReplicaConverged(t, primaryCl, replicaCl, "hist", n)

	// "Restart" the replica: swap in a brand-new registry behind the same
	// URL. Its hist entry is gone; the replicator still trusts its tracking.
	fresh := NewServer(&Config{Workers: 1})
	ts.Config.Handler = fresh.Handler()
	_ = replicaSrv

	ingest(2)
	if err := rp.SyncOnce(0); err != nil {
		t.Fatal(err)
	}
	assertReplicaConverged(t, primaryCl, replicaCl, "hist", n)
	st := rp.Status()[0]
	if st.FullSyncs != 2 { // bootstrap + post-restart resync
		t.Fatalf("%d full syncs, want 2", st.FullSyncs)
	}
	if st.SyncErrors != 0 {
		t.Fatalf("%d sync errors; the 409 path must not count as a failure", st.SyncErrors)
	}

	// And ordinary delta rounds resume after the resync.
	ingest(3)
	if err := rp.SyncOnce(0); err != nil {
		t.Fatal(err)
	}
	assertReplicaConverged(t, primaryCl, replicaCl, "hist", n)
	if got := rp.Status()[0].FullSyncs; got != 2 {
		t.Fatalf("full syncs grew to %d; steady state should ship deltas", got)
	}
}

// TestReplicatorRecoversFromPrimaryRestart replaces the primary engine (new
// epoch) and checks replicas heal through the epoch-mismatch path: the GET
// itself downgrades to a complete frame, no 409 needed.
func TestReplicatorRecoversFromPrimaryRestart(t *testing.T) {
	const n = 1500
	eng := replTestEngine(t, n, 3)
	primarySrv, _, primaryCl := replServer(t)
	if err := primarySrv.Host("hist", eng); err != nil {
		t.Fatal(err)
	}
	_, _, replicaCl := replServer(t)
	rp, err := NewReplicator("hist", primaryCl, []*Client{replicaCl}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddBatch([]int{5, 9, 700, 1200}, nil); err != nil {
		t.Fatal(err)
	}
	if err := rp.SyncOnce(0); err != nil {
		t.Fatal(err)
	}

	// "Restart" the primary: a fresh engine under the same name, new epoch.
	eng2 := replTestEngine(t, n, 3)
	if err := eng2.AddBatch([]int{42, 43, 44, 900}, nil); err != nil {
		t.Fatal(err)
	}
	if err := primarySrv.Host("hist", eng2); err != nil {
		t.Fatal(err)
	}
	if err := rp.SyncOnce(0); err != nil {
		t.Fatal(err)
	}
	assertReplicaConverged(t, primaryCl, replicaCl, "hist", n)
	st := rp.Status()[0]
	if st.Epoch != eng2.Epoch() {
		t.Fatalf("tracking epoch %d after primary restart, want %d", st.Epoch, eng2.Epoch())
	}
	if st.FullSyncs != 2 {
		t.Fatalf("%d full syncs, want 2 (bootstrap + epoch change)", st.FullSyncs)
	}
}

// TestDeltaGetMemoizedAcrossReplicas pins the fan-out economics: N replicas
// polling at the same coordinates cost ONE delta encode, and a quiet primary
// re-serves the memoized frame until its version vector moves.
func TestDeltaGetMemoizedAcrossReplicas(t *testing.T) {
	const n = 1000
	eng := replTestEngine(t, n, 2)
	primarySrv, _, primaryCl := replServer(t)
	if err := primarySrv.Host("hist", eng); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddBatch([]int{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	_, epoch, versions, err := primaryCl.SnapshotDelta("hist", "0")
	if err != nil {
		t.Fatal(err)
	}
	base := primarySrv.deltaEncodes.Load()
	since := FormatSince(epoch, versions)
	for i := 0; i < 5; i++ { // five replicas at identical coordinates
		if _, _, _, err := primaryCl.SnapshotDelta("hist", since); err != nil {
			t.Fatal(err)
		}
	}
	if got := primarySrv.deltaEncodes.Load() - base; got != 1 {
		t.Fatalf("5 same-coordinate GETs ran %d encodes, want 1", got)
	}
	// Ingest moves the vector: the memo must miss exactly once more.
	if err := eng.AddBatch([]int{7}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, _, err := primaryCl.SnapshotDelta("hist", since); err != nil {
			t.Fatal(err)
		}
	}
	if got := primarySrv.deltaEncodes.Load() - base; got != 2 {
		t.Fatalf("after one vector move, %d encodes total, want 2", got)
	}
}

// TestDeltaEndpointGuardrails pins the HTTP-level contract: malformed since
// values are 400s, non-sharded synopses refuse deltas, partial deltas against
// empty replicas conflict, and durable engines serve deltas but refuse
// partial applies.
func TestDeltaEndpointGuardrails(t *testing.T) {
	const n = 800
	eng := replTestEngine(t, n, 2)
	primarySrv, _, primaryCl := replServer(t)
	if err := primarySrv.Host("hist", eng); err != nil {
		t.Fatal(err)
	}
	if err := primarySrv.Host("static", testHistogram(t, n, 6)); err != nil {
		t.Fatal(err)
	}
	for _, since := range []string{"nope", "1:x,y", ":", "12:"} {
		_, _, _, err := primaryCl.SnapshotDelta("hist", since)
		var ae *APIError
		if err == nil || !errors.As(err, &ae) || ae.StatusCode != 400 {
			t.Fatalf("since=%q: %v, want a 400 APIError", since, err)
		}
	}
	if _, _, _, err := primaryCl.SnapshotDelta("static", "0"); err == nil {
		t.Fatal("a histogram served a delta")
	}
	if _, _, _, err := primaryCl.SnapshotDelta("ghost", "0"); err == nil {
		t.Fatal("a missing name served a delta")
	}

	// Build a genuinely partial delta: a base checkpoint, then updates
	// routed to a single shard, then the delta between the two.
	if err := eng.AddBatch([]int{1, 2, 3, 4}, nil); err != nil {
		t.Fatal(err)
	}
	base, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	full, err := base.AppendDelta(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt := 1
	for eng.ShardOf(pt) != 0 {
		pt++
	}
	if err := eng.Add(pt, 2); err != nil {
		t.Fatal(err)
	}
	next, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	partial, err := next.AppendDelta(nil, base.Versions(nil))
	if err != nil {
		t.Fatal(err)
	}
	if d, err := stream.ParseShardedDelta(partial); err != nil || d.Complete() {
		t.Fatalf("test frame not partial (err %v)", err)
	}

	// Against a server with no base state, the partial frame must 409.
	_, _, emptyCl := replServer(t)
	if err := emptyCl.PushBytes("hist", partial); !IsConflict(err) {
		t.Fatalf("partial delta on an empty replica: %v, want 409", err)
	}
	// The complete base frame succeeds, and the partial then applies on top.
	if err := emptyCl.PushBytes("hist", full); err != nil {
		t.Fatal(err)
	}
	if err := emptyCl.PushBytes("hist", partial); err != nil {
		t.Fatalf("partial delta after full resync: %v", err)
	}
	assertReplicaConverged(t, primaryCl, emptyCl, "hist", n)
	// Re-applying the same partial is now a stale-from conflict, not silent
	// double application.
	if err := emptyCl.PushBytes("hist", partial); !IsConflict(err) {
		t.Fatalf("duplicate partial delta: %v, want 409", err)
	}
}

// TestFleetRouting pins the consistent-hash router: deterministic placement,
// every name lands on a member, and removing one member remaps only the
// names it owned.
func TestFleetRouting(t *testing.T) {
	mk := func(bases ...string) *Fleet {
		cs := make([]*Client, len(bases))
		for i, b := range bases {
			cs[i] = NewClient(b, nil, false)
		}
		f, err := NewFleet(cs)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f3 := mk("http://a:1", "http://b:1", "http://c:1")
	names := make([]string, 200)
	for i := range names {
		names[i] = "synopsis-" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
	}
	owners := make(map[string]string, len(names))
	counts := map[string]int{}
	for _, nm := range names {
		c := f3.ClientFor(nm)
		if c == nil {
			t.Fatalf("no owner for %q", nm)
		}
		if again := f3.ClientFor(nm); again != c {
			t.Fatalf("routing for %q is not deterministic", nm)
		}
		owners[nm] = c.Base
		counts[c.Base]++
	}
	for _, base := range []string{"http://a:1", "http://b:1", "http://c:1"} {
		if counts[base] == 0 {
			t.Fatalf("member %s owns nothing across %d names", base, len(names))
		}
		// Balance: 64 vnodes keep shares near 1/3; a member hoarding well
		// over half the names means the ring hash lost its avalanche (the
		// failure mode of raw FNV-1a on short similar keys).
		if counts[base] > len(names)*6/10 {
			t.Fatalf("member %s owns %d of %d names — ring badly unbalanced", base, counts[base], len(names))
		}
	}
	// Rebuild without c: names owned by a or b must not move.
	f2 := mk("http://a:1", "http://b:1")
	moved := 0
	for _, nm := range names {
		now := f2.ClientFor(nm).Base
		if owners[nm] == "http://c:1" {
			moved++
			continue
		}
		if now != owners[nm] {
			t.Fatalf("%q moved %s -> %s though its owner never left", nm, owners[nm], now)
		}
	}
	if moved == 0 {
		t.Fatal("member c owned nothing; the remap property was not exercised")
	}
	if _, err := NewFleet(nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
}
