// Package serve is the HTTP serving layer: it hosts a registry of named
// synopses — histograms, hierarchies, CDFs, wavelet estimators, selectivity
// estimators, and the streaming intake engines — behind three endpoint
// families:
//
//	GET/POST /v1/{name}/at        point queries (single via ?x=, batch via body)
//	GET/POST /v1/{name}/range     range queries (single via ?a=&b=, batch via body)
//	POST     /v1/{name}/add       ingest batches (streaming engines only)
//	GET      /v1/{name}/snapshot  stream the synopsis as one binary envelope
//	PUT      /v1/{name}/snapshot  replace (or create) the synopsis from an envelope
//	GET      /v1                  list hosted synopses
//
// Batch bodies are JSON or binary, negotiated by Content-Type (see wire.go);
// responses follow the request's codec. Snapshot bodies are the PR 4
// versioned binary envelopes verbatim, so a served synopsis replicates to
// another server — or to a file, and back — with the same bytes the library
// checkpoints.
//
// Concurrency model: every hosted synopsis lives behind an atomic.Pointer.
// A request loads the pointer once and serves entirely from that immutable
// (or internally synchronized) object; a snapshot push decodes and validates
// the complete replacement first and then publishes it with a single atomic
// store. Readers never take a registry lock, in-flight requests keep
// serving the object they loaded, and no request can observe a half-swapped
// synopsis. The streaming engines add their own synchronization (Sharded is
// internally locked per shard; a served Maintainer is wrapped in a mutex),
// and sharded snapshots are captured by stream.Checkpoint, which never
// stalls behind an in-flight merging run.
package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/quantile"
	"repro/internal/stream"
	"repro/internal/synopsis"
	"repro/internal/wavelet"
)

// Config tunes a Server. The zero value is ready to use.
type Config struct {
	// Workers is the fan-out for batched query serving, following the
	// Options.Workers convention: ≤ 0 means all cores, 1 forces the serial
	// path. Per-request fan-out composes with cross-request concurrency, so
	// serving many small batches is usually fastest with Workers = 1.
	Workers int
	// MaxBatch caps the number of queries or updates accepted in one request
	// body. 0 means DefaultMaxBatch.
	MaxBatch int
	// MaxSnapshotBytes caps the size of a pushed snapshot body. 0 means
	// DefaultMaxSnapshotBytes.
	MaxSnapshotBytes int64
}

// DefaultMaxBatch bounds per-request batch sizes when Config.MaxBatch is 0.
const DefaultMaxBatch = 1 << 20

// DefaultMaxSnapshotBytes bounds pushed snapshot bodies when
// Config.MaxSnapshotBytes is 0. Synopses are O(k) numbers; 64 MiB is orders
// of magnitude above any real checkpoint.
const DefaultMaxSnapshotBytes = 64 << 20

// Server is the registry of hosted synopses plus the handler configuration.
// All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	entries sync.Map // string → *entry
	// bufs recycles the request/response scratch of the zero-copy binary
	// serving path (see pool.go and handler.go).
	bufs wirePool
	// snapshotEncodes counts how many GET /snapshot requests actually ran an
	// encoder rather than serving the memoized body — a test hook pinning
	// the memoization contract.
	snapshotEncodes atomic.Int64
	// deltaEncodes is snapshotEncodes' twin for GET /snapshot?since= delta
	// requests: fan-out replication relies on N replicas at the same version
	// vector sharing one encoded frame.
	deltaEncodes atomic.Int64
	// repl is the replicator driving this server's fan-out, if one is
	// attached; /metrics renders per-replica lag and sync families from it.
	repl atomic.Pointer[Replicator]
	// notReady inverts the readiness flag so the zero value starts ready:
	// a server is ready unless whoever is driving recovery says otherwise.
	// GET /readyz answers 503 while not ready; /healthz stays 200 (the
	// process is alive, just not yet serving traffic).
	notReady atomic.Bool
}

// entry is one registry slot. The pointer — not the entry — is what a
// snapshot push swaps, so a name keeps its identity across hot-swaps and
// in-flight requests keep the object they loaded.
type entry struct {
	ptr atomic.Pointer[served]
	// snap memoizes the preserialized GET /snapshot body for immutable
	// synopses. The cache records which published object it was built from,
	// so the same atomic store that publishes a replacement synopsis also
	// invalidates the cache: a reader only trusts a cache whose owner is the
	// pointer it just loaded, and a racing writer stashing a body for the
	// previous object is simply ignored and overwritten by the next reader.
	snap atomic.Pointer[snapCache]
	// stats tallies requests served under this name. The counters belong to
	// the entry, not the published object, so they describe the name across
	// hot-swaps — exactly what a /metrics scraper graphing a dashboard wants.
	stats entryCounters
	// delta memoizes the last encoded GET /snapshot?since= frame, keyed by
	// the published pointer AND the since string, validated against the
	// engine's live version vector at read time (a delta source is mutable,
	// so unlike snap the owner check alone cannot prove freshness).
	delta atomic.Pointer[deltaCache]
	// applyMu serializes PUT delta applies on this name: the fleet-state
	// check and the in-place shard swap must be one atomic step with respect
	// to other appliers (readers stay lock-free as always).
	applyMu sync.Mutex
	// fleet is the replication coordinate this entry's engine embodies: the
	// primary epoch and version vector of the last delta applied to it. Only
	// PUT delta applies maintain it; a primary serving GETs never needs it.
	fleet atomic.Pointer[fleetState]
}

// fleetState is a replica's record of which primary state its engine holds.
type fleetState struct {
	epoch    uint64
	versions []uint64
}

// deltaCache is one memoized delta frame. to is the version vector the frame
// brings a replica to; the cache is live only while the engine still sits at
// exactly that vector.
type deltaCache struct {
	owner *served
	since string
	to    []uint64
	body  []byte
}

// entryCounters are the per-name request tallies /metrics exposes. They
// count requests, not batch elements (batch sizes are the client's business;
// engine-side update totals come from the ingest stats families).
type entryCounters struct {
	points    atomic.Int64
	ranges    atomic.Int64
	ingests   atomic.Int64
	snapshots atomic.Int64
}

// snapCache is one memoized snapshot body, valid only while owner is the
// entry's published object.
type snapCache struct {
	owner *served
	body  []byte
}

// NewServer builds a server with the given configuration (nil for defaults).
func NewServer(cfg *Config) *Server {
	s := &Server{}
	if cfg != nil {
		s.cfg = *cfg
	}
	if s.cfg.MaxBatch <= 0 {
		s.cfg.MaxBatch = DefaultMaxBatch
	}
	if s.cfg.MaxSnapshotBytes <= 0 {
		s.cfg.MaxSnapshotBytes = DefaultMaxSnapshotBytes
	}
	return s
}

// SetReady flips the readiness gate served by GET /readyz. A durable server
// boots not-ready, recovers its engines, hosts them, and only then calls
// SetReady(true) — load balancers hold traffic until replay has finished.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports whether GET /readyz currently answers 200.
func (s *Server) Ready() bool { return !s.notReady.Load() }

// queryParams carries the per-request knobs a served synopsis may need: the
// fan-out for batch kernels, for hierarchies the requested piece budget k,
// and for windowed streaming engines the sliding-window span (?window=, in
// epochs; 0 means every retained epoch) and exponential-decay half-life
// (?halflife=, in epochs; 0 means no decay).
type queryParams struct {
	workers  int
	k        int
	window   int
	halflife float64
}

// windowed reports whether the request asked for a windowed or decayed
// answer — the signal that routes stream adapters through EstimateRangeOver
// and makes every other synopsis kind reject the request instead of silently
// ignoring the parameters.
func (q queryParams) windowed() bool { return q.window > 0 || q.halflife > 0 }

// windowedServed is the optional sliding-window face of a served synopsis:
// only adapters backed by a windowed streaming engine accept ?window= /
// ?halflife= queries.
type windowedServed interface {
	windowedQueries() bool
}

// served is one hosted synopsis behind its serving adapter. Implementations
// must be safe for concurrent use: either the underlying object is immutable
// (histogram, hierarchy, CDF, estimator) or the adapter synchronizes.
type served interface {
	// kind names the synopsis type for listings and errors.
	kind() string
	// pointBatch answers point queries into out (grown only when too small,
	// reused otherwise — the zero-copy path recycles it per request; nil is
	// always valid). Invalid queries return an error (mapped to a 4xx),
	// never a panic.
	pointBatch(xs []int, q queryParams, out []float64) ([]float64, error)
	// rangeBatch answers range-sum queries [as[i], bs[i]] into out, under
	// the same reuse contract as pointBatch.
	rangeBatch(as, bs []int, q queryParams, out []float64) ([]float64, error)
	// snapshot writes the synopsis as one binary envelope.
	snapshot(w io.Writer) error
}

// ingester is the optional intake face of a served synopsis.
type ingester interface {
	ingest(points []int, weights []float64) error
}

// deltaSource is the optional replication face: adapters backed by a sharded
// engine expose it, and GET /snapshot?since= serves version-vector deltas
// from it. Note that exposing deltaSource does NOT make an adapter a delta
// PUT target — in-place applies are restricted to the bare sharded adapter,
// because swapping shard states under a write-ahead-logged engine would leave
// the WAL blind to the change.
type deltaSource interface {
	deltaEngine() *stream.Sharded
}

// Host registers (or atomically replaces) the synopsis served under name.
// Supported values: *core.Histogram, *core.Hierarchy, *quantile.CDF,
// *wavelet.Synopsis, synopsis.Synopsis, *stream.Maintainer, *stream.Sharded,
// *stream.DurableSharded, *stream.DurableMaintainer.
func (s *Server) Host(name string, v any) error {
	if name == "" {
		return fmt.Errorf("serve: empty synopsis name")
	}
	sv, err := adapt(v)
	if err != nil {
		return err
	}
	e, _ := s.entries.LoadOrStore(name, &entry{})
	ent := e.(*entry)
	// The pointer store is the publish AND the snapshot-cache invalidation:
	// a memoized body is only trusted while its owner matches the published
	// pointer. The explicit clears just release the stale bodies to the GC.
	ent.ptr.Store(&sv)
	ent.snap.Store(nil)
	ent.delta.Store(nil)
	return nil
}

// Load decodes one binary envelope from r and hosts the decoded synopsis
// under name — restore-on-boot for servers fed from checkpoint files, and
// the decoding half of a snapshot push.
func (s *Server) Load(name string, r io.Reader) error {
	v, err := decodeAny(r)
	if err != nil {
		return err
	}
	return s.Host(name, v)
}

// lookup returns the synopsis currently served under name.
func (s *Server) lookup(name string) (served, bool) {
	e, ok := s.lookupEntry(name)
	if !ok {
		return nil, false
	}
	p := e.ptr.Load()
	if p == nil {
		return nil, false
	}
	return *p, true
}

// lookupEntry returns the registry slot for name — the handle snapshot
// serving needs to reach both the published pointer and its memoized body.
func (s *Server) lookupEntry(name string) (*entry, bool) {
	e, ok := s.entries.Load(name)
	if !ok {
		return nil, false
	}
	return e.(*entry), true
}

// Names returns the hosted names with their kinds, sorted by name.
func (s *Server) Names() []NameInfo {
	var out []NameInfo
	s.entries.Range(func(key, value any) bool {
		if p := value.(*entry).ptr.Load(); p != nil {
			out = append(out, NameInfo{Name: key.(string), Kind: (*p).kind()})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NameInfo is one row of the registry listing.
type NameInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// adapt wraps a synopsis value in its serving adapter.
func adapt(v any) (served, error) {
	switch obj := v.(type) {
	case *core.Histogram:
		return histServed{h: obj}, nil
	case *core.Hierarchy:
		return &hierServed{hier: obj}, nil
	case *quantile.CDF:
		return cdfServed{c: obj}, nil
	case *wavelet.Synopsis:
		est, err := synopsis.FromWavelet(obj)
		if err != nil {
			return nil, err
		}
		return estServed{est: est, name: "wavelet", enc: func(w io.Writer) error {
			_, err := obj.WriteTo(w)
			return err
		}}, nil
	case *stream.Maintainer:
		return &maintServed{m: obj}, nil
	case *stream.Sharded:
		return shardServed{s: obj}, nil
	case *stream.DurableSharded:
		return durableShardServed{d: obj}, nil
	case *stream.DurableMaintainer:
		return durableMaintServed{d: obj}, nil
	default:
		if est, ok := v.(synopsis.Synopsis); ok {
			return estServed{est: est, name: "estimator", enc: func(w io.Writer) error {
				return synopsis.EncodeEstimator(w, est)
			}}, nil
		}
		return nil, fmt.Errorf("serve: cannot host a %T", v)
	}
}

// decodeAny reads one binary envelope and returns the servable object inside
// — the serving layer's mirror of the top-level tag dispatcher, restricted
// to the types the registry can host.
func decodeAny(r io.Reader) (any, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return nil, err
	}
	var v any
	switch tag {
	case codec.TagHistogram:
		v, err = core.DecodeHistogramPayload(dec)
	case codec.TagHierarchy:
		v, err = core.DecodeHierarchyPayload(dec)
	case codec.TagCDF:
		v, err = quantile.DecodePayload(dec)
	case codec.TagWavelet:
		v, err = wavelet.DecodePayload(dec)
	case codec.TagEstimator:
		v, err = synopsis.DecodeEstimatorPayload(dec)
	case codec.TagMaintainer:
		v, err = stream.DecodeMaintainerPayload(dec)
	case codec.TagSharded:
		v, err = stream.DecodeShardedPayload(dec)
	case codec.TagWindowed:
		v, err = stream.DecodeWindowedPayload(dec)
	default:
		return nil, fmt.Errorf("serve: envelope type tag %d is not servable", tag)
	}
	if err != nil {
		return nil, err
	}
	if err := dec.Close(); err != nil {
		return nil, err
	}
	return v, nil
}

// --- Serving adapters. ---

// histServed serves an immutable histogram: batch queries go straight to the
// indexed AtBatch/RangeSumBatch kernels after validation (the kernels panic
// on invalid input by contract; the serving layer owes clients an error).
type histServed struct {
	h *core.Histogram
}

func (histServed) kind() string { return "histogram" }

func checkPoints(xs []int, n int) error {
	for i, x := range xs {
		if x < 1 || x > n {
			return fmt.Errorf("query %d: point %d out of [1, %d]", i, x, n)
		}
	}
	return nil
}

func checkRangePairs(as, bs []int, n int) error {
	for i := range as {
		if as[i] < 1 || bs[i] > n || as[i] > bs[i] {
			return fmt.Errorf("query %d: range [%d, %d] invalid for domain [1, %d]", i, as[i], bs[i], n)
		}
	}
	return nil
}

func (s histServed) pointBatch(xs []int, q queryParams, out []float64) ([]float64, error) {
	if err := checkPoints(xs, s.h.N()); err != nil {
		return nil, err
	}
	return s.h.AtBatch(xs, out, q.workers), nil
}

func (s histServed) rangeBatch(as, bs []int, q queryParams, out []float64) ([]float64, error) {
	if err := checkRangePairs(as, bs, s.h.N()); err != nil {
		return nil, err
	}
	return s.h.RangeSumBatch(as, bs, out, q.workers), nil
}

func (s histServed) snapshot(w io.Writer) error {
	_, err := s.h.WriteTo(w)
	return err
}

// hierServed serves a multi-scale hierarchy: queries carry the piece budget
// k (?k= on the URL), the ForK(k) histogram is resolved once per LEVEL and
// memoized, and the memoized histogram serves like any other. Keying the
// cache by the selected level — not by the client-supplied k — matters
// twice over: every k mapping to the same level shares one flattened
// histogram (and its lazily built query index), and the cache is bounded by
// NumLevels, so untrusted clients sweeping k values cannot grow server
// memory without limit. The cache is per entry, so a hot-swap starts fresh.
type hierServed struct {
	hier    *core.Hierarchy
	byLevel sync.Map // level index → *core.Histogram
}

func (*hierServed) kind() string { return "hierarchy" }

// levelIndex mirrors ForK's level selection (first level with ≤ 8k pieces,
// else the last) without paying for the flatten.
func (s *hierServed) levelIndex(k int) int {
	levels := s.hier.Levels()
	for li, lv := range levels {
		if len(lv.Partition) <= 8*k {
			return li
		}
	}
	return len(levels) - 1
}

func (s *hierServed) resolve(k int) (*core.Histogram, error) {
	if k < 1 {
		return nil, fmt.Errorf("hierarchy queries need k ≥ 1 (pass ?k=); got %d", k)
	}
	if h, ok := s.byLevel.Load(s.levelIndex(k)); ok {
		return h.(*core.Histogram), nil
	}
	res, err := s.hier.ForK(k)
	if err != nil {
		return nil, err
	}
	// LoadOrStore keeps exactly one resolved histogram per level under
	// racing first queries (ForK is deterministic, and res.Rounds is the
	// level it selected).
	h, _ := s.byLevel.LoadOrStore(res.Rounds, res.Histogram)
	return h.(*core.Histogram), nil
}

func (s *hierServed) pointBatch(xs []int, q queryParams, out []float64) ([]float64, error) {
	h, err := s.resolve(q.k)
	if err != nil {
		return nil, err
	}
	return histServed{h: h}.pointBatch(xs, q, out)
}

func (s *hierServed) rangeBatch(as, bs []int, q queryParams, out []float64) ([]float64, error) {
	h, err := s.resolve(q.k)
	if err != nil {
		return nil, err
	}
	return histServed{h: h}.rangeBatch(as, bs, q, out)
}

func (s *hierServed) snapshot(w io.Writer) error {
	_, err := s.hier.WriteTo(w)
	return err
}

// cdfServed serves a CDF: a point query At(x) is the cumulative mass up to
// x, and a range query [a, b] is the mass in the range, At(b) − At(a−1).
type cdfServed struct {
	c *quantile.CDF
}

func (cdfServed) kind() string { return "cdf" }

// growValues applies the out-reuse contract for the adapters that fill the
// answer vector themselves.
func growValues(out []float64, n int) []float64 {
	if cap(out) < n {
		return make([]float64, n)
	}
	return out[:n]
}

func (s cdfServed) pointBatch(xs []int, _ queryParams, out []float64) ([]float64, error) {
	out = growValues(out, len(xs))
	for i, x := range xs {
		v, err := s.c.At(x)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func (s cdfServed) rangeBatch(as, bs []int, _ queryParams, out []float64) ([]float64, error) {
	out = growValues(out, len(as))
	for i := range as {
		if as[i] < 1 || as[i] > bs[i] {
			return nil, fmt.Errorf("query %d: range [%d, %d] invalid", i, as[i], bs[i])
		}
		hi, err := s.c.At(bs[i])
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		var lo float64
		if as[i] > 1 {
			if lo, err = s.c.At(as[i] - 1); err != nil {
				return nil, fmt.Errorf("query %d: %w", i, err)
			}
		}
		out[i] = hi - lo
	}
	return out, nil
}

func (s cdfServed) snapshot(w io.Writer) error {
	_, err := s.c.WriteTo(w)
	return err
}

// estServed serves a range estimator (V-optimal, equi-width, equi-depth, or
// wavelet): points are width-1 ranges, ranges go through the batch entry
// point with its native fast paths.
type estServed struct {
	est  synopsis.Synopsis
	name string
	enc  func(io.Writer) error
}

func (s estServed) kind() string { return s.name }

func (s estServed) pointBatch(xs []int, q queryParams, out []float64) ([]float64, error) {
	return synopsis.EstimateRangeBatchInto(s.est, xs, xs, out, q.workers)
}

func (s estServed) rangeBatch(as, bs []int, q queryParams, out []float64) ([]float64, error) {
	return synopsis.EstimateRangeBatchInto(s.est, as, bs, out, q.workers)
}

func (s estServed) snapshot(w io.Writer) error { return s.enc(w) }

// maintServed serves a single-goroutine streaming maintainer behind one
// mutex: correct for modest traffic, and the restore target for maintainer
// checkpoints. High-concurrency intake should host a *stream.Sharded.
type maintServed struct {
	mu sync.Mutex
	m  *stream.Maintainer
}

func (*maintServed) kind() string { return "maintainer" }

func (s *maintServed) pointBatch(xs []int, _ queryParams, out []float64) ([]float64, error) {
	return s.rangeBatch(xs, xs, queryParams{}, out)
}

func (s *maintServed) rangeBatch(as, bs []int, q queryParams, out []float64) ([]float64, error) {
	out = growValues(out, len(as))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range as {
		v, err := estimateRange(s.m, as[i], bs[i], q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// rangeEstimator is the query face the four stream adapters share; the
// windowed variant answers over the newest q.window epochs with exponential
// decay at half-life q.halflife.
type rangeEstimator interface {
	EstimateRange(a, b int) (float64, error)
	EstimateRangeOver(a, b, window int, halflife float64) (float64, error)
}

// estimateRange routes one range query to the plain or windowed kernel.
func estimateRange(e rangeEstimator, a, b int, q queryParams) (float64, error) {
	if q.windowed() {
		return e.EstimateRangeOver(a, b, q.window, q.halflife)
	}
	return e.EstimateRange(a, b)
}

func (s *maintServed) windowedQueries() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Windowed()
}

func (s *maintServed) ingest(points []int, weights []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.AddBatch(points, weights)
}

func (s *maintServed) snapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Snapshot(w)
}

// shardServed serves the multi-core intake engine. The engine is internally
// synchronized, so queries, ingest, and snapshots all run concurrently;
// snapshots capture a stream.Checkpoint, which never waits for an in-flight
// background compaction.
type shardServed struct {
	s *stream.Sharded
}

func (shardServed) kind() string { return "sharded" }

func (s shardServed) pointBatch(xs []int, q queryParams, out []float64) ([]float64, error) {
	return s.rangeBatch(xs, xs, q, out)
}

func (s shardServed) rangeBatch(as, bs []int, q queryParams, out []float64) ([]float64, error) {
	out = growValues(out, len(as))
	for i := range as {
		v, err := estimateRange(s.s, as[i], bs[i], q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func (s shardServed) ingest(points []int, weights []float64) error {
	return s.s.AddBatch(points, weights)
}

func (s shardServed) snapshot(w io.Writer) error {
	ckpt, err := s.s.Checkpoint()
	if err != nil {
		return err
	}
	_, err = ckpt.WriteTo(w)
	return err
}

func (s shardServed) ingestStats() stream.IngestStats { return s.s.Stats() }

func (s shardServed) deltaEngine() *stream.Sharded { return s.s }

func (s shardServed) windowedQueries() bool { return s.s.Windowed() }

func (s *maintServed) ingestStats() stream.IngestStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return stream.IngestStats{
		Shards:              1,
		Updates:             s.m.Updates(),
		Compactions:         s.m.Compactions(),
		CompactionDurations: s.m.CompactionDurations(nil),
	}
}

// ingestStatser / durableStatser are the optional metrics faces of a served
// synopsis: /metrics renders the ingest families for any adapter offering
// the former and the WAL/checkpoint families for any offering the latter.
// Immutable synopses offer neither and cost the scrape nothing.
type ingestStatser interface {
	ingestStats() stream.IngestStats
}

type durableStatser interface {
	durableStats() stream.DurableStats
}

// durableShardServed serves a write-ahead-logged sharded engine. Ingest goes
// through the durable wrapper — logged before applied, so every acknowledged
// POST /add survives a crash per the WAL's fsync policy. Queries go straight
// to the wrapped engine (reads need no logging), and GET /snapshot captures
// a checkpoint of the live state without touching the WAL: the bytes are for
// replication elsewhere; local durability is the WAL's job.
type durableShardServed struct {
	d *stream.DurableSharded
}

func (durableShardServed) kind() string { return "durable-sharded" }

func (s durableShardServed) pointBatch(xs []int, q queryParams, out []float64) ([]float64, error) {
	return s.rangeBatch(xs, xs, q, out)
}

func (s durableShardServed) rangeBatch(as, bs []int, q queryParams, out []float64) ([]float64, error) {
	out = growValues(out, len(as))
	for i := range as {
		v, err := estimateRange(s.d, as[i], bs[i], q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func (s durableShardServed) ingest(points []int, weights []float64) error {
	return s.d.AddBatch(points, weights)
}

func (s durableShardServed) snapshot(w io.Writer) error { return s.d.WriteSnapshot(w) }

func (s durableShardServed) durableStats() stream.DurableStats { return s.d.Stats() }

func (s durableShardServed) deltaEngine() *stream.Sharded { return s.d.Engine() }

func (s durableShardServed) windowedQueries() bool { return s.d.Windowed() }

// durableMaintServed serves a write-ahead-logged maintainer. The durable
// wrapper synchronizes ingest, queries, and snapshots internally, so unlike
// the bare maintServed no adapter mutex is needed.
type durableMaintServed struct {
	d *stream.DurableMaintainer
}

func (durableMaintServed) kind() string { return "durable-maintainer" }

func (s durableMaintServed) pointBatch(xs []int, q queryParams, out []float64) ([]float64, error) {
	return s.rangeBatch(xs, xs, q, out)
}

func (s durableMaintServed) rangeBatch(as, bs []int, q queryParams, out []float64) ([]float64, error) {
	out = growValues(out, len(as))
	for i := range as {
		v, err := estimateRange(s.d, as[i], bs[i], q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func (s durableMaintServed) ingest(points []int, weights []float64) error {
	return s.d.AddBatch(points, weights)
}

func (s durableMaintServed) snapshot(w io.Writer) error { return s.d.WriteSnapshot(w) }

func (s durableMaintServed) durableStats() stream.DurableStats { return s.d.Stats() }

func (s durableMaintServed) windowedQueries() bool { return s.d.Windowed() }
