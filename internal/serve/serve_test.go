package serve

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/quantile"
	"repro/internal/sparse"
	"repro/internal/stream"
	"repro/internal/synopsis"
	"repro/internal/wavelet"
)

// testData is a deterministic positive vector (an LCG, platform-stable).
func testData(n int) []float64 {
	q := make([]float64, n)
	state := uint64(7321)
	for i := range q {
		state = state*6364136223846793005 + 1442695040888963407
		q[i] = 1 + float64(state>>40)/float64(1<<24)
	}
	return q
}

func testHistogram(t testing.TB, n, k int) *core.Histogram {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Workers = 1
	res, err := core.ConstructHistogram(sparse.FromDense(testData(n)), k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Histogram
}

// queries builds a deterministic query workload over [1, n].
func queries(n, count int) (xs, as, bs []int) {
	state := uint64(99)
	xs = make([]int, count)
	as = make([]int, count)
	bs = make([]int, count)
	for i := 0; i < count; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		xs[i] = 1 + int(state>>33)%n
		a := 1 + int(state>>13)%n
		as[i] = a
		bs[i] = a + int(state>>3)%(n-a+1)
	}
	return xs, as, bs
}

func bitsEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v, want %v (bit-exact)", label, i, got[i], want[i])
		}
	}
}

// startServer hosts the given synopses and returns clients in both codecs.
func startServer(t testing.TB, host map[string]any) (*httptest.Server, *Client, *Client) {
	t.Helper()
	srv := NewServer(&Config{Workers: 1})
	for name, v := range host {
		if err := srv.Host(name, v); err != nil {
			t.Fatalf("Host(%q): %v", name, err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL, ts.Client(), false), NewClient(ts.URL, ts.Client(), true)
}

// TestServeEveryKindBitIdentical hosts one synopsis of every servable kind
// and checks that wire answers — JSON and binary bodies, batch and single
// GET forms — are bit-identical to calling the library directly.
func TestServeEveryKindBitIdentical(t *testing.T) {
	const n = 4000
	h := testHistogram(t, n, 12)
	hier := core.ConstructHierarchicalHistogramWorkers(sparse.FromDense(testData(n)), 1)
	cdf, err := quantile.New(h)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wavelet.NewSynopsis(testData(n), 32)
	if err != nil {
		t.Fatal(err)
	}
	wsEst, err := synopsis.FromWavelet(ws)
	if err != nil {
		t.Fatal(err)
	}
	est, err := synopsis.VOptimal(testData(n), 10)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Workers = 1
	maint, err := stream.NewMaintainer(n, 6, 128, opts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := stream.NewSharded(n, 6, 3, 128, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		p := 1 + (i*37)%n
		if err := maint.Add(p, 1); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Add(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce the sharded engine: a background compaction installing between
	// the expected-value computation and the wire query would change the
	// floating-point summation order (same mass, different bits).
	if _, err := sharded.Summary(); err != nil {
		t.Fatal(err)
	}

	_, jsonClient, binClient := startServer(t, map[string]any{
		"hist": h, "hier": hier, "cdf": cdf, "wave": ws, "est": est,
		"maint": maint, "shard": sharded,
	})

	xs, as, bs := queries(n, 64)
	const hierK = 3
	hierHist, err := hier.ForK(hierK)
	if err != nil {
		t.Fatal(err)
	}

	wantPoints := map[string][]float64{
		"hist": h.AtBatch(xs, nil, 1),
		"hier": hierHist.Histogram.AtBatch(xs, nil, 1),
	}
	wantPoints["cdf"] = make([]float64, len(xs))
	for i, x := range xs {
		v, err := cdf.At(x)
		if err != nil {
			t.Fatal(err)
		}
		wantPoints["cdf"][i] = v
	}
	if wantPoints["wave"], err = synopsis.EstimateRangeBatch(wsEst, xs, xs, 1); err != nil {
		t.Fatal(err)
	}
	if wantPoints["est"], err = synopsis.EstimateRangeBatch(est, xs, xs, 1); err != nil {
		t.Fatal(err)
	}
	// The streaming engines are mutable; the serve adapters answer exactly
	// what EstimateRange answers at this moment (no ingestion runs during
	// this test).
	estRange := func(er func(int, int) (float64, error), as, bs []int) []float64 {
		out := make([]float64, len(as))
		for i := range as {
			v, err := er(as[i], bs[i])
			if err != nil {
				t.Fatal(err)
			}
			out[i] = v
		}
		return out
	}
	wantPoints["maint"] = estRange(maint.EstimateRange, xs, xs)
	wantPoints["shard"] = estRange(sharded.EstimateRange, xs, xs)

	wantRanges := map[string][]float64{
		"hist":  h.RangeSumBatch(as, bs, nil, 1),
		"hier":  hierHist.Histogram.RangeSumBatch(as, bs, nil, 1),
		"maint": estRange(maint.EstimateRange, as, bs),
		"shard": estRange(sharded.EstimateRange, as, bs),
	}
	if wantRanges["wave"], err = synopsis.EstimateRangeBatch(wsEst, as, bs, 1); err != nil {
		t.Fatal(err)
	}
	if wantRanges["est"], err = synopsis.EstimateRangeBatch(est, as, bs, 1); err != nil {
		t.Fatal(err)
	}
	wantRanges["cdf"] = make([]float64, len(as))
	for i := range as {
		hi, err := cdf.At(bs[i])
		if err != nil {
			t.Fatal(err)
		}
		var lo float64
		if as[i] > 1 {
			if lo, err = cdf.At(as[i] - 1); err != nil {
				t.Fatal(err)
			}
		}
		wantRanges["cdf"][i] = hi - lo
	}

	for name, want := range wantPoints {
		for label, c := range map[string]*Client{"json": jsonClient, "binary": binClient} {
			got, err := c.AtForK(name, hierK, xs)
			if err != nil {
				t.Fatalf("%s/%s At: %v", name, label, err)
			}
			bitsEqual(t, name+"/"+label+" at", got, want)
		}
		// Single GET form must agree with the batch form.
		v, err := jsonClient.Point(name+"?", xs[0])
		if err == nil {
			t.Fatalf("%s: query with bad name suffix should 404, got %v", name, v)
		}
	}
	for name, want := range wantRanges {
		for label, c := range map[string]*Client{"json": jsonClient, "binary": binClient} {
			got, err := c.RangesForK(name, hierK, as, bs)
			if err != nil {
				t.Fatalf("%s/%s Ranges: %v", name, label, err)
			}
			bitsEqual(t, name+"/"+label+" range", got, want)
		}
	}

	// Single-query GET forms (hierarchy needs k, exercised via the client URL).
	for _, name := range []string{"hist", "est", "maint", "shard"} {
		got, err := jsonClient.Point(name, xs[3])
		if err != nil {
			t.Fatalf("%s Point: %v", name, err)
		}
		if math.Float64bits(got) != math.Float64bits(wantPoints[name][3]) {
			t.Fatalf("%s Point = %v, want %v", name, got, wantPoints[name][3])
		}
		got, err = jsonClient.Range(name, as[5], bs[5])
		if err != nil {
			t.Fatalf("%s Range: %v", name, err)
		}
		if math.Float64bits(got) != math.Float64bits(wantRanges[name][5]) {
			t.Fatalf("%s Range = %v, want %v", name, got, wantRanges[name][5])
		}
	}

	// Registry listing.
	infos, err := jsonClient.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 7 {
		t.Fatalf("listing has %d entries, want 7: %v", len(infos), infos)
	}
	kinds := map[string]string{}
	for _, in := range infos {
		kinds[in.Name] = in.Kind
	}
	for name, want := range map[string]string{
		"hist": "histogram", "hier": "hierarchy", "cdf": "cdf",
		"wave": "wavelet", "est": "estimator", "maint": "maintainer", "shard": "sharded",
	} {
		if kinds[name] != want {
			t.Fatalf("kind[%q] = %q, want %q", name, kinds[name], want)
		}
	}
}

// TestServeSnapshotRoundTrip snapshots every hosted kind over the wire and
// checks the bytes decode with the library's strict decoders.
func TestServeSnapshotRoundTrip(t *testing.T) {
	const n = 1200
	h := testHistogram(t, n, 8)
	opts := core.DefaultOptions()
	opts.Workers = 1
	sharded, err := stream.NewSharded(n, 4, 2, 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := sharded.Add(1+(i*11)%n, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce so the source's answers stay bit-stable between the snapshot
	// and the comparison below.
	if _, err := sharded.Summary(); err != nil {
		t.Fatal(err)
	}
	_, c, _ := startServer(t, map[string]any{"hist": h, "shard": sharded})

	var buf bytes.Buffer
	if err := c.Snapshot("hist", &buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.DecodeHistogram(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("wire histogram snapshot does not decode: %v", err)
	}
	_, as, bs := queries(n, 16)
	bitsEqual(t, "snapshot", back.RangeSumBatch(as, bs, nil, 1), h.RangeSumBatch(as, bs, nil, 1))

	buf.Reset()
	if err := c.Snapshot("shard", &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := stream.RestoreSharded(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("wire sharded snapshot does not decode: %v", err)
	}
	for i := range as {
		want, err1 := sharded.EstimateRange(as[i], bs[i])
		got, err2 := restored.EstimateRange(as[i], bs[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("restored EstimateRange(%d, %d) = %v, want %v", as[i], bs[i], got, want)
		}
	}
}

// TestServeHotSwap pushes a replacement snapshot and checks queries cut over
// atomically, including a type-changing swap.
func TestServeHotSwap(t *testing.T) {
	const n = 900
	h1 := testHistogram(t, n, 4)
	h2 := testHistogram(t, n, 40)
	_, c, _ := startServer(t, map[string]any{"col": h1})

	got, err := c.Range("col", 10, n-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(h1.RangeSum(10, n-10)) {
		t.Fatal("pre-swap answer wrong")
	}

	var buf bytes.Buffer
	if _, err := h2.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Push("col", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err = c.Range("col", 10, n-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(h2.RangeSum(10, n-10)) {
		t.Fatal("post-swap answer is not the new histogram's")
	}

	// Swap in a different kind entirely: push a maintainer checkpoint, then
	// push to a brand-new name (creation via PUT).
	opts := core.DefaultOptions()
	opts.Workers = 1
	m, err := stream.NewMaintainer(n, 3, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := m.Add(1+i%n, 2); err != nil {
			t.Fatal(err)
		}
	}
	buf.Reset()
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Push("col", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	want, err := m.EstimateRange(1, n)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Range("col", 1, n); err != nil || math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("type-changing swap: got %v (%v), want %v", got, err, want)
	}
	if err := c.Push("fresh", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("PUT to a new name should create it: %v", err)
	}
	infos, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("listing: %v", infos)
	}
}

// TestServeIngest feeds updates over the wire (both codecs) and checks the
// served mass against a library-side replica fed identically.
func TestServeIngest(t *testing.T) {
	const n = 600
	opts := core.DefaultOptions()
	opts.Workers = 1
	mk := func() *stream.Sharded {
		s, err := stream.NewSharded(n, 4, 2, 4096, opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	servedEngine, replica := mk(), mk()
	_, jsonClient, binClient := startServer(t, map[string]any{"s": servedEngine})

	points := make([]int, 300)
	weights := make([]float64, 300)
	for i := range points {
		points[i] = 1 + (i*13)%n
		weights[i] = 1 + float64(i%5)
	}
	if err := jsonClient.Add("s", points, weights); err != nil {
		t.Fatal(err)
	}
	if err := binClient.Add("s", points, nil); err != nil {
		t.Fatal(err)
	}
	if err := replica.AddBatch(points, weights); err != nil {
		t.Fatal(err)
	}
	if err := replica.AddBatch(points, nil); err != nil {
		t.Fatal(err)
	}
	_, as, bs := queries(n, 24)
	for i := range as {
		want, err1 := replica.EstimateRange(as[i], bs[i])
		got, err2 := jsonClient.Range("s", as[i], bs[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("EstimateRange(%d, %d) = %v over the wire, %v in-process", as[i], bs[i], got, want)
		}
	}
}

// TestServeErrors pins the HTTP error mapping: unknown names 404, malformed
// and oversized bodies 4xx, unsupported media types 415, ingest on an
// immutable synopsis 400 — and never a 5xx or a panic.
func TestServeErrors(t *testing.T) {
	const n = 500
	h := testHistogram(t, n, 6)
	hier := core.ConstructHierarchicalHistogramWorkers(sparse.FromDense(testData(n)), 1)
	ts, c, _ := startServer(t, map[string]any{"hist": h, "hier": hier})

	post := func(path, ctype, body string) int {
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ctype)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	cases := []struct {
		label string
		got   int
		want  int
	}{
		{"unknown name", post("/v1/nope/at", ContentJSON, `{"points":[1]}`), http.StatusNotFound},
		{"bad json", post("/v1/hist/at", ContentJSON, `{"points":[1`), http.StatusBadRequest},
		{"unknown field", post("/v1/hist/at", ContentJSON, `{"pts":[1]}`), http.StatusBadRequest},
		{"bad media type", post("/v1/hist/at", "text/csv", "1,2"), http.StatusUnsupportedMediaType},
		{"out-of-range point", post("/v1/hist/at", ContentJSON, `{"points":[0]}`), http.StatusBadRequest},
		{"shape mismatch", post("/v1/hist/range", ContentJSON, `{"as":[1],"bs":[2,3]}`), http.StatusBadRequest},
		{"ingest on histogram", post("/v1/hist/add", ContentJSON, `{"points":[1]}`), http.StatusBadRequest},
		{"hierarchy without k", post("/v1/hier/at", ContentJSON, `{"points":[1]}`), http.StatusBadRequest},
		{"binary garbage", post("/v1/hist/at", ContentBatch, "HSYNgarbage"), http.StatusBadRequest},
		{"truncated binary", post("/v1/hist/at", ContentBatch, "HS"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.label, tc.got, tc.want)
		}
	}

	if _, err := c.Point("hist", 0); err == nil {
		t.Error("out-of-range single query should error")
	}
	if _, err := c.Range("hist", 9, 3); err == nil {
		t.Error("inverted range should error")
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/hist/at?x=notanint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad x param: status %d", resp.StatusCode)
	}

	// A pushed snapshot that fails validation must not disturb the entry.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/hist/snapshot", strings.NewReader("HSYN junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk snapshot push: status %d", resp.StatusCode)
	}
	if got, err := c.Point("hist", 1); err != nil || math.Float64bits(got) != math.Float64bits(h.At(1)) {
		t.Errorf("entry disturbed by failed push: %v, %v", got, err)
	}

	// Batch cap: a server with a tiny MaxBatch rejects oversized bodies.
	small := NewServer(&Config{Workers: 1, MaxBatch: 4})
	if err := small.Host("h", h); err != nil {
		t.Fatal(err)
	}
	tsSmall := httptest.NewServer(small.Handler())
	defer tsSmall.Close()
	cSmall := NewClient(tsSmall.URL, tsSmall.Client(), false)
	if _, err := cSmall.At("h", []int{1, 2, 3, 4, 5}); err == nil {
		t.Error("batch above MaxBatch should be rejected")
	}
	cSmallBin := NewClient(tsSmall.URL, tsSmall.Client(), true)
	if _, err := cSmallBin.At("h", []int{1, 2, 3, 4, 5}); err == nil {
		t.Error("binary batch above MaxBatch should be rejected")
	}
	if _, err := cSmall.At("h", []int{1, 2, 3}); err != nil {
		t.Errorf("batch under MaxBatch rejected: %v", err)
	}
	// A body larger than the byte cap must come back 413, not 400: "shrink
	// your batch" is a different client signal than "malformed request".
	huge := bytes.Repeat([]byte(" "), int(64*4+4096)+100)
	copy(huge, `{"points":[1]`)
	req, err = http.NewRequest(http.MethodPost, tsSmall.URL+"/v1/h/at", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentJSON)
	resp, err = tsSmall.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}
