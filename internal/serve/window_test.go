package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/stream"
)

// feedWindowed drives a windowed engine through sealed epochs plus a live
// tail, deterministically (no background-compaction ambiguity for the
// maintainer; the sharded caller quiesces itself).
func feedWindowed(t *testing.T, add func(int, float64) error, advance func() error, n, epochs, perEpoch, tail int) {
	t.Helper()
	state := uint64(4242)
	next := func() (int, float64) {
		state = state*6364136223846793005 + 1442695040888963407
		return 1 + int(state>>33)%n, 1 + float64(state>>52)/16
	}
	for e := 0; e < epochs; e++ {
		for i := 0; i < perEpoch; i++ {
			p, w := next()
			if err := add(p, w); err != nil {
				t.Fatal(err)
			}
		}
		if err := advance(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < tail; i++ {
		p, w := next()
		if err := add(p, w); err != nil {
			t.Fatal(err)
		}
	}
}

// windowedURL renders a /range query URL with the windowed knobs.
func windowedURL(base, name string, a, b, window int, halflife float64) string {
	u := fmt.Sprintf("%s/v1/%s/range?a=%d&b=%d", base, name, a, b)
	if window > 0 {
		u += fmt.Sprintf("&window=%d", window)
	}
	if halflife > 0 {
		u += fmt.Sprintf("&halflife=%g", halflife)
	}
	return u
}

// TestServeWindowedQueries pins ?window= / ?halflife= end-to-end on both
// engines and both codecs: every wire answer must be bit-identical to the
// library's EstimateRangeOver at the same parameters.
func TestServeWindowedQueries(t *testing.T) {
	const n, k, W, tail = 3000, 6, 4, 150
	opts := core.DefaultOptions()
	opts.Workers = 1
	maint, err := stream.NewWindowedMaintainer(n, k, W, 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := stream.NewWindowedSharded(n, k, W, 3, 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	feedWindowed(t, maint.Add, maint.Advance, n, W+1, 400, tail)
	feedWindowed(t, sharded.Add, sharded.Advance, n, W+1, 400, tail)
	// Quiesce the sharded engine so its answers stay bit-stable between the
	// expected-value computation and the wire queries.
	if _, err := sharded.SummaryOver(0, 0); err != nil {
		t.Fatal(err)
	}

	ts, _, _ := startServer(t, map[string]any{"wm": maint, "ws": sharded})
	_, as, bs := queries(n, 24)

	over := map[string]func(a, b, w int, hl float64) (float64, error){
		"wm": maint.EstimateRangeOver,
		"ws": sharded.EstimateRangeOver,
	}
	type knob struct {
		window   int
		halflife float64
	}
	knobs := []knob{{1, 0}, {2, 0}, {W, 0}, {0, 1.5}, {2, 0.75}, {W, 2.5}}
	for name, want := range over {
		for _, kn := range knobs {
			// Single GET form.
			resp, err := ts.Client().Get(windowedURL(ts.URL, name, as[0], bs[0], kn.window, kn.halflife))
			if err != nil {
				t.Fatal(err)
			}
			var single struct {
				Value float64 `json:"value"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&single); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s GET window=%d halflife=%g: status %d", name, kn.window, kn.halflife, resp.StatusCode)
			}
			wv, err := want(as[0], bs[0], kn.window, kn.halflife)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, fmt.Sprintf("%s single w=%d hl=%g", name, kn.window, kn.halflife), []float64{single.Value}, []float64{wv})

			wantVals := make([]float64, len(as))
			for i := range as {
				if wantVals[i], err = want(as[i], bs[i], kn.window, kn.halflife); err != nil {
					t.Fatal(err)
				}
			}
			batchURL := fmt.Sprintf("%s/v1/%s/range?", ts.URL, name)
			if kn.window > 0 {
				batchURL += fmt.Sprintf("window=%d&", kn.window)
			}
			if kn.halflife > 0 {
				batchURL += fmt.Sprintf("halflife=%g", kn.halflife)
			}

			// JSON batch.
			body, err := json.Marshal(rangesJSON{As: as, Bs: bs})
			if err != nil {
				t.Fatal(err)
			}
			resp, err = ts.Client().Post(batchURL, ContentJSON, bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var got valuesJSON
			err = json.NewDecoder(resp.Body).Decode(&got)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("%s JSON batch w=%d hl=%g: status %d, %v", name, kn.window, kn.halflife, resp.StatusCode, err)
			}
			bitsEqual(t, fmt.Sprintf("%s json w=%d hl=%g", name, kn.window, kn.halflife), got.Values, wantVals)

			// Binary batch.
			var frame bytes.Buffer
			if err := EncodeRangesBody(&frame, as, bs); err != nil {
				t.Fatal(err)
			}
			resp, err = ts.Client().Post(batchURL, ContentBatch, &frame)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("%s binary batch w=%d hl=%g: status %d, %v", name, kn.window, kn.halflife, resp.StatusCode, err)
			}
			gotBin, err := DecodeValuesBody(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, fmt.Sprintf("%s binary w=%d hl=%g", name, kn.window, kn.halflife), gotBin, wantVals)
		}
	}

	// The windowed snapshot round-trips over the wire: GET serves a
	// TagWindowed envelope, and PUT on a fresh server restores a windowed
	// engine that keeps answering windowed queries.
	for _, name := range []string{"wm", "ws"} {
		blob := getSnapshot(t, ts, name)
		if len(blob) < 6 || blob[5] != codec.TagWindowed {
			t.Fatalf("%s snapshot tag = %d, want TagWindowed", name, blob[5])
		}
		srv2 := NewServer(&Config{Workers: 1})
		ts2 := httptest.NewServer(srv2.Handler())
		req, err := http.NewRequest(http.MethodPut, ts2.URL+"/v1/"+name+"/snapshot", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts2.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT windowed %s snapshot: status %d", name, resp.StatusCode)
		}
		wv, err := over[name](as[1], bs[1], 2, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		resp, err = ts2.Client().Get(windowedURL(ts2.URL, name, as[1], bs[1], 2, 1.5))
		if err != nil {
			t.Fatal(err)
		}
		var single struct {
			Value float64 `json:"value"`
		}
		err = json.NewDecoder(resp.Body).Decode(&single)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("restored %s windowed query: status %d, %v", name, resp.StatusCode, err)
		}
		bitsEqual(t, "restored "+name, []float64{single.Value}, []float64{wv})
		ts2.Close()
	}
}

// TestServeWindowedParamValidation pins the 4xx contract for the windowed
// knobs: malformed values, windows beyond the retained span, and windowed
// queries against synopses that cannot answer them are all client errors.
func TestServeWindowedParamValidation(t *testing.T) {
	const n = 500
	opts := core.DefaultOptions()
	opts.Workers = 1
	wm, err := stream.NewWindowedMaintainer(n, 4, 3, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := stream.NewMaintainer(n, 4, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts, _, _ := startServer(t, map[string]any{
		"wm": wm, "plain": plain, "hist": testHistogram(t, n, 8),
	})

	cases := []struct {
		name  string
		query string
	}{
		{"wm", "window=abc"},
		{"wm", "window=0"},
		{"wm", "window=-2"},
		{"wm", "window=9"}, // beyond the 3-epoch span
		{"wm", "halflife=abc"},
		{"wm", "halflife=0"},
		{"wm", "halflife=-1"},
		{"wm", "halflife=Inf"},
		{"wm", "halflife=NaN"},
		{"plain", "window=2"},   // plain engine: no ring to query
		{"hist", "window=2"},    // immutable synopsis: no epochs at all
		{"hist", "halflife=1.5"},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/%s/range?a=1&b=10&%s", ts.URL, tc.name, tc.query))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s ?%s: status %d, want 400", tc.name, tc.query, resp.StatusCode)
		}
	}

	// Valid windowed queries on the windowed engine still answer.
	resp, err := ts.Client().Get(ts.URL + "/v1/wm/range?a=1&b=10&window=2&halflife=1.5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid windowed query: status %d", resp.StatusCode)
	}
}

// TestAnswerBinaryWindowedZeroAlloc extends the steady-state zero-allocation
// pin to the windowed kernel: a binary range batch against a windowed sharded
// engine with both knobs set must not allocate after warm-up.
func TestAnswerBinaryWindowedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector makes sync.Pool drop items at random")
	}
	const n = 20000
	opts := core.DefaultOptions()
	opts.Workers = 1
	eng, err := stream.NewWindowedSharded(n, 8, 4, 2, 128, opts)
	if err != nil {
		t.Fatal(err)
	}
	feedWindowed(t, eng.Add, eng.Advance, n, 5, 600, 90)
	if _, err := eng.SummaryOver(0, 0); err != nil {
		t.Fatal(err)
	}
	s := NewServer(&Config{Workers: 1})
	if err := s.Host("w", eng); err != nil {
		t.Fatal(err)
	}
	sv, _ := s.lookup("w")
	q := queryParams{workers: 1, window: 3, halflife: 1.5}
	_, as, bs := queries(n, 256)
	rangeReq := encodeBody(t, func(w io.Writer) error { return EncodeRangesBody(w, as, bs) })

	// Warm-up: grows the pooled buffers and builds every slot histogram's
	// lazily constructed query index.
	rd := bytes.NewReader(rangeReq)
	wb := s.bufs.get()
	if _, err := s.answerBinary(sv, q, true, rd, wb); err != nil {
		t.Fatal(err)
	}
	s.bufs.put(wb)

	if allocs := testing.AllocsPerRun(200, func() {
		wb := s.bufs.get()
		rd.Reset(rangeReq)
		if _, err := s.answerBinary(sv, q, true, rd, wb); err != nil {
			t.Fatal(err)
		}
		s.bufs.put(wb)
	}); allocs != 0 {
		t.Fatalf("windowed binary range path allocates %v/op at steady state, want 0", allocs)
	}
}

// TestSnapshotDeltaMalformedSince pins GET /snapshot?since= against abuse:
// syntactically malformed vectors are 400s, and anything parsable that does
// not match the engine's topology or epoch downgrades to the complete frame —
// never a 5xx, never a panic.
func TestSnapshotDeltaMalformedSince(t *testing.T) {
	const n = 800
	opts := core.DefaultOptions()
	opts.Workers = 1
	eng, err := stream.NewSharded(n, 4, 3, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := eng.Add(1+(i*13)%n, 1); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(&Config{Workers: 1})
	if err := srv.Host("s", eng); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	get := func(since string) (int, []byte) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/v1/s/snapshot?since=" + since)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Syntactically malformed: 400, with a JSON error body.
	for _, since := range []string{"abc", "5", "1:", "1:x", "1:3,", ":1,2,3", "1:1,2,3x"} {
		status, body := get(since)
		if status != http.StatusBadRequest {
			t.Errorf("since=%q: status %d, want 400 (body %q)", since, status, body)
			continue
		}
		var e errorJSON
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("since=%q: non-JSON error body %q", since, body)
		}
	}

	// Parsable but foreign coordinates: complete-frame downgrade, 200.
	wrong := []string{
		"0",                 // explicit full sync
		"1:1,2",             // wrong shard count (2 of 3)
		"1:1,2,3,4,5",       // wrong shard count (5 of 3)
		"999999:1,2,3",      // unknown epoch
		"18446744073709551615:0,0,0", // max uint64 epoch
	}
	for _, since := range wrong {
		status, body := get(since)
		if status != http.StatusOK {
			t.Errorf("since=%q: status %d, want 200 complete-frame downgrade (body %q)", since, status, body)
			continue
		}
		d, err := stream.ParseShardedDelta(body)
		if err != nil {
			t.Errorf("since=%q: undecodable delta frame: %v", since, err)
			continue
		}
		if !d.Complete() {
			t.Errorf("since=%q: partial frame, want complete downgrade", since)
		}
	}
}
