package serve

import (
	"fmt"
	"io"

	"repro/internal/codec"
)

// Wire formats of the serving layer.
//
// Every endpoint speaks two body formats, negotiated by Content-Type:
//
//   - ContentJSON: the obvious JSON shapes ({"points": [...]},
//     {"as": [...], "bs": [...]}, {"values": [...]}). Go's JSON encoder
//     renders float64 with the shortest round-tripping representation, so
//     even JSON responses parse back bit-identically.
//   - ContentBatch: a binary frame on the same envelope machinery as the
//     synopsis codec (magic "HSYN", format version, type tag, CRC-32C
//     footer) with tags from the 0xF0 range reserved in internal/codec.
//     Integers are varints; float values are the codec's XOR-packed raw
//     IEEE-754 bits, so responses are bit-identical by construction and a
//     truncated or corrupted body is rejected by the checksum before any
//     result is trusted.
//
// Snapshot bodies (ContentSnapshot) are not defined here at all: they are
// the PR 4 synopsis envelopes verbatim, streamed by the handler and decoded
// by the same strict decoders the library uses.

// Content types spoken by the serving layer.
const (
	// ContentJSON marks JSON request and response bodies.
	ContentJSON = "application/json"
	// ContentBatch marks binary batch request and response bodies.
	ContentBatch = "application/x-hsyn-batch"
	// ContentSnapshot marks a synopsis envelope (the PR 4 binary codec).
	ContentSnapshot = "application/x-hsyn"
)

// Request/response body tags, from the 0xF0 range internal/codec reserves
// for the serving layer. Part of the wire format: never renumber.
const (
	tagPointsBody byte = 0xF0 // point-query batch: count, points as varints
	tagRangesBody byte = 0xF1 // range-query batch: count, (a, b) varint pairs
	tagAddBody    byte = 0xF2 // ingest batch: points + optional packed weights
	tagValuesBody byte = 0xF3 // response: packed float64 values
)

// EncodePointsBody frames a point-query batch. Points are written as signed
// varints with no validation: validation is the server's job, and a client
// must be able to send an out-of-range point and get a clean 4xx back.
func EncodePointsBody(w io.Writer, xs []int) error {
	enc := codec.NewWriter(w, tagPointsBody)
	enc.Int(len(xs))
	for _, x := range xs {
		enc.Varint(int64(x))
	}
	return enc.Close()
}

// DecodePointsBody reads a point-query batch, enforcing maxBatch before any
// allocation is sized by untrusted input.
func DecodePointsBody(r io.Reader, maxBatch int) ([]int, error) {
	dec, n, err := bodyHeader(r, tagPointsBody, maxBatch)
	if err != nil {
		return nil, err
	}
	xs := make([]int, n)
	for i := range xs {
		v, err := dec.Varint()
		if err != nil {
			return nil, err
		}
		xs[i] = int(v)
	}
	if err := dec.Close(); err != nil {
		return nil, err
	}
	return xs, nil
}

// EncodeRangesBody frames a range-query batch as (a, b) varint pairs.
func EncodeRangesBody(w io.Writer, as, bs []int) error {
	if len(as) != len(bs) {
		return fmt.Errorf("serve: %d starts for %d ends", len(as), len(bs))
	}
	enc := codec.NewWriter(w, tagRangesBody)
	enc.Int(len(as))
	for i := range as {
		enc.Varint(int64(as[i]))
		enc.Varint(int64(bs[i]))
	}
	return enc.Close()
}

// DecodeRangesBody reads a range-query batch.
func DecodeRangesBody(r io.Reader, maxBatch int) (as, bs []int, err error) {
	dec, n, err := bodyHeader(r, tagRangesBody, maxBatch)
	if err != nil {
		return nil, nil, err
	}
	as = make([]int, n)
	bs = make([]int, n)
	for i := range as {
		a, err := dec.Varint()
		if err != nil {
			return nil, nil, err
		}
		b, err := dec.Varint()
		if err != nil {
			return nil, nil, err
		}
		as[i], bs[i] = int(a), int(b)
	}
	if err := dec.Close(); err != nil {
		return nil, nil, err
	}
	return as, bs, nil
}

// EncodeAddBody frames an ingest batch: points plus optional per-point
// weights (nil means unit weight, encoded as an absence flag rather than a
// materialized slice of ones).
func EncodeAddBody(w io.Writer, points []int, weights []float64) error {
	if weights != nil && len(weights) != len(points) {
		return fmt.Errorf("serve: %d weights for %d points", len(weights), len(points))
	}
	enc := codec.NewWriter(w, tagAddBody)
	enc.Int(len(points))
	for _, p := range points {
		enc.Varint(int64(p))
	}
	if weights == nil {
		enc.Byte(0)
	} else {
		enc.Byte(1)
		enc.PackedFloat64s(weights)
	}
	return enc.Close()
}

// DecodeAddBody reads an ingest batch. Weights, when present, are decoded by
// the codec's packed-float reader, which rejects NaN and ±Inf — the binary
// body gets the same strictness JSON gets from its grammar.
func DecodeAddBody(r io.Reader, maxBatch int) (points []int, weights []float64, err error) {
	dec, n, err := bodyHeader(r, tagAddBody, maxBatch)
	if err != nil {
		return nil, nil, err
	}
	points = make([]int, n)
	for i := range points {
		v, err := dec.Varint()
		if err != nil {
			return nil, nil, err
		}
		points[i] = int(v)
	}
	flag, err := dec.ReadByte()
	if err != nil {
		return nil, nil, err
	}
	switch flag {
	case 0:
	case 1:
		if weights, err = dec.PackedFloat64s(); err != nil {
			return nil, nil, err
		}
		if len(weights) != len(points) {
			return nil, nil, fmt.Errorf("serve: %d weights for %d points", len(weights), len(points))
		}
	default:
		return nil, nil, fmt.Errorf("serve: bad weights flag %d", flag)
	}
	if err := dec.Close(); err != nil {
		return nil, nil, err
	}
	return points, weights, nil
}

// EncodeValuesBody frames a response value vector with the codec's XOR-packed
// raw-bits encoding: bit-identical floats in fewer bytes than either JSON or
// plain little-endian.
func EncodeValuesBody(w io.Writer, values []float64) error {
	enc := codec.NewWriter(w, tagValuesBody)
	enc.PackedFloat64s(values)
	return enc.Close()
}

// DecodeValuesBody reads a response value vector.
func DecodeValuesBody(r io.Reader) ([]float64, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return nil, err
	}
	if tag != tagValuesBody {
		return nil, fmt.Errorf("serve: body holds tag %#02x, want values frame", tag)
	}
	values, err := dec.PackedFloat64s()
	if err != nil {
		return nil, err
	}
	if err := dec.Close(); err != nil {
		return nil, err
	}
	return values, nil
}

// --- Zero-copy body codecs. ---
//
// The Encode*/Decode* functions above stream through the codec's
// Writer/Reader — the right shape for clients and tests. The serving hot
// path instead uses the byte-slice forms below: the complete request body is
// read into a pooled buffer, checksum-verified in one pass, and parsed in
// place; the response is appended directly into the outgoing HSYN frame held
// in a pooled buffer (header reserved up front, CRC computed over the filled
// region), with no intermediate encode buffer. Both forms produce and accept
// identical bytes.

// AppendValuesBody appends one complete response value frame to dst (the
// frame starts at len(dst)) and returns the extended slice — the zero-copy
// counterpart of EncodeValuesBody.
func AppendValuesBody(dst []byte, values []float64) []byte {
	start := len(dst)
	dst = codec.AppendFrameHeader(dst, tagValuesBody)
	dst = codec.AppendPackedFloat64s(dst, values)
	return codec.FinishFrame(dst, start)
}

// parseBodyHeader verifies a complete request frame held in buf (checksum
// first, then tag and batch length) and returns the payload cursor — the
// byte-slice twin of bodyHeader.
func parseBodyHeader(buf []byte, wantTag byte, maxBatch int) (codec.FramePayload, int, error) {
	tag, payload, err := codec.ParseFrame(buf)
	if err != nil {
		return codec.FramePayload{}, 0, err
	}
	if tag != wantTag {
		return codec.FramePayload{}, 0, fmt.Errorf("serve: body holds tag %#02x, want %#02x", tag, wantTag)
	}
	p := codec.NewFramePayload(payload)
	n, err := p.SliceLen()
	if err != nil {
		return codec.FramePayload{}, 0, err
	}
	if n > maxBatch {
		return codec.FramePayload{}, 0, fmt.Errorf("serve: batch of %d exceeds the server's limit of %d", n, maxBatch)
	}
	return p, n, nil
}

// ParsePointsBody parses a complete point-query frame held in buf, writing
// the points into xs (grown only when too small) — DecodePointsBody without
// the per-request allocations.
func ParsePointsBody(buf []byte, maxBatch int, xs []int) ([]int, error) {
	p, n, err := parseBodyHeader(buf, tagPointsBody, maxBatch)
	if err != nil {
		return nil, err
	}
	xs = growInts(xs, n)
	for i := range xs {
		v, err := p.Varint()
		if err != nil {
			return nil, err
		}
		xs[i] = int(v)
	}
	if err := p.Done(); err != nil {
		return nil, err
	}
	return xs, nil
}

// ParseRangesBody parses a complete range-query frame held in buf into as
// and bs (each grown only when too small) — DecodeRangesBody without the
// per-request allocations.
func ParseRangesBody(buf []byte, maxBatch int, as, bs []int) (outAs, outBs []int, err error) {
	p, n, err := parseBodyHeader(buf, tagRangesBody, maxBatch)
	if err != nil {
		return nil, nil, err
	}
	as = growInts(as, n)
	bs = growInts(bs, n)
	for i := range as {
		a, err := p.Varint()
		if err != nil {
			return nil, nil, err
		}
		b, err := p.Varint()
		if err != nil {
			return nil, nil, err
		}
		as[i], bs[i] = int(a), int(b)
	}
	if err := p.Done(); err != nil {
		return nil, nil, err
	}
	return as, bs, nil
}

// ParseAddBody parses a complete ingest frame held in buf into xs and ws
// (each grown only when too small) — DecodeAddBody without the per-request
// allocations. The returned weights slice is nil when the frame carries the
// no-weights flag, so callers keep their own buffer for reuse; when weights
// are present they go through the codec's packed-float parser, which rejects
// NaN and ±Inf exactly like the streaming decoder.
func ParseAddBody(buf []byte, maxBatch int, xs []int, ws []float64) (points []int, weights []float64, err error) {
	p, n, err := parseBodyHeader(buf, tagAddBody, maxBatch)
	if err != nil {
		return nil, nil, err
	}
	xs = growInts(xs, n)
	for i := range xs {
		v, err := p.Varint()
		if err != nil {
			return nil, nil, err
		}
		xs[i] = int(v)
	}
	flag, err := p.Byte()
	if err != nil {
		return nil, nil, err
	}
	switch flag {
	case 0:
	case 1:
		if ws, err = p.PackedFloat64s(ws); err != nil {
			return nil, nil, err
		}
		if len(ws) != n {
			return nil, nil, fmt.Errorf("serve: %d weights for %d points", len(ws), n)
		}
		weights = ws
	default:
		return nil, nil, fmt.Errorf("serve: bad weights flag %d", flag)
	}
	if err := p.Done(); err != nil {
		return nil, nil, err
	}
	return xs, weights, nil
}

// growInts returns xs resized to n, reallocating only on a short capacity.
func growInts(xs []int, n int) []int {
	if cap(xs) < n {
		return make([]int, n)
	}
	return xs[:n]
}

// bodyHeader validates a request frame's envelope prefix, tag, and batch
// length — the shared head of every binary request decoder.
func bodyHeader(r io.Reader, wantTag byte, maxBatch int) (*codec.Reader, int, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return nil, 0, err
	}
	if tag != wantTag {
		return nil, 0, fmt.Errorf("serve: body holds tag %#02x, want %#02x", tag, wantTag)
	}
	n, err := dec.SliceLen()
	if err != nil {
		return nil, 0, err
	}
	if n > maxBatch {
		return nil, 0, fmt.Errorf("serve: batch of %d exceeds the server's limit of %d", n, maxBatch)
	}
	return dec, n, nil
}
