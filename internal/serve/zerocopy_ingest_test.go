package serve

// Zero-copy wire ingest: the pooled parse-in-place path of POST /add must
// accept exactly what the streaming decoder accepts, reject what it rejects,
// and perform zero steady-state heap allocations per binary request — the
// write-side mirror of zerocopy_test.go.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// addBodies builds one binary ingest frame with weights and one without.
func addBodies(t *testing.T, n, batch int) (points []int, weights []float64, withW, noW []byte) {
	t.Helper()
	points = make([]int, batch)
	weights = make([]float64, batch)
	for i := range points {
		points[i] = 1 + (i*2654435761)%n // deterministic, scattered
		weights[i] = 1 + 0.25*float64(i%8)
	}
	withW = encodeBody(t, func(w io.Writer) error { return EncodeAddBody(w, points, weights) })
	noW = encodeBody(t, func(w io.Writer) error { return EncodeAddBody(w, points, nil) })
	return points, weights, withW, noW
}

func TestParseAddBodyMatchesStreamingDecode(t *testing.T) {
	wantPts, wantWs, withW, noW := addBodies(t, 100000, 300)

	for name, body := range map[string][]byte{"weights": withW, "unit": noW} {
		pts, ws, err := ParseAddBody(body, 1000, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		decPts, decWs, err := DecodeAddBody(bytes.NewReader(body), 1000)
		if err != nil {
			t.Fatalf("%s: streaming decode: %v", name, err)
		}
		if len(pts) != len(decPts) || len(pts) != len(wantPts) {
			t.Fatalf("%s: %d points, streaming %d, want %d", name, len(pts), len(decPts), len(wantPts))
		}
		for i := range pts {
			if pts[i] != decPts[i] || pts[i] != wantPts[i] {
				t.Fatalf("%s: point %d = %d, streaming %d, want %d", name, i, pts[i], decPts[i], wantPts[i])
			}
		}
		if name == "unit" {
			if ws != nil || decWs != nil {
				t.Fatalf("unit-weight body decoded weights: %v / %v", ws, decWs)
			}
			continue
		}
		for i := range ws {
			if ws[i] != decWs[i] || ws[i] != wantWs[i] {
				t.Fatalf("weight %d = %v, streaming %v, want %v", i, ws[i], decWs[i], wantWs[i])
			}
		}
	}

	// Rejections mirror the streaming decoder: corrupt frame, over-limit
	// batch, bad weights flag (flip the flag byte — it sits right before the
	// weights section, so corrupting the CRC too means rebuilding; easier to
	// assert the batch limit and checksum paths).
	bad := append([]byte{}, withW...)
	bad[len(bad)/2] ^= 0x01
	if _, _, err := ParseAddBody(bad, 1000, nil, nil); err == nil {
		t.Fatal("corrupt ingest frame accepted")
	}
	if _, _, err := ParseAddBody(withW, 299, nil, nil); err == nil {
		t.Fatal("over-limit ingest batch accepted")
	}
	if _, _, err := DecodeAddBody(bytes.NewReader(withW), 299); err == nil {
		t.Fatal("streaming decoder accepted the over-limit batch")
	}
}

// hostMaintainer builds a server hosting an inline-compacting Maintainer —
// the engine shape whose whole ingest cycle (buffering AND compaction) can
// be allocation-free, unlike Sharded whose background compaction spawns a
// goroutine.
func hostMaintainer(t *testing.T, n, k, bufferCap int) (*Server, ingester) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Workers = 1
	maint, err := stream.NewMaintainer(n, k, bufferCap, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(&Config{Workers: 1})
	if err := s.Host("m", maint); err != nil {
		t.Fatal(err)
	}
	sv, ok := s.lookup("m")
	if !ok {
		t.Fatal("hosted maintainer not resolvable")
	}
	ing, ok := sv.(ingester)
	if !ok {
		t.Fatal("hosted maintainer is not an ingester")
	}
	return s, ing
}

func TestIngestBinaryEndToEnd(t *testing.T) {
	s, ing := hostMaintainer(t, 100000, 16, 1024)
	points, weights, withW, _ := addBodies(t, 100000, 300)

	wb := s.bufs.get()
	status, err := s.ingestBinary(ing, bytes.NewReader(withW), wb)
	if err != nil {
		t.Fatalf("ingestBinary: status %d, %v", status, err)
	}
	want := `{"ingested":300}` + "\n"
	if string(wb.resp) != want {
		t.Fatalf("reply %q, want %q", wb.resp, want)
	}
	s.bufs.put(wb)

	// The mass must have landed in the maintained summary.
	sv, _ := s.lookup("m")
	var total float64
	for i, p := range points {
		_ = p
		total += weights[i]
	}
	got, err := sv.rangeBatch([]int{1}, []int{100000}, queryParams{workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got[0] - total; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("ingested mass %v, want %v", got[0], total)
	}
}

func TestIngestBinaryZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector makes sync.Pool drop items at random")
	}
	// bufferCap 4096 with 512-point requests: a compaction fires every 8th
	// request, so the 200 timed iterations cross ~25 full compaction cycles —
	// the assertion covers the radix sort, the merge-in sweep, AND the wire
	// path, not just the parse.
	s, ing := hostMaintainer(t, 100000, 32, 4096)
	_, _, withW, noW := addBodies(t, 100000, 512)

	// Warm-up: grow every pooled slice and every maintainer scratch (sorter,
	// merge state, prefix buffers) to steady-state size — two dozen requests
	// cycle the compaction path several times.
	rd := bytes.NewReader(withW)
	for i := 0; i < 24; i++ {
		wb := s.bufs.get()
		rd.Reset(withW)
		if status, err := s.ingestBinary(ing, rd, wb); err != nil {
			t.Fatalf("warm-up: status %d, %v", status, err)
		}
		s.bufs.put(wb)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		wb := s.bufs.get()
		rd.Reset(withW)
		if _, err := s.ingestBinary(ing, rd, wb); err != nil {
			t.Fatal(err)
		}
		s.bufs.put(wb)
	}); allocs != 0 {
		t.Fatalf("pooled binary ingest (weights) allocates %v/op at steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		wb := s.bufs.get()
		rd.Reset(noW)
		if _, err := s.ingestBinary(ing, rd, wb); err != nil {
			t.Fatal(err)
		}
		s.bufs.put(wb)
	}); allocs != 0 {
		t.Fatalf("pooled binary ingest (unit weights) allocates %v/op at steady state, want 0", allocs)
	}
}

// TestHandleAddJSONRejectsOversizedBatchEarly: the streaming JSON decoder
// must reject a points array longer than MaxBatch as it scans, and the
// error must surface as a 400 — the satellite guarantee that a hostile JSON
// body cannot make the server materialize an arbitrarily long slice.
func TestHandleAddJSONRejectsOversizedBatchEarly(t *testing.T) {
	var body bytes.Buffer
	body.WriteString(`{"points":[`)
	for i := 0; i < 40; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		body.WriteByte('7')
	}
	body.WriteString(`]}`)

	points, _, err := decodeAddJSON(bytes.NewReader(body.Bytes()), 39)
	if err == nil {
		t.Fatalf("40-point body passed a 39 limit: %d points", len(points))
	}
	if points, _, err = decodeAddJSON(bytes.NewReader(body.Bytes()), 40); err != nil {
		t.Fatalf("40-point body failed a 40 limit: %v", err)
	} else if len(points) != 40 {
		t.Fatalf("decoded %d points, want 40", len(points))
	}

	// End to end: with MaxBatch 39 the handler answers 400, not 500, and
	// does not ingest.
	opts := core.DefaultOptions()
	opts.Workers = 1
	maint, err := stream.NewMaintainer(1000, 4, 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(&Config{Workers: 1, MaxBatch: 39})
	if err := srv.Host("m", maint); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/v1/m/add", ContentJSON, bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if maint.Updates() != 0 {
		t.Fatalf("%d updates ingested from a rejected body, want 0", maint.Updates())
	}
}

// TestSnapshotPutUsesPooledBody pins the satellite contract on the PUT
// /snapshot decode path: the request body lands in the recycled wire-pool
// scratch (observable through the pool's request high-water mark, which only
// put() raises), and the pooled body read itself is allocation-free at
// steady state — a replica absorbing a delta every few hundred milliseconds
// should not churn a fresh body buffer per sync.
func TestSnapshotPutUsesPooledBody(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector makes sync.Pool drop items at random")
	}
	src, err := stream.NewSharded(50000, 8, 2, 4096, func() core.Options { o := core.DefaultOptions(); o.Workers = 1; return o }())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddBatch([]int{1, 7, 900, 49999}, nil); err != nil {
		t.Fatal(err)
	}
	ckpt, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := ckpt.AppendDelta(nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	s := NewServer(&Config{Workers: 1})
	for i := 0; i < 8; i++ {
		req := httptest.NewRequest(http.MethodPut, "/v1/hist/snapshot", bytes.NewReader(frame))
		req.Header.Set("Content-Type", ContentSnapshot)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("PUT %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	if hwm := s.bufs.reqHWM.Load(); hwm < int64(len(frame)) {
		t.Fatalf("request HWM %d after %d-byte PUTs: body did not go through the pool", hwm, len(frame))
	}

	// The pooled body read — the part the pool exists for — is zero-alloc.
	rd := bytes.NewReader(frame)
	if allocs := testing.AllocsPerRun(100, func() {
		wb := s.bufs.get()
		rd.Reset(frame)
		req, err := readBodyInto(wb.req, rd)
		wb.req = req
		if err != nil {
			t.Fatal(err)
		}
		s.bufs.put(wb)
	}); allocs != 0 {
		t.Fatalf("pooled snapshot body read allocates %v/op at steady state, want 0", allocs)
	}
}
