package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// encodeBody renders one request body with the streaming encoder — the
// reference producer the zero-copy parser must accept.
func encodeBody(t *testing.T, enc func(io.Writer) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := enc(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAnswerBinaryMatchesStreamingCodecs(t *testing.T) {
	h := testHistogram(t, 4000, 64)
	s := NewServer(&Config{Workers: 1})
	if err := s.Host("h", h); err != nil {
		t.Fatal(err)
	}
	sv, _ := s.lookup("h")
	q := queryParams{workers: 1}
	xs, as, bs := queries(4000, 300)

	pointReq := encodeBody(t, func(w io.Writer) error { return EncodePointsBody(w, xs) })
	wb := s.bufs.get()
	if status, err := s.answerBinary(sv, q, false, bytes.NewReader(pointReq), wb); err != nil {
		t.Fatalf("point answerBinary: status %d, %v", status, err)
	}
	got, err := DecodeValuesBody(bytes.NewReader(wb.resp))
	if err != nil {
		t.Fatalf("decoding zero-copy point response: %v", err)
	}
	bitsEqual(t, "points", got, h.AtBatch(xs, nil, 1))

	rangeReq := encodeBody(t, func(w io.Writer) error { return EncodeRangesBody(w, as, bs) })
	if status, err := s.answerBinary(sv, q, true, bytes.NewReader(rangeReq), wb); err != nil {
		t.Fatalf("range answerBinary: status %d, %v", status, err)
	}
	if got, err = DecodeValuesBody(bytes.NewReader(wb.resp)); err != nil {
		t.Fatalf("decoding zero-copy range response: %v", err)
	}
	bitsEqual(t, "ranges", got, h.RangeSumBatch(as, bs, nil, 1))
	s.bufs.put(wb)
}

func TestAnswerBinaryRejectsCorruptBody(t *testing.T) {
	h := testHistogram(t, 100, 8)
	s := NewServer(&Config{Workers: 1})
	if err := s.Host("h", h); err != nil {
		t.Fatal(err)
	}
	sv, _ := s.lookup("h")
	req := encodeBody(t, func(w io.Writer) error { return EncodePointsBody(w, []int{1, 2, 3}) })
	bad := append([]byte{}, req...)
	bad[len(bad)/2] ^= 0x40
	wb := s.bufs.get()
	defer s.bufs.put(wb)
	status, err := s.answerBinary(sv, queryParams{workers: 1}, false, bytes.NewReader(bad), wb)
	if err == nil {
		t.Fatal("corrupt body accepted")
	}
	if status != http.StatusBadRequest {
		t.Fatalf("corrupt body status = %d, want 400", status)
	}
}

func TestAnswerBinaryZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector makes sync.Pool drop items at random")
	}
	h := testHistogram(t, 100000, 1000)
	s := NewServer(&Config{Workers: 1})
	if err := s.Host("h", h); err != nil {
		t.Fatal(err)
	}
	sv, _ := s.lookup("h")
	q := queryParams{workers: 1}
	xs, as, bs := queries(100000, 512)
	pointReq := encodeBody(t, func(w io.Writer) error { return EncodePointsBody(w, xs) })
	rangeReq := encodeBody(t, func(w io.Writer) error { return EncodeRangesBody(w, as, bs) })

	// One warm-up request grows every pooled slice to its steady-state size;
	// after that the entire read-parse-answer-encode cycle, including the
	// pool round-trip, must not allocate.
	rd := bytes.NewReader(pointReq)
	wb := s.bufs.get()
	if _, err := s.answerBinary(sv, q, false, rd, wb); err != nil {
		t.Fatal(err)
	}
	rd.Reset(rangeReq)
	if _, err := s.answerBinary(sv, q, true, rd, wb); err != nil {
		t.Fatal(err)
	}
	s.bufs.put(wb)

	if allocs := testing.AllocsPerRun(200, func() {
		wb := s.bufs.get()
		rd.Reset(pointReq)
		if _, err := s.answerBinary(sv, q, false, rd, wb); err != nil {
			t.Fatal(err)
		}
		s.bufs.put(wb)
	}); allocs != 0 {
		t.Fatalf("pooled binary point path allocates %v/op at steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		wb := s.bufs.get()
		rd.Reset(rangeReq)
		if _, err := s.answerBinary(sv, q, true, rd, wb); err != nil {
			t.Fatal(err)
		}
		s.bufs.put(wb)
	}); allocs != 0 {
		t.Fatalf("pooled binary range path allocates %v/op at steady state, want 0", allocs)
	}
}

// getSnapshot fetches /snapshot and returns the body bytes.
func getSnapshot(t *testing.T, ts *httptest.Server, name string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/" + name + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /snapshot: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestSnapshotGetMemoizedUntilSwap(t *testing.T) {
	h := testHistogram(t, 2000, 16)
	srv := NewServer(&Config{Workers: 1})
	if err := srv.Host("h", h); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	first := getSnapshot(t, ts, "h")
	second := getSnapshot(t, ts, "h")
	if !bytes.Equal(first, second) {
		t.Fatal("two GETs between swaps returned different snapshot bytes")
	}
	if n := srv.snapshotEncodes.Load(); n != 1 {
		t.Fatalf("two GETs ran the encoder %d times, want 1 (memoized)", n)
	}

	// Re-hosting under the same name is the invalidation: the next GET must
	// re-encode and serve the new synopsis, not the cached body.
	h2 := testHistogram(t, 2000, 5)
	if err := srv.Host("h", h2); err != nil {
		t.Fatal(err)
	}
	third := getSnapshot(t, ts, "h")
	if bytes.Equal(first, third) {
		t.Fatal("GET after a hot swap served the stale cached body")
	}
	if n := srv.snapshotEncodes.Load(); n != 2 {
		t.Fatalf("encoder ran %d times after the swap, want 2", n)
	}
	// The swapped-in synopsis memoizes again.
	if fourth := getSnapshot(t, ts, "h"); !bytes.Equal(third, fourth) {
		t.Fatal("post-swap GETs disagree")
	}
	if n := srv.snapshotEncodes.Load(); n != 2 {
		t.Fatalf("encoder ran %d times for the re-memoized body, want 2", n)
	}
}

func TestSnapshotGetNeverCachesMutableEngines(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Workers = 1
	maint, err := stream.NewMaintainer(1000, 6, 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := maint.AddBatch([]int{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(&Config{Workers: 1})
	if err := srv.Host("m", maint); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	getSnapshot(t, ts, "m")
	getSnapshot(t, ts, "m")
	if n := srv.snapshotEncodes.Load(); n != 2 {
		t.Fatalf("mutable engine snapshots encoded %d times for two GETs, want 2 (no caching)", n)
	}
}

func TestSnapshotPutInvalidatesMemoizedGet(t *testing.T) {
	h := testHistogram(t, 2000, 16)
	srv := NewServer(&Config{Workers: 1})
	if err := srv.Host("h", h); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	first := getSnapshot(t, ts, "h")

	// Push a different histogram's envelope over the same name.
	var envelope bytes.Buffer
	h2 := testHistogram(t, 500, 4)
	if _, err := h2.WriteTo(&envelope); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/h/snapshot", &envelope)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentSnapshot)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /snapshot: status %d", resp.StatusCode)
	}

	after := getSnapshot(t, ts, "h")
	if bytes.Equal(first, after) {
		t.Fatal("GET after PUT served the pre-push cached body")
	}
	var buf bytes.Buffer
	if _, err := h2.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, buf.Bytes()) {
		t.Fatal("GET after PUT does not round-trip the pushed synopsis")
	}
}

func TestReadBodyInto(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 700)
	// One byte of spare capacity past the body lets the reader observe EOF
	// without growing.
	buf := make([]byte, 0, len(payload)+1)
	got, err := readBodyInto(buf, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("readBodyInto corrupted the body")
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("readBodyInto reallocated despite sufficient capacity")
	}
	// Undersized buffer: must still return the full body.
	got, err = readBodyInto(make([]byte, 0, 7), bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("readBodyInto lost bytes while growing")
	}
}
