package sparse

// Entry-log sorting kernel for the streaming compaction path.
//
// Every compaction begins by sorting the buffered update log by point index
// (stably: duplicate points must keep arrival order, because their weights
// are summed in that order and float addition is not commutative-associative).
// A comparison sort pays Θ(B log B) comparisons plus the move traffic of an
// in-place stable merge; profiles of the ingest hot loop showed it at ~2/3 of
// total ingest time. Entry keys are small non-negative integers (point
// indices in [1, n]), so the kernel below replaces it with two linear-time
// stable sorts behind one reusable scratch area:
//
//   - counting sort when the key range is small relative to the log (one
//     histogram over [0, maxIndex], one stable scatter);
//   - LSD radix sort over 8-bit digits otherwise, with all per-pass
//     histograms filled in a single sweep and constant-digit passes skipped
//     (a log of indices < 2²⁴ costs at most 3 scatter passes);
//   - plain insertion sort below a small cutoff, where either linear-time
//     sort loses to its setup costs.
//
// All paths are stable and allocation-free at steady state: the scratch grows
// to the largest (len, maxIndex) seen and is reused. slices.SortStableFunc
// remains the test oracle — sort_test.go asserts bit-identical entry order on
// adversarial logs.

const (
	radixBits    = 8
	radixBuckets = 1 << radixBits
	// maxRadixPasses covers a full 64-bit key; real logs use 2-3 passes.
	maxRadixPasses = 8
	// sortSmallCutoff routes short logs to insertion sort: below ~48 entries
	// the O(B²/4) moves beat either linear sort's histogram setup.
	sortSmallCutoff = 48
	// countingMaxRatio selects counting sort when maxIndex ≤ ratio·len: the
	// O(maxIndex) histogram zero+prefix then costs at most a few extra linear
	// sweeps, cheaper than multiple radix scatter passes.
	countingMaxRatio = 4
)

// IndexSorter stably sorts entry logs by Index in linear time, owning the
// scratch buffers so repeated sorts (one per compaction) allocate nothing at
// steady state. The zero value is ready to use. Not safe for concurrent use.
type IndexSorter struct {
	// tmp is the scatter target, ping-ponged with the caller's slice.
	tmp []Entry
	// counts holds one bucket histogram per radix pass, all filled in a
	// single sweep over the input.
	counts [maxRadixPasses][radixBuckets]int
	// small is the counting-sort histogram, indexed directly by Entry.Index.
	small []int32
}

// Sort stably sorts es by ascending Index. maxIndex is an inclusive upper
// bound on the indices present (a maintainer passes its domain size n);
// indices must lie in [0, maxIndex] — the caller validates them at ingest
// time, so the kernel does not re-check.
func (s *IndexSorter) Sort(es []Entry, maxIndex int) {
	if len(es) < sortSmallCutoff {
		insertionByIndex(es)
		return
	}
	if maxIndex <= countingMaxRatio*len(es) {
		s.countingSort(es, maxIndex)
		return
	}
	s.radixSort(es, maxIndex)
}

// insertionByIndex is a stable insertion sort (strict > keeps equal keys in
// arrival order).
func insertionByIndex(es []Entry) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && es[j].Index > e.Index {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

// countingSort sorts by one histogram over the full key range [0, maxIndex]:
// count, exclusive prefix, stable scatter into tmp, copy back.
func (s *IndexSorter) countingSort(es []Entry, maxIndex int) {
	if cap(s.small) < maxIndex+1 {
		s.small = make([]int32, maxIndex+1)
	}
	cnt := s.small[:maxIndex+1]
	clear(cnt)
	for _, e := range es {
		cnt[e.Index]++
	}
	var sum int32
	for i, c := range cnt {
		cnt[i] = sum
		sum += c
	}
	s.tmp = growEntries(s.tmp, len(es))
	for _, e := range es {
		s.tmp[cnt[e.Index]] = e
		cnt[e.Index]++
	}
	copy(es, s.tmp)
}

// radixSort is a stable LSD radix sort over 8-bit digits. The per-pass bucket
// histograms are all computed in one sweep over the input, then each pass
// scatters between es and tmp; a pass whose digit is constant across the log
// (common for high bytes) is skipped outright. If an odd number of passes
// ran, the result is copied back into es.
func (s *IndexSorter) radixSort(es []Entry, maxIndex int) {
	passes := 1
	for mx := maxIndex >> radixBits; mx > 0; mx >>= radixBits {
		passes++
	}
	for p := 0; p < passes; p++ {
		clear(s.counts[p][:])
	}
	for _, e := range es {
		x := uint64(e.Index)
		for p := 0; p < passes; p++ {
			s.counts[p][(x>>(radixBits*p))&(radixBuckets-1)]++
		}
	}

	s.tmp = growEntries(s.tmp, len(es))
	src, dst := es, s.tmp
	for p := 0; p < passes; p++ {
		cnt := &s.counts[p]
		shift := radixBits * p
		// Constant digit ⇒ the pass is a stable identity: skip it.
		if cnt[(uint64(es[0].Index)>>shift)&(radixBuckets-1)] == len(es) {
			continue
		}
		sum := 0
		for i, c := range cnt {
			cnt[i] = sum
			sum += c
		}
		for _, e := range src {
			b := (uint64(e.Index) >> shift) & (radixBuckets - 1)
			dst[cnt[b]] = e
			cnt[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &es[0] {
		copy(es, src)
	}
}

// growEntries returns xs resized to n, reallocating only on a short capacity.
func growEntries(xs []Entry, n int) []Entry {
	if cap(xs) < n {
		return make([]Entry, n)
	}
	return xs[:n]
}
