package sparse

import (
	"cmp"
	"math/rand"
	"slices"
	"testing"
)

// sortOracle is the comparison sort the kernel replaced, retained verbatim as
// the reference: stable sort by Index via slices.SortStableFunc.
func sortOracle(es []Entry) {
	slices.SortStableFunc(es, func(a, b Entry) int {
		return cmp.Compare(a.Index, b.Index)
	})
}

// adversarialLogs builds the ISSUE's adversarial cases plus randomized logs
// across regimes that hit all three kernel paths (insertion, counting, radix).
func adversarialLogs() map[string][]Entry {
	rng := rand.New(rand.NewSource(7))
	logs := map[string][]Entry{
		"empty":        {},
		"single_entry": {{Index: 17, Value: 2.5}},
	}

	// Duplicate-heavy: 4096 updates over just 3 points, values encode arrival
	// order so any stability violation flips the dedup sum's rounding.
	dup := make([]Entry, 4096)
	for i := range dup {
		dup[i] = Entry{Index: []int{5, 900, 42}[i%3], Value: 1 + 1e-9*float64(i)}
	}
	logs["duplicate_heavy"] = dup

	// Deletions: alternating +w/-w on colliding points.
	del := make([]Entry, 1024)
	for i := range del {
		v := float64(1 + i%7)
		if i%2 == 1 {
			v = -v
		}
		del[i] = Entry{Index: 1 + (i*37)%64, Value: v}
	}
	logs["deletions"] = del

	// Single point repeated: all entries collide.
	one := make([]Entry, 512)
	for i := range one {
		one[i] = Entry{Index: 1000, Value: float64(i) - 255.5}
	}
	logs["single_point"] = one

	// Reverse-sorted, strictly descending indices.
	rev := make([]Entry, 4096)
	for i := range rev {
		rev[i] = Entry{Index: 4096 - i, Value: rng.NormFloat64()}
	}
	logs["reverse_sorted"] = rev

	// Randomized regimes: tiny (insertion), small domain (counting), large
	// domain (radix, 2-3 passes), huge sparse domain (radix with skipped
	// high-byte passes), and a log that is already sorted.
	for _, c := range []struct {
		name     string
		size, mx int
	}{
		{"rand_tiny", 31, 1 << 20},
		{"rand_counting", 2048, 4096},
		{"rand_radix_2pass", 4096, 60000},
		{"rand_radix_3pass", 4096, 1 << 22},
		{"rand_sparse_domain", 1024, 1 << 30},
	} {
		es := make([]Entry, c.size)
		for i := range es {
			es[i] = Entry{Index: 1 + rng.Intn(c.mx), Value: rng.NormFloat64()}
		}
		logs[c.name] = es
	}
	sorted := make([]Entry, 4096)
	for i := range sorted {
		sorted[i] = Entry{Index: 1 + i/2, Value: rng.NormFloat64()}
	}
	logs["already_sorted"] = sorted
	return logs
}

func maxIndexOf(es []Entry) int {
	mx := 1
	for _, e := range es {
		if e.Index > mx {
			mx = e.Index
		}
	}
	return mx
}

// TestIndexSorterMatchesOracle: on every adversarial log the kernel must
// produce a BIT-IDENTICAL entry sequence to the retained comparison sort —
// same order including equal keys (stability), same values, same indices.
func TestIndexSorterMatchesOracle(t *testing.T) {
	var s IndexSorter
	for name, log := range adversarialLogs() {
		t.Run(name, func(t *testing.T) {
			want := slices.Clone(log)
			sortOracle(want)
			got := slices.Clone(log)
			s.Sort(got, maxIndexOf(log))
			if !slices.Equal(got, want) {
				t.Fatalf("kernel order diverges from oracle on %d entries", len(log))
			}
		})
	}
}

// TestIndexSorterPathsAgree forces each log through every code path (the
// domain bound steers counting vs radix) and checks they agree with each
// other and the oracle: a log whose indices fit a small domain must sort
// identically whether the caller declares the domain tight or huge.
func TestIndexSorterPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		size := 48 + rng.Intn(4000)
		mx := 1 + rng.Intn(3*size)
		log := make([]Entry, size)
		for i := range log {
			log[i] = Entry{Index: 1 + rng.Intn(mx), Value: rng.NormFloat64()}
		}
		want := slices.Clone(log)
		sortOracle(want)

		var s IndexSorter
		counting := slices.Clone(log)
		s.Sort(counting, mx) // mx ≤ 4·size ⇒ counting path
		radix := slices.Clone(log)
		s.Sort(radix, 1<<40) // huge declared domain ⇒ radix path
		if !slices.Equal(counting, want) {
			t.Fatalf("trial %d: counting path diverges from oracle", trial)
		}
		if !slices.Equal(radix, want) {
			t.Fatalf("trial %d: radix path diverges from oracle", trial)
		}
	}
}

// TestIndexSorterSteadyStateAllocs: after one warm-up sort per path, repeated
// sorts must not allocate — the scratch is retained and reused.
func TestIndexSorterSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s IndexSorter
	const size = 4096
	work := make([]Entry, size)
	for _, mx := range []int{200000, 4 * size} { // radix path, counting path
		base := make([]Entry, size)
		for i := range base {
			base[i] = Entry{Index: 1 + rng.Intn(mx), Value: rng.NormFloat64()}
		}
		copy(work, base)
		s.Sort(work, mx) // warm up scratch
		allocs := testing.AllocsPerRun(20, func() {
			copy(work, base)
			s.Sort(work, mx)
		})
		if allocs != 0 {
			t.Fatalf("maxIndex=%d: %v allocs per sort, want 0", mx, allocs)
		}
	}
}
