// Package sparse implements the s-sparse function representation the paper's
// algorithms operate on: a function q : [n] → ℝ stored as its sorted nonzero
// entries, together with the interval statistics (length, Σq, Σq²) that give
// O(1) flattening means and errors, and the paper's "relevant index" set J
// and initial partition I₀ (Algorithm 1, lines 3–9).
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/interval"
	"repro/internal/numeric"
)

// Entry is a single nonzero of a sparse function: q(Index) = Value.
// Index is 1-based, matching the paper's universe [n] = {1, …, n}.
type Entry struct {
	Index int
	Value float64
}

// Func is an s-sparse function over [n]: entries sorted by strictly
// increasing Index, all with nonzero Value. The zero value of Func is the
// all-zero function over an empty domain; construct with New or FromDense.
type Func struct {
	n       int
	entries []Entry
}

// New builds a sparse function over [1, n] from entries. Entries may be
// given unsorted; they are sorted, validated (indices in range, distinct)
// and zero values are dropped. The entries slice is not retained.
func New(n int, entries []Entry) (*Func, error) {
	if n < 1 {
		return nil, errors.New("sparse: domain size must be ≥ 1")
	}
	es := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if e.Index < 1 || e.Index > n {
			return nil, fmt.Errorf("sparse: index %d out of [1, %d]", e.Index, n)
		}
		if e.Value != 0 {
			es = append(es, e)
		}
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Index < es[j].Index })
	for i := 1; i < len(es); i++ {
		if es[i].Index == es[i-1].Index {
			return nil, fmt.Errorf("sparse: duplicate index %d", es[i].Index)
		}
	}
	return &Func{n: n, entries: es}, nil
}

// FromDense converts a dense vector (q[0] is the value at point 1) to its
// sparse representation, dropping exact zeros.
func FromDense(q []float64) *Func {
	es := make([]Entry, 0, len(q))
	for i, v := range q {
		if v != 0 {
			es = append(es, Entry{Index: i + 1, Value: v})
		}
	}
	return &Func{n: len(q), entries: es}
}

// N returns the domain size n.
func (f *Func) N() int { return f.n }

// Sparsity returns the number of nonzero entries s.
func (f *Func) Sparsity() int { return len(f.entries) }

// Entries returns the sorted nonzero entries. The caller must not modify the
// returned slice.
func (f *Func) Entries() []Entry { return f.entries }

// At returns q(i), using binary search over the nonzeros.
func (f *Func) At(i int) float64 {
	if i < 1 || i > f.n {
		panic(fmt.Sprintf("sparse: At(%d) out of [1, %d]", i, f.n))
	}
	idx := sort.Search(len(f.entries), func(j int) bool { return f.entries[j].Index >= i })
	if idx < len(f.entries) && f.entries[idx].Index == i {
		return f.entries[idx].Value
	}
	return 0
}

// ToDense materializes the function as a dense vector of length n.
func (f *Func) ToDense() []float64 {
	q := make([]float64, f.n)
	for _, e := range f.entries {
		q[e.Index-1] = e.Value
	}
	return q
}

// Sum returns Σᵢ q(i), streaming over the entries with compensated
// summation — no temporary slice, so it is allocation-free on the hot path.
func (f *Func) Sum() float64 {
	var s numeric.Summer
	for _, e := range f.entries {
		s.Add(e.Value)
	}
	return s.Sum()
}

// SumSq returns Σᵢ q(i)², streaming like Sum.
func (f *Func) SumSq() float64 {
	var s numeric.Summer
	for _, e := range f.entries {
		s.Add(e.Value * e.Value)
	}
	return s.Sum()
}

// L2Norm returns ‖q‖₂.
func (f *Func) L2Norm() float64 {
	s := f.SumSq()
	return sqrt(s)
}

// RelevantIndices returns the paper's set J = ∪ⱼ {iⱼ−1, iⱼ, iⱼ+1} clipped to
// [1, n], sorted and de-duplicated (Algorithm 1, line 3).
func (f *Func) RelevantIndices() []int {
	js := make([]int, 0, 3*len(f.entries))
	push := func(x int) {
		if x < 1 || x > f.n {
			return
		}
		if len(js) > 0 && js[len(js)-1] >= x {
			return // entries are sorted, so candidates arrive non-decreasing per entry
		}
		js = append(js, x)
	}
	for _, e := range f.entries {
		push(e.Index - 1)
		push(e.Index)
		push(e.Index + 1)
	}
	return js
}

// InitialPartition returns the paper's I₀: every relevant index is a
// singleton interval and each maximal gap between consecutive relevant
// indices is one (all-zero) interval (Algorithm 1, line 9). Flattening q over
// I₀ reproduces q exactly, and |I₀| ≤ 4s + 1 = O(s).
//
// For a function with no nonzeros the whole domain is a single interval.
func (f *Func) InitialPartition() interval.Partition {
	js := f.RelevantIndices()
	if len(js) == 0 {
		return interval.Partition{interval.New(1, f.n)}
	}
	p := make(interval.Partition, 0, 2*len(js)+1)
	next := 1 // first uncovered point
	for _, j := range js {
		if j > next {
			p = append(p, interval.New(next, j-1)) // zero gap
		}
		p = append(p, interval.New(j, j)) // singleton
		next = j + 1
	}
	if next <= f.n {
		p = append(p, interval.New(next, f.n))
	}
	return p
}

// Stat aggregates the statistics of q restricted to an interval that make
// flattening O(1): the interval length and the sums Σq, Σq² over it.
// Stats are merged by addition, which is what makes each merging round of
// Algorithm 1 linear in the number of live intervals.
type Stat struct {
	Len        int
	Sum, SumSq float64
}

// Add returns the statistics of the union of two adjacent intervals.
func (s Stat) Add(t Stat) Stat {
	return Stat{Len: s.Len + t.Len, Sum: s.Sum + t.Sum, SumSq: s.SumSq + t.SumSq}
}

// Mean returns μ_q(I), the value of the best 1-histogram approximation on the
// interval (Definition 3.1).
func (s Stat) Mean() float64 {
	if s.Len == 0 {
		return 0
	}
	return s.Sum / float64(s.Len)
}

// SSE returns err_q(I) = Σ_{i∈I} (q(i) − μ)², clamped at 0 against rounding.
func (s Stat) SSE() float64 {
	if s.Len == 0 {
		return 0
	}
	return numeric.ClampNonNeg(s.SumSq - s.Sum*s.Sum/float64(s.Len))
}

// StatsFor computes the per-piece statistics of q over an arbitrary
// partition in O(s + |p|) with one sweep over the nonzeros. The partition
// must cover [1, n]. The merging engine calls it once per construction (the
// per-round statistics are maintained incrementally by Stat.Add), so the
// single allocation here is not on the round-scratch reuse path.
func (f *Func) StatsFor(p interval.Partition) []Stat {
	stats := make([]Stat, len(p))
	ei := 0
	for pi, iv := range p {
		st := Stat{Len: iv.Len()}
		for ei < len(f.entries) && f.entries[ei].Index <= iv.Hi {
			v := f.entries[ei].Value
			st.Sum += v
			st.SumSq += v * v
			ei++
		}
		stats[pi] = st
	}
	return stats
}

// Flatten returns the flattening q̄_I of q over the partition p as a dense
// vector: constant μ_q(Iᵢ) on each piece (Definition 3.1).
func (f *Func) Flatten(p interval.Partition) []float64 {
	stats := f.StatsFor(p)
	out := make([]float64, f.n)
	for pi, iv := range p {
		mu := stats[pi].Mean()
		for x := iv.Lo; x <= iv.Hi; x++ {
			out[x-1] = mu
		}
	}
	return out
}

// FlattenError returns ‖q̄_I − q‖₂ = sqrt(Σᵢ err_q(Iᵢ)) without materializing
// the flattening; this is the paper's error decomposition (proof of
// Theorem 3.3) and the error estimate e_t of Theorem 2.2.
func (f *Func) FlattenError(p interval.Partition) float64 {
	stats := f.StatsFor(p)
	var total float64
	for _, st := range stats {
		total += st.SSE()
	}
	return sqrt(total)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
