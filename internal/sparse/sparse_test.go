package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/interval"
	"repro/internal/numeric"
	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := New(5, []Entry{{Index: 0, Value: 1}}); err == nil {
		t.Fatal("index 0 should error")
	}
	if _, err := New(5, []Entry{{Index: 6, Value: 1}}); err == nil {
		t.Fatal("index > n should error")
	}
	if _, err := New(5, []Entry{{Index: 2, Value: 1}, {Index: 2, Value: 3}}); err == nil {
		t.Fatal("duplicate index should error")
	}
}

func TestNewSortsAndDropsZeros(t *testing.T) {
	f, err := New(10, []Entry{{Index: 7, Value: 2}, {Index: 3, Value: 0}, {Index: 1, Value: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if f.Sparsity() != 2 {
		t.Fatalf("sparsity = %d, want 2 (zero dropped)", f.Sparsity())
	}
	es := f.Entries()
	if es[0].Index != 1 || es[1].Index != 7 {
		t.Fatalf("entries not sorted: %v", es)
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	q := []float64{0, 1.5, 0, 0, -2, 3, 0}
	f := FromDense(q)
	if f.N() != 7 || f.Sparsity() != 3 {
		t.Fatalf("N=%d s=%d", f.N(), f.Sparsity())
	}
	back := f.ToDense()
	for i := range q {
		if back[i] != q[i] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, back[i], q[i])
		}
	}
}

func TestAt(t *testing.T) {
	f := FromDense([]float64{0, 5, 0, 7})
	if f.At(1) != 0 || f.At(2) != 5 || f.At(3) != 0 || f.At(4) != 7 {
		t.Fatal("At returned wrong values")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range should panic")
		}
	}()
	f.At(5)
}

func TestSums(t *testing.T) {
	f := FromDense([]float64{1, 0, 2, 3})
	if f.Sum() != 6 {
		t.Fatalf("Sum = %v", f.Sum())
	}
	if f.SumSq() != 14 {
		t.Fatalf("SumSq = %v", f.SumSq())
	}
	if math.Abs(f.L2Norm()-math.Sqrt(14)) > 1e-12 {
		t.Fatalf("L2Norm = %v", f.L2Norm())
	}
}

func TestRelevantIndices(t *testing.T) {
	// Nonzeros at 1, 5, 6 in [1,10]: J = {1,2} ∪ {4,5,6} ∪ {5,6,7} = {1,2,4,5,6,7}.
	f, err := New(10, []Entry{{1, 1}, {5, 2}, {6, 3}})
	if err != nil {
		t.Fatal(err)
	}
	got := f.RelevantIndices()
	want := []int{1, 2, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("J = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("J = %v, want %v", got, want)
		}
	}
}

func TestRelevantIndicesClipping(t *testing.T) {
	// Nonzero at n: i+1 is clipped.
	f, _ := New(3, []Entry{{3, 1}})
	got := f.RelevantIndices()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("J = %v, want [2 3]", got)
	}
}

func TestInitialPartitionExactness(t *testing.T) {
	q := []float64{0, 0, 3, 0, 0, 0, -1, 2, 0, 0}
	f := FromDense(q)
	p := f.InitialPartition()
	if err := p.Validate(f.N()); err != nil {
		t.Fatal(err)
	}
	flat := f.Flatten(p)
	for i := range q {
		if flat[i] != q[i] {
			t.Fatalf("flattening over I0 not exact at %d: %v vs %v", i+1, flat[i], q[i])
		}
	}
	if got := f.FlattenError(p); got != 0 {
		t.Fatalf("FlattenError over I0 = %v, want 0", got)
	}
}

func TestInitialPartitionAllZero(t *testing.T) {
	f, _ := New(42, nil)
	p := f.InitialPartition()
	if len(p) != 1 || p[0].Lo != 1 || p[0].Hi != 42 {
		t.Fatalf("I0 for zero function = %v", p)
	}
}

func TestInitialPartitionSizeBound(t *testing.T) {
	// |I0| ≤ 4s + 1.
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		n := 50 + r.Intn(500)
		s := 1 + r.Intn(20)
		seen := map[int]bool{}
		var es []Entry
		for len(es) < s {
			i := 1 + r.Intn(n)
			if !seen[i] {
				seen[i] = true
				es = append(es, Entry{Index: i, Value: r.NormFloat64() + 2})
			}
		}
		f, err := New(n, es)
		if err != nil {
			t.Fatal(err)
		}
		p := f.InitialPartition()
		if err := p.Validate(n); err != nil {
			t.Fatal(err)
		}
		if len(p) > 4*s+1 {
			t.Fatalf("|I0| = %d > 4s+1 = %d", len(p), 4*s+1)
		}
	}
}

func TestStatSSEAndMean(t *testing.T) {
	// Interval of length 4 with values {2, 4} and two zeros:
	// mean = 6/4 = 1.5, SSE = (2-1.5)² + (4-1.5)² + 2·1.5² = 0.25+6.25+4.5 = 11.
	st := Stat{Len: 4, Sum: 6, SumSq: 4 + 16}
	if st.Mean() != 1.5 {
		t.Fatalf("Mean = %v", st.Mean())
	}
	if math.Abs(st.SSE()-11) > 1e-12 {
		t.Fatalf("SSE = %v, want 11", st.SSE())
	}
}

func TestStatAdd(t *testing.T) {
	a := Stat{Len: 2, Sum: 3, SumSq: 5}
	b := Stat{Len: 1, Sum: 4, SumSq: 16}
	c := a.Add(b)
	if c.Len != 3 || c.Sum != 7 || c.SumSq != 21 {
		t.Fatalf("Add = %+v", c)
	}
}

func TestStatZero(t *testing.T) {
	var st Stat
	if st.Mean() != 0 || st.SSE() != 0 {
		t.Fatal("zero Stat should have zero mean and SSE")
	}
}

func TestStatsForMatchesPrefix(t *testing.T) {
	r := rng.New(7)
	n := 200
	q := make([]float64, n)
	for i := range q {
		if r.Float64() < 0.3 {
			q[i] = r.NormFloat64() * 5
		}
	}
	f := FromDense(q)
	pre := numeric.NewPrefixSSE(q)
	p := interval.Uniform(n, 17)
	stats := f.StatsFor(p)
	for i, iv := range p {
		if got, want := stats[i].SSE(), pre.SSE(iv.Lo, iv.Hi); !numeric.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("piece %d: SSE %v vs prefix %v", i, got, want)
		}
		if got, want := stats[i].Mean(), pre.Mean(iv.Lo, iv.Hi); !numeric.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("piece %d: Mean %v vs prefix %v", i, got, want)
		}
	}
}

func TestFlattenMassPreserving(t *testing.T) {
	// Flattening preserves the total mass Σq on every partition.
	r := rng.New(11)
	q := make([]float64, 300)
	for i := range q {
		q[i] = math.Abs(r.NormFloat64())
	}
	f := FromDense(q)
	for _, k := range []int{1, 3, 10, 100, 300} {
		p := interval.Uniform(300, k)
		flat := f.Flatten(p)
		if !numeric.AlmostEqual(numeric.Sum(flat), numeric.Sum(q), 1e-9) {
			t.Fatalf("k=%d: flattening changed total mass", k)
		}
	}
}

func TestFlattenErrorMatchesDense(t *testing.T) {
	r := rng.New(13)
	q := make([]float64, 128)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	f := FromDense(q)
	p := interval.Uniform(128, 9)
	flat := f.Flatten(p)
	want := numeric.L2Dist(flat, q)
	got := f.FlattenError(p)
	if !numeric.AlmostEqual(got, want, 1e-9) {
		t.Fatalf("FlattenError = %v, dense = %v", got, want)
	}
}

// Property: the flattening over any partition is the best piecewise-constant
// approximation with those pieces — perturbing any piece value increases the
// ℓ2 error.
func TestFlattenOptimalityProperty(t *testing.T) {
	f := func(seed uint32, kRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := 64
		q := make([]float64, n)
		for i := range q {
			q[i] = r.NormFloat64()
		}
		sf := FromDense(q)
		k := int(kRaw)%n + 1
		p := interval.Uniform(n, k)
		base := sf.FlattenError(p)
		flat := sf.Flatten(p)
		// Perturb one piece by ±0.1 and check error does not decrease.
		pi := int(seed) % len(p)
		for _, d := range []float64{0.1, -0.1} {
			mod := append([]float64(nil), flat...)
			for x := p[pi].Lo; x <= p[pi].Hi; x++ {
				mod[x-1] += d
			}
			if numeric.L2Dist(mod, q) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: FlattenError is monotone under refinement — finer partitions
// never have larger error.
func TestFlattenErrorRefinementProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 96
		q := make([]float64, n)
		for i := range q {
			q[i] = r.NormFloat64()
		}
		sf := FromDense(q)
		coarse := interval.Uniform(n, 4)
		fine := interval.Uniform(n, 16) // 16 = 4·4 pieces refine 4 uniform pieces of 96
		if !fine.Refines(coarse) {
			return true // only test when refinement holds structurally
		}
		return sf.FlattenError(fine) <= sf.FlattenError(coarse)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The hot-path accessors must not allocate: Sum/SumSq stream over the
// entries with a compensated accumulator instead of materializing a slice.
func TestHotPathAllocations(t *testing.T) {
	q := make([]float64, 5000)
	r := rng.New(23)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	f := FromDense(q)
	if allocs := testing.AllocsPerRun(10, func() { f.Sum() }); allocs > 0 {
		t.Fatalf("Sum allocates %v per call", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { f.SumSq() }); allocs > 0 {
		t.Fatalf("SumSq allocates %v per call", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { f.L2Norm() }); allocs > 0 {
		t.Fatalf("L2Norm allocates %v per call", allocs)
	}
}

// The streaming sums must agree bit for bit with the historical slice-based
// implementation (numeric.Sum over the materialized values).
func TestStreamingSumsMatchSliceSums(t *testing.T) {
	r := rng.New(29)
	q := make([]float64, 10000)
	for i := range q {
		q[i] = r.NormFloat64() * 1e6
	}
	f := FromDense(q)
	vals := make([]float64, 0, len(q))
	sqs := make([]float64, 0, len(q))
	for _, e := range f.Entries() {
		vals = append(vals, e.Value)
		sqs = append(sqs, e.Value*e.Value)
	}
	if got, want := f.Sum(), numeric.Sum(vals); got != want {
		t.Fatalf("Sum = %v, slice-based %v", got, want)
	}
	if got, want := f.SumSq(), numeric.Sum(sqs); got != want {
		t.Fatalf("SumSq = %v, slice-based %v", got, want)
	}
}
