package stream

import (
	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/sparse"
)

// Checkpoint is an immutable capture of a sharded engine's state: every
// shard's installed summary view plus its pending updates, detached from the
// live engine. It exists for serving layers that stream snapshots to remote
// replicas: Capture runs in O(pending) under the shard locks and NEVER waits
// for an in-flight background compaction (an in-flight log is captured as
// pending updates instead), so a snapshot request cannot stall behind a
// merging run the way Sharded.Snapshot can. Encoding — the expensive half —
// happens afterwards via WriteTo, outside every lock, against state no later
// ingestion can touch.
//
// The captured state is exact: the checkpoint represents the same maintained
// vector as the engine at capture time, and a Sharded restored from it (via
// RestoreSharded) answers every EstimateRange bit-identically to the source
// at the moment of capture — the pending-update scan visits the captured
// entries in the same arrival order the source scans its in-flight + active
// logs. What Checkpoint trades away against Snapshot is only the
// *resume-cadence* guarantee: because an in-flight compaction's log is
// demoted back to pending, the restored engine may group future merging runs
// differently than the uninterrupted engine would have. Replication wants
// the non-blocking capture; crash-restart wants Snapshot's bit-identical
// resume.
type Checkpoint struct {
	n, k      int
	opts      core.Options
	bufferCap int
	states    []maintainerState
	// epoch and versions are the replication coordinates of the capture:
	// the engine instance it came from and, per shard, the version counter
	// at the moment that shard was captured (read under the same lock as
	// the state, so the pair is consistent). AppendDelta uses them to emit
	// {shard, fromVersion, toVersion} triples.
	epoch    uint64
	versions []uint64
	// windowEpochs is the captured engine's sliding-window span (0 when
	// plain); when set, every state carries its epoch ring and WriteTo emits
	// the TagWindowed envelope instead of TagSharded.
	windowEpochs int
}

// Checkpoint captures the engine's current state without waiting for
// background compactions. Shards are visited one at a time under their
// locks, giving the same per-shard consistency Summary and Snapshot offer
// under concurrent ingestion: each shard contributes exactly the updates it
// had absorbed when visited.
func (s *Sharded) Checkpoint() (*Checkpoint, error) {
	c := &Checkpoint{
		n: s.n, k: s.k, opts: s.opts,
		bufferCap: s.shards[0].bufCap,
		states:    make([]maintainerState, len(s.shards)),
		epoch:        s.epoch,
		versions:     make([]uint64, len(s.shards)),
		windowEpochs: s.windowEpochs,
	}
	var combined []sparse.Entry
	for i, sh := range s.shards {
		sh.mu.Lock()
		if sh.err != nil {
			err := sh.err
			sh.mu.Unlock()
			return nil, err
		}
		// The in-flight log (if a compaction is running) precedes the active
		// log in arrival order; captured together they are exactly the
		// updates the installed view does not yet contain. Both are safe to
		// read under mu: the compactor only reads inflight, and install runs
		// under mu.
		combined = combined[:0]
		combined = append(combined, sh.inflight...)
		combined = append(combined, sh.active...)
		c.states[i] = captureState(sh.m, combined)
		c.states[i].updates = sh.updates
		c.versions[i] = sh.version
		sh.mu.Unlock()
	}
	return c, nil
}

// Shards returns the captured shard count.
func (c *Checkpoint) Shards() int { return len(c.states) }

// Epoch returns the captured engine's replication epoch.
func (c *Checkpoint) Epoch() uint64 { return c.epoch }

// Versions appends the captured per-shard version vector to dst and returns
// it. Comparable only against vectors from the same Epoch.
func (c *Checkpoint) Versions(dst []uint64) []uint64 {
	return append(dst[:0], c.versions...)
}

// Updates returns the total updates the captured engine had ingested.
func (c *Checkpoint) Updates() int {
	total := 0
	for i := range c.states {
		total += c.states[i].updates
	}
	return total
}

// WriteTo encodes the checkpoint as one TagSharded binary envelope — the
// same format Sharded.Snapshot writes, so RestoreSharded (and the top-level
// Decode) reads it. A checkpoint is immutable: WriteTo may be called any
// number of times and always emits identical bytes.
func (c *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	if c.windowEpochs > 0 {
		return writeWindowedSharded(w, c.n, c.k, c.opts, c.bufferCap, c.windowEpochs, c.states)
	}
	enc := codec.NewWriter(w, codec.TagSharded)
	encodeConfig(enc, c.n, c.k, c.opts, c.bufferCap)
	enc.Int(len(c.states))
	for i := range c.states {
		c.states[i].encode(enc)
	}
	err := enc.Close()
	return enc.Len(), err
}
