package stream

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestCheckpointMatchesSnapshotWhenQuiet pins the wire compatibility of the
// non-blocking checkpoint: on a quiet engine (no in-flight compaction) it
// must emit byte-identical envelopes to Snapshot, and repeated WriteTo calls
// must be byte-identical to each other.
func TestCheckpointMatchesSnapshotWhenQuiet(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Workers = 1
	s, err := NewSharded(3000, 5, 3, 256, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := s.Add(1+(i*17)%3000, 1+float64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce: Summary drains every shard, so no compaction is in flight and
	// the pending logs are empty — Checkpoint and Snapshot then capture the
	// identical state.
	if _, err := s.Summary(); err != nil {
		t.Fatal(err)
	}
	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var a, b, snap bytes.Buffer
	if _, err := ckpt.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("checkpoint WriteTo is not deterministic")
	}
	if err := s.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), snap.Bytes()) {
		t.Fatal("quiet-engine checkpoint differs from Snapshot")
	}
	if ckpt.Shards() != 3 {
		t.Fatalf("Shards() = %d", ckpt.Shards())
	}
	if ckpt.Updates() != 2000 {
		t.Fatalf("Updates() = %d", ckpt.Updates())
	}
}

// TestCheckpointBitIdenticalEstimates checks the capture-time contract: a
// Sharded restored from a checkpoint — including one taken with pending
// uncompacted updates — answers EstimateRange bit-identically to the source
// at the moment of capture.
func TestCheckpointBitIdenticalEstimates(t *testing.T) {
	const n = 2500
	opts := core.DefaultOptions()
	opts.Workers = 1
	s, err := NewSharded(n, 4, 2, 4096, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Seed enough to compact, then leave a pending tail below the buffer
	// capacity so the checkpoint carries live uncompacted updates.
	for i := 0; i < 9000; i++ {
		if err := s.Add(1+(i*31)%n, 1+float64(i%3)/2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Summary(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := s.Add(1+(i*13)%n, 2.5); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ckpt.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSharded(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Updates() != s.Updates() {
		t.Fatalf("restored %d updates, source %d", restored.Updates(), s.Updates())
	}
	for _, r := range [][2]int{{1, n}, {1, 1}, {n, n}, {n / 3, 2 * n / 3}, {7, 8}} {
		want, err1 := s.EstimateRange(r[0], r[1])
		got, err2 := restored.EstimateRange(r[0], r[1])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("EstimateRange(%d, %d) = %v restored, %v source", r[0], r[1], got, want)
		}
	}
}

// TestCheckpointUnderConcurrentIngest hammers Checkpoint while producers
// ingest: every capture must encode to a decodable envelope whose total
// mass accounts for a prefix of each producer's stream (per-shard
// consistency), and captures must never deadlock against background
// compactions. Run under -race by CI.
func TestCheckpointUnderConcurrentIngest(t *testing.T) {
	const (
		n         = 4000
		producers = 3
		perProd   = 3000
	)
	opts := core.DefaultOptions()
	opts.Workers = 1
	s, err := NewSharded(n, 6, 4, 128, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if err := s.Add(1+(p*7919+i*29)%n, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	captures := 0
	for {
		ckpt, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ckpt.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreSharded(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("capture %d does not decode: %v", captures, err)
		}
		total, err := restored.EstimateRange(1, n)
		if err != nil {
			t.Fatal(err)
		}
		if total < -0.5 || total > producers*perProd+0.5 {
			t.Fatalf("capture %d: mass %v outside [0, %d]", captures, total, producers*perProd)
		}
		captures++
		if captures >= 50 {
			break
		}
	}
	wg.Wait()
	// Final capture after all producers stop must hold every update.
	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Updates() != producers*perProd {
		t.Fatalf("final capture has %d updates, want %d", ckpt.Updates(), producers*perProd)
	}
}
