package stream

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/sparse"
)

// Delta checkpoints: replication proportional to change, not state.
//
// A full TagSharded envelope re-ships every shard on every sync even when one
// shard changed. The delta frame (TagShardedDelta, or TagShardedDeltaW for a
// windowed engine) instead carries a header of {shard, fromVersion,
// toVersion} triples plus ONLY the changed shards' summary views and pending
// logs. Versions are the per-shard counters
// Sharded maintains (bumped on every pending-log mutation and every
// compaction install), captured consistently with the state by Checkpoint;
// the epoch scopes them to one engine life, so a restarted primary can never
// alias a replica's stale vector.
//
// The frame is built with the append-style zero-copy builder (one CRC-32C
// pass over the finished region) and parsed in place from a single buffer —
// the same machinery as the binary query bodies, because delta frames are
// serving-layer wire artifacts, not persistent snapshots. A delta built with
// a nil since-vector includes every shard with fromVersion 0: the "complete"
// delta, which doubles as the full-resync payload (a replica can rebuild an
// engine from it with no prior state).

// AppendDelta appends one complete delta envelope to dst and returns the
// extended slice: TagShardedDelta for a plain engine (the layout every
// release has shipped) or TagShardedDeltaW for a windowed one, which adds
// the window span to the header and each carried shard's epoch ring after
// its state. since is the requesting replica's version vector (from this
// checkpoint's epoch): shards whose captured version differs from since[i]
// are included with fromVersion since[i]. A nil since requests a complete
// delta: every shard, fromVersion 0. A checkpoint is immutable, so repeated
// calls with the same since emit identical bytes.
func (c *Checkpoint) AppendDelta(dst []byte, since []uint64) ([]byte, error) {
	if since != nil && len(since) != len(c.states) {
		return nil, fmt.Errorf("stream: since vector has %d entries for %d shards", len(since), len(c.states))
	}
	start := len(dst)
	tag := codec.TagShardedDelta
	if c.windowEpochs > 0 {
		tag = codec.TagShardedDeltaW
	}
	dst = codec.AppendFrameHeader(dst, tag)
	dst = codec.AppendUvarint(dst, uint64(c.n))
	dst = codec.AppendUvarint(dst, uint64(c.k))
	dst = codec.AppendFloat64(dst, c.opts.Delta)
	dst = codec.AppendFloat64(dst, c.opts.Gamma)
	dst = codec.AppendVarint(dst, int64(c.opts.Workers))
	dst = codec.AppendUvarint(dst, uint64(c.bufferCap))
	if c.windowEpochs > 0 {
		dst = codec.AppendUvarint(dst, uint64(c.windowEpochs))
	}
	dst = codec.AppendUvarint(dst, c.epoch)
	dst = codec.AppendUvarint(dst, uint64(len(c.states)))
	changed := make([]int, 0, len(c.states))
	for i := range c.states {
		if since == nil || c.versions[i] != since[i] {
			changed = append(changed, i)
		}
	}
	dst = codec.AppendUvarint(dst, uint64(len(changed)))
	for _, i := range changed {
		var from uint64
		if since != nil {
			from = since[i]
		}
		dst = codec.AppendUvarint(dst, uint64(i))
		dst = codec.AppendUvarint(dst, from)
		dst = codec.AppendUvarint(dst, c.versions[i])
	}
	var vals []float64
	for _, i := range changed {
		dst, vals = appendState(dst, &c.states[i], vals)
		if c.windowEpochs > 0 {
			// A windowed engine's shard state includes its epoch ring: the
			// sealed summaries are version-bearing state (Advance bumps the
			// shard version), so a delta must carry them.
			dst = appendRing(dst, c.states[i].ring)
		}
	}
	return codec.FinishFrame(dst, start), nil
}

// appendRing appends one epoch ring in the same shape encodeRing writes.
func appendRing(dst []byte, r *capturedRing) []byte {
	dst = codec.AppendUvarint(dst, r.tick)
	dst = codec.AppendUvarint(dst, uint64(len(r.slots)))
	for _, h := range r.slots {
		pieces := h.Pieces()
		ends := make([]int, len(pieces))
		vals := make([]float64, len(pieces))
		for i, pc := range pieces {
			ends[i] = pc.Hi
			vals[i] = pc.Value
		}
		dst = codec.AppendDeltaInts(dst, ends)
		dst = codec.AppendPackedFloat64s(dst, vals)
	}
	return dst
}

// appendState appends one shard state in the same shape maintainerState.encode
// writes: counters, view flag (+ boundaries, packed values, certified error),
// then the pending log as indices followed by packed values. vals is scratch
// reused across shards.
func appendState(dst []byte, st *maintainerState, vals []float64) ([]byte, []float64) {
	dst = codec.AppendUvarint(dst, uint64(st.updates))
	dst = codec.AppendUvarint(dst, uint64(st.compactions))
	if st.hasView {
		dst = append(dst, 1)
		dst = codec.AppendDeltaInts(dst, st.ends)
		dst = codec.AppendPackedFloat64s(dst, st.values)
		dst = codec.AppendFloat64(dst, st.viewErr)
	} else {
		dst = append(dst, 0)
	}
	dst = codec.AppendUvarint(dst, uint64(len(st.log)))
	vals = vals[:0]
	for _, e := range st.log {
		dst = codec.AppendUvarint(dst, uint64(e.Index))
		vals = append(vals, e.Value)
	}
	dst = codec.AppendPackedFloat64s(dst, vals)
	return dst, vals
}

// ShardedDelta is a parsed, validated delta frame, ready to apply.
type ShardedDelta struct {
	n, k      int
	opts      core.Options
	bufferCap int
	// windowEpochs is the source engine's sliding-window span (0 when
	// plain); when set, every carried state's ring field holds its epoch
	// ring.
	windowEpochs int
	epoch        uint64
	total        int
	shards       []int
	from, to     []uint64
	states       []maintainerState
}

// Epoch returns the engine epoch the delta was captured from.
func (d *ShardedDelta) Epoch() uint64 { return d.epoch }

// TotalShards returns the shard count of the source engine.
func (d *ShardedDelta) TotalShards() int { return d.total }

// ChangedShards returns how many shards the delta carries.
func (d *ShardedDelta) ChangedShards() int { return len(d.shards) }

// Shard returns the j-th carried shard's index and version transition.
func (d *ShardedDelta) Shard(j int) (shard int, from, to uint64) {
	return d.shards[j], d.from[j], d.to[j]
}

// ToVersions returns the version vector a replica holds after applying the
// delta on top of base (the replica's current vector, nil for a complete
// delta): carried shards move to their toVersion, the rest keep base.
func (d *ShardedDelta) ToVersions(base []uint64) []uint64 {
	out := make([]uint64, d.total)
	copy(out, base)
	for j, idx := range d.shards {
		out[idx] = d.to[j]
	}
	return out
}

// Complete reports whether the delta carries every shard from version zero —
// a self-contained full state a replica can rebuild an engine from with no
// prior state (see NewShardedFromDelta).
func (d *ShardedDelta) Complete() bool {
	if len(d.shards) != d.total {
		return false
	}
	for _, f := range d.from {
		if f != 0 {
			return false
		}
	}
	return true
}

// payloadInt reads a non-negative counter with Reader.Int's bound (counters
// like updates legitimately exceed the SliceLen sanity bound).
func payloadInt(p *codec.FramePayload) (int, error) {
	u, err := p.Uvarint()
	if err != nil {
		return 0, err
	}
	if u > (1 << 62) {
		return 0, fmt.Errorf("stream: integer %d out of range", u)
	}
	return int(u), nil
}

// ParseShardedDelta validates one complete delta frame (magic, version, tag,
// CRC-32C footer) and decodes it in place — states reference freshly decoded
// slices, never the input buffer, so the frame buffer may be recycled after
// the call. Both layouts are accepted: TagShardedDelta (plain engine) and
// TagShardedDeltaW (windowed engine, with the window span and per-shard
// epoch rings). Every shape and range check decodeState applies to full
// checkpoints is applied here, plus the delta-specific ones: strictly
// increasing shard indices inside the engine's shard count, and per-shard
// version transitions that do not go backwards.
func ParseShardedDelta(frame []byte) (*ShardedDelta, error) {
	tag, payload, err := codec.ParseFrame(frame)
	if err != nil {
		return nil, err
	}
	if tag != codec.TagShardedDelta && tag != codec.TagShardedDeltaW {
		return nil, fmt.Errorf("stream: envelope holds type tag %d, not a sharded delta", tag)
	}
	p := codec.NewFramePayload(payload)
	d := &ShardedDelta{}
	if d.n, err = payloadInt(&p); err != nil {
		return nil, err
	}
	if d.k, err = payloadInt(&p); err != nil {
		return nil, err
	}
	if d.opts.Delta, err = p.FiniteFloat64(); err != nil {
		return nil, err
	}
	if d.opts.Gamma, err = p.FiniteFloat64(); err != nil {
		return nil, err
	}
	workers, err := p.Varint()
	if err != nil {
		return nil, err
	}
	d.opts.Workers = int(workers)
	if d.bufferCap, err = payloadInt(&p); err != nil {
		return nil, err
	}
	if d.n < 1 || d.k < 1 {
		return nil, fmt.Errorf("stream: delta with n=%d, k=%d", d.n, d.k)
	}
	if err := d.opts.Validate(); err != nil {
		return nil, err
	}
	if d.bufferCap < 1 {
		return nil, fmt.Errorf("stream: delta with buffer capacity %d", d.bufferCap)
	}
	if tag == codec.TagShardedDeltaW {
		if d.windowEpochs, err = payloadInt(&p); err != nil {
			return nil, err
		}
		if d.windowEpochs < 1 {
			return nil, fmt.Errorf("stream: windowed delta with a %d-epoch window", d.windowEpochs)
		}
	}
	if d.epoch, err = p.Uvarint(); err != nil {
		return nil, err
	}
	if d.total, err = p.SliceLen(); err != nil {
		return nil, err
	}
	if d.total < 1 {
		return nil, fmt.Errorf("stream: delta with %d shards", d.total)
	}
	changed, err := p.SliceLen()
	if err != nil {
		return nil, err
	}
	if changed > d.total {
		return nil, fmt.Errorf("stream: delta carries %d of %d shards", changed, d.total)
	}
	d.shards = make([]int, changed)
	d.from = make([]uint64, changed)
	d.to = make([]uint64, changed)
	prev := -1
	for j := 0; j < changed; j++ {
		idx, err := payloadInt(&p)
		if err != nil {
			return nil, err
		}
		if idx <= prev || idx >= d.total {
			return nil, fmt.Errorf("stream: delta shard index %d after %d (of %d)", idx, prev, d.total)
		}
		prev = idx
		d.shards[j] = idx
		if d.from[j], err = p.Uvarint(); err != nil {
			return nil, err
		}
		if d.to[j], err = p.Uvarint(); err != nil {
			return nil, err
		}
		if d.to[j] < d.from[j] {
			return nil, fmt.Errorf("stream: shard %d version going backwards (%d → %d)", idx, d.from[j], d.to[j])
		}
	}
	d.states = make([]maintainerState, changed)
	for j := range d.states {
		if d.states[j], err = parseStatePayload(&p, d.n); err != nil {
			return nil, fmt.Errorf("stream: delta shard %d: %w", d.shards[j], err)
		}
		// Pre-validate the partition now so ApplyDelta cannot fail midway
		// through mutating a live engine on a malformed frame.
		if d.states[j].hasView {
			if _, err := interval.FromBoundaries(d.n, d.states[j].ends); err != nil {
				return nil, fmt.Errorf("stream: delta shard %d summary: %w", d.shards[j], err)
			}
		}
		if d.windowEpochs > 0 {
			// Ring slots are fully validated here (FromBoundaries +
			// NewHistogram), so applying them later cannot fail midway.
			if d.states[j].ring, err = parseRingPayload(&p, d.n, d.windowEpochs); err != nil {
				return nil, fmt.Errorf("stream: delta shard %d: %w", d.shards[j], err)
			}
		}
	}
	if err := p.Done(); err != nil {
		return nil, err
	}
	return d, nil
}

// parseStatePayload is decodeState over a zero-copy frame cursor.
func parseStatePayload(p *codec.FramePayload, n int) (maintainerState, error) {
	var st maintainerState
	var err error
	if st.updates, err = payloadInt(p); err != nil {
		return st, err
	}
	if st.compactions, err = payloadInt(p); err != nil {
		return st, err
	}
	flag, err := p.Byte()
	if err != nil {
		return st, err
	}
	switch flag {
	case 0:
	case 1:
		st.hasView = true
		if st.ends, err = p.DeltaInts(); err != nil {
			return st, err
		}
		if st.values, err = p.PackedFloat64s(nil); err != nil {
			return st, err
		}
		if len(st.values) != len(st.ends) {
			return st, fmt.Errorf("%d view values for %d pieces", len(st.values), len(st.ends))
		}
		if st.viewErr, err = p.FiniteFloat64(); err != nil {
			return st, err
		}
		if st.viewErr < 0 {
			return st, fmt.Errorf("negative summary error %v", st.viewErr)
		}
	default:
		return st, fmt.Errorf("bad view flag %d", flag)
	}
	logLen, err := p.SliceLen()
	if err != nil {
		return st, err
	}
	idxs := make([]int, logLen)
	for i := range idxs {
		if idxs[i], err = payloadInt(p); err != nil {
			return st, err
		}
		if idxs[i] < 1 || idxs[i] > n {
			return st, fmt.Errorf("buffered point %d out of [1, %d]", idxs[i], n)
		}
	}
	vals, err := p.PackedFloat64s(nil)
	if err != nil {
		return st, err
	}
	if len(vals) != logLen {
		return st, fmt.Errorf("%d buffered values for %d points", len(vals), logLen)
	}
	st.log = make([]sparse.Entry, logLen)
	for i := range st.log {
		st.log[i] = sparse.Entry{Index: idxs[i], Value: vals[i]}
	}
	return st, nil
}

// parseRingPayload is decodeRing over a zero-copy frame cursor.
func parseRingPayload(p *codec.FramePayload, n, epochs int) (*capturedRing, error) {
	tick, err := p.Uvarint()
	if err != nil {
		return nil, err
	}
	count, err := p.SliceLen()
	if err != nil {
		return nil, err
	}
	if count > epochs-1 {
		return nil, fmt.Errorf("%d sealed epochs in a %d-epoch window", count, epochs)
	}
	if uint64(count) > tick {
		return nil, fmt.Errorf("%d sealed epochs after %d ticks", count, tick)
	}
	ring := &capturedRing{tick: tick}
	for i := 0; i < count; i++ {
		ends, err := p.DeltaInts()
		if err != nil {
			return nil, err
		}
		vals, err := p.PackedFloat64s(nil)
		if err != nil {
			return nil, err
		}
		if len(vals) != len(ends) {
			return nil, fmt.Errorf("epoch slot with %d values for %d pieces", len(vals), len(ends))
		}
		part, err := interval.FromBoundaries(n, ends)
		if err != nil {
			return nil, fmt.Errorf("epoch slot %d: %w", i, err)
		}
		ring.slots = append(ring.slots, core.NewHistogram(n, part, vals))
	}
	return ring, nil
}

// replaceState swaps the maintainer's entire checkpoint-observable state for
// a decoded one, dropping any staged-but-uninstalled view and the memoized
// histogram. Unlike apply (which only installs onto a fresh maintainer), a
// replacement must also clear a previously installed view when the incoming
// state has none.
func (m *Maintainer) replaceState(st *maintainerState) error {
	m.hist = nil
	m.staged = summaryView{}
	m.stagedOK = false
	if !st.hasView {
		m.updates = st.updates
		m.compactions = st.compactions
		m.view = summaryView{}
		return nil
	}
	return st.apply(m)
}

// NewShardedFromDelta rebuilds a fresh engine from a complete delta — the
// full-resync path: a replica with no usable base state (fresh boot, restart,
// epoch change) asks the primary for a nil-since delta and reconstructs. The
// rebuilt engine answers EstimateRange bit-identically to the source at
// capture, like RestoreSharded from a full envelope.
func NewShardedFromDelta(d *ShardedDelta) (*Sharded, error) {
	if !d.Complete() {
		return nil, fmt.Errorf("stream: delta carries %d of %d shards — not a complete state", len(d.shards), d.total)
	}
	var s *Sharded
	var err error
	if d.windowEpochs > 0 {
		s, err = NewWindowedSharded(d.n, d.k, d.windowEpochs, d.total, d.bufferCap, d.opts)
	} else {
		s, err = NewSharded(d.n, d.k, d.total, d.bufferCap, d.opts)
	}
	if err != nil {
		return nil, err
	}
	for j, idx := range d.shards {
		sh := s.shards[idx]
		st := &d.states[j]
		if err := st.apply(sh.m); err != nil {
			return nil, fmt.Errorf("stream: shard %d: %w", idx, err)
		}
		if st.ring != nil {
			st.ring.install(sh.m)
		}
		sh.updates = st.updates
		if len(st.log) > cap(sh.active) {
			sh.active = make([]sparse.Entry, 0, len(st.log))
		}
		sh.active = append(sh.active[:0], st.log...)
	}
	return s, nil
}

// ApplyDelta swaps ONLY the named shards' states into the live engine —
// the in-place half of delta replication. Each carried shard is replaced
// under its lock (waiting out an in-flight compaction first, like Snapshot),
// so concurrent readers serve either the old or the new state of a shard,
// never a torn one. The caller is responsible for version bookkeeping: this
// method checks only that the delta's shape matches the engine (domain,
// piece budget, merging options, shard count, buffer capacity); whether
// fromVersions match the replica's tracked vector is the serving layer's
// check, since a bare engine does not know which fleet vector it embodies.
func (s *Sharded) ApplyDelta(d *ShardedDelta) error {
	if d.n != s.n || d.k != s.k {
		return fmt.Errorf("stream: delta for n=%d k=%d against engine n=%d k=%d", d.n, d.k, s.n, s.k)
	}
	if d.total != len(s.shards) {
		return fmt.Errorf("stream: delta for %d shards against engine with %d", d.total, len(s.shards))
	}
	if d.bufferCap != s.shards[0].bufCap {
		return fmt.Errorf("stream: delta buffer capacity %d against engine's %d", d.bufferCap, s.shards[0].bufCap)
	}
	if d.opts.Delta != s.opts.Delta || d.opts.Gamma != s.opts.Gamma {
		return fmt.Errorf("stream: delta merging options (δ=%v, γ=%v) against engine's (δ=%v, γ=%v)",
			d.opts.Delta, d.opts.Gamma, s.opts.Delta, s.opts.Gamma)
	}
	if d.windowEpochs != s.windowEpochs {
		return fmt.Errorf("stream: delta with %d-epoch window against engine's %d", d.windowEpochs, s.windowEpochs)
	}
	for j, idx := range d.shards {
		sh := s.shards[idx]
		sh.mu.Lock()
		for sh.compacting {
			sh.cond.Wait()
		}
		if sh.err != nil {
			err := sh.err
			sh.mu.Unlock()
			return err
		}
		st := &d.states[j]
		if err := sh.m.replaceState(st); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("stream: shard %d: %w", idx, err)
		}
		if st.ring != nil {
			st.ring.install(sh.m)
		}
		sh.updates = st.updates
		if len(st.log) > cap(sh.active) {
			sh.active = make([]sparse.Entry, 0, len(st.log))
		}
		sh.active = append(sh.active[:0], st.log...)
		sh.version++
		sh.mu.Unlock()
	}
	return nil
}
