package stream

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
)

// assertSameEstimates fails unless replica answers every probe range
// bit-identically to primary.
func assertSameEstimates(t *testing.T, primary, replica *Sharded, n int) {
	t.Helper()
	for _, r := range [][2]int{{1, n}, {1, 1}, {n, n}, {n / 3, 2 * n / 3}, {2, 5}} {
		want, err1 := primary.EstimateRange(r[0], r[1])
		got, err2 := replica.EstimateRange(r[0], r[1])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("EstimateRange(%d, %d) = %v replica, %v primary", r[0], r[1], got, want)
		}
	}
}

// TestShardVersionsMonotone pins the version counters' contract: zero at
// birth, bumped by pending-log appends and by compaction installs, never
// decreasing, and captured consistently by Checkpoint.
func TestShardVersionsMonotone(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Workers = 1
	s, err := NewSharded(1000, 4, 3, 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch() == 0 {
		t.Fatal("engine epoch is zero")
	}
	v0 := s.Versions(nil)
	if len(v0) != 3 {
		t.Fatalf("Versions has %d entries", len(v0))
	}
	for i, v := range v0 {
		if v != 0 {
			t.Fatalf("fresh shard %d at version %d", i, v)
		}
	}
	pt := 1
	for s.ShardOf(pt) != 0 {
		pt++
	}
	if err := s.Add(pt, 1); err != nil {
		t.Fatal(err)
	}
	v1 := s.Versions(nil)
	if v1[0] != 1 || v1[1] != 0 || v1[2] != 0 {
		t.Fatalf("after one add to shard 0: versions %v", v1)
	}
	// A drain-compact (Summary) must bump the shard again: the install
	// changes the captured state even though no new update arrived.
	if _, err := s.Summary(); err != nil {
		t.Fatal(err)
	}
	v2 := s.Versions(nil)
	if v2[0] <= v1[0] {
		t.Fatalf("compaction install did not bump shard 0: %v -> %v", v1, v2)
	}
	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Epoch() != s.Epoch() {
		t.Fatalf("checkpoint epoch %d, engine %d", ckpt.Epoch(), s.Epoch())
	}
	cv := ckpt.Versions(nil)
	for i := range cv {
		if cv[i] != v2[i] {
			t.Fatalf("checkpoint versions %v, engine %v", cv, v2)
		}
	}
	// AddBatch bumps every shard it lands on.
	if err := s.AddBatch([]int{1, 2, 3, 4, 5, 6, 7, 8}, []float64{1, 1, 1, 1, 1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	v3 := s.Versions(nil)
	bumped := 0
	for i := range v3 {
		if v3[i] < v2[i] {
			t.Fatalf("version went backwards on shard %d: %v -> %v", i, v2, v3)
		}
		if v3[i] > v2[i] {
			bumped++
		}
	}
	if bumped == 0 {
		t.Fatal("AddBatch bumped no shard version")
	}
}

// TestDeltaCompleteRoundTrip pins the full-resync path: a nil-since delta is
// complete, parses back, and rebuilds an engine answering bit-identically.
func TestDeltaCompleteRoundTrip(t *testing.T) {
	const n = 2500
	opts := core.DefaultOptions()
	opts.Workers = 1
	s, err := NewSharded(n, 4, 4, 4096, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9000; i++ {
		if err := s.Add(1+(i*31)%n, 1+float64(i%3)/2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Summary(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := s.Add(1+(i*13)%n, 2.5); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := ckpt.AppendDelta(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ckpt.AppendDelta(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Fatal("AppendDelta is not deterministic")
	}
	d, err := ParseShardedDelta(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Complete() {
		t.Fatal("nil-since delta is not complete")
	}
	if d.Epoch() != s.Epoch() || d.TotalShards() != 4 || d.ChangedShards() != 4 {
		t.Fatalf("epoch %d shards %d/%d", d.Epoch(), d.ChangedShards(), d.TotalShards())
	}
	tv := d.ToVersions(nil)
	cv := ckpt.Versions(nil)
	for i := range tv {
		if tv[i] != cv[i] {
			t.Fatalf("ToVersions %v, checkpoint %v", tv, cv)
		}
	}
	replica, err := NewShardedFromDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if replica.Updates() != s.Updates() {
		t.Fatalf("replica %d updates, primary %d", replica.Updates(), s.Updates())
	}
	assertSameEstimates(t, s, replica, n)
}

// TestDeltaShipsOnlyChangedShards pins the payload-proportionality contract:
// after touching a single shard, a since-delta names exactly that shard and
// is far smaller than the complete frame, and applying it brings a replica
// back to bit-identity.
func TestDeltaShipsOnlyChangedShards(t *testing.T) {
	const n = 3000
	opts := core.DefaultOptions()
	opts.Workers = 1
	s, err := NewSharded(n, 5, 8, 4096, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12000; i++ {
		if err := s.Add(1+(i*17)%n, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Summary(); err != nil {
		t.Fatal(err)
	}
	base, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	full, err := base.AppendDelta(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d0, err := ParseShardedDelta(full)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := NewShardedFromDelta(d0)
	if err != nil {
		t.Fatal(err)
	}
	tracked := base.Versions(nil)

	// Touch only points routed to shard 0.
	pts := make([]int, 0, 40)
	for i := 1; len(pts) < 40; i++ {
		if s.ShardOf(i) == 0 {
			pts = append(pts, i)
		}
	}
	for _, p := range pts {
		if err := s.Add(p, 3); err != nil {
			t.Fatal(err)
		}
	}
	next, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := next.AppendDelta(nil, tracked)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseShardedDelta(frame)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChangedShards() != 1 {
		t.Fatalf("delta carries %d shards, want 1", d.ChangedShards())
	}
	shard, from, to := d.Shard(0)
	if shard != 0 {
		t.Fatalf("delta names shard %d, want 0", shard)
	}
	if from != tracked[0] || to <= from {
		t.Fatalf("shard 0 transition %d -> %d (tracked %d)", from, to, tracked[0])
	}
	if d.Complete() {
		t.Fatal("one-shard delta claims to be complete")
	}
	if len(frame) >= len(full)/4 {
		t.Fatalf("1-of-8-shard delta is %d bytes, full frame %d", len(frame), len(full))
	}
	if err := replica.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	assertSameEstimates(t, s, replica, n)
}

// TestDeltaMultiRoundSync drives a replica through many sync rounds —
// pending-only deltas, post-compaction deltas, empty deltas — checking
// bit-identity after every round. This is the engine-level core of the
// replication acceptance property.
func TestDeltaMultiRoundSync(t *testing.T) {
	const n = 2000
	opts := core.DefaultOptions()
	opts.Workers = 1
	s, err := NewSharded(n, 4, 4, 8192, opts)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	full, err := base.AppendDelta(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d0, err := ParseShardedDelta(full)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := NewShardedFromDelta(d0)
	if err != nil {
		t.Fatal(err)
	}
	tracked := base.Versions(nil)
	for round := 0; round < 12; round++ {
		switch round % 3 {
		case 0: // skewed pending tail
			for i := 0; i < 150; i++ {
				if err := s.Add(1+(round*7919+i*13)%n, 1+float64(i%5)); err != nil {
					t.Fatal(err)
				}
			}
		case 1: // force compaction installs, ship replaced views
			for i := 0; i < 300; i++ {
				if err := s.Add(1+(round*104729+i*29)%n, 0.5); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Summary(); err != nil {
				t.Fatal(err)
			}
		case 2: // no ingest at all: the delta must be empty
		}
		ckpt, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		frame, err := ckpt.AppendDelta(nil, tracked)
		if err != nil {
			t.Fatal(err)
		}
		d, err := ParseShardedDelta(frame)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round%3 == 2 && d.ChangedShards() != 0 {
			t.Fatalf("round %d: quiet engine shipped %d shards", round, d.ChangedShards())
		}
		if err := replica.ApplyDelta(d); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		tracked = d.ToVersions(tracked)
		cv := ckpt.Versions(nil)
		for i := range cv {
			if tracked[i] != cv[i] {
				t.Fatalf("round %d: tracked %v, checkpoint %v", round, tracked, cv)
			}
		}
		if replica.Updates() != s.Updates() {
			t.Fatalf("round %d: replica %d updates, primary %d", round, replica.Updates(), s.Updates())
		}
		assertSameEstimates(t, s, replica, n)
	}
}

// TestDeltaErrorPaths pins the decode and apply guardrails: corruption,
// truncation, foreign tags, mismatched engines, and misuse all surface typed
// errors instead of panics or silent misapplication.
func TestDeltaErrorPaths(t *testing.T) {
	const n = 1200
	opts := core.DefaultOptions()
	opts.Workers = 1
	s, err := NewSharded(n, 4, 2, 256, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		if err := s.Add(1+(i*7)%n, 1); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := ckpt.AppendDelta(nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ckpt.AppendDelta(nil, make([]uint64, 5)); err == nil {
		t.Fatal("AppendDelta accepted a wrong-length since vector")
	}

	// Corrupt one payload byte: the CRC footer must catch it.
	bad := append([]byte(nil), frame...)
	bad[len(bad)/2] ^= 0x40
	if _, err := ParseShardedDelta(bad); !errors.Is(err, codec.ErrChecksum) {
		t.Fatalf("corrupted frame: %v, want ErrChecksum", err)
	}
	// Truncation at every prefix must error, never panic.
	for cut := 0; cut < len(frame); cut += 7 {
		if _, err := ParseShardedDelta(frame[:cut]); err == nil {
			t.Fatalf("truncated frame of %d bytes parsed", cut)
		}
	}
	// A full snapshot envelope is a valid frame with the wrong tag.
	var snap bytes.Buffer
	if _, err := ckpt.WriteTo(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseShardedDelta(snap.Bytes()); err == nil {
		t.Fatal("full snapshot envelope parsed as a delta")
	}

	d, err := ParseShardedDelta(frame)
	if err != nil {
		t.Fatal(err)
	}
	// Apply onto engines whose shape differs: domain, shard count, buffer.
	if other, err := NewSharded(n+1, 4, 2, 256, opts); err != nil {
		t.Fatal(err)
	} else if err := other.ApplyDelta(d); err == nil {
		t.Fatal("applied onto an engine with a different domain")
	}
	if other, err := NewSharded(n, 4, 3, 256, opts); err != nil {
		t.Fatal(err)
	} else if err := other.ApplyDelta(d); err == nil {
		t.Fatal("applied onto an engine with a different shard count")
	}
	if other, err := NewSharded(n, 4, 2, 512, opts); err != nil {
		t.Fatal(err)
	} else if err := other.ApplyDelta(d); err == nil {
		t.Fatal("applied onto an engine with a different buffer capacity")
	}

	// Rebuilding from a non-complete delta must refuse.
	tracked := ckpt.Versions(nil)
	for i := 0; i < 20; i++ {
		if err := s.Add(1+i, 1); err != nil {
			t.Fatal(err)
		}
	}
	next, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	partFrame, err := next.AppendDelta(nil, tracked)
	if err != nil {
		t.Fatal(err)
	}
	part, err := ParseShardedDelta(partFrame)
	if err != nil {
		t.Fatal(err)
	}
	if part.Complete() {
		t.Skip("every shard changed; cannot exercise the incomplete path")
	}
	if _, err := NewShardedFromDelta(part); err == nil {
		t.Fatal("rebuilt an engine from an incomplete delta")
	}
}

// TestDeltaTagMatchesEngineKind pins the wire-compatibility split: a plain
// engine's delta keeps the original TagShardedDelta layout (byte-stable
// across the windowed-engine upgrade, so old replicas of plain primaries
// keep working), while a windowed engine's delta is a distinct
// TagShardedDeltaW frame an old binary rejects loudly instead of
// misparsing. Both tags parse back to the engine kind that emitted them.
func TestDeltaTagMatchesEngineKind(t *testing.T) {
	const n, k, shards, bufCap = 500, 4, 2, 16
	plain, err := NewSharded(n, k, shards, bufCap, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := NewWindowedSharded(n, k, 3, shards, bufCap, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if err := plain.Add(i, 1); err != nil {
			t.Fatal(err)
		}
		if err := windowed.Add(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := windowed.Advance(); err != nil {
		t.Fatal(err)
	}
	frameFor := func(s *Sharded) []byte {
		cp, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		frame, err := cp.AppendDelta(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}
	pf, wf := frameFor(plain), frameFor(windowed)
	if pf[5] != codec.TagShardedDelta {
		t.Fatalf("plain delta tag = %#x, want TagShardedDelta (%#x)", pf[5], codec.TagShardedDelta)
	}
	if wf[5] != codec.TagShardedDeltaW {
		t.Fatalf("windowed delta tag = %#x, want TagShardedDeltaW (%#x)", wf[5], codec.TagShardedDeltaW)
	}
	pd, err := ParseShardedDelta(pf)
	if err != nil {
		t.Fatal(err)
	}
	if pd.windowEpochs != 0 {
		t.Fatalf("plain delta parsed with a %d-epoch window", pd.windowEpochs)
	}
	wd, err := ParseShardedDelta(wf)
	if err != nil {
		t.Fatal(err)
	}
	if wd.windowEpochs != 3 {
		t.Fatalf("windowed delta parsed with a %d-epoch window, want 3", wd.windowEpochs)
	}
	// Cross-application is a shape mismatch, not a misparse.
	if err := plain.ApplyDelta(wd); err == nil {
		t.Fatal("windowed delta applied to a plain engine")
	}
	if err := windowed.ApplyDelta(pd); err == nil {
		t.Fatal("plain delta applied to a windowed engine")
	}
}
