package stream

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// This file is the durability layer over the streaming engines: a
// DurableSharded (or DurableMaintainer) is the underlying engine plus a
// write-ahead log, so a crash loses at most the WAL's configured fsync
// window instead of everything since the last full snapshot.
//
// The invariant the locking protects: every update is appended to the WAL
// BEFORE it is applied to the engine, and a checkpoint captures the engine
// only when no update is between those two steps. Appends hold the RWMutex
// read-side (concurrent with each other — the WAL's group commit does the
// coalescing); a checkpoint takes the write side for just long enough to
// capture the engine (stream.Checkpoint, non-blocking) and rotate the log,
// so the boundary sequence number exactly covers the captured state. The
// expensive half — encoding the snapshot and committing the manifest —
// happens outside the lock while ingestion continues.
//
// Recovery restores the manifest's snapshot, NORMALIZES the restored
// pending logs (below), replays the WAL tail through the ordinary ingest
// path, and cuts a fresh checkpoint. Normalization is what makes recovery
// bit-identical: stream.Checkpoint demotes an in-flight compaction's log
// back to pending, so a restored shard can hold more than one compaction
// period of pending updates; folding prefix chunks of exactly bufCap
// re-aligns the compaction boundaries with the ones the uninterrupted run
// used, and compaction grouping is the only thing floating-point results
// are sensitive to. With a single producer the recovered engine's
// summaries, compaction counters, and EstimateRange answers are therefore
// bit-identical to an uninterrupted run over the same prefix — the
// property the crash tests assert.

// DurableOptions tunes the durability layer.
type DurableOptions struct {
	// Dir is the WAL directory (required).
	Dir string
	// SyncEvery / SyncInterval set the WAL's fsync batching (see
	// wal.Options). SyncEvery = 1 makes every ingest call wait for a
	// group-commit fsync.
	SyncEvery    int
	SyncInterval time.Duration
	// CheckpointEvery cuts a checkpoint after that many logged ingest calls
	// (0 picks DefaultCheckpointEvery; negative disables count-triggered
	// checkpoints).
	CheckpointEvery int
	// CheckpointInterval additionally cuts checkpoints on a timer when > 0.
	CheckpointInterval time.Duration
	// OpenFile is the WAL's segment-file opener override (fault injection).
	OpenFile wal.OpenFileFunc
	// WindowEpochs, when ≥ 1, creates a windowed engine retaining that many
	// epochs (see NewWindowedMaintainer/NewWindowedSharded); epoch boundaries
	// are durably logged as empty WAL records by Advance. Only the create
	// paths read it — recovery restores the span from the checkpoint.
	WindowEpochs int
}

// DefaultCheckpointEvery is the default checkpoint cadence in ingest calls.
// Each call is typically a batch, so the WAL tail replayed after a crash
// stays bounded without snapshotting so often that checkpoint encoding
// competes with ingest.
const DefaultCheckpointEvery = 4096

func (o DurableOptions) checkpointEvery() int {
	if o.CheckpointEvery == 0 {
		return DefaultCheckpointEvery
	}
	if o.CheckpointEvery < 0 {
		return 0
	}
	return o.CheckpointEvery
}

func (o DurableOptions) walOptions() wal.Options {
	return wal.Options{SyncEvery: o.SyncEvery, SyncInterval: o.SyncInterval, OpenFile: o.OpenFile}
}

// DurableStats extends the engine's ingestion stats with the durability
// layer's counters.
type DurableStats struct {
	Ingest IngestStats
	WAL    wal.Stats
	// Checkpoints counts committed checkpoints; Replayed is how many WAL
	// records recovery replayed when this engine was opened.
	Checkpoints int64
	Replayed    int
	// CheckpointDurations holds the most recent checkpoint wall times
	// (capture + encode + commit).
	CheckpointDurations []time.Duration
}

// DurableSharded is a Sharded engine whose ingest calls are write-ahead
// logged. All methods are safe for concurrent use.
type DurableSharded struct {
	// mu orders appends against checkpoints and epoch seals: ingest holds it
	// shared (the log-then-apply pair must not straddle a checkpoint capture),
	// a checkpoint holds it exclusive only for capture + rotate, and Advance
	// holds it exclusive so the epoch marker's log position matches the ring
	// rotation exactly (see Advance).
	mu   sync.RWMutex
	s    *Sharded
	log  *wal.Log
	opts DurableOptions

	sinceCkpt atomic.Int64
	ckptBusy  atomic.Bool
	wg        sync.WaitGroup
	stop      chan struct{}
	closed    atomic.Bool

	checkpoints atomic.Int64
	replayed    int

	statsMu sync.Mutex
	ckptDur durRing
}

// NewDurableSharded builds a fresh engine with a fresh WAL in opts.Dir,
// committing an initial (empty) checkpoint. It fails if the directory
// already holds a log — use RecoverDurableSharded or OpenDurableSharded.
func NewDurableSharded(n, k, shards, bufferCap int, copts core.Options, opts DurableOptions) (*DurableSharded, error) {
	var s *Sharded
	var err error
	if opts.WindowEpochs >= 1 {
		s, err = NewWindowedSharded(n, k, opts.WindowEpochs, shards, bufferCap, copts)
	} else {
		s, err = NewSharded(n, k, shards, bufferCap, copts)
	}
	if err != nil {
		return nil, err
	}
	l, err := wal.Create(opts.Dir, opts.walOptions(), func(w io.Writer) error {
		return s.Snapshot(w)
	})
	if err != nil {
		return nil, err
	}
	return newDurableSharded(s, l, opts, 0), nil
}

// RecoverDurableSharded reopens the WAL in opts.Dir: it restores the
// manifest's snapshot, re-aligns compaction cadence, replays the log tail
// through the ordinary ingest path, and commits a fresh checkpoint so the
// next restart replays nothing.
func RecoverDurableSharded(opts DurableOptions) (*DurableSharded, error) {
	l, info, err := wal.Open(opts.Dir, opts.walOptions())
	if err != nil {
		return nil, err
	}
	f, err := os.Open(info.SnapshotPath)
	if err != nil {
		l.Close()
		return nil, err
	}
	s, err := RestoreSharded(f)
	f.Close()
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("stream: restoring durable snapshot: %w", err)
	}
	if err := normalizeRestoredCadence(s); err != nil {
		l.Close()
		return nil, err
	}
	replayed := 0
	err = l.Replay(info.SnapshotSeq, func(r wal.Record) error {
		replayed++
		// An empty record is an epoch-boundary marker (only Advance logs
		// one: ingest calls early-return on empty batches before logging).
		if len(r.Points) == 0 {
			return s.Advance()
		}
		return s.AddBatch(r.Points, r.Weights)
	})
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("stream: replaying WAL record %d: %w", replayed, err)
	}
	d := newDurableSharded(s, l, opts, replayed)
	// Fold the replayed tail into a fresh checkpoint immediately: repeated
	// crash/recover cycles then never re-replay an ever-growing tail, and
	// the torn-tail truncation (if any) is superseded on disk.
	if replayed > 0 {
		if err := d.checkpoint(); err != nil {
			d.log.Close()
			return nil, err
		}
	}
	return d, nil
}

// OpenDurableSharded recovers the WAL in opts.Dir if one exists and creates
// a fresh engine (with the given parameters) otherwise — the open-or-create
// a serving process wants at boot. The engine parameters are only used on
// the create path; a recovered engine keeps its checkpointed configuration.
func OpenDurableSharded(n, k, shards, bufferCap int, copts core.Options, opts DurableOptions) (*DurableSharded, error) {
	if wal.Exists(opts.Dir) {
		return RecoverDurableSharded(opts)
	}
	return NewDurableSharded(n, k, shards, bufferCap, copts, opts)
}

func newDurableSharded(s *Sharded, l *wal.Log, opts DurableOptions, replayed int) *DurableSharded {
	d := &DurableSharded{s: s, log: l, opts: opts, stop: make(chan struct{}), replayed: replayed}
	if opts.CheckpointInterval > 0 {
		d.wg.Add(1)
		go d.checkpointTicker()
	}
	return d
}

// normalizeRestoredCadence re-aligns a restored engine's compaction
// boundaries with the uninterrupted run's. RestoreSharded leaves every
// captured pending update in the shard's active log; when the checkpoint
// caught a compaction in flight that log holds more than one compaction
// period, and folding it as one oversized chunk would group the
// floating-point work differently than the original bufCap-sized chunks.
// Folding prefix chunks of exactly bufCap reproduces the original
// boundaries (a shard's pending log always starts at a bufCap-aligned
// arrival offset, because flushes hand off exactly full buffers).
func normalizeRestoredCadence(s *Sharded) error {
	for _, sh := range s.shards {
		for len(sh.active) >= sh.bufCap {
			if err := sh.m.compactLog(sh.active[:sh.bufCap]); err != nil {
				sh.err = err
				return err
			}
			sh.active = append(sh.active[:0], sh.active[sh.bufCap:]...)
		}
	}
	return nil
}

// Engine returns the underlying Sharded engine for queries. Mutating it
// directly (Add/AddBatch on the engine) bypasses the WAL — route all
// ingestion through the DurableSharded.
func (d *DurableSharded) Engine() *Sharded { return d.s }

// Replayed returns how many WAL records recovery replayed at open.
func (d *DurableSharded) Replayed() int { return d.replayed }

// Add records one update durably: logged, group-committed per the WAL
// policy, then applied to the engine.
func (d *DurableSharded) Add(i int, w float64) error {
	if i < 1 || i > d.s.n {
		return fmt.Errorf("stream: point %d out of [1, %d]", i, d.s.n)
	}
	pts := [1]int{i}
	ws := [1]float64{w}
	d.mu.RLock()
	if _, err := d.log.Append(pts[:], ws[:]); err != nil {
		d.mu.RUnlock()
		return err
	}
	err := d.s.Add(i, w)
	d.mu.RUnlock()
	if err != nil {
		return err
	}
	d.maybeCheckpoint()
	return nil
}

// AddBatch records one batch durably (nil weights = unit weights). The
// batch is validated before it is logged, so every logged record replays
// cleanly.
func (d *DurableSharded) AddBatch(points []int, weights []float64) error {
	if weights != nil && len(weights) != len(points) {
		return fmt.Errorf("stream: %d weights for %d points", len(weights), len(points))
	}
	for _, p := range points {
		if p < 1 || p > d.s.n {
			return fmt.Errorf("stream: point %d out of [1, %d]", p, d.s.n)
		}
	}
	if len(points) == 0 {
		return nil
	}
	d.mu.RLock()
	if _, err := d.log.Append(points, weights); err != nil {
		d.mu.RUnlock()
		return err
	}
	err := d.s.AddBatch(points, weights)
	d.mu.RUnlock()
	if err != nil {
		return err
	}
	d.maybeCheckpoint()
	return nil
}

// Advance durably seals the current epoch on a windowed engine: the
// boundary is logged as an empty WAL record before the ring rotates, so
// recovery replays it in sequence and resumes the ring bit-identically.
//
// Unlike ingest, Advance holds the mutex EXCLUSIVELY: an epoch marker is an
// ordering fence, and if it shared the read side with Add/AddBatch a
// concurrent batch could land in the log on one side of the marker but hit
// the engine on the other — replay would then seal the batch into a
// different epoch than the live run did, breaking bit-identical recovery.
// The write lock makes the marker's log position and the ring rotation one
// atomic step with respect to every ingest call.
func (d *DurableSharded) Advance() error {
	if !d.s.Windowed() {
		return fmt.Errorf("stream: Advance on a non-windowed engine")
	}
	d.mu.Lock()
	if _, err := d.log.Append(nil, nil); err != nil {
		d.mu.Unlock()
		return err
	}
	err := d.s.Advance()
	d.mu.Unlock()
	if err != nil {
		// The log durably holds a marker the engine never applied; replaying
		// it would seal one epoch more than the live run. Poison the log so
		// no further appends can build on the divergent history.
		d.log.Fail(fmt.Errorf("stream: epoch seal failed after its marker was logged: %w", err))
		return err
	}
	d.maybeCheckpoint()
	return nil
}

// EstimateRange delegates to the engine.
func (d *DurableSharded) EstimateRange(a, b int) (float64, error) { return d.s.EstimateRange(a, b) }

// EstimateRangeOver delegates a windowed/decayed range query to the engine.
func (d *DurableSharded) EstimateRangeOver(a, b, window int, halflife float64) (float64, error) {
	return d.s.EstimateRangeOver(a, b, window, halflife)
}

// Windowed reports whether the wrapped engine retains a sliding epoch window.
func (d *DurableSharded) Windowed() bool { return d.s.Windowed() }

// Summary drains and merges the per-shard summaries (see Sharded.Summary).
func (d *DurableSharded) Summary() (*core.Histogram, error) { return d.s.Summary() }

// SummaryOver merges the window's decayed per-epoch summaries (see
// Sharded.SummaryOver).
func (d *DurableSharded) SummaryOver(window int, halflife float64) (*core.Histogram, error) {
	return d.s.SummaryOver(window, halflife)
}

// maybeCheckpoint cuts a checkpoint in the background once CheckpointEvery
// ingest calls accumulate; single-flight, so a slow snapshot never stacks.
func (d *DurableSharded) maybeCheckpoint() {
	every := d.opts.checkpointEvery()
	if every <= 0 {
		return
	}
	if d.sinceCkpt.Add(1) < int64(every) {
		return
	}
	if !d.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer d.ckptBusy.Store(false)
		// A failed checkpoint poisons the WAL (appends start failing), so
		// ingestion cannot silently outrun a log that no longer truncates.
		_ = d.checkpoint()
	}()
}

func (d *DurableSharded) checkpointTicker() {
	defer d.wg.Done()
	t := time.NewTicker(d.opts.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if d.ckptBusy.CompareAndSwap(false, true) {
				_ = d.checkpoint()
				d.ckptBusy.Store(false)
			}
		}
	}
}

// checkpoint rotates the WAL, captures the engine, and commits the
// sequence-numbered snapshot + manifest. The rotation — which drains and
// fsyncs the old segment, megabytes of dirty pages — happens BEFORE the
// exclusive lock is taken, so ingestion never stalls on it: the lock is
// held only for the in-memory capture, and the records appended between the
// cut and the capture land in the new segment with seq ≤ boundary, where
// recovery's seq filter skips them. Encoding and the durable commit run
// while ingestion continues.
func (d *DurableSharded) checkpoint() error {
	start := time.Now()
	if _, err := d.log.Rotate(); err != nil {
		return err
	}
	d.mu.Lock()
	cp, err := d.s.Checkpoint()
	boundary := d.log.LastSeq()
	d.sinceCkpt.Store(0)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	// The manifest must never name records the log could still lose: fsync
	// through the boundary (cheap — only the records since the cut are
	// unwritten) before committing the snapshot that covers it.
	if err := d.log.Sync(); err != nil {
		return err
	}
	if err := d.log.Commit(boundary, func(w io.Writer) error {
		_, werr := cp.WriteTo(w)
		return werr
	}); err != nil {
		return err
	}
	d.checkpoints.Add(1)
	d.statsMu.Lock()
	d.ckptDur.add(time.Since(start))
	d.statsMu.Unlock()
	return nil
}

// Checkpoint forces a checkpoint now (used by graceful shutdown and tests).
func (d *DurableSharded) Checkpoint() error {
	for !d.ckptBusy.CompareAndSwap(false, true) {
		time.Sleep(time.Millisecond)
	}
	err := d.checkpoint()
	d.ckptBusy.Store(false)
	return err
}

// WriteSnapshot streams a point-in-time checkpoint of the engine (the same
// TagSharded envelope Sharded.Snapshot writes) without touching the WAL —
// the serving layer's GET /snapshot path.
func (d *DurableSharded) WriteSnapshot(w io.Writer) error {
	cp, err := d.s.Checkpoint()
	if err != nil {
		return err
	}
	_, err = cp.WriteTo(w)
	return err
}

// Sync forces every logged update to stable storage.
func (d *DurableSharded) Sync() error { return d.log.Sync() }

// Stats snapshots the engine and WAL counters.
func (d *DurableSharded) Stats() DurableStats {
	st := DurableStats{
		Ingest:      d.s.Stats(),
		WAL:         d.log.Stats(),
		Checkpoints: d.checkpoints.Load(),
		Replayed:    d.replayed,
	}
	d.statsMu.Lock()
	st.CheckpointDurations = d.ckptDur.snapshot(nil)
	d.statsMu.Unlock()
	return st
}

// Close cuts a final checkpoint and closes the WAL. After Close every
// ingest call fails; queries on the engine keep working.
func (d *DurableSharded) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(d.stop)
	d.wg.Wait()
	err := d.Checkpoint()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// DurableMaintainer is the serial engine's durability wrapper: a Maintainer
// whose ingest calls are write-ahead logged. Unlike the sharded engine it
// serializes everything on one mutex (the Maintainer itself is
// single-goroutine); the WAL's group commit still coalesces fsyncs across
// blocked callers. Maintainer.Snapshot keeps buffered updates buffered, so
// recovery is bit-identical by construction — no cadence normalization
// needed.
type DurableMaintainer struct {
	// ckptMu serializes whole checkpoints (rotate + commit must not
	// interleave across two checkpoints, or an older manifest could land
	// after a newer one).
	ckptMu sync.Mutex
	mu     sync.Mutex
	m      *Maintainer
	log    *wal.Log
	opts   DurableOptions

	sinceCkpt   int
	checkpoints int64
	replayed    int
	ckptDur     durRing
	closed      bool
}

// NewDurableMaintainer builds a fresh maintainer with a fresh WAL in
// opts.Dir.
func NewDurableMaintainer(n, k, bufferCap int, copts core.Options, opts DurableOptions) (*DurableMaintainer, error) {
	var m *Maintainer
	var err error
	if opts.WindowEpochs >= 1 {
		m, err = NewWindowedMaintainer(n, k, opts.WindowEpochs, bufferCap, copts)
	} else {
		m, err = NewMaintainer(n, k, bufferCap, copts)
	}
	if err != nil {
		return nil, err
	}
	l, err := wal.Create(opts.Dir, opts.walOptions(), m.Snapshot)
	if err != nil {
		return nil, err
	}
	return &DurableMaintainer{m: m, log: l, opts: opts}, nil
}

// RecoverDurableMaintainer reopens the WAL in opts.Dir and replays its tail.
func RecoverDurableMaintainer(opts DurableOptions) (*DurableMaintainer, error) {
	l, info, err := wal.Open(opts.Dir, opts.walOptions())
	if err != nil {
		return nil, err
	}
	f, err := os.Open(info.SnapshotPath)
	if err != nil {
		l.Close()
		return nil, err
	}
	m, err := RestoreMaintainer(f)
	f.Close()
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("stream: restoring durable snapshot: %w", err)
	}
	replayed := 0
	err = l.Replay(info.SnapshotSeq, func(r wal.Record) error {
		replayed++
		// An empty record is an epoch-boundary marker (only Advance logs
		// one: ingest calls early-return on empty batches before logging).
		if len(r.Points) == 0 {
			return m.Advance()
		}
		return m.AddBatch(r.Points, r.Weights)
	})
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("stream: replaying WAL record %d: %w", replayed, err)
	}
	d := &DurableMaintainer{m: m, log: l, opts: opts, replayed: replayed}
	if replayed > 0 {
		if err := d.Checkpoint(); err != nil {
			l.Close()
			return nil, err
		}
	}
	return d, nil
}

// OpenDurableMaintainer recovers opts.Dir if it holds a WAL, else creates.
func OpenDurableMaintainer(n, k, bufferCap int, copts core.Options, opts DurableOptions) (*DurableMaintainer, error) {
	if wal.Exists(opts.Dir) {
		return RecoverDurableMaintainer(opts)
	}
	return NewDurableMaintainer(n, k, bufferCap, copts, opts)
}

// Engine returns the wrapped Maintainer for queries; route ingestion
// through the DurableMaintainer.
func (d *DurableMaintainer) Engine() *Maintainer { return d.m }

// Replayed returns how many WAL records recovery replayed at open.
func (d *DurableMaintainer) Replayed() int { return d.replayed }

// EstimateRange answers a range query under the ingest lock (the wrapped
// Maintainer is single-threaded; concurrent callers must come through here).
func (d *DurableMaintainer) EstimateRange(a, b int) (float64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m.EstimateRange(a, b)
}

// EstimateRangeOver answers a windowed/decayed range query under the ingest
// lock.
func (d *DurableMaintainer) EstimateRangeOver(a, b, window int, halflife float64) (float64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m.EstimateRangeOver(a, b, window, halflife)
}

// Windowed reports whether the wrapped maintainer retains a sliding epoch
// window.
func (d *DurableMaintainer) Windowed() bool { return d.m.Windowed() }

// SummaryOver merges the window's decayed per-epoch summaries under the
// ingest lock.
func (d *DurableMaintainer) SummaryOver(window int, halflife float64) (*core.Histogram, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m.SummaryOver(window, halflife)
}

// Advance durably seals the current epoch on a windowed maintainer: the
// boundary is logged as an empty WAL record before the ring rotates, so
// recovery replays it in sequence and resumes the ring bit-identically.
func (d *DurableMaintainer) Advance() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return fmt.Errorf("stream: durable maintainer is closed")
	}
	if !d.m.Windowed() {
		d.mu.Unlock()
		return fmt.Errorf("stream: Advance on a non-windowed engine")
	}
	if _, err := d.log.Append(nil, nil); err != nil {
		d.mu.Unlock()
		return err
	}
	err := d.m.Advance()
	d.sinceCkpt++
	due := d.checkpointDueLocked()
	d.mu.Unlock()
	if err != nil {
		// The marker is durably logged but the engine never sealed; replay
		// would apply one extra seal. Poison the log so the divergent
		// history cannot grow (same policy as DurableSharded.Advance).
		d.log.Fail(fmt.Errorf("stream: epoch seal failed after its marker was logged: %w", err))
		return err
	}
	if due {
		return d.Checkpoint()
	}
	return nil
}

// Add records one update durably.
func (d *DurableMaintainer) Add(i int, w float64) error {
	if i < 1 || i > d.m.n {
		return fmt.Errorf("stream: point %d out of [1, %d]", i, d.m.n)
	}
	pts := [1]int{i}
	ws := [1]float64{w}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return fmt.Errorf("stream: durable maintainer is closed")
	}
	if _, err := d.log.Append(pts[:], ws[:]); err != nil {
		d.mu.Unlock()
		return err
	}
	err := d.m.Add(i, w)
	d.sinceCkpt++
	due := d.checkpointDueLocked()
	d.mu.Unlock()
	if err != nil {
		return err
	}
	if due {
		return d.Checkpoint()
	}
	return nil
}

// AddBatch records one batch durably (nil weights = unit weights).
func (d *DurableMaintainer) AddBatch(points []int, weights []float64) error {
	if weights != nil && len(weights) != len(points) {
		return fmt.Errorf("stream: %d weights for %d points", len(weights), len(points))
	}
	for _, p := range points {
		if p < 1 || p > d.m.n {
			return fmt.Errorf("stream: point %d out of [1, %d]", p, d.m.n)
		}
	}
	if len(points) == 0 {
		return nil
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return fmt.Errorf("stream: durable maintainer is closed")
	}
	if _, err := d.log.Append(points, weights); err != nil {
		d.mu.Unlock()
		return err
	}
	err := d.m.AddBatch(points, weights)
	d.sinceCkpt++
	due := d.checkpointDueLocked()
	d.mu.Unlock()
	if err != nil {
		return err
	}
	if due {
		return d.Checkpoint()
	}
	return nil
}

func (d *DurableMaintainer) checkpointDueLocked() bool {
	every := d.opts.checkpointEvery()
	return every > 0 && d.sinceCkpt >= every
}

// Checkpoint snapshots the maintainer and truncates the WAL. The segment
// rotation (and its fsync) happens before the ingest lock is taken, the
// snapshot is encoded to memory under the lock (O(k + buffered)), and the
// durable commit runs outside it — concurrent Adds proceed during both
// halves of the disk work.
func (d *DurableMaintainer) Checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	start := time.Now()
	if _, err := d.log.Rotate(); err != nil {
		return err
	}
	var buf bytes.Buffer
	d.mu.Lock()
	if err := d.m.Snapshot(&buf); err != nil {
		d.mu.Unlock()
		return err
	}
	boundary := d.log.LastSeq()
	d.sinceCkpt = 0
	d.mu.Unlock()
	// Fsync through the boundary before the manifest names it (the records
	// appended since the cut are the only unsynced ones).
	if err := d.log.Sync(); err != nil {
		return err
	}
	if err := d.log.Commit(boundary, func(w io.Writer) error {
		_, werr := w.Write(buf.Bytes())
		return werr
	}); err != nil {
		return err
	}
	d.mu.Lock()
	d.checkpoints++
	d.ckptDur.add(time.Since(start))
	d.mu.Unlock()
	return nil
}

// WriteSnapshot streams the maintainer's checkpoint without touching the
// WAL.
func (d *DurableMaintainer) WriteSnapshot(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m.Snapshot(w)
}

// Sync forces every logged update to stable storage.
func (d *DurableMaintainer) Sync() error { return d.log.Sync() }

// Stats snapshots the maintainer and WAL counters.
func (d *DurableMaintainer) Stats() DurableStats {
	d.mu.Lock()
	st := DurableStats{
		WAL:         d.log.Stats(),
		Checkpoints: d.checkpoints,
		Replayed:    d.replayed,
		Ingest: IngestStats{
			Shards:      1,
			Updates:     d.m.updates,
			Compactions: d.m.compactions,
		},
	}
	st.Ingest.CompactionDurations = d.m.compactDur.snapshot(nil)
	st.CheckpointDurations = d.ckptDur.snapshot(nil)
	d.mu.Unlock()
	return st
}

// Close cuts a final checkpoint and closes the WAL.
func (d *DurableMaintainer) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	err := d.Checkpoint()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	return err
}
