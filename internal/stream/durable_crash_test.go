package stream

import (
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
)

// The kill-mid-run crash test: a child process (this test binary re-execed
// with the helper test selected) ingests the deterministic crashCall trace
// through a DurableSharded with SyncEvery=1 and a tight checkpoint cadence,
// and the parent SIGKILLs it at arbitrary wall-clock points — landing mid
// group-commit, mid background compaction, or mid checkpoint
// (rotate/snapshot/manifest-rename). Recovery must then reconstruct a state
// bit-identical to a fresh re-fit of exactly the ingest calls whose WAL
// records survived.

const crashChildEnv = "DURABLE_CRASH_DIR"

// TestDurableCrashHelperProcess is the child body — a no-op unless the
// parent set the env var.
func TestDurableCrashHelperProcess(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("helper process body; run via TestDurableShardedKillRecovery")
	}
	d, err := OpenDurableSharded(crashN, crashK, crashP, crashCap, core.DefaultOptions(), DurableOptions{
		Dir:             dir,
		SyncEvery:       1, // every returned call is durable: recovery = exact call prefix
		CheckpointEvery: 25,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child open: %v\n", err)
		os.Exit(3)
	}
	for i := 0; i < 1_000_000; i++ {
		pts, ws := crashCall(i)
		if err := d.AddBatch(pts, ws); err != nil {
			fmt.Fprintf(os.Stderr, "child ingest %d: %v\n", i, err)
			os.Exit(3)
		}
	}
	// Never reached under the parent (SIGKILL lands long before 1M fsyncs).
	_ = d.Close()
}

// TestDurableShardedKillRecovery SIGKILLs the ingesting child at several
// wall-clock offsets and proves recovery is bit-identical to the reference
// re-fit of the surviving prefix.
func TestDurableShardedKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, delay := range []time.Duration{40 * time.Millisecond, 120 * time.Millisecond, 300 * time.Millisecond} {
		t.Run(delay.String(), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(exe, "-test.run=^TestDurableCrashHelperProcess$", "-test.v")
			cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			// Give the child until the deadline to get past engine creation,
			// then let it ingest for the delay window before the kill.
			deadline := time.Now().Add(10 * time.Second)
			for {
				if st, err := os.Stat(dir); err == nil && st.IsDir() {
					if ents, _ := os.ReadDir(dir); len(ents) >= 3 { // MANIFEST + snapshot + segment
						break
					}
				}
				if time.Now().After(deadline) {
					cmd.Process.Kill()
					cmd.Wait()
					t.Fatal("child never initialized its WAL")
				}
				time.Sleep(5 * time.Millisecond)
			}
			time.Sleep(delay)
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			err = cmd.Wait()
			if err == nil {
				t.Fatal("child exited cleanly before the kill — trace too short")
			}

			rec, err := RecoverDurableSharded(DurableOptions{Dir: dir, CheckpointEvery: -1})
			if err != nil {
				t.Fatalf("recovery after SIGKILL: %v", err)
			}
			defer rec.Close()
			// SyncEvery=1 ⇒ the surviving records are exactly the child's
			// first LastSeq ingest calls (a torn in-flight record may have
			// been truncated; completed calls are never lost).
			calls := int(rec.Stats().WAL.LastSeq)
			if calls == 0 {
				t.Fatal("no records survived — kill landed before any ingest")
			}
			t.Logf("child persisted %d ingest calls before SIGKILL", calls)
			ref := referenceSharded(t, calls)
			requireBitIdentical(t, "kill-recovered", rec.Engine(), ref)
		})
	}
}
