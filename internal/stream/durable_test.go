package stream

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/wal"
)

const (
	crashN   = 1000
	crashK   = 8
	crashP   = 2  // shards
	crashCap = 32 // bufferCap
)

// crashCall is the deterministic ingest trace shared by the recovery tests
// and the kill-mid-run child process: call i is one AddBatch of 1–5 points,
// every third call with unit (nil) weights.
func crashCall(i int) (pts []int, ws []float64) {
	sz := 1 + i%5
	pts = make([]int, sz)
	if i%3 != 0 {
		ws = make([]float64, sz)
	}
	for j := range pts {
		pts[j] = 1 + (i*131+j*29)%crashN
		if ws != nil {
			ws[j] = 0.25 * float64(1+(i+j)%8)
		}
	}
	return pts, ws
}

// referenceSharded re-fits a fresh in-memory engine on the first calls of
// the trace — the uninterrupted run every recovery is compared against.
func referenceSharded(t *testing.T, calls int) *Sharded {
	t.Helper()
	s, err := NewSharded(crashN, crashK, crashP, crashCap, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < calls; i++ {
		pts, ws := crashCall(i)
		if err := s.AddBatch(pts, ws); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// waitQuiesce waits out every background compaction so the engine's state
// is a pure function of its input trace, not of goroutine timing.
func waitQuiesce(s *Sharded) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		for sh.compacting {
			sh.cond.Wait()
		}
		sh.mu.Unlock()
	}
}

// requireBitIdentical asserts got and want agree bit-for-bit: update and
// compaction counters, EstimateRange over a probe grid (exercising both the
// installed views and the pending-update scans), and the merged Summary's
// encoded bytes. Both engines are quiesced first.
func requireBitIdentical(t *testing.T, label string, got, want *Sharded) {
	t.Helper()
	waitQuiesce(got)
	waitQuiesce(want)
	if g, w := got.Updates(), want.Updates(); g != w {
		t.Fatalf("%s: updates %d, want %d", label, g, w)
	}
	if g, w := got.Compactions(), want.Compactions(); g != w {
		t.Fatalf("%s: compactions %d, want %d (cadence diverged)", label, g, w)
	}
	probe := func(a, b int) {
		g, err1 := got.EstimateRange(a, b)
		w, err2 := want.EstimateRange(a, b)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: EstimateRange(%d,%d): %v, %v", label, a, b, err1, err2)
		}
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%s: EstimateRange(%d,%d) = %v (%#x), want %v (%#x)",
				label, a, b, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
	probe(1, crashN)
	for a := 1; a <= crashN; a += 97 {
		b := a + 53
		if b > crashN {
			b = crashN
		}
		probe(a, b)
		probe(a, a)
	}
	gh, err := got.Summary()
	if err != nil {
		t.Fatalf("%s: got Summary: %v", label, err)
	}
	wh, err := want.Summary()
	if err != nil {
		t.Fatalf("%s: want Summary: %v", label, err)
	}
	var gb, wb bytes.Buffer
	if _, err := gh.WriteTo(&gb); err != nil {
		t.Fatal(err)
	}
	if _, err := wh.WriteTo(&wb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
		t.Fatalf("%s: Summary encodings differ (%d vs %d bytes)", label, gb.Len(), wb.Len())
	}
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		blob, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestDurableShardedRecoveryBoundarySweep is the torn-tail recovery
// property test: one recorded run, then a simulated crash at EVERY WAL
// frame boundary (and inside selected frames). Each recovery must be
// bit-identical to a fresh re-fit of the surviving prefix — and must
// CONTINUE bit-identically when fed the rest of the trace, which is what
// the compaction-cadence normalization buys.
func TestDurableShardedRecoveryBoundarySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps ~60 recoveries")
	}
	const calls = 60
	recordDir := t.TempDir()
	d, err := NewDurableSharded(crashN, crashK, crashP, crashCap, core.DefaultOptions(), DurableOptions{
		Dir:             recordDir,
		SyncEvery:       1,
		CheckpointEvery: -1, // single segment: every frame boundary is a crash point
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < calls; i++ {
		pts, ws := crashCall(i)
		if err := d.AddBatch(pts, ws); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	seg := wal.SegmentPath(recordDir, 0)
	offs, err := wal.SegmentOffsets(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != calls {
		t.Fatalf("recorded %d frames, want %d", len(offs), calls)
	}
	base := copyDir(t, recordDir) // frozen image; d can now be closed
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	recoverAt := func(t *testing.T, cut int64, wantRecords int) {
		dir := copyDir(t, base)
		if err := os.Truncate(wal.SegmentPath(dir, 0), cut); err != nil {
			t.Fatal(err)
		}
		rec, err := RecoverDurableSharded(DurableOptions{Dir: dir, SyncEvery: 1, CheckpointEvery: -1})
		if err != nil {
			t.Fatalf("recover at %d bytes: %v", cut, err)
		}
		defer rec.Close()
		if rec.Replayed() != wantRecords {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, rec.Replayed(), wantRecords)
		}
		ref := referenceSharded(t, wantRecords)
		requireBitIdentical(t, "recovered", rec.Engine(), ref)
		// Resume: the recovered engine fed the rest of the trace must track
		// the uninterrupted run exactly.
		for i := wantRecords; i < calls; i++ {
			pts, ws := crashCall(i)
			if err := rec.AddBatch(pts, ws); err != nil {
				t.Fatal(err)
			}
			if err := ref.AddBatch(pts, ws); err != nil {
				t.Fatal(err)
			}
		}
		requireBitIdentical(t, "resumed", rec.Engine(), ref)
	}

	// Every frame boundary (crash exactly between two records).
	for j := 0; j <= calls; j++ {
		cut := int64(0)
		if j > 0 {
			cut = offs[j-1]
		}
		recoverAt(t, cut, j)
	}
	// Mid-frame cuts: the torn final record must be discarded cleanly.
	for _, j := range []int{0, 7, 23, 41, calls - 1} {
		lo := int64(0)
		if j > 0 {
			lo = offs[j-1]
		}
		recoverAt(t, lo+(offs[j]-lo)/2, j)
	}
}

// TestDurableShardedRecoveryAfterCleanClose: a clean shutdown checkpoints
// everything — recovery replays nothing and matches the reference.
func TestDurableShardedRecoveryAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDurableSharded(crashN, crashK, crashP, crashCap, core.DefaultOptions(), DurableOptions{
		Dir: dir, SyncEvery: 4, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const calls = 40
	for i := 0; i < calls; i++ {
		pts, ws := crashCall(i)
		if err := d.AddBatch(pts, ws); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverDurableSharded(DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Replayed() != 0 {
		t.Fatalf("clean close left %d records to replay", rec.Replayed())
	}
	requireBitIdentical(t, "clean-close", rec.Engine(), referenceSharded(t, calls))
}

// TestDurableShardedWALCheckpointTruncates: count-triggered checkpoints
// rotate and truncate the log while ingestion continues, and recovery from
// the multi-checkpoint directory still matches the reference.
func TestDurableShardedWALCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDurableSharded(crashN, crashK, crashP, crashCap, core.DefaultOptions(), DurableOptions{
		Dir: dir, SyncEvery: 1, CheckpointEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	const calls = 75
	for i := 0; i < calls; i++ {
		pts, ws := crashCall(i)
		if err := d.AddBatch(pts, ws); err != nil {
			t.Fatal(err)
		}
	}
	// Force the single-flight background checkpoints to settle.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Checkpoints < 2 {
		t.Fatalf("checkpoints = %d, want ≥ 2", st.Checkpoints)
	}
	if st.WAL.Rotations < 2 {
		t.Fatalf("rotations = %d, want ≥ 2", st.WAL.Rotations)
	}
	if st.WAL.LastSeq != calls {
		t.Fatalf("LastSeq = %d, want %d", st.WAL.LastSeq, calls)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverDurableSharded(DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	requireBitIdentical(t, "multi-checkpoint", rec.Engine(), referenceSharded(t, calls))
}

// TestDurableShardedRejectsInvalidBeforeLogging: a bad update must fail
// without reaching the WAL, so every logged record replays cleanly.
func TestDurableShardedRejectsInvalidBeforeLogging(t *testing.T) {
	d, err := NewDurableSharded(crashN, crashK, crashP, crashCap, core.DefaultOptions(), DurableOptions{
		Dir: t.TempDir(), CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Add(0, 1); err == nil {
		t.Fatal("Add(0) accepted")
	}
	if err := d.Add(crashN+1, 1); err == nil {
		t.Fatal("Add(n+1) accepted")
	}
	if err := d.AddBatch([]int{1, crashN + 7}, nil); err == nil {
		t.Fatal("batch with invalid point accepted")
	}
	if err := d.AddBatch([]int{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if got := d.Stats().WAL.Appends; got != 0 {
		t.Fatalf("%d invalid updates reached the WAL", got)
	}
}

// TestDurableMaintainerRecoveryBitIdentical: the serial engine's durability
// wrapper recovers bit-identically and resumes on the original cadence
// (Maintainer snapshots keep the pending buffer, so no normalization is
// involved — this pins the simpler path).
func TestDurableMaintainerRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDurableMaintainer(crashN, crashK, crashCap, core.DefaultOptions(), DurableOptions{
		Dir: dir, SyncEvery: 1, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const calls = 50
	for i := 0; i < calls; i++ {
		pts, ws := crashCall(i)
		if err := d.AddBatch(pts, ws); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	seg := wal.SegmentPath(dir, 0)
	offs, err := wal.SegmentOffsets(seg)
	if err != nil || len(offs) != calls {
		t.Fatalf("offsets: %d, %v", len(offs), err)
	}
	base := copyDir(t, dir)
	d.Close()

	for _, j := range []int{0, 1, 17, 33, calls} {
		cutDir := copyDir(t, base)
		cut := int64(0)
		if j > 0 {
			cut = offs[j-1]
		}
		if err := os.Truncate(wal.SegmentPath(cutDir, 0), cut); err != nil {
			t.Fatal(err)
		}
		rec, err := RecoverDurableMaintainer(DurableOptions{Dir: cutDir, CheckpointEvery: -1})
		if err != nil {
			t.Fatalf("recover at %d records: %v", j, err)
		}
		ref, err := NewMaintainer(crashN, crashK, crashCap, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < calls; i++ {
			pts, ws := crashCall(i)
			if i >= j {
				if err := ref.AddBatch(pts, ws); err != nil {
					t.Fatal(err)
				}
				if err := rec.AddBatch(pts, ws); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := ref.AddBatch(pts, ws); err != nil {
				t.Fatal(err)
			}
		}
		got, want := rec.Engine(), ref
		if got.Updates() != want.Updates() || got.Compactions() != want.Compactions() {
			t.Fatalf("j=%d: counters (%d,%d) vs (%d,%d)", j,
				got.Updates(), got.Compactions(), want.Updates(), want.Compactions())
		}
		for a := 1; a <= crashN; a += 119 {
			g, _ := got.EstimateRange(a, a+50)
			w, _ := want.EstimateRange(a, a+50)
			if a+50 > crashN {
				g, _ = got.EstimateRange(a, crashN)
				w, _ = want.EstimateRange(a, crashN)
			}
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("j=%d: EstimateRange(%d) %v vs %v", j, a, g, w)
			}
		}
		rec.Close()
	}
}

// TestDurableShardedWALFaultPoisonsIngest: injected IO failures surface as
// ingest errors, never panics, and the engine refuses further durable
// writes.
func TestDurableShardedWALFaultPoisonsIngest(t *testing.T) {
	fs := wal.NewFaultFS()
	fs.NextFailWriteAt = 400
	d, err := NewDurableSharded(crashN, crashK, crashP, crashCap, core.DefaultOptions(), DurableOptions{
		Dir: t.TempDir(), SyncEvery: 1, CheckpointEvery: -1, OpenFile: fs.Open,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ingestErr error
	for i := 0; i < 256 && ingestErr == nil; i++ {
		pts, ws := crashCall(i)
		ingestErr = d.AddBatch(pts, ws)
	}
	if ingestErr == nil {
		t.Fatal("injected write failure never surfaced")
	}
	if err := d.Add(1, 1); err == nil {
		t.Fatal("poisoned engine accepted a new update")
	}
	if err := d.Close(); err == nil {
		t.Fatal("poisoned engine closed clean")
	}
}
