package stream

// Property tests for the ingest fast path: the radix dedup kernel and the
// incremental merge-in compaction are each pinned to the slow oracle they
// replaced — the slices.SortStableFunc comparison sort, and the full
// reconstruct (materialized refinement + Construct) — bit for bit.

import (
	"cmp"
	"math"
	"slices"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// oracleDedup is the pre-radix dedupedBuffer, verbatim: stable comparison
// sort by index, duplicates summed in log order, zero sums kept.
func oracleDedup(log []sparse.Entry) []sparse.Entry {
	dst := slices.Clone(log)
	slices.SortStableFunc(dst, func(a, b sparse.Entry) int { return cmp.Compare(a.Index, b.Index) })
	out := dst[:0]
	for _, e := range dst {
		if len(out) > 0 && out[len(out)-1].Index == e.Index {
			out[len(out)-1].Value += e.Value
			continue
		}
		out = append(out, e)
	}
	return out
}

// TestDedupedBufferMatchesComparisonOracle: the radix/counting dedup must be
// bit-identical to the comparison-sort oracle on the adversarial logs —
// duplicate-heavy, deletions, a single point, reverse-sorted, and empty —
// across domain sizes that route it through every kernel path.
func TestDedupedBufferMatchesComparisonOracle(t *testing.T) {
	r := rng.New(131)
	logs := map[string][]sparse.Entry{
		"empty":        {},
		"single_entry": {{Index: 3, Value: -2}},
	}
	dup := make([]sparse.Entry, 3000)
	for i := range dup {
		dup[i] = sparse.Entry{Index: []int{7, 450, 12}[i%3], Value: 1 + 1e-9*float64(i)}
	}
	logs["duplicate_heavy"] = dup
	del := make([]sparse.Entry, 1000)
	for i := range del {
		v := float64(1 + i%5)
		if i%2 == 1 {
			v = -v // deletions; many points cancel to exactly zero
		}
		del[i] = sparse.Entry{Index: 1 + (i*13)%50, Value: v}
	}
	logs["deletions"] = del
	one := make([]sparse.Entry, 400)
	for i := range one {
		one[i] = sparse.Entry{Index: 123, Value: r.NormFloat64()}
	}
	logs["single_point"] = one
	rev := make([]sparse.Entry, 2048)
	for i := range rev {
		rev[i] = sparse.Entry{Index: 2048 - i, Value: r.NormFloat64()}
	}
	logs["reverse_sorted"] = rev
	rnd := make([]sparse.Entry, 4096)
	for i := range rnd {
		rnd[i] = sparse.Entry{Index: 1 + r.Intn(100000), Value: r.NormFloat64()}
	}
	logs["random_sparse"] = rnd

	for name, log := range logs {
		// Small domain → counting path; huge domain → radix path. Both must
		// match the oracle bit for bit.
		for _, n := range []int{3000, 1 << 20} {
			mx := 0
			for _, e := range log {
				if e.Index > mx {
					mx = e.Index
				}
			}
			if mx > n {
				continue
			}
			m, err := NewMaintainer(max(n, 1), 4, 0, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			got := m.dedupedBuffer(log)
			want := oracleDedup(log)
			if !slices.Equal(got, want) {
				t.Fatalf("%s (n=%d): dedup diverges from comparison oracle", name, n)
			}
		}
	}
}

// reconstructOracle replays the pre-merge-in compaction pipeline exactly:
// comparison-sort dedup, materialized refinement of (view ∪ singletons) with
// combineEmit's arithmetic, a full Construct every cycle, and the view
// prefix built the way stage() builds it.
type reconstructOracle struct {
	n, k   int
	opts   core.Options
	view   interval.Partition
	values []float64
	prefix []float64
	comp   core.SummaryScratch
}

func (o *reconstructOracle) compact(t *testing.T, log []sparse.Entry) {
	t.Helper()
	points := oracleDedup(log)
	var part interval.Partition
	var stats []sparse.Stat
	piece := func(lo, hi int, v float64) {
		if lo > hi {
			return
		}
		part = append(part, interval.New(lo, hi))
		length := float64(hi - lo + 1)
		stats = append(stats, sparse.Stat{Len: hi - lo + 1, Sum: v * length, SumSq: v * v * length})
	}
	pi := 0
	refine := func(lo, hi int, v float64) {
		for pi < len(points) && points[pi].Index <= hi {
			p := points[pi].Index
			piece(lo, p-1, v)
			s := v + points[pi].Value
			part = append(part, interval.New(p, p))
			stats = append(stats, sparse.Stat{Len: 1, Sum: s, SumSq: s * s})
			lo = p + 1
			pi++
		}
		piece(lo, hi, v)
	}
	if len(o.view) == 0 {
		refine(1, o.n, 0)
	} else {
		for i, iv := range o.view {
			refine(iv.Lo, iv.Hi, o.values[i])
		}
	}
	res, err := o.comp.Construct(o.n, part, stats, o.k, o.opts)
	if err != nil {
		t.Fatal(err)
	}
	o.view = append(o.view[:0], res.Partition...)
	o.values = append(o.values[:0], res.Values...)
	o.prefix = append(o.prefix[:0], 0)
	for i, iv := range res.Partition {
		o.prefix = append(o.prefix, o.prefix[i]+float64(iv.Len())*res.Values[i])
	}
}

// rangeSum mirrors summaryView.rangeSum on the oracle's view, float for
// float.
func (o *reconstructOracle) rangeSum(a, b int) float64 {
	find := func(x int) int {
		lo, hi := 0, len(o.view)
		for lo < hi {
			mid := (lo + hi) / 2
			if o.view[mid].Hi >= x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	i, j := find(a), find(b)
	if i == j {
		return float64(b-a+1) * o.values[i]
	}
	total := float64(o.view[i].Hi-a+1)*o.values[i] + float64(b-o.view[j].Lo+1)*o.values[j]
	return total + o.prefix[j] - o.prefix[i+1]
}

// TestMaintainerMergeInMatchesReconstructOracle: with laziness disabled the
// merge-in maintainer must track the full-reconstruct pipeline bit for bit —
// view partition, piece values, certified error, EstimateRange answers, and
// the final Summary — across compaction cadences (bufferCap 64 / 256 / 1024)
// on a mixed stream with duplicates and deletions.
func TestMaintainerMergeInMatchesReconstructOracle(t *testing.T) {
	for _, bufCap := range []int{64, 256, 1024} {
		r := rng.New(uint64(757 + bufCap))
		n, k := 5000, 6
		opts := core.DefaultOptions()
		opts.Workers = 1
		m, err := NewMaintainer(n, k, bufCap, opts)
		if err != nil {
			t.Fatal(err)
		}
		m.maxPieces = 0 // force the merging rounds every cycle, like the oracle
		o := &reconstructOracle{n: n, k: k, opts: opts}

		var pending []sparse.Entry
		for u := 0; u < 20*bufCap+17; u++ {
			p := 1 + r.Intn(n)
			if r.Float64() < 0.3 { // concentrate: duplicates within a buffer
				p = 1 + r.Intn(40)
			}
			w := r.NormFloat64()
			if r.Float64() < 0.2 {
				w = -1 // deletions
			}
			if err := m.Add(p, w); err != nil {
				t.Fatal(err)
			}
			pending = append(pending, sparse.Entry{Index: p, Value: w})
			if len(pending) == bufCap {
				o.compact(t, pending)
				pending = pending[:0]
				if !slices.Equal(m.view.part, o.view) {
					t.Fatalf("bufCap=%d u=%d: view partition diverges from reconstruct oracle", bufCap, u)
				}
				if !slices.Equal(m.view.values, o.values) {
					t.Fatalf("bufCap=%d u=%d: view values diverge from reconstruct oracle", bufCap, u)
				}
			}
			if u%997 == 0 && len(m.view.part) > 0 {
				a := 1 + r.Intn(n)
				b := a + r.Intn(n-a+1)
				got, err := m.EstimateRange(a, b)
				if err != nil {
					t.Fatal(err)
				}
				want := o.rangeSum(a, b)
				for _, e := range pending {
					if a <= e.Index && e.Index <= b {
						want += e.Value
					}
				}
				if got != want {
					t.Fatalf("bufCap=%d u=%d: EstimateRange(%d,%d) = %v, oracle %v", bufCap, u, a, b, got, want)
				}
			}
		}
		// Final Summary: fold the tail through both pipelines and compare
		// the materialized pieces bit for bit.
		if len(pending) > 0 {
			o.compact(t, pending)
		}
		h, err := m.Summary()
		if err != nil {
			t.Fatal(err)
		}
		pieces := h.Pieces()
		if len(pieces) != len(o.view) {
			t.Fatalf("bufCap=%d: summary has %d pieces, oracle %d", bufCap, len(pieces), len(o.view))
		}
		for i, pc := range pieces {
			if pc.Interval != o.view[i] || pc.Value != o.values[i] {
				t.Fatalf("bufCap=%d piece %d: (%v, %v), oracle (%v, %v)",
					bufCap, i, pc.Interval, pc.Value, o.view[i], o.values[i])
			}
		}
	}
}

// TestMaintainerLazyEstimateRangeExactOnConcentratedStream: when the stream
// touches fewer distinct points than the lazy threshold, inline compactions
// never merge — the view stays an exact refinement — so EstimateRange is
// EXACT (not just within the guarantee) even though compactions keep
// happening. This is the behavior the lazy merge-in buys.
func TestMaintainerLazyEstimateRangeExactOnConcentratedStream(t *testing.T) {
	r := rng.New(389)
	n, k := 1 << 20, 4
	m, err := NewMaintainer(n, k, 128, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 25 hot points: refinement ≤ 2·25+1 pieces < maxPieces = 68.
	hot := make([]int, 25)
	for i := range hot {
		hot[i] = 1 + r.Intn(n)
	}
	truth := map[int]float64{}
	for u := 0; u < 4000; u++ {
		p := hot[r.Intn(len(hot))]
		w := r.NormFloat64()
		truth[p] += w
		if err := m.Add(p, w); err != nil {
			t.Fatal(err)
		}
	}
	if m.Compactions() < 10 {
		t.Fatalf("only %d compactions — stream too short to exercise the lazy path", m.Compactions())
	}
	if len(m.view.part) <= m.targetPieces {
		t.Fatalf("view has %d pieces ≤ target %d — laziness never engaged", len(m.view.part), m.targetPieces)
	}
	for trial := 0; trial < 200; trial++ {
		a := 1 + r.Intn(n)
		b := a + r.Intn(n-a+1)
		got, err := m.EstimateRange(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for p, w := range truth {
			if a <= p && p <= b {
				want += w
			}
		}
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("EstimateRange(%d,%d) = %v, exact %v — lazy view must stay exact", a, b, got, want)
		}
	}
	// Summary still re-merges to the guaranteed O(k) budget.
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Pieces()); got > m.targetPieces {
		t.Fatalf("Summary has %d pieces, beyond the merging target %d", got, m.targetPieces)
	}
}

// TestMaintainerLazySummaryWithinGuarantee: the lazily maintained summary
// still satisfies the paper's √(1+δ)·opt_k bound against the summarized
// stream on a step-function fixture (opt ≈ 0 — the direct DP fit recovers
// the steps exactly, and the maintained summary must stay within the
// guarantee of that baseline despite many deferred merges).
func TestMaintainerLazySummaryWithinGuarantee(t *testing.T) {
	r := rng.New(997)
	n, k := 400, 6
	m, err := NewMaintainer(n, k, 64, core.DefaultOptions()) // δ=1 → √2
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, n)
	// A 5-step signal streamed as concentrated unit updates: few distinct
	// points per buffer, so lazy sweeps dominate and merges are deferred.
	for u := 0; u < 30000; u++ {
		step := r.Intn(5)
		p := 1 + step*(n/5) + r.Intn(8)
		truth[p-1]++
		if err := m.Add(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := baseline.ExactDP(truth, k)
	if err != nil {
		t.Fatal(err)
	}
	got := h.L2DistToDense(truth)
	if got > math.Sqrt2*opt+1e-6 {
		t.Fatalf("maintained error %v breaks √2·opt = %v on the step fixture", got, math.Sqrt2*opt)
	}
}
